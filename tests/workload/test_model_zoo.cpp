#include "workload/model_zoo.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace mlfs {
namespace {

JobSpec base_spec(MlAlgorithm algorithm, int gpus, CommStructure comm) {
  JobSpec spec;
  spec.id = 0;
  spec.algorithm = algorithm;
  spec.comm = comm;
  spec.gpu_request = gpus;
  spec.max_iterations = 50;
  spec.seed = 1234;
  spec.curve.max_accuracy = 0.9;
  spec.curve.kappa = 10.0;
  return spec;
}

TEST(ModelZoo, ProfilesCoverAllAlgorithms) {
  EXPECT_EQ(ModelZoo::algorithm_count(), 5u);
  for (std::size_t i = 0; i < ModelZoo::algorithm_count(); ++i) {
    const MlAlgorithm a = ModelZoo::algorithm_at(i);
    const ModelProfile& p = ModelZoo::profile(a);
    EXPECT_EQ(p.algorithm, a);
    EXPECT_GT(p.params_m_min, 0.0);
    EXPECT_LE(p.params_m_min, p.params_m_max);
    EXPECT_GT(p.base_iteration_seconds, 0.0);
  }
}

TEST(ModelZoo, SequentialStyleBuildsChain) {
  // MLP/AlexNet: "partitioned the model sequentially" (§4.1).
  const auto inst =
      ModelZoo::instantiate(base_spec(MlAlgorithm::Mlp, 4, CommStructure::AllReduce), 0);
  const Dag& dag = inst.job.dag();
  EXPECT_EQ(dag.node_count(), 4u);  // no PS under all-reduce
  EXPECT_EQ(dag.children(0), std::vector<std::size_t>{1});
  EXPECT_EQ(dag.children(1), std::vector<std::size_t>{2});
  EXPECT_EQ(dag.children(2), std::vector<std::size_t>{3});
  EXPECT_TRUE(dag.is_sink(3));
}

TEST(ModelZoo, ParameterServerAddsSinkTask) {
  const auto inst =
      ModelZoo::instantiate(base_spec(MlAlgorithm::Mlp, 4, CommStructure::ParameterServer), 0);
  EXPECT_EQ(inst.job.task_count(), 5u);
  const Task& ps = inst.tasks.back();
  EXPECT_TRUE(ps.is_parameter_server);
  EXPECT_TRUE(inst.job.dag().is_sink(4));
  EXPECT_FALSE(inst.job.dag().parents(4).empty());
  // Exactly one PS per job.
  int ps_count = 0;
  for (const Task& t : inst.tasks) ps_count += t.is_parameter_server ? 1 : 0;
  EXPECT_EQ(ps_count, 1);
}

TEST(ModelZoo, LayeredStyleHasParallelStages) {
  // ResNet/LSTM: "partitioned each layer into several parts" — some tasks
  // must share a DAG layer.
  const auto inst =
      ModelZoo::instantiate(base_spec(MlAlgorithm::ResNet, 8, CommStructure::AllReduce), 0);
  const auto layers = inst.job.dag().layers();
  std::size_t max_layer = 0;
  for (const auto l : layers) max_layer = std::max(max_layer, l);
  // 8 partitions in 2 stages of width 4.
  EXPECT_EQ(max_layer, 1u);
  std::size_t width0 = 0;
  for (const auto l : layers) width0 += l == 0 ? 1 : 0;
  EXPECT_EQ(width0, 4u);
}

TEST(ModelZoo, SvmIsDataParallelOnly) {
  const auto inst =
      ModelZoo::instantiate(base_spec(MlAlgorithm::Svm, 4, CommStructure::AllReduce), 0);
  EXPECT_EQ(inst.job.dag().edge_count(), 0u);  // independent workers
  // Every worker holds the full model: S_k / S_J == 1 for all.
  for (const Task& t : inst.tasks) {
    EXPECT_DOUBLE_EQ(t.partition_params_m, inst.job.total_params_m());
  }
}

TEST(ModelZoo, PartitionSizesSumToModel) {
  const auto inst =
      ModelZoo::instantiate(base_spec(MlAlgorithm::AlexNet, 8, CommStructure::AllReduce), 0);
  double sum = 0.0;
  for (const Task& t : inst.tasks) sum += t.partition_params_m;
  EXPECT_NEAR(sum, inst.job.total_params_m(), 1e-9);
  const ModelProfile& prof = ModelZoo::profile(MlAlgorithm::AlexNet);
  EXPECT_GE(inst.job.total_params_m(), prof.params_m_min);
  EXPECT_LE(inst.job.total_params_m(), prof.params_m_max);
}

TEST(ModelZoo, TaskIdsAreContiguousFromFirst) {
  const auto inst =
      ModelZoo::instantiate(base_spec(MlAlgorithm::Lstm, 4, CommStructure::ParameterServer), 100);
  for (std::size_t i = 0; i < inst.tasks.size(); ++i) {
    EXPECT_EQ(inst.tasks[i].id, 100u + i);
    EXPECT_EQ(inst.job.task_at(i), 100u + i);
    EXPECT_EQ(inst.tasks[i].local_index, i);
  }
}

TEST(ModelZoo, DemandsWithinPlaceableBounds) {
  // Every generated task must be placeable on an idle server under the
  // default overload threshold 0.9 (nominal demand view).
  for (std::size_t a = 0; a < ModelZoo::algorithm_count(); ++a) {
    for (const int gpus : {1, 2, 8, 32}) {
      auto spec = base_spec(ModelZoo::algorithm_at(a), gpus, CommStructure::ParameterServer);
      if (spec.algorithm == MlAlgorithm::Svm && gpus > 8) continue;
      const auto inst = ModelZoo::instantiate(spec, 0);
      for (const Task& t : inst.tasks) {
        EXPECT_LE(t.demand[Resource::Gpu], 0.9);
        EXPECT_LE(t.demand[Resource::Cpu], 0.9);
        EXPECT_LE(t.demand[Resource::Mem], 0.9);
        EXPECT_LE(t.demand[Resource::Net], 0.9);
        EXPECT_GT(t.base_compute_seconds, 0.0);
        EXPECT_GT(t.state_size_mb, 0.0);
        EXPECT_GE(t.usage_bias, 0.8);
        EXPECT_LE(t.usage_bias, 1.45);
      }
    }
  }
}

TEST(ModelZoo, DeterministicPerSeed) {
  const auto spec = base_spec(MlAlgorithm::ResNet, 8, CommStructure::ParameterServer);
  const auto a = ModelZoo::instantiate(spec, 0);
  const auto b = ModelZoo::instantiate(spec, 0);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.tasks[i].partition_params_m, b.tasks[i].partition_params_m);
    EXPECT_DOUBLE_EQ(a.tasks[i].base_compute_seconds, b.tasks[i].base_compute_seconds);
    EXPECT_DOUBLE_EQ(a.tasks[i].demand[Resource::Gpu], b.tasks[i].demand[Resource::Gpu]);
  }
  EXPECT_DOUBLE_EQ(a.job.ideal_iteration_seconds(), b.job.ideal_iteration_seconds());
}

TEST(ModelZoo, DeadlineFollowsPaperFormula) {
  // deadline = arrival + max(1.1 * t_e, t_r) (§4.1).
  auto spec = base_spec(MlAlgorithm::Mlp, 2, CommStructure::AllReduce);
  spec.arrival = 1000.0;
  spec.deadline_slack_hours = 0.5;  // tiny t_r: 1.1 t_e should dominate for long jobs
  spec.max_iterations = 500;
  auto inst = ModelZoo::instantiate(spec, 0);
  const double te = inst.job.estimated_execution_seconds();
  EXPECT_NEAR(inst.job.deadline(), 1000.0 + std::max(1.1 * te, hours(0.5)), 1e-6);

  spec.deadline_slack_hours = 24.0;  // huge t_r dominates for short jobs
  spec.max_iterations = 5;
  inst = ModelZoo::instantiate(spec, 0);
  EXPECT_NEAR(inst.job.deadline(), 1000.0 + hours(24.0), 1e-6);
}

TEST(ModelZoo, IdealIterationTimeSequentialSumsPartitions) {
  // For a sequential chain the critical path includes every partition.
  auto spec = base_spec(MlAlgorithm::AlexNet, 4, CommStructure::AllReduce);
  const auto inst = ModelZoo::instantiate(spec, 0);
  double sum = 0.0;
  for (const Task& t : inst.tasks) sum += t.base_compute_seconds;
  EXPECT_GE(inst.job.ideal_iteration_seconds(), sum);  // + comm time
}

}  // namespace
}  // namespace mlfs
