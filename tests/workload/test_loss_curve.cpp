#include "workload/loss_curve.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace mlfs {
namespace {

LossCurve::Params clean_params() {
  LossCurve::Params p;
  p.max_accuracy = 0.9;
  p.kappa = 10.0;
  p.initial_loss = 2.0;
  p.final_loss = 0.1;
  p.noise_sigma = 0.0;
  return p;
}

TEST(LossCurve, AccuracyStartsAtZeroAndSaturates) {
  const LossCurve c(clean_params());
  EXPECT_DOUBLE_EQ(c.accuracy_at(0), 0.0);
  EXPECT_DOUBLE_EQ(c.accuracy_at(10), 0.45);  // a_max * k/(k+k) = a_max/2
  EXPECT_LT(c.accuracy_at(10000), 0.9);
  EXPECT_GT(c.accuracy_at(10000), 0.89);
}

TEST(LossCurve, AccuracyMonotonicallyIncreasing) {
  const LossCurve c(clean_params());
  for (int i = 0; i < 200; ++i) EXPECT_LT(c.accuracy_at(i), c.accuracy_at(i + 1));
}

TEST(LossCurve, LossMonotonicallyDecreasing) {
  const LossCurve c(clean_params());
  EXPECT_DOUBLE_EQ(c.loss_at(0), 2.0);
  for (int i = 0; i < 200; ++i) EXPECT_GT(c.loss_at(i), c.loss_at(i + 1));
  EXPECT_GT(c.loss_at(100000), 0.1);
}

TEST(LossCurve, DeltaLossDiminishingReturns) {
  // The temporal feature MLFS exploits (§3.3.1): earlier iterations have
  // strictly larger loss reductions.
  const LossCurve c(clean_params());
  for (int i = 1; i < 100; ++i) {
    EXPECT_GT(c.observed_delta_loss(i), c.observed_delta_loss(i + 1));
    EXPECT_GT(c.observed_delta_loss(i), 0.0);
  }
}

TEST(LossCurve, NoisyDeltaLossIsDeterministicPerIteration) {
  auto p = clean_params();
  p.noise_sigma = 0.2;
  p.noise_seed = 42;
  const LossCurve c(p);
  for (int i = 1; i <= 20; ++i) {
    EXPECT_DOUBLE_EQ(c.observed_delta_loss(i), c.observed_delta_loss(i));
  }
  // Different seeds give different observations.
  p.noise_seed = 43;
  const LossCurve c2(p);
  int differing = 0;
  for (int i = 1; i <= 20; ++i) {
    if (c.observed_delta_loss(i) != c2.observed_delta_loss(i)) ++differing;
  }
  EXPECT_GT(differing, 15);
}

TEST(LossCurve, IterationsToAccuracyInvertsTheCurve) {
  const LossCurve c(clean_params());
  for (const double target : {0.1, 0.3, 0.45, 0.7, 0.85}) {
    const int need = c.iterations_to_accuracy(target, 1000000);
    EXPECT_GE(c.accuracy_at(need), target);
    if (need > 0) EXPECT_LT(c.accuracy_at(need - 1), target);
  }
}

TEST(LossCurve, IterationsToAccuracyEdgeCases) {
  const LossCurve c(clean_params());
  EXPECT_EQ(c.iterations_to_accuracy(0.0, 100), 0);
  EXPECT_EQ(c.iterations_to_accuracy(-1.0, 100), 0);
  // Unreachable target returns the limit.
  EXPECT_EQ(c.iterations_to_accuracy(0.95, 100), 100);
  EXPECT_EQ(c.iterations_to_accuracy(0.9, 100), 100);  // asymptote itself
}

TEST(LossCurve, ParamValidation) {
  auto p = clean_params();
  p.max_accuracy = 0.0;
  EXPECT_THROW(LossCurve{p}, ContractViolation);
  p = clean_params();
  p.kappa = 0.0;
  EXPECT_THROW(LossCurve{p}, ContractViolation);
  p = clean_params();
  p.final_loss = 3.0;  // above initial
  EXPECT_THROW(LossCurve{p}, ContractViolation);
}

TEST(LossCurve, NegativeIterationRejected) {
  const LossCurve c(clean_params());
  EXPECT_THROW(c.accuracy_at(-1), ContractViolation);
  EXPECT_THROW(c.observed_delta_loss(0), ContractViolation);
}

}  // namespace
}  // namespace mlfs
