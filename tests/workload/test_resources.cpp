#include "workload/resources.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mlfs {
namespace {

TEST(ResourceVector, DefaultIsZero) {
  const ResourceVector v;
  for (std::size_t i = 0; i < kNumResources; ++i) EXPECT_DOUBLE_EQ(v.at(i), 0.0);
}

TEST(ResourceVector, IndexingByEnum) {
  ResourceVector v(0.1, 0.2, 0.3, 0.4);
  EXPECT_DOUBLE_EQ(v[Resource::Gpu], 0.1);
  EXPECT_DOUBLE_EQ(v[Resource::Cpu], 0.2);
  EXPECT_DOUBLE_EQ(v[Resource::Mem], 0.3);
  EXPECT_DOUBLE_EQ(v[Resource::Net], 0.4);
  v[Resource::Net] = 0.9;
  EXPECT_DOUBLE_EQ(v[Resource::Net], 0.9);
}

TEST(ResourceVector, Arithmetic) {
  const ResourceVector a(1.0, 2.0, 3.0, 4.0);
  const ResourceVector b(0.5, 0.5, 0.5, 0.5);
  const ResourceVector sum = a + b;
  const ResourceVector diff = a - b;
  const ResourceVector scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(sum[Resource::Gpu], 1.5);
  EXPECT_DOUBLE_EQ(diff[Resource::Net], 3.5);
  EXPECT_DOUBLE_EQ(scaled[Resource::Mem], 6.0);
}

TEST(ResourceVector, NormIsEuclidean) {
  const ResourceVector v(1.0, 2.0, 2.0, 0.0);
  EXPECT_DOUBLE_EQ(v.norm(), 3.0);
}

TEST(ResourceVector, DistanceIsSymmetricAndZeroOnSelf) {
  const ResourceVector a(0.3, 0.1, 0.9, 0.2);
  const ResourceVector b(0.7, 0.5, 0.1, 0.6);
  EXPECT_DOUBLE_EQ(a.distance(a), 0.0);
  EXPECT_DOUBLE_EQ(a.distance(b), b.distance(a));
  EXPECT_NEAR(a.distance(b), std::sqrt(0.16 + 0.16 + 0.64 + 0.16), 1e-12);
}

TEST(ResourceVector, FitsWithin) {
  const ResourceVector small(0.1, 0.1, 0.1, 0.1);
  const ResourceVector big(0.5, 0.5, 0.5, 0.5);
  EXPECT_TRUE(small.fits_within(big));
  EXPECT_FALSE(big.fits_within(small));
  // Epsilon tolerance.
  EXPECT_TRUE(big.fits_within(ResourceVector(0.5, 0.5, 0.5, 0.5)));
}

TEST(ResourceVector, MaxComponentAndClamp) {
  ResourceVector v(0.2, -0.1, 0.8, 0.3);
  EXPECT_DOUBLE_EQ(v.max_component(), 0.8);
  v.clamp_non_negative();
  EXPECT_DOUBLE_EQ(v[Resource::Cpu], 0.0);
  EXPECT_DOUBLE_EQ(v[Resource::Mem], 0.8);
}

TEST(ResourceVector, UniformFactory) {
  const ResourceVector v = ResourceVector::uniform(0.25);
  for (std::size_t i = 0; i < kNumResources; ++i) EXPECT_DOUBLE_EQ(v.at(i), 0.25);
}

TEST(ResourceVector, NamesAndPrinting) {
  EXPECT_STREQ(resource_name(Resource::Gpu), "gpu");
  EXPECT_STREQ(resource_name(Resource::Net), "net");
  const ResourceVector v(0.1, 0.2, 0.3, 0.4);
  const std::string s = v.to_string();
  EXPECT_NE(s.find("gpu=0.1"), std::string::npos);
  EXPECT_NE(s.find("net=0.4"), std::string::npos);
}

}  // namespace
}  // namespace mlfs
