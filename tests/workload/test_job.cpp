#include "workload/job.hpp"

#include <gtest/gtest.h>

#include "workload/model_zoo.hpp"

namespace mlfs {
namespace {

Job make_job(StopPolicy policy = StopPolicy::FixedIterations,
             StopPolicy min_allowed = StopPolicy::AccuracyOnly) {
  JobSpec spec;
  spec.id = 0;
  spec.algorithm = MlAlgorithm::Mlp;
  spec.comm = CommStructure::AllReduce;
  spec.gpu_request = 2;
  spec.max_iterations = 20;
  spec.stop_policy = policy;
  spec.min_allowed_policy = min_allowed;
  spec.curve.max_accuracy = 0.8;
  spec.curve.kappa = 5.0;
  spec.seed = 7;
  return std::move(ModelZoo::instantiate(spec, 0).job);
}

TEST(Job, IterationProgressAccumulatesLossReductions) {
  Job job = make_job();
  EXPECT_EQ(job.completed_iterations(), 0);
  EXPECT_DOUBLE_EQ(job.current_accuracy(), 0.0);
  job.complete_iteration();
  job.complete_iteration();
  EXPECT_EQ(job.completed_iterations(), 2);
  EXPECT_EQ(job.loss_reductions().size(), 2u);
  EXPECT_GT(job.cumulative_loss_reduction(), 0.0);
  EXPECT_NEAR(job.cumulative_loss_reduction(),
              job.loss_reductions()[0] + job.loss_reductions()[1], 1e-12);
  EXPECT_GT(job.current_accuracy(), 0.0);
}

TEST(Job, CannotExceedMaxIterations) {
  Job job = make_job();
  for (int i = 0; i < 20; ++i) job.complete_iteration();
  EXPECT_THROW(job.complete_iteration(), ContractViolation);
}

TEST(Job, PolicyDowngradeRespectsPermission) {
  Job job = make_job(StopPolicy::FixedIterations, StopPolicy::OptStop);
  EXPECT_TRUE(job.downgrade_policy(StopPolicy::OptStop));
  EXPECT_EQ(job.active_policy(), StopPolicy::OptStop);
  // AccuracyOnly is beyond the permitted bound.
  EXPECT_FALSE(job.downgrade_policy(StopPolicy::AccuracyOnly));
  EXPECT_EQ(job.active_policy(), StopPolicy::OptStop);
}

TEST(Job, PolicyNeverUpgrades) {
  Job job = make_job(StopPolicy::AccuracyOnly, StopPolicy::AccuracyOnly);
  EXPECT_FALSE(job.downgrade_policy(StopPolicy::OptStop));
  EXPECT_EQ(job.active_policy(), StopPolicy::AccuracyOnly);
}

TEST(Job, DowngradeIsIdempotent) {
  Job job = make_job(StopPolicy::FixedIterations, StopPolicy::AccuracyOnly);
  EXPECT_TRUE(job.downgrade_policy(StopPolicy::AccuracyOnly));
  EXPECT_FALSE(job.downgrade_policy(StopPolicy::AccuracyOnly));
}

TEST(Job, TargetIterationsClampedToMaxAndCompleted) {
  Job job = make_job();
  job.set_target_iterations(100);
  EXPECT_EQ(job.target_iterations(), 20);  // clamped to max
  job.complete_iteration();
  job.complete_iteration();
  job.set_target_iterations(1);
  EXPECT_EQ(job.target_iterations(), 2);  // cannot un-run iterations
}

TEST(Job, AccuracyByDeadlineUsesDeadlineFreeze) {
  Job job = make_job();
  job.complete_iteration();
  job.complete_iteration();
  job.record_deadline_progress();  // deadline passed at 2 iterations
  for (int i = 0; i < 5; ++i) job.complete_iteration();
  job.set_completion_time(job.deadline() + 100.0);  // finished after deadline
  EXPECT_DOUBLE_EQ(job.accuracy_by_deadline(), job.curve().accuracy_at(2));
}

TEST(Job, AccuracyByDeadlineUsesFinalWhenOnTime) {
  Job job = make_job();
  for (int i = 0; i < 5; ++i) job.complete_iteration();
  job.set_completion_time(job.deadline() - 100.0);  // finished before deadline
  EXPECT_DOUBLE_EQ(job.accuracy_by_deadline(), job.curve().accuracy_at(5));
}

TEST(Job, WaitingTimeAccumulates) {
  Job job = make_job();
  job.add_waiting_time(10.0);
  job.add_waiting_time(5.5);
  EXPECT_DOUBLE_EQ(job.waiting_time(), 15.5);
}

}  // namespace
}  // namespace mlfs
