#include "workload/dag.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/expect.hpp"

namespace mlfs {
namespace {

/// Diamond: 0 -> {1, 2} -> 3.
Dag diamond() {
  Dag d(4);
  d.add_edge(0, 1);
  d.add_edge(0, 2);
  d.add_edge(1, 3);
  d.add_edge(2, 3);
  return d;
}

TEST(Dag, EdgesAndAdjacency) {
  const Dag d = diamond();
  EXPECT_EQ(d.edge_count(), 4u);
  EXPECT_EQ(d.children(0).size(), 2u);
  EXPECT_EQ(d.parents(3).size(), 2u);
  EXPECT_TRUE(d.is_source(0));
  EXPECT_TRUE(d.is_sink(3));
  EXPECT_FALSE(d.is_sink(1));
}

TEST(Dag, DuplicateEdgesIgnored) {
  Dag d(2);
  d.add_edge(0, 1);
  d.add_edge(0, 1);
  EXPECT_EQ(d.edge_count(), 1u);
}

TEST(Dag, SelfEdgeRejected) {
  Dag d(2);
  EXPECT_THROW(d.add_edge(1, 1), ContractViolation);
  EXPECT_THROW(d.add_edge(0, 5), ContractViolation);
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  const Dag d = diamond();
  const auto order = d.topological_order();
  ASSERT_EQ(order.size(), 4u);
  auto pos = [&order](std::size_t v) {
    return std::find(order.begin(), order.end(), v) - order.begin();
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(0), pos(2));
  EXPECT_LT(pos(1), pos(3));
  EXPECT_LT(pos(2), pos(3));
}

TEST(Dag, ReverseTopologicalIsReversed) {
  const Dag d = diamond();
  auto fwd = d.topological_order();
  auto rev = d.reverse_topological_order();
  std::reverse(rev.begin(), rev.end());
  EXPECT_EQ(fwd, rev);
}

TEST(Dag, CycleDetection) {
  Dag d(3);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  EXPECT_TRUE(d.is_acyclic());
  d.add_edge(2, 0);
  EXPECT_FALSE(d.is_acyclic());
  EXPECT_THROW(d.topological_order(), ContractViolation);
}

TEST(Dag, Layers) {
  const Dag d = diamond();
  const auto layers = d.layers();
  EXPECT_EQ(layers[0], 0u);
  EXPECT_EQ(layers[1], 1u);
  EXPECT_EQ(layers[2], 1u);
  EXPECT_EQ(layers[3], 2u);
}

TEST(Dag, DescendantCounts) {
  const Dag d = diamond();
  const auto counts = d.descendant_counts();
  EXPECT_EQ(counts[0], 3u);  // 1, 2, 3
  EXPECT_EQ(counts[1], 1u);  // 3
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 0u);
}

TEST(Dag, DescendantCountsNoDoubleCounting) {
  // 0 -> 1 -> 3, 0 -> 2 -> 3: node 3 reachable two ways, counted once.
  const Dag d = diamond();
  EXPECT_EQ(d.descendant_counts()[0], 3u);
}

TEST(Dag, DepthToSink) {
  const Dag d = diamond();
  const auto depth = d.depth_to_sink();
  EXPECT_EQ(depth[0], 2u);
  EXPECT_EQ(depth[1], 1u);
  EXPECT_EQ(depth[2], 1u);
  EXPECT_EQ(depth[3], 0u);
}

TEST(Dag, ChainProperties) {
  Dag d(5);
  for (std::size_t i = 0; i + 1 < 5; ++i) d.add_edge(i, i + 1);
  const auto counts = d.descendant_counts();
  const auto depth = d.depth_to_sink();
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(counts[i], 4u - i);
    EXPECT_EQ(depth[i], 4u - i);
  }
}

TEST(Dag, EmptyAndSingleNode) {
  Dag empty;
  EXPECT_EQ(empty.node_count(), 0u);
  EXPECT_TRUE(empty.topological_order().empty());

  Dag one(1);
  EXPECT_TRUE(one.is_source(0));
  EXPECT_TRUE(one.is_sink(0));
  EXPECT_EQ(one.topological_order(), std::vector<std::size_t>{0});
}

TEST(Dag, DisconnectedComponents) {
  Dag d(4);
  d.add_edge(0, 1);
  d.add_edge(2, 3);
  EXPECT_TRUE(d.is_acyclic());
  EXPECT_EQ(d.topological_order().size(), 4u);
  const auto counts = d.descendant_counts();
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[2], 1u);
}

}  // namespace
}  // namespace mlfs
