#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>

#include "workload/model_zoo.hpp"

namespace mlfs {
namespace {

TraceConfig small_config() {
  TraceConfig c;
  c.num_jobs = 500;
  c.duration_hours = 48.0;
  c.seed = 11;
  return c;
}

TEST(Trace, GeneratesRequestedCountSortedByArrival) {
  PhillyTraceGenerator gen(small_config());
  const auto jobs = gen.generate();
  ASSERT_EQ(jobs.size(), 500u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, i);  // dense sequential ids
    if (i > 0) EXPECT_GE(jobs[i].arrival, jobs[i - 1].arrival);
    EXPECT_GE(jobs[i].arrival, 0.0);
    EXPECT_LE(jobs[i].arrival, hours(48.0));
  }
}

TEST(Trace, DeterministicPerSeed) {
  const auto a = PhillyTraceGenerator(small_config()).generate();
  const auto b = PhillyTraceGenerator(small_config()).generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].algorithm, b[i].algorithm);
    EXPECT_EQ(a[i].gpu_request, b[i].gpu_request);
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
}

TEST(Trace, GpuRequestsFromPaperChoices) {
  const auto jobs = PhillyTraceGenerator(small_config()).generate();
  std::map<int, int> histogram;
  for (const auto& j : jobs) ++histogram[j.gpu_request];
  for (const auto& [gpus, count] : histogram) {
    EXPECT_TRUE(gpus == 1 || gpus == 2 || gpus == 4 || gpus == 8 || gpus == 16 || gpus == 32)
        << gpus;
    EXPECT_GT(count, 0);
  }
  // Small-job skew: 1-GPU jobs are the most common bucket.
  int max_count = 0;
  int max_gpus = 0;
  for (const auto& [gpus, count] : histogram) {
    if (count > max_count) {
      max_count = count;
      max_gpus = gpus;
    }
  }
  EXPECT_EQ(max_gpus, 1);
}

TEST(Trace, MaxGpuRequestClampHolds) {
  auto config = small_config();
  config.max_gpu_request = 4;
  const auto jobs = PhillyTraceGenerator(config).generate();
  for (const auto& j : jobs) EXPECT_LE(j.gpu_request, 4);
}

TEST(Trace, SvmNeverExceedsEightWorkers) {
  const auto jobs = PhillyTraceGenerator(small_config()).generate();
  for (const auto& j : jobs) {
    if (j.algorithm == MlAlgorithm::Svm) EXPECT_LE(j.gpu_request, 8);
  }
}

TEST(Trace, FieldRangesMatchPaperSettings) {
  const auto config = small_config();
  const auto jobs = PhillyTraceGenerator(config).generate();
  for (const auto& j : jobs) {
    EXPECT_GE(j.urgency, 1.0);
    EXPECT_LE(j.urgency, 10.0);
    EXPECT_GE(j.train_data_mb, 100.0);  // §4.1: U[100, 1000] MB
    EXPECT_LE(j.train_data_mb, 1000.0);
    EXPECT_GE(j.comm_volume_ps_mb, 50.0);  // §4.1: U[50, 100] MB
    EXPECT_LE(j.comm_volume_ps_mb, 100.0);
    EXPECT_GE(j.comm_volume_ww_mb, 50.0);
    EXPECT_LE(j.comm_volume_ww_mb, 100.0);
    EXPECT_GE(j.deadline_slack_hours, 0.5);  // §4.1: U[0.5, 24] h
    EXPECT_LE(j.deadline_slack_hours, 24.0);
    EXPECT_GE(j.max_iterations, config.min_iterations);
    EXPECT_LE(j.max_iterations, config.max_iterations);
    EXPECT_GT(j.accuracy_requirement, 0.0);
    EXPECT_LT(j.accuracy_requirement, j.curve.max_accuracy);
  }
}

TEST(Trace, AccuracyRequirementReachableWithinBudget) {
  const auto jobs = PhillyTraceGenerator(small_config()).generate();
  for (const auto& j : jobs) {
    const LossCurve curve(j.curve);
    const int needed = curve.iterations_to_accuracy(j.accuracy_requirement, j.max_iterations + 1);
    EXPECT_LE(needed, j.max_iterations) << "job " << j.id;
  }
}

TEST(Trace, StopPolicyMixRoughlyMatchesConfig) {
  auto config = small_config();
  config.num_jobs = 2000;
  const auto jobs = PhillyTraceGenerator(config).generate();
  std::map<StopPolicy, int> counts;
  int downgradable = 0;
  for (const auto& j : jobs) {
    ++counts[j.stop_policy];
    if (j.min_allowed_policy == StopPolicy::AccuracyOnly) ++downgradable;
    // min_allowed is never stricter than the submitted policy.
    EXPECT_GE(static_cast<int>(j.min_allowed_policy), static_cast<int>(j.stop_policy));
  }
  const double n = 2000.0;
  EXPECT_NEAR(counts[StopPolicy::FixedIterations] / n, config.policy_fixed_fraction, 0.05);
  EXPECT_NEAR(counts[StopPolicy::OptStop] / n, config.policy_optstop_fraction, 0.05);
  EXPECT_NEAR(downgradable / n, config.allow_downgrade_fraction, 0.05);
}

TEST(Trace, CsvRoundTripExact) {
  auto config = small_config();
  config.num_jobs = 50;
  const auto jobs = PhillyTraceGenerator(config).generate();
  std::stringstream ss;
  write_trace_csv(ss, jobs);
  const auto loaded = read_trace_csv(ss);
  ASSERT_EQ(loaded.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(loaded[i].id, jobs[i].id);
    EXPECT_EQ(loaded[i].algorithm, jobs[i].algorithm);
    EXPECT_EQ(loaded[i].comm, jobs[i].comm);
    EXPECT_DOUBLE_EQ(loaded[i].arrival, jobs[i].arrival);
    EXPECT_DOUBLE_EQ(loaded[i].urgency, jobs[i].urgency);
    EXPECT_EQ(loaded[i].max_iterations, jobs[i].max_iterations);
    EXPECT_EQ(loaded[i].gpu_request, jobs[i].gpu_request);
    EXPECT_DOUBLE_EQ(loaded[i].accuracy_requirement, jobs[i].accuracy_requirement);
    EXPECT_DOUBLE_EQ(loaded[i].curve.max_accuracy, jobs[i].curve.max_accuracy);
    EXPECT_DOUBLE_EQ(loaded[i].curve.kappa, jobs[i].curve.kappa);
    EXPECT_EQ(loaded[i].curve.noise_seed, jobs[i].curve.noise_seed);
    EXPECT_EQ(loaded[i].stop_policy, jobs[i].stop_policy);
    EXPECT_EQ(loaded[i].min_allowed_policy, jobs[i].min_allowed_policy);
    EXPECT_EQ(loaded[i].seed, jobs[i].seed);
  }
}

TEST(Trace, DiurnalModulationShiftsArrivals) {
  // With strong diurnal amplitude, more arrivals land in the "day" half
  // (sin > 0: hours 0-12 of each day) than in the "night" half.
  auto config = small_config();
  config.num_jobs = 4000;
  config.duration_hours = 96.0;
  config.diurnal_amplitude = 0.8;
  const auto jobs = PhillyTraceGenerator(config).generate();
  int day = 0;
  for (const auto& j : jobs) {
    const double hour_of_day = std::fmod(to_hours(j.arrival), 24.0);
    if (hour_of_day < 12.0) ++day;
  }
  EXPECT_GT(day, 2200);  // > 55% in the boosted half
}

TEST(Trace, RejectsBadConfig) {
  auto config = small_config();
  config.num_jobs = 0;
  EXPECT_THROW(PhillyTraceGenerator{config}, ContractViolation);
  config = small_config();
  config.min_iterations = 10;
  config.max_iterations = 5;
  EXPECT_THROW(PhillyTraceGenerator{config}, ContractViolation);
  config = small_config();
  config.diurnal_amplitude = 1.5;
  EXPECT_THROW(PhillyTraceGenerator{config}, ContractViolation);
}

}  // namespace
}  // namespace mlfs
