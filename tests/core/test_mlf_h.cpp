// MLF-H end-to-end behaviour on the engine: placement, ordering, overload
// relief (§3.3.2-3.3.3).
#include "core/mlf_h.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "workload/trace.hpp"

namespace mlfs::core {
namespace {

ClusterConfig small_cluster() {
  ClusterConfig c;
  c.server_count = 4;
  c.gpus_per_server = 4;
  return c;
}

std::vector<JobSpec> trace(std::size_t jobs, std::uint64_t seed) {
  TraceConfig config;
  config.num_jobs = jobs;
  config.duration_hours = 6.0;
  config.seed = seed;
  config.max_gpu_request = 8;
  config.max_iterations = 40;
  return PhillyTraceGenerator(config).generate();
}

TEST(MlfH, CompletesWorkload) {
  MlfH scheduler{MlfsConfig{}};
  SimEngine engine(small_cluster(), {}, trace(30, 3), scheduler);
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.jct_minutes.count(), 30u);
  for (const Job& job : engine.cluster().jobs()) EXPECT_TRUE(job.done());
}

TEST(MlfH, OrderedQueueIsPriorityDescending) {
  MlfsConfig config;
  MlfH scheduler{config};
  SimEngine engine(small_cluster(), {}, trace(20, 5), scheduler);
  // Drive a few events so a queue forms, then inspect ordering invariants
  // through the public API: schedule a custom probe scheduler instead.
  // Here we validate post-run that priorities were computable for all.
  (void)engine.run();
  SUCCEED();
}

TEST(MlfH, PriorityCacheEvictedAsJobsComplete) {
  // The per-job priority cache must not grow without bound: every job that
  // completes must have its entry erased (a long-lived scheduler otherwise
  // accumulates one entry per job ever seen).
  MlfH scheduler{MlfsConfig{}};
  SimEngine engine(small_cluster(), {}, trace(30, 3), scheduler);
  (void)engine.run();
  for (const Job& job : engine.cluster().jobs()) ASSERT_TRUE(job.done());
  EXPECT_EQ(scheduler.priority_cache_size(), 0u);
}

TEST(MlfH, ReportsHotPathStats) {
  MlfH scheduler{MlfsConfig{}};
  SimEngine engine(small_cluster(), {}, trace(30, 3), scheduler);
  const RunMetrics m = engine.run();
  EXPECT_GT(m.sched_rounds, 0u);
  EXPECT_GT(m.candidates_scanned, 0u);
  EXPECT_EQ(m.candidates_scanned, scheduler.sched_stats().candidates_scanned);
  // Default cluster config runs the incremental index.
  EXPECT_GT(m.servers_reindexed, 0u);
  EXPECT_GT(m.load_index_rebuilds, 0u);
}

TEST(MlfH, MigrationDisabledProducesNoMigrations) {
  MlfsConfig config;
  config.migration.enabled = false;  // Fig. 8 ablation switch
  MlfH scheduler{config};
  SimEngine engine(small_cluster(), {}, trace(40, 7), scheduler);
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.migrations, 0u);
}

TEST(MlfH, MigrationEnabledReducesOverloadOccurrences) {
  const auto specs = trace(60, 11);
  MlfsConfig with;
  MlfH sched_with{with};
  SimEngine engine_with(small_cluster(), {}, specs, sched_with);
  const RunMetrics m_with = engine_with.run();

  MlfsConfig without;
  without.migration.enabled = false;
  MlfH sched_without{without};
  SimEngine engine_without(small_cluster(), {}, specs, sched_without);
  const RunMetrics m_without = engine_without.run();

  EXPECT_GT(m_with.migrations, 0u);
  // Fig. 8(a): task migration reduces server overload occurrences.
  EXPECT_LT(m_with.overload_occurrences, m_without.overload_occurrences);
}

TEST(MlfH, PlacementObserverSeesSuccessfulPlacements) {
  MlfsConfig config;
  MlfH scheduler{config};
  std::size_t observed = 0;
  scheduler.set_placement_observer(
      [&observed](SchedulerContext& ctx, TaskId task, ServerId server) {
        ++observed;
        EXPECT_LT(server, ctx.cluster.server_count());
        // The observer sees the *pre-placement* state (the decision
        // input); the task is still queued at this point.
        EXPECT_EQ(ctx.cluster.task(task).state, TaskState::Queued);
      });
  SimEngine engine(small_cluster(), {}, trace(15, 13), scheduler);
  (void)engine.run();
  EXPECT_GT(observed, 0u);
}

TEST(MlfH, TaskPriorityCachingConsistent) {
  MlfsConfig config;
  MlfH scheduler{config};
  Cluster& cluster = [] {
    static SimEngine* engine = nullptr;
    (void)engine;
    static MlfH s{MlfsConfig{}};
    static SimEngine e(ClusterConfig{2, 2, 1000.0}, EngineConfig{}, trace(4, 17), s);
    return std::ref(e.cluster());
  }();
  // Same (task, time) queried twice yields identical cached values.
  const Job& job = cluster.job(0);
  const double p1 = scheduler.task_priority(cluster, job.task_at(0), 60.0);
  const double p2 = scheduler.task_priority(cluster, job.task_at(0), 60.0);
  EXPECT_DOUBLE_EQ(p1, p2);
  // Different time invalidates the cache (waiting time grew).
  const double p3 = scheduler.task_priority(cluster, job.task_at(0), hours(2.0));
  EXPECT_NE(p1, p3);
}

}  // namespace
}  // namespace mlfs::core
