// Validates the priority equations (Eqs. 2-6) against hand-computed
// values and the monotonicity properties §3.3.1 claims.
#include "core/priority.hpp"

#include <gtest/gtest.h>

#include "workload/model_zoo.hpp"

namespace mlfs::core {
namespace {

struct Fixture {
  Cluster cluster{ClusterConfig{2, 4, 1000.0}};

  JobId add(JobSpec spec) {
    spec.id = static_cast<JobId>(cluster.job_count());
    auto inst = ModelZoo::instantiate(spec, static_cast<TaskId>(cluster.task_count()));
    cluster.register_job(std::move(inst.job), std::move(inst.tasks));
    return spec.id;
  }

  static JobSpec spec(MlAlgorithm algo, int gpus, double urgency,
                      CommStructure comm = CommStructure::AllReduce) {
    JobSpec s;
    s.algorithm = algo;
    s.comm = comm;
    s.gpu_request = gpus;
    s.urgency = urgency;
    s.max_iterations = 50;
    s.seed = 77;
    s.curve.max_accuracy = 0.9;
    s.curve.kappa = 10.0;
    s.curve.noise_sigma = 0.0;
    return s;
  }
};

TEST(Priority, Eq2HandComputedForFreshIndependentTasks) {
  Fixture f;
  // SVM + all-reduce: no DAG edges, S_k/S_J = 1 for every task, so the
  // Eq. 3 recursion is trivial and P'^ML = L_J * (1/I) * 1 * 1.
  const JobId id = f.add(Fixture::spec(MlAlgorithm::Svm, 4, 7.0));
  const PriorityCalculator calc{PriorityParams{}};
  const auto ml = calc.ml_priorities(f.cluster, f.cluster.job(id));
  // Fresh job: I = 1, loss ratio = 1, size ratio = 1; urgency L_J
  // normalized by m = 10 (see priority.cpp).
  for (const double p : ml) EXPECT_DOUBLE_EQ(p, 0.7);
}

TEST(Priority, Eq2IterationDecay) {
  Fixture f;
  const JobId id = f.add(Fixture::spec(MlAlgorithm::Svm, 2, 1.0));
  Job& job = f.cluster.job(id);
  const PriorityCalculator calc{PriorityParams{}};

  const double fresh = calc.ml_priorities(f.cluster, job)[0];
  job.complete_iteration();  // now I = 2
  const double after_one = calc.ml_priorities(f.cluster, job)[0];
  // 1/I halves; loss ratio is 1 (only one completed iteration).
  EXPECT_NEAR(after_one, fresh / 2.0, 1e-12);

  job.complete_iteration();  // I = 3; loss ratio < 1 now
  const double after_two = calc.ml_priorities(f.cluster, job)[0];
  EXPECT_LT(after_two, after_one);
}

TEST(Priority, Eq3ChainRecursionHandComputed) {
  Fixture f;
  // MLP + all-reduce: a pure chain 0 -> 1. With gamma = 0.8:
  //   P(1) = base(1);  P(0) = base(0) + 0.8 * P(1).
  const JobId id = f.add(Fixture::spec(MlAlgorithm::Mlp, 2, 5.0));
  const Job& job = f.cluster.job(id);
  PriorityParams params;
  params.gamma = 0.8;
  const PriorityCalculator calc{params};
  const auto ml = calc.ml_priorities(f.cluster, job);

  const Task& t0 = f.cluster.task(job.task_at(0));
  const Task& t1 = f.cluster.task(job.task_at(1));
  const double base0 = 0.5 * (t0.partition_params_m / job.total_params_m());
  const double base1 = 0.5 * (t1.partition_params_m / job.total_params_m());
  EXPECT_NEAR(ml[1], base1, 1e-12);
  EXPECT_NEAR(ml[0], base0 + 0.8 * base1, 1e-12);
}

TEST(Priority, ChainHeadOutranksSinkOnMlComponent) {
  // §3.3.1: "the more tasks that depend on task k, the higher priority".
  // With randomized partition sizes strict per-hop monotonicity is not
  // guaranteed (a huge downstream partition can locally outrank a tiny
  // upstream one), but the head of a chain — on which everything depends —
  // must dominate the sink.
  Fixture f;
  const JobId id = f.add(Fixture::spec(MlAlgorithm::AlexNet, 8, 3.0));
  const Job& job = f.cluster.job(id);
  const PriorityCalculator calc{PriorityParams{}};
  const auto ml = calc.ml_priorities(f.cluster, job);
  const auto depth = job.dag().depth_to_sink();
  std::size_t head = 0;
  std::size_t sink = 0;
  for (std::size_t k = 0; k < job.task_count(); ++k) {
    if (f.cluster.task(job.task_at(k)).is_parameter_server) continue;
    if (depth[k] > depth[head]) head = k;
    if (depth[k] < depth[sink]) sink = k;
  }
  ASSERT_GT(depth[head], depth[sink]);
  EXPECT_GT(ml[head], ml[sink]);
}

TEST(Priority, UrgencyMonotonicity) {
  Fixture f;
  const JobId low = f.add(Fixture::spec(MlAlgorithm::Svm, 2, 2.0));
  const JobId high = f.add(Fixture::spec(MlAlgorithm::Svm, 2, 9.0));
  const PriorityCalculator calc{PriorityParams{}};
  EXPECT_GT(calc.ml_priorities(f.cluster, f.cluster.job(high))[0],
            calc.ml_priorities(f.cluster, f.cluster.job(low))[0]);
}

TEST(Priority, UrgencyAblationRemovesEffect) {
  Fixture f;
  const JobId low = f.add(Fixture::spec(MlAlgorithm::Svm, 2, 2.0));
  const JobId high = f.add(Fixture::spec(MlAlgorithm::Svm, 2, 9.0));
  PriorityParams params;
  params.use_urgency = false;  // Fig. 6 ablation
  const PriorityCalculator calc{params};
  EXPECT_DOUBLE_EQ(calc.ml_priorities(f.cluster, f.cluster.job(high))[0],
                   calc.ml_priorities(f.cluster, f.cluster.job(low))[0]);
}

TEST(Priority, LargerPartitionHigherMlPriority) {
  Fixture f;
  const JobId id = f.add(Fixture::spec(MlAlgorithm::Svm, 1, 1.0));
  (void)id;
  // Compare S_k effect via two MLP chain tasks of unequal size: pick the
  // job and compare base (non-recursive) contributions at the sinks only.
  const JobId mlp = f.add(Fixture::spec(MlAlgorithm::Mlp, 4, 1.0));
  const Job& job = f.cluster.job(mlp);
  const PriorityCalculator calc{PriorityParams{}};
  const auto ml = calc.ml_priorities(f.cluster, job);
  // Sink task (3) has no children: its ML priority is proportional to its
  // partition size — verify directly (urgency 1 normalized by 10).
  const Task& sink = f.cluster.task(job.task_at(3));
  EXPECT_NEAR(ml[3], 0.1 * sink.partition_params_m / job.total_params_m(), 1e-12);
}

TEST(Priority, Eq4WaitingTimeIncreasesPriority) {
  Fixture f;
  const JobId id = f.add(Fixture::spec(MlAlgorithm::Svm, 2, 1.0));
  const Job& job = f.cluster.job(id);
  Task& task = f.cluster.task(job.task_at(0));
  task.queued_since = 0.0;
  const PriorityCalculator calc{PriorityParams{}};
  const double early = calc.computation_priorities(f.cluster, job, minutes(10))[0];
  const double later = calc.computation_priorities(f.cluster, job, hours(5))[0];
  EXPECT_GT(later, early);
}

TEST(Priority, Eq4DeadlineProximityBoost) {
  Fixture f;
  const JobId id = f.add(Fixture::spec(MlAlgorithm::Svm, 1, 1.0));
  Job& job = f.cluster.job(id);
  job.set_deadline(hours(100.0));
  const PriorityCalculator calc{PriorityParams{}};
  const double far = calc.computation_priorities(f.cluster, job, hours(1.0))[0];
  const double near = calc.computation_priorities(f.cluster, job, hours(99.5))[0];
  // Waiting time also grows; isolate the deadline effect via ablation.
  PriorityParams no_deadline;
  no_deadline.use_deadline_term = false;
  const PriorityCalculator calc_nd{no_deadline};
  const double far_nd = calc_nd.computation_priorities(f.cluster, job, hours(1.0))[0];
  const double near_nd = calc_nd.computation_priorities(f.cluster, job, hours(99.5))[0];
  EXPECT_GT(near - near_nd, far - far_nd);  // deadline term grew as d-t shrank
}

TEST(Priority, ExpiredDeadlineDropsBoost) {
  Fixture f;
  const JobId id = f.add(Fixture::spec(MlAlgorithm::Svm, 1, 1.0));
  Job& job = f.cluster.job(id);
  job.set_deadline(hours(1.0));
  PriorityParams no_deadline;
  no_deadline.use_deadline_term = false;
  const PriorityCalculator with{PriorityParams{}};
  const PriorityCalculator without{no_deadline};
  const SimTime after_expiry = hours(10.0);
  // Past expiry the deadline term contributes nothing.
  EXPECT_DOUBLE_EQ(with.computation_priorities(f.cluster, job, after_expiry)[0],
                   without.computation_priorities(f.cluster, job, after_expiry)[0]);
}

TEST(Priority, Eq6AlphaBlends) {
  Fixture f;
  const JobId id = f.add(Fixture::spec(MlAlgorithm::Svm, 2, 6.0));
  const Job& job = f.cluster.job(id);
  PriorityParams p0;
  p0.alpha = 0.0;
  PriorityParams p1;
  p1.alpha = 1.0;
  PriorityParams phalf;
  phalf.alpha = 0.5;
  const double ml = PriorityCalculator{p1}.job_priorities(f.cluster, job, 0.0)[0];
  const double comp = PriorityCalculator{p0}.job_priorities(f.cluster, job, 0.0)[0];
  const double blend = PriorityCalculator{phalf}.job_priorities(f.cluster, job, 0.0)[0];
  EXPECT_NEAR(blend, 0.5 * ml + 0.5 * comp, 1e-12);
}

TEST(Priority, ParameterServerTaskHasHighestPriority) {
  Fixture f;
  const JobId id =
      f.add(Fixture::spec(MlAlgorithm::Mlp, 4, 3.0, CommStructure::ParameterServer));
  const Job& job = f.cluster.job(id);
  const PriorityCalculator calc{PriorityParams{}};
  const auto combined = calc.job_priorities(f.cluster, job, 0.0);
  std::size_t ps_index = job.task_count() - 1;
  ASSERT_TRUE(f.cluster.task(job.task_at(ps_index)).is_parameter_server);
  for (std::size_t k = 0; k < job.task_count(); ++k) {
    if (k == ps_index) continue;
    EXPECT_GT(combined[ps_index], combined[k]);
  }
}

TEST(Priority, FinishedTasksHaveZeroBase) {
  Fixture f;
  const JobId id = f.add(Fixture::spec(MlAlgorithm::Svm, 2, 5.0));
  const Job& job = f.cluster.job(id);
  f.cluster.task(job.task_at(0)).state = TaskState::Finished;
  const PriorityCalculator calc{PriorityParams{}};
  const auto ml = calc.ml_priorities(f.cluster, job);
  EXPECT_DOUBLE_EQ(ml[0], 0.0);
  EXPECT_GT(ml[1], 0.0);
}

TEST(Priority, LossShareClampedToUnitInterval) {
  // Eq. 2's δl_{I-1} / Σ δl_j ratio must stay in [0, 1]: a loss *increase*
  // (negative last delta) or a curve where the last delta exceeds the
  // recorded cumulative sum would otherwise flip or inflate the sign of
  // the whole ML priority term.
  EXPECT_DOUBLE_EQ(PriorityCalculator::loss_share(0.5, 2.0), 0.25);
  EXPECT_DOUBLE_EQ(PriorityCalculator::loss_share(2.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(PriorityCalculator::loss_share(-0.3, 2.0), 0.0);  // loss went up
  EXPECT_DOUBLE_EQ(PriorityCalculator::loss_share(3.0, 2.0), 1.0);   // over-unity ratio
  EXPECT_DOUBLE_EQ(PriorityCalculator::loss_share(0.5, 0.0), 1.0);   // no history yet
  EXPECT_DOUBLE_EQ(PriorityCalculator::loss_share(0.5, -1.0), 1.0);  // degenerate curve
}

TEST(Priority, MlPrioritiesStayNonNegativeOnAdversarialCurves) {
  Fixture f;
  JobSpec s = Fixture::spec(MlAlgorithm::Svm, 2, 5.0);
  s.curve.noise_sigma = 0.8;  // wildly noisy loss curve
  const JobId id = f.add(s);
  Job& job = f.cluster.job(id);
  const PriorityCalculator calc{PriorityParams{}};
  for (int i = 0; i < 10; ++i) {
    job.complete_iteration();
    for (const double p : calc.ml_priorities(f.cluster, job)) EXPECT_GE(p, 0.0);
  }
}

TEST(Priority, RejectsInvalidParams) {
  PriorityParams bad;
  bad.alpha = 1.5;
  EXPECT_THROW(PriorityCalculator{bad}, ContractViolation);
  bad = PriorityParams{};
  bad.gamma = 1.0;
  EXPECT_THROW(PriorityCalculator{bad}, ContractViolation);
}

}  // namespace
}  // namespace mlfs::core
