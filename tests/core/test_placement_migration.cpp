// RIAL-style host selection (§3.3.2) and migration-victim selection
// (§3.3.3) behaviour.
#include <gtest/gtest.h>

#include "core/migration.hpp"
#include "core/placement.hpp"
#include "workload/model_zoo.hpp"

namespace mlfs::core {
namespace {

struct NoopOps : SchedulerOps {
  bool place(TaskId, ServerId, int) override { return false; }
  void preempt_to_queue(TaskId) override {}
  bool migrate(TaskId, ServerId, int) override { return false; }
  void release(TaskId) override {}
};

struct Fixture {
  Cluster cluster{ClusterConfig{3, 2, 1000.0}};
  NoopOps ops;
  std::vector<TaskId> queue;

  SchedulerContext ctx() {
    return SchedulerContext{cluster, queue, ops, 0.0, 0.9, nullptr, kInvalidJob};
  }

  JobId add(MlAlgorithm algo, int gpus, std::uint64_t seed,
            CommStructure comm = CommStructure::AllReduce) {
    JobSpec spec;
    spec.id = static_cast<JobId>(cluster.job_count());
    spec.algorithm = algo;
    spec.comm = comm;
    spec.gpu_request = gpus;
    spec.max_iterations = 30;
    spec.seed = seed;
    auto inst = ModelZoo::instantiate(spec, static_cast<TaskId>(cluster.task_count()));
    cluster.register_job(std::move(inst.job), std::move(inst.tasks));
    return spec.id;
  }
};

TEST(Placement, PicksLeastUtilizedWhenNoCommAffinity) {
  Fixture f;
  const JobId a = f.add(MlAlgorithm::Svm, 1, 1);
  const JobId b = f.add(MlAlgorithm::Svm, 1, 2);
  // Load server 0 with one task; keep 1 and 2 idle.
  f.cluster.place_task(f.cluster.job(a).task_at(0), 0, 0);

  const MlfPlacement placement{PlacementParams{}};
  auto ctx = f.ctx();
  const Task& incoming = f.cluster.task(f.cluster.job(b).task_at(0));
  const auto host = placement.choose_host(ctx, incoming, false);
  ASSERT_TRUE(host.has_value());
  EXPECT_NE(host->server, 0u);  // idle servers are closer to the ideal
}

TEST(Placement, BandwidthTermPullsTaskTowardItsPeers) {
  Fixture f;
  // 2-worker MLP chain: worker 1 communicates with worker 0.
  const JobId id = f.add(MlAlgorithm::Mlp, 2, 3);
  const Job& job = f.cluster.job(id);
  f.cluster.place_task(job.task_at(0), 1, 0);

  // Make every server equally utilized so only the comm term differs:
  // place one equal decoy task on servers 0 and 2.
  const JobId decoy1 = f.add(MlAlgorithm::Svm, 1, 999);
  const JobId decoy2 = f.add(MlAlgorithm::Svm, 1, 999);
  f.cluster.place_task(f.cluster.job(decoy1).task_at(0), 0, 0);
  f.cluster.place_task(f.cluster.job(decoy2).task_at(0), 2, 0);

  auto ctx = f.ctx();
  const Task& partner = f.cluster.task(job.task_at(1));

  const MlfPlacement with_bw{PlacementParams{true}};
  const auto host = with_bw.choose_host(ctx, partner, false);
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(host->server, 1u);  // co-locate with its upstream partition
}

TEST(Placement, CommVolumeComputation) {
  Fixture f;
  const JobId id = f.add(MlAlgorithm::Mlp, 2, 5, CommStructure::ParameterServer);
  const Job& job = f.cluster.job(id);
  // Chain 0 -> 1 -> PS(2). Place 0 on server 0 and PS on server 2.
  f.cluster.place_task(job.task_at(0), 0, 0);
  f.cluster.place_task(job.task_at(2), 2, 0);
  const Task& middle = f.cluster.task(job.task_at(1));
  EXPECT_DOUBLE_EQ(MlfPlacement::comm_volume_with_server(f.cluster, middle, 0),
                   job.spec().comm_volume_ww_mb);
  EXPECT_DOUBLE_EQ(MlfPlacement::comm_volume_with_server(f.cluster, middle, 2),
                   job.spec().comm_volume_ps_mb);
  EXPECT_DOUBLE_EQ(MlfPlacement::comm_volume_with_server(f.cluster, middle, 1), 0.0);
}

TEST(Placement, ReturnsNulloptWhenNothingFits) {
  Fixture f;
  // Saturate every GPU with two mid-sized workers.
  std::vector<JobId> jobs;
  for (int i = 0; i < 12; ++i) jobs.push_back(f.add(MlAlgorithm::Svm, 1, 100 + i));
  std::size_t placed = 0;
  for (const JobId id : jobs) {
    const TaskId tid = f.cluster.job(id).task_at(0);
    for (ServerId s = 0; s < 3 && !f.cluster.task(tid).placed(); ++s) {
      for (int g = 0; g < 2 && !f.cluster.task(tid).placed(); ++g) {
        if (f.cluster.server(s).fits_without_overload(f.cluster.task(tid), g, 0.9)) {
          f.cluster.place_task(tid, s, g);
          ++placed;
        }
      }
    }
  }
  ASSERT_GT(placed, 0u);
  // A heavyweight AlexNet worker should now find no feasible host.
  const JobId big = f.add(MlAlgorithm::AlexNet, 1, 500);
  auto ctx = f.ctx();
  const MlfPlacement placement{PlacementParams{}};
  const Task& task = f.cluster.task(f.cluster.job(big).task_at(0));
  // Either nothing fits (nullopt) or the chosen host genuinely fits.
  if (const auto host = placement.choose_host(ctx, task, false)) {
    EXPECT_TRUE(f.cluster.server(host->server).fits_without_overload(task, host->gpu, 0.9));
  }
}

TEST(Placement, MigratingExcludesCurrentServer) {
  Fixture f;
  const JobId id = f.add(MlAlgorithm::Svm, 1, 7);
  const TaskId tid = f.cluster.job(id).task_at(0);
  f.cluster.place_task(tid, 1, 0);
  auto ctx = f.ctx();
  const MlfPlacement placement{PlacementParams{}};
  for (int i = 0; i < 5; ++i) {
    const auto host = placement.choose_host(ctx, f.cluster.task(tid), /*migrating=*/true);
    ASSERT_TRUE(host.has_value());
    EXPECT_NE(host->server, 1u);
  }
}

TEST(Migration, SelectsHighUsageVictimOnHotGpu) {
  Fixture f;
  // Three workers stacked on server 0 GPU 0 -> overloaded GPU.
  std::vector<TaskId> tids;
  for (int i = 0; i < 3; ++i) {
    const JobId id = f.add(MlAlgorithm::Svm, 1, 200 + i);
    const TaskId tid = f.cluster.job(id).task_at(0);
    f.cluster.place_task(tid, 0, 0);
    tids.push_back(tid);
  }
  ASSERT_GT(f.cluster.server(0).gpu_load(0), 0.9);

  const MigrationSelector selector{MigrationParams{}};
  // Equal priorities: selection is purely by the ideal-virtual-task match.
  const auto victim =
      selector.select_victim(f.cluster, f.cluster.server(0), 0.9, [](TaskId) { return 1.0; });
  ASSERT_TRUE(victim.has_value());
  EXPECT_NE(std::find(tids.begin(), tids.end(), *victim), tids.end());
}

TEST(Migration, LowPriorityTasksPreferredUnderPsFilter) {
  Fixture f;
  std::vector<TaskId> tids;
  for (int i = 0; i < 4; ++i) {
    const JobId id = f.add(MlAlgorithm::Svm, 1, 300 + i);
    const TaskId tid = f.cluster.job(id).task_at(0);
    f.cluster.place_task(tid, 0, 0);
    tids.push_back(tid);
  }
  ASSERT_GT(f.cluster.server(0).gpu_load(0), 0.9);

  MigrationParams params;
  params.ps = 0.25;  // only the single lowest-priority task is a candidate
  const MigrationSelector selector{params};
  // tids[2] has the lowest priority.
  auto priority = [&tids](TaskId id) { return id == tids[2] ? 0.1 : 10.0; };
  const auto victim = selector.select_victim(f.cluster, f.cluster.server(0), 0.9, priority);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, tids[2]);
}

TEST(Migration, NoVictimOnEmptyServer) {
  Fixture f;
  const MigrationSelector selector{MigrationParams{}};
  const auto victim =
      selector.select_victim(f.cluster, f.cluster.server(0), 0.9, [](TaskId) { return 1.0; });
  EXPECT_FALSE(victim.has_value());
}

TEST(Migration, RejectsInvalidPs) {
  MigrationParams params;
  params.ps = 0.0;
  EXPECT_THROW(MigrationSelector{params}, ContractViolation);
}

}  // namespace
}  // namespace mlfs::core
