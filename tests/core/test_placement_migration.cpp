// RIAL-style host selection (§3.3.2) and migration-victim selection
// (§3.3.3) behaviour.
#include <gtest/gtest.h>

#include "core/migration.hpp"
#include "core/placement.hpp"
#include "workload/model_zoo.hpp"

namespace mlfs::core {
namespace {

struct NoopOps : SchedulerOps {
  bool place(TaskId, ServerId, int) override { return false; }
  void preempt_to_queue(TaskId) override {}
  bool migrate(TaskId, ServerId, int) override { return false; }
  void release(TaskId) override {}
};

struct Fixture {
  Cluster cluster;
  NoopOps ops;
  std::vector<TaskId> queue;

  Fixture() : Fixture(ClusterConfig{3, 2, 1000.0}) {}
  explicit Fixture(const ClusterConfig& config) : cluster(config) {}

  SchedulerContext ctx() {
    return SchedulerContext{cluster, queue, ops, 0.0, 0.9, nullptr, kInvalidJob};
  }

  JobId add(MlAlgorithm algo, int gpus, std::uint64_t seed,
            CommStructure comm = CommStructure::AllReduce) {
    JobSpec spec;
    spec.id = static_cast<JobId>(cluster.job_count());
    spec.algorithm = algo;
    spec.comm = comm;
    spec.gpu_request = gpus;
    spec.max_iterations = 30;
    spec.seed = seed;
    auto inst = ModelZoo::instantiate(spec, static_cast<TaskId>(cluster.task_count()));
    cluster.register_job(std::move(inst.job), std::move(inst.tasks));
    return spec.id;
  }
};

TEST(Placement, PicksLeastUtilizedWhenNoCommAffinity) {
  Fixture f;
  const JobId a = f.add(MlAlgorithm::Svm, 1, 1);
  const JobId b = f.add(MlAlgorithm::Svm, 1, 2);
  // Load server 0 with one task; keep 1 and 2 idle.
  f.cluster.place_task(f.cluster.job(a).task_at(0), 0, 0);

  const MlfPlacement placement{PlacementParams{}};
  auto ctx = f.ctx();
  const Task& incoming = f.cluster.task(f.cluster.job(b).task_at(0));
  const auto host = placement.choose_host(ctx, incoming, false);
  ASSERT_TRUE(host.has_value());
  EXPECT_NE(host->server, 0u);  // idle servers are closer to the ideal
}

TEST(Placement, BandwidthTermPullsTaskTowardItsPeers) {
  Fixture f;
  // 2-worker MLP chain: worker 1 communicates with worker 0.
  const JobId id = f.add(MlAlgorithm::Mlp, 2, 3);
  const Job& job = f.cluster.job(id);
  f.cluster.place_task(job.task_at(0), 1, 0);

  // Make every server equally utilized so only the comm term differs:
  // place one equal decoy task on servers 0 and 2.
  const JobId decoy1 = f.add(MlAlgorithm::Svm, 1, 999);
  const JobId decoy2 = f.add(MlAlgorithm::Svm, 1, 999);
  f.cluster.place_task(f.cluster.job(decoy1).task_at(0), 0, 0);
  f.cluster.place_task(f.cluster.job(decoy2).task_at(0), 2, 0);

  auto ctx = f.ctx();
  const Task& partner = f.cluster.task(job.task_at(1));

  const MlfPlacement with_bw{PlacementParams{true}};
  const auto host = with_bw.choose_host(ctx, partner, false);
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(host->server, 1u);  // co-locate with its upstream partition
}

TEST(Placement, CommVolumeComputation) {
  Fixture f;
  const JobId id = f.add(MlAlgorithm::Mlp, 2, 5, CommStructure::ParameterServer);
  const Job& job = f.cluster.job(id);
  // Chain 0 -> 1 -> PS(2). Place 0 on server 0 and PS on server 2.
  f.cluster.place_task(job.task_at(0), 0, 0);
  f.cluster.place_task(job.task_at(2), 2, 0);
  const Task& middle = f.cluster.task(job.task_at(1));
  EXPECT_DOUBLE_EQ(MlfPlacement::comm_volume_with_server(f.cluster, middle, 0),
                   job.spec().comm_volume_ww_mb);
  EXPECT_DOUBLE_EQ(MlfPlacement::comm_volume_with_server(f.cluster, middle, 2),
                   job.spec().comm_volume_ps_mb);
  EXPECT_DOUBLE_EQ(MlfPlacement::comm_volume_with_server(f.cluster, middle, 1), 0.0);
}

TEST(Placement, ReturnsNulloptWhenNothingFits) {
  Fixture f;
  // Saturate every GPU with two mid-sized workers.
  std::vector<JobId> jobs;
  for (int i = 0; i < 12; ++i) jobs.push_back(f.add(MlAlgorithm::Svm, 1, 100 + i));
  std::size_t placed = 0;
  for (const JobId id : jobs) {
    const TaskId tid = f.cluster.job(id).task_at(0);
    for (ServerId s = 0; s < 3 && !f.cluster.task(tid).placed(); ++s) {
      for (int g = 0; g < 2 && !f.cluster.task(tid).placed(); ++g) {
        if (f.cluster.server(s).fits_without_overload(f.cluster.task(tid), g, 0.9)) {
          f.cluster.place_task(tid, s, g);
          ++placed;
        }
      }
    }
  }
  ASSERT_GT(placed, 0u);
  // A heavyweight AlexNet worker should now find no feasible host.
  const JobId big = f.add(MlAlgorithm::AlexNet, 1, 500);
  auto ctx = f.ctx();
  const MlfPlacement placement{PlacementParams{}};
  const Task& task = f.cluster.task(f.cluster.job(big).task_at(0));
  // Either nothing fits (nullopt) or the chosen host genuinely fits.
  if (const auto host = placement.choose_host(ctx, task, false)) {
    EXPECT_TRUE(f.cluster.server(host->server).fits_without_overload(task, host->gpu, 0.9));
  }
}

TEST(Placement, MigratingExcludesCurrentServer) {
  Fixture f;
  const JobId id = f.add(MlAlgorithm::Svm, 1, 7);
  const TaskId tid = f.cluster.job(id).task_at(0);
  f.cluster.place_task(tid, 1, 0);
  auto ctx = f.ctx();
  const MlfPlacement placement{PlacementParams{}};
  for (int i = 0; i < 5; ++i) {
    const auto host = placement.choose_host(ctx, f.cluster.task(tid), /*migrating=*/true);
    ASSERT_TRUE(host.has_value());
    EXPECT_NE(host->server, 1u);
  }
}

TEST(Placement, BestFittingGpuPrefersLeastLoadedWhenItFits) {
  Server server{0, 2};
  Task resident{};
  resident.id = 0;
  resident.demand[Resource::Gpu] = 0.5;
  server.attach_task(resident, 0);  // GPU 0 at 0.5, GPU 1 idle

  Task incoming{};
  incoming.id = 1;
  incoming.demand[Resource::Gpu] = 0.3;
  EXPECT_EQ(server.best_fitting_gpu(incoming, 0.9), 1);  // least-loaded fits
}

TEST(Placement, BestFittingGpuFallsBackAcrossGpusOrRejects) {
  Server server{0, 3};
  Task heavy{};
  heavy.id = 0;
  heavy.demand[Resource::Gpu] = 0.6;
  server.attach_task(heavy, 0);
  Task medium{};
  medium.id = 1;
  medium.demand[Resource::Gpu] = 0.4;
  server.attach_task(medium, 1);  // loads: 0.6, 0.4, 0.0 -> least = 2

  Task incoming{};
  incoming.id = 2;
  incoming.demand[Resource::Gpu] = 0.45;
  // Fits on GPU 2 (0.45) and GPU 1 (0.85); least-loaded wins.
  EXPECT_EQ(server.best_fitting_gpu(incoming, 0.9), 2);

  Task oversized{};
  oversized.id = 3;
  oversized.demand[Resource::Gpu] = 0.95;
  // No GPU can take 0.95 under hr = 0.9 — the guard must say so instead
  // of returning an infeasible index.
  EXPECT_EQ(server.best_fitting_gpu(oversized, 0.9), kNoGpu);
}

TEST(Placement, MigrationDegradationPrefersSameRackDestination) {
  // 4 servers in 2 racks; a task on server 2 must move. All destinations
  // are equally (un)loaded and share no comm peers, so only the movement-
  // degradation term q differs: server 3 is one rack hop away while 0 and
  // 1 cross the oversubscribed core. The destination-dependent q must pick
  // the same-rack server — the pre-fix constant-q model always chose the
  // lowest id (server 0).
  ClusterConfig config{4, 2, 1000.0};
  config.servers_per_rack = 2;
  Fixture f{config};
  const JobId id = f.add(MlAlgorithm::Svm, 1, 7);
  const TaskId tid = f.cluster.job(id).task_at(0);
  ASSERT_GT(f.cluster.task(tid).state_size_mb, 0.0);
  f.cluster.place_task(tid, 2, 0);

  auto ctx = f.ctx();
  const MlfPlacement placement{PlacementParams{}};
  const auto host = placement.choose_host(ctx, f.cluster.task(tid), /*migrating=*/true);
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(host->server, 3u);
}

TEST(Placement, MemoizedCommVolumesMatchDirectComputation) {
  // The epoch-keyed comm memo must not change a single choice, with and
  // without the rack-affinity extension.
  for (const bool topology : {false, true}) {
    ClusterConfig config{4, 2, 1000.0};
    config.servers_per_rack = 2;
    Fixture f{config};
    const JobId chain = f.add(MlAlgorithm::Mlp, 3, 11, CommStructure::ParameterServer);
    const Job& job = f.cluster.job(chain);
    f.cluster.place_task(job.task_at(0), 0, 0);
    f.cluster.place_task(job.task_at(1), 2, 0);
    const JobId ring = f.add(MlAlgorithm::ResNet, 3, 13, CommStructure::AllReduce);
    f.cluster.place_task(f.cluster.job(ring).task_at(0), 1, 1);

    PlacementParams direct_params;
    direct_params.use_topology = topology;
    direct_params.memoize_comm = false;
    PlacementParams memo_params = direct_params;
    memo_params.memoize_comm = true;
    const MlfPlacement direct{direct_params};
    const MlfPlacement memoized{memo_params};

    auto ctx = f.ctx();
    for (const Job& j : f.cluster.jobs()) {
      for (const TaskId tid : j.tasks()) {
        const Task& task = f.cluster.task(tid);
        for (const bool migrating : {false, true}) {
          if (migrating && !task.placed()) continue;
          const auto a = direct.choose_host(ctx, task, migrating);
          const auto b = memoized.choose_host(ctx, task, migrating);
          ASSERT_EQ(a.has_value(), b.has_value());
          if (a) {
            EXPECT_EQ(a->server, b->server);
            EXPECT_EQ(a->gpu, b->gpu);
          }
        }
      }
    }
    EXPECT_GT(memoized.stats().comm_cache_hits + memoized.stats().comm_cache_misses, 0u);
    EXPECT_EQ(direct.stats().comm_cache_hits + direct.stats().comm_cache_misses, 0u);
  }
}

TEST(Migration, SelectsHighUsageVictimOnHotGpu) {
  Fixture f;
  // Three workers stacked on server 0 GPU 0 -> overloaded GPU.
  std::vector<TaskId> tids;
  for (int i = 0; i < 3; ++i) {
    const JobId id = f.add(MlAlgorithm::Svm, 1, 200 + i);
    const TaskId tid = f.cluster.job(id).task_at(0);
    f.cluster.place_task(tid, 0, 0);
    tids.push_back(tid);
  }
  ASSERT_GT(f.cluster.server(0).gpu_load(0), 0.9);

  const MigrationSelector selector{MigrationParams{}};
  // Equal priorities: selection is purely by the ideal-virtual-task match.
  const auto victim =
      selector.select_victim(f.cluster, f.cluster.server(0), 0.9, [](TaskId) { return 1.0; });
  ASSERT_TRUE(victim.has_value());
  EXPECT_NE(std::find(tids.begin(), tids.end(), *victim), tids.end());
}

TEST(Migration, LowPriorityTasksPreferredUnderPsFilter) {
  Fixture f;
  std::vector<TaskId> tids;
  for (int i = 0; i < 4; ++i) {
    const JobId id = f.add(MlAlgorithm::Svm, 1, 300 + i);
    const TaskId tid = f.cluster.job(id).task_at(0);
    f.cluster.place_task(tid, 0, 0);
    tids.push_back(tid);
  }
  ASSERT_GT(f.cluster.server(0).gpu_load(0), 0.9);

  MigrationParams params;
  params.ps = 0.25;  // only the single lowest-priority task is a candidate
  const MigrationSelector selector{params};
  // tids[2] has the lowest priority.
  auto priority = [&tids](TaskId id) { return id == tids[2] ? 0.1 : 10.0; };
  const auto victim = selector.select_victim(f.cluster, f.cluster.server(0), 0.9, priority);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, tids[2]);
}

TEST(Migration, NoVictimOnEmptyServer) {
  Fixture f;
  const MigrationSelector selector{MigrationParams{}};
  const auto victim =
      selector.select_victim(f.cluster, f.cluster.server(0), 0.9, [](TaskId) { return 1.0; });
  EXPECT_FALSE(victim.has_value());
}

TEST(Migration, RejectsInvalidPs) {
  MigrationParams params;
  params.ps = 0.0;
  EXPECT_THROW(MigrationSelector{params}, ContractViolation);
}

}  // namespace
}  // namespace mlfs::core
