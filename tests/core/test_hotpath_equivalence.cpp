// Decision equivalence of the scheduler hot path (DESIGN.md, "Scheduler
// hot path"): the indexed implementation — incremental load index,
// epoch-keyed comm-volume memo, decorate-sort-undecorate queue ordering —
// must reproduce the reference full-scan scheduler's JSONL event stream
// byte for byte, fault-free and under churn, flat and rack topologies.
#include <gtest/gtest.h>

#include <sstream>

#include "core/mlf_h.hpp"
#include "sim/engine.hpp"
#include "sim/event_log.hpp"
#include "workload/trace.hpp"

namespace mlfs::core {
namespace {

struct RunResult {
  std::string events;
  RunMetrics metrics;
};

struct Variant {
  bool legacy = false;
  bool bucket_index = true;
  FaultConfig fault;
  int servers_per_rack = 0;
  bool use_topology = false;
};

RunResult run(const Variant& v) {
  ClusterConfig cluster;
  cluster.server_count = 8;
  cluster.gpus_per_server = 4;
  cluster.servers_per_rack = v.servers_per_rack;
  cluster.incremental_load_index = !v.legacy;
  cluster.placement_bucket_index = v.bucket_index;

  MlfsConfig config;
  config.heuristic_only = true;
  config.legacy_hot_path = v.legacy;
  config.placement.use_topology = v.use_topology;

  TraceConfig trace;
  trace.num_jobs = 80;
  trace.duration_hours = 8.0;
  trace.seed = 21;
  trace.max_gpu_request = 12;

  EngineConfig engine_config;
  engine_config.seed = 77;
  engine_config.fault = v.fault;

  MlfH scheduler{config};
  SimEngine engine(cluster, engine_config, PhillyTraceGenerator(trace).generate(), scheduler);
  std::ostringstream os;
  JsonlEventLog log(os);
  engine.set_observer(&log);
  RunResult r;
  r.metrics = engine.run();
  r.events = os.str();
  return r;
}

void expect_equivalent(const RunResult& legacy, const RunResult& indexed) {
  // The whole point of the hot-path work: not one decision may move.
  ASSERT_FALSE(indexed.events.empty());
  EXPECT_EQ(legacy.events, indexed.events);
  // Exact (not approximate) agreement on every decision-derived metric.
  EXPECT_EQ(legacy.metrics.average_jct_minutes(), indexed.metrics.average_jct_minutes());
  EXPECT_EQ(legacy.metrics.makespan_hours, indexed.metrics.makespan_hours);
  EXPECT_EQ(legacy.metrics.deadline_ratio, indexed.metrics.deadline_ratio);
  EXPECT_EQ(legacy.metrics.bandwidth_tb, indexed.metrics.bandwidth_tb);
  EXPECT_EQ(legacy.metrics.migrations, indexed.metrics.migrations);
  EXPECT_EQ(legacy.metrics.preemptions, indexed.metrics.preemptions);
  EXPECT_EQ(legacy.metrics.iterations_run, indexed.metrics.iterations_run);
  // And the two runs really took the two different code paths.
  EXPECT_EQ(legacy.metrics.servers_reindexed, 0u);
  EXPECT_EQ(legacy.metrics.comm_cache_misses, 0u);
  EXPECT_GT(indexed.metrics.servers_reindexed, 0u);
  EXPECT_GT(indexed.metrics.comm_cache_misses, 0u);
}

TEST(HotPathEquivalence, FaultFreeFlatNetwork) {
  Variant legacy;
  legacy.legacy = true;
  Variant indexed;
  expect_equivalent(run(legacy), run(indexed));
}

TEST(HotPathEquivalence, UnderServerChurnAndTaskKills) {
  FaultConfig fault;
  fault.server_mtbf_hours = 6.0;
  fault.server_mttr_hours = 0.5;
  fault.task_kill_probability = 0.002;
  Variant legacy;
  legacy.legacy = true;
  legacy.fault = fault;
  Variant indexed;
  indexed.fault = fault;
  expect_equivalent(run(legacy), run(indexed));
}

TEST(HotPathEquivalence, RackTopologyWithAffinityPlacement) {
  Variant legacy;
  legacy.legacy = true;
  legacy.servers_per_rack = 4;
  legacy.use_topology = true;
  Variant indexed;
  indexed.servers_per_rack = 4;
  indexed.use_topology = true;
  expect_equivalent(run(legacy), run(indexed));
}

// The bucketed placement index against the linear funnel it replaces:
// identical decisions, identical linear-candidate accounting, and the
// bucket run must actually have pruned.
void expect_bucket_equivalent(const RunResult& linear, const RunResult& bucketed) {
  ASSERT_FALSE(bucketed.events.empty());
  EXPECT_EQ(linear.events, bucketed.events);
  EXPECT_EQ(linear.metrics.average_jct_minutes(), bucketed.metrics.average_jct_minutes());
  EXPECT_EQ(linear.metrics.makespan_hours, bucketed.metrics.makespan_hours);
  EXPECT_EQ(linear.metrics.migrations, bucketed.metrics.migrations);
  EXPECT_EQ(linear.metrics.iterations_run, bucketed.metrics.iterations_run);
  // candidates_linear counts what a full funnel would scan — it must not
  // depend on which funnel actually ran (and with the index off it *is*
  // the scan count).
  EXPECT_EQ(linear.metrics.candidates_linear, bucketed.metrics.candidates_linear);
  EXPECT_EQ(linear.metrics.candidates_linear, linear.metrics.candidates_scanned);
  EXPECT_EQ(linear.metrics.pindex_queries, 0u);
  EXPECT_GT(bucketed.metrics.pindex_queries, 0u);
  EXPECT_LE(bucketed.metrics.candidates_scanned, bucketed.metrics.candidates_linear);
  // Every member a linear funnel would have scanned is accounted for:
  // exact-checked (scanned), pruned wholesale, or bypassed as provably
  // feasible from the bucket bound.
  EXPECT_EQ(bucketed.metrics.candidates_scanned + bucketed.metrics.pindex_servers_pruned +
                bucketed.metrics.pindex_servers_bypassed,
            bucketed.metrics.candidates_linear);
}

TEST(HotPathEquivalence, BucketIndexFaultFree) {
  Variant linear;
  linear.bucket_index = false;
  Variant bucketed;
  expect_bucket_equivalent(run(linear), run(bucketed));
}

TEST(HotPathEquivalence, BucketIndexUnderChurn) {
  FaultConfig fault;
  fault.server_mtbf_hours = 6.0;
  fault.server_mttr_hours = 0.5;
  fault.task_kill_probability = 0.002;
  Variant linear;
  linear.bucket_index = false;
  linear.fault = fault;
  Variant bucketed;
  bucketed.fault = fault;
  expect_bucket_equivalent(run(linear), run(bucketed));
}

}  // namespace
}  // namespace mlfs::core
