// MLF-C load control (§3.5): overload detection, policy downgrades, and
// the end-to-end effect of Fig. 9.
#include "core/mlf_c.hpp"
#include <cmath>

#include <gtest/gtest.h>

#include "core/mlfs.hpp"
#include "workload/model_zoo.hpp"
#include "workload/trace.hpp"

namespace mlfs::core {
namespace {

ClusterConfig tiny() {
  ClusterConfig c;
  c.server_count = 2;
  c.gpus_per_server = 2;
  return c;
}

JobId add_job(Cluster& cluster, StopPolicy policy, StopPolicy min_allowed,
              std::uint64_t seed = 3) {
  JobSpec spec;
  spec.id = static_cast<JobId>(cluster.job_count());
  spec.algorithm = MlAlgorithm::Mlp;
  spec.comm = CommStructure::AllReduce;
  spec.gpu_request = 1;
  spec.max_iterations = 40;
  spec.stop_policy = policy;
  spec.min_allowed_policy = min_allowed;
  spec.seed = seed;
  auto inst = ModelZoo::instantiate(spec, static_cast<TaskId>(cluster.task_count()));
  cluster.register_job(std::move(inst.job), std::move(inst.tasks));
  return spec.id;
}

TEST(MlfC, NotOverloadedWhenIdleAndQueueEmpty) {
  Cluster cluster(tiny());
  MlfC controller{LoadControlParams{}};
  const std::vector<TaskId> empty_queue;
  controller.before_schedule(cluster, empty_queue, 0.0);
  EXPECT_FALSE(controller.overloaded());
  EXPECT_EQ(controller.downgrade_count(), 0u);
}

TEST(MlfC, BackloggedQueueMeansOverloaded) {
  Cluster cluster(tiny());
  const JobId id = add_job(cluster, StopPolicy::FixedIterations, StopPolicy::AccuracyOnly);
  const std::vector<TaskId> queue = {cluster.job(id).task_at(0)};  // queued_since = 0
  MlfC controller{LoadControlParams{}};
  // Freshly queued tasks (in transit to their first placement) are NOT
  // backlog: the system is not overloaded yet.
  controller.before_schedule(cluster, queue, MlfC::kBacklogSeconds / 2.0);
  EXPECT_FALSE(controller.overloaded());
  EXPECT_EQ(cluster.job(id).active_policy(), StopPolicy::FixedIterations);
  // Past the backlog threshold the queue counts and downgrades start:
  // one step per tick, Fixed -> OptStop -> AccuracyOnly.
  controller.before_schedule(cluster, queue, MlfC::kBacklogSeconds + 1.0);
  EXPECT_TRUE(controller.overloaded());
  EXPECT_EQ(cluster.job(id).active_policy(), StopPolicy::OptStop);
  controller.before_schedule(cluster, queue, MlfC::kBacklogSeconds + 61.0);
  EXPECT_EQ(cluster.job(id).active_policy(), StopPolicy::AccuracyOnly);
  // Cannot go further.
  controller.before_schedule(cluster, queue, MlfC::kBacklogSeconds + 121.0);
  EXPECT_EQ(cluster.job(id).active_policy(), StopPolicy::AccuracyOnly);
  EXPECT_EQ(controller.downgrade_count(), 2u);
}

TEST(MlfC, RespectsUserPermissionBound) {
  Cluster cluster(tiny());
  const JobId fixed_only =
      add_job(cluster, StopPolicy::FixedIterations, StopPolicy::FixedIterations, 5);
  const std::vector<TaskId> queue = {cluster.job(fixed_only).task_at(0)};
  MlfC controller{LoadControlParams{}};
  controller.before_schedule(cluster, queue, MlfC::kBacklogSeconds + 1.0);
  controller.before_schedule(cluster, queue, MlfC::kBacklogSeconds + 61.0);
  EXPECT_EQ(cluster.job(fixed_only).active_policy(), StopPolicy::FixedIterations);
  EXPECT_EQ(controller.downgrade_count(), 0u);
}

TEST(MlfC, DisabledControllerDoesNothing) {
  Cluster cluster(tiny());
  const JobId id = add_job(cluster, StopPolicy::FixedIterations, StopPolicy::AccuracyOnly);
  const std::vector<TaskId> queue = {cluster.job(id).task_at(0)};
  LoadControlParams params;
  params.enabled = false;  // Fig. 9 ablation
  MlfC controller{params};
  controller.before_schedule(cluster, queue, MlfC::kBacklogSeconds + 1.0);
  EXPECT_FALSE(controller.overloaded());
  EXPECT_EQ(cluster.job(id).active_policy(), StopPolicy::FixedIterations);
}

TEST(MlfC, OverloadDegreeTriggersWithoutQueue) {
  Cluster cluster(tiny());
  // Pack tasks until O_c > hs.
  for (int i = 0; i < 8; ++i) {
    const JobId id = add_job(cluster, StopPolicy::FixedIterations, StopPolicy::AccuracyOnly,
                             100 + static_cast<std::uint64_t>(i));
    Task& t = cluster.task(cluster.job(id).task_at(0));
    (void)t;
    cluster.place_task(cluster.job(id).task_at(0), static_cast<ServerId>(i % 2), i / 2 % 2);
  }
  LoadControlParams params;
  params.hs = 0.3;  // low threshold so the packed cluster counts as overloaded
  MlfC controller{params};
  const std::vector<TaskId> empty_queue;
  controller.before_schedule(cluster, empty_queue, 0.0);
  EXPECT_TRUE(controller.overloaded());
}

TEST(MlfC, EndToEndImprovesJctUnderOverload) {
  // Fig. 9 shape: with MLF-C the average JCT drops and the accuracy
  // guarantee ratio does not collapse.
  TraceConfig tc;
  tc.num_jobs = 120;
  tc.duration_hours = 8.0;
  tc.seed = 99;
  tc.max_gpu_request = 8;
  auto specs = PhillyTraceGenerator(tc).generate();

  ClusterConfig cc;
  cc.server_count = 4;
  cc.gpus_per_server = 4;

  MlfsConfig config;
  config.heuristic_only = true;

  MlfsScheduler with_sched(config, "MLFS");
  MlfC controller(config.load_control);
  SimEngine with_engine(cc, {}, specs, with_sched, &controller);
  const RunMetrics with_c = with_engine.run();

  MlfsScheduler without_sched(config, "MLF-H");
  SimEngine without_engine(cc, {}, specs, without_sched);
  const RunMetrics without_c = without_engine.run();

  EXPECT_LT(with_c.average_jct_minutes(), without_c.average_jct_minutes());
  EXPECT_GT(with_c.iterations_saved, without_c.iterations_saved);
  EXPECT_GE(with_c.accuracy_ratio, without_c.accuracy_ratio - 0.05);
}

}  // namespace
}  // namespace mlfs::core
