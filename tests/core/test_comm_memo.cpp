// Regression tests for the communication-volume memo (core/placement.cpp).
//
// The memo was originally keyed on the cluster-wide placement epoch, so ANY
// placement anywhere invalidated EVERY cached vector: the hit rate collapsed
// from ~49% on a 16-server fleet to ~0.45% at 96 servers, precisely where
// memoization matters. Keying on the per-job placement epoch (only same-job
// placements can change a task's comm vector) restores fleet-scale hit
// rates; the first test pins that with a floor at the 96-server point. The
// second pins the bounded-arena eviction path: a memo capacity far below the
// working set must change performance counters only, never decisions.
#include <gtest/gtest.h>

#include <sstream>

#include "core/mlf_h.hpp"
#include "sim/engine.hpp"
#include "sim/event_log.hpp"
#include "workload/trace.hpp"

namespace mlfs::core {
namespace {

struct RunResult {
  std::string events;
  RunMetrics metrics;
};

RunResult run_fleet(int servers, std::size_t memo_slots) {
  ClusterConfig cluster;
  cluster.server_count = servers;
  cluster.gpus_per_server = 4;

  MlfsConfig config;
  config.heuristic_only = true;
  config.placement.comm_memo_slots = memo_slots;

  TraceConfig trace;
  trace.num_jobs = 4 * servers;  // scale offered load with the fleet
  trace.duration_hours = 4.0;
  trace.seed = 21;
  trace.max_gpu_request = 12;

  EngineConfig engine_config;
  engine_config.seed = 77;

  MlfH scheduler{config};
  SimEngine engine(cluster, engine_config, PhillyTraceGenerator(trace).generate(), scheduler);
  std::ostringstream os;
  JsonlEventLog log(os);
  engine.set_observer(&log);
  RunResult r;
  r.metrics = engine.run();
  r.events = os.str();
  return r;
}

double hit_ratio(const RunMetrics& m) {
  const double total = static_cast<double>(m.comm_cache_hits + m.comm_cache_misses);
  return total == 0.0 ? 0.0 : static_cast<double>(m.comm_cache_hits) / total;
}

TEST(CommMemo, HitRateHoldsAtFleetScale) {
  const RunResult small = run_fleet(16, 4096);
  const RunResult large = run_fleet(96, 4096);
  ASSERT_GT(large.metrics.comm_cache_hits + large.metrics.comm_cache_misses, 0u);
  const double small_ratio = hit_ratio(small.metrics);
  const double large_ratio = hit_ratio(large.metrics);
  // Measured with per-job keying: ~15.6% at 16 servers, ~5.2% at 96.
  // Global-epoch keying collapsed two orders of magnitude between these two
  // points (~49% -> ~0.45%); per-job keying must keep the 96-server point
  // within a small constant factor of the 16-server one, and far above the
  // collapsed value.
  EXPECT_GE(large_ratio, small_ratio / 4.0)
      << "comm-memo hit ratio collapsed with fleet size: " << small_ratio << " -> "
      << large_ratio;
  EXPECT_GE(large_ratio, 0.02) << "comm-memo hit ratio at fleet scale: " << large_ratio;
}

TEST(CommMemo, TinyCapacityEvictsWithoutChangingDecisions) {
  const RunResult roomy = run_fleet(16, 4096);
  const RunResult tiny = run_fleet(16, 2);
  ASSERT_FALSE(roomy.events.empty());
  EXPECT_EQ(roomy.events, tiny.events);
  EXPECT_EQ(roomy.metrics.average_jct_minutes(), tiny.metrics.average_jct_minutes());
  EXPECT_EQ(roomy.metrics.makespan_hours, tiny.metrics.makespan_hours);
  EXPECT_EQ(roomy.metrics.migrations, tiny.metrics.migrations);
  // Two slots can't hold the working set: eviction must show up as misses.
  EXPECT_GT(tiny.metrics.comm_cache_misses, roomy.metrics.comm_cache_misses);
}

}  // namespace
}  // namespace mlfs::core
