// Eq. 7 reward tracking, weight tuning, and the MLF-RL state featurizer.
#include <gtest/gtest.h>

#include <cmath>
#include "core/featurizer.hpp"
#include "core/reward.hpp"
#include "workload/model_zoo.hpp"

namespace mlfs::core {
namespace {

struct NoopOps : SchedulerOps {
  bool place(TaskId, ServerId, int) override { return false; }
  void preempt_to_queue(TaskId) override {}
  bool migrate(TaskId, ServerId, int) override { return false; }
  void release(TaskId) override {}
};

struct Fixture {
  Cluster cluster{ClusterConfig{2, 2, 1000.0}};
  NoopOps ops;
  std::vector<TaskId> queue;

  SchedulerContext ctx(SimTime now = 0.0) {
    return SchedulerContext{cluster, queue, ops, now, 0.9, nullptr, kInvalidJob};
  }

  Job& add(int gpus, std::uint64_t seed, double urgency = 5.0) {
    JobSpec spec;
    spec.id = static_cast<JobId>(cluster.job_count());
    spec.algorithm = MlAlgorithm::Mlp;
    spec.comm = CommStructure::ParameterServer;
    spec.gpu_request = gpus;
    spec.urgency = urgency;
    spec.max_iterations = 30;
    spec.seed = seed;
    auto inst = ModelZoo::instantiate(spec, static_cast<TaskId>(cluster.task_count()));
    cluster.register_job(std::move(inst.job), std::move(inst.tasks));
    return cluster.job(spec.id);
  }
};

TEST(RewardTracker, NoCompletionsNoBandwidthIsZeroFirstRound) {
  Fixture f;
  RewardTracker tracker{RlParams{}};
  // First round primes bandwidth (g3 needs a delta), everything else 0.
  EXPECT_DOUBLE_EQ(tracker.round_reward(f.cluster, 60.0), 0.0);
}

TEST(RewardTracker, CompletionsRaiseReward) {
  Fixture f;
  RlParams params;
  RewardTracker tracker{params};
  (void)tracker.round_reward(f.cluster, 0.0);  // prime

  Job& job = f.add(1, 11);
  for (int i = 0; i < 10; ++i) job.complete_iteration();
  job.set_completion_time(hours(1.0));
  job.set_deadline(hours(2.0));  // met deadline
  job.set_state(JobState::Completed);
  tracker.on_job_complete(job, hours(1.0));
  const double with_completion = tracker.round_reward(f.cluster, hours(1.0));

  // g1 (JCT), g2 (deadline met), g3 (no bandwidth), g4/g5 (accuracy) all
  // contribute; reward must clearly exceed the idle-round value.
  EXPECT_GT(with_completion, params.beta3 * 0.9);
}

TEST(RewardTracker, MissedDeadlineScoresLower) {
  Fixture f;
  RewardTracker tracker{RlParams{}};
  (void)tracker.round_reward(f.cluster, 0.0);

  Job& met = f.add(1, 21);
  for (int i = 0; i < 10; ++i) met.complete_iteration();
  met.set_completion_time(hours(1.0));
  met.set_deadline(hours(2.0));
  tracker.on_job_complete(met, hours(1.0));
  const double reward_met = tracker.round_reward(f.cluster, hours(1.0));

  Job& missed = f.add(1, 22);
  for (int i = 0; i < 10; ++i) missed.complete_iteration();
  missed.set_completion_time(hours(3.0));
  missed.set_deadline(hours(2.0));
  missed.record_deadline_progress();
  tracker.on_job_complete(missed, hours(3.0));
  const double reward_missed = tracker.round_reward(f.cluster, hours(3.0));

  EXPECT_GT(reward_met, reward_missed);
}

TEST(RewardTracker, WindowResetsBetweenRounds) {
  Fixture f;
  RewardTracker tracker{RlParams{}};
  (void)tracker.round_reward(f.cluster, 0.0);
  Job& job = f.add(1, 31);
  for (int i = 0; i < 5; ++i) job.complete_iteration();
  job.set_completion_time(60.0);
  job.set_deadline(120.0);
  tracker.on_job_complete(job, 60.0);
  const double first = tracker.round_reward(f.cluster, 60.0);
  const double second = tracker.round_reward(f.cluster, 120.0);
  EXPECT_GT(first, second);  // window consumed
}

TEST(RewardTuner, FindsBetterWeightsOnKnownObjective) {
  // Objective: peak at beta = (1, 0, 0, 0, 0).
  auto evaluate = [](const RewardWeights& w) {
    return w.beta1 - 0.5 * (w.beta2 + w.beta3 + w.beta4 + w.beta5);
  };
  RewardTuner tuner(30, 20, 99);
  const RewardWeights best = tuner.tune(evaluate);
  EXPECT_GT(best.beta1, 0.6);
  EXPECT_GT(evaluate(best), evaluate(RewardWeights{}));
}

TEST(RewardTuner, NeverWorseThanPaperDefaults) {
  auto evaluate = [](const RewardWeights& w) {
    // Defaults are already optimal for this objective.
    const RewardWeights d;
    const double dist = std::abs(w.beta1 - d.beta1) + std::abs(w.beta2 - d.beta2) +
                        std::abs(w.beta3 - d.beta3) + std::abs(w.beta4 - d.beta4) +
                        std::abs(w.beta5 - d.beta5);
    return -dist;
  };
  RewardTuner tuner(10, 10, 7);
  const RewardWeights best = tuner.tune(evaluate);
  EXPECT_GE(evaluate(best), evaluate(RewardWeights{}) - 1e-12);
}

TEST(Featurizer, StateDimMatchesLayout) {
  const MlfRlFeaturizer f4(4);
  const MlfRlFeaturizer f8(8);
  EXPECT_EQ(f8.state_dim() - f4.state_dim(), 4u * 6u);  // 6 features per candidate
}

TEST(Featurizer, CandidatesSortedByUtilization) {
  Fixture f;
  Job& loadmaker = f.add(1, 41);
  f.cluster.place_task(loadmaker.task_at(0), 0, 0);  // server 0 busier

  Job& job = f.add(1, 42);
  const Task& task = f.cluster.task(job.task_at(0));
  const MlfRlFeaturizer featurizer(4);
  auto ctx = f.ctx();
  const auto candidates = featurizer.candidates(ctx, task);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0], 1u);  // idle server first
  EXPECT_EQ(candidates[1], 0u);
}

TEST(Featurizer, StateVectorWellFormed) {
  Fixture f;
  Job& job = f.add(2, 51, 8.0);
  const Task& task = f.cluster.task(job.task_at(0));
  const MlfRlFeaturizer featurizer(4);
  auto ctx = f.ctx();
  const auto candidates = featurizer.candidates(ctx, task);
  const auto state = featurizer.state(ctx, task, candidates);
  ASSERT_EQ(state.size(), featurizer.state_dim());
  for (const double v : state) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, -1.0 - 1e-9);
    EXPECT_LE(v, 1.5);
  }
  EXPECT_DOUBLE_EQ(state[0], 0.8);  // urgency 8 / 10
  EXPECT_DOUBLE_EQ(state[1], 1.0);  // 1/I at I = 1
}

TEST(Featurizer, AlgorithmOneHotSumsToOne) {
  Fixture f;
  Job& job = f.add(1, 61);
  const Task& task = f.cluster.task(job.task_at(0));
  const MlfRlFeaturizer featurizer(2);
  auto ctx = f.ctx();
  const auto state = featurizer.state(ctx, task, featurizer.candidates(ctx, task));
  // Task features (11) then the 5-way one-hot.
  double onehot_sum = 0.0;
  for (std::size_t i = 11; i < 16; ++i) onehot_sum += state[i];
  EXPECT_DOUBLE_EQ(onehot_sum, 1.0);
}

TEST(Featurizer, MissingCandidateSlotsEncodedSaturated) {
  Fixture f;
  Job& job = f.add(1, 71);
  const Task& task = f.cluster.task(job.task_at(0));
  const MlfRlFeaturizer featurizer(4);  // only 2 servers exist
  auto ctx = f.ctx();
  const auto candidates = featurizer.candidates(ctx, task);
  ASSERT_EQ(candidates.size(), 2u);
  const auto state = featurizer.state(ctx, task, candidates);
  // Last candidate block (slot 3) is the saturated filler.
  const std::size_t base = state.size() - 6;
  for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(state[base + i], 1.0);
  EXPECT_DOUBLE_EQ(state[base + 5], 0.0);
}

}  // namespace
}  // namespace mlfs::core
