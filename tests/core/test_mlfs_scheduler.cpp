// The MLFS facade: heuristic phase -> imitation -> RL switch (§3.4
// staging) and naming of the three series.
#include "core/mlfs.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "workload/trace.hpp"

namespace mlfs::core {
namespace {

ClusterConfig cluster_config() {
  ClusterConfig c;
  c.server_count = 4;
  c.gpus_per_server = 4;
  return c;
}

std::vector<JobSpec> trace(std::size_t jobs, std::uint64_t seed) {
  TraceConfig config;
  config.num_jobs = jobs;
  config.duration_hours = 10.0;
  config.seed = seed;
  config.max_gpu_request = 8;
  config.max_iterations = 60;
  return PhillyTraceGenerator(config).generate();
}

TEST(MlfsScheduler, NamesFollowConfig) {
  MlfsConfig heuristic;
  heuristic.heuristic_only = true;
  EXPECT_EQ(MlfsScheduler(heuristic).name(), "MLF-H");
  EXPECT_EQ(MlfsScheduler(MlfsConfig{}).name(), "MLF-RL");
  EXPECT_EQ(MlfsScheduler(MlfsConfig{}, "MLFS").name(), "MLFS");
}

TEST(MlfsScheduler, HeuristicOnlyNeverActivatesRl) {
  MlfsConfig config;
  config.heuristic_only = true;
  MlfsScheduler scheduler(config);
  SimEngine engine(cluster_config(), {}, trace(60, 3), scheduler);
  (void)engine.run();
  EXPECT_FALSE(scheduler.rl_active());
  EXPECT_EQ(scheduler.imitation_samples(), 0u);
}

TEST(MlfsScheduler, CollectsImitationSamplesAndSwitches) {
  MlfsConfig config;
  config.rl.warmup_samples = 60;  // switch quickly in a small test
  MlfsScheduler scheduler(config);
  SimEngine engine(cluster_config(), {}, trace(80, 5), scheduler);
  const RunMetrics m = engine.run();
  EXPECT_TRUE(scheduler.rl_active());
  EXPECT_GE(scheduler.imitation_samples(), 60u);
  EXPECT_EQ(m.jct_minutes.count(), 80u);
  for (const Job& job : engine.cluster().jobs()) EXPECT_TRUE(job.done());
}

TEST(MlfsScheduler, ClonedPolicyMatchesExpertOften) {
  MlfsConfig config;
  config.rl.warmup_samples = 150;
  MlfsScheduler scheduler(config);
  SimEngine engine(cluster_config(), {}, trace(100, 7), scheduler);
  (void)engine.run();
  ASSERT_TRUE(scheduler.rl_active());
  // Behaviour cloning should substantially beat the 1/K random baseline
  // on its own training set.
  EXPECT_GT(scheduler.imitation_accuracy(), 0.5);
}

TEST(MlfsScheduler, RlPhaseStillCompletesEverything) {
  MlfsConfig config;
  config.rl.warmup_samples = 40;
  MlfsScheduler scheduler(config);
  SimEngine engine(cluster_config(), {}, trace(120, 9), scheduler);
  const RunMetrics m = engine.run();
  EXPECT_TRUE(scheduler.rl_active());
  std::size_t incomplete = 0;
  for (const Job& job : engine.cluster().jobs()) {
    if (!job.done()) ++incomplete;
  }
  EXPECT_EQ(incomplete, 0u);
  EXPECT_GT(m.deadline_ratio, 0.5);
}

TEST(MlfsScheduler, ActorCriticVariantCompletesWorkload) {
  MlfsConfig config;
  config.rl.algorithm = RlAlgorithm::ActorCritic;
  config.rl.warmup_samples = 60;
  MlfsScheduler scheduler(config);
  SimEngine engine(cluster_config(), {}, trace(80, 13), scheduler);
  const RunMetrics m = engine.run();
  EXPECT_TRUE(scheduler.rl_active());
  for (const Job& job : engine.cluster().jobs()) EXPECT_TRUE(job.done());
  EXPECT_GT(m.deadline_ratio, 0.5);
}

TEST(MlfsScheduler, ReinforceAndA2cProduceDifferentButValidRuns) {
  auto run_with = [](RlAlgorithm algorithm) {
    MlfsConfig config;
    config.rl.algorithm = algorithm;
    config.rl.warmup_samples = 50;
    MlfsScheduler scheduler(config);
    SimEngine engine(cluster_config(), {}, trace(60, 17), scheduler);
    return engine.run();
  };
  const RunMetrics reinforce = run_with(RlAlgorithm::Reinforce);
  const RunMetrics a2c = run_with(RlAlgorithm::ActorCritic);
  // Both must be sane; they need not match (different training dynamics).
  EXPECT_EQ(reinforce.jct_minutes.count(), 60u);
  EXPECT_EQ(a2c.jct_minutes.count(), 60u);
  EXPECT_GT(reinforce.deadline_ratio, 0.5);
  EXPECT_GT(a2c.deadline_ratio, 0.5);
}

TEST(MlfsScheduler, DeterministicEndToEnd) {
  auto run_once = [] {
    MlfsConfig config;
    config.rl.warmup_samples = 50;
    MlfsScheduler scheduler(config);
    SimEngine engine(cluster_config(), {}, trace(60, 11), scheduler);
    return engine.run();
  };
  const RunMetrics a = run_once();
  const RunMetrics b = run_once();
  EXPECT_DOUBLE_EQ(a.average_jct_minutes(), b.average_jct_minutes());
  EXPECT_DOUBLE_EQ(a.bandwidth_tb, b.bandwidth_tb);
  EXPECT_EQ(a.migrations, b.migrations);
}

}  // namespace
}  // namespace mlfs::core
