#include "rl/imitation.hpp"

#include <gtest/gtest.h>

namespace mlfs::rl {
namespace {

ReinforceConfig agent_config() {
  ReinforceConfig c;
  c.state_dim = 3;
  c.action_dim = 3;
  c.hidden = {16};
  c.policy_lr = 0.05;
  c.seed = 9;
  return c;
}

/// Expert: action = argmax(state) — linearly separable.
void fill_dataset(ImitationDataset& dataset, std::size_t n, Rng& rng) {
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> state = {rng.uniform(), rng.uniform(), rng.uniform()};
    int best = 0;
    for (int j = 1; j < 3; ++j) {
      if (state[static_cast<std::size_t>(j)] > state[static_cast<std::size_t>(best)]) best = j;
    }
    dataset.add(state, best);
  }
}

TEST(ImitationDataset, SizeAndValidation) {
  ImitationDataset dataset(3);
  EXPECT_TRUE(dataset.empty());
  dataset.add(std::vector<double>{0.1, 0.2, 0.3}, 2);
  EXPECT_EQ(dataset.size(), 1u);
  EXPECT_THROW(dataset.add(std::vector<double>{0.1}, 0), ContractViolation);
}

TEST(ImitationDataset, TruncateKeepsMostRecent) {
  ImitationDataset dataset(1);
  for (int i = 0; i < 10; ++i) dataset.add(std::vector<double>{static_cast<double>(i)}, i % 2);
  dataset.truncate_to_recent(4);
  EXPECT_EQ(dataset.size(), 4u);
  // No-op when already within bounds.
  dataset.truncate_to_recent(100);
  EXPECT_EQ(dataset.size(), 4u);
}

TEST(ImitationDataset, TrainingLearnsSeparableExpert) {
  ImitationDataset dataset(3);
  Rng data_rng(3);
  fill_dataset(dataset, 600, data_rng);

  ReinforceAgent agent(agent_config());
  const double before = dataset.evaluate_accuracy(agent);
  Rng train_rng(5);
  const double loss = dataset.train(agent, /*epochs=*/20, /*batch=*/32, train_rng);
  const double after = dataset.evaluate_accuracy(agent);
  EXPECT_GT(after, 0.9);
  EXPECT_GT(after, before);
  EXPECT_LT(loss, 0.5);
}

TEST(ImitationDataset, TrainRejectsEmpty) {
  ImitationDataset dataset(2);
  ReinforceConfig c = agent_config();
  c.state_dim = 2;
  c.action_dim = 2;
  ReinforceAgent agent(c);
  Rng rng(1);
  EXPECT_THROW(dataset.train(agent, 1, 8, rng), ContractViolation);
  EXPECT_EQ(dataset.evaluate_accuracy(agent), 0.0);
}

}  // namespace
}  // namespace mlfs::rl
