#include "rl/reinforce.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mlfs::rl {
namespace {

ReinforceConfig bandit_config() {
  ReinforceConfig c;
  c.state_dim = 2;
  c.action_dim = 2;
  c.hidden = {8};
  c.policy_lr = 0.05;
  c.value_lr = 0.05;
  c.eta = 0.99;
  c.entropy_bonus = 0.0;
  c.seed = 3;
  return c;
}

TEST(ReinforceAgent, LearnsTwoArmedBandit) {
  // State is constant; arm 1 pays 1, arm 0 pays 0. The policy must
  // concentrate on arm 1.
  ReinforceAgent agent(bandit_config());
  const std::vector<double> state = {1.0, 0.0};
  for (int round = 0; round < 200; ++round) {
    std::vector<Episode> episodes(1);
    for (int step = 0; step < 16; ++step) {
      const int action = agent.act(state);
      episodes[0].push_back({state, action, action == 1 ? 1.0 : 0.0});
    }
    agent.update(episodes);
  }
  const auto probs = agent.action_probabilities(state);
  EXPECT_GT(probs[1], 0.9);
  EXPECT_EQ(agent.act_greedy(state), 1);
}

TEST(ReinforceAgent, LearnsContextualBandit) {
  // Best arm depends on the state bit.
  auto config = bandit_config();
  config.seed = 7;
  ReinforceAgent agent(config);
  const std::vector<double> s0 = {1.0, 0.0};
  const std::vector<double> s1 = {0.0, 1.0};
  Rng rng(5);
  for (int round = 0; round < 300; ++round) {
    std::vector<Episode> episodes(1);
    for (int step = 0; step < 16; ++step) {
      const bool ctx = rng.bernoulli(0.5);
      const auto& state = ctx ? s1 : s0;
      const int best = ctx ? 0 : 1;
      const int action = agent.act(state);
      episodes[0].push_back({state, action, action == best ? 1.0 : 0.0});
    }
    agent.update(episodes);
  }
  EXPECT_EQ(agent.act_greedy(s0), 1);
  EXPECT_EQ(agent.act_greedy(s1), 0);
}

TEST(ReinforceAgent, MaskExcludesInvalidActions) {
  ReinforceAgent agent(bandit_config());
  const std::vector<double> state = {0.5, 0.5};
  const std::vector<bool> only_zero = {true, false};
  std::vector<char> mask_bytes(only_zero.begin(), only_zero.end());
  const std::span<const bool> mask(reinterpret_cast<const bool*>(mask_bytes.data()),
                                   mask_bytes.size());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(agent.act(state, mask), 0);
    EXPECT_EQ(agent.act_greedy(state, mask), 0);
  }
}

TEST(ReinforceAgent, AllMaskedThrows) {
  ReinforceAgent agent(bandit_config());
  const std::vector<double> state = {0.5, 0.5};
  const std::vector<char> mask_bytes = {0, 0};
  const std::span<const bool> mask(reinterpret_cast<const bool*>(mask_bytes.data()),
                                   mask_bytes.size());
  EXPECT_THROW(agent.act(state, mask), ContractViolation);
}

TEST(ReinforceAgent, ProbabilitiesSumToOne) {
  ReinforceAgent agent(bandit_config());
  const std::vector<double> state = {0.1, 0.9};
  const auto probs = agent.action_probabilities(state);
  ASSERT_EQ(probs.size(), 2u);
  EXPECT_NEAR(probs[0] + probs[1], 1.0, 1e-9);
}

TEST(ReinforceAgent, UpdateOnEmptyEpisodesIsNoop) {
  ReinforceAgent agent(bandit_config());
  const std::vector<Episode> none;
  const auto stats = agent.update(none);
  EXPECT_EQ(stats.policy_loss, 0.0);
  EXPECT_EQ(stats.mean_return, 0.0);
}

TEST(ReinforceAgent, SaveLoadPreservesPolicy) {
  ReinforceAgent a(bandit_config());
  auto config = bandit_config();
  config.seed = 99;
  ReinforceAgent b(config);
  const std::vector<double> state = {1.0, 0.0};

  std::stringstream ss;
  a.save(ss);
  b.load(ss);
  const auto pa = a.action_probabilities(state);
  const auto pb = b.action_probabilities(state);
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

TEST(ReinforceAgent, ImitationStepReducesLoss) {
  ReinforceAgent agent(bandit_config());
  nn::Matrix states(4, 2);
  states.at(0, 0) = 1.0;
  states.at(1, 0) = 1.0;
  states.at(2, 1) = 1.0;
  states.at(3, 1) = 1.0;
  const std::vector<int> actions = {0, 0, 1, 1};
  double first = agent.imitation_step(states, actions);
  double last = first;
  for (int i = 0; i < 200; ++i) last = agent.imitation_step(states, actions);
  EXPECT_LT(last, first * 0.5);
}

}  // namespace
}  // namespace mlfs::rl
