#include "rl/actor_critic.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mlfs::rl {
namespace {

ActorCriticConfig bandit_config() {
  ActorCriticConfig c;
  c.state_dim = 2;
  c.action_dim = 2;
  c.hidden = {8};
  c.policy_lr = 0.05;
  c.value_lr = 0.05;
  c.eta = 0.9;
  c.entropy_bonus = 0.0;
  c.seed = 3;
  return c;
}

TEST(ActorCritic, LearnsTwoArmedBandit) {
  ActorCriticAgent agent(bandit_config());
  const std::vector<double> state = {1.0, 0.0};
  for (int round = 0; round < 250; ++round) {
    std::vector<Episode> episodes(1);
    for (int step = 0; step < 16; ++step) {
      const int action = agent.act(state);
      episodes[0].push_back({state, action, action == 1 ? 1.0 : 0.0});
    }
    agent.update(episodes);
  }
  EXPECT_EQ(agent.act_greedy(state), 1);
  EXPECT_GT(agent.action_probabilities(state)[1], 0.85);
}

TEST(ActorCritic, ValueEstimateTracksReward) {
  // Constant reward 1 per step, eta = 0.9: V(s) converges toward the
  // bootstrap fixed point 1/(1-0.9) = 10 (truncation keeps it below).
  ActorCriticAgent agent(bandit_config());
  const std::vector<double> state = {0.5, 0.5};
  for (int round = 0; round < 400; ++round) {
    std::vector<Episode> episodes(1);
    for (int step = 0; step < 32; ++step) {
      episodes[0].push_back({state, agent.act(state), 1.0});
    }
    agent.update(episodes);
  }
  const double v = agent.value_of(state);
  EXPECT_GT(v, 2.0);
  EXPECT_LT(v, 11.0);
}

TEST(ActorCritic, LearnsContextualBandit) {
  auto config = bandit_config();
  config.seed = 7;
  ActorCriticAgent agent(config);
  const std::vector<double> s0 = {1.0, 0.0};
  const std::vector<double> s1 = {0.0, 1.0};
  Rng rng(5);
  for (int round = 0; round < 400; ++round) {
    std::vector<Episode> episodes(1);
    for (int step = 0; step < 16; ++step) {
      const bool ctx = rng.bernoulli(0.5);
      const auto& state = ctx ? s1 : s0;
      const int best = ctx ? 0 : 1;
      const int action = agent.act(state);
      episodes[0].push_back({state, action, action == best ? 1.0 : 0.0});
    }
    agent.update(episodes);
  }
  EXPECT_EQ(agent.act_greedy(s0), 1);
  EXPECT_EQ(agent.act_greedy(s1), 0);
}

TEST(ActorCritic, MaskedActionsNeverSampled) {
  ActorCriticAgent agent(bandit_config());
  const std::vector<double> state = {0.5, 0.5};
  const std::vector<char> mask_bytes = {0, 1};
  const std::span<const bool> mask(reinterpret_cast<const bool*>(mask_bytes.data()), 2);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(agent.act(state, mask), 1);
}

TEST(ActorCritic, UpdateOnEmptyIsNoop) {
  ActorCriticAgent agent(bandit_config());
  const std::vector<Episode> none;
  const auto stats = agent.update(none);
  EXPECT_EQ(stats.policy_loss, 0.0);
}

TEST(ActorCritic, SaveLoadRoundTrip) {
  ActorCriticAgent a(bandit_config());
  auto config = bandit_config();
  config.seed = 31;
  ActorCriticAgent b(config);
  std::stringstream ss;
  a.save(ss);
  b.load(ss);
  const std::vector<double> state = {0.3, 0.7};
  const auto pa = a.action_probabilities(state);
  const auto pb = b.action_probabilities(state);
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

TEST(ActorCritic, ImitationStepIsSharedInterface) {
  ActorCriticAgent agent(bandit_config());
  nn::Matrix states(2, 2);
  states.at(0, 0) = 1.0;
  states.at(1, 1) = 1.0;
  const std::vector<int> actions = {0, 1};
  double loss = agent.imitation_step(states, actions);
  for (int i = 0; i < 300; ++i) loss = agent.imitation_step(states, actions);
  EXPECT_LT(loss, 0.1);
  EXPECT_EQ(agent.act_greedy(std::vector<double>{1.0, 0.0}), 0);
}

TEST(ActorCritic, PolymorphicViaPolicyAgent) {
  auto config = bandit_config();
  std::unique_ptr<PolicyAgent> agent = std::make_unique<ActorCriticAgent>(config);
  const std::vector<double> state = {1.0, 0.0};
  const int action = agent->act(state);
  EXPECT_TRUE(action == 0 || action == 1);
}

}  // namespace
}  // namespace mlfs::rl
