#include "rl/returns.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/expect.hpp"

namespace mlfs::rl {
namespace {

TEST(DiscountedReturns, HandValues) {
  const std::vector<double> rewards = {1.0, 2.0, 3.0};
  const auto g = discounted_returns(rewards, 0.5);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_DOUBLE_EQ(g[2], 3.0);
  EXPECT_DOUBLE_EQ(g[1], 2.0 + 0.5 * 3.0);
  EXPECT_DOUBLE_EQ(g[0], 1.0 + 0.5 * 3.5);
}

TEST(DiscountedReturns, NoDiscountIsSuffixSum) {
  const std::vector<double> rewards = {1.0, 1.0, 1.0, 1.0};
  const auto g = discounted_returns(rewards, 1.0);
  EXPECT_DOUBLE_EQ(g[0], 4.0);
  EXPECT_DOUBLE_EQ(g[3], 1.0);
}

TEST(DiscountedReturns, EmptyInput) {
  EXPECT_TRUE(discounted_returns({}, 0.9).empty());
}

TEST(DiscountedReturns, RejectsBadEta) {
  const std::vector<double> rewards = {1.0};
  EXPECT_THROW(discounted_returns(rewards, 0.0), ContractViolation);
  EXPECT_THROW(discounted_returns(rewards, 1.5), ContractViolation);
}

TEST(Standardize, ZeroMeanUnitVariance) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  standardize(v);
  double mean = 0.0;
  for (const double x : v) mean += x;
  mean /= 5.0;
  EXPECT_NEAR(mean, 0.0, 1e-12);
  double var = 0.0;
  for (const double x : v) var += x * x;
  EXPECT_NEAR(var / 5.0, 1.0, 1e-12);
}

TEST(Standardize, ConstantVectorUntouched) {
  std::vector<double> v = {2.0, 2.0, 2.0};
  standardize(v);
  for (const double x : v) EXPECT_DOUBLE_EQ(x, 2.0);
}

TEST(Standardize, TooSmallUntouched) {
  std::vector<double> v = {7.0};
  standardize(v);
  EXPECT_DOUBLE_EQ(v[0], 7.0);
}

}  // namespace
}  // namespace mlfs::rl
