// Parallel experiment-runner tests: the work-stealing pool itself, by-index
// result placement, exception propagation, and the determinism contract
// (parallel == serial, bit for bit — see DESIGN.md "Experiment runner &
// concurrency model").
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "exp/parallel.hpp"
#include "exp/runner.hpp"

namespace mlfs::exp {
namespace {

RunOptions quiet(unsigned threads = 1) {
  RunOptions options;
  options.threads = threads;
  options.verbose = false;
  return options;
}

TEST(ParallelRunner, ResolveThreads) {
  EXPECT_EQ(resolve_threads(3), 3u);
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_GE(resolve_threads(0), 1u);  // hardware concurrency, clamped to >= 1
}

TEST(ParallelRunner, RunsEveryIndexExactlyOnce) {
  const std::size_t count = 100;
  std::vector<std::atomic<int>> hits(count);
  ParallelRunner runner(4);
  EXPECT_EQ(runner.thread_count(), 4u);
  runner.run(count, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < count; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelRunner, SerialModeRunsInIndexOrder) {
  std::vector<std::size_t> order;
  ParallelRunner runner(1);
  runner.run(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelRunner, ZeroCountIsANoop) {
  ParallelRunner runner(4);
  runner.run(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelRunner, PropagatesFirstException) {
  ParallelRunner runner(4);
  EXPECT_THROW(
      runner.run(64,
                 [&](std::size_t i) {
                   if (i == 7) throw std::runtime_error("boom");
                 }),
      std::runtime_error);
}

TEST(ParallelRunner, ExceptionInSerialModePropagates) {
  ParallelRunner runner(1);
  EXPECT_THROW(runner.run(3, [](std::size_t) { throw std::logic_error("no"); }),
               std::logic_error);
}

TEST(RunBatch, ResultsLandByRequestIndex) {
  Scenario s = smoke_scenario(12, 11);
  const std::vector<std::string> names = {"Gandiva", "SLAQ", "Tiresias", "MLF-H"};
  std::vector<RunRequest> requests;
  for (const std::string& name : names) requests.push_back(make_request(s, name, 12));
  const std::vector<RunMetrics> results = run_batch(requests, quiet(4));
  ASSERT_EQ(results.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) EXPECT_EQ(results[i].scheduler, names[i]);
}

TEST(RunBatch, ProgressFiresOncePerRunWithMatchingIndex) {
  Scenario s = smoke_scenario(10, 2);
  std::vector<RunRequest> requests;
  for (const char* name : {"Gandiva", "SLAQ", "Optimus"}) {
    requests.push_back(make_request(s, name, 10));
  }
  std::mutex mutex;
  std::vector<int> seen(requests.size(), 0);
  RunOptions options = quiet(4);
  options.progress = [&](const RunProgress& p) {
    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_LT(p.index, requests.size());
    EXPECT_EQ(p.total, requests.size());
    EXPECT_EQ(p.request, &requests[p.index]);
    EXPECT_EQ(p.metrics->scheduler, requests[p.index].scheduler);
    ++seen[p.index];
  };
  run_batch(requests, options);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], 1) << "index " << i;
}

// The determinism guarantee behind the whole refactor: the same requests
// produce bitwise-identical metrics whether run twice serially or on a
// 4-thread pool (sched_overhead_ms excluded — it is wall-clock).
TEST(RunBatch, ParallelIsBitwiseIdenticalToSerial) {
  Scenario s = smoke_scenario(25, 9);
  std::vector<RunRequest> requests;
  for (const char* name : {"MLFS", "MLF-H", "Tiresias", "SLAQ", "Gandiva", "Optimus"}) {
    requests.push_back(make_request(s, name, 25));
  }
  const std::vector<RunMetrics> serial_a = run_batch(requests, quiet(1));
  const std::vector<RunMetrics> serial_b = run_batch(requests, quiet(1));
  const std::vector<RunMetrics> parallel = run_batch(requests, quiet(4));
  ASSERT_EQ(serial_a.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_TRUE(deterministic_equal(serial_a[i], serial_b[i]))
        << requests[i].scheduler << ": serial re-run diverged";
    EXPECT_TRUE(deterministic_equal(serial_a[i], parallel[i]))
        << requests[i].scheduler << ": parallel run diverged from serial";
  }
}

TEST(RunSweep, ThreadCountDoesNotChangeResults) {
  Scenario s = smoke_scenario(15, 5);
  s.sweep_multipliers = {0.5, 1.0};
  const SweepResults serial = run_sweep(s, {"Gandiva", "SLAQ"}, {}, quiet(1));
  const SweepResults parallel = run_sweep(s, {"Gandiva", "SLAQ"}, {}, quiet(4));
  ASSERT_EQ(serial.size(), parallel.size());
  for (const auto& [name, runs] : serial) {
    const auto it = parallel.find(name);
    ASSERT_NE(it, parallel.end());
    ASSERT_EQ(runs.size(), it->second.size());
    for (std::size_t i = 0; i < runs.size(); ++i) {
      EXPECT_TRUE(deterministic_equal(runs[i], it->second[i]))
          << name << " point " << i << " diverged across thread counts";
    }
  }
}

TEST(Metrics, DeterministicEqualIgnoresOnlySchedOverhead) {
  Scenario s = smoke_scenario(10, 4);
  RunMetrics a = run_experiment(s, "Gandiva", 10);
  RunMetrics b = a;
  b.sched_overhead_ms = a.sched_overhead_ms + 123.0;  // wall-clock: excluded
  EXPECT_TRUE(deterministic_equal(a, b));
  b = a;
  b.preemptions += 1;  // simulation-derived: compared
  EXPECT_FALSE(deterministic_equal(a, b));
  b = a;
  b.jct_minutes.add(1.0);
  EXPECT_FALSE(deterministic_equal(a, b));
}

}  // namespace
}  // namespace mlfs::exp
