// Experiment-harness tests: scenarios, sweep bookkeeping, figure tables.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "exp/runner.hpp"

namespace mlfs::exp {
namespace {

/// Serial, non-printing sweep options for tests.
RunOptions quiet() {
  RunOptions options;
  options.verbose = false;
  return options;
}

TEST(Scenario, TestbedMatchesPaperSetup) {
  const Scenario s = testbed_scenario();
  EXPECT_EQ(s.cluster.server_count, 20u);       // 20 p3.8xlarge
  EXPECT_EQ(s.cluster.gpus_per_server, 4);      // 4 V100 each = 80 GPUs
  EXPECT_EQ(s.trace.num_jobs, 620u);            // base x = 1
  EXPECT_DOUBLE_EQ(s.trace.duration_hours, 24.0 * 7);
  const auto counts = sweep_job_counts(s);      // 620x, x in {1/4,1/2,1,2,3}
  EXPECT_EQ(counts, (std::vector<std::size_t>{155, 310, 620, 1240, 1860}));
}

TEST(Scenario, LargescaleScalesProportionally) {
  const Scenario full = largescale_scenario(1.0);
  EXPECT_EQ(full.cluster.server_count, 550u);

  const Scenario small = largescale_scenario(0.02);
  EXPECT_EQ(small.cluster.server_count, 11u);
  // jobs-per-GPU-per-week is preserved across scales, pinned to the
  // testbed's density (620 jobs / 80 GPUs / week).
  for (const Scenario* s : {&full, &small}) {
    const double weeks = s->trace.duration_hours / (24.0 * 7.0);
    const double rate = static_cast<double>(s->trace.num_jobs) /
                        (static_cast<double>(s->cluster.server_count) * 4.0) / weeks;
    EXPECT_NEAR(rate, 620.0 / 80.0, 0.2);
  }
}

TEST(Scenario, SmokeClampsGpuRequestToFleet) {
  const Scenario s = smoke_scenario();
  EXPECT_LE(s.trace.max_gpu_request,
            static_cast<int>(s.cluster.server_count) * s.cluster.gpus_per_server);
}

TEST(Runner, RunExperimentProducesNamedMetrics) {
  Scenario s = smoke_scenario(20, 3);
  const RunMetrics m = run_experiment(s, "Gandiva", 20);
  EXPECT_EQ(m.scheduler, "Gandiva");
  EXPECT_EQ(m.job_count, 20u);
  EXPECT_EQ(m.jct_minutes.count(), 20u);
}

TEST(Runner, SweepCoversAllSchedulersAndPoints) {
  Scenario s = smoke_scenario(15, 5);
  s.sweep_multipliers = {0.5, 1.0};
  const auto results = run_sweep(s, {"Gandiva", "SLAQ"}, {}, quiet());
  ASSERT_EQ(results.size(), 2u);
  for (const auto& [name, runs] : results) {
    EXPECT_EQ(runs.size(), 2u) << name;
    EXPECT_EQ(runs[0].job_count, 8u);   // round(0.5 * 15)
    EXPECT_EQ(runs[1].job_count, 15u);
  }
}

TEST(Runner, PanelTableLaysOutSchedulersBySweep) {
  Scenario s = smoke_scenario(12, 7);
  s.sweep_multipliers = {1.0};
  const auto results = run_sweep(s, {"Gandiva"}, {}, quiet());
  const Table t = panel_table("demo", s, {"Gandiva"}, results,
                              [](const RunMetrics& m) { return m.deadline_ratio; }, 3);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("scheduler,12 jobs"), std::string::npos);
  EXPECT_NE(csv.find("Gandiva,"), std::string::npos);
}

TEST(Runner, CdfTableHasBreakpointColumns) {
  Scenario s = smoke_scenario(12, 9);
  s.sweep_multipliers = {1.0};
  const auto results = run_sweep(s, {"Gandiva"}, {}, quiet());
  const Table t = cdf_table("cdf", {"Gandiva"}, results, 0, {10.0, 100.0, 100000.0});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("<=10min"), std::string::npos);
  // The last breakpoint is beyond every JCT: CDF must be 1.
  EXPECT_NE(csv.find(",1.000"), std::string::npos);
}

TEST(Registry, ExtendedSetSupersetOfPaperSet) {
  const auto paper = paper_scheduler_names();
  const auto extended = extended_scheduler_names();
  EXPECT_GT(extended.size(), paper.size());
  for (const auto& name : extended) {
    EXPECT_NO_THROW(make_scheduler(name)) << name;
  }
}

TEST(Runner, WriteCsvCreatesMissingParentDirectories) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "mlfs_write_csv_test";
  fs::remove_all(root);
  const fs::path target = root / "nested" / "deep" / "table.csv";
  Table t("csv-dir demo");
  t.set_header({"k", "v"});
  t.add_row("a", {1.0}, 0);
  write_csv(t, target.string());
  ASSERT_TRUE(fs::exists(target));
  std::ifstream in(target);
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_EQ(first_line, "k,v");
  fs::remove_all(root);
}

TEST(Metrics, SummaryMentionsKeyNumbers) {
  Scenario s = smoke_scenario(10, 11);
  const RunMetrics m = run_experiment(s, "SLAQ", 10);
  const std::string summary = m.summary();
  EXPECT_NE(summary.find("SLAQ"), std::string::npos);
  EXPECT_NE(summary.find("jobs=10"), std::string::npos);
  EXPECT_NE(summary.find("avgJCT="), std::string::npos);
  EXPECT_NE(summary.find("bw="), std::string::npos);
}

}  // namespace
}  // namespace mlfs::exp
