// Streaming ingestion + durable-session tests (exp/durable.hpp): injected
// arrivals flow through the same event queue / auditor / metrics as
// trace-driven jobs, snapshots carry them, and the journal closes the
// crash loop — SIGKILL-equivalent halts at arbitrary event indices recover
// byte-identical (event_stream_hash and deterministic_equal) to a run that
// never crashed, including torn-tail journals, clean-shutdown re-runs and
// snapshot retention pruning.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/durable.hpp"
#include "exp/runner.hpp"
#include "sim/engine.hpp"
#include "sim/snapshot.hpp"

namespace mlfs {
namespace {

namespace fs = std::filesystem;
using exp::ScriptedArrivalSource;

exp::RunRequest streaming_request() {
  exp::RunRequest r;
  r.label = "durable-unit";
  r.cluster.server_count = 3;
  r.cluster.gpus_per_server = 4;
  r.cluster.servers_per_rack = 2;
  r.engine.seed = 17;
  r.engine.max_sim_time = hours(48.0);
  r.engine.fault.server_mtbf_hours = 24.0;
  r.engine.fault.task_kill_probability = 0.002;
  r.engine.recovery.enabled = true;
  r.engine.audit.enabled = true;
  r.engine.audit.stride = 1;
  r.trace.num_jobs = 8;
  r.trace.duration_hours = 1.0;
  r.trace.seed = 5;
  r.trace.max_gpu_request = 6;
  r.scheduler = "MLFS";
  return r;
}

JobSpec streamed_spec(int i) {
  JobSpec spec;
  spec.algorithm = MlAlgorithm::Mlp;
  spec.comm = CommStructure::AllReduce;
  spec.arrival = hours(0.4 + 0.3 * i);
  spec.urgency = 5.0;
  spec.gpu_request = 2;
  spec.max_iterations = 30 + 5 * i;
  spec.train_data_mb = 256.0;
  spec.accuracy_requirement = 0.75;
  spec.curve.noise_seed = 31u + static_cast<unsigned>(i);
  spec.seed = 200u + static_cast<unsigned>(i);
  return spec;
}

std::vector<ScriptedArrivalSource::Entry> streamed_script(int count) {
  std::vector<JobSpec> specs;
  for (int i = 0; i < count; ++i) specs.push_back(streamed_spec(i));
  return exp::make_script(specs);
}

/// Per-test scratch directory (tests may run concurrently — unique names).
struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path((fs::temp_directory_path() / ("mlfs_durable_" + name)).string()) {
    fs::remove_all(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string path;
};

// ------------------------------------------------------------- streaming

TEST(StreamingArrivals, FlowThroughEventQueueAuditorAndMetrics) {
  // Audit stride 1: every invariant sweep runs over the grown cluster
  // after each injection; metrics must reconcile the injection ledger.
  const RunMetrics m = exp::run_streaming(streaming_request(), streamed_script(3));
  EXPECT_EQ(m.jobs_injected, 3u);
  EXPECT_EQ(m.job_count, 8u + 3u);
  EXPECT_GT(m.events_processed, 0u);
}

TEST(StreamingArrivals, DisabledSourceMatchesPlainRun) {
  // No source attached vs an empty script: byte-identical.
  const RunMetrics plain = exp::execute_run(streaming_request());
  const RunMetrics empty = exp::run_streaming(streaming_request(), {});
  EXPECT_TRUE(deterministic_equal(plain, empty));
  EXPECT_EQ(plain.event_stream_hash, empty.event_stream_hash);
  EXPECT_EQ(empty.jobs_injected, 0u);
}

TEST(StreamingArrivals, SnapshotCarriesInjectedJobs) {
  // Cut a snapshot after every streamed job has been injected; a fresh
  // engine restored from the bytes must re-save identically and finish
  // bit-identical to the donor.
  ScriptedArrivalSource source(streamed_script(3));
  exp::EngineBundle donor = exp::build_engine(streaming_request());
  donor.engine->set_arrival_source(&source);
  while (donor.engine->injected_specs().size() < 3 && donor.engine->step()) {
  }
  ASSERT_EQ(donor.engine->injected_specs().size(), 3u);
  for (int i = 0; i < 25 && donor.engine->step(); ++i) {
  }
  std::ostringstream os(std::ios::binary);
  donor.engine->save_snapshot(os);
  const std::string bytes = os.str();

  exp::EngineBundle twin = exp::build_engine(streaming_request());
  {
    std::istringstream is(bytes, std::ios::binary);
    twin.engine->restore_snapshot(is);
  }
  EXPECT_EQ(twin.engine->injected_specs().size(), 3u);
  EXPECT_EQ(twin.engine->base_job_count(), 8u);
  std::ostringstream resaved(std::ios::binary);
  twin.engine->save_snapshot(resaved);
  EXPECT_EQ(resaved.str(), bytes);

  while (donor.engine->step()) {
  }
  while (twin.engine->step()) {
  }
  const RunMetrics expected = donor.engine->finalize();
  const RunMetrics actual = twin.engine->finalize();
  EXPECT_TRUE(deterministic_equal(expected, actual));
  EXPECT_EQ(expected.event_stream_hash, actual.event_stream_hash);
  EXPECT_EQ(actual.jobs_injected, 3u);
}

TEST(StreamingArrivals, RestoreIntoEngineWithInjectionsRejected) {
  // The "injected" section replays into a fresh engine only; restoring
  // over an engine that already injected jobs would double-register them.
  ScriptedArrivalSource source(streamed_script(1));
  exp::EngineBundle donor = exp::build_engine(streaming_request());
  donor.engine->set_arrival_source(&source);
  while (donor.engine->injected_specs().empty() && donor.engine->step()) {
  }
  std::ostringstream os(std::ios::binary);
  donor.engine->save_snapshot(os);

  ScriptedArrivalSource victim_source(streamed_script(1));
  exp::EngineBundle victim = exp::build_engine(streaming_request());
  victim.engine->set_arrival_source(&victim_source);
  while (victim.engine->injected_specs().empty() && victim.engine->step()) {
  }
  std::istringstream is(os.str(), std::ios::binary);
  EXPECT_THROW(victim.engine->restore_snapshot(is), SnapshotError);
}

// ---------------------------------------------------------------- zero loss

TEST(DurableSession, CrashAnywhereRecoversByteIdentical) {
  const exp::RunRequest request = streaming_request();
  const auto script = streamed_script(3);
  // Crash early (before any injection), mid-stream, and late; stride keeps
  // several checkpoints in play so recovery replays a real journal tail.
  const std::uint64_t probes[] = {1, 0x10000001, 0x20000003};
  int index = 0;
  for (const std::uint64_t probe : probes) {
    ScratchDir scratch("crash_" + std::to_string(index++));
    exp::DurableConfig config;
    config.dir = scratch.path;
    config.snapshot_stride = 60;
    const exp::CrashCheckResult result =
        exp::check_crash_equivalence(request, script, probe, config);
    EXPECT_TRUE(result.equivalent) << result.detail;
  }
}

TEST(DurableSession, CrashRecoveryWithoutStreamingStaysByteIdentical) {
  ScratchDir scratch("crash_plain");
  exp::DurableConfig config;
  config.dir = scratch.path;
  config.snapshot_stride = 75;
  const exp::CrashCheckResult result =
      exp::check_crash_equivalence(streaming_request(), {}, 0x3000000fu, config);
  EXPECT_TRUE(result.equivalent) << result.detail;
}

TEST(DurableSession, TornJournalTailIsDroppedAndRecovered) {
  const exp::RunRequest request = streaming_request();
  const auto script = streamed_script(3);
  const RunMetrics reference = exp::run_streaming(request, script);

  ScratchDir scratch("torn_tail");
  exp::DurableConfig config;
  config.dir = scratch.path;
  config.snapshot_stride = 50;
  exp::DurableConfig crashed = config;
  crashed.halt_at_event = reference.events_processed / 2;
  ASSERT_TRUE(exp::run_durable(request, script, crashed).halted);

  // Simulate a write torn mid-frame: garbage partial bytes at the tail of
  // the newest segment. Recovery must truncate it and still converge.
  std::uint64_t newest = 0;
  for (const auto& entry : fs::directory_iterator(scratch.path)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snap-", 0) == 0) {
      newest = std::max<std::uint64_t>(newest, std::stoull(name.substr(5)));
    }
  }
  {
    std::ofstream tail(scratch.path + "/journal-" + std::to_string(newest) + ".wal",
                       std::ios::binary | std::ios::app);
    tail.write("\x7f\x01\x02", 3);
  }

  const exp::DurableResult recovered = exp::run_durable(request, script, config);
  EXPECT_TRUE(recovered.recovered);
  EXPECT_TRUE(recovered.torn_tail_dropped);
  EXPECT_TRUE(deterministic_equal(reference, recovered.metrics))
      << "reference [" << reference.summary() << "] recovered ["
      << recovered.metrics.summary() << "]";
  EXPECT_EQ(reference.event_stream_hash, recovered.metrics.event_stream_hash);
}

TEST(DurableSession, RerunAfterCleanShutdownRecoversAndMatches) {
  const exp::RunRequest request = streaming_request();
  const auto script = streamed_script(2);
  ScratchDir scratch("rerun");
  exp::DurableConfig config;
  config.dir = scratch.path;
  config.snapshot_stride = 80;

  const exp::DurableResult first = exp::run_durable(request, script, config);
  ASSERT_FALSE(first.halted);
  const exp::DurableResult second = exp::run_durable(request, script, config);
  EXPECT_TRUE(second.recovered);
  EXPECT_TRUE(deterministic_equal(first.metrics, second.metrics));
  EXPECT_EQ(first.metrics.event_stream_hash, second.metrics.event_stream_hash);
}

TEST(DurableSession, SnapshotKeepPrunesOldCheckpointsAndTheirSegments) {
  const exp::RunRequest request = streaming_request();
  const auto script = streamed_script(2);
  ScratchDir scratch("prune");
  exp::DurableConfig config;
  config.dir = scratch.path;
  config.snapshot_stride = 40;
  config.snapshot_keep = 2;

  const exp::DurableResult result = exp::run_durable(request, script, config);
  ASSERT_FALSE(result.halted);
  ASSERT_GT(result.snapshots_written, 2u);  // pruning actually had work to do

  std::size_t snaps = 0;
  std::size_t journals = 0;
  for (const auto& entry : fs::directory_iterator(scratch.path)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snap-", 0) == 0) ++snaps;
    if (name.rfind("journal-", 0) == 0) ++journals;
  }
  EXPECT_EQ(snaps, 2u);
  EXPECT_EQ(journals, 2u);

  // And the pruned directory still recovers: the newest pair survived.
  const exp::DurableResult resumed = exp::run_durable(request, script, config);
  EXPECT_TRUE(resumed.recovered);
  EXPECT_TRUE(deterministic_equal(result.metrics, resumed.metrics));
}

}  // namespace
}  // namespace mlfs
