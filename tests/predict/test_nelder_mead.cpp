#include "predict/nelder_mead.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/expect.hpp"

namespace mlfs {
namespace {

TEST(NelderMead, QuadraticBowl) {
  const auto result = nelder_mead(
      [](const std::vector<double>& x) {
        return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] + 2.0) * (x[1] + 2.0);
      },
      {0.0, 0.0});
  EXPECT_NEAR(result.x[0], 3.0, 1e-3);
  EXPECT_NEAR(result.x[1], -2.0, 1e-3);
  EXPECT_LT(result.value, 1e-6);
}

TEST(NelderMead, Rosenbrock2D) {
  NelderMeadOptions options;
  options.max_iterations = 5000;
  const auto result = nelder_mead(
      [](const std::vector<double>& x) {
        const double a = 1.0 - x[0];
        const double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
      },
      {-1.2, 1.0}, options);
  EXPECT_NEAR(result.x[0], 1.0, 0.05);
  EXPECT_NEAR(result.x[1], 1.0, 0.1);
}

TEST(NelderMead, OneDimensional) {
  const auto result =
      nelder_mead([](const std::vector<double>& x) { return std::abs(x[0] - 7.0); }, {0.0});
  EXPECT_NEAR(result.x[0], 7.0, 1e-2);
}

TEST(NelderMead, HandlesNonFiniteRegions) {
  // Objective is +inf for x < 0; the optimizer must stay in the valid
  // region and find the boundary-adjacent minimum at x = 0.5.
  const auto result = nelder_mead(
      [](const std::vector<double>& x) {
        if (x[0] < 0.0) return std::numeric_limits<double>::quiet_NaN();
        return (x[0] - 0.5) * (x[0] - 0.5);
      },
      {2.0});
  EXPECT_NEAR(result.x[0], 0.5, 1e-3);
}

TEST(NelderMead, RespectsIterationBudget) {
  NelderMeadOptions options;
  options.max_iterations = 3;
  const auto result = nelder_mead(
      [](const std::vector<double>& x) { return x[0] * x[0]; }, {100.0}, options);
  EXPECT_LE(result.iterations, 3u);
}

TEST(NelderMead, EmptyInputRejected) {
  EXPECT_THROW(nelder_mead([](const std::vector<double>&) { return 0.0; }, {}),
               ContractViolation);
}

}  // namespace
}  // namespace mlfs
