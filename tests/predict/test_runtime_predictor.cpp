#include "predict/runtime_predictor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>
#include <vector>

#include "common/binio.hpp"
#include "workload/model_zoo.hpp"

namespace mlfs {
namespace {

Job make_job(MlAlgorithm algo, int gpus, std::uint64_t seed) {
  JobSpec spec;
  spec.id = 0;
  spec.algorithm = algo;
  spec.comm = CommStructure::AllReduce;
  spec.gpu_request = gpus;
  spec.max_iterations = 40;
  spec.seed = seed;
  return std::move(ModelZoo::instantiate(spec, 0).job);
}

TEST(RuntimePredictor, UnseenJobsHaveLargerErrorBound) {
  RuntimePredictor predictor;  // 11% seen / 30% unseen
  const Job job = make_job(MlAlgorithm::Mlp, 2, 1);
  EXPECT_FALSE(predictor.has_history(job));
  const double truth = job.estimated_execution_seconds();
  const double unseen = predictor.predict_execution_seconds(job);
  EXPECT_LE(std::abs(unseen - truth) / truth, 0.30 + 1e-9);

  predictor.record_completion(job);
  EXPECT_TRUE(predictor.has_history(job));
  const double seen = predictor.predict_execution_seconds(job);
  EXPECT_LE(std::abs(seen - truth) / truth, 0.11 + 1e-9);
}

TEST(RuntimePredictor, HistoryIsPerAlgorithmAndGpuCount) {
  RuntimePredictor predictor;
  const Job a = make_job(MlAlgorithm::Mlp, 2, 1);
  const Job b = make_job(MlAlgorithm::Mlp, 4, 2);   // same algo, different GPUs
  const Job c = make_job(MlAlgorithm::Lstm, 2, 3);  // different algo
  predictor.record_completion(a);
  EXPECT_TRUE(predictor.has_history(a));
  EXPECT_FALSE(predictor.has_history(b));
  EXPECT_FALSE(predictor.has_history(c));
}

TEST(RuntimePredictor, DeterministicPerJob) {
  RuntimePredictor predictor;
  const Job job = make_job(MlAlgorithm::ResNet, 4, 9);
  EXPECT_DOUBLE_EQ(predictor.predict_execution_seconds(job),
                   predictor.predict_execution_seconds(job));
}

TEST(RuntimePredictor, RemainingShrinksWithProgress) {
  RuntimePredictor predictor;
  Job job = make_job(MlAlgorithm::ResNet, 2, 4);
  const double before = predictor.predict_remaining_seconds(job);
  job.complete_iteration();
  job.complete_iteration();
  const double after = predictor.predict_remaining_seconds(job);
  EXPECT_LT(after, before);
  EXPECT_GT(after, 0.0);
}

TEST(RuntimePredictor, RemainingIsZeroWhenTargetReached) {
  RuntimePredictor predictor;
  Job job = make_job(MlAlgorithm::Mlp, 1, 6);
  job.set_target_iterations(2);
  job.complete_iteration();
  job.complete_iteration();
  EXPECT_DOUBLE_EQ(predictor.predict_remaining_seconds(job), 0.0);
}

TEST(RuntimePredictor, RejectsNegativeErrorLevels) {
  EXPECT_THROW(RuntimePredictor(-0.1, 0.3), ContractViolation);
}

TEST(SignatureSet, InsertContainsAndGrowth) {
  SignatureSet set;
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains(1, 2));
  // Push well past the initial capacity to force several rehashes.
  for (int algo = 0; algo < 12; ++algo) {
    for (int gpus = 1; gpus <= 32; gpus *= 2) set.insert(algo, gpus);
  }
  EXPECT_EQ(set.size(), 12u * 6u);
  set.insert(3, 4);  // duplicate: no growth
  EXPECT_EQ(set.size(), 12u * 6u);
  for (int algo = 0; algo < 12; ++algo) {
    for (int gpus = 1; gpus <= 32; gpus *= 2) {
      EXPECT_TRUE(set.contains(algo, gpus)) << algo << "x" << gpus;
    }
  }
  EXPECT_FALSE(set.contains(12, 1));
  EXPECT_FALSE(set.contains(0, 3));
  set.clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains(3, 4));
}

TEST(SignatureSet, PackUnpackRoundTrip) {
  const std::uint64_t key = SignatureSet::pack(7, 16);
  EXPECT_EQ(SignatureSet::unpack_algorithm(key), 7);
  EXPECT_EQ(SignatureSet::unpack_gpus(key), 16);
}

TEST(RuntimePredictor, SaveFormatMatchesHistoricalSortedBytes) {
  // The flat set replaced a std::set<std::pair<int,int>> whose iteration
  // order (ascending algorithm, then gpus) defined the snapshot section
  // bytes; the replacement must keep them byte-identical. Insert out of
  // order and compare against the hand-built sorted encoding.
  RuntimePredictor predictor;
  predictor.record_completion(make_job(MlAlgorithm::Lstm, 4, 1));
  predictor.record_completion(make_job(MlAlgorithm::Mlp, 8, 2));
  predictor.record_completion(make_job(MlAlgorithm::Mlp, 2, 3));
  std::ostringstream actual;
  {
    io::BinWriter w(actual);
    predictor.save_state(w);
  }
  std::vector<std::pair<int, int>> sorted = {
      {static_cast<int>(MlAlgorithm::Mlp), 2},
      {static_cast<int>(MlAlgorithm::Mlp), 8},
      {static_cast<int>(MlAlgorithm::Lstm), 4},
  };
  std::sort(sorted.begin(), sorted.end());
  std::ostringstream expected;
  {
    io::BinWriter w(expected);
    w.u64(sorted.size());
    for (const auto& [algo, gpus] : sorted) {
      w.i64(algo);
      w.i64(gpus);
    }
  }
  EXPECT_EQ(actual.str(), expected.str());

  // Round trip restores the same membership.
  RuntimePredictor restored;
  std::istringstream in(actual.str());
  io::BinReader r(in);
  restored.restore_state(r);
  EXPECT_TRUE(restored.has_history(make_job(MlAlgorithm::Lstm, 4, 9)));
  EXPECT_TRUE(restored.has_history(make_job(MlAlgorithm::Mlp, 2, 9)));
  EXPECT_FALSE(restored.has_history(make_job(MlAlgorithm::Lstm, 2, 9)));
}

}  // namespace
}  // namespace mlfs
