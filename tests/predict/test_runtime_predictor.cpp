#include "predict/runtime_predictor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "workload/model_zoo.hpp"

namespace mlfs {
namespace {

Job make_job(MlAlgorithm algo, int gpus, std::uint64_t seed) {
  JobSpec spec;
  spec.id = 0;
  spec.algorithm = algo;
  spec.comm = CommStructure::AllReduce;
  spec.gpu_request = gpus;
  spec.max_iterations = 40;
  spec.seed = seed;
  return std::move(ModelZoo::instantiate(spec, 0).job);
}

TEST(RuntimePredictor, UnseenJobsHaveLargerErrorBound) {
  RuntimePredictor predictor;  // 11% seen / 30% unseen
  const Job job = make_job(MlAlgorithm::Mlp, 2, 1);
  EXPECT_FALSE(predictor.has_history(job));
  const double truth = job.estimated_execution_seconds();
  const double unseen = predictor.predict_execution_seconds(job);
  EXPECT_LE(std::abs(unseen - truth) / truth, 0.30 + 1e-9);

  predictor.record_completion(job);
  EXPECT_TRUE(predictor.has_history(job));
  const double seen = predictor.predict_execution_seconds(job);
  EXPECT_LE(std::abs(seen - truth) / truth, 0.11 + 1e-9);
}

TEST(RuntimePredictor, HistoryIsPerAlgorithmAndGpuCount) {
  RuntimePredictor predictor;
  const Job a = make_job(MlAlgorithm::Mlp, 2, 1);
  const Job b = make_job(MlAlgorithm::Mlp, 4, 2);   // same algo, different GPUs
  const Job c = make_job(MlAlgorithm::Lstm, 2, 3);  // different algo
  predictor.record_completion(a);
  EXPECT_TRUE(predictor.has_history(a));
  EXPECT_FALSE(predictor.has_history(b));
  EXPECT_FALSE(predictor.has_history(c));
}

TEST(RuntimePredictor, DeterministicPerJob) {
  RuntimePredictor predictor;
  const Job job = make_job(MlAlgorithm::ResNet, 4, 9);
  EXPECT_DOUBLE_EQ(predictor.predict_execution_seconds(job),
                   predictor.predict_execution_seconds(job));
}

TEST(RuntimePredictor, RemainingShrinksWithProgress) {
  RuntimePredictor predictor;
  Job job = make_job(MlAlgorithm::ResNet, 2, 4);
  const double before = predictor.predict_remaining_seconds(job);
  job.complete_iteration();
  job.complete_iteration();
  const double after = predictor.predict_remaining_seconds(job);
  EXPECT_LT(after, before);
  EXPECT_GT(after, 0.0);
}

TEST(RuntimePredictor, RemainingIsZeroWhenTargetReached) {
  RuntimePredictor predictor;
  Job job = make_job(MlAlgorithm::Mlp, 1, 6);
  job.set_target_iterations(2);
  job.complete_iteration();
  job.complete_iteration();
  EXPECT_DOUBLE_EQ(predictor.predict_remaining_seconds(job), 0.0);
}

TEST(RuntimePredictor, RejectsNegativeErrorLevels) {
  EXPECT_THROW(RuntimePredictor(-0.1, 0.3), ContractViolation);
}

}  // namespace
}  // namespace mlfs
