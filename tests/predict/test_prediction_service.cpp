// PredictionService (predict/service.hpp): the incremental memoized
// service must be byte-identical to the legacy stateless cold-fit path
// (chain-canonical semantics), reuse stored links on rollback re-entry,
// memoize repeated queries, evict terminal jobs, survive a snapshot
// round-trip bit-exactly, and reject invalid configurations.
#include "predict/service.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/expect.hpp"
#include "workload/model_zoo.hpp"

namespace mlfs {
namespace {

Job make_job(int max_iterations = 60, double a_max = 0.85, double kappa = 9.0,
             JobId id = 0) {
  JobSpec spec;
  spec.id = id;
  spec.algorithm = MlAlgorithm::Mlp;
  spec.comm = CommStructure::AllReduce;
  spec.gpu_request = 2;
  spec.max_iterations = max_iterations;
  spec.stop_policy = StopPolicy::OptStop;
  spec.min_allowed_policy = StopPolicy::OptStop;
  spec.curve.max_accuracy = a_max;
  spec.curve.kappa = kappa;
  spec.seed = 7;
  return std::move(ModelZoo::instantiate(spec, 0).job);
}

void advance(Job& job, PredictionService& svc, int iterations) {
  for (int i = 0; i < iterations; ++i) {
    job.complete_iteration();
    svc.on_iteration_complete(job);
  }
}

TEST(PredictConfigValidate, RejectsInvalidFields) {
  const auto expect_reject = [](auto&& mutate) {
    PredictConfig config;
    mutate(config);
    EXPECT_THROW(config.validate(), ContractViolation);
  };
  expect_reject([](PredictConfig& c) { c.warm_step_scale = 0.0; });
  expect_reject([](PredictConfig& c) { c.warm_step_floor = 0.0; });
  expect_reject([](PredictConfig& c) { c.warm_step_floor = 0.3; });
  expect_reject([](PredictConfig& c) { c.restart_budget = -1; });
  expect_reject([](PredictConfig& c) { c.regression_factor = 0.9; });
  expect_reject([](PredictConfig& c) { c.regression_epsilon = -1e-9; });
  expect_reject([](PredictConfig& c) { c.settle_factor = 0.9; });
  expect_reject([](PredictConfig& c) { c.settle_epsilon = -1e-12; });
  expect_reject([](PredictConfig& c) { c.freeze_weight_threshold = 1.0; });
  expect_reject([](PredictConfig& c) { c.freeze_streak = 0; });
  expect_reject([](PredictConfig& c) { c.freeze_min_links = 0; });
  expect_reject([](PredictConfig& c) { c.coarsen_head = 2; });
  expect_reject([](PredictConfig& c) { c.coarsen_per_octave = 0; });
  EXPECT_NO_THROW(PredictConfig{}.validate());
}

TEST(PredictionService, CanonicalLinkArithmetic) {
  const PredictionService svc({}, /*check_interval=*/5);
  // min_observations = 3 → first check point at or after 3 on the 5-grid.
  EXPECT_EQ(svc.first_link(), 5);
  EXPECT_EQ(svc.quantize(4), 0);   // before the first link: fallback regime
  EXPECT_EQ(svc.quantize(5), 5);
  EXPECT_EQ(svc.quantize(14), 10);
  const PredictionService unit({}, /*check_interval=*/1);
  EXPECT_EQ(unit.first_link(), 3);
  EXPECT_EQ(unit.quantize(2), 0);
  EXPECT_EQ(unit.quantize(3), 3);
}

TEST(PredictionService, MatchesLegacyColdFitPathBitwise) {
  // The tentpole equivalence: at every OptStop check point the service's
  // incremental warm-started chain must reproduce the legacy stateless
  // recompute bit for bit.
  for (const int interval : {1, 4}) {
    Job a = make_job();
    Job b = make_job();
    PredictConfig on;
    PredictConfig off;
    off.enabled = false;
    PredictionService service(on, interval);
    PredictionService legacy(off, interval);
    for (int i = 0; i < a.spec().max_iterations; ++i) {
      advance(a, service, 1);
      advance(b, legacy, 1);
      if (a.completed_iterations() % interval != 0) continue;
      const CurvePrediction ps = service.predict_at_max(a);
      const CurvePrediction pl = legacy.predict_at_max(b);
      EXPECT_EQ(ps.accuracy, pl.accuracy) << "done=" << a.completed_iterations();
      EXPECT_EQ(ps.confidence, pl.confidence) << "done=" << a.completed_iterations();
    }
    EXPECT_GT(service.stats().nm_objective_evals, 0u);
    // The legacy path recomputes every chain prefix; the service fits each
    // link once, so it must do strictly less Nelder-Mead work.
    EXPECT_LT(service.stats().nm_objective_evals, legacy.stats().nm_objective_evals);
    EXPECT_TRUE(legacy.cached_states().empty());
  }
}

TEST(PredictionService, BelowFirstLinkFallsBackToLastObservation) {
  Job job = make_job();
  PredictionService svc({}, /*check_interval=*/5);
  const CurvePrediction empty = svc.predict_at_max(job);
  EXPECT_EQ(empty.accuracy, 0.0);
  EXPECT_EQ(empty.confidence, 0.0);
  advance(job, svc, 2);  // still below the first canonical link
  const CurvePrediction early = svc.predict_at_max(job);
  EXPECT_EQ(early.accuracy, job.curve().accuracy_at(2));
  EXPECT_EQ(early.confidence, 0.0);
  EXPECT_EQ(svc.stats().fits_cold + svc.stats().fits_warm, 0u);
}

TEST(PredictionService, MemoizesRepeatedQueries) {
  Job job = make_job();
  PredictionService svc({}, /*check_interval=*/3);
  advance(job, svc, 9);
  const CurvePrediction first = svc.predict_at_max(job);
  const std::size_t evals = svc.stats().nm_objective_evals;
  const std::size_t hits = svc.stats().cache_hits;
  const CurvePrediction again = svc.predict_at_max(job);  // MLF-C's repeat query
  EXPECT_EQ(again.accuracy, first.accuracy);
  EXPECT_EQ(again.confidence, first.confidence);
  EXPECT_EQ(svc.stats().nm_objective_evals, evals);  // no refit
  EXPECT_EQ(svc.stats().cache_hits, hits + 1);
}

TEST(PredictionService, RollbackReentryReusesStoredLinks) {
  // A fault rollback drops completed_iterations to an earlier check point;
  // the chain is a pure function of the observation prefix, so the stored
  // link answers without any fitting.
  Job job = make_job();
  PredictionService svc({}, /*check_interval=*/3);
  advance(job, svc, 6);
  const CurvePrediction at6 = svc.predict_at_max(job);
  advance(job, svc, 3);
  (void)svc.predict_at_max(job);  // chain now through done=9
  const std::size_t evals = svc.stats().nm_objective_evals;
  job.rollback_iterations(3);  // back to done=6
  const CurvePrediction replay = svc.predict_at_max(job);
  EXPECT_EQ(replay.accuracy, at6.accuracy);
  EXPECT_EQ(replay.confidence, at6.confidence);
  EXPECT_EQ(svc.stats().nm_objective_evals, evals);  // pure lookup
}

TEST(PredictionService, TerminalJobsAreEvicted) {
  Job job = make_job();
  Job other = make_job(60, 0.85, 9.0, /*id=*/1);
  PredictionService svc({}, /*check_interval=*/3);
  advance(job, svc, 6);
  advance(other, svc, 6);
  (void)svc.predict_at_max(job);
  (void)svc.predict_at_max(other);
  EXPECT_EQ(svc.cached_states().size(), 2u);
  svc.on_job_failed(job);
  EXPECT_EQ(svc.cached_states().count(job.id()), 0u);
  svc.on_job_complete(other);
  EXPECT_TRUE(svc.cached_states().empty());
}

TEST(PredictionService, SnapshotRoundTripIsBitExact) {
  Job job = make_job();
  PredictionService svc({}, /*check_interval=*/3);
  advance(job, svc, 9);
  (void)svc.predict_at_max(job);

  std::ostringstream bytes;
  {
    io::BinWriter w(bytes);
    svc.save_state(w);
  }
  PredictionService restored({}, /*check_interval=*/3);
  {
    std::istringstream in(bytes.str());
    io::BinReader r(in);
    restored.restore_state(r);
  }
  EXPECT_EQ(restored.stats().fits_cold, svc.stats().fits_cold);
  EXPECT_EQ(restored.stats().fits_warm, svc.stats().fits_warm);
  EXPECT_EQ(restored.stats().cache_hits, svc.stats().cache_hits);
  EXPECT_EQ(restored.stats().nm_objective_evals, svc.stats().nm_objective_evals);
  EXPECT_EQ(restored.cached_states().size(), 1u);

  // Bit-identical state must re-serialize to the exact same bytes...
  std::ostringstream again;
  {
    io::BinWriter w(again);
    restored.save_state(w);
  }
  EXPECT_EQ(again.str(), bytes.str());

  // ...and continue the chain exactly like the original.
  advance(job, svc, 3);
  const CurvePrediction a = svc.predict_at_max(job);
  const CurvePrediction b = restored.predict_at_max(job);
  EXPECT_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.confidence, b.confidence);
}

TEST(PredictionService, CoarseningIsDeterministicAcrossModes) {
  // Coarsening changes the fit (approximation mode) but applies to the
  // service and the legacy path alike, so the two still agree bit for bit
  // — and the coarse fit must differ from the exact one on a long tail.
  PredictConfig coarse_on;
  coarse_on.coarsen = true;
  coarse_on.coarsen_head = 8;
  coarse_on.coarsen_per_octave = 4;
  PredictConfig coarse_legacy = coarse_on;
  coarse_legacy.enabled = false;

  Job a = make_job(120);
  Job b = make_job(120);
  Job c = make_job(120);
  PredictionService svc(coarse_on, /*check_interval=*/4);
  PredictionService legacy(coarse_legacy, /*check_interval=*/4);
  PredictionService exact({}, /*check_interval=*/4);
  bool coarse_diverged_from_exact = false;
  for (int i = 0; i < 120; ++i) {
    advance(a, svc, 1);
    advance(b, legacy, 1);
    advance(c, exact, 1);
    if (a.completed_iterations() % 4 != 0) continue;
    const CurvePrediction ps = svc.predict_at_max(a);
    const CurvePrediction pl = legacy.predict_at_max(b);
    const CurvePrediction pe = exact.predict_at_max(c);
    EXPECT_EQ(ps.accuracy, pl.accuracy) << "done=" << a.completed_iterations();
    EXPECT_EQ(ps.confidence, pl.confidence) << "done=" << a.completed_iterations();
    if (ps.accuracy != pe.accuracy) coarse_diverged_from_exact = true;
  }
  EXPECT_TRUE(coarse_diverged_from_exact);
  EXPECT_GT(svc.stats().fits_cold + svc.stats().fits_warm, 0u);
}

}  // namespace
}  // namespace mlfs
