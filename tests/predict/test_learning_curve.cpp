#include "predict/learning_curve.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "workload/loss_curve.hpp"

namespace mlfs {
namespace {

std::vector<double> curve_samples(double a_max, double kappa, int n) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 1; i <= n; ++i) {
    out.push_back(a_max * i / (i + kappa));
  }
  return out;
}

TEST(LearningCurvePredictor, RecoversHyperbolicCurveFamily) {
  // The simulator's ground-truth family is MMF with delta=1: the predictor
  // must extrapolate it accurately from a prefix (the §3.1 "around 90%
  // accuracy" assumption holds by a wide margin here).
  const LearningCurvePredictor predictor;
  const auto observed = curve_samples(0.9, 10.0, 20);
  const auto prediction = predictor.predict_at(observed, 200);
  const double truth = 0.9 * 200.0 / 210.0;
  EXPECT_NEAR(prediction.accuracy, truth, 0.02);
  EXPECT_GT(prediction.confidence, 0.5);
}

TEST(LearningCurvePredictor, InterpolationIsAccurate) {
  const LearningCurvePredictor predictor;
  const auto observed = curve_samples(0.8, 6.0, 30);
  const auto prediction = predictor.predict_at(observed, 15);
  EXPECT_NEAR(prediction.accuracy, observed[14], 0.01);
}

TEST(LearningCurvePredictor, FewObservationsFallBack) {
  const LearningCurvePredictor predictor;
  const std::vector<double> two = {0.1, 0.18};
  const auto prediction = predictor.predict_at(two, 100);
  EXPECT_DOUBLE_EQ(prediction.accuracy, 0.18);  // last observation
  EXPECT_DOUBLE_EQ(prediction.confidence, 0.0);

  const auto empty_pred = predictor.predict_at({}, 100);
  EXPECT_DOUBLE_EQ(empty_pred.accuracy, 0.0);
}

TEST(LearningCurvePredictor, NoisyObservationsStillClose) {
  Rng rng(5);
  auto observed = curve_samples(0.85, 12.0, 25);
  for (auto& v : observed) v = std::clamp(v * rng.lognormal(0.0, 0.02), 0.0, 1.0);
  const LearningCurvePredictor predictor;
  const auto prediction = predictor.predict_at(observed, 300);
  const double truth = 0.85 * 300.0 / 312.0;
  EXPECT_NEAR(prediction.accuracy, truth, 0.06);
}

TEST(LearningCurvePredictor, PredictionWithinUnitInterval) {
  const LearningCurvePredictor predictor;
  // Pathological rising observations must still clamp to [0, 1].
  const std::vector<double> weird = {0.2, 0.5, 0.8, 0.95, 0.99};
  const auto prediction = predictor.predict_at(weird, 10000);
  EXPECT_GE(prediction.accuracy, 0.0);
  EXPECT_LE(prediction.accuracy, 1.0);
  EXPECT_GE(prediction.confidence, 0.0);
  EXPECT_LE(prediction.confidence, 1.0);
}

TEST(LearningCurvePredictor, ConfidenceGrowsWithAgreement) {
  const LearningCurvePredictor predictor;
  // Clean long prefix: bases agree -> high confidence.
  const auto clean = curve_samples(0.9, 8.0, 40);
  const auto clean_pred = predictor.predict_at(clean, 100);
  // Erratic observations: bases disagree -> lower confidence.
  std::vector<double> erratic;
  Rng rng(9);
  for (int i = 1; i <= 8; ++i) erratic.push_back(rng.uniform(0.1, 0.9));
  const auto erratic_pred = predictor.predict_at(erratic, 100);
  EXPECT_GT(clean_pred.confidence, erratic_pred.confidence);
}

TEST(LearningCurvePredictor, BasisNamesExposed) {
  const auto names = LearningCurvePredictor::basis_names();
  EXPECT_GE(names.size(), 3u);
}

TEST(LearningCurvePredictor, AccuracyAcrossCurveFamilyAbove90Percent) {
  // The §3.1 claim: ~90% prediction accuracy. Sweep the generator's curve
  // parameter space and check mean relative error stays under 10%.
  const LearningCurvePredictor predictor;
  Rng rng(77);
  double total_rel_error = 0.0;
  int cases = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const double a_max = rng.uniform(0.65, 0.96);
    const double kappa = rng.uniform(3.0, 20.0);
    const auto observed = curve_samples(a_max, kappa, 15);
    const int target = 150;
    const double truth = a_max * target / (target + kappa);
    const auto prediction = predictor.predict_at(observed, target);
    total_rel_error += std::abs(prediction.accuracy - truth) / truth;
    ++cases;
  }
  EXPECT_LT(total_rel_error / cases, 0.10);
}

}  // namespace
}  // namespace mlfs
