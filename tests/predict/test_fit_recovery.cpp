// Parameter-recovery tests for the prediction substrate: the learning-
// curve fit must recover the generating curve's parameters (asymptote and
// half-saturation point), and Nelder-Mead must converge on harder,
// higher-dimensional valleys than the 2-D cases in test_nelder_mead.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "predict/learning_curve.hpp"
#include "predict/nelder_mead.hpp"
#include "predict/service.hpp"
#include "workload/model_zoo.hpp"

namespace mlfs {
namespace {

std::vector<double> hyperbolic_samples(double a_max, double kappa, int n) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 1; i <= n; ++i) out.push_back(a_max * i / (i + kappa));
  return out;
}

TEST(FitRecovery, AsymptoteRecoveredFromPrefix) {
  // Predicting far past the horizon exposes the fitted asymptote: for
  // a(t) = a_max * t / (t + kappa), a(10^6) ≈ a_max to 4 decimal places.
  const LearningCurvePredictor predictor;
  for (const auto& [a_max, kappa] : {std::pair{0.92, 8.0}, {0.75, 20.0}, {0.6, 3.5}}) {
    const auto observed = hyperbolic_samples(a_max, kappa, 40);
    const auto prediction = predictor.predict_at(observed, 1'000'000);
    EXPECT_NEAR(prediction.accuracy, a_max, 0.02) << "a_max=" << a_max << " kappa=" << kappa;
  }
}

TEST(FitRecovery, HalfSaturationPointRecovered) {
  // a(kappa) = a_max / 2 — a pure property of the generating parameters,
  // so hitting it from a 40-point prefix means the fit recovered both.
  const LearningCurvePredictor predictor;
  const double a_max = 0.88;
  const double kappa = 64.0;
  const auto observed = hyperbolic_samples(a_max, kappa, 40);
  const auto prediction = predictor.predict_at(observed, static_cast<int>(kappa));
  EXPECT_NEAR(prediction.accuracy, a_max / 2.0, 0.02);
}

TEST(FitRecovery, ExtrapolationBeatsLastObservationBaseline) {
  // The whole point of fitting: on a still-rising curve, the prediction
  // at 8x the horizon must be much closer to the truth than the naive
  // "accuracy stays where it is" baseline.
  const LearningCurvePredictor predictor;
  const auto observed = hyperbolic_samples(0.9, 30.0, 25);
  const double truth = 0.9 * 200.0 / 230.0;
  const auto prediction = predictor.predict_at(observed, 200);
  const double fit_error = std::abs(prediction.accuracy - truth);
  const double naive_error = std::abs(observed.back() - truth);
  EXPECT_LT(fit_error, naive_error / 4.0);
}

TEST(FitRecovery, WarmStartedChainRecoversLikeColdFits) {
  // The service's warm-started chain is an optimization, not a different
  // estimator: at the chain tip it must recover the generating curve as
  // well as an independent cold fit on the same prefix does.
  const double a_max = 0.88;
  const double kappa = 12.0;
  JobSpec spec;
  spec.id = 0;
  spec.gpu_request = 2;
  spec.max_iterations = 1000;
  spec.stop_policy = StopPolicy::OptStop;
  spec.min_allowed_policy = StopPolicy::OptStop;
  spec.curve.max_accuracy = a_max;
  spec.curve.kappa = kappa;
  spec.seed = 7;
  Job job = std::move(ModelZoo::instantiate(spec, 0).job);

  PredictionService service({}, /*check_interval=*/4);
  CurvePrediction chain_tip{0.0, 0.0};
  for (int i = 0; i < 40; ++i) {
    job.complete_iteration();
    service.on_iteration_complete(job);
    if (job.completed_iterations() % 4 == 0) chain_tip = service.predict_at_max(job);
  }
  // 10 warm links deep by now — the chain must have warm-started fits.
  EXPECT_GT(service.stats().fits_warm, 0u);

  const auto observed = hyperbolic_samples(a_max, kappa, 40);
  const LearningCurvePredictor predictor;
  const CurvePrediction cold = predictor.predict_at(observed, 1000);
  const double truth = a_max * 1000.0 / (1000.0 + kappa);
  EXPECT_NEAR(chain_tip.accuracy, truth, 0.02);
  EXPECT_NEAR(chain_tip.accuracy, cold.accuracy, 0.02);
}

double rosenbrock(const std::vector<double>& x) {
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    const double a = x[i + 1] - x[i] * x[i];
    const double b = 1.0 - x[i];
    total += 100.0 * a * a + b * b;
  }
  return total;
}

TEST(FitRecovery, NelderMeadRosenbrock4D) {
  NelderMeadOptions options;
  options.max_iterations = 20000;
  options.tolerance = 1e-14;
  const auto result = nelder_mead(rosenbrock, {-1.2, 1.0, -1.2, 1.0}, options);
  for (std::size_t i = 0; i < result.x.size(); ++i) {
    EXPECT_NEAR(result.x[i], 1.0, 5e-2) << "coordinate " << i;
  }
  EXPECT_LT(result.value, 1e-3);
}

TEST(FitRecovery, NelderMeadCurveFitRecoversParameters) {
  // Directly fit (a_max, kappa) by least squares — the inner problem the
  // learning-curve predictor solves per basis.
  const double true_a = 0.85;
  const double true_k = 12.0;
  const auto observed = hyperbolic_samples(true_a, true_k, 30);
  const auto loss = [&](const std::vector<double>& p) {
    double sum = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
      const double t = static_cast<double>(i + 1);
      const double fit = p[0] * t / (t + p[1]);
      sum += (fit - observed[i]) * (fit - observed[i]);
    }
    return sum;
  };
  NelderMeadOptions options;
  options.max_iterations = 5000;
  const auto result = nelder_mead(loss, {0.5, 1.0}, options);
  EXPECT_NEAR(result.x[0], true_a, 1e-3);
  EXPECT_NEAR(result.x[1], true_k, 1e-2);
}

}  // namespace
}  // namespace mlfs
