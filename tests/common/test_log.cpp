#include "common/log.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace mlfs {
namespace {

TEST(Log, LevelRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(before);
}

TEST(Log, BelowThresholdSkipsFormatting) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Off);
  bool formatted = false;
  auto format_probe = [&formatted]() {
    formatted = true;
    return "x";
  };
  MLFS_DEBUG(format_probe());  // must not evaluate the expression
  EXPECT_FALSE(formatted);
  set_log_level(before);
}

TEST(Log, AtOrAboveThresholdEmits) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Warn);
  testing::internal::CaptureStderr();
  MLFS_WARN("warn-" << 42);
  MLFS_INFO("info-should-be-dropped");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[mlfs:WARN] warn-42"), std::string::npos);
  EXPECT_EQ(err.find("info-should-be-dropped"), std::string::npos);
  set_log_level(before);
}

TEST(Log, RunContextTagsScopeAndNest) {
  EXPECT_EQ(RunContext::current(), "");
  {
    RunContext outer("MLF-H@smoke");
    EXPECT_EQ(RunContext::current(), "MLF-H@smoke");
    {
      RunContext inner("SLAQ@smoke");
      EXPECT_EQ(RunContext::current(), "SLAQ@smoke");
    }
    EXPECT_EQ(RunContext::current(), "MLF-H@smoke");  // restored on scope exit
  }
  EXPECT_EQ(RunContext::current(), "");
}

TEST(Log, RunContextTagAppearsInEmittedLine) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Warn);
  testing::internal::CaptureStderr();
  {
    RunContext tag("run-7");
    MLFS_WARN("tagged");
  }
  MLFS_WARN("untagged");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[mlfs:WARN|run-7] tagged"), std::string::npos);
  EXPECT_NE(err.find("[mlfs:WARN] untagged"), std::string::npos);
  set_log_level(before);
}

TEST(Log, RunContextIsThreadLocal) {
  RunContext tag("main-thread");
  std::string seen = "unset";
  std::thread worker([&seen] { seen = RunContext::current(); });
  worker.join();
  EXPECT_EQ(seen, "");  // worker thread starts untagged
  EXPECT_EQ(RunContext::current(), "main-thread");
}

}  // namespace
}  // namespace mlfs
