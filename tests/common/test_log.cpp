#include "common/log.hpp"

#include <gtest/gtest.h>

namespace mlfs {
namespace {

TEST(Log, LevelRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(before);
}

TEST(Log, BelowThresholdSkipsFormatting) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Off);
  bool formatted = false;
  auto format_probe = [&formatted]() {
    formatted = true;
    return "x";
  };
  MLFS_DEBUG(format_probe());  // must not evaluate the expression
  EXPECT_FALSE(formatted);
  set_log_level(before);
}

TEST(Log, AtOrAboveThresholdEmits) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Warn);
  testing::internal::CaptureStderr();
  MLFS_WARN("warn-" << 42);
  MLFS_INFO("info-should-be-dropped");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[mlfs:WARN] warn-42"), std::string::npos);
  EXPECT_EQ(err.find("info-should-be-dropped"), std::string::npos);
  set_log_level(before);
}

}  // namespace
}  // namespace mlfs
