#include "common/expect.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mlfs {
namespace {

TEST(Expect, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(MLFS_EXPECT(1 + 1 == 2));
  EXPECT_NO_THROW(MLFS_ENSURE(true));
}

TEST(Expect, FailureThrowsWithLocation) {
  try {
    MLFS_EXPECT(false);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("Expects failed"), std::string::npos);
    EXPECT_NE(what.find("test_expect.cpp"), std::string::npos);
  }
}

TEST(Ensure, FailureNamesEnsures) {
  try {
    MLFS_ENSURE(2 < 1);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("Ensures failed"), std::string::npos);
  }
}

}  // namespace
}  // namespace mlfs
