#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace mlfs {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t("demo");
  t.set_header({"name", "x"});
  t.add_row({"alpha", "1"});
  t.add_row("beta", {2.5}, 1);
  const std::string out = t.to_string();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsColumnMismatch) {
  Table t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t;
  t.set_header({"k", "v"});
  t.add_row({"with,comma", "with\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, CsvPlainValuesUnquoted) {
  Table t;
  t.set_header({"a", "b"});
  t.add_row({"x", "y"});
  EXPECT_EQ(t.to_csv(), "a,b\nx,y\n");
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace mlfs
