#include "common/stats.hpp"

#include <gtest/gtest.h>
#include <cmath>

#include "common/expect.hpp"

namespace mlfs {
namespace {

TEST(RunningStat, EmptyDefaults) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isinf(s.min()));
  EXPECT_TRUE(std::isinf(s.max()));
}

TEST(RunningStat, HandComputedMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(SampleSet, MeanAndSum) {
  SampleSet s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(SampleSet, EmptyMeanIsZero) {
  SampleSet s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.cdf_at(100.0), 0.0);
}

TEST(SampleSet, PercentileInterpolates) {
  SampleSet s;
  for (const double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 40.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 25.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
}

TEST(SampleSet, PercentileSingleSample) {
  SampleSet s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(99.0), 42.0);
}

TEST(SampleSet, PercentileRejectsEmptyAndOutOfRange) {
  SampleSet s;
  EXPECT_THROW(s.percentile(50.0), ContractViolation);
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1.0), ContractViolation);
  EXPECT_THROW(s.percentile(101.0), ContractViolation);
}

TEST(SampleSet, CdfMatchesDefinition) {
  SampleSet s;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(1.0), 0.2);  // <= is inclusive
  EXPECT_DOUBLE_EQ(s.cdf_at(3.0), 0.6);
  EXPECT_DOUBLE_EQ(s.cdf_at(10.0), 1.0);
}

TEST(SampleSet, CdfSeries) {
  SampleSet s;
  for (const double x : {1.0, 2.0, 3.0}) s.add(x);
  const std::vector<double> xs = {0.0, 1.5, 3.0};
  const auto series = s.cdf_series(xs);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0], 0.0);
  EXPECT_NEAR(series[1], 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(series[2], 1.0);
}

TEST(SampleSet, SortedIsStableAfterMoreAdds) {
  SampleSet s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  s.add(0.5);  // invalidates the sorted cache
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.5);
}

TEST(MeanOf, HandlesEmptyAndValues) {
  EXPECT_EQ(mean_of({}), 0.0);
  const std::vector<double> xs = {2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 3.0);
}

TEST(Improvement, MatchesPaperFormula) {
  // (y - z) / z as in §4.1.
  EXPECT_DOUBLE_EQ(improvement(150.0, 100.0), 0.5);
  EXPECT_DOUBLE_EQ(improvement(50.0, 100.0), -0.5);
  EXPECT_THROW(improvement(1.0, 0.0), ContractViolation);
}

}  // namespace
}  // namespace mlfs
