#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

namespace mlfs {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 8.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 8.25);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversAllValuesInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 5));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(23);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(31);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(32);
  EXPECT_THROW(rng.exponential(0.0), ContractViolation);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(37);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.poisson(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(41);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const int v = rng.poisson(200.0);
    EXPECT_GE(v, 0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(43);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(47);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-1.0));
  EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(53);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(59);
  const std::array<double, 3> weights = {1.0, 0.0, 3.0};
  std::array<int, 3> counts = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexRejectsAllZero) {
  Rng rng(61);
  const std::array<double, 2> weights = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(weights), ContractViolation);
}

TEST(Rng, PickReturnsElement) {
  Rng rng(67);
  const std::vector<int> items = {10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    const int v = rng.pick(items);
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
}

TEST(Rng, PickRejectsEmpty) {
  Rng rng(71);
  const std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), ContractViolation);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(73);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(77);
  Rng b = a.split();
  // The split stream should not be correlated with the parent's next draws.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace mlfs
