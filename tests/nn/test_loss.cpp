#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mlfs::nn {
namespace {

TEST(Softmax, RowsSumToOne) {
  Matrix logits(2, 3);
  logits.at(0, 0) = 1.0;
  logits.at(0, 1) = 2.0;
  logits.at(0, 2) = 3.0;
  logits.at(1, 0) = -5.0;
  logits.at(1, 1) = 0.0;
  logits.at(1, 2) = 5.0;
  const Matrix p = softmax(logits);
  for (std::size_t i = 0; i < 2; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_GT(p.at(i, j), 0.0);
      sum += p.at(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  EXPECT_GT(p.at(0, 2), p.at(0, 1));
  EXPECT_GT(p.at(0, 1), p.at(0, 0));
}

TEST(Softmax, NumericallyStableForHugeLogits) {
  Matrix logits(1, 2);
  logits.at(0, 0) = 1000.0;
  logits.at(0, 1) = 1000.0;
  const Matrix p = softmax(logits);
  EXPECT_NEAR(p.at(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(p.at(0, 1), 0.5, 1e-12);
}

TEST(LogSoftmax, MatchesLogOfSoftmax) {
  Matrix logits(1, 4);
  logits.at(0, 0) = 0.3;
  logits.at(0, 1) = -1.2;
  logits.at(0, 2) = 2.0;
  logits.at(0, 3) = 0.0;
  const Matrix p = softmax(logits);
  const Matrix lp = log_softmax(logits);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(lp.at(0, j), std::log(p.at(0, j)), 1e-12);
}

TEST(CrossEntropy, UniformLogitsGiveLogN) {
  Matrix logits(1, 4);  // all zeros -> uniform distribution
  const std::vector<int> targets = {2};
  const auto result = cross_entropy(logits, targets);
  EXPECT_NEAR(result.loss, std::log(4.0), 1e-12);
}

TEST(CrossEntropy, PerfectPredictionNearZeroLoss) {
  Matrix logits(1, 3);
  logits.at(0, 1) = 50.0;
  const std::vector<int> targets = {1};
  EXPECT_LT(cross_entropy(logits, targets).loss, 1e-9);
}

TEST(CrossEntropy, GradientRowsSumToZero) {
  Matrix logits(2, 3);
  logits.at(0, 0) = 1.0;
  logits.at(1, 2) = -2.0;
  const std::vector<int> targets = {0, 2};
  const auto result = cross_entropy(logits, targets);
  for (std::size_t i = 0; i < 2; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < 3; ++j) sum += result.grad_logits.at(i, j);
    EXPECT_NEAR(sum, 0.0, 1e-12);  // softmax gradient identity
  }
}

TEST(PolicyGradient, ZeroAdvantageZeroGradient) {
  Matrix logits(1, 3);
  logits.at(0, 0) = 0.7;
  const std::vector<int> actions = {1};
  const std::vector<double> advantages = {0.0};
  const auto result = policy_gradient(logits, actions, advantages);
  EXPECT_DOUBLE_EQ(result.loss, 0.0);
  for (const double g : result.grad_logits.raw()) EXPECT_DOUBLE_EQ(g, 0.0);
}

TEST(PolicyGradient, PositiveAdvantageIncreasesActionLogit) {
  Matrix logits(1, 3);
  const std::vector<int> actions = {1};
  const std::vector<double> advantages = {1.0};
  const auto result = policy_gradient(logits, actions, advantages);
  // Gradient descent step -grad should raise the chosen logit.
  EXPECT_LT(result.grad_logits.at(0, 1), 0.0);
  EXPECT_GT(result.grad_logits.at(0, 0), 0.0);
  EXPECT_GT(result.grad_logits.at(0, 2), 0.0);
}

TEST(Mse, HandValues) {
  Matrix pred(2, 1);
  pred.at(0, 0) = 1.0;
  pred.at(1, 0) = 3.0;
  const std::vector<double> targets = {0.0, 1.0};
  const auto result = mse(pred, targets);
  EXPECT_NEAR(result.loss, (1.0 + 4.0) / 2.0, 1e-12);
  EXPECT_NEAR(result.grad_logits.at(0, 0), 2.0 * 1.0 / 2.0, 1e-12);
  EXPECT_NEAR(result.grad_logits.at(1, 0), 2.0 * 2.0 / 2.0, 1e-12);
}

TEST(MeanEntropy, UniformIsMaximal) {
  Matrix uniform(1, 4);                  // all-zero logits
  Matrix peaked(1, 4);
  peaked.at(0, 0) = 100.0;
  EXPECT_NEAR(mean_entropy(uniform), std::log(4.0), 1e-9);
  EXPECT_LT(mean_entropy(peaked), 1e-6);
}

}  // namespace
}  // namespace mlfs::nn
