// Finite-difference gradient checks: the ground truth for the whole NN
// substrate. Any backprop bug in dense/activation/loss layers fails here.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/loss.hpp"
#include "nn/mlp.hpp"

namespace mlfs::nn {
namespace {

constexpr double kEps = 1e-6;
constexpr double kTol = 1e-5;

/// Numerically differentiates `loss_of_params` w.r.t. every parameter of
/// the network and compares with the analytic gradient accumulators.
void check_gradients(Mlp& net, const std::function<double()>& forward_loss,
                     const std::function<Matrix()>& loss_grad_logits, const Matrix& input) {
  // Analytic pass.
  net.zero_grads();
  (void)net.forward(input);
  net.backward(loss_grad_logits());
  const auto params = net.params();
  const auto grads = net.grads();

  for (std::size_t p = 0; p < params.size(); ++p) {
    Matrix& param = *params[p];
    const Matrix& grad = *grads[p];
    for (std::size_t i = 0; i < param.size(); ++i) {
      const double saved = param.raw()[i];
      param.raw()[i] = saved + kEps;
      const double plus = forward_loss();
      param.raw()[i] = saved - kEps;
      const double minus = forward_loss();
      param.raw()[i] = saved;
      const double numeric = (plus - minus) / (2.0 * kEps);
      EXPECT_NEAR(grad.raw()[i], numeric, kTol)
          << "param block " << p << " element " << i;
    }
  }
}

TEST(GradCheck, DenseReluWithCrossEntropy) {
  Rng rng(11);
  Mlp net({3, 5, 4}, Activation::Relu, rng);
  Matrix input(2, 3);
  Rng data_rng(13);
  for (auto& v : input.raw()) v = data_rng.uniform(-1.0, 1.0);
  const std::vector<int> targets = {2, 0};

  auto forward_loss = [&] { return cross_entropy(net.forward(input), targets).loss; };
  auto grad_logits = [&] { return cross_entropy(net.forward(input), targets).grad_logits; };
  check_gradients(net, forward_loss, grad_logits, input);
}

TEST(GradCheck, DenseTanhWithCrossEntropy) {
  Rng rng(17);
  Mlp net({4, 6, 3}, Activation::Tanh, rng);
  Matrix input(3, 4);
  Rng data_rng(19);
  for (auto& v : input.raw()) v = data_rng.uniform(-2.0, 2.0);
  const std::vector<int> targets = {0, 1, 2};

  auto forward_loss = [&] { return cross_entropy(net.forward(input), targets).loss; };
  auto grad_logits = [&] { return cross_entropy(net.forward(input), targets).grad_logits; };
  check_gradients(net, forward_loss, grad_logits, input);
}

TEST(GradCheck, MseHead) {
  Rng rng(23);
  Mlp net({3, 8, 1}, Activation::Tanh, rng);
  Matrix input(4, 3);
  Rng data_rng(29);
  for (auto& v : input.raw()) v = data_rng.uniform(-1.0, 1.0);
  const std::vector<double> targets = {0.5, -0.25, 1.0, 0.0};

  auto forward_loss = [&] { return mse(net.forward(input), targets).loss; };
  auto grad_logits = [&] { return mse(net.forward(input), targets).grad_logits; };
  check_gradients(net, forward_loss, grad_logits, input);
}

TEST(GradCheck, PolicyGradientSurrogate) {
  Rng rng(31);
  Mlp net({5, 6, 4}, Activation::Tanh, rng);
  Matrix input(3, 5);
  Rng data_rng(37);
  for (auto& v : input.raw()) v = data_rng.uniform(-1.0, 1.0);
  const std::vector<int> actions = {1, 3, 0};
  const std::vector<double> advantages = {0.7, -1.2, 0.4};

  auto forward_loss = [&] {
    return policy_gradient(net.forward(input), actions, advantages).loss;
  };
  auto grad_logits = [&] {
    return policy_gradient(net.forward(input), actions, advantages).grad_logits;
  };
  check_gradients(net, forward_loss, grad_logits, input);
}

TEST(GradCheck, DeepNetwork) {
  Rng rng(41);
  Mlp net({2, 4, 4, 3}, Activation::Relu, rng);
  Matrix input(2, 2);
  Rng data_rng(43);
  for (auto& v : input.raw()) v = data_rng.uniform(0.1, 1.0);  // keep ReLUs mostly active
  const std::vector<int> targets = {1, 2};

  auto forward_loss = [&] { return cross_entropy(net.forward(input), targets).loss; };
  auto grad_logits = [&] { return cross_entropy(net.forward(input), targets).grad_logits; };
  check_gradients(net, forward_loss, grad_logits, input);
}

}  // namespace
}  // namespace mlfs::nn
