// Per-layer finite-difference checks, complementing the whole-network
// checks in test_gradcheck.cpp: each Layer's backward() must return the
// exact dLoss/dInput (not just accumulate parameter grads), and each loss
// head's grad_logits must match central differences on its own inputs.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "nn/activation.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"

namespace mlfs::nn {
namespace {

constexpr double kEps = 1e-6;
constexpr double kTol = 1e-5;

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng, double lo = -1.0,
                     double hi = 1.0) {
  Matrix m(rows, cols);
  for (auto& v : m.raw()) v = rng.uniform(lo, hi);
  return m;
}

double weighted_sum(const Matrix& out, const Matrix& weights) {
  double total = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) total += out.raw()[i] * weights.raw()[i];
  return total;
}

/// Checks dLoss/dInput of `layer` under the scalar loss L = sum(W ⊙ out),
/// whose exact gradient w.r.t. the output is W itself.
void check_input_gradient(Layer& layer, Matrix input, const Matrix& loss_weights) {
  const Matrix out = layer.forward(input);
  const Matrix analytic = layer.backward(loss_weights);
  ASSERT_EQ(analytic.rows(), input.rows());
  ASSERT_EQ(analytic.cols(), input.cols());
  for (std::size_t i = 0; i < input.size(); ++i) {
    const double saved = input.raw()[i];
    input.raw()[i] = saved + kEps;
    const double plus = weighted_sum(layer.forward(input), loss_weights);
    input.raw()[i] = saved - kEps;
    const double minus = weighted_sum(layer.forward(input), loss_weights);
    input.raw()[i] = saved;
    EXPECT_NEAR(analytic.raw()[i], (plus - minus) / (2.0 * kEps), kTol) << "input element " << i;
  }
  layer.forward(input);  // leave the layer's cache consistent
}

TEST(LayerGradCheck, DenseInputGradient) {
  Rng rng(51);
  Dense dense(4, 3, rng);
  check_input_gradient(dense, random_matrix(2, 4, rng), random_matrix(2, 3, rng));
}

TEST(LayerGradCheck, DenseParameterGradients) {
  Rng rng(53);
  Dense dense(3, 2, rng);
  Matrix input = random_matrix(4, 3, rng);
  const Matrix loss_weights = random_matrix(4, 2, rng);

  dense.zero_grads();
  (void)dense.forward(input);
  (void)dense.backward(loss_weights);
  const auto params = dense.params();
  const auto grads = dense.grads();
  ASSERT_EQ(params.size(), 2u);  // weights, bias
  for (std::size_t p = 0; p < params.size(); ++p) {
    Matrix& param = *params[p];
    for (std::size_t i = 0; i < param.size(); ++i) {
      const double saved = param.raw()[i];
      param.raw()[i] = saved + kEps;
      const double plus = weighted_sum(dense.forward(input), loss_weights);
      param.raw()[i] = saved - kEps;
      const double minus = weighted_sum(dense.forward(input), loss_weights);
      param.raw()[i] = saved;
      EXPECT_NEAR(grads[p]->raw()[i], (plus - minus) / (2.0 * kEps), kTol)
          << "param block " << p << " element " << i;
    }
  }
}

TEST(LayerGradCheck, ReluInputGradient) {
  Rng rng(57);
  Relu relu;
  // Keep inputs away from the kink at 0, where the FD quotient straddles
  // the subgradient and the comparison is meaningless.
  Matrix input = random_matrix(3, 5, rng);
  for (auto& v : input.raw()) v += (v >= 0.0 ? 0.1 : -0.1);
  check_input_gradient(relu, input, random_matrix(3, 5, rng));
}

TEST(LayerGradCheck, TanhInputGradient) {
  Rng rng(59);
  Tanh tanh_layer;
  check_input_gradient(tanh_layer, random_matrix(3, 5, rng, -2.0, 2.0),
                       random_matrix(3, 5, rng));
}

/// FD check of a loss head's grad_logits against the head's own scalar loss.
void check_loss_head(Matrix logits, const std::function<LossResult(const Matrix&)>& head) {
  const Matrix analytic = head(logits).grad_logits;
  ASSERT_EQ(analytic.rows(), logits.rows());
  ASSERT_EQ(analytic.cols(), logits.cols());
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const double saved = logits.raw()[i];
    logits.raw()[i] = saved + kEps;
    const double plus = head(logits).loss;
    logits.raw()[i] = saved - kEps;
    const double minus = head(logits).loss;
    logits.raw()[i] = saved;
    EXPECT_NEAR(analytic.raw()[i], (plus - minus) / (2.0 * kEps), kTol) << "logit " << i;
  }
}

TEST(LossGradCheck, CrossEntropyGradLogits) {
  Rng rng(61);
  const std::vector<int> targets = {2, 0, 1};
  check_loss_head(random_matrix(3, 4, rng, -2.0, 2.0),
                  [&](const Matrix& l) { return cross_entropy(l, targets); });
}

TEST(LossGradCheck, MseGradPredictions) {
  Rng rng(67);
  const std::vector<double> targets = {0.25, -0.5, 1.5, 0.0};
  check_loss_head(random_matrix(4, 1, rng),
                  [&](const Matrix& l) { return mse(l, targets); });
}

TEST(LossGradCheck, PolicyGradientGradLogits) {
  Rng rng(71);
  const std::vector<int> actions = {3, 1, 0};
  const std::vector<double> advantages = {1.5, -0.75, 0.25};
  check_loss_head(random_matrix(3, 4, rng, -1.5, 1.5),
                  [&](const Matrix& l) { return policy_gradient(l, actions, advantages); });
}

}  // namespace
}  // namespace mlfs::nn
