#include "nn/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace mlfs::nn {
namespace {

TEST(Matrix, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m.at(i, j), 1.5);
}

TEST(Matrix, RowVector) {
  const Matrix r = Matrix::row({1.0, 2.0, 3.0});
  EXPECT_EQ(r.rows(), 1u);
  EXPECT_EQ(r.cols(), 3u);
  EXPECT_DOUBLE_EQ(r.at(0, 2), 3.0);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), ContractViolation);
  EXPECT_THROW(m.at(0, 2), ContractViolation);
}

TEST(Matrix, MatmulHandValues) {
  Matrix a(2, 3);
  // [1 2 3; 4 5 6]
  double v = 1.0;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) a.at(i, j) = v++;
  Matrix b(3, 2);
  // [7 8; 9 10; 11 12]
  v = 7.0;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 2; ++j) b.at(i, j) = v++;
  const Matrix c = a.matmul(b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(Matrix, MatmulShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a.matmul(b), ContractViolation);
}

TEST(Matrix, TransposeRoundTrip) {
  Rng rng(1);
  const Matrix m = Matrix::glorot(3, 5, rng);
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 5u);
  EXPECT_EQ(t.cols(), 3u);
  const Matrix tt = t.transposed();
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(tt.at(i, j), m.at(i, j));
}

TEST(Matrix, ElementwiseOps) {
  Matrix a(1, 3, 2.0);
  Matrix b(1, 3, 3.0);
  const Matrix sum = a + b;
  const Matrix diff = a - b;
  const Matrix prod = a.hadamard(b);
  const Matrix scaled = a * 4.0;
  EXPECT_DOUBLE_EQ(sum.at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(diff.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(prod.at(0, 2), 6.0);
  EXPECT_DOUBLE_EQ(scaled.at(0, 0), 8.0);
}

TEST(Matrix, RowBroadcast) {
  Matrix m(2, 3, 1.0);
  m.add_row_broadcast(Matrix::row({10.0, 20.0, 30.0}));
  EXPECT_DOUBLE_EQ(m.at(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 31.0);
}

TEST(Matrix, ColumnSums) {
  Matrix m(2, 2);
  m.at(0, 0) = 1.0;
  m.at(0, 1) = 2.0;
  m.at(1, 0) = 3.0;
  m.at(1, 1) = 4.0;
  const Matrix s = m.column_sums();
  EXPECT_EQ(s.rows(), 1u);
  EXPECT_DOUBLE_EQ(s.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(s.at(0, 1), 6.0);
}

TEST(Matrix, NormAndZero) {
  Matrix m(1, 2);
  m.at(0, 0) = 3.0;
  m.at(0, 1) = 4.0;
  EXPECT_DOUBLE_EQ(m.norm(), 5.0);
  m.zero();
  EXPECT_DOUBLE_EQ(m.norm(), 0.0);
}

TEST(Matrix, GlorotWithinLimit) {
  Rng rng(5);
  const Matrix m = Matrix::glorot(10, 20, rng);
  const double limit = std::sqrt(6.0 / 30.0);
  for (const double v : m.raw()) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
}

TEST(Matrix, SerializationRoundTrip) {
  Rng rng(9);
  const Matrix m = Matrix::glorot(4, 7, rng);
  std::stringstream ss;
  write_matrix(ss, m);
  const Matrix loaded = read_matrix(ss);
  ASSERT_TRUE(loaded.same_shape(m));
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_DOUBLE_EQ(loaded.raw()[i], m.raw()[i]);
}

}  // namespace
}  // namespace mlfs::nn
