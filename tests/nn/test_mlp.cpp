#include "nn/mlp.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace mlfs::nn {
namespace {

TEST(Mlp, ShapesAndParameterCount) {
  Rng rng(1);
  Mlp net({4, 8, 3}, Activation::Relu, rng);
  EXPECT_EQ(net.in_features(), 4u);
  EXPECT_EQ(net.out_features(), 3u);
  // (4*8 + 8) + (8*3 + 3) = 40 + 27
  EXPECT_EQ(net.parameter_count(), 67u);
  Matrix input(5, 4, 0.1);
  const Matrix out = net.forward(input);
  EXPECT_EQ(out.rows(), 5u);
  EXPECT_EQ(out.cols(), 3u);
}

TEST(Mlp, RejectsWrongInputWidth) {
  Rng rng(2);
  Mlp net({4, 3}, Activation::Relu, rng);
  Matrix input(1, 5);
  EXPECT_THROW(net.forward(input), ContractViolation);
}

TEST(Mlp, LearnsXor) {
  Rng rng(3);
  Mlp net({2, 16, 2}, Activation::Tanh, rng);
  Adam opt(net.params(), net.grads(), 0.02);

  Matrix inputs(4, 2);
  const double xs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const std::vector<int> targets = {0, 1, 1, 0};
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 2; ++j) inputs.at(i, j) = xs[i][j];

  double loss = 0.0;
  for (int epoch = 0; epoch < 2000; ++epoch) {
    net.zero_grads();
    const auto result = cross_entropy(net.forward(inputs), targets);
    loss = result.loss;
    net.backward(result.grad_logits);
    opt.step();
  }
  EXPECT_LT(loss, 0.05);
  const Matrix probs = softmax(net.forward(inputs));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GT(probs.at(i, static_cast<std::size_t>(targets[i])), 0.8) << "sample " << i;
  }
}

TEST(Mlp, SaveLoadRoundTrip) {
  Rng rng(5);
  Mlp a({3, 6, 2}, Activation::Tanh, rng);
  Rng rng2(99);
  Mlp b({3, 6, 2}, Activation::Tanh, rng2);

  Matrix input(2, 3, 0.5);
  const Matrix before = a.forward(input);

  std::stringstream ss;
  a.save(ss);
  b.load(ss);
  const Matrix after = b.forward(input);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_DOUBLE_EQ(after.raw()[i], before.raw()[i]);
  }
}

TEST(Mlp, LoadRejectsWrongArchitecture) {
  Rng rng(7);
  Mlp a({3, 6, 2}, Activation::Tanh, rng);
  Mlp b({3, 5, 2}, Activation::Tanh, rng);
  std::stringstream ss;
  a.save(ss);
  EXPECT_THROW(b.load(ss), ContractViolation);
}

TEST(Mlp, CopyParamsMatchesOutputs) {
  Rng rng(11);
  Mlp a({2, 4, 2}, Activation::Relu, rng);
  Mlp b({2, 4, 2}, Activation::Relu, rng);
  Matrix input(1, 2, 0.7);
  b.copy_params_from(a);
  const Matrix oa = a.forward(input);
  const Matrix ob = b.forward(input);
  for (std::size_t i = 0; i < oa.size(); ++i) EXPECT_DOUBLE_EQ(oa.raw()[i], ob.raw()[i]);
}

TEST(Mlp, MinimumTwoLayerSizes) {
  Rng rng(13);
  EXPECT_THROW(Mlp({3}, Activation::Relu, rng), ContractViolation);
}

}  // namespace
}  // namespace mlfs::nn
