#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mlfs::nn {
namespace {

/// Minimizes f(x, y) = (x-3)^2 + (y+1)^2 with an optimizer; gradients are
/// set manually each step.
template <typename MakeOpt>
std::pair<double, double> minimize_quadratic(MakeOpt make_opt, int steps) {
  Matrix param(1, 2);
  Matrix grad(1, 2);
  auto opt = make_opt(std::vector<Matrix*>{&param}, std::vector<Matrix*>{&grad});
  for (int i = 0; i < steps; ++i) {
    grad.at(0, 0) = 2.0 * (param.at(0, 0) - 3.0);
    grad.at(0, 1) = 2.0 * (param.at(0, 1) + 1.0);
    opt->step();
    grad.zero();
  }
  return {param.at(0, 0), param.at(0, 1)};
}

TEST(Sgd, ConvergesOnQuadratic) {
  const auto [x, y] = minimize_quadratic(
      [](auto p, auto g) { return std::make_unique<Sgd>(p, g, 0.1); }, 200);
  EXPECT_NEAR(x, 3.0, 1e-6);
  EXPECT_NEAR(y, -1.0, 1e-6);
}

TEST(Sgd, MomentumConverges) {
  const auto [x, y] = minimize_quadratic(
      [](auto p, auto g) { return std::make_unique<Sgd>(p, g, 0.05, 0.9); }, 300);
  EXPECT_NEAR(x, 3.0, 1e-4);
  EXPECT_NEAR(y, -1.0, 1e-4);
}

TEST(Adam, ConvergesOnQuadratic) {
  const auto [x, y] = minimize_quadratic(
      [](auto p, auto g) { return std::make_unique<Adam>(p, g, 0.1); }, 500);
  EXPECT_NEAR(x, 3.0, 1e-3);
  EXPECT_NEAR(y, -1.0, 1e-3);
}

TEST(Adam, FirstStepIsLearningRateSized) {
  Matrix param(1, 1);
  Matrix grad(1, 1);
  grad.at(0, 0) = 123.0;  // Adam normalizes: first step ~= lr regardless of magnitude
  Adam opt({&param}, {&grad}, 0.01);
  opt.step();
  EXPECT_NEAR(param.at(0, 0), -0.01, 1e-6);
}

TEST(Optimizer, GradientClippingBoundsNorm) {
  Matrix param(1, 2);
  Matrix grad(1, 2);
  grad.at(0, 0) = 30.0;
  grad.at(0, 1) = 40.0;  // norm 50
  Sgd opt({&param}, {&grad}, 1.0);
  opt.set_max_grad_norm(5.0);
  opt.step();
  // Clipped gradient = (3, 4): param moves by exactly -lr * clipped.
  EXPECT_NEAR(param.at(0, 0), -3.0, 1e-12);
  EXPECT_NEAR(param.at(0, 1), -4.0, 1e-12);
}

TEST(Optimizer, RejectsMismatchedShapes) {
  Matrix param(1, 2);
  Matrix grad(2, 1);
  EXPECT_THROW(Sgd({&param}, {&grad}, 0.1), ContractViolation);
}

}  // namespace
}  // namespace mlfs::nn
