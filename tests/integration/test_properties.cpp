// Parameterized property sweeps (TEST_P): invariants that must hold for
// every seed/configuration, not just one crafted case.
#include <gtest/gtest.h>

#include <cmath>

#include "core/mlf_c.hpp"
#include "core/mlfs.hpp"
#include "core/priority.hpp"
#include "exp/registry.hpp"
#include "sim/engine.hpp"
#include "workload/model_zoo.hpp"
#include "workload/trace.hpp"

namespace mlfs {
namespace {

ClusterConfig cluster_config() {
  ClusterConfig c;
  c.server_count = 4;
  c.gpus_per_server = 4;
  return c;
}

std::vector<JobSpec> trace(std::size_t jobs, std::uint64_t seed) {
  TraceConfig config;
  config.num_jobs = jobs;
  config.duration_hours = 6.0;
  config.seed = seed;
  config.max_gpu_request = 8;
  config.max_iterations = 40;
  return PhillyTraceGenerator(config).generate();
}

/// Every property sweep runs under the invariant auditor (sim/audit.hpp):
/// the checks below then only need to assert the test-specific claims.
EngineConfig audited_engine() {
  EngineConfig e;
  e.audit.enabled = true;
  return e;
}

// ---------------------------------------------------------------- seeds

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, EngineInvariantsHoldEndToEnd) {
  core::MlfsConfig config;
  config.rl.warmup_samples = 100;
  core::MlfsScheduler scheduler(config, "MLFS");
  core::MlfC controller(config.load_control);
  SimEngine engine(cluster_config(), audited_engine(), trace(40, GetParam()), scheduler, &controller);
  const RunMetrics m = engine.run();

  // The incremental utilization bookkeeping must match a from-scratch
  // recomputation after thousands of mutations.
  EXPECT_NO_THROW(engine.cluster().validate());

  // Per-job conservation laws.
  for (const Job& job : engine.cluster().jobs()) {
    EXPECT_TRUE(job.done());
    EXPECT_GE(job.completion_time(), job.spec().arrival);
    EXPECT_GE(job.waiting_time(), 0.0);
    EXPECT_LE(job.waiting_time(), job.completion_time() - job.spec().arrival + 1e-6);
    EXPECT_GE(job.completed_iterations(), 1);
    EXPECT_LE(job.completed_iterations(), job.spec().max_iterations);
    EXPECT_GE(job.accuracy_by_deadline(), 0.0);
    EXPECT_LE(job.accuracy_by_deadline(), 1.0);
    // Every task of a completed job is finished and unplaced.
    for (const TaskId tid : job.tasks()) {
      const Task& t = engine.cluster().task(tid);
      EXPECT_EQ(t.state, TaskState::Finished);
      EXPECT_FALSE(t.placed());
    }
  }
  EXPECT_EQ(m.jct_minutes.count(), 40u);
  EXPECT_GE(m.makespan_hours * 60.0 + 1e-9, m.jct_minutes.percentile(100.0));
}

TEST_P(SeedSweep, DeterministicReplay) {
  auto run_once = [this] {
    core::MlfsConfig config;
    config.rl.warmup_samples = 100;
    core::MlfsScheduler scheduler(config, "MLFS");
    core::MlfC controller(config.load_control);
    SimEngine engine(cluster_config(), audited_engine(), trace(30, GetParam()), scheduler, &controller);
    return engine.run();
  };
  const RunMetrics a = run_once();
  const RunMetrics b = run_once();
  EXPECT_DOUBLE_EQ(a.average_jct_minutes(), b.average_jct_minutes());
  EXPECT_DOUBLE_EQ(a.bandwidth_tb, b.bandwidth_tb);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.iterations_run, b.iterations_run);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(1u, 7u, 42u, 1337u, 9001u));

// ------------------------------------------------------------- priority

struct PriorityCase {
  MlAlgorithm algorithm;
  int gpus;
  CommStructure comm;
};

class PrioritySweep : public ::testing::TestWithParam<PriorityCase> {};

TEST_P(PrioritySweep, PrioritiesFiniteNonNegativeAndUrgencyMonotone) {
  const auto param = GetParam();
  Cluster cluster(cluster_config());
  auto add = [&cluster, &param](double urgency, std::uint64_t seed) {
    JobSpec spec;
    spec.id = static_cast<JobId>(cluster.job_count());
    spec.algorithm = param.algorithm;
    spec.comm = param.comm;
    spec.gpu_request = param.gpus;
    spec.urgency = urgency;
    spec.max_iterations = 30;
    spec.seed = seed;
    auto inst = ModelZoo::instantiate(spec, static_cast<TaskId>(cluster.task_count()));
    cluster.register_job(std::move(inst.job), std::move(inst.tasks));
    return spec.id;
  };
  const JobId low = add(2.0, 5);
  const JobId high = add(9.0, 5);  // same seed: identical structure

  const core::PriorityCalculator calc{core::PriorityParams{}};
  const auto p_low = calc.job_priorities(cluster, cluster.job(low), minutes(5));
  const auto p_high = calc.job_priorities(cluster, cluster.job(high), minutes(5));
  ASSERT_EQ(p_low.size(), p_high.size());
  for (std::size_t k = 0; k < p_low.size(); ++k) {
    EXPECT_TRUE(std::isfinite(p_low[k]));
    EXPECT_GE(p_low[k], 0.0);
    // Same structure, higher urgency => no task ranks lower.
    EXPECT_GE(p_high[k] + 1e-12, p_low[k]);
  }
}

TEST_P(PrioritySweep, DagRecursionNeverBelowOwnBase) {
  const auto param = GetParam();
  Cluster cluster(cluster_config());
  JobSpec spec;
  spec.id = 0;
  spec.algorithm = param.algorithm;
  spec.comm = param.comm;
  spec.gpu_request = param.gpus;
  spec.max_iterations = 30;
  spec.seed = 11;
  auto inst = ModelZoo::instantiate(spec, 0);
  cluster.register_job(std::move(inst.job), std::move(inst.tasks));
  const Job& job = cluster.job(0);

  const core::PriorityCalculator calc{core::PriorityParams{}};
  const auto ml = calc.ml_priorities(cluster, job);
  // Eq. 3 only *adds* discounted child priorities: a parent is never below
  // any single discounted child contribution.
  const auto& dag = job.dag();
  core::PriorityParams params;
  for (std::size_t u = 0; u < dag.node_count(); ++u) {
    for (const std::size_t c : dag.children(u)) {
      EXPECT_GE(ml[u] + 1e-12, params.gamma * ml[c]) << u << "->" << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Structures, PrioritySweep,
    ::testing::Values(PriorityCase{MlAlgorithm::Mlp, 4, CommStructure::AllReduce},
                      PriorityCase{MlAlgorithm::Mlp, 8, CommStructure::ParameterServer},
                      PriorityCase{MlAlgorithm::ResNet, 8, CommStructure::AllReduce},
                      PriorityCase{MlAlgorithm::Lstm, 16, CommStructure::ParameterServer},
                      PriorityCase{MlAlgorithm::AlexNet, 2, CommStructure::ParameterServer},
                      PriorityCase{MlAlgorithm::Svm, 4, CommStructure::AllReduce}));

// ------------------------------------------------------ curve predictor

class CurveSweep : public ::testing::TestWithParam<double> {};

TEST_P(CurveSweep, OptStopNeverStopsBelowRequirementWhenReachable) {
  // For every saturation speed, an OptStop job must end within a whisker
  // of the best accuracy its budget allows.
  const double kappa = GetParam();
  TraceConfig tc;
  tc.num_jobs = 8;
  tc.duration_hours = 2.0;
  tc.seed = static_cast<std::uint64_t>(kappa * 100);
  tc.max_gpu_request = 4;
  auto specs = PhillyTraceGenerator(tc).generate();
  for (auto& spec : specs) {
    spec.stop_policy = StopPolicy::OptStop;
    spec.min_allowed_policy = StopPolicy::OptStop;
    spec.curve.kappa = kappa;
    spec.curve.noise_sigma = 0.0;
    spec.max_iterations = 300;
  }
  auto instance = exp::make_scheduler("MLF-H");
  SimEngine engine(cluster_config(), audited_engine(), specs, *instance.scheduler);
  (void)engine.run();
  for (const Job& job : engine.cluster().jobs()) {
    const double best = job.curve().accuracy_at(job.spec().max_iterations);
    EXPECT_GE(job.current_accuracy(), 0.9 * best) << "kappa " << kappa;
    EXPECT_LT(job.completed_iterations(), job.spec().max_iterations)
        << "OptStop should reclaim head-room at kappa " << kappa;
  }
}

INSTANTIATE_TEST_SUITE_P(Kappas, CurveSweep, ::testing::Values(3.0, 6.0, 10.0, 16.0));

}  // namespace
}  // namespace mlfs
