// Shape tests: scaled-down versions of the paper's headline comparisons.
// These assert the *relative ordering* claims of §4.2 (who wins, roughly
// by what direction), not absolute numbers, on a workload small enough for
// CI. The bench binaries reproduce the full figures.
#include <gtest/gtest.h>

#include "exp/runner.hpp"

namespace mlfs {
namespace {

/// One shared sweep at a single moderately-overloaded point, run once for
/// the whole suite (it is the expensive part).
class ShapeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    exp::Scenario scenario = exp::testbed_scenario(/*seed=*/1234);
    scenario.cluster.server_count = 8;  // 32 GPUs: faster, same regime
    scenario.trace.num_jobs = 600;      // ~x3 load for a 32-GPU fleet
    scenario.trace.max_gpu_request = 16;
    scenario.sweep_multipliers = {1.0};
    // Run the whole sweep under the invariant auditor (pure observer, so
    // the shape assertions see identical metrics); strided to keep the
    // fixture cheap at this event volume.
    scenario.engine.audit.enabled = true;
    scenario.engine.audit.stride = 64;
    // The fixture is the suite's hot spot: run the 10-scheduler sweep on
    // the pool (deterministic regardless of thread count, see runner.hpp).
    exp::RunOptions options;
    options.threads = 0;  // hardware concurrency
    options.verbose = false;
    results_ = new exp::SweepResults(
        exp::run_sweep(scenario, exp::paper_scheduler_names(), {}, options));
  }
  static void TearDownTestSuite() {
    delete results_;
    results_ = nullptr;
  }

  static const RunMetrics& metrics(const std::string& name) {
    return results_->at(name).front();
  }

  static exp::SweepResults* results_;
};

exp::SweepResults* ShapeTest::results_ = nullptr;

TEST_F(ShapeTest, MlfsBeatsEveryBaselineOnJct) {
  const double mlfs = metrics("MLFS").average_jct_minutes();
  for (const std::string name :
       {"TensorFlow", "Tiresias", "SLAQ", "Gandiva", "Graphene", "HyperSched", "RL"}) {
    EXPECT_LT(mlfs, metrics(name).average_jct_minutes()) << "vs " << name;
  }
}

TEST_F(ShapeTest, MlfsFamilyInternalOrdering) {
  // MLFS < MLF-RL and MLFS < MLF-H on JCT (MLF-C's contribution).
  EXPECT_LT(metrics("MLFS").average_jct_minutes(), metrics("MLF-RL").average_jct_minutes());
  EXPECT_LT(metrics("MLFS").average_jct_minutes(), metrics("MLF-H").average_jct_minutes());
}

TEST_F(ShapeTest, MlfsBestDeadlineRatio) {
  const double mlfs = metrics("MLFS").deadline_ratio;
  for (const auto& name : exp::paper_scheduler_names()) {
    if (name == "MLFS") continue;
    EXPECT_GE(mlfs + 1e-9, metrics(name).deadline_ratio) << "vs " << name;
  }
}

TEST_F(ShapeTest, MlfsLowestBandwidth) {
  const double mlfs = metrics("MLFS").bandwidth_tb;
  for (const std::string name : {"TensorFlow", "Tiresias", "SLAQ", "Gandiva", "HyperSched"}) {
    EXPECT_LT(mlfs, metrics(name).bandwidth_tb) << "vs " << name;
  }
}

TEST_F(ShapeTest, MlfsBestAccuracyGuarantee) {
  const double mlfs = metrics("MLFS").accuracy_ratio;
  for (const std::string name : {"TensorFlow", "RL", "Gandiva"}) {
    EXPECT_GE(mlfs + 1e-9, metrics(name).accuracy_ratio) << "vs " << name;
  }
}

TEST_F(ShapeTest, SlaqAndTensorFlowTrailOnJct) {
  // The paper's bottom of the JCT ordering: TensorFlow ⪅ SLAQ, both far
  // behind the MLFS family.
  const double mlf_h = metrics("MLF-H").average_jct_minutes();
  EXPECT_GT(metrics("SLAQ").average_jct_minutes(), mlf_h);
  EXPECT_GT(metrics("TensorFlow").average_jct_minutes(), mlf_h);
}

TEST_F(ShapeTest, LowerJctGoesWithLowerWaiting) {
  // Waiting time tracks JCT (§4.2.1 (d)): MLFS has the least waiting.
  const double mlfs = metrics("MLFS").average_waiting_seconds();
  for (const std::string name : {"TensorFlow", "SLAQ", "Tiresias"}) {
    EXPECT_LT(mlfs, metrics(name).average_waiting_seconds()) << "vs " << name;
  }
}

TEST_F(ShapeTest, EveryRunCompletesAllJobs) {
  for (const auto& name : exp::paper_scheduler_names()) {
    EXPECT_EQ(metrics(name).jct_minutes.count(), 600u) << name;
    EXPECT_GT(metrics(name).makespan_hours, 0.0) << name;
  }
}

}  // namespace
}  // namespace mlfs
