// Component-ablation shape tests mirroring Figs. 6-9 on CI-sized
// workloads: each MLFS component must move its metric in the direction
// the paper reports.
#include <gtest/gtest.h>

#include "exp/runner.hpp"

namespace mlfs {
namespace {

exp::Scenario scenario() {
  exp::Scenario s = exp::testbed_scenario(/*seed=*/777);
  s.cluster.server_count = 8;
  s.trace.num_jobs = 500;
  s.trace.max_gpu_request = 16;
  s.sweep_multipliers = {1.0};
  return s;
}

TEST(AblationShape, UrgencyConsiderationHelpsUrgentJobs) {
  // Fig. 6 (left): with the urgency coefficient, urgent jobs (urgency > 8)
  // meet their deadlines more often.
  const auto s = scenario();
  core::MlfsConfig with;
  with.heuristic_only = true;
  core::MlfsConfig without = with;
  without.priority.use_urgency = false;
  const RunMetrics w = exp::run_experiment(s, "MLF-H", s.trace.num_jobs, with);
  const RunMetrics wo = exp::run_experiment(s, "MLF-H", s.trace.num_jobs, without);
  EXPECT_GE(w.urgent_deadline_ratio, wo.urgent_deadline_ratio);
}

TEST(AblationShape, BandwidthConsiderationCutsBandwidth) {
  // Fig. 7: dropping u_BW,V from the ideal-virtual-server match raises the
  // bandwidth cost.
  const auto s = scenario();
  core::MlfsConfig with;
  with.heuristic_only = true;
  core::MlfsConfig without = with;
  without.placement.use_bandwidth = false;
  const RunMetrics w = exp::run_experiment(s, "MLF-H", s.trace.num_jobs, with);
  const RunMetrics wo = exp::run_experiment(s, "MLF-H", s.trace.num_jobs, without);
  EXPECT_LT(w.bandwidth_tb, wo.bandwidth_tb);
}

TEST(AblationShape, MigrationReducesOverloadAndAddsBandwidth) {
  // Fig. 8(a): migration reduces overload occurrences and raises the
  // bandwidth cost (state transfers).
  const auto s = scenario();
  core::MlfsConfig with;
  with.heuristic_only = true;
  core::MlfsConfig without = with;
  without.migration.enabled = false;
  const RunMetrics w = exp::run_experiment(s, "MLF-H", s.trace.num_jobs, with);
  const RunMetrics wo = exp::run_experiment(s, "MLF-H", s.trace.num_jobs, without);
  EXPECT_GT(w.migrations, 0u);
  EXPECT_EQ(wo.migrations, 0u);
  EXPECT_LT(w.overload_occurrences, wo.overload_occurrences);
  EXPECT_GT(w.bandwidth_tb, wo.bandwidth_tb);
}

TEST(AblationShape, LoadControlImprovesJctAndAccuracyGuarantee) {
  // Fig. 9: MLFS (with MLF-C) vs MLF-RL (without): JCT drops, accuracy
  // guarantee ratio does not degrade.
  const auto s = scenario();
  const RunMetrics with_c = exp::run_experiment(s, "MLFS", s.trace.num_jobs);
  const RunMetrics without_c = exp::run_experiment(s, "MLF-RL", s.trace.num_jobs);
  EXPECT_LT(with_c.average_jct_minutes(), without_c.average_jct_minutes());
  EXPECT_GE(with_c.accuracy_ratio + 0.02, without_c.accuracy_ratio);
  EXPECT_GT(with_c.iterations_saved, without_c.iterations_saved);
}

}  // namespace
}  // namespace mlfs
