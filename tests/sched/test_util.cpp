// Shared scheduler-utility helpers.
#include "sched/util.hpp"

#include <gtest/gtest.h>

#include "workload/model_zoo.hpp"

namespace mlfs::sched {
namespace {

struct RecordingOps : SchedulerOps {
  Cluster& cluster;
  explicit RecordingOps(Cluster& c) : cluster(c) {}
  bool place(TaskId t, ServerId s, int g) override {
    if (cluster.task(t).state != TaskState::Queued) return false;
    cluster.place_task(t, s, g);
    return true;
  }
  void preempt_to_queue(TaskId t) override { cluster.unplace_task(t); }
  bool migrate(TaskId, ServerId, int) override { return false; }
  void release(TaskId t) override { cluster.unplace_task(t); }
};

struct Fixture {
  Cluster cluster{ClusterConfig{2, 2, 1000.0}};
  RecordingOps ops{cluster};
  std::vector<TaskId> queue;

  SchedulerContext ctx() {
    return SchedulerContext{cluster, queue, ops, 0.0, 0.9, nullptr, kInvalidJob};
  }

  JobId add(int gpus, std::uint64_t seed) {
    JobSpec spec;
    spec.id = static_cast<JobId>(cluster.job_count());
    spec.algorithm = MlAlgorithm::Svm;
    spec.comm = CommStructure::AllReduce;
    spec.gpu_request = gpus;
    spec.max_iterations = 10;
    spec.seed = seed;
    auto inst = ModelZoo::instantiate(spec, static_cast<TaskId>(cluster.task_count()));
    cluster.register_job(std::move(inst.job), std::move(inst.tasks));
    for (const TaskId tid : cluster.job(spec.id).tasks()) queue.push_back(tid);
    return spec.id;
  }
};

TEST(SchedUtil, LiveQueueFiltersNonQueuedEntries) {
  Fixture f;
  f.add(2, 1);
  auto ctx = f.ctx();
  EXPECT_EQ(live_queue(ctx).size(), 2u);
  f.cluster.place_task(f.queue[0], 0, 0);
  EXPECT_EQ(live_queue(ctx).size(), 1u);
  EXPECT_EQ(live_queue(ctx)[0], f.queue[1]);
}

TEST(SchedUtil, LeastLoadedPlacementPrefersEmptierServer) {
  Fixture f;
  const JobId filler = f.add(1, 2);
  f.cluster.place_task(f.cluster.job(filler).task_at(0), 0, 0);
  const JobId next = f.add(1, 3);
  auto ctx = f.ctx();
  const auto p = least_loaded_placement(ctx, f.cluster.task(f.cluster.job(next).task_at(0)));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->server, 1u);
}

TEST(SchedUtil, BestFitPlacementPrefersTighterServer) {
  Fixture f;
  const JobId filler = f.add(1, 4);
  f.cluster.place_task(f.cluster.job(filler).task_at(0), 0, 0);
  const JobId next = f.add(1, 5);
  auto ctx = f.ctx();
  // Best fit = smallest residual distance => the already-loaded server
  // (still feasible: two SVM workers fit under hr on separate GPUs).
  const auto p = best_fit_placement(ctx, f.cluster.task(f.cluster.job(next).task_at(0)));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->server, 0u);
}

TEST(SchedUtil, PlacementOnServerChecksFeasibility) {
  Fixture f;
  const JobId id = f.add(1, 6);
  auto ctx = f.ctx();
  const Task& t = f.cluster.task(f.cluster.job(id).task_at(0));
  const auto p = placement_on_server(ctx, t, 1);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->server, 1u);
}

TEST(SchedUtil, DemandMagnitudeSumsComponents) {
  Task t;
  t.demand = ResourceVector(0.5, 0.1, 0.2, 0.1);
  EXPECT_NEAR(demand_magnitude(t), 0.9, 1e-12);
}

TEST(SchedUtil, GangReturnsMinusOneForStaleEntry) {
  Fixture f;
  const JobId id = f.add(1, 7);
  auto ctx = f.ctx();
  // Place the job's only task: the queue entry is now stale.
  f.cluster.place_task(f.cluster.job(id).task_at(0), 0, 0);
  EXPECT_EQ(place_job_gang(ctx, f.queue[0], least_loaded_placement), -1);
}

TEST(SchedUtil, PreemptJobPullsEveryRunningTask) {
  Fixture f;
  const JobId id = f.add(2, 8);
  const Job& job = f.cluster.job(id);
  f.cluster.place_task(job.task_at(0), 0, 0);
  f.cluster.place_task(job.task_at(1), 1, 0);
  auto ctx = f.ctx();
  EXPECT_EQ(preempt_job(ctx, job), 2u);
  for (const TaskId tid : job.tasks()) EXPECT_FALSE(f.cluster.task(tid).placed());
}

}  // namespace
}  // namespace mlfs::sched
