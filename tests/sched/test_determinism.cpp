// Seed-stability smoke tests: every registered scheduler, run twice on
// the same RunRequest (under the invariant auditor), must produce
// bitwise-identical RunMetrics. Catches hidden global state, iteration
// over unordered containers, and RNG sharing between runs.
#include <gtest/gtest.h>

#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "sim/metrics.hpp"

namespace mlfs::sched {
namespace {

exp::RunRequest smoke_request(const std::string& scheduler) {
  exp::RunRequest r;
  r.label = "determinism-" + scheduler;
  r.cluster.server_count = 4;
  r.cluster.gpus_per_server = 4;
  r.cluster.servers_per_rack = 2;
  r.cluster.slow_server_fraction = 0.25;
  r.engine.seed = 31;
  r.engine.max_sim_time = hours(72.0);
  r.engine.straggler_probability = 0.01;
  r.engine.straggler_replicas = 1;
  r.engine.fault.server_mtbf_hours = 24.0;
  r.engine.fault.server_mttr_hours = 0.5;
  r.engine.audit.enabled = true;
  r.trace.num_jobs = 20;
  r.trace.duration_hours = 2.0;
  r.trace.seed = 77;
  r.trace.max_gpu_request = 8;
  r.scheduler = scheduler;
  // Small warm-up so the RL-backed schedulers reach the policy path
  // inside this smoke run, not just the warm-up heuristic.
  r.mlfs_config.rl.warmup_samples = 100;
  return r;
}

class SchedulerDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(SchedulerDeterminism, SameSeedSameMetrics) {
  const exp::RunRequest request = smoke_request(GetParam());
  const RunMetrics first = exp::execute_run(request);
  const RunMetrics second = exp::execute_run(request);
  EXPECT_TRUE(deterministic_equal(first, second))
      << GetParam() << " diverged across two identical runs";
  EXPECT_EQ(first.job_count, 20u);
}

INSTANTIATE_TEST_SUITE_P(AllRegistered, SchedulerDeterminism,
                         ::testing::ValuesIn(exp::registered_scheduler_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace mlfs::sched
