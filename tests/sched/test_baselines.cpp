// Behavioural tests of the seven comparison schedulers: each baseline's
// signature decision rule, plus an end-to-end completion check for all.
#include <gtest/gtest.h>

#include "exp/registry.hpp"
#include "exp/scenario.hpp"
#include "sched/graphene.hpp"
#include "sched/hypersched.hpp"
#include "sched/slaq.hpp"
#include "sched/tiresias.hpp"
#include "sched/util.hpp"
#include "sim/engine.hpp"
#include "workload/model_zoo.hpp"
#include "workload/trace.hpp"

namespace mlfs::sched {
namespace {

ClusterConfig cluster_config() {
  ClusterConfig c;
  c.server_count = 4;
  c.gpus_per_server = 4;
  return c;
}

std::vector<JobSpec> trace(std::size_t jobs, std::uint64_t seed) {
  TraceConfig config;
  config.num_jobs = jobs;
  config.duration_hours = 8.0;
  config.seed = seed;
  config.max_gpu_request = 8;
  config.max_iterations = 50;
  return PhillyTraceGenerator(config).generate();
}

class BaselineCompletion : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineCompletion, CompletesModerateWorkload) {
  auto instance = exp::make_scheduler(GetParam());
  SimEngine engine(cluster_config(), {}, trace(60, 17), *instance.scheduler,
                   instance.controller.get());
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.scheduler, GetParam());
  std::size_t incomplete = 0;
  for (const Job& job : engine.cluster().jobs()) {
    if (!job.done()) ++incomplete;
  }
  EXPECT_EQ(incomplete, 0u) << GetParam() << " left jobs unfinished";
  EXPECT_GT(m.average_accuracy, 0.3);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, BaselineCompletion,
                         ::testing::ValuesIn(exp::paper_scheduler_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

TEST(Registry, RejectsUnknownScheduler) {
  EXPECT_THROW(exp::make_scheduler("NoSuchScheduler"), ContractViolation);
}

TEST(Registry, OnlyMlfsHasController) {
  for (const auto& name : exp::paper_scheduler_names()) {
    const auto instance = exp::make_scheduler(name);
    EXPECT_EQ(instance.controller != nullptr, name == "MLFS") << name;
  }
}

TEST(Slaq, QualityGainRateDecreasesWithProgress) {
  JobSpec spec;
  spec.id = 0;
  spec.algorithm = MlAlgorithm::Mlp;
  spec.gpu_request = 1;
  spec.comm = CommStructure::AllReduce;
  spec.max_iterations = 50;
  spec.seed = 3;
  Job job = std::move(ModelZoo::instantiate(spec, 0).job);
  const double fresh = SlaqScheduler::quality_gain_rate(job);
  for (int i = 0; i < 10; ++i) job.complete_iteration();
  const double later = SlaqScheduler::quality_gain_rate(job);
  EXPECT_GT(fresh, later);
  EXPECT_GT(later, 0.0);
  // Exhausted budget: no gain left.
  for (int i = 10; i < 50; ++i) job.complete_iteration();
  EXPECT_DOUBLE_EQ(SlaqScheduler::quality_gain_rate(job), 0.0);
}

TEST(HyperSched, AchievableGainShrinksNearDeadline) {
  JobSpec spec;
  spec.id = 0;
  spec.algorithm = MlAlgorithm::Mlp;
  spec.gpu_request = 1;
  spec.comm = CommStructure::AllReduce;
  spec.max_iterations = 100;
  spec.seed = 5;
  Job job = std::move(ModelZoo::instantiate(spec, 0).job);
  job.set_deadline(hours(10.0));
  const double early = HyperSchedScheduler::achievable_gain(job, 0.0);
  const double late = HyperSchedScheduler::achievable_gain(job, hours(9.9));
  EXPECT_GT(early, late);
  // Past the deadline there is nothing to gain.
  EXPECT_DOUBLE_EQ(HyperSchedScheduler::achievable_gain(job, hours(11.0)), 0.0);
}

TEST(Tiresias, ServiceAccumulatesOnlyWhileRunning) {
  TiresiasScheduler scheduler;
  EXPECT_DOUBLE_EQ(scheduler.attained_service(0), 0.0);
}

TEST(Graphene, TroublesomeScoreGrowsWithDependentsAndDemand) {
  Cluster cluster(cluster_config());
  JobSpec spec;
  spec.id = 0;
  spec.algorithm = MlAlgorithm::AlexNet;  // sequential chain
  spec.comm = CommStructure::AllReduce;
  spec.gpu_request = 4;
  spec.max_iterations = 20;
  spec.seed = 7;
  auto inst = ModelZoo::instantiate(spec, 0);
  cluster.register_job(std::move(inst.job), std::move(inst.tasks));
  const Job& job = cluster.job(0);
  // Head of the chain (3 descendants) beats the sink (0 descendants)
  // unless the sink has a much tougher demand; dependency share dominates.
  const double head = GrapheneScheduler::troublesome_score(cluster, cluster.task(job.task_at(0)));
  const double sink = GrapheneScheduler::troublesome_score(cluster, cluster.task(job.task_at(3)));
  EXPECT_GT(head, sink);
}

TEST(GangPlacement, AllOrNothingRollsBack) {
  // A job requesting more workers than the cluster can host must leave no
  // partial placements behind (unless protected).
  Cluster cluster(ClusterConfig{1, 2, 1000.0});
  JobSpec spec;
  spec.id = 0;
  spec.algorithm = MlAlgorithm::Lstm;
  spec.comm = CommStructure::AllReduce;
  spec.gpu_request = 8;  // needs 8 GPUs; cluster has 2
  spec.max_iterations = 10;
  spec.seed = 9;
  auto inst = ModelZoo::instantiate(spec, 0);
  cluster.register_job(std::move(inst.job), std::move(inst.tasks));

  struct RecordingOps : SchedulerOps {
    Cluster& cluster;
    explicit RecordingOps(Cluster& c) : cluster(c) {}
    bool place(TaskId t, ServerId s, int g) override {
      if (cluster.task(t).state != TaskState::Queued) return false;
      cluster.place_task(t, s, g);
      return true;
    }
    void preempt_to_queue(TaskId) override {}
    bool migrate(TaskId, ServerId, int) override { return false; }
    void release(TaskId t) override { cluster.unplace_task(t); }
  } ops{cluster};

  std::vector<TaskId> queue;
  for (const TaskId tid : cluster.job(0).tasks()) queue.push_back(tid);
  SchedulerContext ctx{cluster, queue, ops, 0.0, 0.9, nullptr, kInvalidJob};
  const int placed = place_job_gang(ctx, queue.front(), least_loaded_placement);
  EXPECT_EQ(placed, 0);
  for (const TaskId tid : queue) EXPECT_FALSE(cluster.task(tid).placed());
}

TEST(GangPlacement, ProtectedJobMayStayPartial) {
  Cluster cluster(ClusterConfig{1, 2, 1000.0});
  JobSpec spec;
  spec.id = 0;
  spec.algorithm = MlAlgorithm::Lstm;
  spec.comm = CommStructure::AllReduce;
  spec.gpu_request = 8;
  spec.max_iterations = 10;
  spec.seed = 9;
  auto inst = ModelZoo::instantiate(spec, 0);
  cluster.register_job(std::move(inst.job), std::move(inst.tasks));

  struct RecordingOps : SchedulerOps {
    Cluster& cluster;
    explicit RecordingOps(Cluster& c) : cluster(c) {}
    bool place(TaskId t, ServerId s, int g) override {
      if (cluster.task(t).state != TaskState::Queued) return false;
      cluster.place_task(t, s, g);
      return true;
    }
    void preempt_to_queue(TaskId) override {}
    bool migrate(TaskId, ServerId, int) override { return false; }
    void release(TaskId t) override { cluster.unplace_task(t); }
  } ops{cluster};

  std::vector<TaskId> queue;
  for (const TaskId tid : cluster.job(0).tasks()) queue.push_back(tid);
  SchedulerContext ctx{cluster, queue, ops, 0.0, 0.9, nullptr, /*protected_job=*/0};
  const int placed = place_job_gang(ctx, queue.front(), least_loaded_placement);
  EXPECT_GT(placed, 0);  // partial placements retained for the protected job
}

}  // namespace
}  // namespace mlfs::sched
