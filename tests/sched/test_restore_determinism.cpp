// Restore-determinism: for every registered scheduler, a run interrupted at
// an arbitrary event boundary, snapshotted, restored into a fresh engine and
// run to completion must be byte-identical (event-stream hash and all
// deterministic RunMetrics fields) to the uninterrupted run — with faults,
// recovery policies and the invariant auditor enabled throughout, so the
// restored engine also has to audit clean from the first post-restore event.
// This is the PR's core acceptance gate; the scenario mirrors
// test_determinism.cpp's smoke_request.
#include <gtest/gtest.h>

#include <cctype>

#include "exp/registry.hpp"
#include "exp/restore_check.hpp"
#include "exp/runner.hpp"
#include "sim/metrics.hpp"

namespace mlfs::sched {
namespace {

exp::RunRequest restore_request(const std::string& scheduler) {
  exp::RunRequest r;
  r.label = "restore-" + scheduler;
  r.cluster.server_count = 4;
  r.cluster.gpus_per_server = 4;
  r.cluster.servers_per_rack = 2;
  r.cluster.slow_server_fraction = 0.25;
  r.engine.seed = 31;
  r.engine.max_sim_time = hours(72.0);
  r.engine.straggler_probability = 0.01;
  r.engine.straggler_replicas = 1;
  r.engine.fault.server_mtbf_hours = 24.0;
  r.engine.fault.server_mttr_hours = 0.5;
  r.engine.fault.task_kill_probability = 0.002;
  r.engine.recovery.enabled = true;
  r.engine.recovery.quarantine_enabled = true;
  r.engine.recovery.retry_backoff_enabled = true;
  r.engine.audit.enabled = true;
  r.engine.audit.stride = 1;  // restored engine must audit clean at stride 1
  r.trace.num_jobs = 20;
  r.trace.duration_hours = 2.0;
  r.trace.seed = 77;
  r.trace.max_gpu_request = 8;
  r.scheduler = scheduler;
  // Small warm-up so the RL-backed schedulers cross the imitation->policy
  // switch inside the run and the snapshot covers live agent state.
  r.mlfs_config.rl.warmup_samples = 100;
  return r;
}

class RestoreDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(RestoreDeterminism, MidRunSnapshotResumesBitIdentical) {
  const exp::RunRequest request = restore_request(GetParam());
  // An arbitrary large odd constant: check_restore_equivalence wraps it to
  // a valid mid-run event index, so every scheduler gets a non-trivial cut.
  const exp::RestoreCheckResult result = exp::check_restore_equivalence(request, 0x9e3779b97f4a7c15ull);
  EXPECT_TRUE(result.equivalent) << result.detail;
  ASSERT_GT(result.total_events, 0u);
  EXPECT_EQ(result.reference.event_stream_hash, result.restored.event_stream_hash);
}

TEST_P(RestoreDeterminism, SnapshotAtStartAndNearEnd) {
  const exp::RunRequest request = restore_request(GetParam());
  // Edge cuts: event 0 (nothing processed yet) and the final event.
  const exp::RestoreCheckResult at_start = exp::check_restore_equivalence(request, 0);
  EXPECT_TRUE(at_start.equivalent) << at_start.detail;
  const exp::RestoreCheckResult near_end =
      exp::check_restore_equivalence(request, at_start.total_events - 1);
  EXPECT_TRUE(near_end.equivalent) << near_end.detail;
}

INSTANTIATE_TEST_SUITE_P(AllRegistered, RestoreDeterminism,
                         ::testing::ValuesIn(exp::registered_scheduler_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
                           }
                           return name;
                         });

// Same gate with link contention + duty cycles on: the cut lands while
// gangs are congesting a tight rack uplink, so the v4 "links" section
// (flow sets, duty cycles, phase offsets) and the engine's link counters
// must all round-trip for the resumed run to stay byte-identical — and the
// stride-1 auditor holds the link-conservation and share-sum invariants
// from the first post-restore event.
exp::RunRequest contention_request(const std::string& scheduler) {
  exp::RunRequest r = restore_request(scheduler);
  r.label = "restore-contended-" + scheduler;
  r.cluster.link_contention = true;
  r.cluster.duty_cycles = true;
  r.cluster.nic_capacity_mbps = 800.0;
  r.cluster.rack_uplink_capacity_mbps = 120.0;
  return r;
}

class ContendedRestoreDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(ContendedRestoreDeterminism, MidCongestionSnapshotResumesBitIdentical) {
  const exp::RunRequest request = contention_request(GetParam());
  const exp::RestoreCheckResult result =
      exp::check_restore_equivalence(request, 0x9e3779b97f4a7c15ull);
  EXPECT_TRUE(result.equivalent) << result.detail;
  ASSERT_GT(result.total_events, 0u);
  EXPECT_EQ(result.reference.event_stream_hash, result.restored.event_stream_hash);
  // The link metrics survive the restore exactly (they are part of
  // deterministic_equal, but pin the headline ones explicitly).
  EXPECT_EQ(result.restored.link_busy_seconds, result.reference.link_busy_seconds);
  EXPECT_EQ(result.restored.contention_slowdown_seconds,
            result.reference.contention_slowdown_seconds);
  EXPECT_EQ(result.restored.phase_offset_hits, result.reference.phase_offset_hits);
  // The scenario's tight uplink must actually have congested something, or
  // this parameterization proves nothing beyond the plain suite.
  EXPECT_GT(result.reference.link_busy_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllRegistered, ContendedRestoreDeterminism,
                         ::testing::ValuesIn(exp::registered_scheduler_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace mlfs::sched
