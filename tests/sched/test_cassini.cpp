// CASSINI-style network-aware scheduler tests (sched/cassini.hpp) plus the
// PR's contention-off acceptance gate.
//
// GoldenIdentity pins the event-stream hash of every scheduler that
// predates the link-contention model to the value it produced BEFORE the
// model was merged (captured at the pre-change commit on the fixed golden
// scenario below). With contention disabled — the default — the link model
// must never be consulted, so these streams have to stay byte-identical
// forever; any drift means the opt-in gate leaked into the hot path.
//
// The unit half drives CassiniScheduler::schedule directly against a
// hand-placed cluster: gangs whose flows share an uplink get anti-phased
// comm windows (zero circular overlap), gangs with no shared link — or a
// run with contention off — are left untouched, and the link-aware host
// chooser consolidates a gang inside one rack when it fits.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "sched/cassini.hpp"
#include "sim/engine.hpp"
#include "workload/model_zoo.hpp"

namespace mlfs::sched {
namespace {

// ------------------------------------------------- golden identity gate

exp::RunRequest golden_request(const std::string& scheduler) {
  exp::RunRequest r;
  r.label = "golden-" + scheduler;
  r.cluster.server_count = 6;
  r.cluster.gpus_per_server = 4;
  r.cluster.servers_per_rack = 2;
  r.engine.seed = 31;
  r.engine.max_sim_time = hours(72.0);
  r.trace.num_jobs = 24;
  r.trace.duration_hours = 3.0;
  r.trace.seed = 77;
  r.trace.max_gpu_request = 8;
  r.scheduler = scheduler;
  r.mlfs_config.rl.warmup_samples = 100;
  return r;
}

/// (event_stream_hash, events_processed) per scheduler, captured on the
/// golden scenario at the commit immediately before the link-contention
/// model landed. Do NOT update these to "fix" a failure — a mismatch means
/// default-off contention changed observable behaviour.
const std::map<std::string, std::pair<std::uint64_t, std::uint64_t>>& pre_contention_golden() {
  static const std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> kGolden = {
      {"MLF-H", {0x9ee21749d2a84e97ull, 4718ull}},
      {"MLF-RL", {0x44227c2f90d31c8bull, 4731ull}},
      {"MLFS", {0x8c651a431d8287fdull, 3477ull}},
      {"TensorFlow", {0xb703e22b15cf8546ull, 4736ull}},
      {"Tiresias", {0x917336828cbf0698ull, 4698ull}},
      {"SLAQ", {0x526339bb1f8d7890ull, 5197ull}},
      {"Gandiva", {0xfa7d9879fd8e6e81ull, 4729ull}},
      {"Graphene", {0x5a25ba26768fa616ull, 4754ull}},
      {"HyperSched", {0x521df06cf5b2cccdull, 4756ull}},
      {"RL", {0x7ecb11428c8f381dull, 4761ull}},
      {"Optimus", {0x03c5df493b3b79f2ull, 4751ull}},
  };
  return kGolden;
}

class GoldenIdentity : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenIdentity, ContentionOffStreamsByteIdenticalToPrePr) {
  const RunMetrics m = exp::execute_run(golden_request(GetParam()));
  // Contention disabled: the link metrics must be dead zeros.
  EXPECT_EQ(m.link_busy_seconds, 0.0);
  EXPECT_EQ(m.contention_slowdown_seconds, 0.0);
  EXPECT_EQ(m.phase_offset_hits, 0u);

  const auto& golden = pre_contention_golden();
  const auto it = golden.find(GetParam());
  if (it == golden.end()) {
    // Schedulers born after the capture (Cassini) have no pre-PR stream;
    // pin run-to-run determinism on the same scenario instead.
    const RunMetrics again = exp::execute_run(golden_request(GetParam()));
    EXPECT_EQ(again.event_stream_hash, m.event_stream_hash);
    EXPECT_EQ(again.events_processed, m.events_processed);
    return;
  }
  EXPECT_EQ(m.event_stream_hash, it->second.first) << GetParam();
  EXPECT_EQ(m.events_processed, it->second.second) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllRegistered, GoldenIdentity,
                         ::testing::ValuesIn(exp::registered_scheduler_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
                           }
                           return name;
                         });

TEST(GoldenIdentityCoverage, EveryPreContentionSchedulerStillRegistered) {
  // If a scheduler is ever dropped from the registry its golden entry would
  // silently stop being checked; fail loudly instead.
  const auto names = exp::registered_scheduler_names();
  for (const auto& [name, unused] : pre_contention_golden()) {
    (void)unused;
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end()) << name;
  }
}

// ----------------------------------------------------- unit-level fixture

struct RecordingOps : SchedulerOps {
  Cluster& cluster;
  std::size_t phase_calls = 0;
  std::size_t phase_changes = 0;
  explicit RecordingOps(Cluster& c) : cluster(c) {}
  bool place(TaskId t, ServerId s, int g) override {
    if (cluster.task(t).state != TaskState::Queued) return false;
    cluster.place_task(t, s, g);
    return true;
  }
  void preempt_to_queue(TaskId t) override { cluster.unplace_task(t); }
  bool migrate(TaskId, ServerId, int) override { return false; }
  void release(TaskId t) override { cluster.unplace_task(t); }
  bool set_phase_offset(JobId job, double offset) override {
    ++phase_calls;
    const bool changed = cluster.set_phase_offset(job, offset);
    if (changed) ++phase_changes;
    return changed;
  }
};

struct Fixture {
  Cluster cluster;
  RecordingOps ops{cluster};
  std::vector<TaskId> queue;
  CassiniScheduler cassini;

  explicit Fixture(const ClusterConfig& config) : cluster(config) {}

  SchedulerContext ctx() {
    return SchedulerContext{cluster, queue, ops, 0.0, 0.9, nullptr, kInvalidJob};
  }

  JobId add(MlAlgorithm algorithm, int gpus, std::uint64_t seed, bool enqueue = false) {
    JobSpec spec;
    spec.id = static_cast<JobId>(cluster.job_count());
    spec.algorithm = algorithm;
    spec.comm = CommStructure::AllReduce;
    spec.gpu_request = gpus;
    spec.max_iterations = 10;
    spec.seed = seed;
    auto inst = ModelZoo::instantiate(spec, static_cast<TaskId>(cluster.task_count()));
    cluster.register_job(std::move(inst.job), std::move(inst.tasks));
    if (enqueue) {
      for (const TaskId tid : cluster.job(spec.id).tasks()) queue.push_back(tid);
    }
    return spec.id;
  }
};

// 2 servers x 2 GPUs, one server per rack: every cross-server flow crosses
// racks and lands on both uplinks.
ClusterConfig two_rack_config(bool contention = true, bool duty = true) {
  ClusterConfig c;
  c.server_count = 2;
  c.gpus_per_server = 2;
  c.servers_per_rack = 1;
  c.link_contention = contention;
  c.duty_cycles = duty;
  c.nic_capacity_mbps = 800.0;
  c.rack_uplink_capacity_mbps = 120.0;
  return c;
}

TEST(Cassini, AntiPhasesGangsSharingAnUplink) {
  Fixture f(two_rack_config());
  // Two 2-worker gangs, each spanning both servers: their all-reduce flows
  // share every link on the fabric.
  const JobId a = f.add(MlAlgorithm::AlexNet, 2, 1);  // comm duty 0.45
  const JobId b = f.add(MlAlgorithm::Lstm, 2, 2);     // comm duty 0.40
  f.cluster.place_task(f.cluster.job(a).task_at(0), 0, 0);
  f.cluster.place_task(f.cluster.job(a).task_at(1), 1, 0);
  f.cluster.place_task(f.cluster.job(b).task_at(0), 0, 1);
  f.cluster.place_task(f.cluster.job(b).task_at(1), 1, 1);

  const LinkModel& links = f.cluster.link_model();
  ASSERT_EQ(links.job_duty_cycle(a), 0.45);  // ModelZoo duty cycles applied
  ASSERT_EQ(links.job_duty_cycle(b), 0.40);
  ASSERT_EQ(links.link_entries(links.uplink_link(0)).size(), 2u);
  // Before scheduling, both windows start at 0 and collide.
  ASSERT_GT(links.comm_overlap(a, b), 0.0);

  auto ctx = f.ctx();  // empty queue: this round only assigns phase offsets
  f.cassini.schedule(ctx);

  // Back-to-back packing: a at [0, 0.45), b at [0.45, 0.85) — no overlap,
  // so each gang sees only its own flows on the shared uplink.
  EXPECT_DOUBLE_EQ(links.phase_offset(a), 0.0);
  EXPECT_DOUBLE_EQ(links.phase_offset(b), 0.45);
  EXPECT_DOUBLE_EQ(links.comm_overlap(a, b), 0.0);
  EXPECT_GE(f.ops.phase_changes, 1u);
  const double own_flows =
      static_cast<double>(links.link_entries(links.uplink_link(0))[0].flows);
  EXPECT_DOUBLE_EQ(links.effective_concurrency(links.uplink_link(0), a), own_flows);
}

TEST(Cassini, DisjointGangsAreLeftUntouched) {
  Fixture f(two_rack_config());
  // Each gang fully co-located on its own server: no cross-server flows,
  // no shared links, nothing to anti-phase.
  const JobId a = f.add(MlAlgorithm::AlexNet, 2, 3);
  const JobId b = f.add(MlAlgorithm::Lstm, 2, 4);
  f.cluster.place_task(f.cluster.job(a).task_at(0), 0, 0);
  f.cluster.place_task(f.cluster.job(a).task_at(1), 0, 1);
  f.cluster.place_task(f.cluster.job(b).task_at(0), 1, 0);
  f.cluster.place_task(f.cluster.job(b).task_at(1), 1, 1);

  auto ctx = f.ctx();
  f.cassini.schedule(ctx);
  EXPECT_EQ(f.ops.phase_calls, 0u);
  EXPECT_DOUBLE_EQ(f.cluster.link_model().phase_offset(a), 0.0);
  EXPECT_DOUBLE_EQ(f.cluster.link_model().phase_offset(b), 0.0);
}

TEST(Cassini, DutyCyclesOffMeansNoRephasing) {
  // Contention on but duty cycles off: every window spans the whole circle,
  // so packing would be meaningless and must not touch any offset.
  Fixture f(two_rack_config(/*contention=*/true, /*duty=*/false));
  const JobId a = f.add(MlAlgorithm::AlexNet, 2, 5);
  const JobId b = f.add(MlAlgorithm::Lstm, 2, 6);
  f.cluster.place_task(f.cluster.job(a).task_at(0), 0, 0);
  f.cluster.place_task(f.cluster.job(a).task_at(1), 1, 0);
  f.cluster.place_task(f.cluster.job(b).task_at(0), 0, 1);
  f.cluster.place_task(f.cluster.job(b).task_at(1), 1, 1);

  auto ctx = f.ctx();
  f.cassini.schedule(ctx);
  EXPECT_EQ(f.ops.phase_calls, 0u);
}

TEST(Cassini, ContentionOffSchedulesWithoutTouchingTheLinkModel) {
  Fixture f(two_rack_config(/*contention=*/false, /*duty=*/false));
  const JobId a = f.add(MlAlgorithm::AlexNet, 2, 7, /*enqueue=*/true);
  auto ctx = f.ctx();
  f.cassini.schedule(ctx);
  // The gang still gets placed (least-loaded fallback)...
  for (const TaskId tid : f.cluster.job(a).tasks()) {
    EXPECT_TRUE(f.cluster.task(tid).placed());
  }
  // ...but no phase offset is ever assigned.
  EXPECT_EQ(f.ops.phase_calls, 0u);
  EXPECT_FALSE(f.cluster.set_phase_offset(a, 0.5));  // no-op when disabled
}

TEST(Cassini, KeepsGangInsideOneRackWhenItFits) {
  // 4 servers x 2 GPUs in 2 racks. A load-driven chooser would spread the
  // 4-worker gang onto the emptiest servers across both racks; the
  // link-aware chooser must consolidate it into rack 0, keeping its
  // all-reduce ring off the uplinks entirely.
  ClusterConfig config;
  config.server_count = 4;
  config.gpus_per_server = 2;
  config.servers_per_rack = 2;
  config.link_contention = true;
  config.nic_capacity_mbps = 800.0;
  config.rack_uplink_capacity_mbps = 120.0;
  Fixture f(config);
  // Asymmetric pre-load in rack 1: makes server 2 the "wrong" choice for a
  // consolidator and a fine one for a pure load balancer.
  const JobId filler = f.add(MlAlgorithm::Svm, 1, 8);
  f.cluster.place_task(f.cluster.job(filler).task_at(0), 2, 0);

  const JobId gang = f.add(MlAlgorithm::Svm, 4, 9, /*enqueue=*/true);
  auto ctx = f.ctx();
  f.cassini.schedule(ctx);

  const LinkModel& links = f.cluster.link_model();
  for (const TaskId tid : f.cluster.job(gang).tasks()) {
    const Task& t = f.cluster.task(tid);
    ASSERT_TRUE(t.placed());
    EXPECT_EQ(links.rack_of(t.server), 0) << "task " << tid << " left rack 0";
  }
  EXPECT_EQ(links.total_flows_on(links.uplink_link(0)), 0u);
  EXPECT_EQ(links.total_flows_on(links.uplink_link(1)), 0u);
}

// ------------------------------------------------ end-to-end smoke

TEST(CassiniEndToEnd, ContendedRunExercisesAndReportsTheLinkModel) {
  exp::RunRequest r = golden_request("Cassini");
  r.label = "cassini-contended";
  r.cluster.link_contention = true;
  r.cluster.duty_cycles = true;
  r.cluster.nic_capacity_mbps = 800.0;
  r.cluster.rack_uplink_capacity_mbps = 120.0;
  r.engine.audit.enabled = true;  // link invariants at stride 1 throughout
  r.engine.audit.stride = 1;
  const RunMetrics m = exp::execute_run(r);
  EXPECT_GT(m.link_busy_seconds, 0.0);
  EXPECT_GE(m.contention_slowdown_seconds, 0.0);
  EXPECT_LE(m.contention_slowdown_seconds, m.link_busy_seconds);
  EXPECT_GT(m.phase_offset_hits, 0u);

  // Deterministic under contention too.
  const RunMetrics again = exp::execute_run(r);
  EXPECT_EQ(again.event_stream_hash, m.event_stream_hash);
  EXPECT_TRUE(deterministic_equal(m, again));
}

}  // namespace
}  // namespace mlfs::sched
