// SimAuditor tests: clean audited runs across chaotic configurations, the
// observer-only guarantee (audit on == audit off, bitwise), and the
// deliberate slot-leak bug being caught with a structured diagnostic.
#include <gtest/gtest.h>

#include "exp/fuzz.hpp"
#include "exp/runner.hpp"
#include "sim/audit.hpp"
#include "sim/metrics.hpp"

namespace mlfs::exp {
namespace {

/// Small audited scenario with every fault dimension enabled.
RunRequest chaos_request(const std::string& scheduler) {
  RunRequest r;
  r.label = "auditor-chaos";
  r.cluster.server_count = 5;
  r.cluster.gpus_per_server = 4;
  r.cluster.servers_per_rack = 2;
  r.cluster.slow_server_fraction = 0.4;
  r.engine.seed = 1234;
  r.engine.max_sim_time = hours(72.0);
  r.engine.straggler_probability = 0.02;
  r.engine.straggler_replicas = 1;
  r.engine.fault.server_mtbf_hours = 12.0;
  r.engine.fault.server_mttr_hours = 0.4;
  r.engine.fault.task_kill_probability = 2e-4;
  r.engine.fault.rack_mtbf_hours = 36.0;
  r.engine.fault.rack_mttr_hours = 0.2;
  r.engine.fault.checkpoint_interval_iterations = 3;
  r.engine.audit.enabled = true;
  r.trace.num_jobs = 25;
  r.trace.duration_hours = 3.0;
  r.trace.seed = 99;
  r.trace.max_gpu_request = 8;
  r.scheduler = scheduler;
  return r;
}

TEST(Auditor, CleanUnderChaosForRepresentativeSchedulers) {
  // MLFS exercises the full hot path + MLF-H cache audit; Tiresias and
  // TensorFlow cover preemptive and naive baselines.
  for (const char* name : {"MLFS", "Tiresias", "TensorFlow"}) {
    EXPECT_NO_THROW({
      const RunMetrics m = execute_run(chaos_request(name));
      EXPECT_EQ(m.job_count, 25u) << name;
    }) << name;
  }
}

TEST(Auditor, IsPureObserver) {
  // Enabling the audit must not change a single decision or metric.
  RunRequest with = chaos_request("MLFS");
  RunRequest without = chaos_request("MLFS");
  without.engine.audit.enabled = false;
  EXPECT_TRUE(deterministic_equal(execute_run(with), execute_run(without)));
}

TEST(Auditor, StrideSkipsEventsButStillAudits) {
  RunRequest r = chaos_request("SLAQ");
  r.engine.audit.stride = 16;  // cheap mode: audit every 16th event
  EXPECT_NO_THROW(execute_run(r));
}

TEST(Auditor, CatchesInjectedSlotLeak) {
  RunRequest r = chaos_request("MLFS");
  r.cluster.debug_slot_leak = true;
  try {
    execute_run(r);
    FAIL() << "slot leak was not detected";
  } catch (const AuditViolation& v) {
    EXPECT_EQ(v.report().invariant, "server-usage");
    EXPECT_GE(v.report().sim_time, 0.0);
    EXPECT_GT(v.report().event_index, 0u);
    EXPECT_FALSE(v.report().event.empty());
    // The diagnostic names the server and the cached-vs-recomputed gap.
    EXPECT_NE(std::string(v.what()).find("cached usage"), std::string::npos);
  }
}

TEST(Auditor, LeakGoesUnnoticedWithoutAudit) {
  // The run completes and looks plausible without the auditor — the
  // point of having one.
  RunRequest r = chaos_request("MLFS");
  r.cluster.debug_slot_leak = true;
  r.engine.audit.enabled = false;
  EXPECT_NO_THROW(execute_run(r));
}

TEST(Auditor, ViolationIsAContractViolation) {
  // Existing catch sites for ContractViolation keep working.
  RunRequest r = chaos_request("MLFS");
  r.cluster.debug_slot_leak = true;
  EXPECT_THROW(execute_run(r), ContractViolation);
}

TEST(Auditor, ReportToStringMentionsInvariantAndEvent) {
  const AuditReport report{"server-usage", "detail text", "tick", 12.5, 42};
  const std::string s = report.to_string();
  EXPECT_NE(s.find("server-usage"), std::string::npos);
  EXPECT_NE(s.find("tick"), std::string::npos);
  EXPECT_NE(s.find("detail text"), std::string::npos);
}

}  // namespace
}  // namespace mlfs::exp
