// Snapshot dimension of the fuzz harness (exp/fuzz.hpp): cases that draw
// snapshot_check run the three-engine restore-equivalence check, the new
// fields survive the key=value serialization, and a forced snapshot case
// passes clean across schedulers with faults and recovery enabled.
#include <gtest/gtest.h>

#include <sstream>

#include "exp/fuzz.hpp"
#include "exp/registry.hpp"

namespace mlfs::exp {
namespace {

/// Small faulty case with recovery on — quick, but the restored engine
/// still has to cross fault/repair/retry events.
FuzzCase snapshot_case(const std::string& scheduler) {
  FuzzCase c;
  c.trace_seed = 303;
  c.engine_seed = 404;
  c.scheduler = scheduler;
  c.servers = 2;
  c.gpus_per_server = 3;
  c.num_jobs = 6;
  c.duration_hours = 0.5;
  c.max_sim_hours = 24.0;
  c.max_gpu_request = 3;
  c.server_mtbf_hours = 12.0;
  c.task_kill_probability = 0.003;
  c.recovery = true;
  c.snapshot_check = true;
  c.snapshot_event = 0xdeadbeefcafeull;
  return c;
}

TEST(SnapshotFuzz, DimensionIsDrawnAndSerialized) {
  const auto names = registered_scheduler_names();
  bool drawn = false;
  for (std::uint64_t i = 0; i < 64 && !drawn; ++i) {
    drawn = generate_case(424, i, names).snapshot_check;
  }
  EXPECT_TRUE(drawn) << "64 cases never drew the snapshot dimension";

  const FuzzCase c = snapshot_case("MLFS");
  std::istringstream in(serialize(c));
  const FuzzCase back = parse_fuzz_case(in);
  EXPECT_TRUE(back.snapshot_check);
  EXPECT_EQ(back.snapshot_event, c.snapshot_event);
  EXPECT_EQ(serialize(back), serialize(c));
  // The describe line carries the replay cut for bug reports.
  EXPECT_NE(describe(c).find("snapshot@"), std::string::npos);
}

TEST(SnapshotFuzz, ForcedSnapshotCasePassesAcrossSchedulers) {
  for (const std::string scheduler : {"MLF-H", "Tiresias", "Gandiva"}) {
    const auto failure = run_fuzz_case(snapshot_case(scheduler));
    EXPECT_FALSE(failure.has_value())
        << scheduler << ": " << (failure ? failure->invariant + ": " + failure->what : "");
  }
}

TEST(SnapshotFuzz, ShrinkKeepsTheSnapshotDimension) {
  // The shrinker may halve snapshot_event but must never drop the flag —
  // dropping it would switch the invariant away from "snapshot-restore"
  // and the transform would be rejected. Verify the transform set keeps a
  // failing snapshot case's flag intact by shrinking a synthetic failure.
  FuzzCase c = snapshot_case("MLF-H");
  FuzzFailure failure{c, "snapshot-restore", "synthetic"};
  // Shrinking re-runs the case, which passes, so nothing is accepted; the
  // minimal case must still carry the snapshot dimension.
  const ShrinkResult result = shrink_case(c, failure, 1);
  EXPECT_TRUE(result.minimal.snapshot_check);
  EXPECT_EQ(result.failure.invariant, "snapshot-restore");
}

}  // namespace
}  // namespace mlfs::exp
