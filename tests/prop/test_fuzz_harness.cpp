// Fuzz-harness tests: deterministic case generation, scheduler coverage,
// serialization round-trips, and the end-to-end self-test required by the
// harness contract — an injected slot-leak bug is caught by the auditor,
// shrunk to a smaller case failing the same invariant, and replayable
// from its serialized form.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "exp/fuzz.hpp"
#include "exp/registry.hpp"

namespace mlfs::exp {
namespace {

/// Tiny case that finishes in well under a second; used as the base for
/// the slot-leak and round-trip tests.
FuzzCase tiny_case() {
  FuzzCase c;
  c.master_seed = 7;
  c.index = 0;
  c.trace_seed = 101;
  c.engine_seed = 202;
  c.scheduler = "MLF-H";
  c.servers = 2;
  c.gpus_per_server = 3;
  c.num_jobs = 6;
  c.duration_hours = 0.5;
  c.max_sim_hours = 24.0;
  c.max_gpu_request = 3;
  return c;
}

TEST(FuzzGen, CaseIsAPureFunctionOfSeedAndIndex) {
  const auto names = registered_scheduler_names();
  const FuzzCase a = generate_case(7, 3, names);
  const FuzzCase b = generate_case(7, 3, names);
  EXPECT_EQ(serialize(a), serialize(b));
  // Different indices draw genuinely different scenarios.
  const FuzzCase c = generate_case(7, 4, names);
  EXPECT_NE(serialize(a), serialize(c));
  EXPECT_NE(a.trace_seed, c.trace_seed);
}

TEST(FuzzGen, ConsecutiveCasesCoverEverySchedulerAndStayInBounds) {
  const auto names = registered_scheduler_names();
  ASSERT_FALSE(names.empty());
  std::set<std::string> seen;
  for (std::uint64_t i = 0; i < names.size(); ++i) {
    const FuzzCase c = generate_case(7, i, names);
    seen.insert(c.scheduler);
    EXPECT_GE(c.servers, 1u);
    EXPECT_GE(c.gpus_per_server, 1);
    EXPECT_GE(c.num_jobs, 1u);
    EXPECT_GE(c.max_gpu_request, 1);
    EXPECT_LE(c.max_gpu_request, static_cast<int>(c.servers) * c.gpus_per_server);
    EXPECT_GT(c.duration_hours, 0.0);
    EXPECT_GT(c.max_sim_hours, 0.0);
  }
  EXPECT_EQ(seen.size(), names.size());
}

TEST(FuzzGen, RequestMirrorsCase) {
  FuzzCase c = tiny_case();
  c.inject_slot_leak = true;
  c.legacy_hot_path = true;
  const RunRequest r = to_request(c);
  EXPECT_EQ(r.cluster.server_count, c.servers);
  EXPECT_EQ(r.cluster.gpus_per_server, c.gpus_per_server);
  EXPECT_TRUE(r.cluster.debug_slot_leak);
  EXPECT_TRUE(r.engine.audit.enabled);  // fuzz cases always run audited
  EXPECT_EQ(r.engine.seed, c.engine_seed);
  EXPECT_EQ(r.trace.seed, c.trace_seed);
  EXPECT_EQ(r.trace.num_jobs, c.num_jobs);
  EXPECT_EQ(r.scheduler, c.scheduler);
  EXPECT_TRUE(r.mlfs_config.legacy_hot_path);
}

TEST(FuzzSerde, RoundTripsThroughText) {
  const FuzzCase original = generate_case(42, 5, registered_scheduler_names());
  std::istringstream in("# a comment line\n" + serialize(original));
  const FuzzCase parsed = parse_fuzz_case(in);
  EXPECT_EQ(serialize(parsed), serialize(original));
}

TEST(FuzzSerde, RejectsUnknownKeysAndMalformedLines) {
  std::istringstream unknown("no_such_field=3\n");
  EXPECT_THROW(parse_fuzz_case(unknown), ContractViolation);
  std::istringstream malformed("servers\n");
  EXPECT_THROW(parse_fuzz_case(malformed), ContractViolation);
}

TEST(FuzzRun, CleanCasePasses) {
  EXPECT_FALSE(run_fuzz_case(tiny_case()).has_value());
  EXPECT_FALSE(run_fuzz_case(tiny_case(), /*check_determinism=*/true).has_value());
}

TEST(FuzzRun, InjectedSlotLeakIsCaughtShrunkAndReplayable) {
  FuzzCase buggy = tiny_case();
  buggy.inject_slot_leak = true;

  // Caught: the auditor flags the usage-conservation invariant.
  const auto failure = run_fuzz_case(buggy);
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->invariant, "server-usage");

  // Shrunk: the minimal case still fails the SAME invariant and is no
  // larger than the original along every shrink axis.
  const ShrinkResult shrunk = shrink_case(buggy, *failure, /*max_rounds=*/4);
  EXPECT_EQ(shrunk.failure.invariant, "server-usage");
  EXPECT_LE(shrunk.minimal.num_jobs, buggy.num_jobs);
  EXPECT_LE(shrunk.minimal.servers, buggy.servers);
  EXPECT_GT(shrunk.attempts, 0);
  EXPECT_GT(shrunk.accepted, 0);

  // Replayable: the serialized minimal case reproduces the violation.
  std::istringstream in(serialize(shrunk.minimal));
  const FuzzCase replayed = parse_fuzz_case(in);
  const auto replay_failure = run_fuzz_case(replayed);
  ASSERT_TRUE(replay_failure.has_value());
  EXPECT_EQ(replay_failure->invariant, "server-usage");
}

TEST(FuzzSweep, SmallCleanSweepAcrossAllSchedulers) {
  FuzzSweepOptions options;
  options.seed = 7;
  options.runs = registered_scheduler_names().size();  // one case per scheduler
  std::size_t progressed = 0;
  options.progress = [&](std::size_t, const FuzzCase&, bool) { ++progressed; };
  const FuzzSweepOutcome outcome = run_fuzz_sweep(options);
  EXPECT_TRUE(outcome.clean());
  EXPECT_EQ(outcome.runs, options.runs);
  EXPECT_EQ(progressed, options.runs);
}

TEST(FuzzSweep, SelfTestModeSurfacesTheBug) {
  FuzzSweepOptions options;
  options.seed = 7;
  options.runs = 3;
  options.inject_slot_leak = true;
  options.max_failures = 1;
  options.shrink_rounds = 2;
  const FuzzSweepOutcome outcome = run_fuzz_sweep(options);
  ASSERT_FALSE(outcome.clean());
  EXPECT_EQ(outcome.failures.front().failure.invariant, "server-usage");
}

}  // namespace
}  // namespace mlfs::exp
