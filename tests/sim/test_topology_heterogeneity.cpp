// Extension tests: rack topology (the paper's §5 limitation, implemented)
// and heterogeneous GPU tiers (its §6 future work).
#include <gtest/gtest.h>

#include "core/placement.hpp"
#include "exp/registry.hpp"
#include "sched/util.hpp"
#include "sim/engine.hpp"
#include "workload/model_zoo.hpp"
#include "workload/trace.hpp"

namespace mlfs {
namespace {

class GreedyScheduler : public Scheduler {
 public:
  std::string name() const override { return "greedy-test"; }
  void schedule(SchedulerContext& ctx) override {
    for (const TaskId tid : sched::live_queue(ctx)) {
      if (ctx.cluster.task(tid).state != TaskState::Queued) continue;
      sched::place_job_gang(ctx, tid, sched::least_loaded_placement);
    }
  }
};

TEST(Topology, RackAssignmentAndCrossings) {
  ClusterConfig config;
  config.server_count = 6;
  config.gpus_per_server = 2;
  config.servers_per_rack = 2;
  Cluster cluster(config);
  EXPECT_EQ(cluster.rack_of(0), 0);
  EXPECT_EQ(cluster.rack_of(1), 0);
  EXPECT_EQ(cluster.rack_of(2), 1);
  EXPECT_EQ(cluster.rack_of(5), 2);
  EXPECT_FALSE(cluster.crosses_racks(0, 1));
  EXPECT_TRUE(cluster.crosses_racks(1, 2));
  EXPECT_DOUBLE_EQ(cluster.flow_bandwidth_between(0, 1),
                   config.effective_flow_bandwidth_mbps);
  EXPECT_DOUBLE_EQ(cluster.flow_bandwidth_between(0, 5),
                   config.inter_rack_flow_bandwidth_mbps);
}

TEST(Topology, FlatClusterNeverCrosses) {
  ClusterConfig config;
  config.server_count = 4;
  Cluster cluster(config);
  EXPECT_FALSE(cluster.crosses_racks(0, 3));
  EXPECT_EQ(cluster.rack_of(3), 0);
}

TEST(Topology, InterRackLedgerTracksCrossings) {
  ClusterConfig config;
  config.server_count = 4;
  config.gpus_per_server = 2;
  config.servers_per_rack = 2;
  Cluster cluster(config);
  cluster.record_transfer(0, 1, 100.0);  // same rack
  cluster.record_transfer(0, 2, 50.0);   // cross rack
  EXPECT_DOUBLE_EQ(cluster.total_bandwidth_mb(), 150.0);
  EXPECT_DOUBLE_EQ(cluster.inter_rack_bandwidth_mb(), 50.0);
}

TEST(Topology, CrossRackCommLengthensIterations) {
  // Identical workload on a flat vs a racked cluster: the racked run pays
  // slower cross-rack flows, so total time cannot improve.
  TraceConfig tc;
  tc.num_jobs = 20;
  tc.duration_hours = 2.0;
  tc.seed = 5;
  tc.max_gpu_request = 8;
  tc.parameter_server_fraction = 1.0;  // comm-heavy
  const auto specs = PhillyTraceGenerator(tc).generate();

  ClusterConfig flat;
  flat.server_count = 4;
  flat.gpus_per_server = 4;
  ClusterConfig racked = flat;
  racked.servers_per_rack = 1;  // every cross-server flow crosses racks
  racked.inter_rack_flow_bandwidth_mbps = 50.0;

  GreedyScheduler s1, s2;
  SimEngine flat_engine(flat, {}, specs, s1);
  SimEngine racked_engine(racked, {}, specs, s2);
  const RunMetrics flat_m = flat_engine.run();
  const RunMetrics racked_m = racked_engine.run();
  EXPECT_GT(racked_m.average_jct_minutes(), flat_m.average_jct_minutes());
  EXPECT_GT(racked_m.inter_rack_tb, 0.0);
  EXPECT_DOUBLE_EQ(flat_m.inter_rack_tb, 0.0);
}

TEST(Topology, TopologyAwarePlacementPrefersPeerRack) {
  ClusterConfig config;
  config.server_count = 4;
  config.gpus_per_server = 2;
  config.servers_per_rack = 2;
  Cluster cluster(config);

  JobSpec spec;
  spec.id = 0;
  spec.algorithm = MlAlgorithm::Mlp;
  spec.comm = CommStructure::AllReduce;
  spec.gpu_request = 2;  // chain 0 -> 1
  spec.max_iterations = 10;
  spec.seed = 3;
  auto inst = ModelZoo::instantiate(spec, 0);
  cluster.register_job(std::move(inst.job), std::move(inst.tasks));
  const Job& job = cluster.job(0);
  cluster.place_task(job.task_at(0), 0, 0);  // rack 0

  const Task& partner = cluster.task(job.task_at(1));
  // Same-rack server 1 scores rack_affinity * volume; rack-1 servers 0.
  const double same_rack = core::MlfPlacement::comm_volume_with_server_topology(
      cluster, partner, 1, 0.5);
  const double other_rack = core::MlfPlacement::comm_volume_with_server_topology(
      cluster, partner, 2, 0.5);
  const double same_server = core::MlfPlacement::comm_volume_with_server_topology(
      cluster, partner, 0, 0.5);
  EXPECT_GT(same_server, same_rack);
  EXPECT_GT(same_rack, other_rack);
  EXPECT_DOUBLE_EQ(other_rack, 0.0);
}

TEST(Heterogeneity, SlowTierAssignedToTail) {
  ClusterConfig config;
  config.server_count = 4;
  config.slow_server_fraction = 0.5;
  config.slow_server_speed = 0.5;
  Cluster cluster(config);
  EXPECT_DOUBLE_EQ(cluster.server(0).speed(), 1.0);
  EXPECT_DOUBLE_EQ(cluster.server(1).speed(), 1.0);
  EXPECT_DOUBLE_EQ(cluster.server(2).speed(), 0.5);
  EXPECT_DOUBLE_EQ(cluster.server(3).speed(), 0.5);
}

TEST(Heterogeneity, SlowClusterRunsSlower) {
  TraceConfig tc;
  tc.num_jobs = 20;
  tc.duration_hours = 2.0;
  tc.seed = 9;
  tc.max_gpu_request = 4;
  const auto specs = PhillyTraceGenerator(tc).generate();

  ClusterConfig fast;
  fast.server_count = 4;
  fast.gpus_per_server = 4;
  ClusterConfig mixed = fast;
  mixed.slow_server_fraction = 1.0;  // every server on the 0.5x tier
  mixed.slow_server_speed = 0.5;

  GreedyScheduler s1, s2;
  SimEngine fast_engine(fast, {}, specs, s1);
  SimEngine mixed_engine(mixed, {}, specs, s2);
  const double fast_jct = fast_engine.run().average_jct_minutes();
  const double slow_jct = mixed_engine.run().average_jct_minutes();
  EXPECT_GT(slow_jct, fast_jct * 1.3);  // compute roughly halves in speed
}

TEST(Optimus, ShortestPredictedRemainingCompletesFirstUnderLoad) {
  // Sanity: the Optimus extension baseline completes everything and beats
  // plain fair scheduling on average JCT (it is SRPT-flavoured).
  TraceConfig tc;
  tc.num_jobs = 80;
  tc.duration_hours = 6.0;
  tc.seed = 21;
  tc.max_gpu_request = 8;
  const auto specs = PhillyTraceGenerator(tc).generate();
  ClusterConfig cc;
  cc.server_count = 4;
  cc.gpus_per_server = 4;

  auto optimus = exp::make_scheduler("Optimus");
  SimEngine e1(cc, {}, specs, *optimus.scheduler);
  const RunMetrics m_optimus = e1.run();
  for (const Job& job : e1.cluster().jobs()) EXPECT_TRUE(job.done());

  auto fair = exp::make_scheduler("TensorFlow");
  SimEngine e2(cc, {}, specs, *fair.scheduler);
  const RunMetrics m_fair = e2.run();
  EXPECT_LT(m_optimus.jct_minutes.median(), m_fair.jct_minutes.median() * 1.2);
}

}  // namespace
}  // namespace mlfs
