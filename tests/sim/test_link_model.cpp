// LinkModel unit battery (sim/link_model.hpp, DESIGN.md §5e): fair-share
// arithmetic at 1/2/N flows, path/link selection for intra- vs cross-rack
// flows, unconstrained-capacity and single-gang edge cases, comm-window
// circular-overlap geometry, the per-link share-sum invariant, and a
// randomized equivalence check of the incremental per-link bookkeeping
// against a from-scratch rebuild (the auditor's conservation check, driven
// much harder here than any single simulation would).
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "sim/link_model.hpp"

namespace mlfs {
namespace {

using Flow = LinkModel::Flow;

// 4 servers in 2 racks ({0,1} and {2,3}); NIC links 0..3, uplinks 4..5.
LinkModel racked(double nic = 1000.0, double uplink = 600.0) {
  LinkModel m;
  m.reset(4, 2, nic, uplink);
  return m;
}

TEST(LinkModel, TopologyAndLinkIndexing) {
  const LinkModel m = racked();
  EXPECT_EQ(m.server_count(), 4u);
  EXPECT_EQ(m.link_count(), 6u);  // 4 NICs + 2 uplinks
  EXPECT_EQ(m.nic_link(3), 3u);
  EXPECT_EQ(m.uplink_link(0), 4u);
  EXPECT_EQ(m.uplink_link(1), 5u);
  EXPECT_EQ(m.rack_of(1), 0);
  EXPECT_EQ(m.rack_of(2), 1);
  EXPECT_DOUBLE_EQ(m.link_capacity(0), 1000.0);
  EXPECT_DOUBLE_EQ(m.link_capacity(4), 600.0);
}

TEST(LinkModel, IntraRackFlowTouchesOnlyEndpointNics) {
  LinkModel m = racked();
  m.update_job_flows(0, {Flow{0, 1}});  // both endpoints in rack 0
  EXPECT_EQ(m.total_flows_on(m.nic_link(0)), 1u);
  EXPECT_EQ(m.total_flows_on(m.nic_link(1)), 1u);
  EXPECT_EQ(m.total_flows_on(m.nic_link(2)), 0u);
  EXPECT_EQ(m.total_flows_on(m.uplink_link(0)), 0u);
  EXPECT_EQ(m.total_flows_on(m.uplink_link(1)), 0u);
}

TEST(LinkModel, CrossRackFlowTraversesBothUplinks) {
  LinkModel m = racked();
  m.update_job_flows(0, {Flow{0, 2}});  // rack 0 -> rack 1
  EXPECT_EQ(m.total_flows_on(m.nic_link(0)), 1u);
  EXPECT_EQ(m.total_flows_on(m.nic_link(2)), 1u);
  EXPECT_EQ(m.total_flows_on(m.uplink_link(0)), 1u);
  EXPECT_EQ(m.total_flows_on(m.uplink_link(1)), 1u);
  EXPECT_EQ(m.total_flows_on(m.nic_link(1)), 0u);
}

TEST(LinkModel, FlatNetworkHasNoUplinks) {
  LinkModel m;
  m.reset(4, 0, 1000.0, 600.0);  // servers_per_rack <= 0: flat fabric
  EXPECT_EQ(m.link_count(), 4u);
  m.update_job_flows(0, {Flow{0, 3}});
  EXPECT_EQ(m.total_flows_on(m.nic_link(0)), 1u);
  EXPECT_EQ(m.total_flows_on(m.nic_link(3)), 1u);
}

// ------------------------------------------------------ fair-share queries

TEST(LinkModel, SingleFlowGetsFullLinkCapacity) {
  LinkModel m = racked();
  m.update_job_flows(0, {Flow{0, 1}});
  EXPECT_DOUBLE_EQ(m.effective_concurrency(m.nic_link(0), 0), 1.0);
  // min(base, C/1) in both directions of the min.
  EXPECT_DOUBLE_EQ(m.flow_bandwidth(0, 0, 1, 800.0), 800.0);
  EXPECT_DOUBLE_EQ(m.flow_bandwidth(0, 0, 1, 4000.0), 1000.0);
}

TEST(LinkModel, TwoJobsOnOneLinkHalveIt) {
  LinkModel m = racked();
  m.update_job_flows(0, {Flow{0, 1}});
  m.update_job_flows(1, {Flow{0, 1}});  // same NIC pair, default duty 1.0
  EXPECT_DOUBLE_EQ(m.effective_concurrency(m.nic_link(0), 0), 2.0);
  EXPECT_DOUBLE_EQ(m.flow_bandwidth(0, 0, 1, 4000.0), 500.0);
  // Saturated link, duty cycles off: the handed-out share sums to exactly 1.
  EXPECT_DOUBLE_EQ(m.share_sum(m.nic_link(0)), 1.0);
}

TEST(LinkModel, NFlowsOfOneGangShareItsOwnNic) {
  LinkModel m = racked();
  // A 4-worker ring rooted at server 0: three flows all leave NIC 0.
  m.update_job_flows(0, {Flow{0, 1}, Flow{0, 2}, Flow{0, 3}});
  EXPECT_DOUBLE_EQ(m.effective_concurrency(m.nic_link(0), 0), 3.0);
  // Path 0->1: NIC 0 is the bottleneck at C/3; NIC 1 would allow C/1.
  EXPECT_DOUBLE_EQ(m.flow_bandwidth(0, 0, 1, 4000.0), 1000.0 / 3.0);
  // Single gang alone on the fabric still respects the share-sum bound.
  EXPECT_DOUBLE_EQ(m.share_sum(m.nic_link(0)), 1.0);
}

TEST(LinkModel, TightUplinkDominatesCrossRackPath) {
  LinkModel m = racked(1000.0, 120.0);
  m.update_job_flows(0, {Flow{0, 2}});
  m.update_job_flows(1, {Flow{1, 3}});  // different NICs, same two uplinks
  EXPECT_DOUBLE_EQ(m.effective_concurrency(m.uplink_link(0), 0), 2.0);
  EXPECT_DOUBLE_EQ(m.flow_bandwidth(0, 0, 2, 4000.0), 60.0);  // 120 / 2
}

TEST(LinkModel, ZeroCapacityMeansUnconstrained) {
  LinkModel m = racked(0.0, 0.0);
  m.update_job_flows(0, {Flow{0, 2}});
  m.update_job_flows(1, {Flow{0, 2}});
  m.update_job_flows(2, {Flow{0, 2}});
  // Any amount of sharing leaves the base path bandwidth untouched.
  EXPECT_DOUBLE_EQ(m.flow_bandwidth(0, 0, 2, 937.5), 937.5);
}

TEST(LinkModel, UnregisteredFlowCountsItselfOnce) {
  LinkModel m = racked();
  m.update_job_flows(0, {Flow{0, 1}});
  // Job 7 never registered anything: querying its would-be flow on a link
  // occupied by job 0 sees job 0's flow plus itself.
  EXPECT_DOUBLE_EQ(m.flow_bandwidth(7, 0, 1, 4000.0), 500.0);
  EXPECT_DOUBLE_EQ(m.effective_concurrency(m.nic_link(0), 7), 0.0);
}

// -------------------------------------------------- comm-window geometry

TEST(LinkModel, CommOverlapGeometry) {
  LinkModel m = racked();
  m.update_job_flows(0, {Flow{0, 1}});
  m.update_job_flows(1, {Flow{0, 1}});
  // Defaults: both windows span the whole circle.
  EXPECT_DOUBLE_EQ(m.comm_overlap(0, 1), 1.0);

  m.set_job_duty_cycle(0, 0.45);
  m.set_job_duty_cycle(1, 0.40);
  // Same offset: the shorter window is fully contained.
  EXPECT_DOUBLE_EQ(m.comm_overlap(0, 1), 0.40);
  // Anti-phased back-to-back (0.45 + 0.40 <= 1): no overlap at all.
  ASSERT_TRUE(m.set_phase_offset(1, 0.45));
  EXPECT_DOUBLE_EQ(m.comm_overlap(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.comm_overlap(1, 0), 0.0);  // symmetric
  // Wrap-around: a window starting at 0.9 covers [0.9, 1) u [0, 0.3),
  // intersecting job 0's [0, 0.45) in the wrapped part only.
  ASSERT_TRUE(m.set_phase_offset(1, 0.9));
  EXPECT_NEAR(m.comm_overlap(0, 1), 0.30, 1e-12);

  // Anti-phased jobs stop contending: each sees only its own flow.
  ASSERT_TRUE(m.set_phase_offset(1, 0.45));
  EXPECT_DOUBLE_EQ(m.effective_concurrency(m.nic_link(0), 0), 1.0);
  EXPECT_DOUBLE_EQ(m.flow_bandwidth(0, 0, 1, 4000.0), 1000.0);
}

TEST(LinkModel, SetPhaseOffsetReportsChangesOnly) {
  LinkModel m = racked();
  EXPECT_FALSE(m.set_phase_offset(0, 0.0));  // default is already 0
  EXPECT_TRUE(m.set_phase_offset(0, 0.25));
  EXPECT_FALSE(m.set_phase_offset(0, 0.25));
  EXPECT_DOUBLE_EQ(m.phase_offset(0), 0.25);
}

// ------------------------------------------- incremental bookkeeping

TEST(LinkModel, UpdateIsIdempotentAndRemovalRestoresEmpty) {
  LinkModel once = racked();
  once.update_job_flows(0, {Flow{0, 2}, Flow{1, 2}});

  LinkModel twice = racked();
  twice.update_job_flows(0, {Flow{0, 2}, Flow{1, 2}});
  twice.update_job_flows(0, {Flow{0, 2}, Flow{1, 2}});  // replace with itself
  EXPECT_TRUE(twice.equals(once));

  // Removing the registration leaves a model equal to one that never saw
  // the job (absent registrations compare as empty).
  twice.update_job_flows(0, {});
  EXPECT_TRUE(twice.equals(racked()));
  EXPECT_EQ(twice.total_flows_on(twice.uplink_link(0)), 0u);

  // And re-adding restores full equality with the once-registered model.
  twice.update_job_flows(0, {Flow{0, 2}, Flow{1, 2}});
  EXPECT_TRUE(twice.equals(once));
  EXPECT_TRUE(once.equals(twice));
}

TEST(LinkModel, RandomizedIncrementalMatchesFromScratchRebuild) {
  Rng rng(0x11ce);
  LinkModel live;
  live.reset(6, 2, 900.0, 300.0);  // 3 racks
  constexpr JobId kJobs = 6;
  std::vector<std::vector<Flow>> current(kJobs);
  std::vector<double> duty(kJobs, 1.0), phase(kJobs, 0.0);

  for (int step = 0; step < 300; ++step) {
    const JobId job = static_cast<JobId>(rng.uniform_int(0, kJobs - 1));
    if (rng.bernoulli(0.2)) {
      duty[job] = rng.uniform(0.05, 1.0);
      live.set_job_duty_cycle(job, duty[job]);
    }
    if (rng.bernoulli(0.2)) {
      phase[job] = rng.uniform(0.0, 0.999);
      (void)live.set_phase_offset(job, phase[job]);
    }
    std::vector<Flow> flows;
    const int n = static_cast<int>(rng.uniform_int(0, 4));
    for (int i = 0; i < n; ++i) {
      Flow f;
      f.a = static_cast<ServerId>(rng.uniform_int(0, 5));
      do {
        f.b = static_cast<ServerId>(rng.uniform_int(0, 5));
      } while (f.b == f.a);
      flows.push_back(f);
    }
    current[job] = flows;
    live.update_job_flows(job, std::move(flows));

    // From-scratch rebuild: register everything into a fresh model.
    LinkModel rebuilt;
    rebuilt.reset(6, 2, 900.0, 300.0);
    for (JobId j = 0; j < kJobs; ++j) {
      rebuilt.set_job_duty_cycle(j, duty[j]);
      (void)rebuilt.set_phase_offset(j, phase[j]);
      rebuilt.update_job_flows(j, current[j]);
    }
    ASSERT_TRUE(live.equals(rebuilt)) << "step " << step;
    ASSERT_TRUE(rebuilt.equals(live)) << "step " << step;

    // The share-sum invariant must hold on every link at every step.
    for (std::size_t link = 0; link < live.link_count(); ++link) {
      ASSERT_LE(live.share_sum(link), 1.0 + 1e-9) << "link " << link << " step " << step;
    }
  }
}

TEST(LinkModel, StateRoundTripsThroughSaveRestore) {
  LinkModel live = racked();
  live.update_job_flows(0, {Flow{0, 2}, Flow{2, 0}});
  live.update_job_flows(2, {Flow{1, 3}});  // job 1 left unregistered on purpose
  live.set_job_duty_cycle(0, 0.45);
  (void)live.set_phase_offset(2, 0.45);

  std::ostringstream os(std::ios::binary);
  {
    io::BinWriter w(os);
    live.save_state(w);
  }
  LinkModel twin = racked();
  {
    std::istringstream is(os.str(), std::ios::binary);
    io::BinReader r(is);
    twin.restore_state(r);
  }
  EXPECT_TRUE(twin.equals(live));
  EXPECT_TRUE(live.equals(twin));

  // Lossless: re-saving the restored model reproduces the original bytes.
  std::ostringstream resaved(std::ios::binary);
  {
    io::BinWriter w(resaved);
    twin.save_state(w);
  }
  EXPECT_EQ(resaved.str(), os.str());
}

}  // namespace
}  // namespace mlfs
