// Write-ahead journal container tests (sim/journal.hpp), mirroring the
// snapshot container's negative-direction suite (test_snapshot.cpp):
//
// Positive direction: records round-trip through writer + reader with
// header metadata, sequence numbers and spec payloads intact, across both
// the in-memory and the POSIX file sink.
//
// Negative direction: truncation at *any* byte recovers the clean prefix
// and drops only the torn tail record; any bit flip before the tail record
// is mid-log corruption and throws a structured JournalError naming the
// section and offset; bad magic / version / fingerprint are rejected up
// front; a record behind the clean-shutdown marker and sequence gaps are
// rejected; short writes (disk-full) surface as structured io errors
// instead of silently breaking the zero-loss contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "sim/journal.hpp"
#include "sim/snapshot.hpp"

namespace mlfs {
namespace {

JobSpec sample_spec(int i) {
  JobSpec spec;
  spec.id = 0;  // overwritten at injection
  spec.algorithm = MlAlgorithm::Mlp;
  spec.comm = CommStructure::AllReduce;
  spec.arrival = hours(0.25 * i);
  spec.urgency = 3.0 + i;
  spec.gpu_request = 2;
  spec.max_iterations = 40 + i;
  spec.train_data_mb = 512.0;
  spec.accuracy_requirement = 0.8;
  spec.curve.noise_seed = 11u + static_cast<unsigned>(i);
  spec.seed = 100u + static_cast<unsigned>(i);
  return spec;
}

constexpr std::uint64_t kFp = 0xabcdefu;

std::string sample_journal(int arrivals, bool shutdown) {
  auto sink = std::make_unique<MemoryJournalSink>();
  MemoryJournalSink* mem = sink.get();
  JournalWriter writer(std::move(sink), kFp, /*base_event=*/7, /*first_seq=*/0,
                       FsyncPolicy::GroupCommit, /*group_records=*/2);
  for (int i = 0; i < arrivals; ++i) {
    writer.append_arrival(100u + static_cast<unsigned>(i), static_cast<unsigned>(i),
                          sample_spec(i));
  }
  if (shutdown) writer.append_clean_shutdown(200);
  return mem->bytes();
}

JournalReplay read_bytes(const std::string& bytes, std::uint64_t fingerprint = kFp) {
  std::istringstream is(bytes, std::ios::binary);
  return read_journal(is, fingerprint);
}

std::uint32_t peek_len(const std::string& bytes, std::uint64_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[pos + i])) << (8 * i);
  }
  return v;
}

/// Byte offset of every frame, walked via the length fields.
std::vector<std::uint64_t> frame_starts(const std::string& bytes) {
  std::vector<std::uint64_t> starts;
  std::uint64_t pos = kJournalHeaderBytes;
  while (pos + 8 <= bytes.size()) {
    starts.push_back(pos);
    pos += 8 + peek_len(bytes, pos) + 8;
  }
  return starts;
}

// ---------------------------------------------------------------- positive

TEST(Journal, SpecSerializationRoundTrips) {
  const JobSpec spec = sample_spec(3);
  std::ostringstream os(std::ios::binary);
  {
    io::BinWriter w(os);
    write_job_spec(w, spec);
  }
  std::istringstream is(os.str(), std::ios::binary);
  io::BinReader r(is);
  const JobSpec back = read_job_spec(r);
  EXPECT_EQ(back.id, spec.id);
  EXPECT_EQ(back.algorithm, spec.algorithm);
  EXPECT_EQ(back.comm, spec.comm);
  EXPECT_EQ(back.arrival, spec.arrival);
  EXPECT_EQ(back.urgency, spec.urgency);
  EXPECT_EQ(back.max_iterations, spec.max_iterations);
  EXPECT_EQ(back.gpu_request, spec.gpu_request);
  EXPECT_EQ(back.curve.noise_seed, spec.curve.noise_seed);
  EXPECT_EQ(back.seed, spec.seed);

  // And the round-trip is byte-stable (fingerprint determinism).
  std::ostringstream again(std::ios::binary);
  {
    io::BinWriter w(again);
    write_job_spec(w, back);
  }
  EXPECT_EQ(again.str(), os.str());
}

TEST(Journal, RoundTripsHeaderRecordsAndShutdownMarker) {
  const JournalReplay replay = read_bytes(sample_journal(3, /*shutdown=*/true));
  EXPECT_EQ(replay.fingerprint, kFp);
  EXPECT_EQ(replay.base_event, 7u);
  EXPECT_EQ(replay.first_seq, 0u);
  ASSERT_EQ(replay.records.size(), 4u);
  EXPECT_TRUE(replay.clean_shutdown);
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_EQ(replay.next_seq, 4u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    const JournalRecord& rec = replay.records[i];
    EXPECT_EQ(rec.seq, i);
    EXPECT_EQ(rec.type, JournalRecordType::InjectArrival);
    EXPECT_EQ(rec.event_index, 100u + i);
    EXPECT_EQ(rec.stream_seq, i);
    EXPECT_EQ(rec.spec.seed, 100u + i);
  }
  EXPECT_EQ(replay.records[3].type, JournalRecordType::CleanShutdown);
  EXPECT_EQ(replay.records[3].event_index, 200u);
}

TEST(Journal, HeaderOnlyLogIsValidAndEmpty) {
  const JournalReplay replay = read_bytes(sample_journal(0, false));
  EXPECT_TRUE(replay.records.empty());
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_FALSE(replay.clean_shutdown);
  EXPECT_EQ(replay.next_seq, 0u);
}

TEST(Journal, FileSinkRoundTripsAndReopensForAppend) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mlfs_test_journal_file.wal").string();
  std::filesystem::remove(path);
  {
    JournalWriter writer(std::make_unique<FileJournalSink>(path, /*truncate=*/true), kFp, 0, 0,
                         FsyncPolicy::EveryRecord);
    writer.append_arrival(10, 0, sample_spec(0));
    writer.append_arrival(20, 1, sample_spec(1));
  }
  EXPECT_EQ(read_journal_file(path, kFp).records.size(), 2u);

  // Continuation after recovery: reopen in append mode, no second header.
  {
    JournalWriter writer(std::make_unique<FileJournalSink>(path), kFp, 0, /*first_seq=*/2,
                         FsyncPolicy::GroupCommit, 32, /*write_header=*/false);
    writer.append_arrival(30, 2, sample_spec(2));
    writer.sync();
  }
  const JournalReplay replay = read_journal_file(path, kFp);
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.records[2].seq, 2u);
  EXPECT_EQ(replay.records[2].event_index, 30u);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------- torn tail

TEST(Journal, TruncationAtEveryByteRecoversTheCleanPrefix) {
  const std::string bytes = sample_journal(3, false);
  const std::vector<std::uint64_t> starts = frame_starts(bytes);
  ASSERT_EQ(starts.size(), 3u);

  for (std::uint64_t cut = 0; cut < bytes.size(); ++cut) {
    const std::string prefix = bytes.substr(0, cut);
    if (cut < kJournalHeaderBytes) {
      // The header is written in one synced append; a short header is
      // corruption, never a torn record.
      EXPECT_THROW(read_bytes(prefix), JournalError) << "cut at " << cut;
      continue;
    }
    std::size_t complete = 0;
    while (complete < starts.size() &&
           starts[complete] + 8 + peek_len(bytes, starts[complete]) + 8 <= cut) {
      ++complete;
    }
    const bool on_boundary = complete == starts.size() || starts[complete] == cut;
    JournalReplay replay;
    ASSERT_NO_THROW(replay = read_bytes(prefix)) << "cut at " << cut;
    EXPECT_EQ(replay.records.size(), complete) << "cut at " << cut;
    EXPECT_EQ(replay.torn_tail, !on_boundary) << "cut at " << cut;
    for (std::uint64_t i = 0; i < replay.records.size(); ++i) {
      EXPECT_EQ(replay.records[i].seq, i);
    }
    EXPECT_EQ(replay.next_seq, complete) << "cut at " << cut;
  }
}

TEST(Journal, CorruptTailRecordIsDroppedNotFatal) {
  const std::string bytes = sample_journal(3, false);
  const std::vector<std::uint64_t> starts = frame_starts(bytes);
  const std::uint64_t tail = starts.back();

  // Any flip in the tail record must never be silently accepted: the frame
  // header bytes (one atomic append, can't tear) reject as corruption, the
  // payload/crc bytes degrade to a dropped torn tail.
  for (std::uint64_t i = tail; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x10);
    try {
      const JournalReplay replay = read_bytes(corrupt);
      EXPECT_TRUE(replay.torn_tail) << "flipped byte " << i;
      EXPECT_EQ(replay.records.size(), 2u) << "flipped byte " << i;
      EXPECT_EQ(replay.torn_offset, tail) << "flipped byte " << i;
    } catch (const JournalError& e) {
      EXPECT_LT(i, tail + 8) << "flipped byte " << i << ": " << e.what();
    }
  }
}

// ---------------------------------------------------------------- corruption

TEST(Journal, AnyBitFlipBeforeTheTailRecordRejected) {
  const std::string bytes = sample_journal(3, false);
  const std::uint64_t tail = frame_starts(bytes).back();
  for (std::uint64_t i = 0; i < tail; ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x10);
    if (i >= 20 && i < 28) {
      // The header's base_event field carries no checksum of its own; it is
      // validated one level up, against the snapshot the segment is keyed
      // to (exp/durable.cpp). The flip must still be *visible*.
      EXPECT_NE(read_bytes(corrupt).base_event, 7u) << "flipped byte " << i;
      continue;
    }
    EXPECT_THROW(read_bytes(corrupt), JournalError) << "flipped byte " << i;
  }
}

TEST(Journal, BadMagicNamesHeaderAtOffsetZero) {
  std::string bytes = sample_journal(1, false);
  bytes[0] = 'X';
  try {
    read_bytes(bytes);
    FAIL() << "bad magic accepted";
  } catch (const JournalError& e) {
    EXPECT_EQ(e.section(), "header");
    EXPECT_EQ(e.offset(), 0u);
    EXPECT_NE(std::string(e.what()).find("journal rejected"), std::string::npos);
  }
}

TEST(Journal, UnsupportedVersionRejected) {
  std::string bytes = sample_journal(1, false);
  bytes[8] = static_cast<char>(kJournalVersion + 1);
  try {
    read_bytes(bytes);
    FAIL() << "future version accepted";
  } catch (const JournalError& e) {
    EXPECT_EQ(e.section(), "header");
    EXPECT_EQ(e.offset(), 8u);
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(Journal, FingerprintMismatchRejected) {
  try {
    read_bytes(sample_journal(1, false), /*fingerprint=*/0x1234u);
    FAIL() << "fingerprint mismatch accepted";
  } catch (const JournalError& e) {
    EXPECT_EQ(e.section(), "header");
    EXPECT_EQ(e.offset(), 12u);
    EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos);
  }
}

TEST(Journal, RecordAfterCleanShutdownRejected) {
  auto sink = std::make_unique<MemoryJournalSink>();
  MemoryJournalSink* mem = sink.get();
  JournalWriter writer(std::move(sink), kFp, 0, 0);
  writer.append_arrival(10, 0, sample_spec(0));
  writer.append_clean_shutdown(50);
  writer.append_arrival(60, 1, sample_spec(1));  // illegal continuation
  try {
    read_bytes(mem->bytes());
    FAIL() << "record after clean shutdown accepted";
  } catch (const JournalError& e) {
    EXPECT_EQ(e.section(), "record");
    EXPECT_NE(std::string(e.what()).find("clean-shutdown"), std::string::npos);
  }
}

TEST(Journal, SequenceGapRejected) {
  const std::string bytes = sample_journal(3, false);
  const std::vector<std::uint64_t> starts = frame_starts(bytes);
  // Splice the middle record out: framing and checksums stay valid, the
  // sequence numbers no longer increase by one.
  const std::string spliced =
      bytes.substr(0, starts[1]) + bytes.substr(starts[2]);
  try {
    read_bytes(spliced);
    FAIL() << "sequence gap accepted";
  } catch (const JournalError& e) {
    EXPECT_EQ(e.section(), "record");
    EXPECT_NE(std::string(e.what()).find("sequence gap"), std::string::npos);
  }
}

TEST(Journal, ImplausibleRecordLengthRejected) {
  // A huge length with a *valid* length checksum (e.g. hand-rolled bytes)
  // must be rejected by the plausibility bound, not drive an allocation.
  std::string bytes = sample_journal(0, false);
  const std::uint32_t len = kMaxJournalRecordBytes + 1;
  char frame[8];
  for (int i = 0; i < 4; ++i) frame[i] = static_cast<char>((len >> (8 * i)) & 0xff);
  const std::uint64_t h = fnv1a(frame, 4);
  const auto hcrc = static_cast<std::uint32_t>(h ^ (h >> 32));
  for (int i = 0; i < 4; ++i) frame[4 + i] = static_cast<char>((hcrc >> (8 * i)) & 0xff);
  bytes.append(frame, sizeof(frame));
  try {
    read_bytes(bytes);
    FAIL() << "implausible length accepted";
  } catch (const JournalError& e) {
    EXPECT_EQ(e.section(), "record");
    EXPECT_NE(std::string(e.what()).find("implausible"), std::string::npos);
  }
}

// ------------------------------------------------------------- write failure

TEST(Journal, DiskFullShortWriteSurfacesAsStructuredIoError) {
  // Budget for the header plus one full record; the second append must
  // throw with errno-style context instead of silently dropping bytes.
  const std::string intact = sample_journal(1, false);
  auto sink = std::make_unique<MemoryJournalSink>(intact.size() + 10);
  MemoryJournalSink* mem = sink.get();
  JournalWriter writer(std::move(sink), kFp, 7, 0, FsyncPolicy::GroupCommit, 2);
  writer.append_arrival(100, 0, sample_spec(0));
  try {
    writer.append_arrival(101, 1, sample_spec(1));
    FAIL() << "short write swallowed";
  } catch (const JournalError& e) {
    EXPECT_EQ(e.section(), "io");
    EXPECT_NE(std::string(e.what()).find("No space left"), std::string::npos);
  }
  // The on-disk prefix is exactly a torn tail: recovery keeps record 0.
  const JournalReplay replay = read_bytes(mem->bytes());
  EXPECT_TRUE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].event_index, 100u);
}

TEST(Journal, DiskFullDuringHeaderFailsConstruction) {
  EXPECT_THROW(JournalWriter(std::make_unique<MemoryJournalSink>(10), kFp, 0, 0),
               JournalError);
}

// Snapshot-side write hardening (same satellite): a failing output stream
// must surface as a structured io SnapshotError, not a silent bad file.
TEST(SnapshotWriteHardening, FailingStreamThrowsStructuredIoError) {
  SnapshotWriter writer(0xfeedu);
  writer.section("alpha").u64(42);
  std::ostringstream os(std::ios::binary);
  os.setstate(std::ios::badbit);
  try {
    writer.write(os);
    FAIL() << "write to failed stream accepted";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.section(), "io");
  }
}

}  // namespace
}  // namespace mlfs
