// Snapshot container + per-subsystem round-trip tests (sim/snapshot.hpp,
// SimEngine::{save,restore}_snapshot).
//
// Positive direction: each stateful subsystem re-serializes to identical
// bytes after a save → restore-into-fresh-instance cycle (the strongest
// cheap equivalence: serialize(restore(serialize(x))) == serialize(x)), and
// a whole engine snapshot is idempotent mid-run.
//
// Negative direction: every corruption mode — truncation at any byte, any
// single-bit flip, bad magic, bad version, fingerprint mismatch, trailing
// garbage — is rejected up front with a structured SnapshotError naming the
// failing section and offset, and a failed restore leaves the target engine
// untouched (never a partial restore).
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>

#include "common/rng.hpp"
#include "exp/restore_check.hpp"
#include "exp/runner.hpp"
#include "rl/reinforce.hpp"
#include "sim/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/health.hpp"
#include "sim/snapshot.hpp"
#include "workload/model_zoo.hpp"

namespace mlfs {
namespace {

// ---------------------------------------------------------------- container

std::string write_sample(std::uint64_t fingerprint = 0xfeedu) {
  SnapshotWriter writer(fingerprint);
  auto& a = writer.section("alpha");
  a.u64(42);
  a.f64(2.5);
  auto& b = writer.section("beta");
  b.str("payload");
  std::ostringstream os(std::ios::binary);
  writer.write(os);
  return os.str();
}

std::string patch_checksum(std::string bytes) {
  const std::uint64_t sum = fnv1a(bytes.data(), bytes.size() - 8);
  for (int i = 0; i < 8; ++i) {
    bytes[bytes.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<char>((sum >> (8 * i)) & 0xff);
  }
  return bytes;
}

TEST(SnapshotContainer, RoundTripsSectionsVersionAndFingerprint) {
  const std::string bytes = write_sample(0xfeedu);
  std::istringstream is(bytes, std::ios::binary);
  SnapshotReader reader(is, 0xfeedu);
  EXPECT_EQ(reader.version(), kSnapshotVersion);
  EXPECT_EQ(reader.fingerprint(), 0xfeedu);
  ASSERT_TRUE(reader.has_section("alpha"));
  ASSERT_TRUE(reader.has_section("beta"));
  EXPECT_FALSE(reader.has_section("gamma"));

  auto alpha = reader.section("alpha");
  io::BinReader ra(alpha);
  EXPECT_EQ(ra.u64(), 42u);
  EXPECT_DOUBLE_EQ(ra.f64(), 2.5);
  auto beta = reader.section("beta");
  io::BinReader rb(beta);
  EXPECT_EQ(rb.str(), "payload");
}

TEST(SnapshotContainer, MissingSectionIsStructuredError) {
  const std::string bytes = write_sample();
  std::istringstream is(bytes, std::ios::binary);
  SnapshotReader reader(is, 0xfeedu);
  try {
    reader.section("gamma");
    FAIL() << "missing section accepted";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.section(), "gamma");
    EXPECT_NE(std::string(e.what()).find("snapshot rejected"), std::string::npos);
  }
}

TEST(SnapshotContainer, TruncationAtEveryByteRejected) {
  const std::string bytes = write_sample();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::istringstream is(bytes.substr(0, len), std::ios::binary);
    EXPECT_THROW(SnapshotReader(is, 0xfeedu), SnapshotError) << "prefix length " << len;
  }
}

TEST(SnapshotContainer, AnySingleBitFlipRejected) {
  const std::string bytes = write_sample();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x20);
    std::istringstream is(corrupt, std::ios::binary);
    EXPECT_THROW(SnapshotReader(is, 0xfeedu), SnapshotError) << "flipped byte " << i;
  }
}

TEST(SnapshotContainer, BadMagicNamesHeaderAtOffsetZero) {
  std::string bytes = write_sample();
  bytes[0] = 'X';
  std::istringstream is(bytes, std::ios::binary);
  try {
    SnapshotReader reader(is, 0xfeedu);
    FAIL() << "bad magic accepted";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.section(), "header");
    EXPECT_EQ(e.offset(), 0u);
  }
}

TEST(SnapshotContainer, UnsupportedVersionRejectedEvenWithValidChecksum) {
  std::string bytes = write_sample();
  // Patch version (bytes 8..11, little-endian) and re-checksum so only the
  // version check can fire.
  bytes[8] = static_cast<char>(kSnapshotVersion + 1);
  bytes = patch_checksum(std::move(bytes));
  std::istringstream is(bytes, std::ios::binary);
  try {
    SnapshotReader reader(is, 0xfeedu);
    FAIL() << "future version accepted";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.section(), "header");
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(SnapshotContainer, PreV4FilesRejected) {
  // Older files predate state the current reader depends on (v3 added the
  // "predict" section, v4 the conditional "links" section and the engine's
  // link-contention counters); every past version must be rejected up
  // front instead of hitting a missing section mid-restore.
  std::string bytes = write_sample();
  for (int version = 1; version < static_cast<int>(kSnapshotVersion); ++version) {
    bytes[8] = static_cast<char>(version);
    bytes = patch_checksum(std::move(bytes));
    std::istringstream is(bytes, std::ios::binary);
    try {
      SnapshotReader reader(is, 0xfeedu);
      FAIL() << "pre-v4 snapshot (v" << version << ") accepted";
    } catch (const SnapshotError& e) {
      EXPECT_EQ(e.section(), "header");
      EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }
  }
}

TEST(SnapshotContainer, FingerprintMismatchRejected) {
  const std::string bytes = write_sample(0xfeedu);
  std::istringstream is(bytes, std::ios::binary);
  try {
    SnapshotReader reader(is, 0xbeefu);
    FAIL() << "fingerprint mismatch accepted";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.section(), "header");
    EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos);
  }
}

TEST(SnapshotContainer, TrailingGarbageRejected) {
  std::string bytes = write_sample();
  bytes += "junk";
  std::istringstream is(bytes, std::ios::binary);
  EXPECT_THROW(SnapshotReader(is, 0xfeedu), SnapshotError);
}

// ----------------------------------------------------- subsystem round-trips

JobSpec snapshot_spec(int gpus) {
  JobSpec spec;
  spec.id = 0;
  spec.algorithm = MlAlgorithm::Mlp;
  spec.comm = CommStructure::AllReduce;
  spec.gpu_request = gpus;
  spec.max_iterations = 50;
  spec.seed = 3;
  return spec;
}

TEST(SnapshotSubsystems, ClusterStateReserializesIdentically) {
  ClusterConfig config;
  config.server_count = 3;
  config.gpus_per_server = 2;
  config.servers_per_rack = 2;
  Cluster cluster(config);
  auto inst = ModelZoo::instantiate(snapshot_spec(2), 0);
  cluster.register_job(std::move(inst.job), std::move(inst.tasks));
  cluster.place_task(0, 0, 0);
  cluster.place_task(1, 1, 0);
  cluster.set_server_up(2, false);
  cluster.set_placement_cap(1, 1);

  std::ostringstream first(std::ios::binary);
  {
    io::BinWriter w(first);
    cluster.save_state(w);
  }

  // Fresh cluster, identical construction path, then restore.
  Cluster twin(config);
  auto twin_inst = ModelZoo::instantiate(snapshot_spec(2), 0);
  twin.register_job(std::move(twin_inst.job), std::move(twin_inst.tasks));
  {
    std::istringstream is(first.str(), std::ios::binary);
    io::BinReader r(is);
    twin.restore_state(r);
  }
  EXPECT_EQ(twin.up_server_count(), cluster.up_server_count());
  EXPECT_EQ(twin.task(0).server, cluster.task(0).server);

  std::ostringstream second(std::ios::binary);
  {
    io::BinWriter w(second);
    twin.save_state(w);
  }
  EXPECT_EQ(first.str(), second.str());
}

TEST(SnapshotSubsystems, HealthTrackerReserializesIdentically) {
  RecoveryConfig config;
  config.enabled = true;
  config.quarantine_enabled = true;
  ServerHealthTracker tracker(config, 4);
  tracker.record_crash(1, hours(1.0));
  tracker.record_task_kill(1, hours(1.5));
  tracker.record_crash(2, hours(2.0));
  tracker.record_recovery(1, hours(2.5));
  tracker.try_quarantine(1, hours(2.5));
  (void)tracker.advance(hours(3.0));

  std::ostringstream first(std::ios::binary);
  {
    io::BinWriter w(first);
    tracker.save_state(w);
  }
  ServerHealthTracker twin(config, 4);
  {
    std::istringstream is(first.str(), std::ios::binary);
    io::BinReader r(is);
    twin.restore_state(r);
  }
  // Lazy-decay arithmetic must match bit-exactly at any later query time.
  EXPECT_EQ(twin.score(1, hours(5.0)), tracker.score(1, hours(5.0)));
  EXPECT_EQ(twin.health(1), tracker.health(1));
  EXPECT_EQ(twin.quarantines(), tracker.quarantines());

  std::ostringstream second(std::ios::binary);
  {
    io::BinWriter w(second);
    twin.save_state(w);
  }
  EXPECT_EQ(first.str(), second.str());
}

TEST(SnapshotSubsystems, RngStreamResumesExactly) {
  Rng rng(99);
  for (int i = 0; i < 37; ++i) (void)rng.next_u64();
  const auto state = rng.state();
  Rng twin(1);  // different seed: state transplant must fully override it
  twin.set_state(state);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(twin.next_u64(), rng.next_u64());
}

// ------------------------------------------------------------ engine level

exp::RunRequest engine_request() {
  exp::RunRequest r;
  r.label = "snapshot-unit";
  r.cluster.server_count = 3;
  r.cluster.gpus_per_server = 4;
  r.cluster.servers_per_rack = 2;
  r.engine.seed = 17;
  r.engine.max_sim_time = hours(48.0);
  r.engine.fault.server_mtbf_hours = 24.0;
  r.engine.fault.task_kill_probability = 0.002;
  r.engine.recovery.enabled = true;
  r.engine.audit.enabled = true;
  r.engine.audit.stride = 1;
  r.trace.num_jobs = 8;
  r.trace.duration_hours = 1.0;
  r.trace.seed = 5;
  r.trace.max_gpu_request = 6;
  r.scheduler = "MLFS";
  return r;
}

std::string engine_snapshot_bytes(const SimEngine& engine) {
  std::ostringstream os(std::ios::binary);
  engine.save_snapshot(os);
  return os.str();
}

TEST(SnapshotEngine, MidRunSnapshotIsIdempotent) {
  exp::EngineBundle donor = exp::build_engine(engine_request());
  for (int i = 0; i < 100 && donor.engine->step(); ++i) {
  }
  const std::string first = engine_snapshot_bytes(*donor.engine);

  exp::EngineBundle twin = exp::build_engine(engine_request());
  {
    std::istringstream is(first, std::ios::binary);
    twin.engine->restore_snapshot(is);
  }
  EXPECT_EQ(twin.engine->events_processed(), donor.engine->events_processed());
  EXPECT_EQ(twin.engine->event_stream_hash(), donor.engine->event_stream_hash());
  // save → restore → save yields byte-identical files: event queue order,
  // RNG streams, metrics accumulators and scheduler state all round-trip.
  EXPECT_EQ(engine_snapshot_bytes(*twin.engine), first);
}

TEST(SnapshotEngine, CorruptRestoreLeavesEngineUntouched) {
  exp::EngineBundle donor = exp::build_engine(engine_request());
  for (int i = 0; i < 120 && donor.engine->step(); ++i) {
  }
  std::string corrupt = engine_snapshot_bytes(*donor.engine);
  corrupt[corrupt.size() / 2] = static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x01);

  // Reference: an untouched engine of the same request, stepped identically.
  exp::EngineBundle reference = exp::build_engine(engine_request());
  for (int i = 0; i < 40 && reference.engine->step(); ++i) {
  }
  exp::EngineBundle victim = exp::build_engine(engine_request());
  for (int i = 0; i < 40 && victim.engine->step(); ++i) {
  }
  {
    std::istringstream is(corrupt, std::ios::binary);
    EXPECT_THROW(victim.engine->restore_snapshot(is), SnapshotError);
  }
  // The failed restore must not have mutated anything: the victim finishes
  // its run bit-identically to the reference.
  while (reference.engine->step()) {
  }
  while (victim.engine->step()) {
  }
  const RunMetrics expected = reference.engine->finalize();
  const RunMetrics actual = victim.engine->finalize();
  EXPECT_TRUE(deterministic_equal(expected, actual));
  EXPECT_EQ(expected.event_stream_hash, actual.event_stream_hash);
}

TEST(SnapshotEngine, RestoreFromWrongConfigRejected) {
  exp::EngineBundle donor = exp::build_engine(engine_request());
  for (int i = 0; i < 50 && donor.engine->step(); ++i) {
  }
  const std::string bytes = engine_snapshot_bytes(*donor.engine);

  exp::RunRequest other = engine_request();
  other.trace.num_jobs = 9;  // different workload => different fingerprint
  exp::EngineBundle victim = exp::build_engine(other);
  std::istringstream is(bytes, std::ios::binary);
  EXPECT_THROW(victim.engine->restore_snapshot(is), SnapshotError);
}

// -------------------------------------------------- v4: link contention

exp::RunRequest contended_engine_request() {
  exp::RunRequest r = engine_request();
  r.label = "snapshot-links";
  r.cluster.link_contention = true;
  r.cluster.duty_cycles = true;
  r.cluster.nic_capacity_mbps = 800.0;
  r.cluster.rack_uplink_capacity_mbps = 120.0;
  return r;
}

TEST(SnapshotEngine, MidCongestionSnapshotIsIdempotent) {
  // Contention + duty cycles on: the snapshot carries the v4 "links"
  // section (flow sets, duty cycles, phase offsets) and the engine's link
  // counters. Cut mid-run, restore into a fresh engine, demand the same
  // position and a byte-identical re-save.
  exp::EngineBundle donor = exp::build_engine(contended_engine_request());
  for (int i = 0; i < 150 && donor.engine->step(); ++i) {
  }
  const std::string first = engine_snapshot_bytes(*donor.engine);

  exp::EngineBundle twin = exp::build_engine(contended_engine_request());
  {
    std::istringstream is(first, std::ios::binary);
    twin.engine->restore_snapshot(is);
  }
  EXPECT_EQ(twin.engine->events_processed(), donor.engine->events_processed());
  EXPECT_EQ(twin.engine->event_stream_hash(), donor.engine->event_stream_hash());
  EXPECT_EQ(engine_snapshot_bytes(*twin.engine), first);

  // And the resumed run finishes bit-identically to the uninterrupted one,
  // link metrics included (deterministic_equal covers them).
  while (donor.engine->step()) {
  }
  while (twin.engine->step()) {
  }
  const RunMetrics expected = donor.engine->finalize();
  const RunMetrics actual = twin.engine->finalize();
  EXPECT_TRUE(deterministic_equal(expected, actual));
}

TEST(SnapshotEngine, ContentionConfigMismatchRejected) {
  // A snapshot taken with the link model on cannot restore into an engine
  // configured without it (and vice versa): the contention fields are part
  // of the config fingerprint, and the "links" section presence must match
  // the target config.
  exp::EngineBundle donor = exp::build_engine(contended_engine_request());
  for (int i = 0; i < 50 && donor.engine->step(); ++i) {
  }
  const std::string bytes = engine_snapshot_bytes(*donor.engine);

  exp::RunRequest off = contended_engine_request();
  off.cluster.link_contention = false;
  off.cluster.duty_cycles = false;
  exp::EngineBundle victim = exp::build_engine(off);
  {
    std::istringstream is(bytes, std::ios::binary);
    EXPECT_THROW(victim.engine->restore_snapshot(is), SnapshotError);
  }

  exp::EngineBundle plain = exp::build_engine(off);
  for (int i = 0; i < 50 && plain.engine->step(); ++i) {
  }
  const std::string plain_bytes = engine_snapshot_bytes(*plain.engine);
  exp::EngineBundle contended_victim = exp::build_engine(contended_engine_request());
  std::istringstream is(plain_bytes, std::ios::binary);
  EXPECT_THROW(contended_victim.engine->restore_snapshot(is), SnapshotError);
}

// ------------------------------------------- regression: stateful fixes

// The MLF-H placement memo (comm-cost cache) must round-trip, not merely be
// invalidated: its hit/miss counters feed SchedStats, so a restore that
// dropped the memo would drift comm_cache_hits vs the uninterrupted run.
TEST(SnapshotRegression, PlacementMemoCountersSurviveRestore) {
  exp::RunRequest request = engine_request();
  request.scheduler = "MLF-H";
  const auto result = exp::check_restore_equivalence(request, 0x1234567ull);
  ASSERT_TRUE(result.equivalent) << result.detail;
  EXPECT_EQ(result.restored.comm_cache_hits, result.reference.comm_cache_hits);
  EXPECT_EQ(result.restored.candidates_scanned, result.reference.candidates_scanned);
}

// The prediction service's curve-fit caches must round-trip: a restore
// that dropped the chains would refit them (different fits_cold /
// nm_objective_evals than the uninterrupted run — deterministic_equal
// would catch it), and one that mangled them would change OptStop
// decisions downstream.
TEST(SnapshotRegression, PredictionServiceCacheSurvivesRestore) {
  exp::RunRequest request = engine_request();
  request.trace.num_jobs = 16;  // enough draws for several OptStop jobs
  const auto result = exp::check_restore_equivalence(request, 0x7654321ull);
  ASSERT_TRUE(result.equivalent) << result.detail;
  // The workload's policy mix (30% OptStop) must actually have exercised
  // the fit chains, or this test proves nothing.
  EXPECT_GT(result.reference.fits_cold + result.reference.fits_warm, 0u);
  EXPECT_EQ(result.restored.fits_cold, result.reference.fits_cold);
  EXPECT_EQ(result.restored.fits_warm, result.reference.fits_warm);
  EXPECT_EQ(result.restored.prediction_cache_hits, result.reference.prediction_cache_hits);
  EXPECT_EQ(result.restored.nm_objective_evals, result.reference.nm_objective_evals);
}

// A policy agent's save_state must capture network parameters, optimizer
// moments AND the action-sampling RNG — save()/load() (text checkpoints)
// deliberately drop the latter two, which a resumed training run cannot
// afford.
TEST(SnapshotRegression, ReinforceAgentFullStateRoundTrips) {
  rl::ReinforceConfig config;
  config.state_dim = 4;
  config.action_dim = 3;
  config.hidden = {8};
  config.seed = 21;
  rl::ReinforceAgent agent(config);
  // Burn RNG draws so the stream is mid-sequence.
  const std::vector<double> state = {0.1, -0.2, 0.3, 0.4};
  for (int i = 0; i < 17; ++i) (void)agent.act(state);

  std::ostringstream saved(std::ios::binary);
  agent.save_state(saved);

  rl::ReinforceAgent twin(config);
  (void)twin.act(state);  // desynchronize before restore
  {
    std::istringstream is(saved.str(), std::ios::binary);
    twin.restore_state(is);
  }
  for (int i = 0; i < 32; ++i) EXPECT_EQ(twin.act(state), agent.act(state));

  // And the restore is lossless: re-saving reproduces the original bytes.
  {
    std::istringstream is(saved.str(), std::ios::binary);
    twin.restore_state(is);
  }
  std::ostringstream resaved(std::ios::binary);
  twin.save_state(resaved);
  EXPECT_EQ(resaved.str(), saved.str());
}

}  // namespace
}  // namespace mlfs
