// Engine observability: the JSONL event log captures every lifecycle
// transition, consistently with the run's metrics, and replays identically.
#include "sim/event_log.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sched/util.hpp"
#include "sim/engine.hpp"
#include "workload/trace.hpp"

namespace mlfs {
namespace {

class GreedyScheduler : public Scheduler {
 public:
  std::string name() const override { return "greedy-test"; }
  void schedule(SchedulerContext& ctx) override {
    for (const TaskId tid : sched::live_queue(ctx)) {
      if (ctx.cluster.task(tid).state != TaskState::Queued) continue;
      sched::place_job_gang(ctx, tid, sched::least_loaded_placement);
    }
  }
};

std::vector<JobSpec> trace(std::size_t jobs, std::uint64_t seed) {
  TraceConfig config;
  config.num_jobs = jobs;
  config.duration_hours = 3.0;
  config.seed = seed;
  config.max_gpu_request = 8;
  config.max_iterations = 30;
  return PhillyTraceGenerator(config).generate();
}

std::string run_logged(std::size_t jobs, std::uint64_t seed, RunMetrics* metrics = nullptr) {
  ClusterConfig cc;
  cc.server_count = 4;
  cc.gpus_per_server = 4;
  GreedyScheduler scheduler;
  SimEngine engine(cc, {}, trace(jobs, seed), scheduler);
  std::ostringstream out;
  JsonlEventLog log(out);
  engine.set_observer(&log);
  const RunMetrics m = engine.run();
  if (metrics != nullptr) *metrics = m;
  return out.str();
}

std::size_t count_events(const std::string& log, const std::string& event) {
  const std::string needle = "\"event\":\"" + event + "\"";
  std::size_t count = 0;
  for (std::size_t pos = log.find(needle); pos != std::string::npos;
       pos = log.find(needle, pos + 1)) {
    ++count;
  }
  return count;
}

TEST(EventLog, LifecycleCountsMatchMetrics) {
  RunMetrics metrics;
  const std::string log = run_logged(15, 3, &metrics);
  EXPECT_EQ(count_events(log, "job_arrival"), 15u);
  EXPECT_EQ(count_events(log, "job_complete"), 15u);
  EXPECT_EQ(count_events(log, "iteration_complete"), metrics.iterations_run);
  EXPECT_EQ(count_events(log, "task_preempted"), metrics.preemptions);
  EXPECT_EQ(count_events(log, "task_migrated"), metrics.migrations);
  // Every job started at least once.
  EXPECT_GE(count_events(log, "job_started"), 15u);
  // Placements at least cover every task once.
  EXPECT_GE(count_events(log, "task_placed"), 15u);
}

TEST(EventLog, LinesAreWellFormedJsonObjects) {
  const std::string log = run_logged(8, 7);
  std::istringstream lines(log);
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"t\":"), std::string::npos);
    EXPECT_NE(line.find("\"event\":\""), std::string::npos);
    ++n;
  }
  EXPECT_GT(n, 20u);
}

TEST(EventLog, DeterministicReplayProducesIdenticalLog) {
  EXPECT_EQ(run_logged(12, 11), run_logged(12, 11));
}

TEST(EventLog, TimesAreMonotonicallyNonDecreasing) {
  const std::string log = run_logged(10, 13);
  std::istringstream lines(log);
  std::string line;
  double last = -1.0;
  while (std::getline(lines, line)) {
    const auto start = line.find("\"t\":") + 4;
    const double t = std::stod(line.substr(start, line.find(',') - start));
    EXPECT_GE(t, last);
    last = t;
  }
}

TEST(EventLog, GoldenStringsForLifecycleAndFaultEvents) {
  std::ostringstream out;
  JsonlEventLog log(out);
  log.on_task_migrated(15.5, 42, 1, 2);
  log.on_task_preempted(16.0, 42);
  log.on_task_released(16.5, 43);
  log.on_server_down(20.25, 3);
  log.on_task_killed(20.25, 7);
  log.on_server_up(21.0, 3);
  EXPECT_EQ(log.events_written(), 6u);
  EXPECT_EQ(out.str(),
            "{\"t\":15.5,\"event\":\"task_migrated\",\"task\":42,\"from\":1,\"to\":2}\n"
            "{\"t\":16,\"event\":\"task_preempted\",\"task\":42}\n"
            "{\"t\":16.5,\"event\":\"task_released\",\"task\":43}\n"
            "{\"t\":20.25,\"event\":\"server_down\",\"server\":3}\n"
            "{\"t\":20.25,\"event\":\"task_killed\",\"task\":7}\n"
            "{\"t\":21,\"event\":\"server_up\",\"server\":3}\n");
}

TEST(EventLog, FaultEventCountsMatchMetrics) {
  ClusterConfig cc;
  cc.server_count = 4;
  cc.gpus_per_server = 4;
  EngineConfig ec;
  ec.fault.server_mtbf_hours = 5.0;
  ec.fault.server_mttr_hours = 0.25;
  ec.fault.task_kill_probability = 5e-4;
  GreedyScheduler scheduler;
  SimEngine engine(cc, ec, trace(12, 19), scheduler);
  std::ostringstream out;
  JsonlEventLog log(out);
  engine.set_observer(&log);
  const RunMetrics m = engine.run();
  EXPECT_GT(m.server_failures, 0u);
  EXPECT_EQ(count_events(out.str(), "server_down"), m.server_failures);
  // task_killed covers crash evictions and transient kills alike.
  EXPECT_EQ(count_events(out.str(), "task_killed"), m.crash_evictions + m.task_kills);
}

TEST(EventLog, CountsExposed) {
  std::ostringstream out;
  JsonlEventLog log(out);
  EXPECT_EQ(log.events_written(), 0u);
  log.on_job_arrival(1.0, 0);
  log.on_task_placed(2.0, 3, 1, 0);
  EXPECT_EQ(log.events_written(), 2u);
  EXPECT_EQ(out.str(),
            "{\"t\":1,\"event\":\"job_arrival\",\"job\":0}\n"
            "{\"t\":2,\"event\":\"task_placed\",\"task\":3,\"server\":1,\"gpu\":0}\n");
}

}  // namespace
}  // namespace mlfs
