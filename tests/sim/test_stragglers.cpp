// Straggler model + replica mitigation (§3.3.3 / paper future work):
// stragglers lengthen JCT; replicas claw most of it back at a bandwidth
// premium ("more replicas can better avoid straggler occurrence but
// generate more overhead").
#include <gtest/gtest.h>

#include "sched/util.hpp"
#include "sim/engine.hpp"
#include "workload/trace.hpp"

namespace mlfs {
namespace {

class GreedyScheduler : public Scheduler {
 public:
  std::string name() const override { return "greedy-test"; }
  void schedule(SchedulerContext& ctx) override {
    for (const TaskId tid : sched::live_queue(ctx)) {
      if (ctx.cluster.task(tid).state != TaskState::Queued) continue;
      sched::place_job_gang(ctx, tid, sched::least_loaded_placement);
    }
  }
};

RunMetrics run_with(double straggler_probability, int replicas) {
  TraceConfig tc;
  tc.num_jobs = 25;
  tc.duration_hours = 4.0;
  tc.seed = 77;
  tc.max_gpu_request = 8;
  tc.max_iterations = 40;
  ClusterConfig cc;
  cc.server_count = 4;
  cc.gpus_per_server = 4;
  EngineConfig ec;
  ec.straggler_probability = straggler_probability;
  ec.straggler_slowdown = 4.0;
  ec.straggler_replicas = replicas;
  GreedyScheduler scheduler;
  SimEngine engine(cc, ec, PhillyTraceGenerator(tc).generate(), scheduler);
  return engine.run();
}

TEST(Stragglers, SlowdownLengthensJct) {
  const RunMetrics clean = run_with(0.0, 0);
  const RunMetrics straggly = run_with(0.15, 0);
  EXPECT_GT(straggly.average_jct_minutes(), clean.average_jct_minutes());
}

TEST(Stragglers, ReplicasMitigateAtBandwidthCost) {
  const RunMetrics unmitigated = run_with(0.15, 0);
  const RunMetrics mitigated = run_with(0.15, 2);
  // First-copy-wins cuts the straggler tax...
  EXPECT_LT(mitigated.average_jct_minutes(), unmitigated.average_jct_minutes());
  // ...but replicas ship extra output every iteration.
  EXPECT_GT(mitigated.bandwidth_tb, unmitigated.bandwidth_tb);
}

TEST(Stragglers, MoreReplicasMonotonicallyCloserToClean) {
  const double clean = run_with(0.0, 0).average_jct_minutes();
  const double r0 = run_with(0.2, 0).average_jct_minutes();
  const double r3 = run_with(0.2, 3).average_jct_minutes();
  EXPECT_LT(r3, r0);
  // With 3 backups a 20% straggler rate is almost fully absorbed
  // (probability all four copies straggle: 0.2^4 = 0.16%).
  EXPECT_LT(r3 - clean, 0.25 * (r0 - clean) + 1e-9);
}

TEST(Stragglers, DeterministicPerSeed) {
  const RunMetrics a = run_with(0.1, 1);
  const RunMetrics b = run_with(0.1, 1);
  EXPECT_DOUBLE_EQ(a.average_jct_minutes(), b.average_jct_minutes());
  EXPECT_DOUBLE_EQ(a.bandwidth_tb, b.bandwidth_tb);
}

}  // namespace
}  // namespace mlfs
