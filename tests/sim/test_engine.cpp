#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "sched/fair.hpp"
#include "sched/util.hpp"
#include "workload/trace.hpp"

namespace mlfs {
namespace {

/// Minimal greedy scheduler for engine tests: gang-places jobs FIFO onto
/// the least-loaded feasible server.
class GreedyScheduler : public Scheduler {
 public:
  std::string name() const override { return "greedy-test"; }
  void schedule(SchedulerContext& ctx) override {
    for (const TaskId tid : sched::live_queue(ctx)) {
      if (ctx.cluster.task(tid).state != TaskState::Queued) continue;
      sched::place_job_gang(ctx, tid, sched::least_loaded_placement);
    }
  }
};

ClusterConfig four_by_four() {
  ClusterConfig c;
  c.server_count = 4;
  c.gpus_per_server = 4;
  return c;
}

std::vector<JobSpec> small_trace(std::size_t jobs, std::uint64_t seed = 21) {
  TraceConfig config;
  config.num_jobs = jobs;
  config.duration_hours = 6.0;
  config.seed = seed;
  config.max_gpu_request = 8;
  config.max_iterations = 40;
  return PhillyTraceGenerator(config).generate();
}

TEST(SimEngine, AllJobsCompleteOnSmallWorkload) {
  GreedyScheduler scheduler;
  SimEngine engine(four_by_four(), {}, small_trace(30), scheduler);
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.job_count, 30u);
  EXPECT_EQ(m.jct_minutes.count(), 30u);
  for (const Job& job : engine.cluster().jobs()) {
    EXPECT_TRUE(job.done());
    EXPECT_GE(job.completion_time(), job.spec().arrival);
  }
}

TEST(SimEngine, JctAtLeastIdealExecutionTime) {
  GreedyScheduler scheduler;
  SimEngine engine(four_by_four(), {}, small_trace(20), scheduler);
  (void)engine.run();
  for (const Job& job : engine.cluster().jobs()) {
    const double jct = job.completion_time() - job.spec().arrival;
    // The job ran completed_iterations() >= 1 iterations, each at least
    // its ideal duration minus resume credits; a loose sanity bound:
    EXPECT_GE(jct, job.ideal_iteration_seconds() * 0.5);
  }
}

TEST(SimEngine, DeterministicForSameSeed) {
  auto run_once = [] {
    GreedyScheduler scheduler;
    SimEngine engine(four_by_four(), {}, small_trace(25, 9), scheduler);
    return engine.run();
  };
  const RunMetrics a = run_once();
  const RunMetrics b = run_once();
  EXPECT_EQ(a.jct_minutes.count(), b.jct_minutes.count());
  EXPECT_DOUBLE_EQ(a.average_jct_minutes(), b.average_jct_minutes());
  EXPECT_DOUBLE_EQ(a.makespan_hours, b.makespan_hours);
  EXPECT_DOUBLE_EQ(a.bandwidth_tb, b.bandwidth_tb);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.iterations_run, b.iterations_run);
}

TEST(SimEngine, MetricsConservation) {
  GreedyScheduler scheduler;
  SimEngine engine(four_by_four(), {}, small_trace(30), scheduler);
  const RunMetrics m = engine.run();

  // Deadline/accuracy ratios are fractions of all jobs.
  EXPECT_GE(m.deadline_ratio, 0.0);
  EXPECT_LE(m.deadline_ratio, 1.0);
  EXPECT_GE(m.accuracy_ratio, 0.0);
  EXPECT_LE(m.accuracy_ratio, 1.0);
  EXPECT_GE(m.average_accuracy, 0.0);
  EXPECT_LE(m.average_accuracy, 1.0);

  // Iterations run match per-job progress.
  std::size_t total_iterations = 0;
  for (const Job& job : engine.cluster().jobs()) {
    total_iterations += static_cast<std::size_t>(job.completed_iterations());
    // No job exceeds its budget.
    EXPECT_LE(job.completed_iterations(), job.spec().max_iterations);
    EXPECT_GE(job.completed_iterations(), 1);
  }
  EXPECT_EQ(m.iterations_run, total_iterations);

  // Makespan covers the longest JCT.
  EXPECT_GE(m.makespan_hours * 60.0 + 1e-6, m.jct_minutes.percentile(100.0));
}

TEST(SimEngine, AccuracyOnlyJobsStopAtRequirement) {
  auto specs = small_trace(12, 31);
  for (auto& spec : specs) {
    spec.stop_policy = StopPolicy::AccuracyOnly;
    spec.min_allowed_policy = StopPolicy::AccuracyOnly;
  }
  GreedyScheduler scheduler;
  SimEngine engine(four_by_four(), {}, specs, scheduler);
  (void)engine.run();
  for (const Job& job : engine.cluster().jobs()) {
    EXPECT_GE(job.current_accuracy(), job.spec().accuracy_requirement);
    // Stopped at the first iteration satisfying the requirement.
    if (job.completed_iterations() > 1) {
      EXPECT_LT(job.curve().accuracy_at(job.completed_iterations() - 1),
                job.spec().accuracy_requirement);
    }
  }
}

TEST(SimEngine, FixedIterationJobsRunFullBudget) {
  auto specs = small_trace(10, 33);
  for (auto& spec : specs) {
    spec.stop_policy = StopPolicy::FixedIterations;
    spec.min_allowed_policy = StopPolicy::FixedIterations;
  }
  GreedyScheduler scheduler;
  SimEngine engine(four_by_four(), {}, specs, scheduler);
  (void)engine.run();
  for (const Job& job : engine.cluster().jobs()) {
    EXPECT_EQ(job.completed_iterations(), job.spec().max_iterations);
  }
}

TEST(SimEngine, OptStopSavesIterationsWithoutBreakingAccuracy) {
  auto specs = small_trace(12, 35);
  for (auto& spec : specs) {
    spec.stop_policy = StopPolicy::OptStop;
    spec.min_allowed_policy = StopPolicy::OptStop;
    spec.max_iterations = 200;  // generous budget for OptStop to reclaim
  }
  GreedyScheduler scheduler;
  SimEngine engine(four_by_four(), {}, specs, scheduler);
  const RunMetrics m = engine.run();
  EXPECT_GT(m.iterations_saved, 0u);
  for (const Job& job : engine.cluster().jobs()) {
    // OptStop stops within a whisker of the best the budget could reach.
    const double best = job.curve().accuracy_at(job.spec().max_iterations);
    EXPECT_GE(job.current_accuracy(), 0.90 * best) << "job " << job.id();
  }
}

TEST(SimEngine, DeadlineProgressRecordedForLateJobs) {
  auto specs = small_trace(8, 37);
  for (auto& spec : specs) spec.deadline_slack_hours = 0.5;  // tight deadlines
  GreedyScheduler scheduler;
  SimEngine engine(four_by_four(), {}, specs, scheduler);
  (void)engine.run();
  for (const Job& job : engine.cluster().jobs()) {
    if (job.completion_time() > job.deadline()) {
      EXPECT_GE(job.iterations_at_deadline(), 0) << "late job must freeze progress";
      EXPECT_LE(job.accuracy_by_deadline(), job.current_accuracy() + 1e-12);
    }
  }
}

TEST(SimEngine, MaxSimTimeCensorsRuns) {
  EngineConfig config;
  config.max_sim_time = minutes(30);  // far too short for the workload
  GreedyScheduler scheduler;
  SimEngine engine(four_by_four(), config, small_trace(20, 39), scheduler);
  const RunMetrics m = engine.run();
  EXPECT_EQ(m.jct_minutes.count(), 20u);  // censored jobs still counted
  bool any_incomplete = false;
  for (const Job& job : engine.cluster().jobs()) {
    if (!job.done()) any_incomplete = true;
  }
  EXPECT_TRUE(any_incomplete);
}

TEST(SimEngine, SchedulerOverheadMeasured) {
  GreedyScheduler scheduler;
  SimEngine engine(four_by_four(), {}, small_trace(10, 41), scheduler);
  const RunMetrics m = engine.run();
  EXPECT_GE(m.sched_overhead_ms, 0.0);
  EXPECT_LT(m.sched_overhead_ms, 1000.0);
}

TEST(SimEngine, BandwidthAccruesForCrossServerJobs) {
  // A 8-worker PS job cannot fit on one 4-GPU server, so its PS traffic
  // must cross servers and accrue bandwidth.
  TraceConfig config;
  config.num_jobs = 6;
  config.duration_hours = 1.0;
  config.seed = 43;
  config.max_gpu_request = 8;
  config.gpu_request_weights = {0.0, 0.0, 0.0, 1.0, 0.0, 0.0};  // all 8-GPU
  config.parameter_server_fraction = 1.0;
  auto specs = PhillyTraceGenerator(config).generate();
  GreedyScheduler scheduler;
  SimEngine engine(four_by_four(), {}, specs, scheduler);
  const RunMetrics m = engine.run();
  EXPECT_GT(m.bandwidth_tb, 0.0);
}

}  // namespace
}  // namespace mlfs
