// PlacementIndex unit tests: bucket-boundary edge cases (empty buckets,
// all-equal loads, single feasible server, FP-drift negatives) plus a
// randomized index-vs-brute-force equivalence sweep, and the cluster-level
// contracts that ride on the index (noop-reindex dedupe,
// underloaded_servers_into buffer reuse).
#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <vector>

#include "sim/cluster.hpp"
#include "sim/placement_index.hpp"
#include "workload/model_zoo.hpp"

namespace mlfs {
namespace {

constexpr double kHr = 0.85;
constexpr int kBuckets = 8;

struct Loads {
  double gpu = 0.0, cpu = 0.0, mem = 0.0, net = 0.0;
};

/// The exact four-comparison feasibility check the linear funnel performs,
/// in the same order placement.cpp evaluates it.
bool feasible(const Loads& l, const Loads& u, double hr) {
  return !(l.cpu + u.cpu > hr) && !(l.mem + u.mem > hr) && !(l.net + u.net > hr) &&
         !(l.gpu + u.gpu > hr);
}

PlacementIndex make_index(const std::vector<Loads>& fleet) {
  PlacementIndex idx;
  idx.reset(fleet.size(), kHr, kBuckets);
  for (ServerId id = 0; id < fleet.size(); ++id) {
    const Loads& l = fleet[id];
    idx.set_server(id, true, l.gpu, l.cpu, l.mem, l.net);
  }
  return idx;
}

std::vector<ServerId> brute_force(const std::vector<Loads>& fleet, const Loads& u, double hr,
                                  ServerId skip) {
  std::vector<ServerId> out;
  for (ServerId id = 0; id < fleet.size(); ++id) {
    if (id == skip) continue;
    if (feasible(fleet[id], u, hr)) out.push_back(id);
  }
  return out;
}

TEST(PlacementIndex, EmptyIndexReturnsNothing) {
  PlacementIndex idx;
  idx.reset(4, kHr, kBuckets);
  EXPECT_EQ(idx.member_count(), 0u);
  std::vector<ServerId> out;
  EXPECT_EQ(idx.collect_feasible(kHr, 0.1, 0.1, 0.1, 0.1, kInvalidServer, out), 0u);
  EXPECT_TRUE(out.empty());
  // Every server carries the non-member sentinel on every dimension.
  for (int d = 0; d < PlacementIndex::kDims; ++d)
    for (ServerId id = 0; id < idx.server_count(); ++id) EXPECT_EQ(idx.bucket_of(d, id), -1);
}

TEST(PlacementIndex, BucketBoundaryMapping) {
  PlacementIndex idx;
  idx.reset(1, kHr, kBuckets);
  // boundary(0) is -inf: arbitrarily negative loads land in bucket 0.
  EXPECT_EQ(idx.bucket_for_load(-1e30), 0);
  EXPECT_EQ(idx.bucket_for_load(0.0), 0);
  // A load exactly on a boundary belongs to the bucket it opens.
  for (int b = 1; b < kBuckets; ++b) {
    EXPECT_EQ(idx.bucket_for_load(idx.boundary(b)), b) << "boundary " << b;
    EXPECT_EQ(idx.bucket_for_load(std::nextafter(idx.boundary(b), 0.0)), b - 1);
  }
  // Loads at/above hr land in the last bucket (members can exceed hr on
  // dimensions other than the one that made them underloaded).
  EXPECT_EQ(idx.bucket_for_load(kHr), kBuckets - 1);
  EXPECT_EQ(idx.bucket_for_load(2.0), kBuckets - 1);
}

TEST(PlacementIndex, NegativeDriftLoadIsIndexedAndFound) {
  // Incremental maintenance can drift a near-zero sum slightly negative;
  // such a server must stay findable (bucket 0 is never pruned — here it
  // sits strictly below every cutoff, so it is bypassed as provably
  // feasible without an exact check).
  std::vector<Loads> fleet(1);
  fleet[0] = {-1e-17, -1e-17, 0.0, -1e-17};
  PlacementIndex idx = make_index(fleet);
  EXPECT_EQ(idx.bucket_of(0, 0), 0);
  std::vector<ServerId> out;
  const std::size_t examined = idx.collect_feasible(kHr, 0.5, 0.5, 0.5, 0.5, kInvalidServer, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(examined + idx.stats().servers_bypassed, 1u);
}

TEST(PlacementIndex, AllEqualLoadsShareOneBucketAndPruneTogether) {
  std::vector<Loads> fleet(6, Loads{0.5, 0.5, 0.5, 0.5});
  PlacementIndex idx = make_index(fleet);
  const int b = idx.bucket_for_load(0.5);
  for (int d = 0; d < PlacementIndex::kDims; ++d) {
    for (ServerId id = 0; id < 6; ++id) EXPECT_EQ(idx.bucket_of(d, id), b);
  }
  std::vector<ServerId> out;
  // Usage that fits everyone with room to spare: the shared bucket sits
  // strictly below every cutoff, so all 6 are *bypassed* as provably
  // feasible — zero exact checks, all returned ascending.
  std::size_t examined = idx.collect_feasible(kHr, 0.1, 0.1, 0.1, 0.1, kInvalidServer, out);
  EXPECT_EQ(examined, 0u);
  EXPECT_EQ(idx.stats().servers_bypassed, 6u);
  EXPECT_EQ(out, (std::vector<ServerId>{0, 1, 2, 3, 4, 5}));
  // Usage that fits no one: the shared bucket is pruned wholesale — zero
  // servers examined, not six exact-check rejections.
  out.clear();
  examined = idx.collect_feasible(kHr, 0.5, 0.5, 0.5, 0.5, kInvalidServer, out);
  EXPECT_EQ(examined, 0u);
  EXPECT_TRUE(out.empty());
  // Usage that lands the shared bucket exactly on the cutoff: all 6 get
  // the exact four-comparison check.
  // bucket_for_load(0.5) opens at boundary b; usage just below hr - that
  // boundary keeps bucket b as the cutoff bucket itself.
  const int b_shared = idx.bucket_for_load(0.5);
  const double edge = kHr - idx.boundary(b_shared);
  out.clear();
  examined = idx.collect_feasible(kHr, edge, edge, edge, edge, kInvalidServer, out);
  EXPECT_EQ(examined, 6u);
  EXPECT_TRUE(out.empty());  // 0.5 + edge > hr: exact check rejects all 6
}

TEST(PlacementIndex, SingleFeasibleServerSurvivesPruning) {
  // Five heavily loaded servers and one idle one: the query must return
  // exactly the idle server, and pruning must have skipped at least the
  // top-bucket crowd.
  std::vector<Loads> fleet(6, Loads{0.8, 0.8, 0.8, 0.8});
  fleet[3] = {0.0, 0.0, 0.0, 0.0};
  PlacementIndex idx = make_index(fleet);
  std::vector<ServerId> out;
  const std::size_t examined = idx.collect_feasible(kHr, 0.3, 0.3, 0.3, 0.3, kInvalidServer, out);
  EXPECT_EQ(out, std::vector<ServerId>{3});
  EXPECT_LT(examined, 6u);
  // Full accounting: every member is pruned, bypassed, or exact-checked.
  EXPECT_EQ(idx.stats().servers_pruned, 6u - examined - idx.stats().servers_bypassed);
}

TEST(PlacementIndex, SkipExcludesMigratingSelf) {
  std::vector<Loads> fleet(3, Loads{0.1, 0.1, 0.1, 0.1});
  PlacementIndex idx = make_index(fleet);
  std::vector<ServerId> out;
  idx.collect_feasible(kHr, 0.1, 0.1, 0.1, 0.1, 1, out);
  EXPECT_EQ(out, (std::vector<ServerId>{0, 2}));
}

/// True iff member `id` is filed in bucket `b` of `dim` (the bucket id per
/// server IS the structure — there are no member lists to cross-check).
bool filed_in(const PlacementIndex& idx, int dim, int b, ServerId id) {
  return idx.is_member(id) && idx.bucket_of(dim, id) == b;
}

TEST(PlacementIndex, SetServerMovesBetweenBucketsAndTogglesMembership) {
  std::vector<Loads> fleet(2, Loads{0.1, 0.1, 0.1, 0.1});
  PlacementIndex idx = make_index(fleet);
  EXPECT_EQ(idx.member_count(), 2u);
  const int b_lo = idx.bucket_for_load(0.1);
  ASSERT_TRUE(filed_in(idx, 1, b_lo, 0));
  // Move server 0's cpu load to a different bucket; other dims unchanged.
  idx.set_server(0, true, 0.1, 0.7, 0.1, 0.1);
  const int b_hi = idx.bucket_for_load(0.7);
  ASSERT_NE(b_lo, b_hi);
  EXPECT_FALSE(filed_in(idx, 1, b_lo, 0));
  EXPECT_TRUE(filed_in(idx, 1, b_hi, 0));
  EXPECT_EQ(idx.load_of(1, 0), 0.7);
  // Same-bucket value update keeps membership where it is.
  idx.set_server(0, true, 0.1, 0.7 + 1e-6, 0.1, 0.1);
  EXPECT_EQ(idx.bucket_of(1, 0), b_hi);
  EXPECT_EQ(idx.load_of(1, 0), 0.7 + 1e-6);
  // Dropping membership stamps the sentinel on every dimension, so no
  // stale bucket id can ever satisfy a query's cutoff compares.
  idx.set_server(0, false, 0.1, 0.7, 0.1, 0.1);
  EXPECT_EQ(idx.member_count(), 1u);
  EXPECT_FALSE(idx.is_member(0));
  for (int d = 0; d < PlacementIndex::kDims; ++d) EXPECT_EQ(idx.bucket_of(d, 0), -1);
  std::vector<ServerId> out;
  idx.collect_feasible(kHr, 0.1, 0.1, 0.1, 0.1, kInvalidServer, out);
  EXPECT_EQ(out, std::vector<ServerId>{1});
}

TEST(PlacementIndex, RandomizedEquivalenceWithBruteForce) {
  std::mt19937_64 rng(20260807);
  std::uniform_real_distribution<double> load(-1e-16, 1.1);
  std::uniform_real_distribution<double> usage(0.0, 0.6);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng() % 40;
    std::vector<Loads> fleet(n);
    for (auto& l : fleet) l = {load(rng), load(rng), load(rng), load(rng)};
    PlacementIndex idx = make_index(fleet);
    // Mutate a few servers to exercise bucket surgery mid-stream.
    for (int m = 0; m < 5 && n > 1; ++m) {
      const ServerId id = static_cast<ServerId>(rng() % n);
      fleet[id] = {load(rng), load(rng), load(rng), load(rng)};
      idx.set_server(id, true, fleet[id].gpu, fleet[id].cpu, fleet[id].mem, fleet[id].net);
    }
    const Loads u{usage(rng), usage(rng), usage(rng), usage(rng)};
    const ServerId skip =
        (rng() % 3 == 0) ? static_cast<ServerId>(rng() % n) : kInvalidServer;
    const PlacementIndexStats before = idx.stats();
    std::vector<ServerId> got;
    const std::size_t examined = idx.collect_feasible(kHr, u.gpu, u.cpu, u.mem, u.net, skip, got);
    EXPECT_EQ(got, brute_force(fleet, u, kHr, skip)) << "trial " << trial;
    EXPECT_LE(examined, n);
    const std::size_t bypassed = idx.stats().servers_bypassed - before.servers_bypassed;
    const std::size_t pruned = idx.stats().servers_pruned - before.servers_pruned;
    // Bypassed members are emitted without a check, so together with the
    // exact-checked ones they cover the result; with pruning they cover
    // the whole membership (minus the skipped self).
    EXPECT_GE(examined + bypassed, got.size()) << "trial " << trial;
    const std::size_t skipped = (skip != kInvalidServer && idx.is_member(skip)) ? 1u : 0u;
    EXPECT_EQ(examined + bypassed + pruned + skipped, idx.member_count()) << "trial " << trial;
  }
}

TEST(PlacementIndex, StatsSurviveSaveRestoreRoundTrip) {
  std::vector<Loads> fleet(4, Loads{0.2, 0.2, 0.2, 0.2});
  PlacementIndex idx = make_index(fleet);
  std::vector<ServerId> out;
  idx.collect_feasible(kHr, 0.1, 0.1, 0.1, 0.1, kInvalidServer, out);
  std::ostringstream os;
  io::BinWriter w(os);
  idx.save_state(w);

  PlacementIndex fresh;
  fresh.reset(fleet.size(), kHr, kBuckets);
  std::istringstream is(os.str());
  io::BinReader r(is);
  fresh.restore_state(r);
  EXPECT_EQ(fresh.stats().queries, idx.stats().queries);
  EXPECT_EQ(fresh.stats().servers_examined, idx.stats().servers_examined);
  EXPECT_EQ(fresh.stats().servers_pruned, idx.stats().servers_pruned);
  EXPECT_EQ(fresh.stats().buckets_pruned, idx.stats().buckets_pruned);
  EXPECT_EQ(fresh.stats().servers_bypassed, idx.stats().servers_bypassed);
}

// --- cluster-level contracts -----------------------------------------------

JobId add_job(Cluster& cluster, int gpus) {
  JobSpec spec;
  spec.id = static_cast<JobId>(cluster.job_count());
  spec.algorithm = MlAlgorithm::Mlp;
  spec.comm = CommStructure::AllReduce;
  spec.gpu_request = gpus;
  spec.max_iterations = 10;
  spec.seed = 3;
  auto inst = ModelZoo::instantiate(spec, static_cast<TaskId>(cluster.task_count()));
  cluster.register_job(std::move(inst.job), std::move(inst.tasks));
  return spec.id;
}

TEST(PlacementIndex, ClusterIndexMirrorsUnderloadedPartition) {
  ClusterConfig cfg;
  cfg.server_count = 6;
  cfg.gpus_per_server = 2;
  Cluster cluster(cfg);
  const JobId id = add_job(cluster, 2);
  cluster.place_task(cluster.job(id).task_at(0), 0, 0);
  cluster.place_task(cluster.job(id).task_at(1), 0, 1);

  const PlacementIndex& idx = cluster.placement_index(kHr);
  const std::vector<ServerId> under = cluster.underloaded_servers(kHr);
  EXPECT_EQ(idx.member_count(), under.size());
  for (ServerId s : under) EXPECT_TRUE(idx.is_member(s));
  for (ServerId s = 0; s < cluster.server_count(); ++s) {
    if (idx.is_member(s)) {
      EXPECT_EQ(idx.load_of(1, s), cluster.cached_utilization(s)[Resource::Cpu]);
      EXPECT_EQ(idx.load_of(0, s), cluster.cached_least_gpu_load(s));
    }
  }
}

TEST(PlacementIndex, NoopReindexSkipsUnchangedDirtyServers) {
  ClusterConfig cfg;
  cfg.server_count = 4;
  cfg.gpus_per_server = 2;
  Cluster cluster(cfg);
  const JobId id = add_job(cluster, 1);
  const TaskId tid = cluster.job(id).task_at(0);

  // Prime the index, then make a place/unplace round trip that leaves the
  // server's load exactly where it started.
  (void)cluster.underloaded_servers(kHr);
  const LoadIndexStats before = cluster.load_index_stats();
  cluster.place_task(tid, 2, 0);
  cluster.unplace_task(tid);
  (void)cluster.underloaded_servers(kHr);
  const LoadIndexStats after = cluster.load_index_stats();
  // The dirty server was re-evaluated but nothing changed: that must be
  // counted as a noop, not a reindex.
  EXPECT_GT(after.noop_reindexes, before.noop_reindexes);
  EXPECT_EQ(after.servers_reindexed, before.servers_reindexed);

  // A placement that sticks must still count as a real reindex.
  cluster.place_task(tid, 2, 0);
  (void)cluster.underloaded_servers(kHr);
  EXPECT_GT(cluster.load_index_stats().servers_reindexed, after.servers_reindexed);
}

TEST(PlacementIndex, UnderloadedServersIntoMatchesVectorReturn) {
  ClusterConfig cfg;
  cfg.server_count = 5;
  cfg.gpus_per_server = 2;
  Cluster cluster(cfg);
  const JobId id = add_job(cluster, 2);
  cluster.place_task(cluster.job(id).task_at(0), 1, 0);
  cluster.place_task(cluster.job(id).task_at(1), 1, 1);

  std::vector<ServerId> buf{99, 99, 99};  // stale contents must be discarded
  cluster.underloaded_servers_into(kHr, buf);
  EXPECT_EQ(buf, cluster.underloaded_servers(kHr));

  // Scan-mode fallback (index disabled) fills the same buffer identically.
  ClusterConfig scan_cfg = cfg;
  scan_cfg.incremental_load_index = false;
  Cluster scan_cluster(scan_cfg);
  const JobId sid = add_job(scan_cluster, 2);
  scan_cluster.place_task(scan_cluster.job(sid).task_at(0), 1, 0);
  scan_cluster.place_task(scan_cluster.job(sid).task_at(1), 1, 1);
  std::vector<ServerId> scan_buf;
  scan_cluster.underloaded_servers_into(kHr, scan_buf);
  EXPECT_EQ(scan_buf, buf);
}

}  // namespace
}  // namespace mlfs
