// Fault-injection subsystem: crashes evict cleanly (no leaked GPU slots,
// placement state consistent after every failure), recovery re-places
// victims, accounting conserves iteration work, and the fault RNG stream
// is isolated so zero-rate configs replay the fault-free simulation
// bit-for-bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>

#include "exp/scenario.hpp"
#include "sched/util.hpp"
#include "sim/engine.hpp"
#include "sim/event_log.hpp"
#include "workload/trace.hpp"

namespace mlfs {
namespace {

class GreedyScheduler : public Scheduler {
 public:
  std::string name() const override { return "greedy-test"; }
  void schedule(SchedulerContext& ctx) override {
    for (const TaskId tid : sched::live_queue(ctx)) {
      if (ctx.cluster.task(tid).state != TaskState::Queued) continue;
      sched::place_job_gang(ctx, tid, sched::least_loaded_placement);
    }
  }
};

ClusterConfig four_by_four() {
  ClusterConfig c;
  c.server_count = 4;
  c.gpus_per_server = 4;
  return c;
}

std::vector<JobSpec> small_trace(std::size_t jobs, std::uint64_t seed = 21) {
  TraceConfig config;
  config.num_jobs = jobs;
  config.duration_hours = 6.0;
  config.seed = seed;
  config.max_gpu_request = 8;
  config.max_iterations = 40;
  return PhillyTraceGenerator(config).generate();
}

/// Audits the cluster on every fault event — a crash that leaks a GPU
/// slot or leaves a task on the dead server trips immediately, at the
/// failure, not at end-of-run.
class ValidatingObserver : public EngineObserver {
 public:
  explicit ValidatingObserver(SimEngine& engine) : engine_(engine) {}
  void on_server_down(SimTime, ServerId server) override {
    engine_.cluster().validate();
    EXPECT_FALSE(engine_.cluster().server(server).up());
    ++downs;
  }
  void on_server_up(SimTime, ServerId server) override {
    engine_.cluster().validate();
    EXPECT_TRUE(engine_.cluster().server(server).up());
    ++ups;
  }
  void on_task_placed(SimTime, TaskId, ServerId server, int) override {
    // The placement contract: a down server never receives a task.
    EXPECT_TRUE(engine_.cluster().server(server).up());
  }
  void on_task_killed(SimTime, TaskId) override { ++kills; }

  std::size_t downs = 0;
  std::size_t ups = 0;
  std::size_t kills = 0;

 private:
  SimEngine& engine_;
};

/// iterations_run counts every completed iteration event; rollbacks
/// subtract from per-job progress. A double abort or a stale-epoch
/// completion would break this identity.
void expect_iteration_conservation(const SimEngine& engine, const RunMetrics& m) {
  std::size_t completed = 0;
  for (const Job& job : engine.cluster().jobs()) {
    completed += static_cast<std::size_t>(job.completed_iterations());
  }
  EXPECT_EQ(m.iterations_run, completed + m.iterations_rolled_back);
}

TEST(FaultInjection, ZeroRatesReproduceFaultFreeMetricsExactly) {
  auto run_with = [](const EngineConfig& ec) {
    GreedyScheduler scheduler;
    SimEngine engine(four_by_four(), ec, small_trace(25, 9), scheduler);
    std::ostringstream out;
    JsonlEventLog log(out);
    engine.set_observer(&log);
    const RunMetrics m = engine.run();
    return std::make_pair(m, out.str());
  };
  // Baseline: the historical fault-free config. Variant: fault knobs set
  // but every rate zero — must not perturb a single draw.
  EngineConfig plain;
  EngineConfig zero_rates;
  zero_rates.fault.server_mttr_hours = 2.0;
  zero_rates.fault.rack_mttr_hours = 1.0;
  zero_rates.fault.checkpoint_interval_iterations = 7;
  const auto [a, log_a] = run_with(plain);
  const auto [b, log_b] = run_with(zero_rates);
  EXPECT_EQ(log_a, log_b);
  EXPECT_EQ(a.iterations_run, b.iterations_run);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.average_jct_minutes(), b.average_jct_minutes());
  EXPECT_EQ(a.makespan_hours, b.makespan_hours);
  EXPECT_EQ(a.bandwidth_tb, b.bandwidth_tb);
  EXPECT_EQ(b.server_failures, 0u);
  EXPECT_EQ(b.task_kills, 0u);
  EXPECT_EQ(b.work_lost_gpu_seconds, 0.0);
  EXPECT_EQ(b.goodput, 1.0);
}

TEST(FaultInjection, IdenticalFaultConfigReplaysByteIdenticalJsonl) {
  auto run_logged = [] {
    EngineConfig ec;
    ec.fault.server_mtbf_hours = 6.0;
    ec.fault.server_mttr_hours = 0.25;
    ec.fault.task_kill_probability = 1e-3;
    ec.fault.checkpoint_interval_iterations = 3;
    GreedyScheduler scheduler;
    SimEngine engine(four_by_four(), ec, small_trace(20, 13), scheduler);
    std::ostringstream out;
    JsonlEventLog log(out);
    engine.set_observer(&log);
    const RunMetrics m = engine.run();
    return std::make_pair(m.server_failures, out.str());
  };
  const auto [failures_a, log_a] = run_logged();
  const auto [failures_b, log_b] = run_logged();
  EXPECT_GT(failures_a, 0u);  // the config must actually inject churn
  EXPECT_EQ(failures_a, failures_b);
  EXPECT_EQ(log_a, log_b);
}

TEST(FaultInjection, CrashDuringGangPlacementLeaksNothing) {
  // Churn heavy enough that crashes land while gangs are partially
  // placed; the validating observer audits placement state per failure.
  EngineConfig ec;
  ec.fault.server_mtbf_hours = 3.0;
  ec.fault.server_mttr_hours = 0.2;
  ec.fault.checkpoint_interval_iterations = 5;
  ec.partial_placement_timeout = minutes(3);
  ec.stall_ticks_before_eviction = 5;
  GreedyScheduler scheduler;
  SimEngine engine(four_by_four(), ec, small_trace(25, 17), scheduler);
  ValidatingObserver observer(engine);
  engine.set_observer(&observer);
  const RunMetrics m = engine.run();

  EXPECT_GT(observer.downs, 0u);
  EXPECT_EQ(observer.downs, m.server_failures);
  engine.cluster().validate();
  expect_iteration_conservation(engine, m);
  EXPECT_GT(m.crash_evictions, 0u);
  EXPECT_EQ(observer.kills, m.crash_evictions + m.task_kills);
  EXPECT_GT(m.goodput, 0.0);
  EXPECT_LE(m.goodput, 1.0);
  // Watchdog/partial-release interplay under churn must not strand
  // finished state: every completed job's tasks are off the cluster.
  for (const Job& job : engine.cluster().jobs()) {
    if (!job.done()) continue;
    for (const TaskId tid : job.tasks()) {
      EXPECT_FALSE(engine.cluster().task(tid).placed());
    }
  }
}

TEST(FaultInjection, CrashOfFullyPlacedJobAbortsIterationOnceAndRecovers) {
  // No random faults; deterministically crash every server shortly after
  // the first job can have started, then let the 0.1h MTTR bring them
  // back. The in-flight gang iteration must abort exactly once (epoch
  // guard) and the victims must re-place and finish.
  EngineConfig ec;
  ec.fault.server_mttr_hours = 0.1;
  GreedyScheduler scheduler;
  SimEngine engine(four_by_four(), ec, small_trace(6, 29), scheduler);
  SimTime first_arrival = std::numeric_limits<double>::infinity();
  for (const Job& job : engine.cluster().jobs()) {
    first_arrival = std::min(first_arrival, job.spec().arrival);
  }
  for (ServerId s = 0; s < engine.cluster().server_count(); ++s) {
    engine.inject_server_failure(s, first_arrival + minutes(5));
  }
  ValidatingObserver observer(engine);
  engine.set_observer(&observer);
  const RunMetrics m = engine.run();

  EXPECT_EQ(m.server_failures, engine.cluster().server_count());
  EXPECT_EQ(observer.ups, engine.cluster().server_count());
  EXPECT_GT(m.crash_evictions, 0u);
  EXPECT_GT(m.work_lost_gpu_seconds, 0.0);
  EXPECT_GT(m.mean_recovery_seconds, 0.0);
  expect_iteration_conservation(engine, m);
  for (const Job& job : engine.cluster().jobs()) {
    EXPECT_TRUE(job.done());
  }
  engine.cluster().validate();
}

TEST(FaultInjection, PermanentlyDownServerNeverHostsTasks) {
  // Capacity loss, not churn: one server dies at t=0 and never repairs
  // (mttr 0). The shared placement path must route everything else around
  // it for the whole run.
  EngineConfig ec;
  ec.fault.server_mttr_hours = 0.0;
  GreedyScheduler scheduler;
  SimEngine engine(four_by_four(), ec, small_trace(12, 33), scheduler);
  engine.inject_server_failure(2, 0.0);
  ValidatingObserver observer(engine);  // asserts every placement targets an up server
  engine.set_observer(&observer);
  const RunMetrics m = engine.run();

  EXPECT_EQ(m.server_failures, 1u);
  EXPECT_EQ(observer.ups, 0u);
  EXPECT_FALSE(engine.cluster().server(2).up());
  EXPECT_EQ(engine.cluster().up_server_count(), engine.cluster().server_count() - 1);
  EXPECT_EQ(engine.cluster().server(2).task_count(), 0u);
  for (const Job& job : engine.cluster().jobs()) {
    EXPECT_TRUE(job.done());  // the remaining 3 servers absorb the load
  }
  engine.cluster().validate();
}

TEST(FaultInjection, RackOutageTakesWholeRackDownTogether) {
  ClusterConfig cc = four_by_four();
  cc.servers_per_rack = 2;  // racks {0,1} and {2,3}
  EngineConfig ec;
  ec.fault.rack_mtbf_hours = 4.0;
  ec.fault.rack_mttr_hours = 0.2;
  GreedyScheduler scheduler;
  SimEngine engine(cc, ec, small_trace(15, 41), scheduler);
  ValidatingObserver observer(engine);
  engine.set_observer(&observer);
  const RunMetrics m = engine.run();

  EXPECT_GT(m.rack_outages, 0u);
  EXPECT_GT(m.server_failures, 0u);
  // Casualties come in rack-sized groups (servers already down when their
  // rack fails again are not double-counted, so <=).
  EXPECT_LE(m.server_failures, m.rack_outages * 2);
  expect_iteration_conservation(engine, m);
  engine.cluster().validate();
}

TEST(FaultInjection, TransientTaskKillsRollBackToCheckpoint) {
  EngineConfig ec;
  ec.fault.task_kill_probability = 2e-3;
  ec.fault.checkpoint_interval_iterations = 5;
  GreedyScheduler scheduler;
  SimEngine engine(four_by_four(), ec, small_trace(15, 37), scheduler);
  const RunMetrics m = engine.run();

  EXPECT_GT(m.task_kills, 0u);
  EXPECT_EQ(m.server_failures, 0u);  // kills spare the server
  EXPECT_GT(m.work_lost_gpu_seconds, 0.0);
  EXPECT_LT(m.goodput, 1.0);
  expect_iteration_conservation(engine, m);
  for (const Job& job : engine.cluster().jobs()) {
    EXPECT_TRUE(job.done());
    EXPECT_LE(job.completed_iterations(), job.spec().max_iterations);
  }
  engine.cluster().validate();
}

TEST(FaultInjection, ChaosScenarioHelperConfiguresChurn) {
  const exp::Scenario chaos = exp::chaos_scenario(10, 3);
  EXPECT_TRUE(chaos.engine.fault.any_faults());
  exp::Scenario calm = exp::smoke_scenario(10, 3);
  exp::set_failure_rate(calm, 0.0);
  EXPECT_FALSE(calm.engine.fault.any_faults());
  exp::set_failure_rate(calm, 7.0, 0.4, 3);
  EXPECT_DOUBLE_EQ(calm.engine.fault.server_mtbf_hours, 24.0);
  EXPECT_DOUBLE_EQ(calm.engine.fault.server_mttr_hours, 0.4);
  EXPECT_EQ(calm.engine.fault.checkpoint_interval_iterations, 3);
}

}  // namespace
}  // namespace mlfs
