// Failure-aware recovery policies (sim/health.hpp): the backoff schedule
// and Young/Daly math as pure functions, the quarantine -> probation ->
// healthy state machine with its capacity safety valve, config validation,
// retry-budget exhaustion producing failed-permanent jobs under audit, and
// the master determinism gate — a default-off RecoveryConfig leaves every
// registered scheduler's event stream byte-identical to the seed build.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>

#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "sched/util.hpp"
#include "sim/engine.hpp"
#include "sim/event_log.hpp"
#include "sim/health.hpp"
#include "workload/trace.hpp"

namespace mlfs {
namespace {

class GreedyScheduler : public Scheduler {
 public:
  std::string name() const override { return "greedy-test"; }
  void schedule(SchedulerContext& ctx) override {
    for (const TaskId tid : sched::live_queue(ctx)) {
      if (ctx.cluster.task(tid).state != TaskState::Queued) continue;
      sched::place_job_gang(ctx, tid, sched::least_loaded_placement);
    }
  }
};

ClusterConfig four_by_four() {
  ClusterConfig c;
  c.server_count = 4;
  c.gpus_per_server = 4;
  return c;
}

std::vector<JobSpec> small_trace(std::size_t jobs, std::uint64_t seed = 21) {
  TraceConfig config;
  config.num_jobs = jobs;
  config.duration_hours = 6.0;
  config.seed = seed;
  config.max_gpu_request = 8;
  config.max_iterations = 40;
  return PhillyTraceGenerator(config).generate();
}

// ------------------------------------------------------------ pure math

TEST(RecoveryMath, BackoffScheduleDoublesAndCaps) {
  RecoveryConfig c;
  c.backoff_base_seconds = 30.0;
  c.backoff_factor = 2.0;
  c.backoff_max_seconds = 1800.0;
  c.backoff_jitter = 0.0;
  EXPECT_DOUBLE_EQ(backoff_delay_seconds(c, 0, 0.0), 30.0);
  EXPECT_DOUBLE_EQ(backoff_delay_seconds(c, 1, 0.0), 60.0);
  EXPECT_DOUBLE_EQ(backoff_delay_seconds(c, 4, 0.0), 480.0);
  EXPECT_DOUBLE_EQ(backoff_delay_seconds(c, 6, 0.0), 1800.0);   // exact cap
  EXPECT_DOUBLE_EQ(backoff_delay_seconds(c, 50, 0.0), 1800.0);  // stays capped
}

TEST(RecoveryMath, BackoffJitterScalesTheDelay) {
  RecoveryConfig c;
  c.backoff_base_seconds = 100.0;
  c.backoff_factor = 2.0;
  c.backoff_max_seconds = 1000.0;
  c.backoff_jitter = 0.25;
  EXPECT_DOUBLE_EQ(backoff_delay_seconds(c, 0, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(backoff_delay_seconds(c, 0, 0.5), 112.5);
  // Jitter only ever extends the delay (never below the deterministic
  // schedule), and stays below the full jitter fraction.
  EXPECT_LT(backoff_delay_seconds(c, 0, 0.999), 125.0);
}

TEST(RecoveryMath, YoungDalyInterval) {
  // sqrt(2 * MTBF * cost): 2h MTBF at 2s/checkpoint -> ~169.7s.
  EXPECT_NEAR(young_daly_interval_seconds(2.0 * 3600.0, 2.0), 169.7, 0.1);
  EXPECT_DOUBLE_EQ(young_daly_interval_seconds(0.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(young_daly_interval_seconds(3600.0, 0.0), 0.0);
}

TEST(RecoveryMath, YoungDalyIterationsClampToValidRange) {
  // 50000s MTBF, 1s cost -> period ~316s; 10s iterations -> 32.
  EXPECT_EQ(young_daly_checkpoint_iterations(50000.0, 1.0, 10.0, 50), 32);
  EXPECT_EQ(young_daly_checkpoint_iterations(50000.0, 1.0, 10.0, 20), 20);  // clamped high
  EXPECT_EQ(young_daly_checkpoint_iterations(50000.0, 1.0, 1e6, 50), 1);    // clamped low
  EXPECT_EQ(young_daly_checkpoint_iterations(0.0, 1.0, 10.0, 50), 1);       // no estimate
}

// ------------------------------------------------- tracker state machine

TEST(HealthTracker, QuarantineProbationHealthyLifecycle) {
  RecoveryConfig c;
  c.enabled = true;
  c.quarantine_score_threshold = 1.5;
  c.quarantine_base_minutes = 30.0;
  c.probation_minutes = 60.0;
  c.probation_task_cap = 1;
  ServerHealthTracker t(c, 8);

  // Two crashes in quick succession push the decayed score past 1.5.
  t.record_crash(0, 0.0);
  t.record_recovery(0, 10.0);
  t.record_crash(0, 20.0);
  t.record_recovery(0, 30.0);
  EXPECT_GT(t.score(0, 30.0), 1.5);
  ASSERT_TRUE(t.try_quarantine(0, 30.0));
  EXPECT_EQ(t.health(0), ServerHealth::Quarantined);
  EXPECT_EQ(t.placement_cap_for(0), 0);
  EXPECT_EQ(t.quarantines(), 1u);
  EXPECT_TRUE(t.try_quarantine(0, 31.0));  // idempotent while held

  // Before the window ends: no transitions.
  EXPECT_TRUE(t.advance(30.0 + minutes(29.0)).empty());
  // Window over -> probation under the task cap.
  const auto to_probation = t.advance(30.0 + minutes(30.0));
  ASSERT_EQ(to_probation.size(), 1u);
  EXPECT_EQ(to_probation[0].server, 0u);
  EXPECT_EQ(to_probation[0].cap, 1);
  EXPECT_EQ(t.health(0), ServerHealth::Probation);
  EXPECT_EQ(t.placement_cap_for(0), 1);
  // Probation served crash-free -> full service restored.
  const SimTime probation_start = 30.0 + minutes(30.0);
  const auto to_healthy = t.advance(probation_start + minutes(60.0));
  ASSERT_EQ(to_healthy.size(), 1u);
  EXPECT_EQ(to_healthy[0].cap, -1);
  EXPECT_EQ(t.health(0), ServerHealth::Healthy);
  EXPECT_EQ(t.placement_cap_for(0), -1);
}

TEST(HealthTracker, RepeatQuarantineWindowsBackOff) {
  RecoveryConfig c;
  c.enabled = true;
  c.quarantine_score_threshold = 0.5;  // any crash triggers
  c.quarantine_base_minutes = 30.0;
  c.quarantine_backoff_factor = 2.0;
  c.quarantine_max_minutes = 480.0;
  c.probation_minutes = 0.0;
  ServerHealthTracker t(c, 8);

  t.record_crash(0, 0.0);
  t.record_recovery(0, 1.0);
  ASSERT_TRUE(t.try_quarantine(0, 1.0));
  // First window: 30min. Not out at 29min, out at 30.
  EXPECT_TRUE(t.advance(1.0 + minutes(29.0)).empty());
  EXPECT_EQ(t.advance(1.0 + minutes(30.0)).size(), 1u);  // -> probation
  t.advance(1.0 + minutes(30.0) + 1.0);                  // 0-minute probation -> healthy
  EXPECT_EQ(t.health(0), ServerHealth::Healthy);

  // Second quarantine of the same server doubles the window to 60min.
  const SimTime t2 = hours(1.0);
  t.record_crash(0, t2);
  t.record_recovery(0, t2 + 1.0);
  ASSERT_TRUE(t.try_quarantine(0, t2 + 1.0));
  EXPECT_TRUE(t.advance(t2 + 1.0 + minutes(59.0)).empty());
  EXPECT_EQ(t.advance(t2 + 1.0 + minutes(60.0)).size(), 1u);
}

TEST(HealthTracker, CrashDuringProbationFailsTheTrial) {
  RecoveryConfig c;
  c.enabled = true;
  c.quarantine_score_threshold = 0.5;
  c.probation_minutes = 60.0;
  ServerHealthTracker t(c, 8);
  t.record_crash(3, 0.0);
  t.record_recovery(3, 1.0);
  ASSERT_TRUE(t.try_quarantine(3, 1.0));
  t.advance(1.0 + minutes(30.0));
  ASSERT_EQ(t.health(3), ServerHealth::Probation);
  // Crashing mid-probation ends the trial; the score is still hot, so the
  // re-admission check quarantines again (with the longer window).
  t.record_crash(3, 1.0 + minutes(40.0));
  EXPECT_EQ(t.health(3), ServerHealth::Healthy);
  t.record_recovery(3, 1.0 + minutes(45.0));
  EXPECT_TRUE(t.try_quarantine(3, 1.0 + minutes(45.0)));
  EXPECT_EQ(t.quarantines(), 2u);
}

TEST(HealthTracker, SafetyValveNeverDropsBelowMinimumCapacity) {
  RecoveryConfig c;
  c.enabled = true;
  c.quarantine_score_threshold = 0.5;
  c.min_active_fraction = 0.75;  // 4 servers -> keep >= 3 active
  ServerHealthTracker t(c, 4);

  // Server 0: crashes, recovers, quarantined (active 4 -> 3 is allowed).
  t.record_crash(0, 0.0);
  t.record_recovery(0, 1.0);
  ASSERT_TRUE(t.try_quarantine(0, 1.0));
  // Server 1 is just as sick, but quarantining it would leave 2 active.
  t.record_crash(1, 2.0);
  t.record_recovery(1, 3.0);
  EXPECT_FALSE(t.try_quarantine(1, 3.0));
  EXPECT_EQ(t.health(1), ServerHealth::Healthy);
  EXPECT_EQ(t.valve_saves(), 1u);
  EXPECT_EQ(t.quarantines(), 1u);
}

TEST(HealthTracker, ObservedMtbfNeedsThreeCrashes) {
  RecoveryConfig c;
  c.enabled = true;
  ServerHealthTracker t(c, 4);
  // Below 3 crashes: the configured fallback wins.
  t.record_crash(0, hours(10.0));
  EXPECT_DOUBLE_EQ(t.observed_mtbf_seconds(12.0), hours(12.0));
  t.record_recovery(0, hours(10.5));
  t.record_crash(1, hours(20.0));
  EXPECT_DOUBLE_EQ(t.observed_mtbf_seconds(12.0), hours(12.0));
  t.record_crash(2, hours(30.0));
  // Closed uptime: 10h + 20h + 30h = 60h over 3 crashes = 20h.
  EXPECT_DOUBLE_EQ(t.observed_mtbf_seconds(12.0), hours(20.0));
  EXPECT_DOUBLE_EQ(ServerHealthTracker(c, 4).observed_mtbf_seconds(0.0), 0.0);
}

// ------------------------------------------------------------ validation

TEST(RecoveryValidation, FaultConfigRejectsNonsense) {
  FaultConfig f;
  EXPECT_NO_THROW(f.validate(0));
  f.server_mttr_hours = -0.5;
  EXPECT_THROW(f.validate(0), ContractViolation);
  f = FaultConfig{};
  // Rack outages configured on a flat cluster would be silently disabled —
  // reject instead of surprising the user.
  f.rack_mtbf_hours = 24.0;
  EXPECT_THROW(f.validate(0), ContractViolation);
  EXPECT_NO_THROW(f.validate(2));
  f = FaultConfig{};
  f.checkpoint_interval_iterations = 0;
  EXPECT_THROW(f.validate(0), ContractViolation);
  f = FaultConfig{};
  f.flaky_server_fraction = 1.5;
  EXPECT_THROW(f.validate(0), ContractViolation);
  f = FaultConfig{};
  f.flaky_server_fraction = 0.25;
  f.flaky_rate_multiplier = 0.5;
  EXPECT_THROW(f.validate(0), ContractViolation);
}

TEST(RecoveryValidation, RecoveryConfigRejectsNonsenseOnlyWhenEnabled) {
  RecoveryConfig r;
  r.backoff_jitter = 7.0;
  EXPECT_NO_THROW(r.validate());  // disabled: never consulted
  r.enabled = true;
  EXPECT_THROW(r.validate(), ContractViolation);
  r = RecoveryConfig{};
  r.enabled = true;
  EXPECT_NO_THROW(r.validate());
  r.quarantine_backoff_factor = 0.5;
  EXPECT_THROW(r.validate(), ContractViolation);
  r = RecoveryConfig{};
  r.enabled = true;
  r.adaptive_checkpoint = true;
  r.checkpoint_cost_seconds = 0.0;
  EXPECT_THROW(r.validate(), ContractViolation);
}

TEST(RecoveryValidation, EngineConstructorValidatesUpFront) {
  EngineConfig ec;
  ec.fault.rack_mtbf_hours = 24.0;  // flat cluster: must be rejected
  GreedyScheduler scheduler;
  EXPECT_THROW(SimEngine(four_by_four(), ec, small_trace(4), scheduler), ContractViolation);
  EngineConfig ec2;
  ec2.recovery.enabled = true;
  ec2.recovery.retry_budget = -1;
  EXPECT_THROW(SimEngine(four_by_four(), ec2, small_trace(4), scheduler), ContractViolation);
}

// --------------------------------------------------------- end to end

TEST(RecoveryPolicies, RetryBudgetExhaustionFailsJobPermanently) {
  // Deterministic churn: crash the whole fleet twice while jobs are
  // running. With a budget of one fault retry per job, the second abort
  // pushes the victims into failed-permanent. Audited end to end.
  EngineConfig ec;
  ec.fault.server_mttr_hours = 0.05;
  ec.recovery.enabled = true;
  ec.recovery.retry_budget = 1;
  ec.recovery.quarantine_enabled = false;  // isolate the retry mechanism
  ec.recovery.backoff_base_seconds = 5.0;
  ec.audit.enabled = true;
  GreedyScheduler scheduler;
  SimEngine engine(four_by_four(), ec, small_trace(6, 29), scheduler);
  SimTime first_arrival = std::numeric_limits<double>::infinity();
  for (const Job& job : engine.cluster().jobs()) {
    first_arrival = std::min(first_arrival, job.spec().arrival);
  }
  for (int round = 0; round < 2; ++round) {
    for (ServerId s = 0; s < engine.cluster().server_count(); ++s) {
      engine.inject_server_failure(s, first_arrival + minutes(5.0 + 20.0 * round));
    }
  }
  const RunMetrics m = engine.run();

  EXPECT_GT(m.jobs_failed_permanent, 0u);
  EXPECT_GT(m.task_retries, 0u);
  EXPECT_GT(m.backoff_delay_seconds, 0.0);
  std::size_t failed_states = 0;
  for (const Job& job : engine.cluster().jobs()) {
    EXPECT_TRUE(job.done());  // terminal either way: completed or failed
    if (job.state() != JobState::Failed) continue;
    ++failed_states;
    EXPECT_GE(job.completion_time(), job.spec().arrival);
    for (const TaskId tid : job.tasks()) {
      EXPECT_FALSE(engine.cluster().task(tid).placed());
    }
  }
  EXPECT_EQ(failed_states, m.jobs_failed_permanent);
  engine.cluster().validate();
}

TEST(RecoveryPolicies, BackoffDelaysReadmissionButJobsStillFinish) {
  // Unlimited budget: every fault victim eventually re-places after its
  // backoff window; nothing is lost, nothing is stranded in backoff.
  EngineConfig ec;
  ec.fault.server_mtbf_hours = 6.0;
  ec.fault.server_mttr_hours = 0.1;
  ec.recovery.enabled = true;
  ec.recovery.quarantine_enabled = false;
  ec.recovery.backoff_base_seconds = 10.0;
  ec.audit.enabled = true;
  GreedyScheduler scheduler;
  SimEngine engine(four_by_four(), ec, small_trace(15, 13), scheduler);
  const RunMetrics m = engine.run();
  EXPECT_GT(m.server_failures, 0u);
  EXPECT_GT(m.task_retries, 0u);
  EXPECT_EQ(m.jobs_failed_permanent, 0u);
  for (const Job& job : engine.cluster().jobs()) EXPECT_TRUE(job.done());
  engine.cluster().validate();
}

TEST(RecoveryPolicies, FlakyFleetQuarantinesUnderAuditedChaos) {
  // The headline configuration: a flaky server tail under churn with every
  // policy on, audited every event. The sick servers must actually be
  // quarantined, and the run must stay internally consistent (the auditor
  // throws otherwise).
  exp::Scenario s = exp::chaos_scenario(25, 7);
  exp::set_flaky_servers(s, 0.25, 8.0);
  exp::set_recovery_policies(s, /*retry_budget=*/3);
  s.engine.audit.enabled = true;
  const RunMetrics m = exp::run_experiment(s, "MLF-H", 25);
  EXPECT_GT(m.server_failures, 0u);
  EXPECT_GT(m.quarantines, 0u);
  EXPECT_GT(m.task_retries, 0u);
  EXPECT_GE(m.goodput, 0.0);
  EXPECT_LE(m.goodput, 1.0);
}

// ----------------------------------------------------- determinism gate

TEST(RecoveryDeterminism, DefaultOffIsByteIdenticalUnderChurn) {
  // The bitwise contract: a present-but-disabled RecoveryConfig (even with
  // every sub-knob at a non-default value) must not perturb one RNG draw
  // or one event under an active fault process.
  auto run_logged = [](const RecoveryConfig& recovery) {
    EngineConfig ec;
    ec.fault.server_mtbf_hours = 6.0;
    ec.fault.server_mttr_hours = 0.25;
    ec.fault.task_kill_probability = 1e-3;
    ec.fault.checkpoint_interval_iterations = 3;
    ec.recovery = recovery;
    GreedyScheduler scheduler;
    SimEngine engine(four_by_four(), ec, small_trace(20, 13), scheduler);
    std::ostringstream out;
    JsonlEventLog log(out);
    engine.set_observer(&log);
    const RunMetrics m = engine.run();
    return std::make_pair(m, out.str());
  };
  RecoveryConfig weird;  // every policy knob non-default, master switch off
  weird.retry_budget = 2;
  weird.adaptive_checkpoint = true;
  weird.spread_placement = true;
  weird.quarantine_score_threshold = 0.1;
  weird.backoff_base_seconds = 1.0;
  const auto [a, log_a] = run_logged(RecoveryConfig{});
  const auto [b, log_b] = run_logged(weird);
  EXPECT_GT(a.server_failures, 0u);
  EXPECT_EQ(log_a, log_b);
  EXPECT_TRUE(deterministic_equal(a, b));
  EXPECT_EQ(b.quarantines, 0u);
  EXPECT_EQ(b.task_retries, 0u);
  EXPECT_EQ(b.jobs_failed_permanent, 0u);
}

TEST(RecoveryDeterminism, DefaultOffMatchesSeedForEveryRegisteredScheduler) {
  // Same gate through the public experiment surface, across the whole
  // scheduler registry: request.engine.recovery default vs explicitly
  // disabled must produce deterministic_equal metrics under faults.
  exp::Scenario s = exp::smoke_scenario(15, 7);
  exp::set_failure_rate(s, 4.0);
  for (const std::string& name : exp::registered_scheduler_names()) {
    exp::RunRequest plain = exp::make_request(s, name, 15);
    exp::RunRequest disabled = exp::make_request(s, name, 15);
    disabled.engine.recovery.retry_budget = 5;  // present but enabled=false
    disabled.engine.recovery.adaptive_checkpoint = true;
    const RunMetrics a = exp::execute_run(plain);
    const RunMetrics b = exp::execute_run(disabled);
    EXPECT_TRUE(deterministic_equal(a, b)) << name;
  }
}

}  // namespace
}  // namespace mlfs
