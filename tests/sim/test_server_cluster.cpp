#include <gtest/gtest.h>

#include "sim/cluster.hpp"
#include "workload/model_zoo.hpp"

namespace mlfs {
namespace {

JobSpec spec_with(int gpus, std::uint64_t seed = 3,
                  CommStructure comm = CommStructure::AllReduce) {
  JobSpec spec;
  spec.id = 0;
  spec.algorithm = MlAlgorithm::Mlp;
  spec.comm = comm;
  spec.gpu_request = gpus;
  spec.max_iterations = 10;
  spec.seed = seed;
  return spec;
}

ClusterConfig small_cluster() {
  ClusterConfig c;
  c.server_count = 2;
  c.gpus_per_server = 2;
  return c;
}

/// Registers one job into the cluster and returns its id.
JobId add_job(Cluster& cluster, JobSpec spec) {
  spec.id = static_cast<JobId>(cluster.job_count());
  auto inst = ModelZoo::instantiate(spec, static_cast<TaskId>(cluster.task_count()));
  cluster.register_job(std::move(inst.job), std::move(inst.tasks));
  return spec.id;
}

TEST(Cluster, ConstructionAndAccessors) {
  Cluster cluster(small_cluster());
  EXPECT_EQ(cluster.server_count(), 2u);
  EXPECT_EQ(cluster.server(1).gpu_count(), 2);
  EXPECT_EQ(cluster.server(0).id(), 0u);
  EXPECT_THROW(cluster.server(5), ContractViolation);
}

TEST(Cluster, RegisterJobAssignsPools) {
  Cluster cluster(small_cluster());
  const JobId id = add_job(cluster, spec_with(2));
  EXPECT_EQ(cluster.job_count(), 1u);
  EXPECT_EQ(cluster.task_count(), cluster.job(id).task_count());
  EXPECT_THROW(cluster.task(999), ContractViolation);
}

TEST(Cluster, RegisterRejectsNonContiguousIds) {
  Cluster cluster(small_cluster());
  auto spec = spec_with(1);
  spec.id = 5;  // pool expects 0
  auto inst = ModelZoo::instantiate(spec, 0);
  EXPECT_THROW(cluster.register_job(std::move(inst.job), std::move(inst.tasks)),
               ContractViolation);
}

TEST(Cluster, PlaceUnplaceUpdatesUtilization) {
  Cluster cluster(small_cluster());
  const JobId id = add_job(cluster, spec_with(1));
  const TaskId tid = cluster.job(id).task_at(0);
  const Task& task = cluster.task(tid);

  EXPECT_DOUBLE_EQ(cluster.server(0).utilization().norm(), 0.0);
  cluster.place_task(tid, 0, 1);
  EXPECT_EQ(task.server, 0u);
  EXPECT_EQ(task.gpu, 1);
  EXPECT_EQ(task.state, TaskState::Running);
  const ResourceVector u = cluster.server(0).utilization();
  EXPECT_NEAR(u[Resource::Cpu], task.demand[Resource::Cpu], 1e-12);
  EXPECT_NEAR(cluster.server(0).gpu_load(1), task.demand[Resource::Gpu], 1e-12);
  EXPECT_NEAR(cluster.server(0).gpu_load(0), 0.0, 1e-12);

  cluster.unplace_task(tid);
  EXPECT_FALSE(task.placed());
  EXPECT_EQ(task.state, TaskState::Queued);
  EXPECT_NEAR(cluster.server(0).utilization().norm(), 0.0, 1e-9);
}

TEST(Cluster, DoublePlacementRejected) {
  Cluster cluster(small_cluster());
  const JobId id = add_job(cluster, spec_with(1));
  const TaskId tid = cluster.job(id).task_at(0);
  cluster.place_task(tid, 0, 0);
  EXPECT_THROW(cluster.place_task(tid, 1, 0), ContractViolation);
}

TEST(Cluster, MoveTaskKeepsSumsConsistent) {
  Cluster cluster(small_cluster());
  const JobId id = add_job(cluster, spec_with(1));
  const TaskId tid = cluster.job(id).task_at(0);
  cluster.place_task(tid, 0, 0);
  cluster.move_task(tid, 1, 1);
  EXPECT_EQ(cluster.task(tid).server, 1u);
  EXPECT_EQ(cluster.task(tid).migrations, 1);
  EXPECT_NEAR(cluster.server(0).utilization().norm(), 0.0, 1e-9);
  EXPECT_GT(cluster.server(1).gpu_load(1), 0.0);
}

TEST(Cluster, UsageFactorAdjustsSums) {
  Cluster cluster(small_cluster());
  const JobId id = add_job(cluster, spec_with(1));
  const TaskId tid = cluster.job(id).task_at(0);
  cluster.place_task(tid, 0, 0);
  const double base_load = cluster.server(0).gpu_load(0);
  cluster.set_usage_factor(tid, 1.5);
  EXPECT_NEAR(cluster.server(0).gpu_load(0), base_load * 1.5, 1e-9);
  cluster.set_usage_factor(tid, 1.0);
  EXPECT_NEAR(cluster.server(0).gpu_load(0), base_load, 1e-9);
}

TEST(Cluster, OverloadDetection) {
  Cluster cluster(small_cluster());
  const JobId a = add_job(cluster, spec_with(1, 3));
  const JobId b = add_job(cluster, spec_with(1, 4));
  const JobId c = add_job(cluster, spec_with(1, 5));
  // Stack three workers on the same GPU: load ~1.0-1.9 > 0.9.
  cluster.place_task(cluster.job(a).task_at(0), 0, 0);
  cluster.place_task(cluster.job(b).task_at(0), 0, 0);
  cluster.place_task(cluster.job(c).task_at(0), 0, 0);
  EXPECT_TRUE(cluster.server(0).overloaded(0.9));
  EXPECT_FALSE(cluster.server(1).overloaded(0.9));
  EXPECT_EQ(cluster.overloaded_servers(0.9), std::vector<ServerId>{0});
  EXPECT_EQ(cluster.underloaded_servers(0.9), std::vector<ServerId>{1});
}

TEST(Cluster, FitsWithoutOverloadChecksTargetGpu) {
  Cluster cluster(small_cluster());
  const JobId a = add_job(cluster, spec_with(1, 3));
  const JobId b = add_job(cluster, spec_with(1, 4));
  cluster.place_task(cluster.job(a).task_at(0), 0, 0);
  const Task& incoming = cluster.task(cluster.job(b).task_at(0));
  // GPU 0 already holds ~0.35-0.62; GPU 1 is empty.
  EXPECT_TRUE(cluster.server(0).fits_without_overload(incoming, 1, 0.9));
  EXPECT_EQ(cluster.server(0).least_loaded_gpu(), 1);
}

TEST(Cluster, OverloadDegreeAveragesNorms) {
  Cluster cluster(small_cluster());
  EXPECT_DOUBLE_EQ(cluster.overload_degree(), 0.0);
  const JobId a = add_job(cluster, spec_with(1));
  cluster.place_task(cluster.job(a).task_at(0), 0, 0);
  const double expected = cluster.server(0).utilization().norm() / 2.0;
  EXPECT_NEAR(cluster.overload_degree(), expected, 1e-12);
}

TEST(Cluster, BandwidthLedgerIgnoresIntraServer) {
  Cluster cluster(small_cluster());
  cluster.record_transfer(0, 0, 100.0);
  EXPECT_DOUBLE_EQ(cluster.total_bandwidth_mb(), 0.0);
  cluster.record_transfer(0, 1, 100.0);
  cluster.record_transfer(1, 0, 50.0);
  EXPECT_DOUBLE_EQ(cluster.total_bandwidth_mb(), 150.0);
  EXPECT_EQ(cluster.transfer_count(), 2u);
}

TEST(Cluster, JobFullyPlacedTracksLiveTasks) {
  Cluster cluster(small_cluster());
  const JobId id = add_job(cluster, spec_with(2));
  const Job& job = cluster.job(id);
  EXPECT_FALSE(cluster.job_fully_placed(job));
  cluster.place_task(job.task_at(0), 0, 0);
  EXPECT_FALSE(cluster.job_fully_placed(job));
  cluster.place_task(job.task_at(1), 1, 0);
  EXPECT_TRUE(cluster.job_fully_placed(job));
}

TEST(Cluster, EstimateFreeWorkerSlotsShrinksWithLoad) {
  Cluster cluster(small_cluster());
  const int empty_slots = cluster.estimate_free_worker_slots(0.9);
  EXPECT_GT(empty_slots, 0);
  const JobId a = add_job(cluster, spec_with(2, 7));
  cluster.place_task(cluster.job(a).task_at(0), 0, 0);
  cluster.place_task(cluster.job(a).task_at(1), 0, 1);
  EXPECT_LT(cluster.estimate_free_worker_slots(0.9), empty_slots);
}

}  // namespace
}  // namespace mlfs
