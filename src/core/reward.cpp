#include "core/reward.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace mlfs::core {

RewardTracker::RewardTracker(const RlParams& params) : params_(params) {}

void RewardTracker::on_job_complete(const Job& job, SimTime now) {
  ++completions_;
  jct_sum_hours_ += to_hours(job.completion_time() - job.spec().arrival);
  if (job.completion_time() <= job.deadline()) ++deadline_met_;
  const double acc = job.accuracy_by_deadline();
  accuracy_sum_ += acc;
  if (acc >= job.spec().accuracy_requirement) ++accuracy_met_;
  (void)now;
}

double RewardTracker::round_reward(const Cluster& cluster, SimTime now) {
  (void)now;
  double g1 = 0.0, g2 = 0.0, g4 = 0.0, g5 = 0.0;
  if (completions_ > 0) {
    const auto n = static_cast<double>(completions_);
    g1 = 1.0 / (1.0 + jct_sum_hours_ / n);
    g2 = static_cast<double>(deadline_met_) / n;
    g4 = static_cast<double>(accuracy_met_) / n;
    g5 = accuracy_sum_ / n;
  }

  // Bandwidth objective: transfer volume this window, normalized by the
  // number of jobs currently in the system (so the scale is load-free).
  double g3 = 0.0;
  const double bw_now = cluster.total_bandwidth_mb();
  if (bandwidth_primed_) {
    std::size_t active = 0;
    for (const Job& job : cluster.jobs()) {
      if (!job.done() && job.state() != JobState::Waiting) ++active;
    }
    const double delta_gb_per_job =
        (bw_now - last_bandwidth_mb_) / 1000.0 / std::max<std::size_t>(1, active);
    g3 = 1.0 / (1.0 + delta_gb_per_job);
  }
  last_bandwidth_mb_ = bw_now;
  bandwidth_primed_ = true;

  const double reward = params_.beta1 * g1 + params_.beta2 * g2 + params_.beta3 * g3 +
                        params_.beta4 * g4 + params_.beta5 * g5;

  jct_sum_hours_ = 0.0;
  completions_ = 0;
  deadline_met_ = 0;
  accuracy_met_ = 0;
  accuracy_sum_ = 0.0;
  return reward;
}

RewardTuner::RewardTuner(std::size_t coarse_rounds, std::size_t refine_rounds,
                         std::uint64_t seed)
    : coarse_rounds_(coarse_rounds), refine_rounds_(refine_rounds), seed_(seed) {}

RewardWeights RewardTuner::tune(const std::function<double(const RewardWeights&)>& evaluate) {
  Rng rng(seed_);
  RewardWeights best;
  double best_value = evaluate(best);  // paper defaults are the anchor

  // Coarse global rounds (the limited Bayesian-optimization budget).
  for (std::size_t i = 0; i < coarse_rounds_; ++i) {
    RewardWeights w{rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform()};
    const double v = evaluate(w);
    if (v > best_value) {
      best_value = v;
      best = w;
    }
  }
  // Local refinement: slightly vary each value around the incumbent.
  for (std::size_t i = 0; i < refine_rounds_; ++i) {
    RewardWeights w = best;
    auto wiggle = [&rng](double x) {
      return std::clamp(x * rng.uniform(0.9, 1.1) + rng.uniform(-0.02, 0.02), 0.0, 1.0);
    };
    w.beta1 = wiggle(w.beta1);
    w.beta2 = wiggle(w.beta2);
    w.beta3 = wiggle(w.beta3);
    w.beta4 = wiggle(w.beta4);
    w.beta5 = wiggle(w.beta5);
    const double v = evaluate(w);
    if (v > best_value) {
      best_value = v;
      best = w;
    }
  }
  return best;
}

void RewardTracker::save_state(io::BinWriter& w) const {
  w.f64(jct_sum_hours_);
  w.u64(completions_);
  w.u64(deadline_met_);
  w.u64(accuracy_met_);
  w.f64(accuracy_sum_);
  w.f64(last_bandwidth_mb_);
  w.boolean(bandwidth_primed_);
}

void RewardTracker::restore_state(io::BinReader& r) {
  jct_sum_hours_ = r.f64();
  completions_ = static_cast<std::size_t>(r.u64());
  deadline_met_ = static_cast<std::size_t>(r.u64());
  accuracy_met_ = static_cast<std::size_t>(r.u64());
  accuracy_sum_ = r.f64();
  last_bandwidth_mb_ = r.f64();
  bandwidth_primed_ = r.boolean();
}

}  // namespace mlfs::core
