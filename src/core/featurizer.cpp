#include "core/featurizer.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"
#include "core/placement.hpp"
#include "workload/model_zoo.hpp"

namespace mlfs::core {

namespace {
constexpr std::size_t kTaskFeatures = 11;
constexpr std::size_t kAlgoOneHot = 5;  // AlexNet/ResNet/MLP/LSTM/SVM
constexpr std::size_t kPerCandidate = 6;

double squash_hours(double seconds) { return std::tanh(to_hours(seconds) / 12.0); }
}  // namespace

MlfRlFeaturizer::MlfRlFeaturizer(std::size_t candidate_count)
    : candidate_count_(candidate_count) {
  MLFS_EXPECT(candidate_count_ >= 1);
}

std::size_t MlfRlFeaturizer::state_dim() const {
  return kTaskFeatures + kAlgoOneHot + candidate_count_ * kPerCandidate;
}

std::vector<ServerId> MlfRlFeaturizer::candidates(const SchedulerContext& ctx,
                                                  const Task& task) const {
  std::vector<std::pair<double, ServerId>> feasible;
  for (const Server& s : ctx.cluster.servers()) {
    if (s.overloaded(ctx.hr)) continue;
    const int gpu = s.least_loaded_gpu();
    if (!s.fits_without_overload(task, gpu, ctx.hr)) continue;
    feasible.emplace_back(s.utilization().norm(), s.id());
  }
  std::sort(feasible.begin(), feasible.end());
  std::vector<ServerId> out;
  out.reserve(std::min(candidate_count_, feasible.size()));
  for (std::size_t i = 0; i < std::min(candidate_count_, feasible.size()); ++i) {
    out.push_back(feasible[i].second);
  }
  return out;
}

std::vector<double> MlfRlFeaturizer::state(const SchedulerContext& ctx, const Task& task,
                                           const std::vector<ServerId>& candidate_servers) const {
  const Job& job = ctx.cluster.job(task.job);
  std::vector<double> f;
  f.reserve(state_dim());

  // --- ML features (the Eq. 2 ingredients) ---
  f.push_back(job.spec().urgency / 10.0);                                     // L_J
  f.push_back(1.0 / static_cast<double>(job.completed_iterations() + 1));     // 1/I
  double loss_ratio = 1.0;
  if (!job.loss_reductions().empty() && job.cumulative_loss_reduction() > 0.0) {
    loss_ratio = job.loss_reductions().back() / job.cumulative_loss_reduction();
  }
  f.push_back(loss_ratio);                                                    // δl ratio
  f.push_back(task.partition_params_m / job.total_params_m());                // S^J_k
  const auto descendants = job.dag().descendant_counts();
  f.push_back(job.task_count() > 1
                  ? static_cast<double>(descendants[task.local_index]) /
                        static_cast<double>(job.task_count() - 1)
                  : 0.0);                                                     // DAG position
  f.push_back(task.is_parameter_server ? 1.0 : 0.0);

  // --- computation features (the Eq. 4 ingredients) ---
  f.push_back(static_cast<double>(job.completed_iterations()) /
              static_cast<double>(job.spec().max_iterations));
  f.push_back(squash_hours(job.deadline() - ctx.now));  // signed slack
  const int remaining = std::max(0, job.target_iterations() - job.completed_iterations());
  f.push_back(squash_hours(task.base_compute_seconds * remaining));
  f.push_back(squash_hours(task.total_waiting +
                           (task.state == TaskState::Queued ? ctx.now - task.queued_since : 0.0)));
  f.push_back(static_cast<double>(job.spec().gpu_request) / 32.0);

  // --- algorithm one-hot (§3.4: "the ML algorithm name") ---
  for (std::size_t i = 0; i < kAlgoOneHot; ++i) {
    f.push_back(ModelZoo::algorithm_at(i) == job.spec().algorithm ? 1.0 : 0.0);
  }

  // --- per-candidate server features ---
  double max_comm = 1e-9;
  std::vector<double> comms(candidate_servers.size(), 0.0);
  for (std::size_t i = 0; i < candidate_servers.size(); ++i) {
    comms[i] = MlfPlacement::comm_volume_with_server(ctx.cluster, task, candidate_servers[i]);
    max_comm = std::max(max_comm, comms[i]);
  }
  for (std::size_t i = 0; i < candidate_count_; ++i) {
    if (i < candidate_servers.size()) {
      const Server& s = ctx.cluster.server(candidate_servers[i]);
      const ResourceVector u = s.utilization();
      f.push_back(u[Resource::Gpu]);
      f.push_back(u[Resource::Cpu]);
      f.push_back(u[Resource::Mem]);
      f.push_back(u[Resource::Net]);
      f.push_back(s.gpu_load(s.least_loaded_gpu()));
      f.push_back(comms[i] / max_comm);
    } else {
      // Missing slot: encode as a saturated server with no affinity.
      for (std::size_t k = 0; k < kPerCandidate - 1; ++k) f.push_back(1.0);
      f.push_back(0.0);
    }
  }
  MLFS_ENSURE(f.size() == state_dim());
  return f;
}

}  // namespace mlfs::core
