// Task-priority determination (§3.3.1, Eqs. 2-6).
//
//   P'^ML_{k,J} = L_J · (1/I) · (δl_{I-1} / Σ_{j<I} δl_j) · S^J_k     (Eq. 2)
//   P^ML        = P'^ML + γ Σ_{i∈child(k)} P^ML_i                      (Eq. 3)
//   P'^C_{k,J}  = γd/(d_{k,J} − t) + γr/r_{k,J} + γw·w_{k,J}           (Eq. 4)
//   P^C         = P'^C + γ Σ_{i∈child(k)} P^C_i                        (Eq. 5)
//   P_{k,J}     = α·P^ML + (1−α)·P^C                                   (Eq. 6)
//
// Time quantities in Eq. 4 are expressed in hours (and slacks clamped to a
// minimum) so the three terms have comparable magnitude under the paper's
// default weights. The parameter-server task receives the highest priority
// in its job (§3.3.1).
#pragma once

#include <vector>

#include "core/config.hpp"
#include "sim/cluster.hpp"

namespace mlfs::core {

class PriorityCalculator {
 public:
  explicit PriorityCalculator(const PriorityParams& params);

  /// Combined priorities P_{k,J} (Eq. 6) for every task of `job`, indexed
  /// by local task index. Finished/removed tasks get 0.
  std::vector<double> job_priorities(const Cluster& cluster, const Job& job, SimTime now) const;

  /// The ML-feature component only (Eq. 3) — exposed for tests.
  std::vector<double> ml_priorities(const Cluster& cluster, const Job& job) const;

  /// The computation-feature component only (Eq. 5) — exposed for tests.
  std::vector<double> computation_priorities(const Cluster& cluster, const Job& job,
                                             SimTime now) const;

  /// Eq. 2's loss-reduction share δl_{I-1} / Σ_{j<I} δl_j, clamped to
  /// [0, 1]. The raw ratio can leave that range on adversarial curves (a
  /// loss *increase* makes δl negative), which would flip the sign of the
  /// whole ML priority and push the job below freshly-arrived work; the
  /// clamp pins such iterations to "no ML urgency" instead. Returns 1 when
  /// there is no history yet (first iteration: full importance).
  static double loss_share(double last_delta, double cumulative);

  /// Per-task deadline d_{k,J}: the job deadline pulled earlier for tasks
  /// deeper in the dependency graph (tasks whose descendants still need
  /// time must finish sooner), following the [21]-style derivation the
  /// paper cites.
  static double task_deadline(const Job& job, std::size_t local_index,
                              const std::vector<std::size_t>& depth_to_sink);

  const PriorityParams& params() const { return params_; }

 private:
  PriorityParams params_;
};

}  // namespace mlfs::core
