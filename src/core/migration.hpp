// Migration-victim selection for overloaded servers (§3.3.3, method of
// [47] advanced with ML features): build the *ideal virtual task to move
// out* U_v — per-resource maximum task usage on overloaded resources,
// minimum on underloaded ones, and zero communication with the tasks that
// stay — then pick the candidate task closest to U_v. Candidates are
// restricted to the lowest-priority p_s fraction of tasks on overloaded
// GPUs while any GPU is hot (protecting high-priority tasks), otherwise
// all tasks on the server qualify.
#pragma once

#include <functional>
#include <optional>

#include "core/config.hpp"
#include "sim/cluster.hpp"

namespace mlfs::core {

class MigrationSelector {
 public:
  explicit MigrationSelector(const MigrationParams& params);

  /// Priority lookup for a task (combined Eq. 6 value), provided by the
  /// scheduler which caches per-job priority vectors.
  using PriorityFn = std::function<double(TaskId)>;

  /// Next task to move out of `server`, or nullopt when the server has no
  /// movable task. Call repeatedly (applying each move) until the server
  /// is no longer overloaded.
  std::optional<TaskId> select_victim(const Cluster& cluster, const Server& server, double hr,
                                      const PriorityFn& priority) const;

  const MigrationParams& params() const { return params_; }

 private:
  MigrationParams params_;
};

}  // namespace mlfs::core
