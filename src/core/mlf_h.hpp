// MLF-H: ML-feature-based heuristic task scheduling (§3.3).
// Every tick: (1) order the waiting queue by combined priority (Eqs. 2-6),
// (2) place tasks one by one onto the RIAL-matched underloaded server /
// least-loaded GPU until nothing fits, (3) relieve overloaded servers by
// moving out ideal-virtual-task victims (§3.3.3) — migrated directly when
// an underloaded host exists, otherwise preempted back to the queue.
#pragma once

#include <functional>
#include <unordered_map>

#include "core/migration.hpp"
#include "core/placement.hpp"
#include "core/priority.hpp"
#include "sim/scheduler.hpp"

namespace mlfs::core {

class MlfH : public Scheduler {
 public:
  explicit MlfH(const MlfsConfig& config);

  std::string name() const override { return "MLF-H"; }
  void schedule(SchedulerContext& ctx) override;

  /// Combined Eq. 6 priority of a task (cached per job per tick).
  double task_priority(const Cluster& cluster, TaskId task, SimTime now);

  /// Queue sorted by priority, highest first (live tasks only).
  std::vector<TaskId> ordered_queue(SchedulerContext& ctx);

  /// Called after every successful queue placement — lets the MLFS facade
  /// log (state, action) pairs for imitation while the heuristic drives.
  using PlacementObserver = std::function<void(SchedulerContext&, TaskId, ServerId)>;
  void set_placement_observer(PlacementObserver observer) {
    observer_ = std::move(observer);
  }

  /// Queue-placement pass only (used by the facade when the RL policy has
  /// taken over placement but the heuristic still handles overload).
  void place_queued_tasks(SchedulerContext& ctx);

  /// Overload-relief pass only (§3.3.3).
  void handle_overloaded_servers(SchedulerContext& ctx);

  const MlfPlacement& placement() const { return placement_; }
  const PriorityCalculator& priorities() const { return priority_calc_; }

 private:
  struct CacheEntry {
    SimTime computed_at = -1.0;
    std::vector<double> priorities;
  };
  const std::vector<double>& job_priority_vector(const Cluster& cluster, const Job& job,
                                                 SimTime now);

  MlfsConfig config_;
  PriorityCalculator priority_calc_;
  MlfPlacement placement_;
  MigrationSelector migration_;
  std::unordered_map<JobId, CacheEntry> cache_;
  PlacementObserver observer_;
};

}  // namespace mlfs::core
