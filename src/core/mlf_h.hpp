// MLF-H: ML-feature-based heuristic task scheduling (§3.3).
// Every tick: (1) order the waiting queue by combined priority (Eqs. 2-6),
// (2) place tasks one by one onto the RIAL-matched underloaded server /
// least-loaded GPU until nothing fits, (3) relieve overloaded servers by
// moving out ideal-virtual-task victims (§3.3.3) — migrated directly when
// an underloaded host exists, otherwise preempted back to the queue.
#pragma once

#include <functional>
#include <unordered_map>

#include "core/migration.hpp"
#include "core/placement.hpp"
#include "core/priority.hpp"
#include "sim/scheduler.hpp"

namespace mlfs::core {

class MlfH : public Scheduler {
 public:
  explicit MlfH(const MlfsConfig& config);

  std::string name() const override { return "MLF-H"; }
  void schedule(SchedulerContext& ctx) override;

  /// Evicts the job's priority-cache entry — without this the cache grows
  /// without bound over a long run (one entry per job ever seen).
  void on_job_complete(const Job& job, SimTime now) override;

  /// Priority-cache consistency for SimAuditor: no entry for a completed
  /// or unknown job, no future timestamps, priority vector sized to the
  /// job's tasks with finite non-negative values.
  void audit_invariants(const Cluster& cluster, SimTime now) const override;

  /// Hot-path counters (candidate scans + comm-memo hit rate).
  SchedStats sched_stats() const override { return placement_.stats(); }

  /// Snapshot support: the per-tick priority cache (sorted by job id) and
  /// the placement memo/counters. Both must round-trip for restored runs to
  /// replay bit-identically — the cache skips priority recomputation within
  /// a tick, so dropping it would change RNG-free but wall-clock-visible
  /// SchedStats trajectories.
  void save_state(std::ostream& os) const override;
  void restore_state(std::istream& is) override;

  /// Number of jobs currently held in the priority cache (for tests).
  std::size_t priority_cache_size() const { return cache_.size(); }

  /// Combined Eq. 6 priority of a task (cached per job per tick).
  double task_priority(const Cluster& cluster, TaskId task, SimTime now);

  /// Queue sorted by priority, highest first (live tasks only).
  std::vector<TaskId> ordered_queue(SchedulerContext& ctx);

  /// Called after every successful queue placement — lets the MLFS facade
  /// log (state, action) pairs for imitation while the heuristic drives.
  using PlacementObserver = std::function<void(SchedulerContext&, TaskId, ServerId)>;
  void set_placement_observer(PlacementObserver observer) {
    observer_ = std::move(observer);
  }

  /// Queue-placement pass only (used by the facade when the RL policy has
  /// taken over placement but the heuristic still handles overload).
  void place_queued_tasks(SchedulerContext& ctx);

  /// Overload-relief pass only (§3.3.3).
  void handle_overloaded_servers(SchedulerContext& ctx);

  const MlfPlacement& placement() const { return placement_; }
  const PriorityCalculator& priorities() const { return priority_calc_; }

 private:
  struct CacheEntry {
    SimTime computed_at = -1.0;
    std::vector<double> priorities;
  };
  const std::vector<double>& job_priority_vector(const Cluster& cluster, const Job& job,
                                                 SimTime now);
  /// Sorts task ids by priority, highest first, stable. Decorate-sort-
  /// undecorate: priorities are evaluated once per task instead of once per
  /// comparison; the permutation is identical to sorting with a
  /// priority-comparing comparator (same cached values, same stability).
  void sort_by_priority(std::vector<TaskId>& tasks, SchedulerContext& ctx);

  MlfsConfig config_;
  PriorityCalculator priority_calc_;
  MlfPlacement placement_;
  MigrationSelector migration_;
  std::unordered_map<JobId, CacheEntry> cache_;
  PlacementObserver observer_;
};

}  // namespace mlfs::core
