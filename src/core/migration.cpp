#include "core/migration.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"
#include "core/placement.hpp"

namespace mlfs::core {

MigrationSelector::MigrationSelector(const MigrationParams& params) : params_(params) {
  MLFS_EXPECT(params_.ps > 0.0 && params_.ps <= 1.0);
}

std::optional<TaskId> MigrationSelector::select_victim(const Cluster& cluster,
                                                       const Server& server, double hr,
                                                       const PriorityFn& priority) const {
  // Candidate pool: tasks on overloaded GPUs, filtered to the lowest-
  // priority p_s fraction; if no GPU is hot, every task on the server.
  std::vector<TaskId> candidates;
  bool any_hot_gpu = false;
  for (int g = 0; g < server.gpu_count(); ++g) {
    if (server.gpu_load(g) > hr) {
      any_hot_gpu = true;
      const auto& tasks = server.tasks_on_gpu(g);
      candidates.insert(candidates.end(), tasks.begin(), tasks.end());
    }
  }
  if (any_hot_gpu) {
    std::sort(candidates.begin(), candidates.end(), [&priority](TaskId a, TaskId b) {
      return priority(a) < priority(b);  // ascending: lowest priority first
    });
    const auto keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(params_.ps * candidates.size())));
    candidates.resize(std::min(candidates.size(), keep));
  } else {
    candidates = server.tasks();
  }
  if (candidates.empty()) return std::nullopt;

  // Which server resources are overloaded?
  const ResourceVector util = server.utilization();
  std::array<bool, kNumResources> hot{};
  hot[static_cast<std::size_t>(Resource::Cpu)] = util[Resource::Cpu] > hr;
  hot[static_cast<std::size_t>(Resource::Mem)] = util[Resource::Mem] > hr;
  hot[static_cast<std::size_t>(Resource::Net)] = util[Resource::Net] > hr;
  hot[static_cast<std::size_t>(Resource::Gpu)] = any_hot_gpu;

  // Ideal virtual task U_v: max usage on hot resources, min on cold ones,
  // zero communication with co-located tasks.
  ResourceVector ideal;
  for (std::size_t r = 0; r < kNumResources; ++r) {
    double extreme = cluster.task(candidates.front()).demand.at(r) *
                     cluster.task(candidates.front()).usage_factor;
    for (const TaskId tid : candidates) {
      const Task& t = cluster.task(tid);
      const double usage = t.demand.at(r) * t.usage_factor;
      extreme = hot[r] ? std::max(extreme, usage) : std::min(extreme, usage);
    }
    ideal.at(r) = extreme;
  }

  double max_comm = 0.0;
  std::vector<double> comms(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    comms[i] =
        MlfPlacement::comm_volume_with_server(cluster, cluster.task(candidates[i]), server.id());
    max_comm = std::max(max_comm, comms[i]);
  }

  TaskId best = candidates.front();
  double best_distance = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Task& t = cluster.task(candidates[i]);
    double sq = 0.0;
    for (std::size_t r = 0; r < kNumResources; ++r) {
      const double d = t.demand.at(r) * t.usage_factor - ideal.at(r);
      sq += d * d;
    }
    if (max_comm > 0.0) {
      const double d = comms[i] / max_comm;  // ideal communication = 0
      sq += d * d;
    }
    const double distance = std::sqrt(sq);
    if (distance < best_distance) {
      best_distance = distance;
      best = candidates[i];
    }
  }
  return best;
}

}  // namespace mlfs::core
