#include "core/mlf_c.hpp"

#include "common/binio.hpp"

namespace mlfs::core {

MlfC::MlfC(const LoadControlParams& params) : params_(params) {}

void MlfC::before_schedule(Cluster& cluster, const std::vector<TaskId>& queue, SimTime now) {
  if (!params_.enabled) {
    overloaded_ = false;
    return;
  }
  // §3.5: the system is overloaded when there are queued tasks or when the
  // cluster overload degree exceeds h_s. "Queued" means backlog — tasks
  // that already waited past a round or two — not tasks in transit to
  // their first placement.
  bool backlog = false;
  for (const TaskId tid : queue) {
    const Task& t = cluster.task(tid);
    if (t.state == TaskState::Queued && now - t.queued_since >= kBacklogSeconds) {
      backlog = true;
      break;
    }
  }
  overloaded_ = backlog || cluster.overload_degree() > params_.hs;
  if (!overloaded_) return;

  for (Job& job : cluster.jobs()) {
    if (job.done()) continue;
    const StopPolicy next =
        job.active_policy() == StopPolicy::FixedIterations ? StopPolicy::OptStop
                                                           : StopPolicy::AccuracyOnly;
    if (job.downgrade_policy(next)) ++downgrades_;
  }
}

void MlfC::save_state(std::ostream& os) const {
  io::BinWriter w(os);
  w.boolean(overloaded_);
  w.u64(downgrades_);
}

void MlfC::restore_state(std::istream& is) {
  io::BinReader r(is);
  overloaded_ = r.boolean();
  downgrades_ = static_cast<std::size_t>(r.u64());
}

}  // namespace mlfs::core
