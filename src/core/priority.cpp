#include "core/priority.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace mlfs::core {

namespace {
/// Minimum slack/remaining clamps keep Eq. 4's reciprocals finite when a
/// deadline has passed or a task is nearly done.
constexpr double kMinSlackHours = 1.0 / 60.0;      // one minute
constexpr double kMinRemainingHours = 1.0 / 100.0;  // 36 seconds

bool task_live(const Task& t) {
  return t.state != TaskState::Finished && t.state != TaskState::Removed;
}
}  // namespace

PriorityCalculator::PriorityCalculator(const PriorityParams& params) : params_(params) {
  MLFS_EXPECT(params_.alpha >= 0.0 && params_.alpha <= 1.0);
  MLFS_EXPECT(params_.gamma > 0.0 && params_.gamma < 1.0);
}

double PriorityCalculator::loss_share(double last_delta, double cumulative) {
  if (cumulative <= 0.0) return 1.0;
  return std::clamp(last_delta / cumulative, 0.0, 1.0);
}

double PriorityCalculator::task_deadline(const Job& job, std::size_t local_index,
                                         const std::vector<std::size_t>& depth_to_sink) {
  // A task with descendants must leave them room: pull its deadline
  // earlier by the critical-path share its descendants still occupy,
  // scaled by the job's remaining estimated runtime.
  const double depth = static_cast<double>(depth_to_sink[local_index]);
  std::size_t max_depth = 0;
  for (const auto d : depth_to_sink) max_depth = std::max(max_depth, d);
  if (max_depth == 0) return job.deadline();
  const int remaining_iters =
      std::max(1, job.target_iterations() - job.completed_iterations());
  const double remaining_seconds = job.ideal_iteration_seconds() * remaining_iters;
  return job.deadline() -
         remaining_seconds * depth / static_cast<double>(max_depth + 1);
}

std::vector<double> PriorityCalculator::ml_priorities(const Cluster& cluster,
                                                      const Job& job) const {
  const Dag& dag = job.dag();
  const std::size_t n = dag.node_count();
  std::vector<double> base(n, 0.0);

  // Shared temporal factor of Eq. 2: L_J · (1/I) · normalized loss
  // reduction of the most recent finished iteration.
  const int current_iteration = job.completed_iterations() + 1;  // I >= 1
  // L_J normalized by the urgency-level count m (§3.3.1 defines
  // L_J ∈ [0, m]) so the ML and computation terms share an O(1) scale
  // under the paper's default α.
  const double urgency = params_.use_urgency ? job.spec().urgency / 10.0 : 1.0;
  const double temporal = 1.0 / static_cast<double>(current_iteration);
  const double loss_ratio =
      job.loss_reductions().empty()
          ? 1.0  // first iteration: full importance
          : loss_share(job.loss_reductions().back(), job.cumulative_loss_reduction());

  for (std::size_t k = 0; k < n; ++k) {
    const Task& t = cluster.task(job.task_at(k));
    if (!task_live(t)) continue;
    const double size = t.partition_params_m / job.total_params_m();  // S^J_k
    base[k] = urgency * temporal * loss_ratio * size;                 // Eq. 2
  }

  // Eq. 3: fold discounted child priorities, children before parents.
  std::vector<double> priority = base;
  for (const std::size_t u : dag.reverse_topological_order()) {
    double child_sum = 0.0;
    for (const std::size_t c : dag.children(u)) child_sum += priority[c];
    priority[u] = base[u] + params_.gamma * child_sum;
  }
  return priority;
}

std::vector<double> PriorityCalculator::computation_priorities(const Cluster& cluster,
                                                               const Job& job,
                                                               SimTime now) const {
  const Dag& dag = job.dag();
  const std::size_t n = dag.node_count();
  const auto depth = dag.depth_to_sink();
  std::vector<double> base(n, 0.0);

  const int remaining_iters =
      std::max(0, job.target_iterations() - job.completed_iterations());
  for (std::size_t k = 0; k < n; ++k) {
    const Task& t = cluster.task(job.task_at(k));
    if (!task_live(t)) continue;

    double value = 0.0;
    if (params_.use_deadline_term) {
      // Eq. 4's 1/(d - t) term: a close deadline boosts priority sharply.
      // Once the deadline has passed the boost is gone (the literal
      // formula would go negative and permanently starve expired jobs;
      // they still compete via the remaining-time and waiting terms).
      const double slack_h = to_hours(task_deadline(job, k, depth) - now);
      if (slack_h > 0.0) value += params_.gamma_d / std::max(slack_h, kMinSlackHours);
    }
    const double remaining_h = std::max(
        to_hours(t.base_compute_seconds * remaining_iters), kMinRemainingHours);
    value += params_.gamma_r / remaining_h;

    const double waiting_h =
        to_hours(t.total_waiting + (t.state == TaskState::Queued ? now - t.queued_since : 0.0));
    value += params_.gamma_w * waiting_h;
    base[k] = value;  // Eq. 4
  }

  std::vector<double> priority = base;
  for (const std::size_t u : dag.reverse_topological_order()) {
    double child_sum = 0.0;
    for (const std::size_t c : dag.children(u)) child_sum += priority[c];
    priority[u] = base[u] + params_.gamma * child_sum;  // Eq. 5
  }
  return priority;
}

std::vector<double> PriorityCalculator::job_priorities(const Cluster& cluster, const Job& job,
                                                       SimTime now) const {
  const auto ml = ml_priorities(cluster, job);
  const auto comp = computation_priorities(cluster, job, now);
  std::vector<double> combined(ml.size());
  for (std::size_t k = 0; k < ml.size(); ++k) {
    combined[k] = params_.alpha * ml[k] + (1.0 - params_.alpha) * comp[k];  // Eq. 6
  }
  // §3.3.1: the parameter-server task gets the highest priority in its job
  // — workers can only ship results once the PS is up.
  double max_priority = 0.0;
  for (const double p : combined) max_priority = std::max(max_priority, p);
  for (std::size_t k = 0; k < combined.size(); ++k) {
    const Task& t = cluster.task(job.task_at(k));
    if (t.is_parameter_server && task_live(t)) {
      combined[k] = max_priority * 1.01 + 1e-9;
    }
  }
  return combined;
}

}  // namespace mlfs::core
