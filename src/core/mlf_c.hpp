// MLF-C: ML-feature-based system load control (§3.5). The cluster is
// overloaded when tasks wait in the queue or the overload degree
// O_c = avg_s ||U_s|| exceeds h_s. While overloaded, MLF-C downgrades each
// job's stop-policy option one step per tick, as far as the job's owner
// permitted (i → ii → iii): fixed-iteration jobs switch to OptStop,
// OptStop jobs switch to stopping at their required accuracy. The engine
// enforces the downgraded policies, stopping tasks/iterations that no
// longer contribute to the desired accuracy.
#pragma once

#include "core/config.hpp"
#include "sim/engine.hpp"

namespace mlfs::core {

class MlfC : public LoadController {
 public:
  explicit MlfC(const LoadControlParams& params);

  /// Tasks must have waited at least this long for the queue to count as
  /// backlog (§3.5's "tasks in the queue"); tasks merely in transit
  /// between arrival and their first placement round do not make the
  /// system "overloaded".
  static constexpr double kBacklogSeconds = 120.0;

  std::string name() const override { return "MLF-C"; }
  void before_schedule(Cluster& cluster, const std::vector<TaskId>& queue,
                       SimTime now) override;

  /// True iff the last before_schedule observed an overloaded system.
  bool overloaded() const { return overloaded_; }
  std::size_t downgrade_count() const { return downgrades_; }

  /// Snapshot support (the downgrade counter feeds RunMetrics).
  void save_state(std::ostream& os) const override;
  void restore_state(std::istream& is) override;

 private:
  LoadControlParams params_;
  bool overloaded_ = false;
  std::size_t downgrades_ = 0;
};

}  // namespace mlfs::core
