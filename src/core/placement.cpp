#include "core/placement.hpp"

#include <algorithm>
#include <cmath>

namespace mlfs::core {

MlfPlacement::MlfPlacement(const PlacementParams& params) : params_(params) {}

namespace {
/// Shared walk over a task's communication peers; `weight(peer_server)`
/// scores each placed peer's volume contribution.
template <typename WeightFn>
double weighted_comm_volume(const Cluster& cluster, const Task& task, const WeightFn& weight) {
  const Job& job = cluster.job(task.job);
  const Dag& dag = job.dag();
  const std::size_t k = task.local_index;
  double volume = 0.0;
  auto edge_volume = [&job](const Task& a, const Task& b) {
    return b.is_parameter_server || a.is_parameter_server ? job.spec().comm_volume_ps_mb
                                                          : job.spec().comm_volume_ww_mb;
  };
  auto accumulate = [&](std::size_t other_index) {
    const Task& other = cluster.task(job.task_at(other_index));
    if (other.placed()) volume += weight(other.server) * edge_volume(task, other);
  };
  for (const std::size_t p : dag.parents(k)) accumulate(p);
  for (const std::size_t c : dag.children(k)) accumulate(c);
  if (job.spec().comm == CommStructure::AllReduce && job.task_count() > 1) {
    accumulate((k + 1) % job.task_count());
    accumulate((k + job.task_count() - 1) % job.task_count());
  }
  return volume;
}
}  // namespace

double MlfPlacement::comm_volume_with_server(const Cluster& cluster, const Task& task,
                                             ServerId server) {
  return weighted_comm_volume(cluster, task, [server](ServerId peer) {
    return peer == server ? 1.0 : 0.0;
  });
}

double MlfPlacement::comm_volume_with_server_topology(const Cluster& cluster, const Task& task,
                                                      ServerId server, double rack_affinity) {
  const int rack = cluster.rack_of(server);
  return weighted_comm_volume(cluster, task,
                              [&cluster, server, rack, rack_affinity](ServerId peer) {
                                if (peer == server) return 1.0;
                                return cluster.rack_of(peer) == rack ? rack_affinity : 0.0;
                              });
}

std::optional<HostChoice> MlfPlacement::choose_host(const SchedulerContext& ctx, const Task& task,
                                                    bool migrating) const {
  const Cluster& cluster = ctx.cluster;

  // Candidate set: underloaded servers that can host the task without
  // becoming overloaded (on every resource and the target GPU).
  struct Candidate {
    ServerId server;
    int gpu;
    ResourceVector util;
    double comm;  // MB/iteration with tasks already on the server
  };
  std::vector<Candidate> candidates;
  double max_comm = 0.0;
  for (const Server& s : cluster.servers()) {
    if (migrating && s.id() == task.server) continue;
    if (s.overloaded(ctx.hr)) continue;
    const int gpu = s.least_loaded_gpu();
    if (!s.fits_without_overload(task, gpu, ctx.hr)) continue;
    Candidate c{s.id(), gpu, s.utilization(),
                params_.use_topology
                    ? comm_volume_with_server_topology(cluster, task, s.id(),
                                                       params_.rack_affinity)
                    : comm_volume_with_server(cluster, task, s.id())};
    max_comm = std::max(max_comm, c.comm);
    candidates.push_back(std::move(c));
  }
  if (candidates.empty()) return std::nullopt;

  // Ideal virtual host: component-wise minimum utilization; maximum
  // communication volume (normalized); zero movement degradation.
  ResourceVector ideal_util = candidates.front().util;
  for (const Candidate& c : candidates) {
    for (std::size_t i = 0; i < kNumResources; ++i) {
      ideal_util.at(i) = std::min(ideal_util.at(i), c.util.at(i));
    }
  }

  // Movement degradation q (same for every destination here: transfer time
  // of the task state; it still participates so that migrating choices are
  // penalized consistently with [10]'s model).
  const double q = migrating
                       ? task.state_size_mb / cluster.config().server_bandwidth_mbps /
                             60.0  // minutes of disruption, ~[0,1] scale
                       : 0.0;

  const Candidate* best = nullptr;
  double best_distance = 0.0;
  for (const Candidate& c : candidates) {
    double sq = 0.0;
    for (std::size_t i = 0; i < kNumResources; ++i) {
      const double d = c.util.at(i) - ideal_util.at(i);
      sq += d * d;
    }
    if (params_.use_bandwidth && max_comm > 0.0) {
      const double d = c.comm / max_comm - 1.0;  // ideal = the max
      sq += d * d;
    }
    sq += q * q;  // distance of q to its ideal 0
    const double distance = std::sqrt(sq);
    if (best == nullptr || distance < best_distance) {
      best = &c;
      best_distance = distance;
    }
  }
  return HostChoice{best->server, best->gpu};
}

}  // namespace mlfs::core
