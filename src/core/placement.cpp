#include "core/placement.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/binio.hpp"

namespace mlfs::core {

MlfPlacement::MlfPlacement(const PlacementParams& params) : params_(params) {}

namespace {
/// Shared walk over a task's *placed* communication peers, in the canonical
/// order: DAG parents, DAG children, then all-reduce ring neighbours. Calls
/// `fn(peer_task, edge_volume_mb)` for each. Every comm-volume computation
/// (direct or memoized) funnels through this walk so they accumulate the
/// same terms in the same order — the bit-exactness contract.
template <typename PeerFn>
void for_each_placed_peer(const Cluster& cluster, const Task& task, const PeerFn& fn) {
  const Job& job = cluster.job(task.job);
  const Dag& dag = job.dag();
  const std::size_t k = task.local_index;
  auto edge_volume = [&job](const Task& a, const Task& b) {
    return b.is_parameter_server || a.is_parameter_server ? job.spec().comm_volume_ps_mb
                                                          : job.spec().comm_volume_ww_mb;
  };
  auto visit = [&](std::size_t other_index) {
    const Task& other = cluster.task(job.task_at(other_index));
    if (other.placed()) fn(other, edge_volume(task, other));
  };
  for (const std::size_t p : dag.parents(k)) visit(p);
  for (const std::size_t c : dag.children(k)) visit(c);
  if (job.spec().comm == CommStructure::AllReduce && job.task_count() > 1) {
    visit((k + 1) % job.task_count());
    visit((k + job.task_count() - 1) % job.task_count());
  }
}

/// `weight(peer_server)` scores each placed peer's volume contribution.
template <typename WeightFn>
double weighted_comm_volume(const Cluster& cluster, const Task& task, const WeightFn& weight) {
  double volume = 0.0;
  for_each_placed_peer(cluster, task, [&volume, &weight](const Task& other, double edge) {
    volume += weight(other.server) * edge;
  });
  return volume;
}

/// Rack-spread dimension (PlacementParams::spread_racks): fraction of the
/// task's already-placed job siblings that sit in `rack`. The ideal host
/// has none co-racked, so the distance term is the fraction itself. One
/// walk fills the count for every rack so the candidate loop is O(1) per
/// candidate.
std::vector<double> rack_peer_fractions(const Cluster& cluster, const Task& task) {
  int max_rack = 0;
  for (ServerId sid = 0; sid < cluster.server_count(); ++sid) {
    max_rack = std::max(max_rack, cluster.rack_of(sid));
  }
  std::vector<double> frac(static_cast<std::size_t>(max_rack) + 1, 0.0);
  const Job& job = cluster.job(task.job);
  if (job.task_count() <= 1) return frac;
  int placed_peers = 0;
  for (const TaskId tid : job.tasks()) {
    if (tid == task.id) continue;
    const Task& other = cluster.task(tid);
    if (!other.placed()) continue;
    ++placed_peers;
    frac[static_cast<std::size_t>(cluster.rack_of(other.server))] += 1.0;
  }
  if (placed_peers > 0) {
    for (double& f : frac) f /= static_cast<double>(placed_peers);
  }
  return frac;
}
}  // namespace

double MlfPlacement::comm_volume_with_server(const Cluster& cluster, const Task& task,
                                             ServerId server) {
  return weighted_comm_volume(cluster, task, [server](ServerId peer) {
    return peer == server ? 1.0 : 0.0;
  });
}

double MlfPlacement::comm_volume_with_server_topology(const Cluster& cluster, const Task& task,
                                                      ServerId server, double rack_affinity) {
  const int rack = cluster.rack_of(server);
  return weighted_comm_volume(cluster, task,
                              [&cluster, server, rack, rack_affinity](ServerId peer) {
                                if (peer == server) return 1.0;
                                return cluster.rack_of(peer) == rack ? rack_affinity : 0.0;
                              });
}

const double* MlfPlacement::comm_vector(const Cluster& cluster, const Task& task) const {
  if (memo_arena_.empty()) {
    memo_stride_ = cluster.server_count();
    memo_slots_.assign(std::max<std::size_t>(1, params_.comm_memo_slots), MemoSlot{});
    memo_arena_.assign(memo_slots_.size() * memo_stride_, 0.0);
    memo_index_.reserve(memo_slots_.size());
  }
  // Keyed on the *owning job's* placement epoch: the peer walk below only
  // visits same-job tasks, so other jobs' placements cannot change this
  // vector — the old global-epoch key invalidated on every placement
  // anywhere and collapsed the hit rate as the fleet grew.
  const std::uint64_t epoch = cluster.job_placement_epoch(task.job);
  std::size_t slot;
  if (const auto it = memo_index_.find(task.id); it != memo_index_.end()) {
    slot = it->second;
    if (memo_slots_[slot].epoch == epoch) {
      ++stats_.comm_cache_hits;
      return memo_arena_.data() + slot * memo_stride_;
    }
  } else {
    // Deterministic round-robin eviction keeps the arena a fixed memory
    // bound regardless of how many tasks queue up.
    slot = memo_cursor_;
    memo_cursor_ = (memo_cursor_ + 1) % memo_slots_.size();
    if (memo_slots_[slot].task != kInvalidTask) memo_index_.erase(memo_slots_[slot].task);
    memo_index_.emplace(task.id, static_cast<std::uint32_t>(slot));
    memo_slots_[slot].task = task.id;
  }
  ++stats_.comm_cache_misses;
  memo_slots_[slot].epoch = epoch;
  double* const begin = memo_arena_.data() + slot * memo_stride_;
  std::fill(begin, begin + memo_stride_, 0.0);
  auto vec = [begin](ServerId s) -> double& { return begin[s]; };
  if (!params_.use_topology) {
    for_each_placed_peer(cluster, task, [&vec](const Task& other, double edge) {
      vec(other.server) += edge;
    });
  } else {
    // Scatter each peer's contribution to its own server (weight 1) and to
    // every other server of its rack (weight rack_affinity): for any fixed
    // destination this adds the same nonzero terms, in the same peer order,
    // as the per-server weighted sum.
    const int spr = cluster.config().servers_per_rack;
    const std::size_t n = cluster.server_count();
    const double affinity = params_.rack_affinity;
    for_each_placed_peer(cluster, task, [&](const Task& other, double edge) {
      vec(other.server) += edge;
      std::size_t lo = 0;
      std::size_t hi = n;
      if (spr > 0) {
        lo = static_cast<std::size_t>(cluster.rack_of(other.server)) *
             static_cast<std::size_t>(spr);
        hi = std::min(n, lo + static_cast<std::size_t>(spr));
      }
      for (std::size_t s = lo; s < hi; ++s) {
        if (s != static_cast<std::size_t>(other.server)) {
          vec(static_cast<ServerId>(s)) += affinity * edge;
        }
      }
    });
  }
  return begin;
}

std::optional<HostChoice> MlfPlacement::choose_host(const SchedulerContext& ctx, const Task& task,
                                                    bool migrating) const {
  if (params_.memoize_comm) return choose_host_fast(ctx, task, migrating);
  const Cluster& cluster = ctx.cluster;

  // Candidate set: underloaded servers (ascending id — the same relative
  // order a full fleet scan yields) that can host the task without
  // becoming overloaded (on every resource and the target GPU).
  struct Candidate {
    ServerId server;
    int gpu;
    ResourceVector util;
    double comm;  // MB/iteration with tasks already on the server
  };
  std::vector<Candidate> candidates;
  double max_comm = 0.0;
  cluster.underloaded_servers_into(ctx.hr, scan_buf_);  // reused buffer, no per-call alloc
  for (const ServerId sid : scan_buf_) {
    if (migrating && sid == task.server) continue;
    ++stats_.candidates_scanned;
    ++stats_.candidates_linear;
    const Server& s = cluster.server(sid);
    const int gpu = s.best_fitting_gpu(task, ctx.hr);
    if (gpu == kNoGpu) continue;
    Candidate c{sid, gpu, s.utilization(),
                params_.use_topology
                    ? comm_volume_with_server_topology(cluster, task, sid,
                                                       params_.rack_affinity)
                    : comm_volume_with_server(cluster, task, sid)};
    max_comm = std::max(max_comm, c.comm);
    candidates.push_back(std::move(c));
  }
  if (candidates.empty()) return std::nullopt;

  // Ideal virtual host: component-wise minimum utilization; maximum
  // communication volume (normalized); zero movement degradation.
  ResourceVector ideal_util = candidates.front().util;
  for (const Candidate& c : candidates) {
    for (std::size_t i = 0; i < kNumResources; ++i) {
      ideal_util.at(i) = std::min(ideal_util.at(i), c.util.at(i));
    }
  }

  std::vector<double> spread;
  if (params_.spread_racks) spread = rack_peer_fractions(cluster, task);

  const Candidate* best = nullptr;
  double best_distance = 0.0;
  for (const Candidate& c : candidates) {
    double sq = 0.0;
    for (std::size_t i = 0; i < kNumResources; ++i) {
      const double d = c.util.at(i) - ideal_util.at(i);
      sq += d * d;
    }
    if (params_.use_bandwidth && max_comm > 0.0) {
      const double d = c.comm / max_comm - 1.0;  // ideal = the max
      sq += d * d;
    }
    if (params_.spread_racks) {
      const double d =
          params_.spread_penalty * spread[static_cast<std::size_t>(cluster.rack_of(c.server))];
      sq += d * d;  // ideal = no job siblings in this fault domain
    }
    if (migrating) {
      // Movement degradation q ([10]'s model): minutes of disruption to
      // transfer the task's state to *this* destination, over the
      // topology-aware flow bandwidth — cross-rack moves pay the slower
      // inter-rack share. On a flat network q is one constant for every
      // candidate, so it shifts all distances uniformly and cannot flip a
      // choice.
      const double q = task.state_size_mb /
                       cluster.flow_bandwidth_between(task.server, c.server) / 60.0;
      sq += q * q;  // distance of q to its ideal 0
    }
    const double distance = std::sqrt(sq);
    if (best == nullptr || distance < best_distance) {
      best = &c;
      best_distance = distance;
    }
  }
  return HostChoice{best->server, best->gpu};
}

std::optional<HostChoice> MlfPlacement::choose_host_fast(const SchedulerContext& ctx,
                                                         const Task& task, bool migrating) const {
  const Cluster& cluster = ctx.cluster;
  const double* comm = comm_vector(cluster, task);

  const bool indexed = cluster.config().incremental_load_index;
  const bool bucketed = indexed && cluster.config().placement_bucket_index;

  // One usage product for the whole candidate loop (the legacy body
  // recomputes demand × usage_factor inside every feasibility check — the
  // product is the same value every time, so hoisting cannot change a
  // fit verdict).
  const ResourceVector usage = task.demand * task.usage_factor;
  const double u_gpu = usage[Resource::Gpu];
  const double u_cpu = usage[Resource::Cpu];
  const double u_mem = usage[Resource::Mem];
  const double u_net = usage[Resource::Net];

  ResourceVector util_buf;  // scan-mode fallback storage
  const auto util_of = [&](ServerId sid) -> const ResourceVector& {
    if (indexed) return cluster.cached_utilization(sid);
    util_buf = cluster.server(sid).utilization();
    return util_buf;
  };

  // Pass 1: feasibility + the ideal host's components. Seeding the
  // component-wise min from the first feasible candidate matches the
  // legacy fold exactly (min(x, x) == x).
  feasible_.clear();
  ResourceVector ideal_util;
  bool first = true;
  double max_comm = 0.0;
  if (bucketed) {
    // Sublinear candidate funnel: the bucket index exact-checks only the
    // members of buckets that could pass the feasibility comparisons and
    // returns the feasible set in the linear funnel's ascending order —
    // identical verdicts, so the folds below run over the identical set
    // (min/max folds are order-independent anyway).
    const PlacementIndex& pidx = cluster.placement_index(ctx.hr);
    const ServerId skip = migrating ? task.server : kInvalidServer;
    feasible_ids_.clear();
    stats_.candidates_scanned +=
        pidx.collect_feasible(ctx.hr, u_gpu, u_cpu, u_mem, u_net, skip, feasible_ids_);
    // What a linear funnel would have scanned for this query: every
    // underloaded member (minus the migration self-exclusion) — keeps the
    // index's win measurable without running the linear path.
    stats_.candidates_linear +=
        pidx.member_count() - (skip != kInvalidServer && pidx.is_member(skip) ? 1 : 0);
    feasible_.reserve(feasible_ids_.size());
    for (const ServerId sid : feasible_ids_) {
      const ResourceVector& util = cluster.cached_utilization(sid);
      if (first) {
        ideal_util = util;
        first = false;
      } else {
        for (std::size_t i = 0; i < kNumResources; ++i) {
          ideal_util.at(i) = std::min(ideal_util.at(i), util.at(i));
        }
      }
      max_comm = std::max(max_comm, comm[sid]);
      feasible_.emplace_back(sid, cluster.cached_least_gpu(sid));
    }
  } else {
    // Candidate ids by reference from the index when it is on; the scan
    // fallback fills a reused buffer (no per-call allocation) with the
    // same ids in the same ascending order.
    if (!indexed) cluster.underloaded_servers_into(ctx.hr, scan_buf_);
    const std::vector<ServerId>& under = indexed ? cluster.underloaded_index(ctx.hr) : scan_buf_;
    feasible_.reserve(under.size());
    for (const ServerId sid : under) {
      if (migrating && sid == task.server) continue;
      ++stats_.candidates_scanned;
      ++stats_.candidates_linear;
      const ResourceVector& util = util_of(sid);
      int gpu;
      if (indexed) {
        // Feasibility from cached data only: the utilization's CPU/MEM/NET
        // components *are* the server's usage sums, so together with the
        // cached least-loaded GPU load these four comparisons are exactly
        // Server::fits_usage_without_overload on the least-loaded GPU (the
        // liveness test is vacuous — the underloaded partition only holds
        // up servers). And the least-loaded GPU's verdict decides the
        // server: every other GPU carries load >= the least-loaded one, and
        // FP addition of the same usage is monotone, so when the
        // least-loaded GPU overflows hr, so does every other —
        // best_fitting_gpu's per-GPU search cannot rescue the candidate
        // (the profile shows ~80% of candidates are infeasible under
        // sustained overload, so this single rejection test carries the
        // hot path).
        if (util[Resource::Cpu] + u_cpu > ctx.hr || util[Resource::Mem] + u_mem > ctx.hr ||
            util[Resource::Net] + u_net > ctx.hr ||
            cluster.cached_least_gpu_load(sid) + u_gpu > ctx.hr) {
          continue;
        }
        gpu = cluster.cached_least_gpu(sid);
      } else {
        gpu = cluster.server(sid).best_fitting_gpu_for_usage(usage, ctx.hr);
        if (gpu == kNoGpu) continue;
      }
      if (first) {
        ideal_util = util;
        first = false;
      } else {
        for (std::size_t i = 0; i < kNumResources; ++i) {
          ideal_util.at(i) = std::min(ideal_util.at(i), util.at(i));
        }
      }
      max_comm = std::max(max_comm, comm[sid]);
      feasible_.emplace_back(sid, gpu);
    }
  }
  if (feasible_.empty()) return std::nullopt;

  // Pass 2: identical distance arithmetic to the legacy body, reading the
  // per-candidate inputs back from the caches instead of a Candidate array.
  std::vector<double> spread;
  if (params_.spread_racks) spread = rack_peer_fractions(cluster, task);
  ServerId best_server = feasible_.front().first;
  int best_gpu = feasible_.front().second;
  double best_distance = 0.0;
  bool have_best = false;
  for (const auto& [sid, gpu] : feasible_) {
    const ResourceVector& util = util_of(sid);
    double sq = 0.0;
    for (std::size_t i = 0; i < kNumResources; ++i) {
      const double d = util.at(i) - ideal_util.at(i);
      sq += d * d;
    }
    if (params_.use_bandwidth && max_comm > 0.0) {
      const double d = comm[sid] / max_comm - 1.0;  // ideal = the max
      sq += d * d;
    }
    if (params_.spread_racks) {
      const double d =
          params_.spread_penalty * spread[static_cast<std::size_t>(cluster.rack_of(sid))];
      sq += d * d;  // ideal = no job siblings in this fault domain
    }
    if (migrating) {
      const double q =
          task.state_size_mb / cluster.flow_bandwidth_between(task.server, sid) / 60.0;
      sq += q * q;  // distance of q to its ideal 0
    }
    const double distance = std::sqrt(sq);
    if (!have_best || distance < best_distance) {
      have_best = true;
      best_server = sid;
      best_gpu = gpu;
      best_distance = distance;
    }
  }
  return HostChoice{best_server, best_gpu};
}

void MlfPlacement::save_state(io::BinWriter& w) const {
  // Exact arena layout — slot table, cursor, and each occupied slot's
  // volume vector in slot order — so the restored memo hits and evicts
  // exactly like the uninterrupted one would.
  w.u64(memo_stride_);
  w.u64(memo_slots_.size());
  w.u64(memo_cursor_);
  for (std::size_t slot = 0; slot < memo_slots_.size(); ++slot) {
    const MemoSlot& s = memo_slots_[slot];
    w.u64(s.task);
    w.u64(s.epoch);
    if (s.task == kInvalidTask) continue;
    const double* const begin = memo_arena_.data() + slot * memo_stride_;
    for (std::size_t i = 0; i < memo_stride_; ++i) w.f64(begin[i]);
  }
  w.u64(stats_.candidates_scanned);
  w.u64(stats_.candidates_linear);
  w.u64(stats_.comm_cache_hits);
  w.u64(stats_.comm_cache_misses);
}

void MlfPlacement::restore_state(io::BinReader& r) {
  memo_stride_ = static_cast<std::size_t>(r.u64());
  const std::size_t slot_count = static_cast<std::size_t>(r.u64());
  memo_cursor_ = static_cast<std::size_t>(r.u64());
  memo_slots_.assign(slot_count, MemoSlot{});
  memo_arena_.assign(slot_count * memo_stride_, 0.0);
  memo_index_.clear();
  for (std::size_t slot = 0; slot < slot_count; ++slot) {
    MemoSlot& s = memo_slots_[slot];
    s.task = static_cast<TaskId>(r.u64());
    s.epoch = r.u64();
    if (s.task == kInvalidTask) continue;
    memo_index_.emplace(s.task, static_cast<std::uint32_t>(slot));
    double* const begin = memo_arena_.data() + slot * memo_stride_;
    for (std::size_t i = 0; i < memo_stride_; ++i) begin[i] = r.f64();
  }
  stats_.candidates_scanned = static_cast<std::size_t>(r.u64());
  stats_.candidates_linear = static_cast<std::size_t>(r.u64());
  stats_.comm_cache_hits = static_cast<std::size_t>(r.u64());
  stats_.comm_cache_misses = static_cast<std::size_t>(r.u64());
}

}  // namespace mlfs::core
