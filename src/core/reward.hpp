// Eq. 7 reward for MLF-RL and its weight tuner.
//
//   r_t = β1 g1 + β2 g2 + β3 g3 + β4 g4 + β5 g5
//
// where g1..g5 are the five Eq. 1 objectives evaluated over the jobs that
// completed in the observation window since the previous scheduling round
// (the paper's "wait for a time period t_m after the decision" — here one
// round), each normalized to [0,1] so the β weights act on comparable
// scales:
//   g1: 1/(1 + avg JCT hours of window completions)
//   g2: fraction of window completions that met their deadline
//   g3: 1/(1 + cross-server GB transferred in the window per active job)
//   g4: fraction of window completions meeting their accuracy requirement
//   g5: mean accuracy-by-deadline of window completions
//
// RewardTuner realizes §3.4's weight search: a limited number of coarse
// random-search rounds (the Bayesian-optimization budget) followed by
// local refinement "slightly varying each value", returning the weights
// with the highest achieved reward.
#pragma once

#include <functional>

#include "core/config.hpp"
#include "sim/cluster.hpp"

namespace mlfs::core {

class RewardTracker {
 public:
  explicit RewardTracker(const RlParams& params);

  /// Feed every completion (facade forwards Scheduler::on_job_complete).
  void on_job_complete(const Job& job, SimTime now);

  /// Reward for the round ending now; consumes the window.
  double round_reward(const Cluster& cluster, SimTime now);

  /// Bit-exact window-accumulator round-trip for engine snapshots.
  void save_state(io::BinWriter& w) const;
  void restore_state(io::BinReader& r);

 private:
  RlParams params_;
  // Window accumulators.
  double jct_sum_hours_ = 0.0;
  std::size_t completions_ = 0;
  std::size_t deadline_met_ = 0;
  std::size_t accuracy_met_ = 0;
  double accuracy_sum_ = 0.0;
  double last_bandwidth_mb_ = 0.0;
  bool bandwidth_primed_ = false;
};

struct RewardWeights {
  double beta1 = 0.5, beta2 = 0.55, beta3 = 0.25, beta4 = 0.15, beta5 = 0.15;
};

class RewardTuner {
 public:
  /// `coarse_rounds`: the "limited number of rounds (e.g., 10)" of global
  /// search; `refine_rounds`: local perturbations around the best.
  RewardTuner(std::size_t coarse_rounds, std::size_t refine_rounds, std::uint64_t seed);

  /// Maximizes `evaluate` over the weight simplex-ish box [0,1]^5.
  RewardWeights tune(const std::function<double(const RewardWeights&)>& evaluate);

 private:
  std::size_t coarse_rounds_;
  std::size_t refine_rounds_;
  std::uint64_t seed_;
};

}  // namespace mlfs::core
