// The MLFS scheduler facade, staging MLF-H → MLF-RL exactly as §3.4
// describes: the heuristic drives first and every placement it makes is
// logged as an imitation sample; once enough samples accumulate the policy
// network is behaviour-cloned from them and MLF-RL takes over queue
// placement, continuing to improve online with REINFORCE on the Eq. 7
// reward. Overload relief (victim selection + destination) stays on the
// §3.3.3 machinery in both phases.
//
// The same class realizes the paper's three series:
//   MLF-H : config.heuristic_only = true (never switches)
//   MLF-RL: defaults (switches after warm-up)
//   MLFS  : MLF-RL + an MlfC load controller registered with the engine
#pragma once

#include <memory>

#include "core/featurizer.hpp"
#include "core/mlf_h.hpp"
#include "core/reward.hpp"
#include "rl/actor_critic.hpp"
#include "rl/imitation.hpp"
#include "rl/reinforce.hpp"

namespace mlfs::core {

class MlfsScheduler : public Scheduler {
 public:
  /// `display_name` overrides the reported name (e.g. "MLFS" when paired
  /// with MLF-C); empty picks "MLF-H" or "MLF-RL" from the config.
  explicit MlfsScheduler(const MlfsConfig& config, std::string display_name = "");

  std::string name() const override;
  void schedule(SchedulerContext& ctx) override;
  void on_job_complete(const Job& job, SimTime now) override;

  /// Snapshot support: the facade RNG, the RL phase flag, the open episode
  /// and round counters, the agent's full state (weights + optimizer +
  /// sampling RNG), the imitation log, the reward window, and the wrapped
  /// heuristic's cache/memo — everything that decides future placements.
  void save_state(std::ostream& os) const override;
  void restore_state(std::istream& is) override;
  SchedStats sched_stats() const override { return heuristic_.sched_stats(); }
  void audit_invariants(const Cluster& cluster, SimTime now) const override {
    heuristic_.audit_invariants(cluster, now);
  }

  bool rl_active() const { return rl_active_; }
  std::size_t imitation_samples() const { return imitation_.size(); }
  double imitation_accuracy() { return imitation_.evaluate_accuracy(*agent_); }
  MlfH& heuristic() { return heuristic_; }
  const MlfsConfig& config() const { return config_; }

 private:
  void record_imitation(SchedulerContext& ctx, TaskId task, ServerId chosen);
  void maybe_switch_to_rl();
  void schedule_with_policy(SchedulerContext& ctx);

  MlfsConfig config_;
  std::string display_name_;
  MlfH heuristic_;
  MlfRlFeaturizer featurizer_;
  std::unique_ptr<rl::PolicyAgent> agent_;
  rl::ImitationDataset imitation_;
  RewardTracker reward_;
  Rng rng_;

  rl::Episode episode_;
  std::size_t decisions_this_round_ = 0;
  std::size_t rounds_since_update_ = 0;
  bool rl_active_ = false;
};

}  // namespace mlfs::core
