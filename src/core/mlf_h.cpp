#include "core/mlf_h.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/binio.hpp"
#include "sim/audit.hpp"

namespace mlfs::core {

namespace {
PlacementParams effective_placement_params(const MlfsConfig& config) {
  PlacementParams p = config.placement;
  // Legacy mode must exercise the reference (recompute-per-candidate)
  // comm-volume path regardless of the placement default.
  if (config.legacy_hot_path) p.memoize_comm = false;
  return p;
}
}  // namespace

MlfH::MlfH(const MlfsConfig& config)
    : config_(config),
      priority_calc_(config.priority),
      placement_(effective_placement_params(config)),
      migration_(config.migration) {}

const std::vector<double>& MlfH::job_priority_vector(const Cluster& cluster, const Job& job,
                                                     SimTime now) {
  CacheEntry& entry = cache_[job.id()];
  if (entry.computed_at != now) {
    entry.priorities = priority_calc_.job_priorities(cluster, job, now);
    entry.computed_at = now;
  }
  return entry.priorities;
}

double MlfH::task_priority(const Cluster& cluster, TaskId task, SimTime now) {
  const Task& t = cluster.task(task);
  const Job& job = cluster.job(t.job);
  return job_priority_vector(cluster, job, now)[t.local_index];
}

void MlfH::sort_by_priority(std::vector<TaskId>& tasks, SchedulerContext& ctx) {
  if (config_.legacy_hot_path) {
    // Reference path: priority lookups inside the comparator (one pair of
    // cache probes per comparison).
    std::stable_sort(tasks.begin(), tasks.end(), [this, &ctx](TaskId a, TaskId b) {
      return task_priority(ctx.cluster, a, ctx.now) > task_priority(ctx.cluster, b, ctx.now);
    });
    return;
  }
  std::vector<std::pair<double, TaskId>> keyed;
  keyed.reserve(tasks.size());
  for (const TaskId tid : tasks) {
    keyed.emplace_back(task_priority(ctx.cluster, tid, ctx.now), tid);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = 0; i < tasks.size(); ++i) tasks[i] = keyed[i].second;
}

std::vector<TaskId> MlfH::ordered_queue(SchedulerContext& ctx) {
  std::vector<TaskId> queue;
  queue.reserve(ctx.queue.size());
  for (const TaskId tid : ctx.queue) {
    if (ctx.cluster.task(tid).state == TaskState::Queued) queue.push_back(tid);
  }
  sort_by_priority(queue, ctx);
  return queue;
}

void MlfH::on_job_complete(const Job& job, SimTime now) {
  (void)now;
  cache_.erase(job.id());
}

void MlfH::audit_invariants(const Cluster& cluster, SimTime now) const {
  const auto fail = [now](const std::string& detail) {
    throw AuditViolation(AuditReport{"mlfh-priority-cache", detail, "scheduler-audit", now, 0});
  };
  for (const auto& [job_id, entry] : cache_) {
    if (job_id >= cluster.job_count()) {
      fail("cache entry for unknown job " + std::to_string(job_id));
    }
    const Job& job = cluster.job(job_id);
    if (job.done()) {
      fail("stale cache entry for completed job " + std::to_string(job_id));
    }
    if (entry.computed_at > now) {
      fail("cache entry for job " + std::to_string(job_id) + " computed in the future");
    }
    if (entry.computed_at >= 0.0 && entry.priorities.size() != job.task_count()) {
      fail("priority vector of job " + std::to_string(job_id) + " has " +
           std::to_string(entry.priorities.size()) + " entries for " +
           std::to_string(job.task_count()) + " tasks");
    }
    for (const double p : entry.priorities) {
      if (!std::isfinite(p) || p < 0.0) {
        fail("non-finite or negative priority " + std::to_string(p) + " cached for job " +
             std::to_string(job_id));
      }
    }
  }
}

void MlfH::place_queued_tasks(SchedulerContext& ctx) {
  // Queue order is per-task priority (Eq. 6), but placement is
  // job-coherent: reaching any task of a job immediately attempts all of
  // the job's queued tasks (in their own priority order). Gang execution
  // means partial placements cannot run, so interleaving jobs would only
  // manufacture deadlocks.
  //
  // The queue is consumed lazily through a binary heap instead of fully
  // sorted: all priorities are computed up front (exactly like the sorted
  // path — placements this round never re-key), and pops yield the
  // stable-descending order one task at a time. Under sustained overload
  // the 200-failure cap stops consumption after a few hundred pops, so a
  // 100k-task backlog costs O(n + popped·log n) instead of O(n log n)
  // every round. Legacy mode keeps the full sort as the reference.
  int failures = 0;
  struct HeapEntry {
    double pri;
    std::size_t pos;  ///< position in the filtered queue (stability key)
    TaskId tid;
  };
  // `less` for a max-heap on (priority desc, queue position asc) — pops in
  // exactly std::stable_sort-by-descending-priority order.
  const auto heap_less = [](const HeapEntry& a, const HeapEntry& b) {
    return a.pri < b.pri || (a.pri == b.pri && a.pos > b.pos);
  };
  std::vector<HeapEntry> heap;
  if (!config_.legacy_hot_path) {
    heap.reserve(ctx.queue.size());
    std::size_t pos = 0;
    for (const TaskId tid : ctx.queue) {
      if (ctx.cluster.task(tid).state != TaskState::Queued) continue;
      heap.push_back({task_priority(ctx.cluster, tid, ctx.now), pos++, tid});
    }
    std::make_heap(heap.begin(), heap.end(), heap_less);
  }
  const std::vector<TaskId> sorted = config_.legacy_hot_path ? ordered_queue(ctx)
                                                             : std::vector<TaskId>{};
  std::size_t sorted_next = 0;
  const auto next_task = [&]() -> TaskId {
    if (config_.legacy_hot_path) {
      return sorted_next < sorted.size() ? sorted[sorted_next++] : kInvalidTask;
    }
    if (heap.empty()) return kInvalidTask;
    std::pop_heap(heap.begin(), heap.end(), heap_less);
    const TaskId tid = heap.back().tid;
    heap.pop_back();
    return tid;
  };
  for (TaskId tid = next_task(); tid != kInvalidTask; tid = next_task()) {
    if (failures >= 200) break;  // sustained-overload cap, see sched/util.hpp
    const Task& first = ctx.cluster.task(tid);
    if (first.state != TaskState::Queued) continue;
    const Job& job = ctx.cluster.job(first.job);
    std::vector<TaskId> siblings;
    for (const TaskId sib : job.tasks()) {
      if (ctx.cluster.task(sib).state == TaskState::Queued) siblings.push_back(sib);
    }
    // Fast fail for clearly-doomed gangs (see sched/util.hpp).
    if (job.id() != ctx.protected_job &&
        static_cast<int>(siblings.size()) >
            2 * ctx.cluster.estimate_free_worker_slots(ctx.hr)) {
      ++failures;
      continue;
    }
    sort_by_priority(siblings, ctx);
    std::vector<TaskId> placed_now;
    bool complete = true;
    for (const TaskId sib : siblings) {
      const Task& task = ctx.cluster.task(sib);
      const auto host = placement_.choose_host(ctx, task, /*migrating=*/false);
      // The imitation observer must see the pre-placement state — the
      // exact decision input — so it runs before ops.place mutates
      // utilizations. choose_host returning a host implies the placement
      // below succeeds (same feasibility check).
      if (host && observer_) observer_(ctx, sib, host->server);
      if (host && ctx.ops.place(sib, host->server, host->gpu)) {
        placed_now.push_back(sib);
      } else {
        complete = false;
      }
    }
    // All-or-nothing per round (gang execution); the engine's protected
    // job may accumulate partial placements across rounds instead.
    if (!complete && job.id() != ctx.protected_job) {
      for (const TaskId sib : placed_now) ctx.ops.release(sib);
      ++failures;
    } else if (!placed_now.empty()) {
      failures = 0;
    }
  }
}

void MlfH::handle_overloaded_servers(SchedulerContext& ctx) {
  if (!config_.migration.enabled) return;
  Cluster& cluster = ctx.cluster;
  auto priority_of = [this, &cluster, &ctx](TaskId tid) {
    return task_priority(cluster, tid, ctx.now);
  };
  for (const ServerId sid : cluster.overloaded_servers(ctx.hr)) {
    int moved = 0;
    while (moved < config_.migration.max_victims_per_server) {
      const Server& server = cluster.server(sid);
      if (!server.overloaded(ctx.hr)) break;
      const auto victim = migration_.select_victim(cluster, server, ctx.hr, priority_of);
      if (!victim) break;
      const Task& task = cluster.task(*victim);
      if (const auto host = placement_.choose_host(ctx, task, /*migrating=*/true)) {
        ctx.ops.migrate(*victim, host->server, host->gpu);
      } else if (server.utilization().max_component() > 1.25 ||
                 (task.placed() && server.gpu_load(task.gpu) > 1.25)) {
        // §3.3.3: no underloaded destination — the victim returns to the
        // waiting queue. A preemption stalls the victim's whole gang, so
        // only deep oversubscription (25% past capacity, where quadratic
        // congestion outweighs a gang stall) justifies paying it; milder
        // overload rides out the fluctuation with the slowdown instead.
        ctx.ops.preempt_to_queue(*victim);
      } else {
        break;  // tolerable overload and nowhere to move: stop shedding
      }
      ++moved;
    }
  }
}

void MlfH::schedule(SchedulerContext& ctx) {
  place_queued_tasks(ctx);
  handle_overloaded_servers(ctx);
}

void MlfH::save_state(std::ostream& os) const {
  io::BinWriter w(os);
  std::vector<std::pair<JobId, const CacheEntry*>> entries;
  entries.reserve(cache_.size());
  for (const auto& [job, entry] : cache_) entries.emplace_back(job, &entry);
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u64(entries.size());
  for (const auto& [job, entry] : entries) {
    w.u64(job);
    w.f64(entry->computed_at);
    w.vec_f64(entry->priorities);
  }
  placement_.save_state(w);
}

void MlfH::restore_state(std::istream& is) {
  io::BinReader r(is);
  cache_.clear();
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const JobId job = static_cast<JobId>(r.u64());
    CacheEntry& entry = cache_[job];
    entry.computed_at = r.f64();
    entry.priorities = r.vec_f64();
  }
  placement_.restore_state(r);
}

}  // namespace mlfs::core
