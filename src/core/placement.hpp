// RIAL-style host selection (§3.3.2, method of [47]): build the *ideal
// virtual host server* U_V — per-resource minimum utilization across the
// underloaded servers, the maximum task↔server communication volume (so
// chatty tasks co-locate with their peers), and zero movement degradation
// — then pick the feasible underloaded server whose vector is closest to
// U_V in Euclidean distance. The task lands on that server's best-fitting
// GPU (the least-loaded one whenever it fits).
//
// Hot path: candidates come from the cluster's underloaded index rather
// than a fleet scan, and the per-(task, server) communication volumes are
// memoized per placement epoch (PlacementParams::memoize_comm) — both
// bit-exact with the direct computation (see DESIGN.md, "Scheduler hot
// path").
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "sim/scheduler.hpp"

namespace mlfs::core {

struct HostChoice {
  ServerId server;
  int gpu;
};

class MlfPlacement {
 public:
  explicit MlfPlacement(const PlacementParams& params);

  /// Chooses the host for `task` among the currently underloaded servers.
  /// `migrating` adds the movement-degradation dimension q — the state-
  /// transfer time from the task's current server to *that* destination
  /// over the topology-aware flow bandwidth (0 for queue placements).
  /// Returns nullopt when no underloaded server fits the task under ctx.hr.
  std::optional<HostChoice> choose_host(const SchedulerContext& ctx, const Task& task,
                                        bool migrating) const;

  /// Hot-path counters accumulated across all choose_host calls.
  const SchedStats& stats() const { return stats_; }

  /// Snapshot support: the per-epoch comm memo and the hot-path counters.
  /// The memo must round-trip (not just be invalidated) so the hit/miss
  /// counters — and therefore SchedStats — stay bit-identical after
  /// restore; the memo map is written sorted by task id. `feasible_` is
  /// per-call scratch and is not state.
  void save_state(io::BinWriter& w) const;
  void restore_state(io::BinReader& r);

  /// Total communication volume (MB per iteration) between `task` and the
  /// tasks currently placed on `server` — DAG parent/child edges plus
  /// all-reduce ring neighbours (public for tests).
  static double comm_volume_with_server(const Cluster& cluster, const Task& task,
                                        ServerId server);

  /// Topology-aware variant: same-server peers count fully, same-rack
  /// peers at `rack_affinity` weight (the use_topology extension).
  static double comm_volume_with_server_topology(const Cluster& cluster, const Task& task,
                                                 ServerId server, double rack_affinity);

 private:
  /// Per-server communication volumes of `task`, memoized per placement
  /// epoch. Entry [s] is bit-identical to comm_volume_with_server[_topology]
  /// (cluster, task, s): the accumulation visits peers in the same order
  /// and drops only exact-zero terms.
  const std::vector<double>& comm_vector(const Cluster& cluster, const Task& task) const;

  /// The memoized hot path of choose_host: same candidate order, same
  /// feasibility checks, same distance arithmetic as the legacy body —
  /// the equivalence tests and the hot-path benchmark enforce that the two
  /// produce byte-identical decision streams — but with the per-candidate
  /// constants hoisted: usage vector computed once, utilizations read from
  /// the cluster's refresh-time cache, comm volumes from the epoch memo,
  /// and a reused scratch vector instead of a fresh candidate array.
  std::optional<HostChoice> choose_host_fast(const SchedulerContext& ctx, const Task& task,
                                             bool migrating) const;

  PlacementParams params_;
  mutable std::uint64_t comm_cache_epoch_ = ~std::uint64_t{0};
  mutable std::unordered_map<TaskId, std::vector<double>> comm_cache_;
  mutable std::vector<std::pair<ServerId, int>> feasible_;  ///< choose_host_fast scratch
  mutable SchedStats stats_;
};

}  // namespace mlfs::core
