// RIAL-style host selection (§3.3.2, method of [47]): build the *ideal
// virtual host server* U_V — per-resource minimum utilization across the
// underloaded servers, the maximum task↔server communication volume (so
// chatty tasks co-locate with their peers), and zero movement degradation
// — then pick the feasible underloaded server whose vector is closest to
// U_V in Euclidean distance. The task lands on that server's best-fitting
// GPU (the least-loaded one whenever it fits).
//
// Hot path: candidates come from the cluster's bucketed placement index
// (sim/placement_index.hpp) — only buckets that could pass the
// feasibility check are examined — and the per-(task, server)
// communication volumes are memoized in a fixed-capacity arena keyed on
// the owning job's placement epoch (PlacementParams::memoize_comm). Both
// are bit-exact with the direct computation (see DESIGN.md, "Scheduler
// hot path").
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "sim/scheduler.hpp"

namespace mlfs::core {

struct HostChoice {
  ServerId server;
  int gpu;
};

class MlfPlacement {
 public:
  explicit MlfPlacement(const PlacementParams& params);

  /// Chooses the host for `task` among the currently underloaded servers.
  /// `migrating` adds the movement-degradation dimension q — the state-
  /// transfer time from the task's current server to *that* destination
  /// over the topology-aware flow bandwidth (0 for queue placements).
  /// Returns nullopt when no underloaded server fits the task under ctx.hr.
  std::optional<HostChoice> choose_host(const SchedulerContext& ctx, const Task& task,
                                        bool migrating) const;

  /// Hot-path counters accumulated across all choose_host calls.
  const SchedStats& stats() const { return stats_; }

  /// Snapshot support: the comm-memo arena (slot table, round-robin
  /// cursor, and the occupied slots' volume vectors, in slot order) and
  /// the hot-path counters. The memo must round-trip (not just be
  /// invalidated) so the hit/miss counters — and therefore SchedStats —
  /// stay bit-identical after restore. `feasible_`/`feasible_ids_`/
  /// `scan_buf_` are per-call scratch and are not state.
  void save_state(io::BinWriter& w) const;
  void restore_state(io::BinReader& r);

  /// Total communication volume (MB per iteration) between `task` and the
  /// tasks currently placed on `server` — DAG parent/child edges plus
  /// all-reduce ring neighbours (public for tests).
  static double comm_volume_with_server(const Cluster& cluster, const Task& task,
                                        ServerId server);

  /// Topology-aware variant: same-server peers count fully, same-rack
  /// peers at `rack_affinity` weight (the use_topology extension).
  static double comm_volume_with_server_topology(const Cluster& cluster, const Task& task,
                                                 ServerId server, double rack_affinity);

 private:
  /// Per-server communication volumes of `task` (`server_count` doubles),
  /// memoized in the arena keyed on the owning job's placement epoch —
  /// peers are always same-job tasks, so placements elsewhere cannot
  /// invalidate the entry. Entry [s] is bit-identical to
  /// comm_volume_with_server[_topology](cluster, task, s): the
  /// accumulation visits peers in the same order and drops only
  /// exact-zero terms.
  const double* comm_vector(const Cluster& cluster, const Task& task) const;

  /// The memoized hot path of choose_host: same feasibility verdicts, same
  /// candidate order (ascending id), same distance arithmetic as the
  /// legacy body — the equivalence tests and the benches enforce that the
  /// two produce byte-identical decision streams — but candidates come
  /// from the cluster's bucketed placement index (exact-check only the
  /// unprunable buckets), utilizations from the refresh-time cache, comm
  /// volumes from the arena memo, and reused scratch vectors.
  std::optional<HostChoice> choose_host_fast(const SchedulerContext& ctx, const Task& task,
                                             bool migrating) const;

  PlacementParams params_;

  /// Comm-memo arena: `comm_memo_slots` slots × server_count doubles, one
  /// slot per task, deterministic round-robin eviction (lazily sized on
  /// first use; the stride is fixed for the cluster's lifetime).
  struct MemoSlot {
    TaskId task = kInvalidTask;
    std::uint64_t epoch = 0;  ///< owning job's placement epoch at fill time
  };
  mutable std::size_t memo_stride_ = 0;  ///< doubles per slot == server_count
  mutable std::vector<MemoSlot> memo_slots_;
  mutable std::vector<double> memo_arena_;
  mutable std::unordered_map<TaskId, std::uint32_t> memo_index_;  ///< task -> slot
  mutable std::size_t memo_cursor_ = 0;

  mutable std::vector<std::pair<ServerId, int>> feasible_;  ///< choose_host_fast scratch
  mutable std::vector<ServerId> feasible_ids_;              ///< bucket-index scratch
  mutable std::vector<ServerId> scan_buf_;                  ///< scan-mode candidate buffer
  mutable SchedStats stats_;
};

}  // namespace mlfs::core
