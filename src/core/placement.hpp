// RIAL-style host selection (§3.3.2, method of [47]): build the *ideal
// virtual host server* U_V — per-resource minimum utilization across the
// underloaded servers, the maximum task↔server communication volume (so
// chatty tasks co-locate with their peers), and zero movement degradation
// — then pick the feasible underloaded server whose vector is closest to
// U_V in Euclidean distance. The task lands on that server's least-loaded
// GPU.
#pragma once

#include <optional>

#include "core/config.hpp"
#include "sim/scheduler.hpp"

namespace mlfs::core {

struct HostChoice {
  ServerId server;
  int gpu;
};

class MlfPlacement {
 public:
  explicit MlfPlacement(const PlacementParams& params);

  /// Chooses the host for `task` among the currently underloaded servers.
  /// `migrating` adds the movement-degradation dimension q (state size
  /// over bandwidth; 0 for queue placements). Returns nullopt when no
  /// underloaded server fits the task under ctx.hr.
  std::optional<HostChoice> choose_host(const SchedulerContext& ctx, const Task& task,
                                        bool migrating) const;

  /// Total communication volume (MB per iteration) between `task` and the
  /// tasks currently placed on `server` — DAG parent/child edges plus
  /// all-reduce ring neighbours (public for tests).
  static double comm_volume_with_server(const Cluster& cluster, const Task& task,
                                        ServerId server);

  /// Topology-aware variant: same-server peers count fully, same-rack
  /// peers at `rack_affinity` weight (the use_topology extension).
  static double comm_volume_with_server_topology(const Cluster& cluster, const Task& task,
                                                 ServerId server, double rack_affinity);

 private:
  PlacementParams params_;
};

}  // namespace mlfs::core
