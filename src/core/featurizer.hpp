// State featurization for MLF-RL (§3.4). The paper's state includes task
// information (queuing/running, resource demand, waiting/running time),
// job information (ML algorithm, urgency, deadline, iteration counts, loss
// reductions, dependency graph) and server/GPU utilization. We encode the
// decision-relevant slice per (task, K candidate servers) pair: the same
// ML + computation features MLF-H's equations consume, plus per-candidate
// utilization and communication affinity. The action is the index of the
// chosen candidate server.
#pragma once

#include <vector>

#include "sim/scheduler.hpp"

namespace mlfs::core {

class MlfRlFeaturizer {
 public:
  explicit MlfRlFeaturizer(std::size_t candidate_count);

  std::size_t candidate_count() const { return candidate_count_; }
  std::size_t state_dim() const;

  /// K feasible (fits under ctx.hr), non-overloaded candidate servers,
  /// lowest utilization norm first. May return fewer than K; empty when
  /// the task currently fits nowhere.
  std::vector<ServerId> candidates(const SchedulerContext& ctx, const Task& task) const;

  /// Flat state vector for (task, candidates). candidates.size() <= K;
  /// missing slots are encoded as saturated servers.
  std::vector<double> state(const SchedulerContext& ctx, const Task& task,
                            const std::vector<ServerId>& candidates) const;

 private:
  std::size_t candidate_count_;
};

}  // namespace mlfs::core
