#include "core/mlfs.hpp"

#include <algorithm>
#include <array>

#include "common/binio.hpp"
#include "common/log.hpp"

namespace mlfs::core {

MlfsScheduler::MlfsScheduler(const MlfsConfig& config, std::string display_name)
    : config_(config),
      display_name_(std::move(display_name)),
      heuristic_(config),
      featurizer_(config.rl.candidate_count),
      imitation_(featurizer_.state_dim()),
      reward_(config.rl),
      rng_(config.rl.seed ^ 0x1234abcd5678ef90ULL) {
  if (config_.rl.algorithm == RlAlgorithm::ActorCritic) {
    rl::ActorCriticConfig ac;
    ac.state_dim = featurizer_.state_dim();
    ac.action_dim = config_.rl.candidate_count;
    ac.hidden = config_.rl.hidden;
    ac.eta = config_.rl.eta;
    ac.seed = config_.rl.seed;
    agent_ = std::make_unique<rl::ActorCriticAgent>(ac);
  } else {
    rl::ReinforceConfig rc;
    rc.state_dim = featurizer_.state_dim();
    rc.action_dim = config_.rl.candidate_count;
    rc.hidden = config_.rl.hidden;
    rc.eta = config_.rl.eta;
    rc.seed = config_.rl.seed;
    agent_ = std::make_unique<rl::ReinforceAgent>(rc);
  }
  if (!config_.heuristic_only) {
    heuristic_.set_placement_observer(
        [this](SchedulerContext& ctx, TaskId task, ServerId chosen) {
          record_imitation(ctx, task, chosen);
        });
  }
}

std::string MlfsScheduler::name() const {
  if (!display_name_.empty()) return display_name_;
  return config_.heuristic_only ? "MLF-H" : "MLF-RL";
}

void MlfsScheduler::record_imitation(SchedulerContext& ctx, TaskId task, ServerId chosen) {
  // Only decisions expressible in the policy's action space (the chosen
  // server is among the K candidates) become imitation samples.
  const Task& t = ctx.cluster.task(task);
  const auto candidates = featurizer_.candidates(ctx, t);
  const auto it = std::find(candidates.begin(), candidates.end(), chosen);
  if (it == candidates.end()) return;
  const int action = static_cast<int>(it - candidates.begin());
  imitation_.add(featurizer_.state(ctx, t, candidates), action);
}

void MlfsScheduler::maybe_switch_to_rl() {
  if (rl_active_ || config_.heuristic_only) return;
  if (imitation_.size() < config_.rl.warmup_samples) return;
  imitation_.truncate_to_recent(config_.rl.warmup_samples);
  const double loss =
      imitation_.train(*agent_, config_.rl.imitation_epochs, config_.rl.imitation_batch, rng_);
  rl_active_ = true;
  MLFS_INFO(name() << ": policy cloned from " << imitation_.size()
                   << " MLF-H decisions (final CE loss " << loss << "), switching to RL");
}

void MlfsScheduler::schedule_with_policy(SchedulerContext& ctx) {
  // Close out the previous round: its decisions receive the Eq. 7 reward
  // observed over the window that just ended.
  if (decisions_this_round_ > 0) {
    const double r = reward_.round_reward(ctx.cluster, ctx.now);
    const std::size_t start = episode_.size() - decisions_this_round_;
    for (std::size_t i = start; i < episode_.size(); ++i) episode_[i].reward = r;
  } else {
    // Keep the window anchored even on idle rounds.
    (void)reward_.round_reward(ctx.cluster, ctx.now);
  }
  decisions_this_round_ = 0;

  if (++rounds_since_update_ >= config_.rl.update_every_rounds && !episode_.empty()) {
    std::vector<rl::Episode> episodes;
    episodes.push_back(std::move(episode_));
    episode_ = {};
    agent_->update(episodes);
    rounds_since_update_ = 0;
  }

  // Queue placement by the policy, in Eq. 6 priority order and
  // job-coherently (gang execution; see MlfH::place_queued_tasks).
  int failures = 0;
  for (const TaskId tid : heuristic_.ordered_queue(ctx)) {
    if (failures >= 200) break;  // sustained-overload cap, see sched/util.hpp
    const Task& first = ctx.cluster.task(tid);
    if (first.state != TaskState::Queued) continue;
    const Job& job = ctx.cluster.job(first.job);
    // Fast fail for clearly-doomed gangs (see sched/util.hpp).
    std::size_t queued_count = 0;
    for (const TaskId sib : job.tasks()) {
      if (ctx.cluster.task(sib).state == TaskState::Queued) ++queued_count;
    }
    if (job.id() != ctx.protected_job &&
        static_cast<int>(queued_count) >
            2 * ctx.cluster.estimate_free_worker_slots(ctx.hr)) {
      ++failures;
      continue;
    }
    std::vector<TaskId> placed_now;
    std::size_t decisions_before = episode_.size();
    bool complete = true;
    for (const TaskId sib : job.tasks()) {
      const Task& task = ctx.cluster.task(sib);
      if (task.state != TaskState::Queued) continue;
      auto candidates = featurizer_.candidates(ctx, task);
      if (candidates.empty()) {
        // The policy's K-candidate view found nothing, but the gang must
        // complete or the whole job stalls partially placed: fall back to
        // the heuristic RIAL search over all underloaded servers.
        if (const auto host = heuristic_.placement().choose_host(ctx, task, false)) {
          if (ctx.ops.place(sib, host->server, host->gpu)) {
            placed_now.push_back(sib);
            continue;
          }
        }
        complete = false;
        continue;
      }
      const auto state = featurizer_.state(ctx, task, candidates);
      std::vector<char> mask(config_.rl.candidate_count, 0);
      for (std::size_t i = 0; i < candidates.size(); ++i) mask[i] = 1;
      // Execute greedily once trained ("output optimal scheduling
      // decisions", §3.4); residual exploration for the online REINFORCE
      // updates comes from the environment itself (workload stochasticity)
      // plus an occasional sampled action.
      const std::span<const bool> mask_span(reinterpret_cast<const bool*>(mask.data()),
                                            mask.size());
      const int action = rng_.bernoulli(0.05) ? agent_->act(state, mask_span)
                                              : agent_->act_greedy(state, mask_span);
      const ServerId server = candidates[static_cast<std::size_t>(action)];
      const int gpu = ctx.cluster.server(server).least_loaded_gpu();
      if (ctx.ops.place(sib, server, gpu)) {
        placed_now.push_back(sib);
        episode_.push_back({state, action, 0.0});
        ++decisions_this_round_;
      } else {
        complete = false;
      }
    }
    // All-or-nothing per round (gang execution), matching MLF-H.
    if (!complete && job.id() != ctx.protected_job) {
      for (const TaskId sib : placed_now) ctx.ops.release(sib);
      // Drop the policy decisions that were rolled back.
      while (episode_.size() > decisions_before) {
        episode_.pop_back();
        --decisions_this_round_;
      }
      ++failures;
    } else if (!placed_now.empty()) {
      failures = 0;
    }
  }
}

void MlfsScheduler::schedule(SchedulerContext& ctx) {
  maybe_switch_to_rl();
  if (rl_active_) {
    schedule_with_policy(ctx);
    heuristic_.handle_overloaded_servers(ctx);
  } else {
    heuristic_.schedule(ctx);
  }
}

void MlfsScheduler::on_job_complete(const Job& job, SimTime now) {
  reward_.on_job_complete(job, now);
  heuristic_.on_job_complete(job, now);  // evict its priority-cache entry
}

void MlfsScheduler::save_state(std::ostream& os) const {
  {
    io::BinWriter w(os);
    for (const std::uint64_t word : rng_.state()) w.u64(word);
    w.boolean(rl_active_);
    w.u64(decisions_this_round_);
    w.u64(rounds_since_update_);
    rl::save_episode(w, episode_);
    imitation_.save_state(w);
    reward_.save_state(w);
  }
  agent_->save_state(os);
  heuristic_.save_state(os);
}

void MlfsScheduler::restore_state(std::istream& is) {
  {
    io::BinReader r(is);
    std::array<std::uint64_t, 4> state;
    for (std::uint64_t& word : state) word = r.u64();
    rng_.set_state(state);
    rl_active_ = r.boolean();
    decisions_this_round_ = static_cast<std::size_t>(r.u64());
    rounds_since_update_ = static_cast<std::size_t>(r.u64());
    episode_ = rl::load_episode(r);
    imitation_.restore_state(r);
    reward_.restore_state(r);
  }
  agent_->restore_state(is);
  heuristic_.restore_state(is);
}

}  // namespace mlfs::core
