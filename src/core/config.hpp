// All tunable parameters of MLFS with the paper's §4.1 defaults:
// α=0.3, γ=0.8, γd=0.3, γr=0.3, γw=0.35, β=(0.5,0.55,0.25,0.15,0.15),
// η=0.95, hr=hs=90%, ps=10%. Ablation switches correspond to the §4.2.2
// component experiments (Figs. 6-9).
#pragma once

#include <cstdint>
#include <vector>

namespace mlfs::core {

struct PriorityParams {
  double alpha = 0.3;    ///< Eq. 6 blend: weight of ML features vs computation features
  double gamma = 0.8;    ///< Eq. 3/5 dependency discount over children
  // The paper's §4.1 values (γd=0.3, γr=0.3, γw=0.35) were tuned for the
  // authors' AWS testbed; the paper notes these "are determined by the
  // administrator ... according to the particular cluster environment".
  // The defaults below are re-tuned for this simulator (see
  // EXPERIMENTS.md, calibration).
  double gamma_d = 0.3;  ///< Eq. 4 deadline-closeness weight
  double gamma_r = 0.6;  ///< Eq. 4 remaining-time weight
  double gamma_w = 0.1;  ///< Eq. 4 waiting-time weight

  // Ablations (Fig. 6): drop the urgency coefficient L_J from Eq. 2 /
  // the deadline term from Eq. 4.
  bool use_urgency = true;
  bool use_deadline_term = true;
};

struct PlacementParams {
  /// Fig. 7 ablation: include the communication-volume dimension u_BW,V in
  /// the ideal-virtual-server match (§3.3.2).
  bool use_bandwidth = true;

  /// Extension beyond the paper (its §5 limitation: "only considers the
  /// bandwidth cost without considering the cluster network topology"):
  /// when on, the communication-affinity dimension also credits peers in
  /// the *same rack* at `rack_affinity` weight, steering gangs away from
  /// the oversubscribed inter-rack core. No effect on flat clusters.
  bool use_topology = false;
  double rack_affinity = 0.5;

  /// Memoize per-(task, server) communication volumes, keyed on the
  /// *owning job's* placement epoch (see DESIGN.md, "Scheduler hot path").
  /// Bit-exact with the direct computation; `false` keeps the reference
  /// path for equivalence tests and benchmarks.
  bool memoize_comm = true;

  /// Capacity of the comm-volume memo arena, in tasks: one slot holds one
  /// task's per-server volume vector (server_count doubles). Eviction is
  /// deterministic round-robin, so the memory bound is
  /// `comm_memo_slots × server_count × 8` bytes even with 100k+ queued
  /// tasks at Philly scale. Smaller capacities only trade hits for
  /// misses — decisions are unchanged.
  std::size_t comm_memo_slots = 4096;

  /// Fault-domain awareness (recovery policies, DESIGN.md "Recovery
  /// policies"): add a rack-spread dimension to the ideal-virtual-server
  /// distance — the fraction of the task's already-placed job peers in the
  /// candidate's rack, weighted by `spread_penalty` (ideal = 0, no peers
  /// co-racked). Pulls gangs across fault domains so one rack outage
  /// cannot erase a whole job. On a flat cluster every candidate shares
  /// rack 0, so the term is a constant shift and no decision changes.
  bool spread_racks = false;
  double spread_penalty = 0.5;
};

struct MigrationParams {
  bool enabled = true;  ///< Fig. 8 ablation: task migration on/off
  double ps = 0.10;     ///< §3.3.3: select victims among the lowest-priority p_s fraction
  /// Cap on victims per server per round (keeps one round bounded; the
  /// §3.3.3 loop "repeat until not overloaded" continues next tick).
  int max_victims_per_server = 8;
};

/// Training algorithm for the MLF-RL policy (§3.4 uses policy gradient
/// [51] = REINFORCE; A2C is the lower-variance bootstrap variant).
enum class RlAlgorithm { Reinforce, ActorCritic };

struct RlParams {
  RlAlgorithm algorithm = RlAlgorithm::Reinforce;

  /// Heuristic warm-up: MLF-H drives and logs decisions until this many
  /// imitation samples are collected, then the policy is cloned and MLF-RL
  /// takes over (§3.4: "initially runs MLF-H ... then switches").
  std::size_t warmup_samples = 2000;
  std::size_t imitation_epochs = 4;
  std::size_t imitation_batch = 64;
  std::size_t candidate_count = 4;  ///< K candidate servers per decision
  std::size_t update_every_rounds = 16;
  double eta = 0.95;  ///< future-reward discount η (§4.1)
  /// Reward weights β1..β5 for the five objectives of Eq. 1 (§4.1).
  double beta1 = 0.5;   ///< 1 / average JCT
  double beta2 = 0.55;  ///< deadline guarantee
  double beta3 = 0.25;  ///< 1 / bandwidth
  double beta4 = 0.15;  ///< accuracy guarantee
  double beta5 = 0.15;  ///< average accuracy
  std::vector<std::size_t> hidden = {48, 48};
  std::uint64_t seed = 13;
};

struct LoadControlParams {
  bool enabled = true;  ///< Fig. 9 ablation: MLF-C on/off
  double hs = 0.9;      ///< cluster overload threshold on O_c (§3.5)
};

struct MlfsConfig {
  PriorityParams priority;
  PlacementParams placement;
  MigrationParams migration;
  RlParams rl;
  LoadControlParams load_control;
  /// Run MLF-H only (never switch to the RL policy) — the "MLF-H" series
  /// of Figs. 4/5.
  bool heuristic_only = false;

  /// Reference mode for the hot-path benchmark: disable the comm-volume
  /// memo and the decorate-sort-undecorate queue ordering, falling back to
  /// the direct (recompute-per-candidate) implementations. Decisions are
  /// identical either way; pair with ClusterConfig::incremental_load_index
  /// = false to measure the full pre-index scheduler.
  bool legacy_hot_path = false;
};

}  // namespace mlfs::core
