#include "common/log.hpp"

#include <atomic>
#include <iostream>

namespace mlfs {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  std::cerr << "[mlfs:" << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace mlfs
