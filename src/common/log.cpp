#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>
#include <utility>

namespace mlfs {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

/// Serializes sink writes; one whole line per acquisition so concurrent
/// runs never tear each other's output.
std::mutex& emit_mutex() {
  static std::mutex m;
  return m;
}

thread_local std::string t_run_tag;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

RunContext::RunContext(std::string tag) : previous_(std::move(t_run_tag)) {
  t_run_tag = std::move(tag);
}

RunContext::~RunContext() { t_run_tag = std::move(previous_); }

const std::string& RunContext::current() { return t_run_tag; }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  // Assemble the full line first so the critical section is one write.
  std::string line;
  line.reserve(message.size() + t_run_tag.size() + 16);
  line += "[mlfs:";
  line += level_name(level);
  if (!t_run_tag.empty()) {
    line += '|';
    line += t_run_tag;
  }
  line += "] ";
  line += message;
  line += '\n';
  const std::lock_guard<std::mutex> lock(emit_mutex());
  std::cerr << line;
}
}  // namespace detail

}  // namespace mlfs
