#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace mlfs {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MLFS_EXPECT(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  MLFS_EXPECT(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                              std::numeric_limits<std::uint64_t>::max() % range;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::normal() {
  // Box-Muller; draw until u1 is nonzero so log() is finite.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double rate) {
  MLFS_EXPECT(rate > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

int Rng::poisson(double mean) {
  MLFS_EXPECT(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction; fine for arrival counts.
    const double v = normal(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  int k = 0;
  double product = uniform();
  while (product > limit) {
    ++k;
    product *= uniform();
  }
  return k;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  MLFS_EXPECT(!weights.empty());
  double total = 0.0;
  for (const double w : weights) {
    MLFS_EXPECT(w >= 0.0);
    total += w;
  }
  MLFS_EXPECT(total > 0.0);
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numeric fallout lands on the last bucket
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace mlfs
