#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/expect.hpp"

namespace mlfs {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void Table::add_row(std::vector<std::string> cells) {
  if (!header_.empty()) MLFS_EXPECT(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::string& label, const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (const double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

void Table::render(std::ostream& os) const {
  // Column widths from header + all rows.
  std::vector<std::size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  if (!header_.empty()) absorb(header_);
  for (const auto& row : rows_) absorb(row);

  auto print_row = [&os, &widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cells[i];
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  if (!header_.empty()) {
    print_row(header_);
    std::size_t total = 0;
    for (const auto w : widths) total += w + 2;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(cells[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace mlfs
