// Plain-text table and CSV rendering for the benchmark harnesses. The
// figure benches print one table per sub-figure in the same layout the
// paper plots (one row per scheduler, one column per x-axis point).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mlfs {

/// A simple column-aligned text table with an optional title and a
/// CSV escape hatch.
class Table {
 public:
  explicit Table(std::string title = "") : title_(std::move(title)) {}

  /// Sets the header row. Column count of subsequent rows must match.
  void set_header(std::vector<std::string> header);

  /// Appends a row of preformatted cells.
  void add_row(std::vector<std::string> cells);

  /// Appends a row with a string label followed by numeric cells
  /// (formatted with `precision` digits after the point).
  void add_row(const std::string& label, const std::vector<double>& values, int precision = 2);

  void render(std::ostream& os) const;
  std::string to_string() const;
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with fixed precision; trims to "0" etc. for readability.
std::string format_double(double v, int precision = 2);

}  // namespace mlfs
