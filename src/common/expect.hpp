// Contract-check helpers (Core Guidelines I.6/I.8 style).
//
// MLFS_EXPECT / MLFS_ENSURE throw mlfs::ContractViolation instead of
// aborting so that library users (and tests) can observe precondition
// failures. They are always on: scheduling decisions are cheap relative to
// the simulated work, and silent contract violations in a scheduler are
// exactly the bugs that corrupt an evaluation.
#pragma once

#include <stdexcept>
#include <string>

namespace mlfs {

/// Thrown when a precondition (Expects) or postcondition (Ensures) fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr, const char* file,
                                       int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " + file + ":" +
                          std::to_string(line));
}
}  // namespace detail

}  // namespace mlfs

#define MLFS_EXPECT(cond)                                                    \
  do {                                                                       \
    if (!(cond)) ::mlfs::detail::contract_fail("Expects", #cond, __FILE__, __LINE__); \
  } while (false)

#define MLFS_ENSURE(cond)                                                    \
  do {                                                                       \
    if (!(cond)) ::mlfs::detail::contract_fail("Ensures", #cond, __FILE__, __LINE__); \
  } while (false)
