// Simulation time: double seconds since simulation start, plus readable
// construction helpers. A plain double keeps the event queue and all the
// arithmetic trivial; the helpers keep call sites unit-safe.
#pragma once

namespace mlfs {

/// Seconds since the start of the simulation.
using SimTime = double;

/// Duration in seconds.
using SimDuration = double;

constexpr SimDuration seconds(double s) { return s; }
constexpr SimDuration minutes(double m) { return m * 60.0; }
constexpr SimDuration hours(double h) { return h * 3600.0; }
constexpr SimDuration days(double d) { return d * 86400.0; }

constexpr double to_minutes(SimDuration d) { return d / 60.0; }
constexpr double to_hours(SimDuration d) { return d / 3600.0; }

}  // namespace mlfs
