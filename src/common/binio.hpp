// Little-endian binary stream helpers shared by the snapshot subsystem
// (sim/snapshot.hpp) and the per-component save_state/restore_state hooks.
// Doubles travel as their IEEE-754 bit pattern, so every value round-trips
// bit-exactly — the foundation of the restore-determinism contract.
//
// BinReader fails loudly: reading past the end of the underlying stream
// throws ContractViolation (the snapshot layer re-wraps it with section
// context). Nothing here knows about sections, checksums or versions —
// that framing lives in sim/snapshot.{hpp,cpp}.
#pragma once

#include <bit>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/expect.hpp"

namespace mlfs::io {

class BinWriter {
 public:
  explicit BinWriter(std::ostream& os) : os_(os) {}

  void u8(std::uint8_t v) { os_.put(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) os_.put(static_cast<char>((v >> (8 * i)) & 0xff));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) os_.put(static_cast<char>((v >> (8 * i)) & 0xff));
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(const std::string& s) {
    u64(s.size());
    os_.write(s.data(), static_cast<std::streamsize>(s.size()));
  }

  void bytes(const char* data, std::size_t n) {
    os_.write(data, static_cast<std::streamsize>(n));
  }

  template <typename T, typename WriteOne>
  void vec(const std::vector<T>& v, WriteOne&& write_one) {
    u64(v.size());
    for (const T& x : v) write_one(x);
  }

  void vec_f64(const std::vector<double>& v) {
    vec(v, [this](double x) { f64(x); });
  }

  void vec_u64(const std::vector<std::uint64_t>& v) {
    vec(v, [this](std::uint64_t x) { u64(x); });
  }

  std::ostream& stream() { return os_; }

 private:
  std::ostream& os_;
};

class BinReader {
 public:
  explicit BinReader(std::istream& is) : is_(is) {}

  std::uint8_t u8() {
    const int c = is_.get();
    if (c == std::istream::traits_type::eof()) underrun();
    return static_cast<std::uint8_t>(c);
  }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() { return std::bit_cast<double>(u64()); }

  bool boolean() { return u8() != 0; }

  std::string str() {
    const std::uint64_t n = u64();
    check_length(n);
    std::string s(static_cast<std::size_t>(n), '\0');
    if (n > 0) {
      is_.read(s.data(), static_cast<std::streamsize>(n));
      if (static_cast<std::uint64_t>(is_.gcount()) != n) underrun();
    }
    return s;
  }

  template <typename T, typename ReadOne>
  std::vector<T> vec(ReadOne&& read_one) {
    const std::uint64_t n = u64();
    check_length(n);
    std::vector<T> v;
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(read_one());
    return v;
  }

  std::vector<double> vec_f64() {
    return vec<double>([this] { return f64(); });
  }

  std::vector<std::uint64_t> vec_u64() {
    return vec<std::uint64_t>([this] { return u64(); });
  }

  std::istream& stream() { return is_; }

 private:
  [[noreturn]] void underrun() const {
    throw ContractViolation("binary read past end of stream");
  }
  void check_length(std::uint64_t n) const {
    // A corrupt length field must not drive a multi-gigabyte allocation;
    // no serialized container in this codebase comes close to this bound.
    if (n > (1ull << 32)) {
      throw ContractViolation("binary length field implausibly large: " + std::to_string(n));
    }
  }

  std::istream& is_;
};

}  // namespace mlfs::io
