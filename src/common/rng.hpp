// Deterministic random number generation for the simulator and workload
// generator. Every stochastic component takes an explicit Rng (or a seed)
// so that whole experiments replay bit-identically from a single seed.
//
// The generator is xoshiro256++ seeded via splitmix64 — fast, high quality,
// and trivially reimplementable, which matters for reproducing results
// across platforms (std::mt19937's distributions are not portable).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/expect.hpp"

namespace mlfs {

/// xoshiro256++ PRNG with distribution helpers. Copyable: a copy continues
/// the same stream independently, which is handy for splitting substreams.
class Rng {
 public:
  /// Seeds the full 256-bit state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached spare is not kept; stateless).
  double normal();

  /// Normal with mean/stddev.
  double normal(double mean, double stddev);

  /// Log-normal: exp(N(mu, sigma)) — mu/sigma are the *log-space* params.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (lambda). Requires rate > 0.
  double exponential(double rate);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64). Requires mean >= 0.
  int poisson(double mean);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Index in [0, weights.size()) drawn proportionally to `weights`.
  /// Requires a non-empty span with a positive total weight.
  std::size_t weighted_index(std::span<const double> weights);

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    MLFS_EXPECT(!items.empty());
    return items[static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// A new Rng seeded from this one's stream (independent substream).
  Rng split();

  /// The raw 256-bit generator state — snapshot/restore must capture the
  /// stream position bit-exactly (re-seeding would replay draws).
  std::array<std::uint64_t, 4> state() const { return {state_[0], state_[1], state_[2], state_[3]}; }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s[static_cast<std::size_t>(i)];
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace mlfs
