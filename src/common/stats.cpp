#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/expect.hpp"

namespace mlfs {

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStat::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const {
  return count_ == 0 ? std::numeric_limits<double>::infinity() : min_;
}

double RunningStat::max() const {
  return count_ == 0 ? -std::numeric_limits<double>::infinity() : max_;
}

double SampleSet::mean() const {
  return samples_.empty() ? 0.0 : sum() / static_cast<double>(samples_.size());
}

double SampleSet::sum() const { return std::accumulate(samples_.begin(), samples_.end(), 0.0); }

void SampleSet::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double SampleSet::percentile(double p) const {
  MLFS_EXPECT(!samples_.empty());
  MLFS_EXPECT(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_.front();
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double SampleSet::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

std::vector<double> SampleSet::cdf_series(std::span<const double> xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (const double x : xs) out.push_back(cdf_at(x));
  return out;
}

std::vector<double> SampleSet::sorted() const {
  ensure_sorted();
  return sorted_;
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double improvement(double y, double z) {
  MLFS_EXPECT(z != 0.0);
  return (y - z) / z;
}

}  // namespace mlfs
