// Minimal leveled logger. Single global sink (stderr by default), cheap
// enough to leave statements in library code; benches run at Warn.
//
// Re-entrancy contract: the level is an atomic (readable from any thread
// without synchronization) and detail::log_emit serializes whole lines
// under a mutex, so concurrent simulation runs may log freely without
// tearing each other's output. A thread that is executing one run of a
// batch can tag its lines with a RunContext so interleaved output stays
// attributable to the run that produced it.
#pragma once

#include <sstream>
#include <string>

namespace mlfs {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are dropped before formatting.
/// Atomic: safe to call from any thread.
void set_log_level(LogLevel level);
LogLevel log_level();

/// RAII per-thread run tag. While alive, every line the *current thread*
/// emits is prefixed "[mlfs:LEVEL|tag]" instead of "[mlfs:LEVEL]", so the
/// interleaved output of a parallel sweep remains attributable. Scopes
/// nest; destruction restores the previous tag.
class RunContext {
 public:
  explicit RunContext(std::string tag);
  ~RunContext();
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  /// The calling thread's active tag ("" when untagged).
  static const std::string& current();

 private:
  std::string previous_;
};

namespace detail {
/// Formats and writes one line to the sink while holding the log mutex.
void log_emit(LogLevel level, const std::string& message);
}

}  // namespace mlfs

#define MLFS_LOG(level, expr)                                   \
  do {                                                          \
    if (static_cast<int>(level) >= static_cast<int>(::mlfs::log_level())) { \
      std::ostringstream mlfs_log_os;                           \
      mlfs_log_os << expr;                                      \
      ::mlfs::detail::log_emit(level, mlfs_log_os.str());       \
    }                                                           \
  } while (false)

#define MLFS_DEBUG(expr) MLFS_LOG(::mlfs::LogLevel::Debug, expr)
#define MLFS_INFO(expr) MLFS_LOG(::mlfs::LogLevel::Info, expr)
#define MLFS_WARN(expr) MLFS_LOG(::mlfs::LogLevel::Warn, expr)
#define MLFS_ERROR(expr) MLFS_LOG(::mlfs::LogLevel::Error, expr)
