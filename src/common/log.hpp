// Minimal leveled logger. Single global sink (stderr by default), cheap
// enough to leave statements in library code; benches run at Warn.
#pragma once

#include <sstream>
#include <string>

namespace mlfs {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are dropped before formatting.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

}  // namespace mlfs

#define MLFS_LOG(level, expr)                                   \
  do {                                                          \
    if (static_cast<int>(level) >= static_cast<int>(::mlfs::log_level())) { \
      std::ostringstream mlfs_log_os;                           \
      mlfs_log_os << expr;                                      \
      ::mlfs::detail::log_emit(level, mlfs_log_os.str());       \
    }                                                           \
  } while (false)

#define MLFS_DEBUG(expr) MLFS_LOG(::mlfs::LogLevel::Debug, expr)
#define MLFS_INFO(expr) MLFS_LOG(::mlfs::LogLevel::Info, expr)
#define MLFS_WARN(expr) MLFS_LOG(::mlfs::LogLevel::Warn, expr)
#define MLFS_ERROR(expr) MLFS_LOG(::mlfs::LogLevel::Error, expr)
