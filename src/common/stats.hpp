// Streaming statistics, percentiles and CDFs used by the metrics collector
// and the figure harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace mlfs {

/// Welford running mean/variance plus min/max. O(1) per observation.
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;  ///< sample variance (n-1); 0 when n < 2
  double stddev() const;
  double min() const;  ///< +inf when empty
  double max() const;  ///< -inf when empty
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Keeps all samples; answers percentile/CDF queries. Used for JCT
/// distributions where the figure needs the full CDF anyway.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_valid_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double sum() const;

  /// Linear-interpolated percentile, p in [0, 100]. Requires non-empty.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  /// Fraction of samples <= x (empirical CDF). Returns 0 when empty.
  double cdf_at(double x) const;

  /// CDF evaluated at each of `xs`; convenience for figure series.
  std::vector<double> cdf_series(std::span<const double> xs) const;

  /// Sorted copy of the samples.
  std::vector<double> sorted() const;

  /// Samples in insertion order (the simulator's completion order).
  const std::vector<double>& samples() const { return samples_; }

  /// Bitwise equality of the sample sequences — the determinism check the
  /// parallel experiment runner is held to (no tolerance, no reordering).
  friend bool operator==(const SampleSet& a, const SampleSet& b) {
    return a.samples_ == b.samples_;
  }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Mean of a span; 0 when empty.
double mean_of(std::span<const double> xs);

/// Relative improvement (y - z) / z as used throughout the paper's §4.
double improvement(double y, double z);

}  // namespace mlfs
