// Restore-equivalence harness: the executable definition of the snapshot
// contract. For a RunRequest and an event index, it runs the request
// uninterrupted, then re-runs it stepping to that index, snapshots, restores
// the snapshot into a third, freshly built engine, runs that to completion,
// and demands the interrupted+restored run be indistinguishable from the
// uninterrupted one — byte-identical event-stream hash and all deterministic
// RunMetrics fields (RunMetrics::deterministic_equal). Used by the fuzz
// dimension (exp/fuzz.cpp), the crash-kill tool (tools/mlfs_crashtest) and
// the restore-determinism tests.
#pragma once

#include <cstdint>
#include <string>

#include "exp/runner.hpp"

namespace mlfs::exp {

struct RestoreCheckResult {
  bool equivalent = false;
  std::uint64_t total_events = 0;     ///< events of the uninterrupted run
  std::uint64_t snapshot_event = 0;   ///< effective (wrapped) snapshot index
  RunMetrics reference;               ///< uninterrupted run
  RunMetrics restored;                ///< snapshot → restore → completion
  std::string detail;                 ///< human-readable mismatch summary ("" when equivalent)
};

/// Runs the three-engine snapshot/restore equivalence check. The snapshot
/// is taken after `snapshot_event % max(1, total_events)` events, so any
/// u64 (e.g. a fuzzer draw) names a valid cut point deterministically.
RestoreCheckResult check_restore_equivalence(const RunRequest& request,
                                             std::uint64_t snapshot_event);

}  // namespace mlfs::exp
