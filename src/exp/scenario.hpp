// Canonical experiment scenarios mirroring §4.1:
//  * testbed: 20 servers × 4 GPUs = 80 GPUs, 620x jobs over one trace week
//    (the AWS "real implementation" configuration);
//  * large-scale: 550 servers / 2474 GPUs, 117325x jobs over 18 trace
//    weeks (the Philly-trace simulation), offered here at a configurable
//    linear scale that preserves the jobs-per-GPU-per-week load so the
//    figure *shapes* survive the shrink (see EXPERIMENTS.md).
#pragma once

#include <string>

#include "sim/engine.hpp"
#include "workload/trace.hpp"

namespace mlfs::exp {

struct Scenario {
  std::string name;
  ClusterConfig cluster;
  EngineConfig engine;
  TraceConfig trace;        ///< trace.num_jobs is the x-axis base (x = 1)
  std::vector<double> sweep_multipliers;  ///< x-axis points as multiples of base
};

/// 80-GPU testbed, base 620 jobs, sweep {1/4, 1/2, 1, 2, 3} (Fig. 4).
Scenario testbed_scenario(std::uint64_t seed = 42);

/// Philly-like large cluster scaled by `scale` in servers and jobs,
/// sweep {1/2, 1, 2, 3, 4} (Fig. 5). scale = 1 is the paper's full size.
Scenario largescale_scenario(double scale = 0.02, std::uint64_t seed = 77);

/// A deliberately small/fast configuration for tests and examples.
Scenario smoke_scenario(std::size_t num_jobs = 40, std::uint64_t seed = 5);

/// Job counts of the sweep (base × multipliers, rounded, >= 1).
std::vector<std::size_t> sweep_job_counts(const Scenario& scenario);

// --- chaos knobs ---------------------------------------------------------
// Sweepable mutators so bench binaries and trace_replay can vary the
// straggler and failure models from the command line, without code edits.

/// Sets the §3.3.3 straggler model on a scenario's engine config.
void set_stragglers(Scenario& scenario, double probability, double slowdown = 4.0,
                    int replicas = 0);

/// Applies a failure rate expressed as expected crashes per server per
/// trace week (an operator-facing unit): 0 disables; 1 ≈ every server
/// crashes weekly. MTTR and the checkpoint interval ride along.
void set_failure_rate(Scenario& scenario, double crashes_per_server_week,
                      double mttr_hours = 0.5, int checkpoint_interval_iterations = 5);

/// smoke_scenario with a churny failure model (crashes + transient kills)
/// — the canonical chaos demo/test configuration.
Scenario chaos_scenario(std::size_t num_jobs = 40, std::uint64_t seed = 5);

/// Turns on the failure-aware recovery policies (sim/health.hpp) with the
/// given retry budget (0 = unlimited) and the adaptive-checkpoint /
/// rack-spread switches. Leaves the individual thresholds at their
/// RecoveryConfig defaults; callers needing finer control can edit
/// scenario.engine.recovery afterwards.
void set_recovery_policies(Scenario& scenario, int retry_budget = 0,
                           bool adaptive_checkpoint = true, bool spread_placement = true);

/// Makes the last `fraction` of the fleet crash/kill-prone at `multiplier`
/// × the base fault rates (FaultConfig::flaky_server_fraction) — the
/// heterogeneous-reliability workload that quarantining pays off on.
void set_flaky_servers(Scenario& scenario, double fraction, double multiplier = 8.0);

/// Turns on link-level bandwidth contention (sim/link_model.hpp): per-
/// server NICs and per-rack uplinks divide their capacity fairly among
/// concurrent flows; with `duty_cycles` the per-model compute/communicate
/// windows gate when flows contend — the workload network-aware schedulers
/// (Cassini) improve by anti-phasing co-located gangs. `servers_per_rack`
/// must already be set for uplinks to exist.
void set_contention(Scenario& scenario, double nic_mbps = 1000.0, double uplink_mbps = 600.0,
                    bool duty_cycles = true);

}  // namespace mlfs::exp
