#include "exp/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace mlfs::exp {

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ParallelRunner::ParallelRunner(unsigned threads) : threads_(resolve_threads(threads)) {}

void ParallelRunner::run(std::size_t count,
                         const std::function<void(std::size_t)>& fn) const {
  if (count == 0) return;
  if (threads_ <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        // Drain the queue so every worker winds down promptly.
        next.store(count, std::memory_order_relaxed);
        return;
      }
    }
  };

  const unsigned spawned = static_cast<unsigned>(
      std::min<std::size_t>(threads_, count) - 1);  // calling thread participates
  std::vector<std::thread> pool;
  pool.reserve(spawned);
  for (unsigned t = 0; t < spawned; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mlfs::exp
