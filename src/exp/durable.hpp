// Durable streaming sessions (see DESIGN.md §6d): the orchestration layer
// that ties the engine's streaming seam (SimEngine::inject_job /
// ArrivalSource) to the write-ahead journal (sim/journal.hpp) and the
// snapshot container, giving zero-loss crash recovery:
//
//   restore = load_snapshot(K) + replay journal records with event > K
//
// A DurableSession owns one journal directory. A fresh run immediately
// writes `snap-0.bin` + `journal-0.wal` (so a snapshot always exists), then
// checkpoints every `snapshot_stride` events with crash-ordered rotation:
// the new journal segment is created *first*, a SnapshotBarrier is appended
// to the old segment and synced, and the snapshot is renamed into place
// *last* — so at every instant, "snapshot exists ⇒ its journal segment
// exists", and a crash mid-checkpoint at worst leaves stray files the next
// recovery deletes. Recovery picks the newest snapshot, validates its
// segment front to back (truncating a torn tail by atomic rewrite), and
// replays journaled arrivals at their exact recorded event indices, which
// makes the resumed run byte-identical (event_stream_hash and
// deterministic_equal) to one that never crashed.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "sim/engine.hpp"
#include "sim/journal.hpp"

namespace mlfs::exp {

/// Pull-model arrival script. Each entry is due either by simulated time
/// (`spec.arrival <= now`, or immediately once the event queue drains —
/// live streaming) or, when `at_event` is set, at an exact event index
/// (journal replay: re-inject precisely where the crashed run did).
class ScriptedArrivalSource : public ArrivalSource {
 public:
  struct Entry {
    std::uint64_t stream_seq = 0;
    JobSpec spec;
    std::optional<std::uint64_t> at_event;  ///< replay rule when set
  };
  /// Called after the engine registered an arrival — the journaling seam.
  using InjectHook =
      std::function<void(const JobSpec& spec, std::uint64_t stream_seq,
                         std::uint64_t event_index)>;

  explicit ScriptedArrivalSource(std::vector<Entry> entries, InjectHook hook = nullptr)
      : entries_(std::move(entries)), hook_(std::move(hook)) {}

  bool pending() const override { return next_ < entries_.size(); }
  bool pop_due(SimTime now, std::uint64_t event_index, bool queue_empty,
               StreamedArrival& out) override;
  void on_injected(const JobSpec& spec, std::uint64_t stream_seq,
                   std::uint64_t event_index) override;

 private:
  std::vector<Entry> entries_;
  InjectHook hook_;
  std::size_t next_ = 0;
};

/// Turns a plain spec list into a live-streaming script (stream_seq =
/// position, time-rule entries).
std::vector<ScriptedArrivalSource::Entry> make_script(const std::vector<JobSpec>& specs);

/// Withholds the last `stream_jobs` arrivals of the request's workload
/// (materializing it from the trace config if needed) and returns them as
/// a live-streaming script; `request.workload` is rewritten to the densely
/// re-id'd start set. Deterministic, so two callers with the same request
/// and count rebuild the identical split (e.g. a crash-test parent and its
/// forked child). Throws if the split would leave the start set empty.
std::vector<ScriptedArrivalSource::Entry> split_streamed_tail(RunRequest& request,
                                                              std::size_t stream_jobs);

struct DurableConfig {
  std::string dir;                     ///< journal directory (created if missing)
  std::uint64_t snapshot_stride = 0;   ///< checkpoint every N events (0 = only snap-0)
  int snapshot_keep = 0;               ///< prune to the newest K snapshots (0 = keep all)
  FsyncPolicy fsync = FsyncPolicy::GroupCommit;
  int group_records = 32;              ///< group-commit batch size
  /// Simulated crash: stop before processing this event index, skipping
  /// finalize and the clean-shutdown marker. Because the journal sink is
  /// unbuffered, the on-disk state is exactly what a SIGKILL at that
  /// instant leaves behind.
  std::optional<std::uint64_t> halt_at_event;
};

struct DurableResult {
  RunMetrics metrics;                 ///< finalized (unset when halted)
  bool halted = false;                ///< stopped at halt_at_event, no finalize
  bool recovered = false;             ///< resumed from an existing snapshot
  bool torn_tail_dropped = false;     ///< recovery truncated a torn tail record
  std::uint64_t resume_event = 0;     ///< snapshot event index resumed from
  std::size_t records_replayed = 0;   ///< journaled arrivals re-injected
  std::size_t snapshots_written = 0;  ///< checkpoints taken this session
};

/// One durable run (or resume) of `request` with `script` streamed in.
/// If `config.dir` holds a snapshot, the session recovers from it and
/// continues; otherwise it starts fresh. Every streamed arrival is
/// journaled before the next event is processed.
DurableResult run_durable(const RunRequest& request,
                          const std::vector<ScriptedArrivalSource::Entry>& script,
                          const DurableConfig& config);

/// Reference run: the same request + script streamed into a live engine
/// with no journal, no snapshots, run to completion. The zero-loss gate
/// compares a crashed-and-recovered run against this.
RunMetrics run_streaming(const RunRequest& request,
                         const std::vector<ScriptedArrivalSource::Entry>& script);

/// End-to-end zero-loss property check (fuzz/test/CI harness): run the
/// reference, crash a durable run at `crash_event` (mod total events),
/// recover in a second session, and require byte-identical results.
struct CrashCheckResult {
  RunMetrics reference;
  RunMetrics recovered;
  std::uint64_t crash_event = 0;   ///< actual (wrapped) crash index
  std::uint64_t total_events = 0;  ///< reference run length
  bool torn_tail_dropped = false;
  bool equivalent = false;
  std::string detail;              ///< divergence description when !equivalent
};

CrashCheckResult check_crash_equivalence(const RunRequest& request,
                                         const std::vector<ScriptedArrivalSource::Entry>& script,
                                         std::uint64_t crash_event, const DurableConfig& config);

}  // namespace mlfs::exp
