#include "exp/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace mlfs::exp {

Scenario testbed_scenario(std::uint64_t seed) {
  Scenario s;
  s.name = "testbed-80gpu";
  s.cluster.server_count = 20;
  s.cluster.gpus_per_server = 4;
  s.engine.seed = seed ^ 0xfeed;
  s.trace.seed = seed;
  s.trace.num_jobs = 620;
  s.trace.duration_hours = 24.0 * 7;
  s.sweep_multipliers = {0.25, 0.5, 1.0, 2.0, 3.0};
  return s;
}

Scenario largescale_scenario(double scale, std::uint64_t seed) {
  MLFS_EXPECT(scale > 0.0 && scale <= 1.0);
  Scenario s;
  s.name = "philly-large";
  // 550 servers with ~4.5 GPUs each in the trace; we keep 4-GPU servers
  // and scale the fleet so GPU count tracks 2474 × scale.
  s.cluster.server_count =
      std::max<std::size_t>(4, static_cast<std::size_t>(std::lround(550.0 * scale)));
  s.cluster.gpus_per_server = 4;
  s.engine.seed = seed ^ 0xbeef;
  s.trace.seed = seed;
  // 18 trace weeks at full scale is hours of wall clock; shrink the window
  // linearly with the fleet so jobs-per-GPU-per-week holds, with the
  // paper's one-tested-week floor.
  const double weeks = std::clamp(18.0 * scale, 1.0, 18.0);
  s.trace.duration_hours = 24.0 * 7 * weeks;
  // Base job count keeps the *testbed's* jobs-per-GPU-per-week density
  // (620 jobs / 80 GPUs / week) so the x ∈ {0.5..4} sweep spans the same
  // light-to-heavy load range as Fig. 4. (The raw Philly density, 2.6
  // jobs/GPU/week, sits near x = 1/3 of this axis — our synthetic jobs
  // are heavier than the trace median, see EXPERIMENTS.md.)
  const double fleet_gpus = static_cast<double>(s.cluster.server_count * 4);
  s.trace.num_jobs = std::max<std::size_t>(
      50, static_cast<std::size_t>(std::lround(620.0 / 80.0 * fleet_gpus * weeks)));
  const int total_gpus = static_cast<int>(s.cluster.server_count) * s.cluster.gpus_per_server;
  s.trace.max_gpu_request = std::min(32, total_gpus / 2);
  s.sweep_multipliers = {0.5, 1.0, 2.0, 3.0, 4.0};
  return s;
}

Scenario smoke_scenario(std::size_t num_jobs, std::uint64_t seed) {
  Scenario s;
  s.name = "smoke";
  s.cluster.server_count = 4;
  s.cluster.gpus_per_server = 4;
  s.engine.seed = seed ^ 0x51;
  s.trace.seed = seed;
  s.trace.num_jobs = num_jobs;
  s.trace.duration_hours = 12.0;
  s.trace.max_iterations = 60;
  s.trace.max_gpu_request = 8;  // 16-GPU fleet: 32-worker jobs can't gang-place
  s.engine.max_sim_time = days(7);
  s.sweep_multipliers = {1.0};
  return s;
}

void set_stragglers(Scenario& scenario, double probability, double slowdown, int replicas) {
  MLFS_EXPECT(probability >= 0.0 && probability <= 1.0);
  scenario.engine.straggler_probability = probability;
  scenario.engine.straggler_slowdown = slowdown;
  scenario.engine.straggler_replicas = replicas;
}

void set_failure_rate(Scenario& scenario, double crashes_per_server_week, double mttr_hours,
                      int checkpoint_interval_iterations) {
  MLFS_EXPECT(crashes_per_server_week >= 0.0);
  FaultConfig& fault = scenario.engine.fault;
  fault.server_mtbf_hours =
      crashes_per_server_week > 0.0 ? 24.0 * 7.0 / crashes_per_server_week : 0.0;
  fault.server_mttr_hours = mttr_hours;
  fault.checkpoint_interval_iterations = checkpoint_interval_iterations;
}

Scenario chaos_scenario(std::size_t num_jobs, std::uint64_t seed) {
  Scenario s = smoke_scenario(num_jobs, seed);
  s.name = "chaos";
  set_failure_rate(s, 14.0);  // MTBF 12h on a 7-day horizon: real churn
  s.engine.fault.task_kill_probability = 2e-4;
  return s;
}

void set_recovery_policies(Scenario& scenario, int retry_budget, bool adaptive_checkpoint,
                           bool spread_placement) {
  MLFS_EXPECT(retry_budget >= 0);
  RecoveryConfig& recovery = scenario.engine.recovery;
  recovery.enabled = true;
  recovery.retry_budget = retry_budget;
  recovery.adaptive_checkpoint = adaptive_checkpoint;
  recovery.spread_placement = spread_placement;
}

void set_flaky_servers(Scenario& scenario, double fraction, double multiplier) {
  MLFS_EXPECT(fraction >= 0.0 && fraction <= 1.0);
  MLFS_EXPECT(fraction == 0.0 || multiplier >= 1.0);
  scenario.engine.fault.flaky_server_fraction = fraction;
  scenario.engine.fault.flaky_rate_multiplier = multiplier;
}

void set_contention(Scenario& scenario, double nic_mbps, double uplink_mbps, bool duty_cycles) {
  scenario.cluster.link_contention = true;
  scenario.cluster.nic_capacity_mbps = nic_mbps;
  scenario.cluster.rack_uplink_capacity_mbps = uplink_mbps;
  scenario.cluster.duty_cycles = duty_cycles;
}

std::vector<std::size_t> sweep_job_counts(const Scenario& scenario) {
  std::vector<std::size_t> counts;
  counts.reserve(scenario.sweep_multipliers.size());
  for (const double m : scenario.sweep_multipliers) {
    counts.push_back(std::max<std::size_t>(
        1, static_cast<std::size_t>(std::lround(m * static_cast<double>(scenario.trace.num_jobs)))));
  }
  return counts;
}

}  // namespace mlfs::exp
