// Property-based fuzzing of the simulator under the invariant auditor
// (sim/audit.hpp). A FuzzCase is a fully-scalar description of one random
// scenario — topology, workload, fault process, scheduler choice — derived
// deterministically from (master_seed, case index), so any failure is
// replayable from two integers or from its serialized key=value form.
//
// run_fuzz_sweep executes N audited cases across every requested scheduler
// and, on failure, greedily *shrinks* the case (halve jobs/servers, strip
// fault dimensions, shorten horizons) while the same invariant keeps
// failing, then reports the minimal case plus a replayable RunRequest.
// Driven by tools/mlfs_fuzz and tests/prop/.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "exp/runner.hpp"

namespace mlfs::exp {

/// One randomized scenario, all scalars (serializable / shrinkable).
struct FuzzCase {
  std::uint64_t master_seed = 7;  ///< sweep seed this case was drawn from
  std::uint64_t index = 0;        ///< case number within the sweep
  std::uint64_t trace_seed = 0;
  std::uint64_t engine_seed = 0;
  std::string scheduler = "MLFS";

  // Topology.
  std::size_t servers = 4;
  int gpus_per_server = 4;
  int servers_per_rack = 0;
  double slow_fraction = 0.0;
  /// Non-zero = heterogeneous per-server GPU counts (ClusterConfig::total_gpus).
  std::size_t total_gpus = 0;

  // Workload.
  std::size_t num_jobs = 20;
  double duration_hours = 4.0;
  double max_sim_hours = 24.0 * 7;
  int max_gpu_request = 8;

  // Stragglers.
  double straggler_probability = 0.0;
  int straggler_replicas = 0;

  // Fault process.
  double server_mtbf_hours = 0.0;
  double server_mttr_hours = 0.5;
  double task_kill_probability = 0.0;
  double rack_mtbf_hours = 0.0;
  double rack_mttr_hours = 0.25;
  int checkpoint_interval = 1;
  double flaky_fraction = 0.0;

  // Recovery policies (sim/health.hpp) — default off, like EngineConfig.
  bool recovery = false;
  bool quarantine = true;
  int retry_budget = 0;  ///< 0 = unlimited
  bool adaptive_checkpoint = false;
  bool spread_placement = false;

  // Snapshot/restore dimension: when set, the case runs the three-engine
  // restore-equivalence check (exp/restore_check.hpp) with the snapshot cut
  // at `snapshot_event % total_events`; any divergence fails with invariant
  // "snapshot-restore" and the shrunk case carries a replayable
  // snapshot_event= line.
  bool snapshot_check = false;
  std::uint64_t snapshot_event = 0;

  // Implementation switches (both paths must uphold the invariants).
  bool incremental_load_index = true;
  bool legacy_hot_path = false;
  std::size_t rl_warmup_samples = 2000;

  // Placement-index dimensions (sim/placement_index.hpp): bucket count and
  // comm-memo capacity are fuzzed down to degenerate values (1 bucket, 1
  // slot) to exercise boundary handling and eviction churn. When
  // `index_equivalence_check` is set the case runs a second time with the
  // bucket index disabled and any divergence in the event-stream hash /
  // decision metrics / linear-candidate count fails with invariant
  // "index-equivalence".
  bool placement_bucket_index = true;
  int placement_index_buckets = 512;
  std::size_t comm_memo_slots = 4096;
  bool index_equivalence_check = false;

  // Prediction-service dimensions (predict/service.hpp): the incremental
  // memoized service vs the legacy stateless cold-fit path, plus the
  // opt-in coarsening approximation. When `service_equivalence_check` is
  // set the case runs a second time with the service disabled and any
  // divergence in the event-stream hash / decision metrics fails with
  // invariant "service-equivalence" (the chain-canonical semantics make
  // the two paths byte-identical — with or without coarsening, which
  // applies to both).
  bool predict_enabled = true;
  bool coarsen_curve = false;
  bool service_equivalence_check = false;

  // Link-contention dimensions (sim/link_model.hpp): max-min fair link
  // sharing, optionally with compute/communicate duty cycles, under
  // randomized NIC / rack-uplink capacities (both flags default off like
  // ClusterConfig). The auditor's link-model conservation and link-share
  // invariants run on every audited event whenever contention is on.
  bool link_contention = false;
  bool duty_cycles = false;
  double nic_capacity_mbps = 1000.0;
  double rack_uplink_capacity_mbps = 600.0;

  // Zero-loss crash-recovery dimension (exp/durable.hpp): when set, the
  // case crashes a journaled durable run at `crash_event % total_events`,
  // recovers in a second session (snapshot + journal replay), and any
  // divergence from the never-crashed streamed reference fails with
  // invariant "crash-zero-loss". `stream_jobs` withholds that many trace
  // jobs from the start set and streams them into the running engine, so
  // journaled arrivals cross the crash boundary.
  bool crash_check = false;
  std::uint64_t crash_event = 0;
  std::size_t stream_jobs = 0;

  // Auditing.
  int audit_stride = 1;
  /// Enables ClusterConfig::debug_slot_leak — the deliberate bug the
  /// harness must catch and shrink (self-test; see tests/prop).
  bool inject_slot_leak = false;
};

/// Deterministically draws case `index` of sweep `master_seed`; the
/// scheduler cycles through `schedulers` by index, so any N >= |schedulers|
/// consecutive cases cover every scheduler.
FuzzCase generate_case(std::uint64_t master_seed, std::uint64_t index,
                       const std::vector<std::string>& schedulers);

/// The audited RunRequest this case describes (what execute_run consumes —
/// the replayable artifact reported on failure).
RunRequest to_request(const FuzzCase& c);

/// One-line human description (scheduler, topology, fault dimensions).
std::string describe(const FuzzCase& c);

/// key=value serialization (one field per line, '#' comments ignored on
/// parse). parse_fuzz_case throws ContractViolation on unknown keys or
/// malformed lines.
std::string serialize(const FuzzCase& c);
FuzzCase parse_fuzz_case(std::istream& in);

/// Why a case failed: the violated invariant id for AuditViolations (or
/// "determinism" for replay divergence), empty for any other exception.
struct FuzzFailure {
  FuzzCase failing_case;
  std::string invariant;
  std::string what;  ///< exception message / diagnostic
};

/// Runs one audited case; nullopt = clean pass. With `check_determinism`
/// the case runs twice and any deterministic_equal divergence counts as a
/// failure.
std::optional<FuzzFailure> run_fuzz_case(const FuzzCase& c, bool check_determinism = false);

/// Greedy shrink: repeatedly applies case-reducing transforms (halve
/// jobs/servers/GPUs, drop fault dimensions, flatten racks, shorten
/// horizons), keeping a transform iff the reduced case still fails with
/// the same invariant, until a full pass accepts nothing.
struct ShrinkResult {
  FuzzCase minimal;
  FuzzFailure failure;   ///< failure of the minimal case
  int attempts = 0;      ///< candidate runs executed
  int accepted = 0;      ///< transforms that kept the violation alive
};
ShrinkResult shrink_case(const FuzzCase& original, const FuzzFailure& original_failure,
                         int max_rounds = 8);

struct FuzzSweepOptions {
  std::uint64_t seed = 7;
  std::size_t runs = 100;
  /// Schedulers to cycle through; empty = every registered scheduler.
  std::vector<std::string> schedulers;
  bool check_determinism = false;
  bool inject_slot_leak = false;  ///< self-test mode: every case carries the bug
  int shrink_rounds = 8;
  std::size_t max_failures = 3;  ///< stop collecting (and shrinking) after this many
  unsigned threads = 0;          ///< 0 = hardware concurrency
  /// Progress sink (case index, case, failed) — called serially (under a
  /// lock) as each case resolves; completion order varies with `threads`.
  std::function<void(std::size_t, const FuzzCase&, bool)> progress;
};

struct FuzzSweepOutcome {
  std::size_t runs = 0;
  std::vector<ShrinkResult> failures;  ///< shrunk, ordered by case index
  bool clean() const { return failures.empty(); }
};

/// Runs the sweep (cases execute concurrently up to `threads`; outcome is
/// independent of the thread count), then shrinks the first
/// `max_failures` failing cases serially.
FuzzSweepOutcome run_fuzz_sweep(const FuzzSweepOptions& options);

}  // namespace mlfs::exp
