#include "exp/registry.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "core/mlf_c.hpp"
#include "core/mlfs.hpp"
#include "sched/cassini.hpp"
#include "sched/fair.hpp"
#include "sched/gandiva.hpp"
#include "sched/graphene.hpp"
#include "sched/hypersched.hpp"
#include "sched/optimus.hpp"
#include "sched/rl_baseline.hpp"
#include "sched/slaq.hpp"
#include "sched/tiresias.hpp"

namespace mlfs::exp {

SchedulerInstance make_scheduler(const std::string& name, const core::MlfsConfig& mlfs_config) {
  SchedulerInstance out;
  if (name == "MLF-H") {
    core::MlfsConfig config = mlfs_config;
    config.heuristic_only = true;
    out.scheduler = std::make_unique<core::MlfsScheduler>(config, "MLF-H");
  } else if (name == "MLF-RL") {
    core::MlfsConfig config = mlfs_config;
    config.heuristic_only = false;
    out.scheduler = std::make_unique<core::MlfsScheduler>(config, "MLF-RL");
  } else if (name == "MLFS") {
    core::MlfsConfig config = mlfs_config;
    config.heuristic_only = false;
    out.scheduler = std::make_unique<core::MlfsScheduler>(config, "MLFS");
    out.controller = std::make_unique<core::MlfC>(config.load_control);
  } else if (name == "TensorFlow") {
    out.scheduler = std::make_unique<sched::FairScheduler>();
  } else if (name == "Gandiva") {
    out.scheduler = std::make_unique<sched::GandivaScheduler>();
  } else if (name == "SLAQ") {
    out.scheduler = std::make_unique<sched::SlaqScheduler>();
  } else if (name == "Tiresias") {
    out.scheduler = std::make_unique<sched::TiresiasScheduler>();
  } else if (name == "Graphene") {
    out.scheduler = std::make_unique<sched::GrapheneScheduler>();
  } else if (name == "HyperSched") {
    out.scheduler = std::make_unique<sched::HyperSchedScheduler>();
  } else if (name == "RL") {
    out.scheduler = std::make_unique<sched::RlBaselineScheduler>();
  } else if (name == "Optimus") {
    out.scheduler = std::make_unique<sched::OptimusScheduler>();
  } else if (name == "Cassini") {
    out.scheduler = std::make_unique<sched::CassiniScheduler>();
  } else {
    throw ContractViolation("unknown scheduler: " + name);
  }
  return out;
}

std::vector<std::string> paper_scheduler_names() {
  return {"MLF-H",    "MLF-RL",  "MLFS",     "TensorFlow", "Tiresias",
          "SLAQ",     "Gandiva", "Graphene", "HyperSched", "RL"};
}

std::vector<std::string> mlfs_family_names() { return {"MLF-H", "MLF-RL", "MLFS"}; }

std::vector<std::string> extended_scheduler_names() {
  auto names = paper_scheduler_names();
  names.push_back("Optimus");
  names.push_back("Cassini");
  return names;
}

std::vector<std::string> registered_scheduler_names() {
  // make_scheduler accepts exactly the extended set; keep these coupled so
  // a newly registered scheduler shows up in every listing automatically.
  return extended_scheduler_names();
}

bool is_registered_scheduler(const std::string& name) {
  const auto names = registered_scheduler_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

std::vector<FaultSweepPoint> failure_rate_sweep() {
  // Crashes per server per week: none, quarterly-grade hardware, weekly
  // churn, and a stress point where every server dies every other day.
  return {{"no faults", 0.0}, {"0.5/srv/wk", 0.5}, {"2/srv/wk", 2.0}, {"3.5/srv/wk", 3.5}};
}

}  // namespace mlfs::exp
