// Experiment runner: one (scenario, scheduler, job-count) run and full
// sweeps over job counts × schedulers, plus the figure-table builders the
// bench binaries share.
#pragma once

#include <map>

#include "common/table.hpp"
#include "exp/registry.hpp"
#include "exp/scenario.hpp"
#include "sim/metrics.hpp"

namespace mlfs::exp {

/// Runs `scheduler_name` on the scenario with `num_jobs` trace jobs.
RunMetrics run_experiment(const Scenario& scenario, const std::string& scheduler_name,
                          std::size_t num_jobs, const core::MlfsConfig& mlfs_config = {});

/// metrics[scheduler][sweep-point]; every scheduler sees the identical
/// trace at each sweep point (same trace seed).
using SweepResults = std::map<std::string, std::vector<RunMetrics>>;

SweepResults run_sweep(const Scenario& scenario, const std::vector<std::string>& schedulers,
                       const core::MlfsConfig& mlfs_config = {}, bool verbose = true);

/// One figure panel: rows = schedulers (legend order), columns = sweep
/// job counts, cells = `extract(metrics)`.
Table panel_table(const std::string& title, const Scenario& scenario,
                  const std::vector<std::string>& schedulers, const SweepResults& results,
                  double (*extract)(const RunMetrics&), int precision = 2);

/// CDF-of-JCT panel (Figs. 4(a)/5(a)) at one sweep point: rows =
/// schedulers, columns = JCT breakpoints in minutes.
Table cdf_table(const std::string& title, const std::vector<std::string>& schedulers,
                const SweepResults& results, std::size_t sweep_index,
                const std::vector<double>& breakpoints_minutes);

/// Writes a table's CSV next to the bench outputs (best effort; logs on
/// failure instead of throwing).
void write_csv(const Table& table, const std::string& path);

}  // namespace mlfs::exp
