// Experiment runner: one (scenario, scheduler, job-count) run and full
// sweeps over job counts × schedulers, plus the figure-table builders the
// bench binaries share.
//
// The execution core is a pure function: a fully-specified RunRequest in,
// RunMetrics out, with no state shared between runs (each run owns its
// RNG streams, cluster, scheduler instance, and metrics). That is what
// lets run_batch execute requests on a work-stealing thread pool while
// staying bitwise identical to the serial path: results are placed by
// request index, never by completion order, so the output of any batch or
// sweep is independent of the thread count, and threads == 1 reproduces
// the historical serial runner exactly (same order, same stdout).
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>

#include "common/table.hpp"
#include "exp/registry.hpp"
#include "exp/scenario.hpp"
#include "sim/metrics.hpp"

namespace mlfs::exp {

/// Everything one simulation needs, by value: configs, scheduler name and
/// workload source. Self-contained on purpose — two requests never share
/// mutable state, so any subset may execute concurrently.
struct RunRequest {
  std::string label;          ///< progress/log tag, e.g. "testbed-80gpu n=620"
  ClusterConfig cluster;
  EngineConfig engine;
  TraceConfig trace;          ///< workload generator config (used when !workload)
  std::string scheduler;      ///< registry name, see make_scheduler()
  core::MlfsConfig mlfs_config;
  /// Optional explicit job list (trace replay); overrides `trace` when set.
  /// Shared, not copied: requests of a batch may point at the same specs.
  std::shared_ptr<const std::vector<JobSpec>> workload;
  /// Optional per-run observer (event logs, hashers). Must be distinct per
  /// request within a batch — observers are stateful and not synchronized.
  EngineObserver* observer = nullptr;
};

/// One run's live objects, owned together so the engine's internal
/// references stay valid: the scheduler instance (+ optional controller)
/// and the engine built on them. Lets callers drive the engine manually
/// (step/snapshot/restore) instead of run()-to-completion.
struct EngineBundle {
  SchedulerInstance instance;
  std::unique_ptr<SimEngine> engine;
};

/// Builds the workload, scheduler, and engine from the request exactly as
/// execute_run does (including the recovery.spread_placement →
/// placement.spread_racks coupling) but without running it. Two bundles
/// built from the same request are interchangeable for restore_snapshot:
/// they share the same config fingerprint.
EngineBundle build_engine(const RunRequest& request);

/// The pure execution core: builds the workload, scheduler and engine from
/// the request and runs it to completion. Thread-safe by construction.
RunMetrics execute_run(const RunRequest& request);

/// A scenario point as a RunRequest (scheduler run on `num_jobs` trace jobs).
RunRequest make_request(const Scenario& scenario, const std::string& scheduler_name,
                        std::size_t num_jobs, const core::MlfsConfig& mlfs_config = {});

/// Convenience wrapper: make_request + execute_run.
RunMetrics run_experiment(const Scenario& scenario, const std::string& scheduler_name,
                          std::size_t num_jobs, const core::MlfsConfig& mlfs_config = {});

/// Progress event, delivered as each run completes (completion order).
struct RunProgress {
  std::size_t index = 0;  ///< position in the request batch
  std::size_t total = 0;
  const RunRequest* request = nullptr;
  const RunMetrics* metrics = nullptr;
};

struct RunOptions {
  /// Worker threads: 1 = serial on the calling thread (the historical
  /// behavior, byte-identical output), 0 = hardware concurrency.
  unsigned threads = 1;
  /// Print the default "  [label] summary" progress line per finished run.
  bool verbose = true;
  /// Custom progress sink; replaces the default printing when set. Calls
  /// are serialized (never concurrent), but arrive in completion order —
  /// use RunProgress::index for deterministic placement.
  std::function<void(const RunProgress&)> progress;
};

/// Runs every request (serially or on the pool, per options.threads) and
/// returns metrics with results[i] belonging to requests[i], regardless of
/// completion order or thread count.
std::vector<RunMetrics> run_batch(const std::vector<RunRequest>& requests,
                                  const RunOptions& options = {});

/// metrics[scheduler][sweep-point]; every scheduler sees the identical
/// trace at each sweep point (same trace seed).
using SweepResults = std::map<std::string, std::vector<RunMetrics>>;

SweepResults run_sweep(const Scenario& scenario, const std::vector<std::string>& schedulers,
                       const core::MlfsConfig& mlfs_config = {},
                       const RunOptions& options = {});

/// One figure panel: rows = schedulers (legend order), columns = sweep
/// job counts, cells = `extract(metrics)`.
Table panel_table(const std::string& title, const Scenario& scenario,
                  const std::vector<std::string>& schedulers, const SweepResults& results,
                  double (*extract)(const RunMetrics&), int precision = 2);

/// CDF-of-JCT panel (Figs. 4(a)/5(a)) at one sweep point: rows =
/// schedulers, columns = JCT breakpoints in minutes.
Table cdf_table(const std::string& title, const std::vector<std::string>& schedulers,
                const SweepResults& results, std::size_t sweep_index,
                const std::vector<double>& breakpoints_minutes);

/// Writes a table's CSV, creating missing parent directories, and logs the
/// absolute path it wrote (best effort; logs on failure instead of
/// throwing).
void write_csv(const Table& table, const std::string& path);

}  // namespace mlfs::exp
