#include "exp/runner.hpp"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>

#include "common/log.hpp"
#include "exp/parallel.hpp"

namespace mlfs::exp {

EngineBundle build_engine(const RunRequest& request) {
  std::vector<JobSpec> specs =
      request.workload ? *request.workload : PhillyTraceGenerator(request.trace).generate();

  // Recovery policies own the fault-domain placement switch: the engine
  // config is the single opt-in surface, so thread it into the scheduler's
  // placement params here rather than asking callers to set both.
  core::MlfsConfig mlfs_config = request.mlfs_config;
  if (request.engine.recovery.enabled && request.engine.recovery.spread_placement) {
    mlfs_config.placement.spread_racks = true;
  }
  EngineBundle bundle;
  bundle.instance = make_scheduler(request.scheduler, mlfs_config);
  bundle.engine = std::make_unique<SimEngine>(request.cluster, request.engine, std::move(specs),
                                              *bundle.instance.scheduler,
                                              bundle.instance.controller.get());
  if (request.observer != nullptr) bundle.engine->set_observer(request.observer);
  return bundle;
}

RunMetrics execute_run(const RunRequest& request) {
  return build_engine(request).engine->run();
}

RunRequest make_request(const Scenario& scenario, const std::string& scheduler_name,
                        std::size_t num_jobs, const core::MlfsConfig& mlfs_config) {
  RunRequest request;
  request.label = scenario.name + " n=" + std::to_string(num_jobs);
  request.cluster = scenario.cluster;
  request.engine = scenario.engine;
  request.trace = scenario.trace;
  request.trace.num_jobs = num_jobs;
  request.scheduler = scheduler_name;
  request.mlfs_config = mlfs_config;
  return request;
}

RunMetrics run_experiment(const Scenario& scenario, const std::string& scheduler_name,
                          std::size_t num_jobs, const core::MlfsConfig& mlfs_config) {
  return execute_run(make_request(scenario, scheduler_name, num_jobs, mlfs_config));
}

std::vector<RunMetrics> run_batch(const std::vector<RunRequest>& requests,
                                  const RunOptions& options) {
  std::vector<RunMetrics> results(requests.size());
  std::mutex progress_mutex;

  const auto report = [&](std::size_t index) {
    if (!options.progress && !options.verbose) return;
    RunProgress event;
    event.index = index;
    event.total = requests.size();
    event.request = &requests[index];
    event.metrics = &results[index];
    const std::lock_guard<std::mutex> lock(progress_mutex);
    if (options.progress) {
      options.progress(event);
    } else {
      std::cout << "  [" << requests[index].label << "] " << results[index].summary() << '\n';
    }
  };

  ParallelRunner pool(options.threads);
  pool.run(requests.size(), [&](std::size_t i) {
    const RunContext log_tag(requests[i].scheduler + "@" + requests[i].label);
    results[i] = execute_run(requests[i]);
    report(i);
  });
  return results;
}

SweepResults run_sweep(const Scenario& scenario, const std::vector<std::string>& schedulers,
                       const core::MlfsConfig& mlfs_config, const RunOptions& options) {
  // Requests in the historical serial order (job counts outer, schedulers
  // inner) so threads == 1 reproduces the legacy runner's stdout exactly.
  const std::vector<std::size_t> counts = sweep_job_counts(scenario);
  std::vector<RunRequest> requests;
  requests.reserve(counts.size() * schedulers.size());
  for (const std::size_t jobs : counts) {
    for (const std::string& name : schedulers) {
      requests.push_back(make_request(scenario, name, jobs, mlfs_config));
    }
  }

  const std::vector<RunMetrics> batch = run_batch(requests, options);

  // Deterministic placement: results land by request index, so the map is
  // bitwise independent of completion order and thread count.
  SweepResults results;
  for (std::size_t s = 0; s < schedulers.size(); ++s) {
    std::vector<RunMetrics>& runs = results[schedulers[s]];
    runs.reserve(counts.size());
    for (std::size_t j = 0; j < counts.size(); ++j) {
      runs.push_back(batch[j * schedulers.size() + s]);
    }
  }
  return results;
}

Table panel_table(const std::string& title, const Scenario& scenario,
                  const std::vector<std::string>& schedulers, const SweepResults& results,
                  double (*extract)(const RunMetrics&), int precision) {
  Table table(title);
  std::vector<std::string> header = {"scheduler"};
  for (const std::size_t jobs : sweep_job_counts(scenario)) {
    header.push_back(std::to_string(jobs) + " jobs");
  }
  table.set_header(std::move(header));
  for (const std::string& name : schedulers) {
    const auto it = results.find(name);
    if (it == results.end()) continue;
    std::vector<double> row;
    row.reserve(it->second.size());
    for (const RunMetrics& m : it->second) row.push_back(extract(m));
    table.add_row(name, row, precision);
  }
  return table;
}

Table cdf_table(const std::string& title, const std::vector<std::string>& schedulers,
                const SweepResults& results, std::size_t sweep_index,
                const std::vector<double>& breakpoints_minutes) {
  Table table(title);
  std::vector<std::string> header = {"scheduler"};
  for (const double bp : breakpoints_minutes) {
    header.push_back("<=" + format_double(bp, 0) + "min");
  }
  table.set_header(std::move(header));
  for (const std::string& name : schedulers) {
    const auto it = results.find(name);
    if (it == results.end() || sweep_index >= it->second.size()) continue;
    const SampleSet& jct = it->second[sweep_index].jct_minutes;
    std::vector<double> row;
    row.reserve(breakpoints_minutes.size());
    for (const double bp : breakpoints_minutes) row.push_back(jct.cdf_at(bp));
    table.add_row(name, row, 3);
  }
  return table;
}

void write_csv(const Table& table, const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path target(path);
  if (target.has_parent_path()) {
    fs::create_directories(target.parent_path(), ec);
    if (ec) {
      MLFS_WARN("could not create directory " << target.parent_path().string() << " for CSV "
                                              << path << ": " << ec.message());
      return;
    }
  }
  std::ofstream out(target);
  if (!out) {
    MLFS_WARN("could not write CSV to " << fs::absolute(target, ec).string());
    return;
  }
  out << table.to_csv();
  MLFS_INFO("wrote CSV " << fs::absolute(target, ec).string());
}

}  // namespace mlfs::exp
