#include "exp/runner.hpp"

#include <fstream>
#include <iostream>

#include "common/log.hpp"

namespace mlfs::exp {

RunMetrics run_experiment(const Scenario& scenario, const std::string& scheduler_name,
                          std::size_t num_jobs, const core::MlfsConfig& mlfs_config) {
  TraceConfig trace = scenario.trace;
  trace.num_jobs = num_jobs;
  PhillyTraceGenerator generator(trace);
  auto specs = generator.generate();

  SchedulerInstance instance = make_scheduler(scheduler_name, mlfs_config);
  SimEngine engine(scenario.cluster, scenario.engine, std::move(specs), *instance.scheduler,
                   instance.controller.get());
  return engine.run();
}

SweepResults run_sweep(const Scenario& scenario, const std::vector<std::string>& schedulers,
                       const core::MlfsConfig& mlfs_config, bool verbose) {
  SweepResults results;
  for (const std::size_t jobs : sweep_job_counts(scenario)) {
    for (const std::string& name : schedulers) {
      RunMetrics m = run_experiment(scenario, name, jobs, mlfs_config);
      if (verbose) std::cout << "  [" << scenario.name << " n=" << jobs << "] " << m.summary() << '\n';
      results[name].push_back(std::move(m));
    }
  }
  return results;
}

Table panel_table(const std::string& title, const Scenario& scenario,
                  const std::vector<std::string>& schedulers, const SweepResults& results,
                  double (*extract)(const RunMetrics&), int precision) {
  Table table(title);
  std::vector<std::string> header = {"scheduler"};
  for (const std::size_t jobs : sweep_job_counts(scenario)) {
    header.push_back(std::to_string(jobs) + " jobs");
  }
  table.set_header(std::move(header));
  for (const std::string& name : schedulers) {
    const auto it = results.find(name);
    if (it == results.end()) continue;
    std::vector<double> row;
    row.reserve(it->second.size());
    for (const RunMetrics& m : it->second) row.push_back(extract(m));
    table.add_row(name, row, precision);
  }
  return table;
}

Table cdf_table(const std::string& title, const std::vector<std::string>& schedulers,
                const SweepResults& results, std::size_t sweep_index,
                const std::vector<double>& breakpoints_minutes) {
  Table table(title);
  std::vector<std::string> header = {"scheduler"};
  for (const double bp : breakpoints_minutes) {
    header.push_back("<=" + format_double(bp, 0) + "min");
  }
  table.set_header(std::move(header));
  for (const std::string& name : schedulers) {
    const auto it = results.find(name);
    if (it == results.end() || sweep_index >= it->second.size()) continue;
    const SampleSet& jct = it->second[sweep_index].jct_minutes;
    std::vector<double> row;
    row.reserve(breakpoints_minutes.size());
    for (const double bp : breakpoints_minutes) row.push_back(jct.cdf_at(bp));
    table.add_row(name, row, 3);
  }
  return table;
}

void write_csv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    MLFS_WARN("could not write CSV to " << path);
    return;
  }
  out << table.to_csv();
}

}  // namespace mlfs::exp
