// Scheduler registry: builds any of the paper's ten series by name —
// the seven comparison methods plus MLF-H, MLF-RL and full MLFS (which
// couples MLF-RL with an MLF-C load controller). Ablation variants take a
// customized MlfsConfig.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "sim/engine.hpp"

namespace mlfs::exp {

struct SchedulerInstance {
  std::unique_ptr<Scheduler> scheduler;
  std::unique_ptr<LoadController> controller;  ///< non-null only for MLFS variants
};

/// Names accepted: "MLF-H", "MLF-RL", "MLFS", "TensorFlow", "Gandiva",
/// "SLAQ", "Tiresias", "Graphene", "HyperSched", "RL".
/// Throws ContractViolation for unknown names.
SchedulerInstance make_scheduler(const std::string& name,
                                 const core::MlfsConfig& mlfs_config = {});

/// The ten series of Figs. 4/5, in the paper's legend order.
std::vector<std::string> paper_scheduler_names();

/// Our three methods only (for component/ablation figures).
std::vector<std::string> mlfs_family_names();

/// Paper set plus the extension baselines (currently Optimus [42]).
std::vector<std::string> extended_scheduler_names();

/// Every name make_scheduler accepts — the single source of truth for CLI
/// listings (mlfs_sim --list-schedulers) so scenario scripts never
/// hard-code name lists.
std::vector<std::string> registered_scheduler_names();

/// True iff `name` is accepted by make_scheduler.
bool is_registered_scheduler(const std::string& name);

/// One point of the failure-rate sweep used by bench_fault_recovery and
/// the robustness tests: a label plus the crashes-per-server-week rate
/// fed to exp::set_failure_rate.
struct FaultSweepPoint {
  std::string label;
  double crashes_per_server_week;
};

/// The registered failure-rate sweep, from fault-free to heavy churn.
std::vector<FaultSweepPoint> failure_rate_sweep();

}  // namespace mlfs::exp
