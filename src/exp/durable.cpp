#include "exp/durable.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/expect.hpp"
#include "workload/trace.hpp"

namespace mlfs::exp {

namespace fs = std::filesystem;

namespace {

std::string snap_path(const std::string& dir, std::uint64_t event) {
  return dir + "/snap-" + std::to_string(event) + ".bin";
}

std::string journal_path(const std::string& dir, std::uint64_t event) {
  return dir + "/journal-" + std::to_string(event) + ".wal";
}

/// Event index encoded in "<prefix><digits><suffix>", or nullopt.
std::optional<std::uint64_t> parse_keyed_name(const std::string& name, const char* prefix,
                                              const char* suffix) {
  const std::size_t plen = std::string(prefix).size();
  const std::size_t slen = std::string(suffix).size();
  if (name.size() <= plen + slen || name.rfind(prefix, 0) != 0 ||
      name.compare(name.size() - slen, slen, suffix) != 0) {
    return std::nullopt;
  }
  const std::string digits = name.substr(plen, name.size() - plen - slen);
  if (digits.empty() || digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  return std::stoull(digits);
}

/// Snapshot event indices present in `dir`, ascending.
std::vector<std::uint64_t> list_snapshots(const std::string& dir) {
  std::vector<std::uint64_t> events;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const auto event = parse_keyed_name(entry.path().filename().string(), "snap-", ".bin");
    if (event) events.push_back(*event);
  }
  std::sort(events.begin(), events.end());
  return events;
}

/// Removes debris a crash mid-checkpoint can leave behind: half-written
/// `.tmp` files and journal segments newer than the newest surviving
/// snapshot (their snapshot never got renamed into place, so nothing can
/// ever replay them).
void remove_stray_files(const std::string& dir, std::uint64_t newest_snapshot) {
  std::error_code ec;
  std::vector<fs::path> stray;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      stray.push_back(entry.path());
      continue;
    }
    const auto event = parse_keyed_name(name, "journal-", ".wal");
    if (event && *event > newest_snapshot) stray.push_back(entry.path());
  }
  for (const auto& path : stray) fs::remove(path, ec);
}

/// Keeps the newest `keep` snapshots; drops older snapshots together with
/// their journal segments (a pruned snapshot's segment can never be the
/// recovery base again — recovery always picks the newest).
void prune_snapshots(const std::string& dir, int keep) {
  const std::vector<std::uint64_t> events = list_snapshots(dir);
  const auto retain = static_cast<std::size_t>(std::max(1, keep));
  if (events.size() <= retain) return;
  std::error_code ec;
  for (std::size_t i = 0; i + retain < events.size(); ++i) {
    fs::remove(snap_path(dir, events[i]), ec);
    fs::remove(journal_path(dir, events[i]), ec);
  }
}

/// save_snapshot via tmp + rename: the final name only ever points at a
/// complete, checksummed file.
void write_snapshot_atomic(const SimEngine& engine, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw ContractViolation("cannot open snapshot file " + tmp);
    engine.save_snapshot(os);
    os.flush();
    if (!os) throw ContractViolation("snapshot flush failed for " + tmp);
  }
  fs::rename(tmp, path);
}

/// One step of the shared streaming drive loop. Returns false when the run
/// is truly over: step() said so, and either no arrival remains or neither
/// an event nor an injection happened this round — the queue holds only
/// beyond-horizon events and no further arrival can become due, so the
/// remaining script is horizon-censored exactly like the reference run.
bool streaming_step(SimEngine& engine, ScriptedArrivalSource& source) {
  const std::uint64_t before_events = engine.events_processed();
  const std::size_t before_injected = engine.injected_specs().size();
  if (engine.step()) return true;
  if (!source.pending()) return false;
  return engine.events_processed() != before_events ||
         engine.injected_specs().size() != before_injected;
}

}  // namespace

bool ScriptedArrivalSource::pop_due(SimTime now, std::uint64_t event_index, bool queue_empty,
                                    StreamedArrival& out) {
  if (next_ >= entries_.size()) return false;
  const Entry& entry = entries_[next_];
  const bool due = entry.at_event ? event_index >= *entry.at_event
                                  : (entry.spec.arrival <= now || queue_empty);
  if (!due) return false;
  out.stream_seq = entry.stream_seq;
  out.spec = entry.spec;
  ++next_;
  return true;
}

void ScriptedArrivalSource::on_injected(const JobSpec& spec, std::uint64_t stream_seq,
                                        std::uint64_t event_index) {
  if (hook_) hook_(spec, stream_seq, event_index);
}

std::vector<ScriptedArrivalSource::Entry> make_script(const std::vector<JobSpec>& specs) {
  std::vector<ScriptedArrivalSource::Entry> script;
  script.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    script.push_back({static_cast<std::uint64_t>(i), specs[i], std::nullopt});
  }
  return script;
}

std::vector<ScriptedArrivalSource::Entry> split_streamed_tail(RunRequest& request,
                                                              std::size_t stream_jobs) {
  if (stream_jobs == 0) return {};
  std::vector<JobSpec> specs =
      request.workload ? *request.workload : PhillyTraceGenerator(request.trace).generate();
  std::stable_sort(specs.begin(), specs.end(),
                   [](const JobSpec& a, const JobSpec& b) { return a.arrival < b.arrival; });
  if (stream_jobs >= specs.size()) {
    throw ContractViolation("split_streamed_tail: stream_jobs " + std::to_string(stream_jobs) +
                            " must leave at least one of " + std::to_string(specs.size()) +
                            " jobs in the start set");
  }
  std::vector<JobSpec> streamed(specs.end() - static_cast<std::ptrdiff_t>(stream_jobs),
                                specs.end());
  specs.resize(specs.size() - stream_jobs);
  // The cluster requires dense job ids; streamed jobs are re-id'd by the
  // engine on injection, so only the start set is renumbered.
  for (std::size_t i = 0; i < specs.size(); ++i) specs[i].id = static_cast<JobId>(i);
  request.workload = std::make_shared<const std::vector<JobSpec>>(std::move(specs));
  return make_script(streamed);
}

DurableResult run_durable(const RunRequest& request,
                          const std::vector<ScriptedArrivalSource::Entry>& script,
                          const DurableConfig& config) {
  MLFS_EXPECT(!config.dir.empty());
  fs::create_directories(config.dir);

  DurableResult result;
  EngineBundle bundle = build_engine(request);
  SimEngine& engine = *bundle.engine;
  const std::uint64_t fingerprint = engine.config_fingerprint();

  std::vector<ScriptedArrivalSource::Entry> entries;
  std::unique_ptr<JournalWriter> writer;
  std::uint64_t journaled_below = 0;  ///< stream_seqs < this are already on disk

  const std::vector<std::uint64_t> snapshots = list_snapshots(config.dir);
  if (!snapshots.empty()) {
    // ---- recovery: newest snapshot + its journal segment ----
    const std::uint64_t base = snapshots.back();
    result.recovered = true;
    result.resume_event = base;
    remove_stray_files(config.dir, base);
    {
      std::ifstream is(snap_path(config.dir, base), std::ios::binary);
      if (!is) throw ContractViolation("cannot open snapshot " + snap_path(config.dir, base));
      engine.restore_snapshot(is);
    }
    MLFS_EXPECT(engine.events_processed() == base);

    JournalReplay replay = read_journal_file(journal_path(config.dir, base), fingerprint);
    MLFS_EXPECT(replay.base_event == base);
    result.torn_tail_dropped = replay.torn_tail;

    // Records we keep appending after: everything validated except a
    // clean-shutdown marker (re-running a finished session is legal; the
    // marker is dropped so new records don't land behind it).
    std::vector<JournalRecord> keep;
    for (const JournalRecord& record : replay.records) {
      if (record.type != JournalRecordType::CleanShutdown) keep.push_back(record);
    }
    const std::uint64_t continue_seq = replay.first_seq + keep.size();

    if (replay.torn_tail || replay.clean_shutdown) {
      // Atomic truncation: rewrite the validated prefix (header + records,
      // sequence numbers preserved verbatim) into a tmp segment and rename
      // it over the damaged file — a crash mid-rewrite leaves the original.
      const std::string path = journal_path(config.dir, base);
      const std::string tmp = path + ".tmp";
      {
        JournalWriter rewrite(std::make_unique<FileJournalSink>(tmp, /*truncate=*/true),
                              fingerprint, base, replay.first_seq, FsyncPolicy::Off,
                              config.group_records);
        for (const JournalRecord& record : keep) rewrite.append_record(record);
        rewrite.sync();
      }
      fs::rename(tmp, path);
    }

    writer = std::make_unique<JournalWriter>(
        std::make_unique<FileJournalSink>(journal_path(config.dir, base)), fingerprint, base,
        continue_seq, config.fsync, config.group_records, /*write_header=*/false);

    // Arrivals already inside the snapshot occupy stream_seqs
    // [0, injected_before); the segment's records continue from there and
    // are re-injected at their exact recorded event indices. The rest of
    // the script streams live, by the time rule.
    std::uint64_t expected_seq = engine.injected_specs().size();
    for (const JournalRecord& record : keep) {
      if (record.type != JournalRecordType::InjectArrival) continue;
      MLFS_EXPECT(record.stream_seq == expected_seq);
      entries.push_back({record.stream_seq, record.spec, record.event_index});
      ++expected_seq;
    }
    result.records_replayed = entries.size();
    journaled_below = expected_seq;
    for (const ScriptedArrivalSource::Entry& entry : script) {
      if (entry.stream_seq >= journaled_below) entries.push_back(entry);
    }
  } else {
    // ---- fresh session: journal-0.wal first, snap-0.bin second, so the
    // "snapshot exists => its journal segment exists" invariant holds from
    // the very first write.
    entries = script;
    writer = std::make_unique<JournalWriter>(
        std::make_unique<FileJournalSink>(journal_path(config.dir, 0), /*truncate=*/true),
        fingerprint, /*base_event=*/0, /*first_seq=*/0, config.fsync, config.group_records);
    write_snapshot_atomic(engine, snap_path(config.dir, 0));
    ++result.snapshots_written;
  }

  ScriptedArrivalSource source(
      std::move(entries),
      [&writer, journaled_below](const JobSpec& spec, std::uint64_t stream_seq,
                                 std::uint64_t event_index) {
        // Replayed records are already on disk under these sequence
        // numbers; journaling them again would fork the sequence.
        if (stream_seq < journaled_below) return;
        writer->append_arrival(event_index, stream_seq, spec);
      });
  engine.set_arrival_source(&source);

  std::uint64_t last_snapshot = result.recovered ? result.resume_event : 0;
  for (;;) {
    if (config.halt_at_event && engine.events_processed() >= *config.halt_at_event) {
      // Simulated crash: no finalize, no shutdown marker, no flush beyond
      // what the unbuffered sink already wrote — byte-for-byte the state a
      // SIGKILL at this instant leaves on disk.
      result.halted = true;
      return result;
    }
    if (config.snapshot_stride > 0 &&
        engine.events_processed() >= last_snapshot + config.snapshot_stride) {
      const std::uint64_t event = engine.events_processed();
      // Crash-ordered rotation: (1) the next segment exists before
      // anything references it; (2) the barrier lands in the old segment
      // and is forced to disk; (3) the snapshot is renamed into place
      // last. A crash between any two steps leaves a recoverable state —
      // at worst stray files remove_stray_files() deletes.
      auto next_writer = std::make_unique<JournalWriter>(
          std::make_unique<FileJournalSink>(journal_path(config.dir, event), /*truncate=*/true),
          fingerprint, event, writer->next_seq() + 1, config.fsync, config.group_records);
      writer->append_barrier(event);
      writer->sync();
      write_snapshot_atomic(engine, snap_path(config.dir, event));
      writer = std::move(next_writer);
      last_snapshot = event;
      ++result.snapshots_written;
      if (config.snapshot_keep > 0) prune_snapshots(config.dir, config.snapshot_keep);
    }
    if (!streaming_step(engine, source)) break;
  }

  result.metrics = engine.finalize();
  writer->append_clean_shutdown(engine.events_processed());
  writer->sync();
  return result;
}

RunMetrics run_streaming(const RunRequest& request,
                         const std::vector<ScriptedArrivalSource::Entry>& script) {
  EngineBundle bundle = build_engine(request);
  ScriptedArrivalSource source(script);
  bundle.engine->set_arrival_source(&source);
  while (streaming_step(*bundle.engine, source)) {
  }
  return bundle.engine->finalize();
}

CrashCheckResult check_crash_equivalence(const RunRequest& request,
                                         const std::vector<ScriptedArrivalSource::Entry>& script,
                                         std::uint64_t crash_event,
                                         const DurableConfig& config) {
  CrashCheckResult result;
  result.reference = run_streaming(request, script);
  result.total_events = result.reference.events_processed;
  result.crash_event = crash_event % std::max<std::uint64_t>(1, result.total_events);

  // The check owns its scratch directory end to end.
  fs::remove_all(config.dir);

  DurableConfig crashed = config;
  crashed.halt_at_event = result.crash_event;
  const DurableResult dead = run_durable(request, script, crashed);
  MLFS_EXPECT(dead.halted);

  DurableConfig resumed = config;
  resumed.halt_at_event.reset();
  const DurableResult alive = run_durable(request, script, resumed);
  MLFS_EXPECT(alive.recovered);
  result.recovered = alive.metrics;
  result.torn_tail_dropped = alive.torn_tail_dropped;

  result.equivalent =
      deterministic_equal(result.reference, result.recovered) &&
      result.reference.event_stream_hash == result.recovered.event_stream_hash;
  if (!result.equivalent) {
    std::ostringstream detail;
    detail << "recovered run diverged from never-crashed run at crash_event="
           << result.crash_event << "/" << result.total_events << " (resumed from snapshot @"
           << alive.resume_event << ", " << alive.records_replayed
           << " journal records replayed): hash " << result.reference.event_stream_hash
           << " vs " << result.recovered.event_stream_hash << ", events "
           << result.reference.events_processed << " vs " << result.recovered.events_processed
           << "; reference [" << result.reference.summary() << "] recovered ["
           << result.recovered.summary() << "]";
    result.detail = detail.str();
  }
  fs::remove_all(config.dir);
  return result;
}

}  // namespace mlfs::exp
