#include "exp/restore_check.hpp"

#include <algorithm>
#include <sstream>

#include "common/expect.hpp"

namespace mlfs::exp {

RestoreCheckResult check_restore_equivalence(const RunRequest& request,
                                             std::uint64_t snapshot_event) {
  RestoreCheckResult result;

  // 1. Reference: the uninterrupted run.
  {
    EngineBundle reference = build_engine(request);
    result.reference = reference.engine->run();
  }
  result.total_events = result.reference.events_processed;
  result.snapshot_event =
      snapshot_event % std::max<std::uint64_t>(1, result.total_events);

  // 2. Donor: step to the cut point and snapshot mid-flight.
  std::stringstream snapshot(std::ios::in | std::ios::out | std::ios::binary);
  {
    EngineBundle donor = build_engine(request);
    while (donor.engine->events_processed() < result.snapshot_event &&
           donor.engine->step()) {
    }
    donor.engine->save_snapshot(snapshot);
  }

  // 3. Survivor: a fresh engine, restored from the snapshot bytes alone,
  // run to completion.
  {
    EngineBundle survivor = build_engine(request);
    survivor.engine->restore_snapshot(snapshot);
    while (survivor.engine->step()) {
    }
    result.restored = survivor.engine->finalize();
  }

  result.equivalent = deterministic_equal(result.reference, result.restored) &&
                      result.reference.event_stream_hash == result.restored.event_stream_hash;
  if (!result.equivalent) {
    std::ostringstream detail;
    detail << "restored run diverged from uninterrupted run at snapshot_event="
           << result.snapshot_event << "/" << result.total_events << ": hash "
           << result.reference.event_stream_hash << " vs " << result.restored.event_stream_hash
           << ", events " << result.reference.events_processed << " vs "
           << result.restored.events_processed << "; reference [" << result.reference.summary()
           << "] restored [" << result.restored.summary() << "]";
    result.detail = detail.str();
  }
  return result;
}

}  // namespace mlfs::exp
