#include "exp/fuzz.hpp"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <istream>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "exp/durable.hpp"
#include "exp/registry.hpp"
#include "exp/restore_check.hpp"
#include "sim/audit.hpp"

namespace mlfs::exp {

namespace {

/// Keeps the GPU request satisfiable after topology shrinks: a request
/// larger than the fleet could never gang-place and the case would only
/// measure censoring.
void clamp_gpu_request(FuzzCase& c) {
  const int total = c.total_gpus > 0 ? static_cast<int>(c.total_gpus)
                                     : static_cast<int>(c.servers) * c.gpus_per_server;
  c.max_gpu_request = std::max(1, std::min(c.max_gpu_request, total));
}

/// Scratch journal directory for one crash_check execution. Cases run
/// concurrently (and shrink candidates reuse the case index), so uniqueness
/// comes from pid + a process-wide counter, not from the case identity; the
/// check's outcome never depends on the directory name.
std::string unique_crash_dir() {
  static std::atomic<std::uint64_t> counter{0};
  return (std::filesystem::temp_directory_path() /
          ("mlfs_fuzz_crash_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1))))
      .string();
}

}  // namespace

FuzzCase generate_case(std::uint64_t master_seed, std::uint64_t index,
                       const std::vector<std::string>& schedulers) {
  MLFS_EXPECT(!schedulers.empty());
  Rng rng(master_seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  FuzzCase c;
  c.master_seed = master_seed;
  c.index = index;
  c.scheduler = schedulers[static_cast<std::size_t>(index) % schedulers.size()];
  c.trace_seed = rng.next_u64();
  c.engine_seed = rng.next_u64();

  c.servers = static_cast<std::size_t>(rng.uniform_int(1, 10));
  c.gpus_per_server = static_cast<int>(rng.uniform_int(1, 8));
  if (rng.bernoulli(0.4)) c.servers_per_rack = static_cast<int>(rng.uniform_int(2, 4));
  if (rng.bernoulli(0.3)) c.slow_fraction = rng.uniform(0.1, 0.6);

  c.num_jobs = static_cast<std::size_t>(rng.uniform_int(4, 48));
  c.duration_hours = rng.uniform(0.5, 8.0);
  // Mostly generous horizons; sometimes tight, to exercise censoring.
  c.max_sim_hours = rng.bernoulli(0.15) ? rng.uniform(2.0, 12.0) : rng.uniform(24.0, 24.0 * 7);
  const int total_gpus = static_cast<int>(c.servers) * c.gpus_per_server;
  c.max_gpu_request = std::max(1, std::min(16, total_gpus / 2));

  if (rng.bernoulli(0.3)) {
    c.straggler_probability = rng.uniform(0.005, 0.05);
    c.straggler_replicas = static_cast<int>(rng.uniform_int(0, 2));
  }
  if (rng.bernoulli(0.5)) {
    c.server_mtbf_hours = rng.uniform(6.0, 72.0);
    c.server_mttr_hours = rng.uniform(0.1, 1.0);
  }
  if (rng.bernoulli(0.3)) c.task_kill_probability = rng.uniform(5e-5, 5e-4);
  if (c.servers_per_rack > 0 && rng.bernoulli(0.25)) {
    c.rack_mtbf_hours = rng.uniform(24.0, 200.0);
    c.rack_mttr_hours = rng.uniform(0.05, 0.5);
  }
  c.checkpoint_interval = static_cast<int>(rng.uniform_int(1, 8));

  c.incremental_load_index = !rng.bernoulli(0.15);
  c.legacy_hot_path = rng.bernoulli(0.15);
  // Sometimes let the RL-backed schedulers actually switch to the policy
  // on a small case (the default warm-up never triggers at fuzz sizes).
  if (rng.bernoulli(0.3)) {
    c.rl_warmup_samples = static_cast<std::size_t>(rng.uniform_int(50, 400));
  }
  // Recovery policies: drawn after the older dimensions so cases from older
  // sweeps keep their prefix of draws (and so legacy seeds stay replayable
  // up to this block).
  if (rng.bernoulli(0.35)) {
    c.recovery = true;
    c.quarantine = rng.bernoulli(0.7);
    if (rng.bernoulli(0.5)) c.retry_budget = static_cast<int>(rng.uniform_int(1, 6));
    c.adaptive_checkpoint = rng.bernoulli(0.5);
    c.spread_placement = rng.bernoulli(0.5);
    if (rng.bernoulli(0.4)) c.flaky_fraction = rng.uniform(0.1, 0.5);
  }
  // Snapshot/restore: drawn after the blocks above (same prefix rule).
  if (rng.bernoulli(0.25)) {
    c.snapshot_check = true;
    c.snapshot_event = rng.next_u64();
  }
  // Placement-index dimensions: newest draws, appended last (prefix rule).
  c.placement_bucket_index = !rng.bernoulli(0.2);
  if (rng.bernoulli(0.4)) {
    c.placement_index_buckets = static_cast<int>(rng.uniform_int(1, 64));
  }
  if (rng.bernoulli(0.3)) {
    c.comm_memo_slots = static_cast<std::size_t>(rng.uniform_int(1, 16));
  }
  if (rng.bernoulli(0.25)) {
    // Heterogeneous fleet: at least 1 GPU per server, at most the uniform
    // total, so the draw only redistributes.
    c.total_gpus = static_cast<std::size_t>(rng.uniform_int(
        static_cast<int>(c.servers), static_cast<int>(c.servers) * c.gpus_per_server));
    clamp_gpu_request(c);
  }
  if (c.placement_bucket_index && !c.snapshot_check && rng.bernoulli(0.3)) {
    c.index_equivalence_check = true;
  }
  // Prediction-service dimensions: newest draws, appended last (prefix
  // rule). The equivalence rerun is skipped alongside snapshot_check (that
  // case already runs three engines) and alongside index_equivalence_check
  // (one flag-flip rerun per case keeps the sweep's cost linear).
  c.predict_enabled = !rng.bernoulli(0.2);
  if (c.predict_enabled && rng.bernoulli(0.2)) c.coarsen_curve = true;
  if (c.predict_enabled && !c.snapshot_check && !c.index_equivalence_check &&
      rng.bernoulli(0.3)) {
    c.service_equivalence_check = true;
  }
  // Link-contention dimensions: newest draws, appended last (prefix rule).
  if (rng.bernoulli(0.35)) {
    c.link_contention = true;
    c.duty_cycles = rng.bernoulli(0.5);
    if (rng.bernoulli(0.5)) c.nic_capacity_mbps = rng.uniform(50.0, 2000.0);
    if (rng.bernoulli(0.5)) c.rack_uplink_capacity_mbps = rng.uniform(25.0, 1000.0);
  }
  // Crash-recovery dimension: newest draws, appended last (prefix rule).
  // Skipped alongside the other multi-engine reruns so the sweep's cost
  // stays linear in the case count.
  if (!c.snapshot_check && !c.index_equivalence_check && !c.service_equivalence_check &&
      rng.bernoulli(0.15)) {
    c.crash_check = true;
    c.crash_event = rng.next_u64();
    c.stream_jobs = static_cast<std::size_t>(rng.uniform_int(0, 3));
  }
  return c;
}

RunRequest to_request(const FuzzCase& c) {
  RunRequest r;
  r.label = "fuzz-" + std::to_string(c.master_seed) + "-" + std::to_string(c.index);
  r.cluster.server_count = c.servers;
  r.cluster.gpus_per_server = c.gpus_per_server;
  r.cluster.servers_per_rack = c.servers_per_rack;
  r.cluster.slow_server_fraction = c.slow_fraction;
  r.cluster.total_gpus = c.total_gpus;
  r.cluster.incremental_load_index = c.incremental_load_index;
  r.cluster.placement_bucket_index = c.placement_bucket_index;
  r.cluster.placement_index_buckets = c.placement_index_buckets;
  r.cluster.debug_slot_leak = c.inject_slot_leak;
  r.cluster.link_contention = c.link_contention;
  r.cluster.nic_capacity_mbps = c.nic_capacity_mbps;
  r.cluster.rack_uplink_capacity_mbps = c.rack_uplink_capacity_mbps;
  r.cluster.duty_cycles = c.duty_cycles;
  r.engine.seed = c.engine_seed;
  r.engine.max_sim_time = hours(c.max_sim_hours);
  r.engine.straggler_probability = c.straggler_probability;
  r.engine.straggler_replicas = c.straggler_replicas;
  r.engine.fault.server_mtbf_hours = c.server_mtbf_hours;
  r.engine.fault.server_mttr_hours = c.server_mttr_hours;
  r.engine.fault.task_kill_probability = c.task_kill_probability;
  r.engine.fault.rack_mtbf_hours = c.rack_mtbf_hours;
  r.engine.fault.rack_mttr_hours = c.rack_mttr_hours;
  r.engine.fault.checkpoint_interval_iterations = c.checkpoint_interval;
  r.engine.fault.flaky_server_fraction = c.flaky_fraction;
  r.engine.recovery.enabled = c.recovery;
  r.engine.recovery.quarantine_enabled = c.quarantine;
  r.engine.recovery.retry_budget = c.retry_budget;
  r.engine.recovery.adaptive_checkpoint = c.adaptive_checkpoint;
  r.engine.recovery.spread_placement = c.spread_placement;
  r.engine.predict.enabled = c.predict_enabled;
  r.engine.predict.coarsen = c.coarsen_curve;
  r.engine.audit.enabled = true;
  r.engine.audit.stride = c.audit_stride;
  r.trace.num_jobs = c.num_jobs;
  r.trace.duration_hours = c.duration_hours;
  r.trace.seed = c.trace_seed;
  r.trace.max_gpu_request = c.max_gpu_request;
  r.scheduler = c.scheduler;
  r.mlfs_config.legacy_hot_path = c.legacy_hot_path;
  r.mlfs_config.placement.comm_memo_slots = c.comm_memo_slots;
  r.mlfs_config.rl.warmup_samples = c.rl_warmup_samples;
  return r;
}

std::string describe(const FuzzCase& c) {
  std::ostringstream out;
  out << "case " << c.master_seed << "/" << c.index << ": " << c.scheduler << ", "
      << c.num_jobs << " jobs over " << c.duration_hours << "h, " << c.servers << "x"
      << c.gpus_per_server << " GPUs";
  if (c.servers_per_rack > 0) out << ", " << c.servers_per_rack << "/rack";
  if (c.slow_fraction > 0.0) out << ", slow=" << c.slow_fraction;
  if (c.server_mtbf_hours > 0.0) out << ", crash-mtbf=" << c.server_mtbf_hours << "h";
  if (c.task_kill_probability > 0.0) out << ", kills=" << c.task_kill_probability;
  if (c.rack_mtbf_hours > 0.0) out << ", rack-mtbf=" << c.rack_mtbf_hours << "h";
  if (c.straggler_probability > 0.0) out << ", stragglers=" << c.straggler_probability;
  if (c.flaky_fraction > 0.0) out << ", flaky=" << c.flaky_fraction;
  if (c.recovery) {
    out << ", recovery";
    if (!c.quarantine) out << "(no-quarantine)";
    if (c.retry_budget > 0) out << ", retries=" << c.retry_budget;
    if (c.adaptive_checkpoint) out << ", adaptive-ckpt";
    if (c.spread_placement) out << ", spread";
  }
  if (c.legacy_hot_path) out << ", legacy-hotpath";
  if (!c.incremental_load_index) out << ", scan-index";
  if (!c.placement_bucket_index) out << ", no-bucket-index";
  if (c.placement_index_buckets != 512) out << ", buckets=" << c.placement_index_buckets;
  if (c.comm_memo_slots != 4096) out << ", memo-slots=" << c.comm_memo_slots;
  if (c.total_gpus > 0) out << ", total-gpus=" << c.total_gpus;
  if (c.index_equivalence_check) out << ", index-equivalence";
  if (!c.predict_enabled) out << ", legacy-curve-fit";
  if (c.coarsen_curve) out << ", coarsen-curve";
  if (c.service_equivalence_check) out << ", service-equivalence";
  if (c.link_contention) {
    out << ", link-contention";
    if (c.duty_cycles) out << "+duty";
    if (c.nic_capacity_mbps != 1000.0) out << ", nic=" << c.nic_capacity_mbps;
    if (c.rack_uplink_capacity_mbps != 600.0) out << ", uplink=" << c.rack_uplink_capacity_mbps;
  }
  if (c.snapshot_check) out << ", snapshot@" << c.snapshot_event;
  if (c.crash_check) {
    out << ", crash@" << c.crash_event;
    if (c.stream_jobs > 0) out << "+" << c.stream_jobs << "streamed";
  }
  if (c.inject_slot_leak) out << ", SLOT-LEAK";
  return out.str();
}

std::string serialize(const FuzzCase& c) {
  std::ostringstream out;
  out.precision(17);
  out << "master_seed=" << c.master_seed << "\n"
      << "index=" << c.index << "\n"
      << "trace_seed=" << c.trace_seed << "\n"
      << "engine_seed=" << c.engine_seed << "\n"
      << "scheduler=" << c.scheduler << "\n"
      << "servers=" << c.servers << "\n"
      << "gpus_per_server=" << c.gpus_per_server << "\n"
      << "servers_per_rack=" << c.servers_per_rack << "\n"
      << "slow_fraction=" << c.slow_fraction << "\n"
      << "num_jobs=" << c.num_jobs << "\n"
      << "duration_hours=" << c.duration_hours << "\n"
      << "max_sim_hours=" << c.max_sim_hours << "\n"
      << "max_gpu_request=" << c.max_gpu_request << "\n"
      << "straggler_probability=" << c.straggler_probability << "\n"
      << "straggler_replicas=" << c.straggler_replicas << "\n"
      << "server_mtbf_hours=" << c.server_mtbf_hours << "\n"
      << "server_mttr_hours=" << c.server_mttr_hours << "\n"
      << "task_kill_probability=" << c.task_kill_probability << "\n"
      << "rack_mtbf_hours=" << c.rack_mtbf_hours << "\n"
      << "rack_mttr_hours=" << c.rack_mttr_hours << "\n"
      << "checkpoint_interval=" << c.checkpoint_interval << "\n"
      << "flaky_fraction=" << c.flaky_fraction << "\n"
      << "recovery=" << (c.recovery ? 1 : 0) << "\n"
      << "quarantine=" << (c.quarantine ? 1 : 0) << "\n"
      << "retry_budget=" << c.retry_budget << "\n"
      << "adaptive_checkpoint=" << (c.adaptive_checkpoint ? 1 : 0) << "\n"
      << "spread_placement=" << (c.spread_placement ? 1 : 0) << "\n"
      << "incremental_load_index=" << (c.incremental_load_index ? 1 : 0) << "\n"
      << "legacy_hot_path=" << (c.legacy_hot_path ? 1 : 0) << "\n"
      << "rl_warmup_samples=" << c.rl_warmup_samples << "\n"
      << "audit_stride=" << c.audit_stride << "\n"
      << "snapshot_check=" << (c.snapshot_check ? 1 : 0) << "\n"
      << "snapshot_event=" << c.snapshot_event << "\n"
      << "placement_bucket_index=" << (c.placement_bucket_index ? 1 : 0) << "\n"
      << "placement_index_buckets=" << c.placement_index_buckets << "\n"
      << "comm_memo_slots=" << c.comm_memo_slots << "\n"
      << "total_gpus=" << c.total_gpus << "\n"
      << "index_equivalence_check=" << (c.index_equivalence_check ? 1 : 0) << "\n"
      << "predict_enabled=" << (c.predict_enabled ? 1 : 0) << "\n"
      << "coarsen_curve=" << (c.coarsen_curve ? 1 : 0) << "\n"
      << "service_equivalence_check=" << (c.service_equivalence_check ? 1 : 0) << "\n"
      << "link_contention=" << (c.link_contention ? 1 : 0) << "\n"
      << "duty_cycles=" << (c.duty_cycles ? 1 : 0) << "\n"
      << "nic_capacity_mbps=" << c.nic_capacity_mbps << "\n"
      << "rack_uplink_capacity_mbps=" << c.rack_uplink_capacity_mbps << "\n"
      << "crash_check=" << (c.crash_check ? 1 : 0) << "\n"
      << "crash_event=" << c.crash_event << "\n"
      << "stream_jobs=" << c.stream_jobs << "\n"
      << "inject_slot_leak=" << (c.inject_slot_leak ? 1 : 0) << "\n";
  return out.str();
}

FuzzCase parse_fuzz_case(std::istream& in) {
  FuzzCase c;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw ContractViolation("fuzz case: malformed line (no '='): " + line);
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    const auto u64 = [&] { return std::stoull(value); };
    const auto num = [&] { return std::stod(value); };
    const auto flag = [&] { return value == "1" || value == "true"; };
    if (key == "master_seed") c.master_seed = u64();
    else if (key == "index") c.index = u64();
    else if (key == "trace_seed") c.trace_seed = u64();
    else if (key == "engine_seed") c.engine_seed = u64();
    else if (key == "scheduler") c.scheduler = value;
    else if (key == "servers") c.servers = static_cast<std::size_t>(u64());
    else if (key == "gpus_per_server") c.gpus_per_server = static_cast<int>(u64());
    else if (key == "servers_per_rack") c.servers_per_rack = static_cast<int>(u64());
    else if (key == "slow_fraction") c.slow_fraction = num();
    else if (key == "num_jobs") c.num_jobs = static_cast<std::size_t>(u64());
    else if (key == "duration_hours") c.duration_hours = num();
    else if (key == "max_sim_hours") c.max_sim_hours = num();
    else if (key == "max_gpu_request") c.max_gpu_request = static_cast<int>(u64());
    else if (key == "straggler_probability") c.straggler_probability = num();
    else if (key == "straggler_replicas") c.straggler_replicas = static_cast<int>(u64());
    else if (key == "server_mtbf_hours") c.server_mtbf_hours = num();
    else if (key == "server_mttr_hours") c.server_mttr_hours = num();
    else if (key == "task_kill_probability") c.task_kill_probability = num();
    else if (key == "rack_mtbf_hours") c.rack_mtbf_hours = num();
    else if (key == "rack_mttr_hours") c.rack_mttr_hours = num();
    else if (key == "checkpoint_interval") c.checkpoint_interval = static_cast<int>(u64());
    else if (key == "flaky_fraction") c.flaky_fraction = num();
    else if (key == "recovery") c.recovery = flag();
    else if (key == "quarantine") c.quarantine = flag();
    else if (key == "retry_budget") c.retry_budget = static_cast<int>(u64());
    else if (key == "adaptive_checkpoint") c.adaptive_checkpoint = flag();
    else if (key == "spread_placement") c.spread_placement = flag();
    else if (key == "incremental_load_index") c.incremental_load_index = flag();
    else if (key == "legacy_hot_path") c.legacy_hot_path = flag();
    else if (key == "rl_warmup_samples") c.rl_warmup_samples = static_cast<std::size_t>(u64());
    else if (key == "audit_stride") c.audit_stride = static_cast<int>(u64());
    else if (key == "snapshot_check") c.snapshot_check = flag();
    else if (key == "snapshot_event") c.snapshot_event = u64();
    else if (key == "placement_bucket_index") c.placement_bucket_index = flag();
    else if (key == "placement_index_buckets") c.placement_index_buckets = static_cast<int>(u64());
    else if (key == "comm_memo_slots") c.comm_memo_slots = static_cast<std::size_t>(u64());
    else if (key == "total_gpus") c.total_gpus = static_cast<std::size_t>(u64());
    else if (key == "index_equivalence_check") c.index_equivalence_check = flag();
    else if (key == "predict_enabled") c.predict_enabled = flag();
    else if (key == "coarsen_curve") c.coarsen_curve = flag();
    else if (key == "service_equivalence_check") c.service_equivalence_check = flag();
    else if (key == "link_contention") c.link_contention = flag();
    else if (key == "duty_cycles") c.duty_cycles = flag();
    else if (key == "nic_capacity_mbps") c.nic_capacity_mbps = num();
    else if (key == "rack_uplink_capacity_mbps") c.rack_uplink_capacity_mbps = num();
    else if (key == "crash_check") c.crash_check = flag();
    else if (key == "crash_event") c.crash_event = u64();
    else if (key == "stream_jobs") c.stream_jobs = static_cast<std::size_t>(u64());
    else if (key == "inject_slot_leak") c.inject_slot_leak = flag();
    else throw ContractViolation("fuzz case: unknown key: " + key);
  }
  return c;
}

std::optional<FuzzFailure> run_fuzz_case(const FuzzCase& c, bool check_determinism) {
  const RunRequest request = to_request(c);
  try {
    if (c.snapshot_check) {
      // The restore-equivalence check subsumes a plain audited run (its
      // reference leg) and a determinism check (reference vs restored are
      // two executions of the same request).
      const RestoreCheckResult check = check_restore_equivalence(request, c.snapshot_event);
      if (!check.equivalent) return FuzzFailure{c, "snapshot-restore", check.detail};
      return std::nullopt;
    }
    if (c.crash_check) {
      // Zero-loss crash recovery: crash a journaled durable run at the drawn
      // event index, recover via snapshot + journal replay, and demand
      // byte-identity with the never-crashed streamed reference (which is
      // itself a fully audited run — this leg subsumes the plain case).
      RunRequest streamed = request;
      const std::size_t stream_jobs =
          std::min(c.stream_jobs, c.num_jobs > 0 ? c.num_jobs - 1 : std::size_t{0});
      const auto script = split_streamed_tail(streamed, stream_jobs);
      DurableConfig config;
      config.dir = unique_crash_dir();
      config.snapshot_stride = 128;
      const CrashCheckResult check =
          check_crash_equivalence(streamed, script, c.crash_event, config);
      if (!check.equivalent) return FuzzFailure{c, "crash-zero-loss", check.detail};
      return std::nullopt;
    }
    const RunMetrics first = execute_run(request);
    if (c.index_equivalence_check && c.incremental_load_index && c.placement_bucket_index) {
      // Index-vs-scan equivalence: the bucketed funnel must make the exact
      // decisions of the linear one (same event stream) and account for the
      // same linear-candidate population.
      RunRequest scan = request;
      scan.cluster.placement_bucket_index = false;
      const RunMetrics linear = execute_run(scan);
      std::ostringstream diff;
      if (first.event_stream_hash != linear.event_stream_hash) {
        diff << "event_stream_hash " << first.event_stream_hash << " vs "
             << linear.event_stream_hash << "; ";
      }
      if (first.makespan_hours != linear.makespan_hours) diff << "makespan diverged; ";
      if (first.migrations != linear.migrations) diff << "migrations diverged; ";
      if (first.preemptions != linear.preemptions) diff << "preemptions diverged; ";
      if (first.iterations_run != linear.iterations_run) diff << "iterations diverged; ";
      if (first.candidates_linear != linear.candidates_linear) {
        diff << "candidates_linear " << first.candidates_linear << " vs "
             << linear.candidates_linear << "; ";
      }
      if (!diff.str().empty()) {
        return FuzzFailure{c, "index-equivalence",
                           "bucket index vs linear scan: " + diff.str()};
      }
    }
    if (c.service_equivalence_check && c.predict_enabled) {
      // Service-vs-legacy equivalence: the memoized, warm-started service
      // must make byte-identical decisions to the stateless cold-fit path
      // (chain-canonical semantics; see predict/service.hpp).
      RunRequest legacy = request;
      legacy.engine.predict.enabled = false;
      const RunMetrics cold = execute_run(legacy);
      std::ostringstream diff;
      if (first.event_stream_hash != cold.event_stream_hash) {
        diff << "event_stream_hash " << first.event_stream_hash << " vs "
             << cold.event_stream_hash << "; ";
      }
      if (first.makespan_hours != cold.makespan_hours) diff << "makespan diverged; ";
      if (first.migrations != cold.migrations) diff << "migrations diverged; ";
      if (first.preemptions != cold.preemptions) diff << "preemptions diverged; ";
      if (first.iterations_run != cold.iterations_run) diff << "iterations diverged; ";
      if (first.fits_cold + first.fits_warm > cold.fits_cold + cold.fits_warm) {
        diff << "service ran more fits (" << first.fits_cold + first.fits_warm << ") than "
             << "the legacy path (" << cold.fits_cold + cold.fits_warm << "); ";
      }
      if (!diff.str().empty()) {
        return FuzzFailure{c, "service-equivalence",
                           "prediction service vs legacy cold-fit: " + diff.str()};
      }
    }
    if (check_determinism) {
      const RunMetrics second = execute_run(request);
      if (!deterministic_equal(first, second)) {
        return FuzzFailure{c, "determinism",
                           "two runs of the same request produced different RunMetrics"};
      }
    }
  } catch (const AuditViolation& v) {
    return FuzzFailure{c, v.report().invariant, v.what()};
  } catch (const std::exception& e) {
    return FuzzFailure{c, "", e.what()};
  }
  return std::nullopt;
}

ShrinkResult shrink_case(const FuzzCase& original, const FuzzFailure& original_failure,
                         int max_rounds) {
  using Transform = void (*)(FuzzCase&);
  static constexpr Transform kTransforms[] = {
      [](FuzzCase& c) { c.num_jobs = std::max<std::size_t>(1, c.num_jobs / 2); },
      [](FuzzCase& c) { if (c.num_jobs > 1) --c.num_jobs; },
      [](FuzzCase& c) {
        c.servers = std::max<std::size_t>(1, c.servers / 2);
        clamp_gpu_request(c);
      },
      [](FuzzCase& c) {
        c.gpus_per_server = std::max(1, c.gpus_per_server / 2);
        clamp_gpu_request(c);
      },
      [](FuzzCase& c) { c.server_mtbf_hours = 0.0; },
      [](FuzzCase& c) { c.task_kill_probability = 0.0; },
      [](FuzzCase& c) {
        c.recovery = false;
        c.retry_budget = 0;
        c.adaptive_checkpoint = false;
        c.spread_placement = false;
      },
      [](FuzzCase& c) { c.quarantine = false; },
      [](FuzzCase& c) { c.retry_budget = 0; },
      [](FuzzCase& c) { c.adaptive_checkpoint = false; },
      [](FuzzCase& c) { c.spread_placement = false; },
      [](FuzzCase& c) { c.flaky_fraction = 0.0; },
      [](FuzzCase& c) { c.rack_mtbf_hours = 0.0; },
      [](FuzzCase& c) { c.servers_per_rack = 0; c.rack_mtbf_hours = 0.0; },
      [](FuzzCase& c) { c.straggler_probability = 0.0; c.straggler_replicas = 0; },
      [](FuzzCase& c) { c.slow_fraction = 0.0; },
      [](FuzzCase& c) { c.checkpoint_interval = 1; },
      [](FuzzCase& c) { c.duration_hours = std::max(0.05, c.duration_hours / 2.0); },
      [](FuzzCase& c) { c.max_sim_hours = std::max(1.0, c.max_sim_hours / 2.0); },
      [](FuzzCase& c) { c.legacy_hot_path = false; c.incremental_load_index = true; },
      // Placement-index dimensions shrink toward the uniform defaults; the
      // bucket flag itself stays (flipping it off would dissolve an
      // index-equivalence failure rather than minimize it).
      [](FuzzCase& c) { c.comm_memo_slots = 4096; },
      [](FuzzCase& c) { c.total_gpus = 0; clamp_gpu_request(c); },
      [](FuzzCase& c) { c.placement_index_buckets = std::max(1, c.placement_index_buckets / 2); },
      // Earlier snapshot cuts make a surviving "snapshot-restore" failure
      // easier to replay (fewer pre-snapshot events). The cut index, not
      // the flag, shrinks: dropping snapshot_check would change the failing
      // invariant, so that candidate is always rejected anyway.
      [](FuzzCase& c) { c.snapshot_event /= 2; },
      // Prediction-service dimensions shrink toward the defaults (service
      // on, no coarsening); a "service-equivalence" failure keeps its
      // rerun flag the same way index-equivalence keeps the bucket index.
      [](FuzzCase& c) { c.coarsen_curve = false; },
      [](FuzzCase& c) { c.predict_enabled = true; },
      // Link-contention dimensions shrink toward the defaults. Dropping
      // contention entirely is attempted too, but a "link-model" /
      // "link-share" failure rejects that candidate (the invariants only
      // run while contention is on), so it minimizes duty cycles and
      // capacity skews instead.
      [](FuzzCase& c) { c.duty_cycles = false; },
      [](FuzzCase& c) {
        c.nic_capacity_mbps = 1000.0;
        c.rack_uplink_capacity_mbps = 600.0;
      },
      [](FuzzCase& c) { c.link_contention = false; c.duty_cycles = false; },
      // Crash-recovery dimension: earlier crash points and fewer streamed
      // jobs make a surviving "crash-zero-loss" failure cheaper to replay.
      // The flag itself stays — dropping crash_check would change the
      // failing invariant, so that candidate is always rejected anyway.
      [](FuzzCase& c) { c.crash_event /= 2; },
      [](FuzzCase& c) { if (c.stream_jobs > 0) --c.stream_jobs; },
  };
  ShrinkResult result{original, original_failure, 0, 0};
  const std::string target = original_failure.invariant;
  const bool check_determinism = target == "determinism";
  for (int round = 0; round < max_rounds; ++round) {
    bool accepted_this_round = false;
    for (const Transform transform : kTransforms) {
      FuzzCase candidate = result.minimal;
      transform(candidate);
      if (serialize(candidate) == serialize(result.minimal)) continue;  // no-op transform
      ++result.attempts;
      const std::optional<FuzzFailure> failure = run_fuzz_case(candidate, check_determinism);
      // Accept only when the *same* invariant still fails — shrinking must
      // not wander onto an unrelated bug.
      if (failure && (target.empty() || failure->invariant == target)) {
        result.minimal = candidate;
        result.failure = *failure;
        ++result.accepted;
        accepted_this_round = true;
      }
    }
    if (!accepted_this_round) break;
  }
  return result;
}

FuzzSweepOutcome run_fuzz_sweep(const FuzzSweepOptions& options) {
  const std::vector<std::string> schedulers =
      options.schedulers.empty() ? registered_scheduler_names() : options.schedulers;
  for (const std::string& name : schedulers) {
    MLFS_EXPECT(is_registered_scheduler(name));
  }
  std::vector<FuzzCase> cases(options.runs);
  for (std::size_t i = 0; i < options.runs; ++i) {
    cases[i] = generate_case(options.seed, i, schedulers);
    cases[i].inject_slot_leak = options.inject_slot_leak;
  }

  // Cases run concurrently; results land by index, so the outcome (and the
  // shrink phase below) is independent of the thread count.
  std::vector<std::optional<FuzzFailure>> failures(options.runs);
  std::atomic<std::size_t> cursor{0};
  std::mutex progress_mutex;
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1);
      if (i >= options.runs) return;
      failures[i] = run_fuzz_case(cases[i], options.check_determinism);
      if (options.progress) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        options.progress(i, cases[i], failures[i].has_value());
      }
    }
  };
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned threads = std::max(
      1u, std::min(options.threads == 0 ? (hw == 0 ? 4u : hw) : options.threads,
                   static_cast<unsigned>(options.runs)));
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();

  FuzzSweepOutcome outcome;
  outcome.runs = options.runs;
  for (std::size_t i = 0; i < options.runs; ++i) {
    if (!failures[i]) continue;
    outcome.failures.push_back(shrink_case(cases[i], *failures[i], options.shrink_rounds));
    if (outcome.failures.size() >= options.max_failures) break;
  }
  return outcome;
}

}  // namespace mlfs::exp
