// Work-stealing thread-pool executor for independent simulation runs.
//
// The unit of work is coarse (one whole SimEngine run, milliseconds to
// minutes), so the pool keeps scheduling trivial and deterministic: tasks
// live in one shared sequence and every idle worker steals the next
// unclaimed index via an atomic cursor. Callers place results by task
// index, never by completion order, which is what makes batch output
// independent of the thread count (see exp::run_batch).
#pragma once

#include <cstddef>
#include <functional>

namespace mlfs::exp {

/// Resolves a requested thread count: 0 means std::thread::hardware_
/// concurrency() (minimum 1); anything else is taken as-is.
unsigned resolve_threads(unsigned requested);

class ParallelRunner {
 public:
  /// `threads` as in resolve_threads(). The pool is created per run() call;
  /// for whole-simulation tasks the spawn cost is noise.
  explicit ParallelRunner(unsigned threads = 0);

  unsigned thread_count() const { return threads_; }

  /// Executes fn(0), ..., fn(count - 1), each exactly once, distributed
  /// over the workers; blocks until all complete. With thread_count() == 1
  /// (or count < 2) everything runs inline on the calling thread in index
  /// order — byte-identical to a hand-written serial loop. If any task
  /// throws, remaining unclaimed tasks are abandoned and the first
  /// exception is rethrown here after all workers have stopped.
  void run(std::size_t count, const std::function<void(std::size_t)>& fn) const;

 private:
  unsigned threads_;
};

}  // namespace mlfs::exp
