#include "sched/slaq.hpp"

#include <algorithm>

#include "predict/service.hpp"
#include "sched/util.hpp"

namespace mlfs::sched {

double SlaqScheduler::quality_gain_rate(const Job& job, const PredictionService* prediction) {
  const int next = job.completed_iterations() + 1;
  if (next > job.spec().max_iterations) return 0.0;
  const double dl = prediction != nullptr
                        ? prediction->loss_at(job, next - 1) - prediction->loss_at(job, next)
                        : job.curve().loss_at(next - 1) - job.curve().loss_at(next);
  return dl / job.ideal_iteration_seconds();
}

void SlaqScheduler::schedule(SchedulerContext& ctx) {
  // SLAQ re-divides resources every epoch: if a waiting job would convert
  // resources into more loss reduction per second than a running job, the
  // lowest-gain running job is paused (its converged tail starves — the
  // JCT cost the paper attributes to SLAQ).
  auto queue = live_queue(ctx);
  const PredictionService* prediction = ctx.prediction;
  if (!queue.empty()) {
    const Job* best_waiting = nullptr;
    for (const TaskId tid : queue) {
      const Job& job = ctx.cluster.job(ctx.cluster.task(tid).job);
      if (!best_waiting ||
          quality_gain_rate(job, prediction) > quality_gain_rate(*best_waiting, prediction)) {
        best_waiting = &job;
      }
    }
    // SLAQ re-divides resources every epoch; in a gang-exclusive cluster
    // that means repeatedly swapping out the lowest-gain running jobs.
    // Converged jobs therefore crawl to completion — the JCT cost the
    // paper attributes to quality-driven scheduling.
    for (int swaps = 0; swaps < 4 && best_waiting != nullptr; ++swaps) {
      const Job* worst_running = nullptr;
      for (const Job& job : ctx.cluster.jobs()) {
        if (job.state() != JobState::Running) continue;
        if (!worst_running || quality_gain_rate(job, prediction) <
                                  quality_gain_rate(*worst_running, prediction)) {
          worst_running = &job;
        }
      }
      if (worst_running == nullptr ||
          quality_gain_rate(*worst_running, prediction) >=
              quality_gain_rate(*best_waiting, prediction)) {
        break;
      }
      preempt_job(ctx, *worst_running);
    }
    queue = live_queue(ctx);
  }
  std::stable_sort(queue.begin(), queue.end(), [&ctx, prediction](TaskId a, TaskId b) {
    const Job& ja = ctx.cluster.job(ctx.cluster.task(a).job);
    const Job& jb = ctx.cluster.job(ctx.cluster.task(b).job);
    return quality_gain_rate(ja, prediction) > quality_gain_rate(jb, prediction);
  });
  int failures = 0;
  for (const TaskId tid : queue) {
    if (failures >= kMaxConsecutiveGangFailures) break;
    if (ctx.cluster.task(tid).state != TaskState::Queued) continue;
    const int placed = place_job_gang(ctx, tid, least_loaded_placement);
    if (placed == 0) ++failures;
    if (placed > 0) failures = 0;
  }
}

}  // namespace mlfs::sched
