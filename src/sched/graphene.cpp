#include "sched/graphene.hpp"

#include <algorithm>

#include "sched/util.hpp"

namespace mlfs::sched {

double GrapheneScheduler::troublesome_score(const Cluster& cluster, const Task& task) {
  const Job& job = cluster.job(task.job);
  const auto descendants = job.dag().descendant_counts();
  const double dep_share = job.task_count() > 1
                               ? static_cast<double>(descendants[task.local_index]) /
                                     static_cast<double>(job.task_count() - 1)
                               : 0.0;
  // Demands are fractions in [0,1] per resource; magnitude/|R| in [0,1].
  const double packing_difficulty = demand_magnitude(task) / static_cast<double>(kNumResources);
  return dep_share + packing_difficulty;
}

void GrapheneScheduler::schedule(SchedulerContext& ctx) {
  auto queue = live_queue(ctx);
  // Job-level weighted score (shorter remaining work first, Graphene's
  // average-JCT objective) + task-level troublesome score.
  auto rank = [&ctx](TaskId tid) {
    const Task& task = ctx.cluster.task(tid);
    const Job& job = ctx.cluster.job(task.job);
    const double remaining =
        job.ideal_iteration_seconds() *
        std::max(1, job.spec().max_iterations - job.completed_iterations());
    const double srpt = 1.0 / (1.0 + remaining / 3600.0);
    return troublesome_score(ctx.cluster, task) + srpt;
  };
  std::stable_sort(queue.begin(), queue.end(),
                   [&rank](TaskId a, TaskId b) { return rank(a) > rank(b); });
  int failures = 0;
  for (const TaskId tid : queue) {
    if (failures >= kMaxConsecutiveGangFailures) break;
    if (ctx.cluster.task(tid).state != TaskState::Queued) continue;
    const int placed = place_job_gang(ctx, tid, best_fit_placement);
    if (placed == 0) ++failures;
    if (placed > 0) failures = 0;
  }
}

}  // namespace mlfs::sched
