#include "sched/cassini.hpp"

#include <array>
#include <cmath>
#include <optional>
#include <vector>

#include "sched/util.hpp"
#include "sim/link_model.hpp"

namespace mlfs::sched {

namespace {

/// Link-aware host chooser: lexicographically minimize (gang crosses into
/// a new rack, flows on the rack uplink, flows on the server NIC, load of
/// the receiving GPU). The first term consolidates gangs inside racks so
/// their all-reduce rings never touch an uplink; the next two steer the
/// flows a cross-rack gang must create onto the quietest links.
std::optional<Placement> contention_aware_choice(const SchedulerContext& c, const Task& task) {
  if (!c.cluster.config().link_contention) return least_loaded_placement(c, task);
  const LinkModel& links = c.cluster.link_model();
  const int spr = c.cluster.config().servers_per_rack;
  const std::size_t racks =
      spr > 0 ? (c.cluster.server_count() + static_cast<std::size_t>(spr) - 1) /
                    static_cast<std::size_t>(spr)
              : 1;
  std::vector<char> peer_rack(racks, 0);
  bool have_peers = false;
  for (const TaskId tid : c.cluster.job(task.job).tasks()) {
    const Task& peer = c.cluster.task(tid);
    if (!peer.placed()) continue;
    peer_rack[static_cast<std::size_t>(links.rack_of(peer.server))] = 1;
    have_peers = true;
  }
  std::optional<Placement> best;
  std::array<double, 4> best_key{};
  for (const Server& s : c.cluster.servers()) {
    const auto p = placement_on_server(c, task, s.id());
    if (!p) continue;
    const int rack = links.rack_of(s.id());
    const double uplink_flows =
        spr > 0 ? static_cast<double>(links.total_flows_on(links.uplink_link(rack))) : 0.0;
    const std::array<double, 4> key = {
        have_peers && peer_rack[static_cast<std::size_t>(rack)] == 0 ? 1.0 : 0.0,
        uplink_flows, static_cast<double>(links.total_flows_on(links.nic_link(s.id()))),
        s.gpu_load(p->gpu)};
    if (!best || key < best_key) {
      best = p;
      best_key = key;
    }
  }
  return best;
}

}  // namespace

void CassiniScheduler::schedule(SchedulerContext& ctx) {
  int failures = 0;
  for (const TaskId tid : live_queue(ctx)) {  // engine keeps arrival order (FIFO)
    if (failures >= kMaxConsecutiveGangFailures) break;
    if (ctx.cluster.task(tid).state != TaskState::Queued) continue;
    const int placed = place_job_gang(ctx, tid, contention_aware_choice);
    if (placed == 0) ++failures;
    if (placed > 0) failures = 0;
  }
  assign_phase_offsets(ctx);
}

void CassiniScheduler::assign_phase_offsets(SchedulerContext& ctx) {
  if (!ctx.cluster.config().link_contention) return;
  const LinkModel& links = ctx.cluster.link_model();
  // One offset per job per round: the first shared link a job is seen on
  // (uplinks before NICs — uplinks carry the expensive cross-rack flows)
  // claims it, packing the comm windows of that link's jobs back-to-back.
  // With duty cycles off every window spans the whole circle and nothing
  // is applied, so offsets (and phase_offset_hits) stay untouched.
  std::vector<char> assigned(ctx.cluster.job_count(), 0);
  const auto pack = [&](std::size_t link) {
    const auto& entries = links.link_entries(link);
    if (entries.size() < 2) return;
    double cursor = 0.0;
    for (const auto& e : entries) {  // sorted by job id -> deterministic
      const double d = links.job_duty_cycle(e.job);
      if (d >= 1.0) continue;  // always-on flows occupy the whole circle
      if (e.job < assigned.size() && assigned[e.job] != 0) {
        // Already phased via an earlier link: start the next window after
        // this job's actual window instead of re-phasing it.
        cursor = std::max(cursor, links.phase_offset(e.job) + d);
        continue;
      }
      if (e.job < assigned.size()) assigned[e.job] = 1;
      ctx.ops.set_phase_offset(e.job, cursor - std::floor(cursor));
      cursor += d;
    }
  };
  for (std::size_t link = links.server_count(); link < links.link_count(); ++link) pack(link);
  for (std::size_t link = 0; link < links.server_count(); ++link) pack(link);
}

}  // namespace mlfs::sched
