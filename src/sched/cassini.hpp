// CASSINI-style network-aware scheduler (NSDI'24 [cassini]; DESIGN.md
// §5e). Placement is FIFO gang placement like Gandiva's, but the host
// chooser minimizes projected link contention instead of raw load: gang
// members are steered into the racks already hosting their peers (fewer
// rack-uplink flows), then toward the NIC/uplink with the fewest
// registered flows. After placement it walks every shared link and packs
// the communication windows of the jobs on it back-to-back on the unit
// circle (CASSINI's affinity/circle construction), so anti-phased gangs
// stop contending — the engine counts each applied offset change as
// RunMetrics::phase_offset_hits.
//
// With link contention disabled the chooser degrades to plain least-loaded
// placement and no offsets are applied, so the scheduler stays meaningful
// (and deterministic) in every configuration.
#pragma once

#include "sim/scheduler.hpp"

namespace mlfs::sched {

class CassiniScheduler : public Scheduler {
 public:
  std::string name() const override { return "Cassini"; }
  void schedule(SchedulerContext& ctx) override;

 private:
  /// Packs comm windows of jobs sharing a link back-to-back (uplinks
  /// first — they carry the cross-rack flows — then NICs).
  void assign_phase_offsets(SchedulerContext& ctx);
};

}  // namespace mlfs::sched
