#include "sched/gandiva.hpp"

#include <algorithm>

#include "sched/util.hpp"

namespace mlfs::sched {

void GandivaScheduler::schedule(SchedulerContext& ctx) {
  // FIFO placement with affinity: try servers already hosting tasks of
  // jobs with the same GPU request first ("affinity jobs").
  // Affinity-aware chooser: servers already hosting tasks of jobs with the
  // same GPU request first, else least-loaded.
  auto affinity_choice = [](const SchedulerContext& c,
                            const Task& task) -> std::optional<Placement> {
    const int gpu_request = c.cluster.job(task.job).spec().gpu_request;
    for (const Server& s : c.cluster.servers()) {
      bool affinity = false;
      for (const TaskId other : s.tasks()) {
        const Task& o = c.cluster.task(other);
        if (c.cluster.job(o.job).spec().gpu_request == gpu_request) {
          affinity = true;
          break;
        }
      }
      if (!affinity) continue;
      if (auto p = placement_on_server(c, task, s.id())) return p;
    }
    return least_loaded_placement(c, task);
  };
  int failures = 0;
  for (const TaskId tid : live_queue(ctx)) {  // engine keeps arrival order (FIFO)
    if (failures >= kMaxConsecutiveGangFailures) break;
    if (ctx.cluster.task(tid).state != TaskState::Queued) continue;
    const int placed = place_job_gang(ctx, tid, affinity_choice);
    if (placed == 0) ++failures;
    if (placed > 0) failures = 0;
  }
  migrate_overloaded_gpus(ctx);
}

void GandivaScheduler::migrate_overloaded_gpus(SchedulerContext& ctx) {
  Cluster& cluster = ctx.cluster;
  for (const Server& s : cluster.servers()) {
    for (int g = 0; g < s.gpu_count(); ++g) {
      if (s.gpu_load(g) <= ctx.hr) continue;
      // Lowest-GPU-utilization task on the hot GPU.
      const auto& tasks = s.tasks_on_gpu(g);
      if (tasks.empty()) continue;
      TaskId victim = tasks.front();
      double lowest = cluster.task(victim).demand[Resource::Gpu];
      for (const TaskId tid : tasks) {
        const double u = cluster.task(tid).demand[Resource::Gpu];
        if (u < lowest) {
          lowest = u;
          victim = tid;
        }
      }
      // Globally least-loaded GPU that accepts it.
      std::optional<Placement> best;
      double best_load = 0.0;
      for (const Server& dst : cluster.servers()) {
        for (int dg = 0; dg < dst.gpu_count(); ++dg) {
          if (dst.id() == s.id() && dg == g) continue;
          const double load = dst.gpu_load(dg);
          if (!dst.fits_without_overload(cluster.task(victim), dg, ctx.hr)) continue;
          if (!best || load < best_load) {
            best = Placement{dst.id(), dg};
            best_load = load;
          }
        }
      }
      if (best) ctx.ops.migrate(victim, best->server, best->gpu);
    }
  }
}

}  // namespace mlfs::sched
