#include "sched/optimus.hpp"

#include <algorithm>

#include "predict/service.hpp"
#include "sched/util.hpp"

namespace mlfs::sched {

void OptimusScheduler::schedule(SchedulerContext& ctx) {
  auto queue = live_queue(ctx);
  // Shortest predicted remaining time first; jobs with run history get the
  // tighter 89%-fidelity estimate, new jobs the 70% one (§3.1 / [42]).
  auto remaining = [&ctx](TaskId tid) {
    const Job& job = ctx.cluster.job(ctx.cluster.task(tid).job);
    if (ctx.prediction != nullptr) {
      return ctx.prediction->predict_remaining_seconds(job);
    }
    const int left = std::max(0, job.target_iterations() - job.completed_iterations());
    return job.ideal_iteration_seconds() * left;
  };
  std::stable_sort(queue.begin(), queue.end(), [&remaining](TaskId a, TaskId b) {
    return remaining(a) < remaining(b);
  });
  int failures = 0;
  for (const TaskId tid : queue) {
    if (failures >= kMaxConsecutiveGangFailures) break;
    if (ctx.cluster.task(tid).state != TaskState::Queued) continue;
    const int placed = place_job_gang(ctx, tid, least_loaded_placement);
    if (placed == 0) ++failures;
    if (placed > 0) failures = 0;
  }
}

}  // namespace mlfs::sched
