#include "sched/rl_baseline.hpp"

#include <algorithm>

#include "common/binio.hpp"
#include "sched/util.hpp"

namespace mlfs::sched {

namespace {
constexpr std::size_t kTaskFeatures = 8;
constexpr std::size_t kPerCandidateFeatures = 5;
}  // namespace

std::size_t RlBaselineScheduler::state_dim(std::size_t candidate_count) {
  return kTaskFeatures + candidate_count * kPerCandidateFeatures;
}

RlBaselineScheduler::RlBaselineScheduler(const RlBaselineConfig& config) : config_(config) {
  rl::ReinforceConfig rc;
  rc.state_dim = state_dim(config_.candidate_count);
  rc.action_dim = config_.candidate_count;
  rc.hidden = config_.hidden;
  rc.eta = config_.eta;
  rc.seed = config_.seed;
  agent_ = std::make_unique<rl::ReinforceAgent>(rc);
}

std::vector<double> RlBaselineScheduler::featurize(const SchedulerContext& ctx, const Task& task,
                                                   const std::vector<ServerId>& candidates) const {
  const Job& job = ctx.cluster.job(task.job);
  std::vector<double> f;
  f.reserve(state_dim(config_.candidate_count));
  // Computation features of the task/job (normalized to ~[0,1]).
  f.push_back(task.demand[Resource::Gpu]);
  f.push_back(task.demand[Resource::Cpu]);
  f.push_back(task.demand[Resource::Mem]);
  f.push_back(task.demand[Resource::Net]);
  f.push_back(static_cast<double>(job.spec().gpu_request) / 32.0);
  f.push_back(static_cast<double>(job.completed_iterations()) /
              static_cast<double>(job.spec().max_iterations));
  f.push_back(std::min(1.0, (ctx.now - task.queued_since) / 3600.0));
  f.push_back(std::min(1.0, job.estimated_execution_seconds() / hours(24.0)));
  // Per-candidate server features.
  for (std::size_t i = 0; i < config_.candidate_count; ++i) {
    if (i < candidates.size()) {
      const Server& s = ctx.cluster.server(candidates[i]);
      const ResourceVector u = s.utilization();
      f.push_back(u[Resource::Gpu]);
      f.push_back(u[Resource::Cpu]);
      f.push_back(u[Resource::Mem]);
      f.push_back(u[Resource::Net]);
      f.push_back(s.gpu_load(s.least_loaded_gpu()));
    } else {
      for (std::size_t k = 0; k < kPerCandidateFeatures; ++k) f.push_back(1.0);  // "full"
    }
  }
  return f;
}

double RlBaselineScheduler::round_reward(const SchedulerContext& ctx) const {
  // DeepRM objective: -sum over in-system jobs of 1/T_j.
  double reward = 0.0;
  for (const Job& job : ctx.cluster.jobs()) {
    if (job.done() || job.spec().arrival > ctx.now) continue;
    reward -= 1.0 / std::max(60.0, job.estimated_execution_seconds());
  }
  return reward * 60.0;  // scale to O(1) magnitudes
}

void RlBaselineScheduler::schedule(SchedulerContext& ctx) {
  // Assign the (delayed) reward of the previous round to its decisions.
  if (decisions_this_round_ > 0) {
    const double r = round_reward(ctx);
    const std::size_t start = episode_.size() - decisions_this_round_;
    for (std::size_t i = start; i < episode_.size(); ++i) episode_[i].reward = r;
  }
  decisions_this_round_ = 0;

  if (++rounds_since_update_ >= config_.update_every_rounds && !episode_.empty()) {
    pending_episodes_.push_back(std::move(episode_));
    episode_ = {};
    agent_->update(pending_episodes_);
    pending_episodes_.clear();
    rounds_since_update_ = 0;
  }

  // Job-coherent order: placing one task of a job immediately handles its
  // queued siblings (gang execution; see sched/util.hpp).
  std::vector<TaskId> order;
  for (const TaskId tid : live_queue(ctx)) {
    const Job& job = ctx.cluster.job(ctx.cluster.task(tid).job);
    for (const TaskId sib : job.tasks()) {
      if (ctx.cluster.task(sib).state == TaskState::Queued &&
          std::find(order.begin(), order.end(), sib) == order.end()) {
        order.push_back(sib);
      }
    }
  }
  int failures = 0;
  for (const TaskId tid : order) {
    if (failures >= kMaxConsecutiveGangFailures) break;
    const Task& task = ctx.cluster.task(tid);
    if (task.state != TaskState::Queued) continue;
    // K least-loaded feasible candidate servers.
    std::vector<std::pair<double, ServerId>> feasible;
    for (const Server& s : ctx.cluster.servers()) {
      const int gpu = s.least_loaded_gpu();
      if (!s.fits_without_overload(task, gpu, ctx.hr)) continue;
      feasible.emplace_back(s.utilization().norm(), s.id());
    }
    if (feasible.empty()) {
      ++failures;
      continue;
    }
    std::sort(feasible.begin(), feasible.end());
    std::vector<ServerId> candidates;
    for (std::size_t i = 0; i < std::min(config_.candidate_count, feasible.size()); ++i) {
      candidates.push_back(feasible[i].second);
    }

    const auto state = featurize(ctx, task, candidates);
    std::vector<bool> mask_storage(config_.candidate_count, false);
    for (std::size_t i = 0; i < candidates.size(); ++i) mask_storage[i] = true;
    // std::vector<bool> has no data(); build a plain bool buffer.
    std::vector<char> mask_bytes(mask_storage.begin(), mask_storage.end());
    const int action = agent_->act(
        state, std::span<const bool>(reinterpret_cast<const bool*>(mask_bytes.data()),
                                     mask_bytes.size()));
    const ServerId chosen = candidates[static_cast<std::size_t>(action)];
    const int gpu = ctx.cluster.server(chosen).least_loaded_gpu();
    if (ctx.ops.place(tid, chosen, gpu)) {
      episode_.push_back({state, action, 0.0});
      ++decisions_this_round_;
      failures = 0;
    }
  }
}

void RlBaselineScheduler::save_state(std::ostream& os) const {
  {
    io::BinWriter w(os);
    w.u64(decisions_this_round_);
    w.u64(rounds_since_update_);
    rl::save_episode(w, episode_);
    w.u64(pending_episodes_.size());
    for (const rl::Episode& e : pending_episodes_) rl::save_episode(w, e);
  }
  agent_->save_state(os);
}

void RlBaselineScheduler::restore_state(std::istream& is) {
  {
    io::BinReader r(is);
    decisions_this_round_ = static_cast<std::size_t>(r.u64());
    rounds_since_update_ = static_cast<std::size_t>(r.u64());
    episode_ = rl::load_episode(r);
    pending_episodes_.clear();
    const std::uint64_t count = r.u64();
    pending_episodes_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) pending_episodes_.push_back(rl::load_episode(r));
  }
  agent_->restore_state(is);
}

}  // namespace mlfs::sched
