// Gandiva [55] baseline: FIFO queueing with affinity packing (tasks of
// jobs with the same GPU request are steered to the same servers) and
// introspective GPU-overload migration: when a GPU's utilization exceeds
// the threshold, the task with the lowest GPU utilization on it moves to
// the globally least-loaded GPU. Gandiva handles only GPU overload (the
// paper contrasts this with MLFS's multi-resource handling) and does not
// try to reduce bandwidth cost.
#pragma once

#include "sim/scheduler.hpp"

namespace mlfs::sched {

class GandivaScheduler : public Scheduler {
 public:
  std::string name() const override { return "Gandiva"; }
  void schedule(SchedulerContext& ctx) override;

 private:
  void migrate_overloaded_gpus(SchedulerContext& ctx);
};

}  // namespace mlfs::sched
