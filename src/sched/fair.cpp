#include "sched/fair.hpp"

#include <algorithm>

#include "sched/util.hpp"

namespace mlfs::sched {

void FairScheduler::schedule(SchedulerContext& ctx) {
  auto queue = live_queue(ctx);
  // Allocation share per job: placed tasks / total tasks. Jobs with the
  // lowest share are the most underserved and get resources first.
  auto share = [&ctx](TaskId tid) {
    const Task& t = ctx.cluster.task(tid);
    const Job& job = ctx.cluster.job(t.job);
    std::size_t placed = 0;
    for (const TaskId id : job.tasks()) {
      if (ctx.cluster.task(id).placed()) ++placed;
    }
    return static_cast<double>(placed) / static_cast<double>(job.task_count());
  };
  std::stable_sort(queue.begin(), queue.end(), [&](TaskId a, TaskId b) {
    return share(a) < share(b);
  });
  int failures = 0;
  for (const TaskId tid : queue) {
    if (failures >= kMaxConsecutiveGangFailures) break;
    if (ctx.cluster.task(tid).state != TaskState::Queued) continue;
    const int placed = place_job_gang(ctx, tid, least_loaded_placement);
    if (placed == 0) ++failures;
    if (placed > 0) failures = 0;
  }
}

}  // namespace mlfs::sched
