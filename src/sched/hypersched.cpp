#include "sched/hypersched.hpp"

#include <algorithm>
#include <cmath>

#include "predict/service.hpp"
#include "sched/util.hpp"

namespace mlfs::sched {

HyperSchedScheduler::HyperSchedScheduler(double pause_gain_threshold)
    : pause_gain_threshold_(pause_gain_threshold) {}

double HyperSchedScheduler::achievable_gain(const Job& job, SimTime now,
                                            const PredictionService* prediction) {
  const double time_left = job.deadline() - now;
  if (time_left <= 0.0) return 0.0;
  const int reachable = std::min(
      job.spec().max_iterations,
      job.completed_iterations() +
          static_cast<int>(time_left / job.ideal_iteration_seconds()));
  const double at_reachable = prediction != nullptr
                                  ? prediction->accuracy_at(job, reachable)
                                  : job.curve().accuracy_at(reachable);
  return std::max(0.0, at_reachable - job.current_accuracy());
}

void HyperSchedScheduler::schedule(SchedulerContext& ctx) {
  auto queue = live_queue(ctx);
  const PredictionService* prediction = ctx.prediction;
  // Pause (preempt) one saturated running job per round when jobs that
  // can still gain accuracy before their deadlines are waiting — the
  // paper's "pauses jobs that do not increase accuracy significantly and
  // tends to assign more resources to the job with more accuracy
  // improvement before its deadline".
  if (!queue.empty()) {
    auto marginal = [prediction](const Job& job) {
      const int i = job.completed_iterations();
      if (prediction != nullptr) {
        return prediction->accuracy_at(job, i + 1) - prediction->accuracy_at(job, i);
      }
      return job.curve().accuracy_at(i + 1) - job.curve().accuracy_at(i);
    };
    bool gainful_waiting = false;
    for (const TaskId tid : queue) {
      if (achievable_gain(ctx.cluster.job(ctx.cluster.task(tid).job), ctx.now, prediction) >
          0.0) {
        gainful_waiting = true;
        break;
      }
    }
    if (gainful_waiting) {
      for (const Job& job : ctx.cluster.jobs()) {
        if (job.state() != JobState::Running) continue;
        if (job.completed_iterations() > 0 && marginal(job) < pause_gain_threshold_ &&
            job.current_accuracy() >= job.spec().accuracy_requirement &&
            ctx.now >= job.deadline()) {
          preempt_job(ctx, job);
          break;
        }
      }
    }
  }
  // Pause saturated jobs: their marginal accuracy per iteration is below
  // the threshold, so their waiting tasks yield to jobs that can still
  // improve before their deadlines.
  auto marginal_gain = [prediction](const Job& job) {
    const int i = job.completed_iterations();
    if (prediction != nullptr) {
      return prediction->accuracy_at(job, i + 1) - prediction->accuracy_at(job, i);
    }
    return job.curve().accuracy_at(i + 1) - job.curve().accuracy_at(i);
  };
  std::stable_sort(queue.begin(), queue.end(), [&ctx, prediction](TaskId a, TaskId b) {
    const Job& ja = ctx.cluster.job(ctx.cluster.task(a).job);
    const Job& jb = ctx.cluster.job(ctx.cluster.task(b).job);
    return achievable_gain(ja, ctx.now, prediction) > achievable_gain(jb, ctx.now, prediction);
  });
  bool any_gainful_waiting = false;
  for (const TaskId tid : queue) {
    if (achievable_gain(ctx.cluster.job(ctx.cluster.task(tid).job), ctx.now, prediction) >
        0.0) {
      any_gainful_waiting = true;
      break;
    }
  }
  int failures = 0;
  for (const TaskId tid : queue) {
    if (failures >= kMaxConsecutiveGangFailures) break;
    const Task& task = ctx.cluster.task(tid);
    if (task.state != TaskState::Queued) continue;
    const Job& job = ctx.cluster.job(task.job);
    // Pause saturated jobs only while accuracy-hungry jobs wait and the
    // paused job still has a live deadline to protect; afterwards it runs
    // normally (HyperSched reclaims resources, it does not strand trials).
    // A saturated trial that already met its accuracy requirement and
    // whose deadline has passed has nothing left to win under
    // HyperSched's objective; it yields to jobs that can still gain.
    if (any_gainful_waiting && job.completed_iterations() > 0 &&
        marginal_gain(job) < pause_gain_threshold_ &&
        job.current_accuracy() >= job.spec().accuracy_requirement &&
        ctx.now >= job.deadline()) {
      continue;
    }
    const int placed = place_job_gang(ctx, tid, least_loaded_placement);
    if (placed == 0) ++failures;
    if (placed > 0) failures = 0;
  }
}

}  // namespace mlfs::sched
