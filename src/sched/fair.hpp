// "TensorFlow" baseline: the Borg-style Fair scheduler ([53], as used in
// the paper's comparison). Resources are allocated to equalize per-job
// service: the waiting task whose job currently holds the fewest placed
// tasks (relative to its request) goes first. No ML awareness, no overload
// handling.
#pragma once

#include "sim/scheduler.hpp"

namespace mlfs::sched {

class FairScheduler : public Scheduler {
 public:
  std::string name() const override { return "TensorFlow"; }
  void schedule(SchedulerContext& ctx) override;
};

}  // namespace mlfs::sched
