// Tiresias [21] baseline: discretized two-dimensional least-attained-
// service. A job's priority is its attained service (requested GPUs ×
// executed time); jobs with less attained service run first, which bounds
// JCT without runtime estimates. We implement the 2D-LAS queue discipline
// with priority discretization (queue levels by attained-service bands).
#pragma once

#include <unordered_map>

#include "sim/scheduler.hpp"

namespace mlfs::sched {

class TiresiasScheduler : public Scheduler {
 public:
  /// `band_gpu_hours`: width of one discretization band of attained
  /// service (GPU·hours), mirroring Tiresias's queue thresholds.
  explicit TiresiasScheduler(double band_gpu_hours = 8.0);

  std::string name() const override { return "Tiresias"; }
  void schedule(SchedulerContext& ctx) override;
  void on_job_complete(const Job& job, SimTime now) override;

  /// Attained-service bookkeeping round-trip for engine snapshots (the
  /// maps are written sorted by job id so the bytes are deterministic).
  void save_state(std::ostream& os) const override;
  void restore_state(std::istream& is) override;

  double attained_service(JobId id) const;

 private:
  void accumulate_service(SchedulerContext& ctx);

  double band_gpu_seconds_;
  SimTime last_tick_ = -1.0;
  std::unordered_map<JobId, double> service_;  // GPU·seconds
  std::unordered_map<JobId, int> demotions_;  // per-job demotion count (max 1: 2 queues)
};

}  // namespace mlfs::sched
