// Shared placement helpers for the baseline schedulers. Each baseline is
// the decision rule of its paper reduced onto this simulator; these
// helpers cover the mechanics they all need (feasibility checks,
// least-loaded and best-fit server choice).
#pragma once

#include <functional>
#include <optional>

#include "sim/scheduler.hpp"

namespace mlfs::sched {

struct Placement {
  ServerId server;
  int gpu;
};

/// Least-loaded feasible placement: the server with the lowest utilization
/// norm whose least-loaded GPU accepts the task under ctx.hr.
std::optional<Placement> least_loaded_placement(const SchedulerContext& ctx, const Task& task);

/// Best-fit (packing) placement: among feasible servers, the one whose
/// remaining capacity vector is *closest* to the task demand (tightest
/// fit, Tetris/Graphene-style packing).
std::optional<Placement> best_fit_placement(const SchedulerContext& ctx, const Task& task);

/// Feasible placement on a specific server, if any (least-loaded GPU).
std::optional<Placement> placement_on_server(const SchedulerContext& ctx, const Task& task,
                                             ServerId server);

/// Copy of the waiting queue filtered to genuinely queued tasks.
std::vector<TaskId> live_queue(const SchedulerContext& ctx);

/// Gang-coherent placement: places `task` and then every other queued task
/// of the same job, choosing each host with `choose` (returns nullopt to
/// skip). Jobs run iterations only when fully placed, so grouping a job's
/// placements avoids the partial-placement deadlocks that task-interleaved
/// orders otherwise produce. Returns the number of tasks placed.
using PlacementChooser =
    std::function<std::optional<Placement>(const SchedulerContext&, const Task&)>;
/// Returns the number of tasks placed; 0 = the gang could not complete and
/// was rolled back; -1 = the job had no queued tasks (stale queue entry).
int place_job_gang(SchedulerContext& ctx, TaskId task, const PlacementChooser& choose);

/// Under sustained overload most gangs fail; scheduler loops stop after
/// this many consecutive failed gang attempts per round (the queue beyond
/// that point retries next tick). Bounds per-round cost at high load.
inline constexpr int kMaxConsecutiveGangFailures = 200;

/// Sum of a task demand vector's components (a scalar "size" for packing
/// difficulty scores).
double demand_magnitude(const Task& task);

/// Preempts every running task of `job` back to the queue (job-level
/// preemption — gang execution stops either way). Returns tasks preempted.
std::size_t preempt_job(SchedulerContext& ctx, const Job& job);

}  // namespace mlfs::sched
