// Graphene [20] baseline: packing- and dependency-aware DAG scheduling.
// "Troublesome" tasks — those with many dependent tasks and tough-to-pack
// resource demands — are served first; placement uses tight best-fit
// packing. Job order blends completion-time and throughput scores the way
// Graphene's multi-objective weighting does. No ML feature awareness.
#pragma once

#include "sim/scheduler.hpp"

namespace mlfs::sched {

class GrapheneScheduler : public Scheduler {
 public:
  std::string name() const override { return "Graphene"; }
  void schedule(SchedulerContext& ctx) override;

  /// Troublesome score: normalized descendant count + demand magnitude
  /// (public for tests).
  static double troublesome_score(const Cluster& cluster, const Task& task);
};

}  // namespace mlfs::sched
