// "RL" baseline (Mirhoseini et al. [39] as used in the paper's
// comparison): deep-RL device placement that minimizes JCT only. A softmax
// policy network scores K candidate servers per waiting task from
// computation features alone — no ML job features and no accuracy
// objective, which is exactly the gap MLF-RL fills.
//
// Reward (per scheduling round, shared by the round's decisions): the
// DeepRM-style JCT objective -sum_{jobs in system} 1/T_j, whose cumulative
// maximization equals average-JCT minimization [35]. The agent trains
// online with REINFORCE.
#pragma once

#include <memory>

#include "rl/reinforce.hpp"
#include "sim/scheduler.hpp"

namespace mlfs::sched {

struct RlBaselineConfig {
  std::size_t candidate_count = 4;  ///< K candidate servers per decision
  std::size_t update_every_rounds = 16;
  double eta = 0.95;
  std::uint64_t seed = 11;
  std::vector<std::size_t> hidden = {32, 32};
};

class RlBaselineScheduler : public Scheduler {
 public:
  explicit RlBaselineScheduler(const RlBaselineConfig& config = {});

  std::string name() const override { return "RL"; }
  void schedule(SchedulerContext& ctx) override;

  /// Snapshot support: the agent (weights + optimizer + RNG), the open
  /// episode, queued update batches, and the round counters.
  void save_state(std::ostream& os) const override;
  void restore_state(std::istream& is) override;

  /// Feature dimension of the policy input (public for tests).
  static std::size_t state_dim(std::size_t candidate_count);

 private:
  std::vector<double> featurize(const SchedulerContext& ctx, const Task& task,
                                const std::vector<ServerId>& candidates) const;
  double round_reward(const SchedulerContext& ctx) const;

  RlBaselineConfig config_;
  std::unique_ptr<rl::ReinforceAgent> agent_;
  rl::Episode episode_;
  std::vector<rl::Episode> pending_episodes_;
  std::size_t decisions_this_round_ = 0;
  std::size_t rounds_since_update_ = 0;
};

}  // namespace mlfs::sched
