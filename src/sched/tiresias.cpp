#include "sched/tiresias.hpp"

#include <algorithm>
#include <limits>
#include <cmath>
#include <utility>
#include <vector>

#include "common/binio.hpp"
#include "common/expect.hpp"
#include "sched/util.hpp"

namespace mlfs::sched {

TiresiasScheduler::TiresiasScheduler(double band_gpu_hours)
    : band_gpu_seconds_(band_gpu_hours * 3600.0) {
  MLFS_EXPECT(band_gpu_hours > 0.0);
}

double TiresiasScheduler::attained_service(JobId id) const {
  const auto it = service_.find(id);
  return it == service_.end() ? 0.0 : it->second;
}

void TiresiasScheduler::accumulate_service(SchedulerContext& ctx) {
  if (last_tick_ >= 0.0) {
    const double dt = ctx.now - last_tick_;
    for (const Job& job : ctx.cluster.jobs()) {
      if (job.state() != JobState::Running) continue;
      std::size_t placed = 0;
      for (const TaskId tid : job.tasks()) {
        if (ctx.cluster.task(tid).placed()) ++placed;
      }
      service_[job.id()] += dt * static_cast<double>(placed);
    }
  }
  last_tick_ = ctx.now;
}

void TiresiasScheduler::schedule(SchedulerContext& ctx) {
  accumulate_service(ctx);
  auto queue = live_queue(ctx);
  // Discretized 2D-LAS with two queues (Tiresias-L's usual K = 2): a
  // running job that crosses the attained-service threshold while
  // lower-band work waits is demoted — preempted and re-queued behind the
  // fresh work — at most once in its lifetime. One demotion per job is
  // what bounds Tiresias's preemption churn.
  if (!queue.empty()) {
    double lowest_waiting_band = std::numeric_limits<double>::infinity();
    for (const TaskId tid : queue) {
      const JobId j = ctx.cluster.task(tid).job;
      lowest_waiting_band = std::min(
          lowest_waiting_band, std::floor(attained_service(j) / band_gpu_seconds_));
    }
    for (const Job& job : ctx.cluster.jobs()) {
      if (job.state() != JobState::Running) continue;
      const double band = std::floor(attained_service(job.id()) / band_gpu_seconds_);
      if (band <= lowest_waiting_band) continue;
      auto [it, inserted] = demotions_.try_emplace(job.id(), 0);
      if (it->second >= 1) continue;  // already demoted to the low queue
      ++it->second;
      preempt_job(ctx, job);
      queue = live_queue(ctx);
      break;  // one demotion per round
    }
  }
  // Discretized LAS: lower attained-service band first; FIFO within band.
  std::stable_sort(queue.begin(), queue.end(), [this, &ctx](TaskId a, TaskId b) {
    const JobId ja = ctx.cluster.task(a).job;
    const JobId jb = ctx.cluster.task(b).job;
    const double band_a = std::floor(attained_service(ja) / band_gpu_seconds_);
    const double band_b = std::floor(attained_service(jb) / band_gpu_seconds_);
    return band_a < band_b;
  });
  int failures = 0;
  for (const TaskId tid : queue) {
    if (failures >= kMaxConsecutiveGangFailures) break;
    if (ctx.cluster.task(tid).state != TaskState::Queued) continue;
    const int placed = place_job_gang(ctx, tid, least_loaded_placement);
    if (placed == 0) ++failures;
    if (placed > 0) failures = 0;
  }
}

void TiresiasScheduler::on_job_complete(const Job& job, SimTime now) {
  (void)now;
  service_.erase(job.id());
  demotions_.erase(job.id());
}

void TiresiasScheduler::save_state(std::ostream& os) const {
  io::BinWriter w(os);
  w.f64(last_tick_);
  std::vector<std::pair<JobId, double>> service(service_.begin(), service_.end());
  std::sort(service.begin(), service.end());
  w.u64(service.size());
  for (const auto& [job, gpu_seconds] : service) {
    w.u64(job);
    w.f64(gpu_seconds);
  }
  std::vector<std::pair<JobId, int>> demotions(demotions_.begin(), demotions_.end());
  std::sort(demotions.begin(), demotions.end());
  w.u64(demotions.size());
  for (const auto& [job, count] : demotions) {
    w.u64(job);
    w.i64(count);
  }
}

void TiresiasScheduler::restore_state(std::istream& is) {
  io::BinReader r(is);
  last_tick_ = r.f64();
  service_.clear();
  const std::uint64_t service_count = r.u64();
  for (std::uint64_t i = 0; i < service_count; ++i) {
    const JobId job = static_cast<JobId>(r.u64());
    service_[job] = r.f64();
  }
  demotions_.clear();
  const std::uint64_t demotion_count = r.u64();
  for (std::uint64_t i = 0; i < demotion_count; ++i) {
    const JobId job = static_cast<JobId>(r.u64());
    demotions_[job] = static_cast<int>(r.i64());
  }
}

}  // namespace mlfs::sched
