// Optimus [42] baseline (extension beyond the paper's Fig. 4 comparison
// set; Optimus is discussed in its related work). Optimus predicts each
// job's remaining time from an online-fitted convergence model and gives
// resources to the jobs that will finish soonest, minimizing average JCT
// with an accuracy guarantee. On this simulator that decision rule maps to
// shortest-predicted-remaining-time-first queue ordering driven by the
// RuntimePredictor (the same [42]-style estimator MLFS assumes in §3.1).
#pragma once

#include "sim/scheduler.hpp"

namespace mlfs::sched {

class OptimusScheduler : public Scheduler {
 public:
  std::string name() const override { return "Optimus"; }
  void schedule(SchedulerContext& ctx) override;
};

}  // namespace mlfs::sched
