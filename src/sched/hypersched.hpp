// HyperSched [32] baseline: deadline-bounded accuracy maximization.
// Resources go to the jobs with the largest predicted accuracy improvement
// achievable before their deadlines; jobs whose recent iterations no
// longer improve accuracy significantly are paused (their waiting tasks
// are deprioritized) to free resources for jobs that can still gain.
#pragma once

#include "sim/scheduler.hpp"

namespace mlfs::sched {

class HyperSchedScheduler : public Scheduler {
 public:
  /// `pause_gain_threshold`: accuracy-per-iteration below which a job is
  /// considered saturated and paused.
  explicit HyperSchedScheduler(double pause_gain_threshold = 1e-4);

  std::string name() const override { return "HyperSched"; }
  void schedule(SchedulerContext& ctx) override;

  /// Predicted accuracy gain achievable between now and the deadline
  /// (public for tests). Reads the accuracy curve through the engine's
  /// prediction substrate when one is attached (same values; one shared
  /// read path).
  static double achievable_gain(const Job& job, SimTime now,
                                const PredictionService* prediction = nullptr);

 private:
  double pause_gain_threshold_;
};

}  // namespace mlfs::sched
