// SLAQ [58] baseline: quality-driven scheduling. Resources go to the job
// with the maximum predicted loss reduction per unit runtime for its next
// iteration — SLAQ maximizes aggregate model quality, not JCT (the paper
// notes it therefore produces the highest JCT among the comparison set).
#pragma once

#include "sim/scheduler.hpp"

namespace mlfs::sched {

class SlaqScheduler : public Scheduler {
 public:
  std::string name() const override { return "SLAQ"; }
  void schedule(SchedulerContext& ctx) override;

  /// Predicted loss reduction of the job's next iteration per second of
  /// runtime — SLAQ's ranking quantity (public for tests). Reads the loss
  /// curve through the engine's prediction substrate when one is attached
  /// (same values; one shared read path).
  static double quality_gain_rate(const Job& job,
                                  const PredictionService* prediction = nullptr);
};

}  // namespace mlfs::sched
