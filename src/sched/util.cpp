#include "sched/util.hpp"

#include <algorithm>

namespace mlfs::sched {

std::optional<Placement> least_loaded_placement(const SchedulerContext& ctx, const Task& task) {
  const Cluster& cluster = ctx.cluster;
  std::optional<Placement> best;
  double best_norm = 0.0;
  for (const Server& s : cluster.servers()) {
    if (!s.up()) continue;  // down servers fail every fit; skip the probe
    const int gpu = s.least_loaded_gpu();
    if (!s.fits_without_overload(task, gpu, ctx.hr)) continue;
    const double norm = s.utilization().norm();
    if (!best || norm < best_norm) {
      best = Placement{s.id(), gpu};
      best_norm = norm;
    }
  }
  return best;
}

std::optional<Placement> best_fit_placement(const SchedulerContext& ctx, const Task& task) {
  const Cluster& cluster = ctx.cluster;
  std::optional<Placement> best;
  double best_distance = 0.0;
  for (const Server& s : cluster.servers()) {
    if (!s.up()) continue;  // down servers fail every fit; skip the probe
    const int gpu = s.least_loaded_gpu();
    if (!s.fits_without_overload(task, gpu, ctx.hr)) continue;
    ResourceVector residual = ResourceVector::uniform(1.0) - s.utilization();
    residual.clamp_non_negative();
    const double distance = residual.distance(task.demand * task.usage_factor);
    if (!best || distance < best_distance) {
      best = Placement{s.id(), gpu};
      best_distance = distance;
    }
  }
  return best;
}

std::optional<Placement> placement_on_server(const SchedulerContext& ctx, const Task& task,
                                             ServerId server) {
  const Server& s = ctx.cluster.server(server);
  const int gpu = s.least_loaded_gpu();
  if (!s.fits_without_overload(task, gpu, ctx.hr)) return std::nullopt;
  return Placement{s.id(), gpu};
}

std::vector<TaskId> live_queue(const SchedulerContext& ctx) {
  std::vector<TaskId> out;
  out.reserve(ctx.queue.size());
  for (const TaskId tid : ctx.queue) {
    if (ctx.cluster.task(tid).state == TaskState::Queued) out.push_back(tid);
  }
  return out;
}

int place_job_gang(SchedulerContext& ctx, TaskId task, const PlacementChooser& choose) {
  const Task& first = ctx.cluster.task(task);
  const Job& job = ctx.cluster.job(first.job);
  // Fast fail: if the cluster clearly lacks slots for the whole gang, skip
  // the per-task host search (the expensive part) entirely.
  std::size_t queued = 0;
  for (const TaskId tid : job.tasks()) {
    if (ctx.cluster.task(tid).state == TaskState::Queued) ++queued;
  }
  if (queued == 0) return -1;
  // Conservative: only skip when the shortfall is unambiguous (2x), since
  // the estimate assumes typical demands.
  if (job.id() != ctx.protected_job &&
      static_cast<int>(queued) > 2 * ctx.cluster.estimate_free_worker_slots(ctx.hr)) {
    return 0;
  }
  std::vector<TaskId> placed_now;
  bool complete = true;
  bool any_queued = false;
  for (const TaskId tid : job.tasks()) {
    const Task& t = ctx.cluster.task(tid);
    if (t.state != TaskState::Queued) continue;
    any_queued = true;
    const auto p = choose(ctx, t);
    if (p && ctx.ops.place(tid, p->server, p->gpu)) {
      placed_now.push_back(tid);
    } else {
      complete = false;
    }
  }
  if (!any_queued) return -1;
  // All-or-nothing: a gang that cannot fully place this round gives its
  // capacity back immediately — partial gangs cannot run and would only
  // starve jobs that *can*. The engine-designated protected job is exempt
  // so oversized gangs still accumulate toward placement.
  if (!complete && job.id() != ctx.protected_job) {
    for (const TaskId tid : placed_now) ctx.ops.release(tid);
    return 0;
  }
  return static_cast<int>(placed_now.size());
}

std::size_t preempt_job(SchedulerContext& ctx, const Job& job) {
  std::size_t preempted = 0;
  for (const TaskId tid : job.tasks()) {
    if (ctx.cluster.task(tid).state == TaskState::Running) {
      ctx.ops.preempt_to_queue(tid);
      ++preempted;
    }
  }
  return preempted;
}

double demand_magnitude(const Task& task) {
  double sum = 0.0;
  for (std::size_t i = 0; i < kNumResources; ++i) sum += task.demand.at(i);
  return sum;
}

}  // namespace mlfs::sched
