// Discrete-event simulation engine. Drives job arrivals, per-iteration
// execution of each job's task DAG under contention, deadline bookkeeping,
// the periodic scheduler tick, stop-policy semantics (§3.5 options), and
// metric collection.
//
// Execution model (see DESIGN.md §5):
//  * A job runs iterations only while *all* of its unfinished tasks are
//    placed (gang execution across its dependency graph).
//  * Iteration duration = critical path over the DAG where each task costs
//    base_compute × contention slowdown, plus cross-server communication
//    time, plus any pending one-time migration penalty.
//  * Task usage fluctuates (lognormal factor resampled per tick), which is
//    what produces overload episodes for the schedulers to handle.
//  * The scheduler runs every tick_interval ("every minute", §4.1); its
//    wall-clock time per round is the overhead metric of Figs. 4(h)/5(h).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "predict/service.hpp"
#include "sim/audit.hpp"
#include "sim/cluster.hpp"
#include "sim/event_log.hpp"
#include "sim/health.hpp"
#include "sim/metrics.hpp"
#include "sim/scheduler.hpp"

namespace mlfs {

/// Fault-injection model (robustness extension; the paper's §3.3.3 premise
/// that hardware fails is otherwise only visible as straggler slowdown).
/// Servers crash and recover under per-server exponential MTBF/MTTR;
/// racks suffer correlated outages (all up servers in the rack crash
/// together and repair together) when the cluster has a rack topology;
/// individual tasks die transiently with a per-tick probability. All
/// draws come from a dedicated RNG stream, so any all-zero-rate config is
/// bit-identical to a fault-free run.
struct FaultConfig {
  /// Mean time between crashes per server, hours; 0 disables crashes.
  double server_mtbf_hours = 0.0;
  /// Mean repair time, hours; 0 makes a crash permanent (negative is
  /// rejected by validate()).
  double server_mttr_hours = 0.5;
  /// Per running task, per tick: probability of a transient kill (process
  /// dies; server survives). 0 disables.
  double task_kill_probability = 0.0;
  /// Correlated outages per rack (requires ClusterConfig::servers_per_rack
  /// > 0 — validate() rejects the combination otherwise): mean time
  /// between outages per rack, hours; 0 disables.
  double rack_mtbf_hours = 0.0;
  double rack_mttr_hours = 0.25;
  /// Jobs checkpoint every k completed iterations; a fault rolls the job
  /// back to its last checkpoint, losing up to k-1 completed iterations
  /// plus any in-flight iteration fraction (with k = 1 only the in-flight
  /// work is lost). Voluntary aborts (preemption/migration) still keep
  /// their resume credit — only faults destroy un-checkpointed state.
  /// Overridden per job by RecoveryConfig::adaptive_checkpoint.
  int checkpoint_interval_iterations = 1;

  /// Flaky-server heterogeneity: the *last* lround(fraction × N) servers
  /// (mirroring ClusterConfig::slow_server_fraction's assignment) crash
  /// and kill tasks `flaky_rate_multiplier` times as often. 0 keeps the
  /// homogeneous failure process bit-identical (the multiplier is then
  /// 1 everywhere and no draw changes); > 0 gives the health tracker a
  /// real signal to find.
  double flaky_server_fraction = 0.0;
  double flaky_rate_multiplier = 8.0;

  bool any_faults() const {
    return server_mtbf_hours > 0.0 || task_kill_probability > 0.0 || rack_mtbf_hours > 0.0;
  }

  /// Failure-rate multiplier of one server (1 unless it is flaky).
  double rate_multiplier(ServerId id, std::size_t server_count) const;

  /// Throws ContractViolation on invalid values — negative rates/MTTRs,
  /// non-positive checkpoint interval, kill probability outside [0, 1],
  /// or rack outages requested on a flat cluster (previously silently
  /// disabled deep in the engine).
  void validate(int servers_per_rack) const;
};

struct EngineConfig {
  SimDuration tick_interval = minutes(1);
  double hr = 0.9;                 ///< per-server overload threshold (§3.3.2)
  double usage_noise_sigma = 0.08; ///< lognormal sigma of task usage fluctuation
  double migration_fixed_penalty_seconds = 5.0;  ///< restart cost on top of state transfer
  SimDuration max_sim_time = days(365);  ///< hard stop; unfinished jobs count as censored
  std::uint64_t seed = 7;

  // OptStop semantics (§3.5, via the learning-curve predictor [17]).
  int optstop_check_interval = 5;        ///< evaluate the stop rule every k iterations
  double optstop_near_max_fraction = 0.99;  ///< stop when acc >= frac × predicted max
  double optstop_confidence_threshold = 0.6;  ///< needed to stop a hopeless job early

  /// Prediction subsystem (predict/service.hpp): incremental, memoized,
  /// warm-started curve fitting behind the OptStop checks and the
  /// scheduler-facing prediction substrate. enabled = false selects the
  /// legacy stateless cold-fit path (byte-identical results, no caching).
  PredictConfig predict;

  /// Watchdog: if nothing runs for this many consecutive ticks while tasks
  /// wait, the most-incomplete partially-placed job is evicted to unwedge
  /// gang-placement fragmentation deadlocks.
  int stall_ticks_before_eviction = 10;

  // Straggler model + mitigation (§3.3.3 "Stragglers may occur due to
  // failing hardware, software bugs, misconfiguration..."; the replica
  // mechanism the paper sketches as future work). Each task-iteration
  // independently becomes a straggler with `straggler_probability`,
  // multiplying its compute by `straggler_slowdown`. With
  // `straggler_replicas` > 0 each task runs that many backup copies and
  // the fastest wins ("use the output of the task that completes first"),
  // at the cost of the replica's communication volume every iteration.
  double straggler_probability = 0.0;
  double straggler_slowdown = 4.0;
  int straggler_replicas = 0;

  /// Gang-placement guard: a job whose tasks are only partially placed
  /// does not run (gang execution), yet its placed tasks hold GPU slots.
  /// After this long in that state the idle placements are released back
  /// to the queue so capacity cannot leak into a cluster-wide deadlock;
  /// the job's grown waiting-time priority then lets it gang-place
  /// atomically once capacity frees.
  SimDuration partial_placement_timeout = minutes(5);

  /// Failure model (crashes, recoveries, transient kills); all rates
  /// default to zero = the historical fault-free simulation.
  FaultConfig fault;

  /// Failure-aware recovery policies (sim/health.hpp); default-off keeps
  /// the engine bitwise-identical to a recovery-naive run.
  RecoveryConfig recovery;

  /// Invariant auditing (see sim/audit.hpp): when enabled the engine
  /// re-validates the cluster-wide invariants after every processed event
  /// and throws AuditViolation on the first divergence. Pure observer —
  /// results are bit-identical to an unaudited run.
  AuditConfig audit;
};

/// One externally streamed job arrival: the submitted spec plus its
/// position in the arrival stream (assigned by the submitter, monotone).
struct StreamedArrival {
  std::uint64_t stream_seq = 0;
  JobSpec spec;
};

/// Streaming-ingestion seam (see DESIGN.md §6d): a source of job arrivals
/// the engine pulls from at the top of every step(), so injected jobs flow
/// through the same event queue, auditor, and metrics as trace-driven
/// ones. The source owns the "due" decision — it sees the simulated clock,
/// the event index, and whether the event queue has drained (a drained
/// queue with pending arrivals must force-inject or the run would end
/// early) — which is what lets crash recovery replay journaled arrivals at
/// their exact recorded event indices.
class ArrivalSource {
 public:
  virtual ~ArrivalSource() = default;

  /// True while arrivals remain to be injected.
  virtual bool pending() const = 0;

  /// If the head arrival is due at this instant, moves it into `out` and
  /// returns true (the engine then injects it and calls on_injected);
  /// returning false defers it to a later step.
  virtual bool pop_due(SimTime now, std::uint64_t event_index, bool queue_empty,
                       StreamedArrival& out) = 0;

  /// Notification after the engine registered the arrival: `spec` is the
  /// job as registered (id/arrival as assigned) and `event_index` the
  /// events-processed count at injection — exactly what the write-ahead
  /// journal records.
  virtual void on_injected(const JobSpec& spec, std::uint64_t stream_seq,
                           std::uint64_t event_index) {
    (void)spec;
    (void)stream_seq;
    (void)event_index;
  }
};

/// Hook for MLF-C (§3.5): invoked every tick before the scheduler so it can
/// downgrade job stop policies / retarget iterations under overload.
class LoadController {
 public:
  virtual ~LoadController() = default;
  virtual std::string name() const = 0;
  virtual void before_schedule(Cluster& cluster, const std::vector<TaskId>& queue,
                               SimTime now) = 0;

  /// Snapshot hooks, same contract as Scheduler::save_state/restore_state:
  /// controllers carrying state across ticks (MLF-C's overload hysteresis)
  /// must serialize it or a restored run diverges.
  virtual void save_state(std::ostream& os) const { (void)os; }
  virtual void restore_state(std::istream& is) { (void)is; }
};

class SimEngine final : private SchedulerOps {
 public:
  SimEngine(const ClusterConfig& cluster_config, const EngineConfig& engine_config,
            std::vector<JobSpec> specs, Scheduler& scheduler,
            LoadController* load_controller = nullptr);

  /// Runs the whole trace to completion (or max_sim_time) and returns the
  /// collected metrics. Equivalent to `while (step()) {}` + finalize().
  RunMetrics run();

  /// Processes the next event. Returns false when the simulation is over:
  /// the event queue drained, the horizon was crossed, or every job
  /// reached a terminal state. Call finalize() afterwards for the metrics.
  /// The snapshot/crash harnesses drive the engine one event at a time
  /// through this instead of run().
  bool step();

  /// Censoring + metrics assembly (the tail of run()). Call once, after
  /// step() returned false.
  RunMetrics finalize();

  /// Events processed so far (accepted by step(); equals the auditor's
  /// events_seen()).
  std::uint64_t events_processed() const { return events_processed_; }

  /// Running FNV-1a over every processed event's (time, seq, type, job,
  /// epoch) — the byte-identical-resume fingerprint of the whole event
  /// stream. Survives save_snapshot/restore_snapshot, so a restored run's
  /// final hash equals the uninterrupted run's.
  std::uint64_t event_stream_hash() const { return event_hash_; }

  /// FNV-1a over the canonical cluster/engine/workload configuration and
  /// the scheduler (+ controller) identity. Stamped into every snapshot;
  /// restore_snapshot rejects a file written under a different fingerprint
  /// (audit settings are deliberately excluded — the auditor is a pure
  /// observer and resyncs after restore).
  std::uint64_t config_fingerprint() const;

  /// Serializes the engine's complete dynamic state (see DESIGN.md,
  /// "Snapshot & restore"): event queue, cluster/server/task/job state,
  /// all RNG streams, health tracker, predictor memory, counters, and the
  /// scheduler's opaque state.
  void save_snapshot(std::ostream& os) const;

  /// Restores a snapshot into this engine. The engine must have been
  /// constructed from the same configuration/workload/scheduler the
  /// snapshot was written under (enforced via config_fingerprint()). The
  /// whole file is validated before any state is touched — on
  /// SnapshotError the engine is unchanged.
  void restore_snapshot(std::istream& is);

  /// Health tracker view (non-null iff recovery policies are enabled).
  const ServerHealthTracker* health() const { return health_.get(); }

  Cluster& cluster() { return cluster_; }
  const Cluster& cluster() const { return cluster_; }
  SimTime now() const { return now_; }
  const std::vector<TaskId>& queue() const { return queue_; }
  const EngineConfig& config() const { return config_; }
  PredictionService& prediction_service() { return prediction_; }
  const PredictionService& prediction_service() const { return prediction_; }

  /// Attaches an observer notified on every state-changing event (see
  /// sim/event_log.hpp). Must outlive the engine; nullptr detaches.
  void set_observer(EngineObserver* observer) { observer_ = observer; }

  /// Attaches a streaming arrival source, drained at the top of every
  /// step(). Must outlive the engine; nullptr detaches.
  void set_arrival_source(ArrivalSource* source) { arrival_source_ = source; }

  /// Registers a job into the live engine mid-run: instantiates it, grows
  /// all per-job/per-task state, and pushes its Arrival (at
  /// max(now, spec.arrival)) and Deadline events through the normal event
  /// queue. spec.id is overwritten with the next dense job id. Injected
  /// jobs are excluded from config_fingerprint() (they are dynamic inputs,
  /// journaled and carried in the snapshot's "injected" section instead).
  /// Returns the assigned id.
  JobId inject_job(JobSpec spec);

  /// Jobs injected after construction, in injection order (specs as
  /// registered). Snapshot restore replays these before any dynamic state.
  const std::vector<JobSpec>& injected_specs() const { return injected_specs_; }

  /// Jobs the engine was constructed with (fingerprint coverage).
  std::size_t base_job_count() const { return base_job_count_; }

  /// Schedules a crash of `server` at simulated time `at` (chaos/test
  /// hook; independent of the random MTBF process). The event is dropped
  /// if the server has already changed up/down state by then; repair
  /// follows FaultConfig::server_mttr_hours as usual.
  void inject_server_failure(ServerId server, SimTime at);

 private:
  friend class SimAuditor;  // reads raw engine state; mutates nothing

  // -- SchedulerOps --
  bool place(TaskId task, ServerId server, int gpu) override;
  void preempt_to_queue(TaskId task) override;
  bool migrate(TaskId task, ServerId server, int gpu) override;
  void release(TaskId task) override;
  bool set_phase_offset(JobId job, double offset) override;

  // -- events --
  enum class EventType { Arrival, IterationDone, Deadline, Tick, ServerDown, ServerUp,
                         RackOutage, RetryRelease };
  struct Event {
    SimTime time;
    std::uint64_t seq;  // FIFO tiebreak for equal times
    EventType type;
    JobId job;  // ServerId for ServerDown/Up, rack for RackOutage, TaskId for RetryRelease
    std::uint64_t epoch;  // abort guard for IterationDone / stale guard for ServerDown/Up
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };
  void push_event(SimTime time, EventType type, JobId job = kInvalidJob,
                  std::uint64_t epoch = 0);

  /// Pulls every due arrival from the attached source (step() preamble).
  void drain_arrival_source();

  void handle_arrival(JobId id);
  void handle_tick();
  void handle_iteration_done(JobId id, std::uint64_t epoch);
  void handle_deadline(JobId id);
  void handle_server_down(ServerId id, std::uint64_t epoch);
  void handle_server_up(ServerId id, std::uint64_t epoch);
  void handle_rack_outage(int rack);
  /// Re-admits a fault-killed task to the queue after its backoff delay.
  void handle_retry_release(TaskId tid);

  // -- execution --
  void try_start_jobs();
  void start_iteration(Job& job);
  double iteration_duration(const Job& job);
  void account_iteration_bandwidth(const Job& job);
  /// Non-const: OptStop checks advance the prediction service's
  /// incremental fit chains / memo.
  bool should_stop(const Job& job);
  void complete_job(Job& job);
  void abort_iteration(Job& job);
  void resample_usage();
  void compact_queue();
  void run_watchdog();
  void release_stale_partial_placements();
  JobId protected_job() const;

  // -- fault injection --
  /// Pushes the next random ServerDown for `id` (MTBF exponential draw).
  void schedule_server_crash(ServerId id);
  /// Pushes the next random RackOutage for `rack`.
  void schedule_rack_outage(int rack);
  /// Crashes an up server: evicts and requeues its tasks, applies
  /// checkpoint-loss aborts to the affected jobs, marks the server down,
  /// and (when repair_after > 0) schedules its recovery. No-op on a down
  /// server. Returns true iff the server actually crashed.
  bool crash_server(ServerId id, SimDuration repair_after);
  /// Per-tick transient task kills (Bernoulli per running task).
  void kill_random_tasks();
  /// Fault-caused abort: unlike abort_iteration, progress since the last
  /// checkpoint — in-flight fraction, resume credit, and completed
  /// iterations past the checkpoint — is destroyed and accounted as lost.
  /// Under a retry budget the rollback may exhaust it and fail the job.
  void fault_abort(Job& job);
  /// Requeues a task evicted by a fault (immediately, or after a jittered
  /// exponential backoff under the recovery policies) and notifies the
  /// observer.
  void evict_task_for_fault(TaskId tid);

  // -- recovery policies (sim/health.hpp; all no-ops while disabled) --
  /// Marks a job failed-permanent: releases its placements, removes its
  /// live tasks, and records the terminal state (JobState::Failed).
  void fail_job(Job& job);
  /// The job's effective checkpoint interval: Young/Daly from the live
  /// MTBF estimate when adaptive checkpointing is on, else the validated
  /// FaultConfig::checkpoint_interval_iterations.
  int checkpoint_interval_for(const Job& job) const;
  /// Applies the tracker's pending quarantine/probation cap transitions.
  void apply_health_transitions();
  /// Quarantine decision for one server; applies the placement cap.
  void consider_quarantine(ServerId id);

  ClusterConfig cluster_config_;
  EngineConfig config_;
  Cluster cluster_;
  Scheduler& scheduler_;
  LoadController* load_controller_;
  EngineObserver* observer_ = nullptr;
  ArrivalSource* arrival_source_ = nullptr;
  /// Jobs registered at construction; specs beyond this are injections.
  std::size_t base_job_count_ = 0;
  std::vector<JobSpec> injected_specs_;
  Rng rng_;
  /// Dedicated stream for every fault draw: fault injection must not
  /// perturb the usage/straggler streams, or a zero-rate FaultConfig
  /// would change unrelated results.
  Rng fault_rng_;
  /// Dedicated stream for recovery-policy draws (backoff jitter); only
  /// consumed while RecoveryConfig::enabled, so default-off runs remain
  /// bit-identical.
  Rng recovery_rng_;
  /// Non-null iff config_.recovery.enabled.
  std::unique_ptr<ServerHealthTracker> health_;
  /// Unified prediction subsystem: runtime estimates + incremental
  /// learning-curve fits (see predict/service.hpp).
  PredictionService prediction_;
  std::unique_ptr<SimAuditor> auditor_;  ///< non-null iff config_.audit.enabled

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::uint64_t event_seq_ = 0;
  SimTime now_ = 0.0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t event_hash_ = 1469598103934665603ull;  ///< FNV-1a offset basis

  std::vector<TaskId> queue_;
  std::vector<std::uint64_t> job_epoch_;     // per job, bumped on abort/start
  std::vector<SimTime> waiting_since_;       // per job, valid while Waiting
  std::vector<SimTime> partial_since_;       // per job, -1 = not partially placed
  std::vector<char> deadline_recorded_;
  // Checkpoint/resume model: an aborted iteration keeps the fraction of
  // progress it had made; the job's next iteration start subtracts it.
  std::vector<SimTime> iter_started_;        // per job, start of in-flight iteration
  std::vector<double> iter_duration_;        // per job, planned duration
  std::vector<double> resume_credit_;        // per job, completed fraction in [0, 0.95]

  // Fault-injection state: per-server up/down transition counter (stale
  // ServerDown/Up events carry the epoch they were scheduled under and
  // are dropped when it no longer matches), and per-job fault-impact time
  // for the recovery-latency metric (-1 = not currently impacted).
  std::vector<std::uint64_t> server_epoch_;
  std::vector<SimTime> fault_stopped_since_;

  // Recovery-policy state: tasks currently held out of the queue by a
  // backoff window (their RetryRelease event re-admits them), and the
  // fault rollbacks each job has absorbed against its retry budget.
  std::vector<char> task_in_backoff_;
  std::vector<int> retries_used_;

  std::size_t jobs_completed_ = 0;
  std::size_t jobs_failed_ = 0;
  std::size_t overload_occurrences_ = 0;
  std::size_t migrations_ = 0;
  std::size_t preemptions_ = 0;
  std::size_t partial_releases_ = 0;
  std::size_t watchdog_evictions_ = 0;
  std::size_t iterations_run_ = 0;
  std::size_t server_failures_ = 0;
  std::size_t rack_outages_ = 0;
  std::size_t task_kills_ = 0;
  std::size_t crash_evictions_ = 0;
  std::size_t retry_backoffs_ = 0;
  double backoff_delay_seconds_total_ = 0.0;
  std::size_t crashes_absorbed_ = 0;   ///< crashes of capped servers with no victims
  std::size_t victimful_crashes_ = 0;  ///< crashes that evicted at least one task
  std::size_t iterations_rolled_back_ = 0;
  double inflight_work_lost_iterations_ = 0.0;  ///< discarded partial-iteration fractions
  double work_lost_gpu_seconds_ = 0.0;
  double recovery_seconds_sum_ = 0.0;
  std::size_t recoveries_ = 0;
  double sched_wall_ms_total_ = 0.0;
  double run_wall_ms_ = 0.0;  ///< wall-clock of run()'s event loop (0 if manually stepped)
  std::size_t sched_rounds_ = 0;
  // Link-contention accounting (all stay zero while
  // ClusterConfig::link_contention is off — the zero-when-disabled audit).
  double link_busy_seconds_ = 0.0;  ///< cross-server comm seconds under the link model
  double contention_slowdown_seconds_ = 0.0;  ///< comm seconds lost to link sharing
  std::uint64_t phase_offset_hits_ = 0;  ///< scheduler phase-offset changes applied
  int stall_ticks_ = 0;
  bool tick_armed_ = false;
};

}  // namespace mlfs
