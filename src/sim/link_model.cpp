#include "sim/link_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace mlfs {

namespace {

// Circular overlap of arcs [s1, s1+d1) and [s2, s2+d2) on the unit circle.
double circular_overlap(double s1, double d1, double s2, double d2) {
  MLFS_EXPECT(d1 >= 0.0 && d1 <= 1.0 && d2 >= 0.0 && d2 <= 1.0);
  // Linear-interval overlap of [a1, a1+d1) and [a2, a2+d2).
  const auto linear = [](double a1, double l1, double a2, double l2) {
    return std::max(0.0, std::min(a1 + l1, a2 + l2) - std::max(a1, a2));
  };
  // Unrolling the circle: arc 2 can intersect arc 1 directly or via the
  // wrap-around copies one period to either side.
  double ov = linear(s1, d1, s2, d2) + linear(s1, d1, s2 - 1.0, d2) +
              linear(s1, d1, s2 + 1.0, d2);
  return std::min(ov, std::min(d1, d2));
}

}  // namespace

void LinkModel::reset(std::size_t server_count, int servers_per_rack,
                      double nic_capacity_mbps, double uplink_capacity_mbps) {
  server_count_ = server_count;
  servers_per_rack_ = servers_per_rack;
  std::size_t racks = 0;
  if (servers_per_rack_ > 0) {
    racks = (server_count_ + static_cast<std::size_t>(servers_per_rack_) - 1) /
            static_cast<std::size_t>(servers_per_rack_);
  }
  capacity_.assign(server_count_ + racks, nic_capacity_mbps);
  for (std::size_t r = 0; r < racks; ++r) capacity_[server_count_ + r] = uplink_capacity_mbps;
  entries_.assign(capacity_.size(), {});
  flows_.clear();
  duty_.clear();
  phase_.clear();
}

void LinkModel::touch_job(JobId job) {
  if (job >= flows_.size()) {
    flows_.resize(job + 1);
    duty_.resize(job + 1, 1.0);
    phase_.resize(job + 1, 0.0);
  }
}

void LinkModel::set_job_duty_cycle(JobId job, double duty) {
  MLFS_EXPECT(duty > 0.0 && duty <= 1.0);
  touch_job(job);
  duty_[job] = duty;
}

double LinkModel::job_duty_cycle(JobId job) const {
  return job < duty_.size() ? duty_[job] : 1.0;
}

bool LinkModel::set_phase_offset(JobId job, double offset) {
  MLFS_EXPECT(offset >= 0.0 && offset < 1.0);
  touch_job(job);
  if (phase_[job] == offset) return false;
  phase_[job] = offset;
  return true;
}

double LinkModel::phase_offset(JobId job) const {
  return job < phase_.size() ? phase_[job] : 0.0;
}

double LinkModel::comm_overlap(JobId a, JobId b) const {
  return circular_overlap(phase_offset(a), job_duty_cycle(a), phase_offset(b),
                          job_duty_cycle(b));
}

int LinkModel::path_links(ServerId a, ServerId b, std::size_t out[4]) const {
  MLFS_EXPECT(a < server_count_ && b < server_count_ && a != b);
  int n = 0;
  out[n++] = nic_link(a);
  out[n++] = nic_link(b);
  if (servers_per_rack_ > 0) {
    const int ra = rack_of(a);
    const int rb = rack_of(b);
    if (ra != rb) {
      out[n++] = uplink_link(ra);
      out[n++] = uplink_link(rb);
    }
  }
  return n;
}

void LinkModel::add_flows(JobId job, const std::vector<Flow>& flows, int sign) {
  std::size_t links[4];
  for (const Flow& f : flows) {
    const int n = path_links(f.a, f.b, links);
    for (int i = 0; i < n; ++i) {
      std::vector<LinkEntry>& on_link = entries_[links[i]];
      const auto it = std::lower_bound(
          on_link.begin(), on_link.end(), job,
          [](const LinkEntry& e, JobId j) { return e.job < j; });
      if (sign > 0) {
        if (it != on_link.end() && it->job == job) {
          ++it->flows;
        } else {
          on_link.insert(it, LinkEntry{job, 1});
        }
      } else {
        MLFS_EXPECT(it != on_link.end() && it->job == job && it->flows > 0);
        if (--it->flows == 0) on_link.erase(it);
      }
    }
  }
}

void LinkModel::update_job_flows(JobId job, std::vector<Flow> flows) {
  touch_job(job);
  add_flows(job, flows_[job], -1);
  flows_[job] = std::move(flows);
  add_flows(job, flows_[job], +1);
}

const std::vector<LinkModel::Flow>& LinkModel::job_flows(JobId job) const {
  static const std::vector<Flow> kEmpty;
  return job < flows_.size() ? flows_[job] : kEmpty;
}

std::uint32_t LinkModel::total_flows_on(std::size_t link) const {
  std::uint32_t n = 0;
  for (const LinkEntry& e : entries_[link]) n += e.flows;
  return n;
}

double LinkModel::effective_concurrency(std::size_t link, JobId job) const {
  const double d = job_duty_cycle(job);
  double n = 0.0;
  bool present = false;
  for (const LinkEntry& e : entries_[link]) {
    if (e.job == job) {
      // The job's own flows are simultaneously active during its window.
      n += static_cast<double>(e.flows);
      present = true;
    } else {
      n += static_cast<double>(e.flows) * comm_overlap(job, e.job) / d;
    }
  }
  return present ? n : 0.0;
}

double LinkModel::flow_bandwidth(JobId job, ServerId a, ServerId b,
                                 double base_mbps) const {
  std::size_t links[4];
  const int n = path_links(a, b, links);
  double bw = base_mbps;
  for (int i = 0; i < n; ++i) {
    const double cap = capacity_[links[i]];
    if (cap <= 0.0) continue;  // unconstrained link class
    double conc = effective_concurrency(links[i], job);
    // A flow queried before registration (or on a link the job has no flow
    // on) still occupies the link itself while transferring, alongside
    // every overlap-weighted flow already registered there.
    if (conc == 0.0) {
      conc = 1.0;
      for (const LinkEntry& e : entries_[links[i]]) {
        if (e.job == job) continue;
        conc += static_cast<double>(e.flows) * comm_overlap(job, e.job) / job_duty_cycle(job);
      }
    }
    bw = std::min(bw, cap / conc);
  }
  return bw;
}

double LinkModel::share_sum(std::size_t link) const {
  double sum = 0.0;
  for (const LinkEntry& e : entries_[link]) {
    const double n_eff = effective_concurrency(link, e.job);
    MLFS_EXPECT(n_eff >= static_cast<double>(e.flows));
    sum += static_cast<double>(e.flows) * job_duty_cycle(e.job) / n_eff;
  }
  return sum;
}

bool LinkModel::equals(const LinkModel& other) const {
  if (server_count_ != other.server_count_ || servers_per_rack_ != other.servers_per_rack_ ||
      capacity_ != other.capacity_ || entries_ != other.entries_) {
    return false;
  }
  // Flow sets compare over the union of registered jobs (a job index absent
  // on one side is equivalent to an empty registration).
  const std::size_t jobs = std::max(flows_.size(), other.flows_.size());
  for (JobId j = 0; j < jobs; ++j) {
    if (!(job_flows(j) == other.job_flows(j))) return false;
    if (job_duty_cycle(j) != other.job_duty_cycle(j)) return false;
    if (phase_offset(j) != other.phase_offset(j)) return false;
  }
  return true;
}

void LinkModel::save_state(io::BinWriter& w) const {
  // Static structure (capacities, rack layout) comes from the config; only
  // the dynamic per-job state is written. Flow sets are a pure function of
  // placements, but persisting them keeps restore independent of replay
  // order and lets the auditor's conservation check run immediately.
  w.u64(flows_.size());
  for (JobId j = 0; j < flows_.size(); ++j) {
    w.vec(flows_[j], [&w](const Flow& f) {
      w.u64(f.a);
      w.u64(f.b);
    });
    w.f64(duty_[j]);
    w.f64(phase_[j]);
  }
}

void LinkModel::restore_state(io::BinReader& r) {
  // Rebuild the per-link tables by re-registering every job's flow set —
  // insertion is order-independent (entries stay sorted by job id), so the
  // result is bit-identical to the saving model's incremental state.
  for (std::vector<LinkEntry>& on_link : entries_) on_link.clear();
  flows_.clear();
  duty_.clear();
  phase_.clear();
  const std::uint64_t jobs = r.u64();
  for (std::uint64_t j = 0; j < jobs; ++j) {
    std::vector<Flow> flows = r.vec<Flow>([&r] {
      Flow f;
      f.a = static_cast<ServerId>(r.u64());
      f.b = static_cast<ServerId>(r.u64());
      return f;
    });
    const double duty = r.f64();
    const double phase = r.f64();
    const JobId id = static_cast<JobId>(j);
    touch_job(id);
    duty_[id] = duty;
    phase_[id] = phase;
    update_job_flows(id, std::move(flows));
  }
}

}  // namespace mlfs
