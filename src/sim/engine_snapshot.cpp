// SimEngine snapshot/restore (see DESIGN.md, "Snapshot & restore").
//
// The restore protocol: construct a fresh SimEngine from the *same*
// (ClusterConfig, EngineConfig, specs, scheduler) arguments the snapshot
// was written under — that rebuilds all static structure (specs, DAGs,
// curves, server shapes) — then call restore_snapshot(), which overwrites
// every piece of dynamic state. config_fingerprint() guards the "same
// arguments" precondition; the SnapshotReader validates the whole file
// (magic, version, framing, checksum, fingerprint) before a single engine
// field is touched, so a rejected file leaves the engine unchanged.

#include <bit>
#include <sstream>
#include <vector>

#include "common/binio.hpp"
#include "sim/engine.hpp"
#include "sim/journal.hpp"
#include "sim/snapshot.hpp"
#include "workload/model_zoo.hpp"

namespace mlfs {

namespace {

void write_rng(io::BinWriter& w, const Rng& rng) {
  for (const std::uint64_t word : rng.state()) w.u64(word);
}

void read_rng(io::BinReader& r, Rng& rng) {
  std::array<std::uint64_t, 4> state;
  for (std::uint64_t& word : state) word = r.u64();
  rng.set_state(state);
}

void write_char_vec(io::BinWriter& w, const std::vector<char>& v) {
  w.vec(v, [&w](char c) { w.u8(static_cast<std::uint8_t>(c)); });
}

std::vector<char> read_char_vec(io::BinReader& r) {
  return r.vec<char>([&r] { return static_cast<char>(r.u8()); });
}

}  // namespace

std::uint64_t SimEngine::config_fingerprint() const {
  // Canonical little-endian serialization of everything that determines
  // the simulation's static structure and its random streams; AuditConfig
  // is deliberately excluded (the auditor is a pure observer — restoring
  // under different audit settings is legitimate and resyncs cleanly).
  std::ostringstream os;
  io::BinWriter w(os);

  w.u64(cluster_config_.server_count);
  w.i64(cluster_config_.gpus_per_server);
  w.u64(cluster_config_.total_gpus);
  w.f64(cluster_config_.server_bandwidth_mbps);
  w.f64(cluster_config_.effective_flow_bandwidth_mbps);
  w.i64(cluster_config_.servers_per_rack);
  w.f64(cluster_config_.inter_rack_flow_bandwidth_mbps);
  w.f64(cluster_config_.slow_server_fraction);
  w.f64(cluster_config_.slow_server_speed);
  w.boolean(cluster_config_.incremental_load_index);
  w.boolean(cluster_config_.placement_bucket_index);
  w.i64(cluster_config_.placement_index_buckets);
  w.boolean(cluster_config_.debug_slot_leak);
  w.boolean(cluster_config_.link_contention);
  w.f64(cluster_config_.nic_capacity_mbps);
  w.f64(cluster_config_.rack_uplink_capacity_mbps);
  w.boolean(cluster_config_.duty_cycles);

  w.f64(config_.tick_interval);
  w.f64(config_.hr);
  w.f64(config_.usage_noise_sigma);
  w.f64(config_.migration_fixed_penalty_seconds);
  w.f64(config_.max_sim_time);
  w.u64(config_.seed);
  w.i64(config_.optstop_check_interval);
  w.f64(config_.optstop_near_max_fraction);
  w.f64(config_.optstop_confidence_threshold);
  w.i64(config_.stall_ticks_before_eviction);
  w.f64(config_.straggler_probability);
  w.f64(config_.straggler_slowdown);
  w.i64(config_.straggler_replicas);
  w.f64(config_.partial_placement_timeout);

  const FaultConfig& f = config_.fault;
  w.f64(f.server_mtbf_hours);
  w.f64(f.server_mttr_hours);
  w.f64(f.task_kill_probability);
  w.f64(f.rack_mtbf_hours);
  w.f64(f.rack_mttr_hours);
  w.i64(f.checkpoint_interval_iterations);
  w.f64(f.flaky_server_fraction);
  w.f64(f.flaky_rate_multiplier);

  const RecoveryConfig& rc = config_.recovery;
  w.boolean(rc.enabled);
  w.f64(rc.kill_weight);
  w.f64(rc.score_halflife_hours);
  w.boolean(rc.quarantine_enabled);
  w.f64(rc.quarantine_score_threshold);
  w.f64(rc.quarantine_base_minutes);
  w.f64(rc.quarantine_backoff_factor);
  w.f64(rc.quarantine_max_minutes);
  w.f64(rc.probation_minutes);
  w.i64(rc.probation_task_cap);
  w.f64(rc.min_active_fraction);
  w.boolean(rc.retry_backoff_enabled);
  w.i64(rc.retry_budget);
  w.f64(rc.backoff_base_seconds);
  w.f64(rc.backoff_factor);
  w.f64(rc.backoff_max_seconds);
  w.f64(rc.backoff_jitter);
  w.boolean(rc.adaptive_checkpoint);
  w.f64(rc.checkpoint_cost_seconds);
  w.i64(rc.max_checkpoint_interval);
  w.boolean(rc.spread_placement);

  // Prediction service: every field shapes the fit chains (enabled /
  // legacy produce identical results but different cached state and
  // counters; coarsening changes results outright).
  const PredictConfig& pc = config_.predict;
  w.boolean(pc.enabled);
  w.f64(pc.warm_step_scale);
  w.f64(pc.warm_step_floor);
  w.i64(pc.restart_budget);
  w.f64(pc.regression_factor);
  w.f64(pc.regression_epsilon);
  w.f64(pc.settle_factor);
  w.f64(pc.settle_epsilon);
  w.f64(pc.freeze_weight_threshold);
  w.i64(pc.freeze_streak);
  w.i64(pc.freeze_min_links);
  w.boolean(pc.coarsen);
  w.i64(pc.coarsen_head);
  w.i64(pc.coarsen_per_octave);

  w.str(scheduler_.name());
  w.str(load_controller_ != nullptr ? load_controller_->name() : std::string());

  // Base workload only: jobs streamed in after construction are dynamic
  // inputs (journaled, and carried in the snapshot's "injected" section),
  // so they must not invalidate the fingerprint — a recovering engine is
  // constructed injection-free and must still match. write_job_spec's
  // field order is this fingerprint's historical order, so non-streaming
  // runs keep the exact pre-v5 value.
  w.u64(static_cast<std::uint64_t>(base_job_count_));
  for (std::size_t i = 0; i < base_job_count_; ++i) {
    write_job_spec(w, cluster_.job(static_cast<JobId>(i)).spec());
  }

  const std::string bytes = os.str();
  return fnv1a(bytes.data(), bytes.size());
}

void SimEngine::save_snapshot(std::ostream& os) const {
  SnapshotWriter snap(config_fingerprint());

  {
    io::BinWriter& w = snap.section("engine");
    w.f64(now_);
    w.u64(event_seq_);
    w.u64(events_processed_);
    w.u64(event_hash_);
    write_rng(w, rng_);
    write_rng(w, fault_rng_);
    write_rng(w, recovery_rng_);
    w.vec(queue_, [&w](TaskId t) { w.u64(t); });
    w.vec_u64(job_epoch_);
    w.vec_f64(waiting_since_);
    w.vec_f64(partial_since_);
    write_char_vec(w, deadline_recorded_);
    w.vec_f64(iter_started_);
    w.vec_f64(iter_duration_);
    w.vec_f64(resume_credit_);
    w.vec_u64(server_epoch_);
    w.vec_f64(fault_stopped_since_);
    write_char_vec(w, task_in_backoff_);
    w.vec(retries_used_, [&w](int v) { w.i64(v); });
    w.u64(jobs_completed_);
    w.u64(jobs_failed_);
    w.u64(overload_occurrences_);
    w.u64(migrations_);
    w.u64(preemptions_);
    w.u64(partial_releases_);
    w.u64(watchdog_evictions_);
    w.u64(iterations_run_);
    w.u64(server_failures_);
    w.u64(rack_outages_);
    w.u64(task_kills_);
    w.u64(crash_evictions_);
    w.u64(retry_backoffs_);
    w.f64(backoff_delay_seconds_total_);
    w.u64(crashes_absorbed_);
    w.u64(victimful_crashes_);
    w.u64(iterations_rolled_back_);
    w.f64(inflight_work_lost_iterations_);
    w.f64(work_lost_gpu_seconds_);
    w.f64(recovery_seconds_sum_);
    w.u64(recoveries_);
    w.f64(sched_wall_ms_total_);
    w.u64(sched_rounds_);
    w.f64(link_busy_seconds_);
    w.f64(contention_slowdown_seconds_);
    w.u64(phase_offset_hits_);
    w.i64(stall_ticks_);
    w.boolean(tick_armed_);
  }

  {
    // The pending event queue, drained from a copy in priority order.
    // Event ordering is a total order (seq is a unique FIFO tiebreak), so
    // re-pushing on restore reproduces the identical pop sequence.
    io::BinWriter& w = snap.section("events");
    auto pending = events_;
    w.u64(pending.size());
    while (!pending.empty()) {
      const Event& ev = pending.top();
      w.f64(ev.time);
      w.u64(ev.seq);
      w.u8(static_cast<std::uint8_t>(ev.type));
      w.u64(ev.job);
      w.u64(ev.epoch);
      pending.pop();
    }
  }

  {
    // Jobs streamed in after construction. Restore replays this section
    // before any dynamic state so every per-job container regains the
    // grown size the other sections were serialized under.
    io::BinWriter& w = snap.section("injected");
    w.u64(injected_specs_.size());
    for (const JobSpec& spec : injected_specs_) write_job_spec(w, spec);
  }

  cluster_.save_state(snap.section("cluster"));
  if (cluster_config_.link_contention) cluster_.save_link_state(snap.section("links"));
  if (health_) health_->save_state(snap.section("health"));
  prediction_.runtime().save_state(snap.section("predictor"));
  prediction_.save_state(snap.section("predict"));

  // Opaque per-component payloads: each component alone interprets its
  // bytes (Scheduler::save_state contract).
  scheduler_.save_state(snap.section("scheduler").stream());
  if (load_controller_ != nullptr) {
    load_controller_->save_state(snap.section("controller").stream());
  }

  snap.write(os);
}

void SimEngine::restore_snapshot(std::istream& is) {
  // Validates the whole file — throws SnapshotError before any engine
  // state is touched.
  SnapshotReader snap(is, config_fingerprint());

  // The fingerprint covers recovery.enabled and the controller identity,
  // so these can only diverge on a hand-crafted file; still never let a
  // mismatch silently drop state.
  if (snap.has_section("health") != (health_ != nullptr)) {
    throw SnapshotError("health", 0,
                        "health section presence does not match the engine's recovery config");
  }
  if (snap.has_section("controller") != (load_controller_ != nullptr)) {
    throw SnapshotError("controller", 0,
                        "controller section presence does not match the engine");
  }
  if (snap.has_section("links") != cluster_config_.link_contention) {
    throw SnapshotError("links", 0,
                        "links section presence does not match the link-contention config");
  }

  {
    // Injected jobs first: registering them re-grows the cluster/engine to
    // the size every following section was serialized under. The target
    // engine must be injection-free (freshly constructed from the base
    // workload) — re-registering on top of live injections would duplicate
    // jobs.
    std::istringstream section = snap.section("injected");
    io::BinReader r(section);
    const std::uint64_t count = r.u64();
    if (!injected_specs_.empty()) {
      throw SnapshotError("injected", 0,
                          "restore target already has injected jobs; restore requires a "
                          "freshly constructed engine");
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      JobSpec spec = read_job_spec(r);
      MLFS_EXPECT(spec.id == static_cast<JobId>(cluster_.job_count()));
      auto inst = ModelZoo::instantiate(spec, static_cast<TaskId>(cluster_.task_count()));
      cluster_.register_job(std::move(inst.job), std::move(inst.tasks));
      injected_specs_.push_back(spec);
    }
  }

  {
    std::istringstream section = snap.section("engine");
    io::BinReader r(section);
    now_ = r.f64();
    event_seq_ = r.u64();
    events_processed_ = r.u64();
    event_hash_ = r.u64();
    read_rng(r, rng_);
    read_rng(r, fault_rng_);
    read_rng(r, recovery_rng_);
    queue_ = r.vec<TaskId>([&r] { return static_cast<TaskId>(r.u64()); });
    job_epoch_ = r.vec_u64();
    waiting_since_ = r.vec_f64();
    partial_since_ = r.vec_f64();
    deadline_recorded_ = read_char_vec(r);
    iter_started_ = r.vec_f64();
    iter_duration_ = r.vec_f64();
    resume_credit_ = r.vec_f64();
    server_epoch_ = r.vec_u64();
    fault_stopped_since_ = r.vec_f64();
    task_in_backoff_ = read_char_vec(r);
    retries_used_ = r.vec<int>([&r] { return static_cast<int>(r.i64()); });
    jobs_completed_ = static_cast<std::size_t>(r.u64());
    jobs_failed_ = static_cast<std::size_t>(r.u64());
    overload_occurrences_ = static_cast<std::size_t>(r.u64());
    migrations_ = static_cast<std::size_t>(r.u64());
    preemptions_ = static_cast<std::size_t>(r.u64());
    partial_releases_ = static_cast<std::size_t>(r.u64());
    watchdog_evictions_ = static_cast<std::size_t>(r.u64());
    iterations_run_ = static_cast<std::size_t>(r.u64());
    server_failures_ = static_cast<std::size_t>(r.u64());
    rack_outages_ = static_cast<std::size_t>(r.u64());
    task_kills_ = static_cast<std::size_t>(r.u64());
    crash_evictions_ = static_cast<std::size_t>(r.u64());
    retry_backoffs_ = static_cast<std::size_t>(r.u64());
    backoff_delay_seconds_total_ = r.f64();
    crashes_absorbed_ = static_cast<std::size_t>(r.u64());
    victimful_crashes_ = static_cast<std::size_t>(r.u64());
    iterations_rolled_back_ = static_cast<std::size_t>(r.u64());
    inflight_work_lost_iterations_ = r.f64();
    work_lost_gpu_seconds_ = r.f64();
    recovery_seconds_sum_ = r.f64();
    recoveries_ = static_cast<std::size_t>(r.u64());
    sched_wall_ms_total_ = r.f64();
    sched_rounds_ = static_cast<std::size_t>(r.u64());
    link_busy_seconds_ = r.f64();
    contention_slowdown_seconds_ = r.f64();
    phase_offset_hits_ = r.u64();
    stall_ticks_ = static_cast<int>(r.i64());
    tick_armed_ = r.boolean();
    MLFS_EXPECT(job_epoch_.size() == cluster_.job_count());
    MLFS_EXPECT(server_epoch_.size() == cluster_.server_count());
    MLFS_EXPECT(task_in_backoff_.size() == cluster_.task_count());
  }

  {
    std::istringstream section = snap.section("events");
    io::BinReader r(section);
    events_ = {};  // drop the fresh-constructor arrivals/crash seeds
    const std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      Event ev;
      ev.time = r.f64();
      ev.seq = r.u64();
      ev.type = static_cast<EventType>(r.u8());
      ev.job = static_cast<JobId>(r.u64());
      ev.epoch = r.u64();
      events_.push(ev);
    }
  }

  {
    std::istringstream section = snap.section("cluster");
    io::BinReader r(section);
    cluster_.restore_state(r);
  }
  if (cluster_config_.link_contention) {
    std::istringstream section = snap.section("links");
    io::BinReader r(section);
    cluster_.restore_link_state(r);
  }
  if (health_) {
    std::istringstream section = snap.section("health");
    io::BinReader r(section);
    health_->restore_state(r);
  }
  {
    std::istringstream section = snap.section("predictor");
    io::BinReader r(section);
    prediction_.runtime().restore_state(r);
  }
  {
    std::istringstream section = snap.section("predict");
    io::BinReader r(section);
    prediction_.restore_state(r);
  }

  {
    std::istringstream section = snap.section("scheduler");
    scheduler_.restore_state(section);
  }
  if (load_controller_ != nullptr) {
    std::istringstream section = snap.section("controller");
    load_controller_->restore_state(section);
  }

  // The auditor is never serialized: it re-derives its observational state
  // from the restored engine (keeping the stride phase aligned) and
  // immediately sweeps the full invariant catalog.
  if (auditor_) auditor_->resync_after_restore();
}

}  // namespace mlfs
