// Versioned binary snapshot container for SimEngine::save_snapshot /
// restore_snapshot (see DESIGN.md, "Snapshot & restore").
//
// File layout (little-endian throughout):
//
//   magic    8 bytes  "MLFSSNAP"
//   version  u32      kSnapshotVersion
//   fprint   u64      config fingerprint of the engine that wrote it
//   count    u32      number of sections
//   sections count ×  [ u32 name length | name bytes |
//                       u64 payload length | payload bytes ]
//   checksum u64      FNV-1a over every byte before this field
//
// SnapshotReader slurps and validates the WHOLE file — magic, version,
// fingerprint, section framing, checksum — before handing out a single
// section, so a truncated/corrupt/mismatched snapshot is rejected up front
// with a structured SnapshotError and the engine being restored is never
// partially mutated.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/binio.hpp"
#include "common/expect.hpp"

namespace mlfs {

inline constexpr char kSnapshotMagic[8] = {'M', 'L', 'F', 'S', 'S', 'N', 'A', 'P'};
/// v3: added the "predict" section (PredictionService curve-fit caches +
/// counters) alongside the existing "predictor" (runtime predictor)
/// section. v4: added the conditional "links" section (LinkModel flow
/// sets, duty cycles, phase offsets — written iff link contention is on)
/// and the engine section's link-contention counters. v5: added the
/// always-written "injected" section (JobSpecs streamed into the live
/// engine after construction — restore re-registers them before touching
/// dynamic state) and narrowed the config fingerprint to the base
/// workload, so injections don't invalidate it. Pre-v5 files are rejected
/// by the version check.
inline constexpr std::uint32_t kSnapshotVersion = 5;

/// Structured rejection of a snapshot file. Subclasses ContractViolation so
/// existing catch sites handle it; carries the failing section (or the
/// pseudo-sections "header" / "checksum") and the byte offset at which
/// validation failed.
class SnapshotError : public ContractViolation {
 public:
  SnapshotError(std::string section, std::uint64_t offset, const std::string& detail);

  const std::string& section() const { return section_; }
  std::uint64_t offset() const { return offset_; }

 private:
  std::string section_;
  std::uint64_t offset_;
};

/// FNV-1a over a byte range (the snapshot checksum; also reused for the
/// engine's config fingerprint and event-stream hash).
std::uint64_t fnv1a(const char* data, std::size_t size,
                    std::uint64_t h = 1469598103934665603ull);
inline std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

/// Accumulates named sections in memory, then writes the framed + check-
/// summed file in one pass. Section payloads are written through the
/// io::BinWriter returned by section().
class SnapshotWriter {
 public:
  explicit SnapshotWriter(std::uint64_t config_fingerprint)
      : fingerprint_(config_fingerprint) {}

  /// Starts a new section; the returned writer is valid until the next
  /// section() call or write(). Section names must be unique.
  io::BinWriter& section(const std::string& name);

  /// Serializes header + sections + trailing checksum.
  void write(std::ostream& os) const;

 private:
  struct Section {
    std::string name;
    std::ostringstream payload;
  };

  std::uint64_t fingerprint_;
  std::vector<Section> sections_;
  std::unique_ptr<io::BinWriter> current_;
};

/// Parses and validates a snapshot file up front (magic, version, config
/// fingerprint, section framing, whole-file checksum). Construction throws
/// SnapshotError on any defect; afterwards section payloads are served from
/// memory.
class SnapshotReader {
 public:
  /// `expected_fingerprint` is the restoring engine's own fingerprint; a
  /// mismatch (snapshot written under different configs / scheduler /
  /// workload) is rejected as "header".
  SnapshotReader(std::istream& is, std::uint64_t expected_fingerprint);

  bool has_section(const std::string& name) const;

  /// The named section's payload as a fresh stream; throws SnapshotError
  /// when the section is missing.
  std::istringstream section(const std::string& name) const;

  std::uint32_t version() const { return version_; }
  std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  struct Section {
    std::string name;
    std::uint64_t offset = 0;  ///< payload start within the file
    std::string payload;
  };
  const Section* find(const std::string& name) const;

  std::uint32_t version_ = 0;
  std::uint64_t fingerprint_ = 0;
  std::vector<Section> sections_;
};

}  // namespace mlfs
