// A simulated multi-GPU server. Holds the placement of tasks onto GPUs and
// answers the utilization queries the schedulers make: per-resource server
// utilization U_s (CPU/MEM/NET as fractions of server capacity, GPU as mean
// GPU load), per-GPU load, and overload checks against the threshold h_r
// (§3.3.2).
//
// Task resource *usage* at time t is demand × usage_factor; the engine
// resamples usage_factor each tick (lognormal noise), which is what makes
// utilizations fluctuate and servers drift into overload the way real
// ML-cluster servers do. Usage sums are maintained incrementally so every
// scheduler query (utilization, gpu_load, feasibility) is O(1) — the
// placement loops call them once per server per queued task.
#pragma once

#include <vector>

#include "common/binio.hpp"
#include "workload/job.hpp"

namespace mlfs {

class Cluster;  // owns the task pool this server indexes into

class Server {
 public:
  Server(ServerId id, int gpu_count, double speed = 1.0);

  ServerId id() const { return id_; }
  int gpu_count() const { return gpu_count_; }

  /// Relative compute speed of this server's GPUs (1.0 = the reference
  /// tier; < 1 for the older tier under the heterogeneity extension).
  double speed() const { return speed_; }

  /// Liveness under the fault-injection model: a down (crashed) server
  /// hosts no tasks and accepts no placements until it recovers. Toggled
  /// only through Cluster::set_server_up so invariants stay centralized.
  bool up() const { return up_; }

  /// Recovery-policy placement cap (sim/health.hpp): -1 = unrestricted,
  /// 0 = quarantined (no new placements), k > 0 = probation (at most k
  /// hosted tasks). Existing tasks are never evicted by the cap; it only
  /// gates admission. Set only through Cluster::set_placement_cap.
  int placement_cap() const { return placement_cap_; }

  /// True iff the server may receive one more task: up, and under its
  /// placement cap. This — not up() — is the placement-eligibility gate
  /// every placement path funnels through; with the default cap of -1 it
  /// is exactly up().
  bool accepts_placements() const {
    return up_ && (placement_cap_ < 0 ||
                   static_cast<int>(tasks_.size()) < placement_cap_);
  }

  const std::vector<TaskId>& tasks() const { return tasks_; }
  const std::vector<TaskId>& tasks_on_gpu(int gpu) const;
  std::size_t task_count() const { return tasks_.size(); }

  /// Placement bookkeeping; called only by Cluster (which keeps the task's
  /// usage contribution in sync with these calls).
  void attach_task(const Task& task, int gpu);
  void detach_task(const Task& task, int gpu);
  /// Adjusts the cached sums when a placed task's usage_factor changes.
  void adjust_usage(const Task& task, double old_factor, double new_factor);

  /// Current utilization vector U_s: GPU component is the mean load across
  /// GPUs; CPU/MEM/NET are summed task usages (can exceed 1 = overload).
  ResourceVector utilization() const;

  /// Load of one GPU: sum of gpu-demand × usage_factor of its tasks.
  double gpu_load(int gpu) const;

  /// Index of the least-loaded GPU.
  int least_loaded_gpu() const;

  /// GPU the task should land on: the least-loaded GPU when it fits under
  /// `hr`, otherwise the least-loaded *fitting* GPU (guards placement
  /// against least-loaded-only probing when per-GPU feasibility diverges),
  /// or kNoGpu when no GPU fits.
  int best_fitting_gpu(const Task& task, double hr) const;

  /// `best_fitting_gpu` / `fits_without_overload` with the task's usage
  /// vector (demand × usage_factor) precomputed by the caller. The
  /// placement hot loop evaluates every underloaded server for the same
  /// task, so hoisting the multiply out of the per-candidate checks saves
  /// one ResourceVector product per candidate; the arithmetic — and hence
  /// every decision — is unchanged. The Task overloads delegate here.
  int best_fitting_gpu_for_usage(const ResourceVector& usage, double hr) const;
  bool fits_usage_without_overload(const ResourceVector& usage, int gpu, double hr) const;

  /// True iff any resource utilization or any GPU load exceeds `hr`.
  bool overloaded(double hr) const;

  /// Snapshot support (sim/snapshot.hpp): serializes/restores the dynamic
  /// placement state — up/cap, the task and per-GPU lists *in insertion
  /// order* (resample_usage's RNG draw order and crash eviction order
  /// iterate them, so the order is semantically load-bearing), and the
  /// incremental usage sums bit-exactly (recomputing them would reorder
  /// the float accumulation history and break bit-identical resume).
  void save_state(io::BinWriter& w) const;
  void restore_state(io::BinReader& r);

  /// True iff the server is up and stays within `hr` on every resource
  /// and on the target GPU after hypothetically adding `task` to `gpu` —
  /// the placement feasibility check (§3.3.2: the chosen server "will not
  /// be overloaded (on each resource and its least-loaded GPU) by hosting
  /// the task"). Every placement path (baselines and MLF alike) funnels
  /// through this, which is what keeps down servers unplaceable without
  /// per-scheduler changes.
  bool fits_without_overload(const Task& task, int gpu, double hr) const;

 private:
  friend class Cluster;  // sole writer of up_ / placement_cap_

  ServerId id_;
  int gpu_count_;
  double speed_;
  bool up_ = true;
  int placement_cap_ = -1;
  std::vector<TaskId> tasks_;
  std::vector<std::vector<TaskId>> gpu_tasks_;
  // Incremental usage sums (see class comment).
  double cpu_sum_ = 0.0;
  double mem_sum_ = 0.0;
  double net_sum_ = 0.0;
  std::vector<double> gpu_sums_;
};

}  // namespace mlfs
