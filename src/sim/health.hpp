// Failure-aware recovery policies (robustness extension on top of the
// fault-injection subsystem; see DESIGN.md "Recovery policies").
//
// Four opt-in mechanisms turn the fault model from a pure stressor into
// something the scheduler mitigates:
//  * server health tracking — per-server exponentially-decayed crash/kill
//    score plus an observed-MTBF estimator fed by the fault events;
//  * quarantine with probation — servers whose score crosses a threshold
//    are excluded from the shared placement funnel for a backoff-growing
//    window, then probationally re-admitted under a task cap, guarded by
//    a safety valve that never quarantines below a minimum active
//    capacity;
//  * retry budgets + jittered exponential backoff — fault-killed tasks
//    re-enter the queue after a backoff delay instead of instantly, and a
//    job that exhausts its retry budget becomes failed-permanent
//    (JobState::Failed);
//  * adaptive checkpointing — per-job checkpoint interval from the
//    Young/Daly approximation sqrt(2 · MTBF · checkpoint_cost) using the
//    live MTBF estimate.
//
// Everything defaults off: a default RecoveryConfig leaves the engine
// bit-identical to a run without this subsystem (the determinism tests
// prove it the same way MlfsConfig::legacy_hot_path was proven).
#pragma once

#include <cstddef>
#include <vector>

#include "common/binio.hpp"
#include "common/sim_time.hpp"
#include "workload/ids.hpp"

namespace mlfs {

/// Opt-in recovery policies. `enabled` is the master switch: when false the
/// engine never consults the tracker, draws no recovery randomness, and
/// behaves bitwise-identically to a build without the subsystem.
struct RecoveryConfig {
  bool enabled = false;

  // -- server health score (exponentially decayed event count) --
  /// A crash adds 1.0 to the server's health score; a transient task kill
  /// adds this much (kills are weaker evidence of a bad machine).
  double kill_weight = 0.25;
  /// Half-life of the health score, hours: events older than a few
  /// half-lives stop counting against a server.
  double score_halflife_hours = 6.0;

  // -- quarantine / probation --
  bool quarantine_enabled = true;
  /// Score at or above which a recovering server is quarantined instead of
  /// re-admitted to the placement funnel.
  double quarantine_score_threshold = 2.0;
  /// First quarantine window, minutes; each subsequent quarantine of the
  /// same server multiplies the window by `quarantine_backoff_factor`, up
  /// to `quarantine_max_minutes`.
  double quarantine_base_minutes = 30.0;
  double quarantine_backoff_factor = 2.0;
  double quarantine_max_minutes = 480.0;
  /// After the quarantine window the server serves a probation period
  /// under a placement cap; surviving it crash-free restores full service.
  double probation_minutes = 60.0;
  int probation_task_cap = 1;
  /// Safety valve: quarantining never drops the active (up and
  /// not-quarantined) server count below
  /// max(1, ceil(min_active_fraction × server_count)).
  double min_active_fraction = 0.75;

  // -- retry budget + backoff re-admission --
  bool retry_backoff_enabled = true;
  /// Fault-caused rollbacks a job may absorb before it is marked
  /// failed-permanent; 0 = unlimited.
  int retry_budget = 0;
  /// Backoff before a fault-killed task re-enters the queue:
  /// min(base · factor^retries, max) · (1 + jitter · U[0,1)).
  double backoff_base_seconds = 30.0;
  double backoff_factor = 2.0;
  double backoff_max_seconds = 1800.0;
  double backoff_jitter = 0.25;

  // -- adaptive checkpointing --
  /// Replace FaultConfig::checkpoint_interval_iterations with the
  /// Young/Daly interval computed from the observed MTBF. Checkpointing
  /// stops being free: every checkpointed iteration is charged
  /// `checkpoint_cost_seconds`.
  bool adaptive_checkpoint = false;
  double checkpoint_cost_seconds = 2.0;
  int max_checkpoint_interval = 50;

  // -- fault-domain placement --
  /// Penalize packing a gang into one rack (PlacementParams::spread_racks
  /// is derived from this at request-build time; see exp/runner.cpp).
  bool spread_placement = false;

  /// Throws ContractViolation on nonsensical values (negative rates,
  /// non-positive windows, jitter outside [0, 1], ...).
  void validate() const;
};

/// Backoff before retry `prior_retries + 1` (0-based count of retries the
/// job has already absorbed). `jitter_u` is a uniform [0,1) draw supplied
/// by the caller so the schedule itself stays a pure function.
double backoff_delay_seconds(const RecoveryConfig& config, int prior_retries, double jitter_u);

/// Young/Daly optimal checkpoint period sqrt(2 · MTBF · cost), seconds.
/// Returns 0 when either input is non-positive (no estimate).
double young_daly_interval_seconds(double mtbf_seconds, double checkpoint_cost_seconds);

/// The Young/Daly period expressed in whole iterations of
/// `iteration_seconds` each, clamped to [1, max_interval].
int young_daly_checkpoint_iterations(double mtbf_seconds, double checkpoint_cost_seconds,
                                     double iteration_seconds, int max_interval);

enum class ServerHealth { Healthy, Quarantined, Probation };

/// Per-server health bookkeeping driven by the engine's fault events.
/// Placement-side effects are expressed as placement-cap changes
/// (Cluster::set_placement_cap): -1 = unrestricted, 0 = quarantined,
/// k > 0 = probation cap.
class ServerHealthTracker {
 public:
  ServerHealthTracker(const RecoveryConfig& config, std::size_t server_count);

  /// A crash of `server` at `now` (closes its uptime interval, bumps the
  /// MTBF estimator, adds 1.0 to the decayed score).
  void record_crash(ServerId server, SimTime now);
  /// A transient task kill hosted on `server` (adds `kill_weight`).
  void record_task_kill(ServerId server, SimTime now);
  /// The server came back up at `now` (reopens its uptime interval).
  void record_recovery(ServerId server, SimTime now);

  /// Decides, at re-admission (or after a kill burst), whether `server`
  /// should be quarantined: score above threshold AND the safety valve
  /// allows losing one more active server. On success the server is
  /// Quarantined until now + its (backoff-grown) window and the call
  /// returns true; the caller applies the placement cap.
  bool try_quarantine(ServerId server, SimTime now);

  /// One placement-cap change the engine must apply.
  struct CapChange {
    ServerId server;
    int cap;  ///< -1 unrestricted, 0 none, k probation cap
  };
  /// Advances the quarantine → probation → healthy state machine to `now`
  /// and returns the cap changes to apply, in ascending server order.
  std::vector<CapChange> advance(SimTime now);

  /// Observed mean time between crashes, seconds, across the fleet. Falls
  /// back to hours(fallback_mtbf_hours) until at least 3 crashes have been
  /// observed; 0 when there is no fallback either.
  double observed_mtbf_seconds(double fallback_mtbf_hours) const;

  ServerHealth health(ServerId server) const { return state_[server].health; }
  /// The placement cap the server's current health state implies
  /// (Cluster::set_placement_cap semantics).
  int placement_cap_for(ServerId server) const;
  double score(ServerId server, SimTime now) const;
  std::size_t quarantines() const { return quarantines_; }
  /// Times the safety valve vetoed a quarantine.
  std::size_t valve_saves() const { return valve_saves_; }

  /// Snapshot support: serializes/restores every per-server EWMA score,
  /// quarantine window, uptime interval, and the fleet-wide counters —
  /// the scores decay lazily (score_time), so the pair must round-trip
  /// bit-exactly for post-restore decay arithmetic to match.
  void save_state(io::BinWriter& w) const;
  void restore_state(io::BinReader& r);

 private:
  struct ServerState {
    ServerHealth health = ServerHealth::Healthy;
    double score = 0.0;         ///< decayed event count as of score_time
    SimTime score_time = 0.0;   ///< when `score` was last brought current
    bool up = true;
    SimTime up_since = 0.0;
    SimTime window_until = 0.0;  ///< quarantine or probation end
    int quarantine_count = 0;    ///< drives the window backoff
  };

  void decay_score(ServerState& s, SimTime now) const;
  std::size_t active_servers() const;

  RecoveryConfig config_;
  std::vector<ServerState> state_;
  double uptime_sum_ = 0.0;  ///< closed up-intervals, seconds
  std::size_t crashes_ = 0;
  std::size_t quarantines_ = 0;
  std::size_t valve_saves_ = 0;
};

}  // namespace mlfs
