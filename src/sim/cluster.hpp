// The cluster: the server fleet plus the global task and job pools, the
// placement API, and the bandwidth-cost ledger. Everything the schedulers
// read and mutate lives here; the engine drives time on top of it.
#pragma once

#include <vector>

#include "sim/link_model.hpp"
#include "sim/placement_index.hpp"
#include "sim/server.hpp"
#include "workload/job.hpp"

namespace mlfs {

struct ClusterConfig {
  std::size_t server_count = 20;
  int gpus_per_server = 4;
  /// NIC line rate per server (MB/s); used for migration state transfers
  /// and the bandwidth ledger's accounting basis.
  double server_bandwidth_mbps = 1000.0;

  /// Effective per-flow share of the NIC under the contention of many
  /// concurrent training flows (MB/s); converts per-iteration
  /// communication volumes into critical-path seconds. The paper's
  /// premise — "communication overhead between GPUs is 970MB-3168MB per
  /// mini-batch" — is that this is a first-order cost, which is what
  /// makes communication-aware placement (§3.3.2) matter.
  double effective_flow_bandwidth_mbps = 500.0;

  // --- extensions beyond the paper (its §5 limitations / §6 future work) -

  /// Rack topology: servers_per_rack > 0 groups consecutive servers into
  /// racks; flows crossing racks traverse the oversubscribed core and get
  /// the slower share below. 0 = flat network (the paper's model).
  int servers_per_rack = 0;
  double inter_rack_flow_bandwidth_mbps = 150.0;

  /// GPU heterogeneity: fraction of servers equipped with older GPUs that
  /// run compute at `slow_server_speed` (< 1). Assignment is
  /// deterministic: the *last* ceil(fraction × N) servers are slow.
  double slow_server_fraction = 0.0;
  double slow_server_speed = 0.5;

  /// Incremental load index (see DESIGN.md, "Scheduler hot path"): serve
  /// overload/underload partitions and the free-slot estimate from
  /// dirty-tracked per-server state instead of full fleet scans. Decisions
  /// are identical either way; `false` keeps the reference scan
  /// implementation for equivalence tests and the hot-path benchmark.
  bool incremental_load_index = true;

  /// Bucketed feasibility index over the underloaded partition (see
  /// sim/placement_index.hpp): placement queries examine only the buckets
  /// that could pass the feasibility check instead of every underloaded
  /// server. Decisions are byte-identical either way (the pruned servers
  /// provably fail the exact check); `false` keeps the linear funnel for
  /// the equivalence tests and the large-scale benchmark's reference leg.
  /// Requires `incremental_load_index` (ignored without it).
  bool placement_bucket_index = true;
  /// Buckets per indexed load dimension (4 dimensions: least-GPU load and
  /// the CPU/MEM/NET sums). Members strictly inside the per-dimension
  /// cutoffs are accepted or rejected wholesale; only the cutoff
  /// (boundary) buckets still take exact checks, so more buckets narrow
  /// the band that counts toward candidates_scanned at a slightly higher
  /// per-query fixed cost.
  int placement_index_buckets = 512;

  /// Deliberate slot-conservation bug for auditor self-tests: every 7th
  /// unplace leaks the departing task's usage back onto its server, so the
  /// cached usage sums drift from the task pool exactly the way a real
  /// bookkeeping bug would. The run still completes without auditing; with
  /// EngineConfig::audit on, SimAuditor must catch it ("server-usage") and
  /// the fuzz harness must shrink it (see tests/prop). Never enable
  /// outside tests.
  bool debug_slot_leak = false;

  /// Non-uniform fleets (e.g. the Philly footprint: 550 servers / 2474
  /// GPUs): when > 0, overrides `gpus_per_server` and distributes this many
  /// GPUs across the fleet — base = total/count everywhere, with the first
  /// total - base*count servers getting one extra. 0 = uniform fleet.
  /// (Kept after every pre-existing field so positional ClusterConfig
  /// initializers stay valid; append new fields below only.)
  std::size_t total_gpus = 0;

  // --- link-level contention (sim/link_model.hpp, DESIGN.md §5e) ---------

  /// Opt-in link-level bandwidth contention: per-server NIC links and
  /// per-rack uplinks divide capacity fairly among the flows concurrently
  /// active on them, so concurrent gangs sharing a link slow each other
  /// down. Default off: flow bandwidths stay the static per-flow values
  /// above and the link model is never consulted — runs are bitwise
  /// identical to a build without the feature.
  bool link_contention = false;
  /// Per-server NIC link capacity (MB/s); <= 0 = unconstrained NICs.
  double nic_capacity_mbps = 1000.0;
  /// Per-rack uplink capacity (MB/s); <= 0 = unconstrained uplinks. Only
  /// meaningful when `servers_per_rack` > 0 (a flat network has no
  /// uplinks). The default oversubscribes: one uplink carries what four
  /// uncontended inter-rack flows would ask for.
  double rack_uplink_capacity_mbps = 600.0;
  /// Opt-in compute/communicate duty cycles (requires `link_contention`):
  /// each job only occupies its links during its communication window —
  /// ModelZoo's per-model duty cycle, at a phase offset a network-aware
  /// scheduler may set — so anti-phased gangs stop contending. Off = flows
  /// count as always-on (phase offsets are ignored).
  bool duty_cycles = false;
};

/// Load-index bookkeeping counters (perf-trajectory instrumentation).
struct LoadIndexStats {
  std::size_t full_rebuilds = 0;      ///< whole-fleet re-evaluations (hr change / first use)
  std::size_t refreshes = 0;          ///< incremental refresh passes over dirty servers
  std::size_t servers_reindexed = 0;  ///< per-server re-evaluations that changed cached state
  /// Dirty servers whose recomputed state matched the cache exactly (e.g.
  /// a gang placed and rolled back between refreshing queries) — detected
  /// by compare-and-skip, so they cost a recompute but no partition or
  /// bucket surgery and no longer inflate `servers_reindexed`.
  std::size_t noop_reindexes = 0;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  const ClusterConfig& config() const { return config_; }

  // -- servers --
  std::size_t server_count() const { return servers_.size(); }

  /// Rack index of a server (0 when the network is flat).
  int rack_of(ServerId id) const;
  /// True iff the two servers are in different racks (always false when
  /// the topology is flat).
  bool crosses_racks(ServerId a, ServerId b) const;
  /// Effective flow bandwidth between two distinct servers (MB/s),
  /// honoring the rack topology.
  double flow_bandwidth_between(ServerId a, ServerId b) const;
  Server& server(ServerId id);
  const Server& server(ServerId id) const;
  const std::vector<Server>& servers() const { return servers_; }

  /// Marks a server up or down (fault-injection subsystem). Taking a
  /// server down requires it to host no tasks — the engine evicts them
  /// first; bringing one up requires it to be down. A down server is
  /// excluded from every placement query below and rejects placements.
  void set_server_up(ServerId id, bool up);
  /// Servers currently up (== server_count() when faults are disabled).
  std::size_t up_server_count() const;

  /// Sets a server's recovery-policy placement cap (-1 = unrestricted,
  /// 0 = quarantined, k > 0 = probation; see sim/health.hpp). Existing
  /// tasks are unaffected — the cap only gates new admissions via
  /// Server::accepts_placements.
  void set_placement_cap(ServerId id, int cap);

  /// Placement-eligible (accepts_placements) server ids currently not
  /// overloaded w.r.t. `hr`, ascending. With all placement caps at the
  /// default -1 this is exactly "up and not overloaded".
  std::vector<ServerId> underloaded_servers(double hr) const;
  /// Same ids in the same order as underloaded_servers, written into `out`
  /// (cleared first) so per-call reuse of the buffer avoids reallocating
  /// the id vector on every placement query in scan mode.
  void underloaded_servers_into(double hr, std::vector<ServerId>& out) const;
  /// Up server ids overloaded w.r.t. `hr`, ascending (quarantined servers
  /// stay visible here: overload relief must still drain them).
  std::vector<ServerId> overloaded_servers(double hr) const;

  /// Reference view of the underloaded partition (same ids, same ascending
  /// order as underloaded_servers) — avoids copying the id vector on every
  /// placement call. Requires the incremental index; valid until the next
  /// cluster mutation.
  const std::vector<ServerId>& underloaded_index(double hr) const;

  /// Utilization of `id` as of the last index refresh — bit-identical to
  /// server(id).utilization() because every usage-sum mutation (attach/
  /// detach/adjust/up-down) marks the server dirty and the refresh
  /// recomputes it. Call only after a refreshing query in the same
  /// mutation-free window (underloaded_index performs one).
  const ResourceVector& cached_utilization(ServerId id) const { return index_util_[id]; }

  /// Least-loaded GPU of `id` (and its load) as of the last index refresh —
  /// same argmin and first-wins tie-break as Server::least_loaded_gpu, so on
  /// a clean server these are bit-identical to the live computation. The
  /// placement hot path uses them for its common-case feasibility check.
  int cached_least_gpu(ServerId id) const { return index_least_gpu_[id]; }
  double cached_least_gpu_load(ServerId id) const { return index_least_load_[id]; }

  /// Monotone counter bumped by every placement mutation (place/unplace/
  /// move). Round-scoped caches key on it: an unchanged epoch guarantees no
  /// task changed servers, so derived per-placement quantities (e.g. task↔
  /// server communication volumes) are still valid.
  std::uint64_t placement_epoch() const { return placement_epoch_; }

  /// Per-job placement epoch: bumped only when one of *this job's* tasks is
  /// placed/unplaced/moved. A task's communication volumes depend solely on
  /// where its own job's peers sit (DAG edges + all-reduce ring are
  /// job-internal), so memo entries keyed on this epoch survive unrelated
  /// jobs' placements — the global epoch invalidated the whole memo on any
  /// placement anywhere, collapsing the hit rate as the fleet grew.
  std::uint64_t job_placement_epoch(JobId id) const { return job_placement_epochs_[id]; }

  /// The bucketed feasibility index, refreshed for `hr` (see
  /// sim/placement_index.hpp). Only meaningful when both
  /// `incremental_load_index` and `placement_bucket_index` are on.
  const PlacementIndex& placement_index(double hr) const;
  /// Its query counters (zeros while the bucket index is off).
  const PlacementIndexStats& placement_index_stats() const { return pindex_.stats(); }

  /// Instrumentation counters of the incremental load index (zeros while
  /// `ClusterConfig::incremental_load_index` is off).
  const LoadIndexStats& load_index_stats() const { return index_stats_; }

  /// Cluster overload degree O_c = mean_s ||U_s|| over up servers (§3.5).
  double overload_degree() const;

  /// Cheap upper-bound estimate of how many typical worker tasks (GPU
  /// demand ~`typical_demand`) could still be placed under threshold `hr`.
  /// Used to fail doomed gang placements fast under sustained overload.
  int estimate_free_worker_slots(double hr, double typical_demand = 0.45) const;

  // -- task & job pools --
  /// Registers instantiated job + tasks; task ids must be contiguous and
  /// equal to the current pool size (ModelZoo::instantiate contract).
  void register_job(Job job, std::vector<Task> tasks);

  std::size_t task_count() const { return tasks_.size(); }
  Task& task(TaskId id);
  const Task& task(TaskId id) const;

  std::size_t job_count() const { return jobs_.size(); }
  Job& job(JobId id);
  const Job& job(JobId id) const;
  std::vector<Job>& jobs() { return jobs_; }
  const std::vector<Job>& jobs() const { return jobs_; }

  // -- placement --
  /// Places a queued task; requires it unplaced and gpu valid.
  void place_task(TaskId id, ServerId server, int gpu);
  /// Removes a placed task from its server (state -> Queued).
  void unplace_task(TaskId id);
  /// Atomic move between GPUs/servers; keeps the task Running.
  void move_task(TaskId id, ServerId to_server, int to_gpu);

  /// True iff every task of the job is placed (gang condition for an
  /// iteration to run).
  bool job_fully_placed(const Job& job) const;

  /// Updates a task's usage fluctuation factor, keeping its host server's
  /// cached usage sums consistent when the task is placed.
  void set_usage_factor(TaskId id, double factor);

  /// Full consistency audit: recomputes every server's usage sums and
  /// task lists from the task pool and checks they match the incremental
  /// state (throws ContractViolation on divergence). O(tasks); meant for
  /// tests and debugging, not the hot path.
  void validate() const;

  // -- link contention (ClusterConfig::link_contention) --
  /// The link-level contention model. Flow sets track current placements
  /// (maintained by place/unplace/move); empty and never consulted when
  /// the feature is off.
  const LinkModel& link_model() const { return links_; }

  /// `job`'s cross-server flows under current placements — DAG edges whose
  /// endpoints sit on different servers plus, for all-reduce jobs, the
  /// cross-server hops of the worker ring. Pure function of placement
  /// state; the auditor recomputes it from scratch to check the
  /// incremental link bookkeeping.
  std::vector<LinkModel::Flow> compute_job_flows(JobId id) const;

  /// Sets a job's communication-phase offset (CASSINI interleaving).
  /// Returns true iff the offset changed; no-op (false) with contention off.
  bool set_phase_offset(JobId id, double offset);

  // -- bandwidth ledger --
  /// Records `mb` transferred between two servers; intra-server transfers
  /// are free and not recorded.
  void record_transfer(ServerId a, ServerId b, double mb);

  /// Snapshot support (sim/snapshot.hpp): serializes/restores every
  /// dynamic field — per-server placement state, per-task dynamic fields,
  /// per-job progress, the bandwidth ledger, and the lazy load index
  /// *wholesale* (flags, cached partitions, and its instrumentation
  /// counters) so the restored run's LoadIndexStats trajectory stays
  /// bit-identical to the uninterrupted one. Static structure (configs,
  /// specs, DAGs) is not written; the restoring cluster must have been
  /// built from the same configuration.
  void save_state(io::BinWriter& w) const;
  void restore_state(io::BinReader& r);

  /// Snapshot hooks for the link-contention state (the snapshot's "links"
  /// section, written only when ClusterConfig::link_contention is on).
  void save_link_state(io::BinWriter& w) const { links_.save_state(w); }
  void restore_link_state(io::BinReader& r) { links_.restore_state(r); }

  double total_bandwidth_mb() const { return total_bandwidth_mb_; }
  /// Portion of the ledger that crossed rack boundaries (== 0 when flat).
  double inter_rack_bandwidth_mb() const { return inter_rack_bandwidth_mb_; }
  std::size_t transfer_count() const { return transfer_count_; }

 private:
  friend class SimAuditor;  // reads raw index state without refreshing it

  /// Marks a server's load-index entry stale. Every mutation that can move
  /// a server across the overload threshold or change its GPU headroom
  /// funnels through here (attach/detach/usage/up-down).
  void touch_server(ServerId id) const;
  /// Brings the index up to date for (hr, typical_demand): re-evaluates
  /// only dirty servers, or the whole fleet when the key changed.
  void refresh_load_index(double hr, double typical_demand) const;
  /// Free-slot contribution of one up server (same arithmetic as the scan).
  static int server_slot_estimate(const Server& s, double hr, double typical_demand);
  /// Re-registers `job`'s flow set with the link model after a placement
  /// mutation touched one of its tasks (no-op when contention is off).
  void refresh_job_flows(JobId id);

  ClusterConfig config_;
  std::vector<Server> servers_;
  std::vector<Task> tasks_;
  std::vector<Job> jobs_;
  double total_bandwidth_mb_ = 0.0;
  double inter_rack_bandwidth_mb_ = 0.0;
  std::size_t transfer_count_ = 0;
  std::uint64_t placement_epoch_ = 0;
  std::size_t debug_unplace_count_ = 0;  ///< drives ClusterConfig::debug_slot_leak

  // --- incremental load index (lazy; mutable because queries are const) ---
  mutable bool index_valid_ = false;
  mutable double index_hr_ = -1.0;
  mutable double index_demand_ = 0.45;  ///< estimate_free_worker_slots default
  mutable std::vector<char> index_dirty_;
  mutable std::vector<ServerId> index_dirty_ids_;
  mutable std::vector<char> index_overloaded_;   ///< up && overloaded(hr)
  mutable std::vector<char> index_underloaded_;  ///< accepts_placements && !overloaded(hr)
  mutable std::vector<int> index_slots_;
  mutable std::vector<ResourceVector> index_util_;  ///< utilization at last refresh
  mutable std::vector<int> index_least_gpu_;        ///< least_loaded_gpu at last refresh
  mutable std::vector<double> index_least_load_;    ///< its gpu_load at last refresh
  mutable long long index_total_slots_ = 0;
  mutable std::vector<ServerId> underloaded_ids_;  ///< sorted ascending
  mutable std::vector<ServerId> overloaded_ids_;   ///< sorted ascending
  mutable LoadIndexStats index_stats_;
  /// Bucketed feasibility index; mirrors the underloaded partition and the
  /// refresh-time load caches exactly (rebuilt from them on restore).
  mutable PlacementIndex pindex_;
  std::vector<std::uint64_t> job_placement_epochs_;  ///< grown by register_job
  /// Link-contention state (empty when ClusterConfig::link_contention off).
  LinkModel links_;
};

}  // namespace mlfs
