// The cluster: the server fleet plus the global task and job pools, the
// placement API, and the bandwidth-cost ledger. Everything the schedulers
// read and mutate lives here; the engine drives time on top of it.
#pragma once

#include <vector>

#include "sim/server.hpp"
#include "workload/job.hpp"

namespace mlfs {

struct ClusterConfig {
  std::size_t server_count = 20;
  int gpus_per_server = 4;
  /// NIC line rate per server (MB/s); used for migration state transfers
  /// and the bandwidth ledger's accounting basis.
  double server_bandwidth_mbps = 1000.0;

  /// Effective per-flow share of the NIC under the contention of many
  /// concurrent training flows (MB/s); converts per-iteration
  /// communication volumes into critical-path seconds. The paper's
  /// premise — "communication overhead between GPUs is 970MB-3168MB per
  /// mini-batch" — is that this is a first-order cost, which is what
  /// makes communication-aware placement (§3.3.2) matter.
  double effective_flow_bandwidth_mbps = 500.0;

  // --- extensions beyond the paper (its §5 limitations / §6 future work) -

  /// Rack topology: servers_per_rack > 0 groups consecutive servers into
  /// racks; flows crossing racks traverse the oversubscribed core and get
  /// the slower share below. 0 = flat network (the paper's model).
  int servers_per_rack = 0;
  double inter_rack_flow_bandwidth_mbps = 150.0;

  /// GPU heterogeneity: fraction of servers equipped with older GPUs that
  /// run compute at `slow_server_speed` (< 1). Assignment is
  /// deterministic: the *last* ceil(fraction × N) servers are slow.
  double slow_server_fraction = 0.0;
  double slow_server_speed = 0.5;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  const ClusterConfig& config() const { return config_; }

  // -- servers --
  std::size_t server_count() const { return servers_.size(); }

  /// Rack index of a server (0 when the network is flat).
  int rack_of(ServerId id) const;
  /// True iff the two servers are in different racks (always false when
  /// the topology is flat).
  bool crosses_racks(ServerId a, ServerId b) const;
  /// Effective flow bandwidth between two distinct servers (MB/s),
  /// honoring the rack topology.
  double flow_bandwidth_between(ServerId a, ServerId b) const;
  Server& server(ServerId id);
  const Server& server(ServerId id) const;
  const std::vector<Server>& servers() const { return servers_; }

  /// Marks a server up or down (fault-injection subsystem). Taking a
  /// server down requires it to host no tasks — the engine evicts them
  /// first; bringing one up requires it to be down. A down server is
  /// excluded from every placement query below and rejects placements.
  void set_server_up(ServerId id, bool up);
  /// Servers currently up (== server_count() when faults are disabled).
  std::size_t up_server_count() const;

  /// Up server ids currently not overloaded w.r.t. `hr`.
  std::vector<ServerId> underloaded_servers(double hr) const;
  std::vector<ServerId> overloaded_servers(double hr) const;

  /// Cluster overload degree O_c = mean_s ||U_s|| over up servers (§3.5).
  double overload_degree() const;

  /// Cheap upper-bound estimate of how many typical worker tasks (GPU
  /// demand ~`typical_demand`) could still be placed under threshold `hr`.
  /// Used to fail doomed gang placements fast under sustained overload.
  int estimate_free_worker_slots(double hr, double typical_demand = 0.45) const;

  // -- task & job pools --
  /// Registers instantiated job + tasks; task ids must be contiguous and
  /// equal to the current pool size (ModelZoo::instantiate contract).
  void register_job(Job job, std::vector<Task> tasks);

  std::size_t task_count() const { return tasks_.size(); }
  Task& task(TaskId id);
  const Task& task(TaskId id) const;

  std::size_t job_count() const { return jobs_.size(); }
  Job& job(JobId id);
  const Job& job(JobId id) const;
  std::vector<Job>& jobs() { return jobs_; }
  const std::vector<Job>& jobs() const { return jobs_; }

  // -- placement --
  /// Places a queued task; requires it unplaced and gpu valid.
  void place_task(TaskId id, ServerId server, int gpu);
  /// Removes a placed task from its server (state -> Queued).
  void unplace_task(TaskId id);
  /// Atomic move between GPUs/servers; keeps the task Running.
  void move_task(TaskId id, ServerId to_server, int to_gpu);

  /// True iff every task of the job is placed (gang condition for an
  /// iteration to run).
  bool job_fully_placed(const Job& job) const;

  /// Updates a task's usage fluctuation factor, keeping its host server's
  /// cached usage sums consistent when the task is placed.
  void set_usage_factor(TaskId id, double factor);

  /// Full consistency audit: recomputes every server's usage sums and
  /// task lists from the task pool and checks they match the incremental
  /// state (throws ContractViolation on divergence). O(tasks); meant for
  /// tests and debugging, not the hot path.
  void validate() const;

  // -- bandwidth ledger --
  /// Records `mb` transferred between two servers; intra-server transfers
  /// are free and not recorded.
  void record_transfer(ServerId a, ServerId b, double mb);
  double total_bandwidth_mb() const { return total_bandwidth_mb_; }
  /// Portion of the ledger that crossed rack boundaries (== 0 when flat).
  double inter_rack_bandwidth_mb() const { return inter_rack_bandwidth_mb_; }
  std::size_t transfer_count() const { return transfer_count_; }

 private:
  ClusterConfig config_;
  std::vector<Server> servers_;
  std::vector<Task> tasks_;
  std::vector<Job> jobs_;
  double total_bandwidth_mb_ = 0.0;
  double inter_rack_bandwidth_mb_ = 0.0;
  std::size_t transfer_count_ = 0;
};

}  // namespace mlfs
