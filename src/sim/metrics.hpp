// End-of-run metrics — exactly the eight panels of Figs. 4/5 plus the
// makespan numbers quoted in §4.2.1 and the component counters the
// ablation figures need (overload occurrences for Fig. 8(a), migrations).
#pragma once

#include <cstdint>
#include <string>

#include "common/stats.hpp"

namespace mlfs {

class Cluster;

struct RunMetrics {
  std::string scheduler;
  std::size_t job_count = 0;
  /// Jobs streamed into the live engine (SimEngine::inject_job) rather
  /// than registered at construction; 0 for pure trace-driven runs.
  std::size_t jobs_injected = 0;

  SampleSet jct_minutes;            ///< per-job completion time (Figs. 4/5 (a),(b))
  double makespan_hours = 0.0;      ///< first arrival -> last completion
  double deadline_ratio = 0.0;      ///< jobs finishing by their deadline (c)
  SampleSet waiting_seconds;        ///< per-job waiting time (d)
  double average_accuracy = 0.0;    ///< accuracy by deadline, mean (e)
  double accuracy_ratio = 0.0;      ///< accuracy requirement met by deadline (f)
  double bandwidth_tb = 0.0;        ///< total cross-server traffic (g)
  double inter_rack_tb = 0.0;       ///< rack-crossing share (topology extension)
  double sched_overhead_ms = 0.0;   ///< mean wall-clock per scheduling round (h)

  std::size_t overload_occurrences = 0;  ///< server-tick overload events (Fig. 8(a))
  std::size_t migrations = 0;
  std::size_t preemptions = 0;
  std::size_t partial_releases = 0;   ///< gang-timeout placement releases
  std::size_t watchdog_evictions = 0;
  std::size_t iterations_run = 0;
  std::size_t iterations_saved = 0;  ///< max_iterations - executed, summed (MLF-C effect)
  double urgent_deadline_ratio = 0.0;  ///< deadline ratio among jobs with urgency > 8 (Fig. 6)

  // -- failure-recovery accounting (fault-injection subsystem) --
  std::size_t server_failures = 0;    ///< individual crashes + rack-outage casualties
  std::size_t rack_outages = 0;       ///< correlated rack-level outage events
  std::size_t task_kills = 0;         ///< transient single-task kills
  std::size_t crash_evictions = 0;    ///< placed tasks evicted by server crashes
  std::size_t iterations_rolled_back = 0;  ///< completed iterations lost to checkpoint rollback
  double work_lost_gpu_seconds = 0.0;      ///< GPU-seconds of discarded training work
  double mean_recovery_seconds = 0.0;      ///< fault impact -> victim job running again
  /// Useful iteration work over all iteration work executed (== 1.0 in a
  /// fault-free run; lost work = rollbacks + discarded in-flight fractions).
  double goodput = 1.0;

  // -- recovery policies (sim/health.hpp; all zero while disabled) --
  std::size_t quarantines = 0;             ///< servers placed in quarantine
  std::size_t quarantine_valve_saves = 0;  ///< quarantines vetoed by the capacity valve
  std::size_t task_retries = 0;            ///< backoff re-admissions scheduled
  double backoff_delay_seconds = 0.0;      ///< total backoff delay imposed
  std::size_t jobs_failed_permanent = 0;   ///< jobs that exhausted their retry budget
  std::size_t crashes_absorbed = 0;        ///< crashes of quarantined/capped empty servers
  double wasted_work_avoided_gpu_seconds = 0.0;  ///< estimated loss those crashes skipped

  // -- determinism fingerprint (snapshot/restore contract) --
  std::size_t events_processed = 0;        ///< events the engine dispatched
  /// Chained FNV-1a over every processed event's identity
  /// (SimEngine::event_stream_hash). Two runs of the same seed — including
  /// one resumed from a snapshot — must agree exactly.
  std::uint64_t event_stream_hash = 0;

  // -- scheduler hot-path instrumentation (see DESIGN.md) --
  std::size_t sched_rounds = 0;           ///< scheduling rounds executed
  std::size_t candidates_scanned = 0;     ///< servers examined during host choice
  /// Servers a linear funnel would have examined for the same host
  /// queries; candidates_linear / candidates_scanned is the bucketed
  /// placement index's measured candidate reduction (1x with it off).
  std::size_t candidates_linear = 0;
  std::size_t comm_cache_hits = 0;        ///< per-(task, server) comm-memo hits
  std::size_t comm_cache_misses = 0;      ///< comm-memo rebuilds
  std::size_t load_index_rebuilds = 0;    ///< whole-fleet load-index rebuilds
  std::size_t load_index_refreshes = 0;   ///< incremental load-index refresh passes
  std::size_t servers_reindexed = 0;      ///< per-server load re-evaluations that changed state
  std::size_t noop_reindexes = 0;         ///< dirty servers whose state was unchanged
  std::size_t pindex_queries = 0;         ///< bucketed placement-index probes
  std::size_t pindex_servers_pruned = 0;  ///< members skipped via pruned buckets
  std::size_t pindex_buckets_pruned = 0;  ///< buckets pruned on the GPU dimension
  /// Members emitted feasible from the bucket bound alone (no exact check);
  /// candidates_scanned + pindex_servers_pruned + pindex_servers_bypassed
  /// == candidates_linear whenever the bucketed index answers every query.
  std::size_t pindex_servers_bypassed = 0;

  // -- link contention (sim/link_model.hpp; zero while the feature is off) --
  /// Cross-server communication seconds charged under the link model
  /// (fair-share comm time summed over iterations and all-reduce rounds).
  double link_busy_seconds = 0.0;
  /// Communication seconds lost to link sharing: fair-share comm time
  /// minus what the uncongested static bandwidths would have cost.
  double contention_slowdown_seconds = 0.0;
  /// Scheduler-applied communication-phase-offset changes (CASSINI
  /// interleaving; each hit re-phased one job's comm window).
  std::size_t phase_offset_hits = 0;

  // -- prediction service (predict/service.hpp) --
  std::size_t fits_cold = 0;           ///< Nelder-Mead fits from the init simplex
  std::size_t fits_warm = 0;           ///< fits seeded from a previous chain link
  std::size_t prediction_cache_hits = 0;  ///< memo / stored-link reuse (0 when disabled)
  std::size_t nm_objective_evals = 0;  ///< objective evaluations across all fits
  /// Wall-clock spent fitting/combining curve predictions (real clock —
  /// excluded from deterministic_equal, like sched_overhead_ms).
  double fit_wall_ms = 0.0;
  /// Wall-clock of the whole run() event loop (0 when the engine was
  /// stepped manually); fit_wall_ms / run_wall_ms is the predictor's
  /// runtime share, gated in bench_largescale. Excluded from
  /// deterministic_equal.
  double run_wall_ms = 0.0;

  double average_jct_minutes() const { return jct_minutes.mean(); }
  double average_waiting_seconds() const { return waiting_seconds.mean(); }

  /// One-line human-readable summary.
  std::string summary() const;
};

/// Bitwise equality over every simulation-derived field — the determinism
/// contract the parallel experiment runner is held to (a run must not
/// depend on what else executes concurrently). The single exclusion is
/// sched_overhead_ms: it is measured with a real clock, so it is not
/// reproducible even between two serial runs of the same seed.
bool deterministic_equal(const RunMetrics& a, const RunMetrics& b);

}  // namespace mlfs
