// The scheduler abstraction the engine drives. A scheduler is invoked on
// every tick ("the job scheduler runs every minute", §4.1) with a view of
// the cluster, the waiting queue, and an ops interface through which it
// places queued tasks, preempts running tasks back to the queue, and
// migrates tasks between servers. The engine times each invocation for the
// scheduler-overhead metric (Figs. 4(h)/5(h)).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "sim/cluster.hpp"

namespace mlfs {

class PredictionService;

/// Mutation interface handed to schedulers. Implemented by the engine so
/// every action goes through one place that keeps queue membership, task
/// state, waiting-time accounting, and the bandwidth ledger consistent.
class SchedulerOps {
 public:
  virtual ~SchedulerOps() = default;

  /// Moves a queued task onto (server, gpu). Returns false (and does
  /// nothing) if the task is not queued or the indices are invalid.
  virtual bool place(TaskId task, ServerId server, int gpu) = 0;

  /// Preempts a running task back to the waiting queue. Aborts the job's
  /// in-flight iteration (gang execution stops until re-placed).
  virtual void preempt_to_queue(TaskId task) = 0;

  /// Migrates a running task directly to another server/GPU. Charges the
  /// task's state size to the bandwidth ledger and a one-time delay to the
  /// task's next iteration. Returns false if the task is not running.
  virtual bool migrate(TaskId task, ServerId server, int gpu) = 0;

  /// Rolls back a placement made earlier in the same round for a job that
  /// could not complete its gang (all-or-nothing placement). The task
  /// returns to the queue; unlike preempt_to_queue this does not count as
  /// a preemption and must only be used on tasks of non-running jobs.
  virtual void release(TaskId task) = 0;

  /// Sets a job's communication-phase offset in [0, 1) on the link model
  /// (CASSINI-style interleaving; see sim/link_model.hpp). Returns true
  /// iff the stored offset changed — the engine counts changes as
  /// RunMetrics::phase_offset_hits. No-op (false) when link contention is
  /// disabled; the default keeps ops fakes in harnesses working.
  virtual bool set_phase_offset(JobId job, double offset) {
    (void)job;
    (void)offset;
    return false;
  }
};

/// Read-only + ops context for one scheduling round.
struct SchedulerContext {
  Cluster& cluster;
  /// Waiting tasks, arrival order; schedulers impose their own order.
  const std::vector<TaskId>& queue;
  SchedulerOps& ops;
  SimTime now = 0.0;
  double hr = 0.9;  ///< server overload threshold (engine config)
  /// Unified prediction substrate (runtime estimates + cached curve
  /// fits); nullptr in predictor-less harnesses — consumers fall back to
  /// the same arithmetic over the job's ground-truth state.
  const PredictionService* prediction = nullptr;
  /// Gang placement is all-or-nothing per round, except this job (the
  /// longest-waiting one, engine-chosen) may accumulate partial
  /// placements across rounds so arbitrarily large gangs cannot starve.
  JobId protected_job = kInvalidJob;
};

/// Hot-path instrumentation accumulated over a run (see DESIGN.md,
/// "Scheduler hot path"). Schedulers that do not track these return zeros.
struct SchedStats {
  std::size_t candidates_scanned = 0;  ///< servers examined during host choice
  /// Servers a linear funnel would have examined for the same queries
  /// (the full underloaded partition per call). Equal to
  /// candidates_scanned unless the bucketed placement index is pruning;
  /// the ratio of the two is the index's measured win.
  std::size_t candidates_linear = 0;
  std::size_t comm_cache_hits = 0;  ///< per-(task, server) comm-volume memo hits
  std::size_t comm_cache_misses = 0;  ///< memo rebuilds (one per task per epoch)
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// Hot-path counters for the perf trajectory (RunMetrics surfaces them).
  virtual SchedStats sched_stats() const { return {}; }

  /// One scheduling round: place waiting tasks, handle overloaded servers.
  virtual void schedule(SchedulerContext& ctx) = 0;

  /// Lifecycle notifications (optional).
  virtual void on_job_arrival(const Job& job, SimTime now) {
    (void)job;
    (void)now;
  }
  virtual void on_job_complete(const Job& job, SimTime now) {
    (void)job;
    (void)now;
  }

  /// Scheduler-internal consistency check, called by SimAuditor after
  /// every audited event. Implementations validate their private caches
  /// against the cluster ground truth (e.g. MlfH's priority cache) and
  /// throw AuditViolation on divergence. Must not mutate anything.
  virtual void audit_invariants(const Cluster& cluster, SimTime now) const {
    (void)cluster;
    (void)now;
  }

  /// Snapshot hooks (SimEngine::save_snapshot / restore_snapshot): the
  /// scheduler serializes whatever internal state a bit-identical resume
  /// needs (priority caches, service accounting, RNG streams, policy
  /// weights) into an opaque payload it alone interprets. The default is
  /// correct for stateless schedulers; anything carrying run state across
  /// ticks must override BOTH, or a restored run will diverge from the
  /// uninterrupted one (tests/sched/test_restore_determinism.cpp catches
  /// this for every registered scheduler).
  virtual void save_state(std::ostream& os) const { (void)os; }
  virtual void restore_state(std::istream& is) { (void)is; }
};

}  // namespace mlfs
