// Durable write-ahead journal of external inputs (see DESIGN.md §6d,
// "Durability & crash recovery"). The engine itself stays a pure function
// of (config, seed); everything injected from outside — streamed job
// arrivals, snapshot barriers, the clean-shutdown marker — is appended to
// this log *before* it is applied, so crash recovery is
//
//   restore = load_snapshot(K) + replay journal records with event > K
//
// and is byte-identical to a run that never crashed.
//
// File layout (little-endian throughout):
//
//   magic    8 bytes  "MLFSJRNL"
//   version  u32      kJournalVersion
//   fprint   u64      config fingerprint of the engine that wrote it
//   base     u64      event index of the snapshot this segment follows
//   firstseq u64      sequence number of the segment's first record
//   records  ×        [ u32 len | u32 hcrc | payload | u64 crc ]
//
// where `hcrc` is a checksum over the 4 length bytes (so a corrupted
// length field cannot silently swallow valid later records), `crc` is
// FNV-1a over the payload, and the payload is
//
//   seq u64 | type u8 | event_index u64 | type-specific body
//
// Recovery semantics mirror production WALs: the writer appends each
// frame with a single unbuffered write, so a crash leaves a clean prefix
// of the file. The reader validates records front to back; an incomplete
// or checksum-failing *final* record is a torn tail and is dropped (the
// input was never acknowledged), while any defect before the final record
// — bit flips, sequence gaps, records after a clean-shutdown marker — is
// real corruption and throws a structured JournalError. The container
// hardening mirrors sim/snapshot.hpp: magic/version/fingerprint header,
// structured (section, offset) errors, and no partial mutation — the
// whole log is validated before a single record is replayed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/binio.hpp"
#include "common/expect.hpp"
#include "workload/job.hpp"

namespace mlfs {

inline constexpr char kJournalMagic[8] = {'M', 'L', 'F', 'S', 'J', 'R', 'N', 'L'};
inline constexpr std::uint32_t kJournalVersion = 1;
/// Header size in bytes (magic + version + fingerprint + base + firstseq).
inline constexpr std::uint64_t kJournalHeaderBytes = 8 + 4 + 8 + 8 + 8;
/// No record in this codebase comes close; a corrupt length field must not
/// drive a multi-gigabyte allocation (same bound rationale as BinReader).
inline constexpr std::uint32_t kMaxJournalRecordBytes = 1u << 20;

/// Structured rejection of a journal file. Subclasses ContractViolation so
/// existing catch sites handle it; carries the failing section ("header",
/// "record", "io") and the byte offset at which validation failed.
class JournalError : public ContractViolation {
 public:
  JournalError(std::string section, std::uint64_t offset, const std::string& detail);

  const std::string& section() const { return section_; }
  std::uint64_t offset() const { return offset_; }

 private:
  std::string section_;
  std::uint64_t offset_;
};

enum class JournalRecordType : std::uint8_t {
  /// A streamed job arrival injected into the live engine. Body:
  /// u64 stream_seq + the registered JobSpec (id/arrival as assigned).
  InjectArrival = 1,
  /// A snapshot was written at `snapshot_event` == event_index; the next
  /// segment is keyed to it. Body: empty.
  SnapshotBarrier = 2,
  /// The run finished and finalized; nothing after this is legal. Body:
  /// empty.
  CleanShutdown = 3,
};

struct JournalRecord {
  std::uint64_t seq = 0;  ///< global monotone sequence, +1 per record
  JournalRecordType type = JournalRecordType::InjectArrival;
  /// SimEngine::events_processed() at the instant the input applied.
  std::uint64_t event_index = 0;
  // InjectArrival only:
  std::uint64_t stream_seq = 0;
  JobSpec spec;
};

/// Canonical JobSpec serialization, shared by the journal's arrival
/// records, the snapshot's "injected" section, and the config fingerprint
/// (the field order is the fingerprint's historical order — do not reorder).
void write_job_spec(io::BinWriter& w, const JobSpec& spec);
JobSpec read_job_spec(io::BinReader& r);

/// Byte sink the journal writer appends through. Implementations must
/// surface short writes / disk-full as JournalError("io", offset, detail)
/// with errno context — a swallowed write error would break the zero-loss
/// contract silently.
class JournalSink {
 public:
  virtual ~JournalSink() = default;
  virtual void append(const char* data, std::size_t n) = 0;
  virtual void sync() = 0;
};

/// POSIX append-only file sink. Unbuffered (every append is one write(2)
/// call), so a SIGKILL loses at most the in-flight frame and always leaves
/// a clean prefix on disk; sync() is a real fsync for power-loss
/// durability.
class FileJournalSink : public JournalSink {
 public:
  /// Opens (creating if needed) `path` for appending; `truncate` discards
  /// existing content (segment rotation / atomic rewrite).
  explicit FileJournalSink(const std::string& path, bool truncate = false);
  ~FileJournalSink() override;
  FileJournalSink(const FileJournalSink&) = delete;
  FileJournalSink& operator=(const FileJournalSink&) = delete;

  void append(const char* data, std::size_t n) override;
  void sync() override;

 private:
  std::string path_;
  int fd_ = -1;
  std::uint64_t bytes_written_ = 0;
};

/// In-memory sink for tests and staging. `fail_after_bytes` makes it an
/// injectable failing sink: once cumulative output would cross the budget
/// it keeps only the prefix that fits and throws JournalError — the
/// disk-full / short-write path the writer hardening is tested against.
class MemoryJournalSink : public JournalSink {
 public:
  explicit MemoryJournalSink(std::size_t fail_after_bytes = static_cast<std::size_t>(-1))
      : budget_(fail_after_bytes) {}

  void append(const char* data, std::size_t n) override;
  void sync() override { ++syncs_; }

  const std::string& bytes() const { return bytes_; }
  std::size_t sync_count() const { return syncs_; }

 private:
  std::string bytes_;
  std::size_t budget_;
  std::size_t syncs_ = 0;
};

/// When the journal is forced to stable storage. With the unbuffered file
/// sink every policy survives SIGKILL loss-free (the page cache outlives
/// the process); the policy only matters for power loss / host crashes.
enum class FsyncPolicy {
  EveryRecord,  ///< fsync after every append — durable, slowest
  GroupCommit,  ///< fsync every `group_records` appends + at barriers
  Off,          ///< never fsync (process-crash durability only)
};

/// Appends length-framed, CRC'd, monotonically sequenced records through a
/// sink. Writes the segment header on construction (unless resuming into a
/// rewritten segment).
class JournalWriter {
 public:
  JournalWriter(std::unique_ptr<JournalSink> sink, std::uint64_t config_fingerprint,
                std::uint64_t base_event, std::uint64_t first_seq,
                FsyncPolicy policy = FsyncPolicy::GroupCommit, int group_records = 32,
                bool write_header = true);

  /// Each append returns the record's sequence number.
  std::uint64_t append_arrival(std::uint64_t event_index, std::uint64_t stream_seq,
                               const JobSpec& spec);
  std::uint64_t append_barrier(std::uint64_t snapshot_event);
  std::uint64_t append_clean_shutdown(std::uint64_t event_index);
  /// Re-appends a validated record verbatim (recovery rewrite); the
  /// record's seq must equal next_seq().
  std::uint64_t append_record(const JournalRecord& record);

  /// Forces buffered records to stable storage regardless of policy.
  void sync();

  std::uint64_t next_seq() const { return next_seq_; }
  std::uint64_t base_event() const { return base_event_; }

 private:
  std::uint64_t append_frame(const JournalRecord& record, bool force_sync);

  std::unique_ptr<JournalSink> sink_;
  std::uint64_t base_event_;
  std::uint64_t next_seq_;
  FsyncPolicy policy_;
  int group_records_;
  int since_sync_ = 0;
  std::uint64_t bytes_appended_ = 0;
};

/// Everything recovery learns from one validated journal segment.
struct JournalReplay {
  std::uint64_t fingerprint = 0;
  std::uint64_t base_event = 0;   ///< snapshot event index this segment follows
  std::uint64_t first_seq = 0;
  std::vector<JournalRecord> records;  ///< validated, torn tail excluded
  bool clean_shutdown = false;    ///< log ends with a CleanShutdown marker
  bool torn_tail = false;         ///< the final record was torn/corrupt and dropped
  std::uint64_t torn_offset = 0;  ///< byte offset of the dropped tail record
  std::uint64_t next_seq = 0;     ///< sequence to continue appending with
};

/// Validates the whole log front to back before returning — header (magic,
/// version, fingerprint), per-record framing, checksums, sequence
/// continuity, shutdown-marker placement. Throws JournalError on any
/// defect except a torn/corrupt *tail* record, which is dropped and
/// reported via `torn_tail`/`torn_offset`.
JournalReplay read_journal(std::istream& is, std::uint64_t expected_fingerprint);
JournalReplay read_journal_file(const std::string& path, std::uint64_t expected_fingerprint);

}  // namespace mlfs
