// Link-level bandwidth contention (DESIGN.md §5e). The fabric is modeled
// as one NIC link per server plus one uplink per rack; every cross-server
// flow traverses both endpoints' NICs and, when it crosses racks, both
// racks' uplinks. Each link divides its capacity fairly among the flows
// concurrently active on it, so a flow's effective bandwidth is
//
//   min(base path bandwidth, min over traversed links of C_L / n_L)
//
// where n_L is the link's effective concurrency. With compute/communicate
// duty cycles enabled, a job only occupies its links during its
// communication window — an arc of length d_j starting at phase offset
// phi_j on the unit circle (CASSINI's circle abstraction) — and the
// concurrency another job contributes is weighted by the circular overlap
// of the two windows, so anti-phased gangs stop contending entirely.
//
// Registered flow sets are a pure function of current placements
// (Cluster::compute_job_flows), maintained incrementally on every
// place/unplace/move; SimAuditor rebuilds them from scratch after audited
// events and checks conservation plus the per-link share-sum invariant
// (the time-averaged capacity handed out never exceeds the link's).
#pragma once

#include <cstdint>
#include <vector>

#include "common/binio.hpp"
#include "workload/ids.hpp"

namespace mlfs {

class LinkModel {
 public:
  /// One cross-server flow of a job (unordered endpoint pair).
  struct Flow {
    ServerId a = kInvalidServer;
    ServerId b = kInvalidServer;
    friend bool operator==(const Flow& x, const Flow& y) {
      return x.a == y.a && x.b == y.b;
    }
  };

  /// Per-link registration: `flows` of `job` traverse the link.
  struct LinkEntry {
    JobId job = kInvalidJob;
    std::uint32_t flows = 0;
    friend bool operator==(const LinkEntry& x, const LinkEntry& y) {
      return x.job == y.job && x.flows == y.flows;
    }
  };

  LinkModel() = default;

  /// (Re)builds the link tables. `nic_capacity_mbps` / `uplink_capacity_mbps`
  /// <= 0 mean that link class imposes no constraint; `servers_per_rack`
  /// <= 0 means a flat network (no uplinks).
  void reset(std::size_t server_count, int servers_per_rack, double nic_capacity_mbps,
             double uplink_capacity_mbps);

  std::size_t server_count() const { return server_count_; }
  std::size_t link_count() const { return capacity_.size(); }
  /// Link index of a server's NIC.
  std::size_t nic_link(ServerId s) const { return s; }
  /// Link index of a rack's uplink (only valid when servers_per_rack > 0).
  std::size_t uplink_link(int rack) const {
    return server_count_ + static_cast<std::size_t>(rack);
  }
  int rack_of(ServerId s) const {
    return servers_per_rack_ > 0 ? static_cast<int>(s) / servers_per_rack_ : 0;
  }
  double link_capacity(std::size_t link) const { return capacity_[link]; }

  // -- per-job communication profile ------------------------------------
  /// Fraction of each iteration the job spends communicating, in (0, 1].
  /// 1.0 (the default) = always-on flows, i.e. duty cycles disabled.
  void set_job_duty_cycle(JobId job, double duty);
  double job_duty_cycle(JobId job) const;
  /// Start of the job's communication window on the unit circle, in [0, 1).
  /// Returns true iff the stored offset changed (the phase-offset-hit
  /// signal surfaced through RunMetrics).
  bool set_phase_offset(JobId job, double offset);
  double phase_offset(JobId job) const;

  /// Circular overlap (in [0, min(d_a, d_b)]) of two jobs' comm windows.
  double comm_overlap(JobId a, JobId b) const;

  // -- flow registration -------------------------------------------------
  /// Replaces `job`'s registered flow set (incremental bookkeeping: the old
  /// set is removed from every link count, the new one added).
  void update_job_flows(JobId job, std::vector<Flow> flows);
  const std::vector<Flow>& job_flows(JobId job) const;
  std::size_t registered_job_count() const { return flows_.size(); }

  /// Per-link registrations, sorted ascending by job id.
  const std::vector<LinkEntry>& link_entries(std::size_t link) const {
    return entries_[link];
  }
  std::uint32_t total_flows_on(std::size_t link) const;

  // -- fair-share queries ------------------------------------------------
  /// Effective concurrency `job`'s flows see on `link`: the job's own flow
  /// count (its flows are simultaneously active) plus every other job's
  /// count weighted by comm-window overlap relative to this job's window.
  /// Returns 0 when the job has no flow on the link.
  double effective_concurrency(std::size_t link, JobId job) const;

  /// Fair-share bandwidth of one of `job`'s flows between `a` and `b`,
  /// starting from the uncongested path bandwidth `base_mbps` and applying
  /// every traversed constrained link's C_L / n_L cap. Falls back to
  /// treating the flow as a sole occupant on links it is not registered on
  /// (concurrency from the registered set + 1).
  double flow_bandwidth(JobId job, ServerId a, ServerId b, double base_mbps) const;

  /// Time-averaged fraction of `link`'s capacity handed out across all
  /// registered flows: sum over jobs of c_j * d_j / n_eff_j. Provably
  /// <= 1 (+ float tolerance) under the overlap-weighted fair share — the
  /// auditor's "link-share" invariant; exactly 1.0 on a saturated link
  /// with duty cycles off.
  double share_sum(std::size_t link) const;

  /// True iff the incremental per-link state equals what registering every
  /// job's current flow set from scratch would produce (auditor helper).
  bool equals(const LinkModel& other) const;

  void save_state(io::BinWriter& w) const;
  void restore_state(io::BinReader& r);

 private:
  void add_flows(JobId job, const std::vector<Flow>& flows, int sign);
  void touch_job(JobId job);
  /// Links traversed by a flow (2 NICs + up to 2 uplinks), deduplicated.
  int path_links(ServerId a, ServerId b, std::size_t out[4]) const;

  std::size_t server_count_ = 0;
  int servers_per_rack_ = 0;
  std::vector<double> capacity_;                  ///< per link; <= 0 = unconstrained
  std::vector<std::vector<LinkEntry>> entries_;   ///< per link, sorted by job id
  std::vector<std::vector<Flow>> flows_;          ///< per job, registration order
  std::vector<double> duty_;                      ///< per job, default 1.0
  std::vector<double> phase_;                     ///< per job, default 0.0
};

}  // namespace mlfs
