#include "sim/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace mlfs {

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  MLFS_EXPECT(config_.server_count >= 1);
  MLFS_EXPECT(config_.gpus_per_server >= 1);
  servers_.reserve(config_.server_count);
  const auto slow_from = static_cast<std::size_t>(std::lround(
      static_cast<double>(config_.server_count) * (1.0 - config_.slow_server_fraction)));
  for (std::size_t i = 0; i < config_.server_count; ++i) {
    const double speed = i >= slow_from ? config_.slow_server_speed : 1.0;
    servers_.emplace_back(static_cast<ServerId>(i), config_.gpus_per_server, speed);
  }
}

Server& Cluster::server(ServerId id) {
  MLFS_EXPECT(id < servers_.size());
  return servers_[id];
}

const Server& Cluster::server(ServerId id) const {
  MLFS_EXPECT(id < servers_.size());
  return servers_[id];
}

void Cluster::set_server_up(ServerId id, bool up) {
  Server& s = server(id);
  MLFS_EXPECT(s.up() != up);
  // A server may only go down empty: the engine evicts its tasks first,
  // so placement state never dangles onto dead hardware.
  if (!up) MLFS_EXPECT(s.task_count() == 0);
  s.up_ = up;
}

std::size_t Cluster::up_server_count() const {
  std::size_t n = 0;
  for (const Server& s : servers_) {
    if (s.up()) ++n;
  }
  return n;
}

std::vector<ServerId> Cluster::underloaded_servers(double hr) const {
  std::vector<ServerId> out;
  for (const Server& s : servers_) {
    if (s.up() && !s.overloaded(hr)) out.push_back(s.id());
  }
  return out;
}

std::vector<ServerId> Cluster::overloaded_servers(double hr) const {
  std::vector<ServerId> out;
  for (const Server& s : servers_) {
    if (s.up() && s.overloaded(hr)) out.push_back(s.id());
  }
  return out;
}

double Cluster::overload_degree() const {
  double sum = 0.0;
  std::size_t up = 0;
  for (const Server& s : servers_) {
    if (!s.up()) continue;
    sum += s.utilization().norm();
    ++up;
  }
  return up > 0 ? sum / static_cast<double>(up) : 0.0;
}

int Cluster::estimate_free_worker_slots(double hr, double typical_demand) const {
  int slots = 0;
  for (const Server& s : servers_) {
    if (!s.up()) continue;
    for (int g = 0; g < s.gpu_count(); ++g) {
      const double headroom = hr - s.gpu_load(g);
      if (headroom >= typical_demand) {
        slots += static_cast<int>(headroom / typical_demand);
      }
    }
  }
  return slots;
}

void Cluster::register_job(Job job, std::vector<Task> tasks) {
  MLFS_EXPECT(job.id() == jobs_.size());  // dense sequential ids
  for (const Task& t : tasks) {
    MLFS_EXPECT(t.id == tasks_.size());
    tasks_.push_back(t);
  }
  jobs_.push_back(std::move(job));
}

Task& Cluster::task(TaskId id) {
  MLFS_EXPECT(id < tasks_.size());
  return tasks_[id];
}

const Task& Cluster::task(TaskId id) const {
  MLFS_EXPECT(id < tasks_.size());
  return tasks_[id];
}

Job& Cluster::job(JobId id) {
  MLFS_EXPECT(id < jobs_.size());
  return jobs_[id];
}

const Job& Cluster::job(JobId id) const {
  MLFS_EXPECT(id < jobs_.size());
  return jobs_[id];
}

void Cluster::place_task(TaskId id, ServerId server_id, int gpu) {
  Task& t = task(id);
  MLFS_EXPECT(!t.placed());
  MLFS_EXPECT(t.state == TaskState::Queued);
  server(server_id).attach_task(t, gpu);
  t.server = server_id;
  t.gpu = gpu;
  t.state = TaskState::Running;
}

void Cluster::unplace_task(TaskId id) {
  Task& t = task(id);
  MLFS_EXPECT(t.placed());
  server(t.server).detach_task(t, t.gpu);
  t.server = kInvalidServer;
  t.gpu = kNoGpu;
  t.state = TaskState::Queued;
  t.usage_factor = 1.0;  // feasibility checks while queued use nominal demand
}

void Cluster::move_task(TaskId id, ServerId to_server, int to_gpu) {
  Task& t = task(id);
  MLFS_EXPECT(t.placed());
  server(t.server).detach_task(t, t.gpu);
  server(to_server).attach_task(t, to_gpu);
  t.server = to_server;
  t.gpu = to_gpu;
  ++t.migrations;
}

bool Cluster::job_fully_placed(const Job& job) const {
  for (const TaskId id : job.tasks()) {
    const Task& t = task(id);
    if (t.state == TaskState::Removed || t.state == TaskState::Finished) continue;
    if (!t.placed()) return false;
  }
  return true;
}

void Cluster::validate() const {
  for (const Server& s : servers_) {
    // A down server must be fully evacuated — any task still attached (or
    // any residual usage) means the crash path leaked placement state.
    if (!s.up()) {
      MLFS_EXPECT(s.task_count() == 0);
      const ResourceVector idle = s.utilization();
      for (std::size_t r = 0; r < kNumResources; ++r) MLFS_EXPECT(idle.at(r) < 1e-9);
    }
    ResourceVector cpu_mem_net;
    std::vector<double> gpu_sums(static_cast<std::size_t>(s.gpu_count()), 0.0);
    std::size_t counted = 0;
    for (int g = 0; g < s.gpu_count(); ++g) {
      for (const TaskId tid : s.tasks_on_gpu(g)) {
        const Task& t = task(tid);
        MLFS_EXPECT(t.server == s.id());
        MLFS_EXPECT(t.gpu == g);
        MLFS_EXPECT(t.state == TaskState::Running);
        const ResourceVector usage = t.demand * t.usage_factor;
        cpu_mem_net[Resource::Cpu] += usage[Resource::Cpu];
        cpu_mem_net[Resource::Mem] += usage[Resource::Mem];
        cpu_mem_net[Resource::Net] += usage[Resource::Net];
        gpu_sums[static_cast<std::size_t>(g)] += usage[Resource::Gpu];
        ++counted;
      }
    }
    MLFS_EXPECT(counted == s.task_count());
    const ResourceVector cached = s.utilization();
    MLFS_EXPECT(std::abs(cached[Resource::Cpu] - cpu_mem_net[Resource::Cpu]) < 1e-6);
    MLFS_EXPECT(std::abs(cached[Resource::Mem] - cpu_mem_net[Resource::Mem]) < 1e-6);
    MLFS_EXPECT(std::abs(cached[Resource::Net] - cpu_mem_net[Resource::Net]) < 1e-6);
    for (int g = 0; g < s.gpu_count(); ++g) {
      MLFS_EXPECT(std::abs(s.gpu_load(g) - gpu_sums[static_cast<std::size_t>(g)]) < 1e-6);
    }
  }
  // Every placed task appears on its server, and that server is up.
  for (const Task& t : tasks_) {
    if (!t.placed()) continue;
    MLFS_EXPECT(server(t.server).up());
    const auto& on_gpu = server(t.server).tasks_on_gpu(t.gpu);
    MLFS_EXPECT(std::find(on_gpu.begin(), on_gpu.end(), t.id) != on_gpu.end());
  }
}

void Cluster::set_usage_factor(TaskId id, double factor) {
  Task& t = task(id);
  const double old_factor = t.usage_factor;
  t.usage_factor = factor;
  if (t.placed()) server(t.server).adjust_usage(t, old_factor, factor);
}

void Cluster::record_transfer(ServerId a, ServerId b, double mb) {
  MLFS_EXPECT(mb >= 0.0);
  if (a == b) return;
  total_bandwidth_mb_ += mb;
  if (crosses_racks(a, b)) inter_rack_bandwidth_mb_ += mb;
  ++transfer_count_;
}

int Cluster::rack_of(ServerId id) const {
  MLFS_EXPECT(id < servers_.size());
  if (config_.servers_per_rack <= 0) return 0;
  return static_cast<int>(id) / config_.servers_per_rack;
}

bool Cluster::crosses_racks(ServerId a, ServerId b) const {
  if (config_.servers_per_rack <= 0) return false;
  return rack_of(a) != rack_of(b);
}

double Cluster::flow_bandwidth_between(ServerId a, ServerId b) const {
  return crosses_racks(a, b) ? config_.inter_rack_flow_bandwidth_mbps
                             : config_.effective_flow_bandwidth_mbps;
}

}  // namespace mlfs
