#include "sim/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"
#include "workload/model_zoo.hpp"

namespace mlfs {

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  MLFS_EXPECT(config_.server_count >= 1);
  MLFS_EXPECT(config_.gpus_per_server >= 1);
  // Non-uniform fleets: distribute total_gpus as evenly as ids allow — the
  // first `extra` servers carry one more GPU than the base.
  std::size_t gpu_base = static_cast<std::size_t>(config_.gpus_per_server);
  std::size_t gpu_extra = 0;
  if (config_.total_gpus > 0) {
    gpu_base = config_.total_gpus / config_.server_count;
    gpu_extra = config_.total_gpus - gpu_base * config_.server_count;
    MLFS_EXPECT(gpu_base >= 1);
  }
  servers_.reserve(config_.server_count);
  const auto slow_from = static_cast<std::size_t>(std::lround(
      static_cast<double>(config_.server_count) * (1.0 - config_.slow_server_fraction)));
  for (std::size_t i = 0; i < config_.server_count; ++i) {
    const double speed = i >= slow_from ? config_.slow_server_speed : 1.0;
    const int gpus = static_cast<int>(gpu_base + (i < gpu_extra ? 1 : 0));
    servers_.emplace_back(static_cast<ServerId>(i), gpus, speed);
  }
  if (config_.link_contention) {
    links_.reset(config_.server_count, config_.servers_per_rack, config_.nic_capacity_mbps,
                 config_.rack_uplink_capacity_mbps);
  }
}

Server& Cluster::server(ServerId id) {
  MLFS_EXPECT(id < servers_.size());
  return servers_[id];
}

const Server& Cluster::server(ServerId id) const {
  MLFS_EXPECT(id < servers_.size());
  return servers_[id];
}

void Cluster::set_server_up(ServerId id, bool up) {
  Server& s = server(id);
  MLFS_EXPECT(s.up() != up);
  // A server may only go down empty: the engine evicts its tasks first,
  // so placement state never dangles onto dead hardware.
  if (!up) MLFS_EXPECT(s.task_count() == 0);
  s.up_ = up;
  touch_server(id);
}

void Cluster::set_placement_cap(ServerId id, int cap) {
  Server& s = server(id);
  MLFS_EXPECT(cap >= -1);
  if (s.placement_cap_ == cap) return;
  s.placement_cap_ = cap;
  touch_server(id);
}

// ------------------------------------------------------ load index

void Cluster::touch_server(ServerId id) const {
  if (!index_valid_ || index_dirty_[id]) return;
  index_dirty_[id] = 1;
  index_dirty_ids_.push_back(id);
}

int Cluster::server_slot_estimate(const Server& s, double hr, double typical_demand) {
  int slots = 0;
  for (int g = 0; g < s.gpu_count(); ++g) {
    const double headroom = hr - s.gpu_load(g);
    if (headroom >= typical_demand) {
      slots += static_cast<int>(headroom / typical_demand);
    }
  }
  // Recovery-policy placement cap: a quarantined server (cap 0) offers no
  // admission slots, a probation server at most its remaining headcount.
  if (s.placement_cap() >= 0) {
    slots = std::min(slots,
                     std::max(0, s.placement_cap() - static_cast<int>(s.task_count())));
  }
  return slots;
}

void Cluster::refresh_load_index(double hr, double typical_demand) const {
  auto insert_sorted = [](std::vector<ServerId>& v, ServerId id) {
    v.insert(std::lower_bound(v.begin(), v.end(), id), id);
  };
  auto erase_sorted = [](std::vector<ServerId>& v, ServerId id) {
    const auto it = std::lower_bound(v.begin(), v.end(), id);
    MLFS_EXPECT(it != v.end() && *it == id);
    v.erase(it);
  };

  const bool bucketed = config_.placement_bucket_index;
  if (!index_valid_ || hr != index_hr_ || typical_demand != index_demand_) {
    // First query, or the query key changed: evaluate the whole fleet.
    ++index_stats_.full_rebuilds;
    index_stats_.servers_reindexed += servers_.size();
    index_hr_ = hr;
    index_demand_ = typical_demand;
    index_dirty_.assign(servers_.size(), 0);
    index_dirty_ids_.clear();
    index_overloaded_.assign(servers_.size(), 0);
    index_underloaded_.assign(servers_.size(), 0);
    index_slots_.assign(servers_.size(), 0);
    index_util_.assign(servers_.size(), ResourceVector{});
    index_least_gpu_.assign(servers_.size(), 0);
    index_least_load_.assign(servers_.size(), 0.0);
    index_total_slots_ = 0;
    underloaded_ids_.clear();
    overloaded_ids_.clear();
    if (bucketed) pindex_.reset(servers_.size(), hr, config_.placement_index_buckets);
    for (const Server& s : servers_) {
      const bool over = s.up() && s.overloaded(hr);
      const bool under = s.accepts_placements() && !over;
      index_overloaded_[s.id()] = over ? 1 : 0;
      index_underloaded_[s.id()] = under ? 1 : 0;
      if (over) overloaded_ids_.push_back(s.id());
      if (under) underloaded_ids_.push_back(s.id());
      index_util_[s.id()] = s.utilization();
      const int least = s.least_loaded_gpu();
      index_least_gpu_[s.id()] = least;
      index_least_load_[s.id()] = s.gpu_load(least);
      const int slots = s.up() ? server_slot_estimate(s, hr, typical_demand) : 0;
      index_slots_[s.id()] = slots;
      index_total_slots_ += slots;
      if (bucketed) {
        pindex_.set_server(s.id(), under, index_least_load_[s.id()],
                           index_util_[s.id()][Resource::Cpu], index_util_[s.id()][Resource::Mem],
                           index_util_[s.id()][Resource::Net]);
      }
    }
    index_valid_ = true;
    return;
  }

  if (index_dirty_ids_.empty()) return;
  ++index_stats_.refreshes;
  for (const ServerId id : index_dirty_ids_) {
    index_dirty_[id] = 0;
    const Server& s = servers_[id];
    const bool over = s.up() && s.overloaded(hr);
    const bool under = s.accepts_placements() && !over;
    const ResourceVector util = s.utilization();
    const int least = s.least_loaded_gpu();
    const double least_load = s.gpu_load(least);
    const int slots = s.up() ? server_slot_estimate(s, hr, typical_demand) : 0;
    // Compare-and-skip: placement churn (e.g. a gang placed and rolled
    // back between refreshing queries) dirties servers whose state nets
    // back to the exact same doubles. Recomputing is unavoidable — the
    // dirty bit only says "maybe changed" — but identical state needs no
    // partition or bucket surgery, and counting it as a reindex made
    // `servers_reindexed` grow ~45x faster than scheduling rounds.
    if (over == (index_overloaded_[id] != 0) && under == (index_underloaded_[id] != 0) &&
        slots == index_slots_[id] && least == index_least_gpu_[id] &&
        least_load == index_least_load_[id] && util[Resource::Gpu] == index_util_[id][Resource::Gpu] &&
        util[Resource::Cpu] == index_util_[id][Resource::Cpu] &&
        util[Resource::Mem] == index_util_[id][Resource::Mem] &&
        util[Resource::Net] == index_util_[id][Resource::Net]) {
      ++index_stats_.noop_reindexes;
      continue;
    }
    ++index_stats_.servers_reindexed;
    index_util_[id] = util;
    index_least_gpu_[id] = least;
    index_least_load_[id] = least_load;
    index_total_slots_ += slots - index_slots_[id];
    index_slots_[id] = slots;
    if (over != (index_overloaded_[id] != 0)) {
      if (over) insert_sorted(overloaded_ids_, id);
      else erase_sorted(overloaded_ids_, id);
      index_overloaded_[id] = over ? 1 : 0;
    }
    if (under != (index_underloaded_[id] != 0)) {
      if (under) insert_sorted(underloaded_ids_, id);
      else erase_sorted(underloaded_ids_, id);
      index_underloaded_[id] = under ? 1 : 0;
    }
    if (bucketed) {
      pindex_.set_server(id, under, least_load, util[Resource::Cpu], util[Resource::Mem],
                         util[Resource::Net]);
    }
  }
  index_dirty_ids_.clear();
}

std::size_t Cluster::up_server_count() const {
  std::size_t n = 0;
  for (const Server& s : servers_) {
    if (s.up()) ++n;
  }
  return n;
}

std::vector<ServerId> Cluster::underloaded_servers(double hr) const {
  if (config_.incremental_load_index) {
    refresh_load_index(hr, index_demand_);
    return underloaded_ids_;
  }
  std::vector<ServerId> out;
  for (const Server& s : servers_) {
    if (s.accepts_placements() && !s.overloaded(hr)) out.push_back(s.id());
  }
  return out;
}

void Cluster::underloaded_servers_into(double hr, std::vector<ServerId>& out) const {
  out.clear();
  if (config_.incremental_load_index) {
    refresh_load_index(hr, index_demand_);
    out.assign(underloaded_ids_.begin(), underloaded_ids_.end());
    return;
  }
  for (const Server& s : servers_) {
    if (s.accepts_placements() && !s.overloaded(hr)) out.push_back(s.id());
  }
}

const std::vector<ServerId>& Cluster::underloaded_index(double hr) const {
  MLFS_EXPECT(config_.incremental_load_index);
  refresh_load_index(hr, index_demand_);
  return underloaded_ids_;
}

const PlacementIndex& Cluster::placement_index(double hr) const {
  MLFS_EXPECT(config_.incremental_load_index && config_.placement_bucket_index);
  refresh_load_index(hr, index_demand_);
  return pindex_;
}

std::vector<ServerId> Cluster::overloaded_servers(double hr) const {
  if (config_.incremental_load_index) {
    refresh_load_index(hr, index_demand_);
    return overloaded_ids_;
  }
  std::vector<ServerId> out;
  for (const Server& s : servers_) {
    if (s.up() && s.overloaded(hr)) out.push_back(s.id());
  }
  return out;
}

double Cluster::overload_degree() const {
  double sum = 0.0;
  std::size_t up = 0;
  for (const Server& s : servers_) {
    if (!s.up()) continue;
    sum += s.utilization().norm();
    ++up;
  }
  return up > 0 ? sum / static_cast<double>(up) : 0.0;
}

int Cluster::estimate_free_worker_slots(double hr, double typical_demand) const {
  if (config_.incremental_load_index) {
    refresh_load_index(hr, typical_demand);
    return static_cast<int>(index_total_slots_);
  }
  int slots = 0;
  for (const Server& s : servers_) {
    if (s.up()) slots += server_slot_estimate(s, hr, typical_demand);
  }
  return slots;
}

void Cluster::register_job(Job job, std::vector<Task> tasks) {
  MLFS_EXPECT(job.id() == jobs_.size());  // dense sequential ids
  for (const Task& t : tasks) {
    MLFS_EXPECT(t.id == tasks_.size());
    tasks_.push_back(t);
  }
  if (config_.link_contention) {
    // Duty cycle is a pure function of the model; phase offsets start at 0
    // (fully aligned — the worst case a network-aware scheduler improves).
    links_.set_job_duty_cycle(
        job.id(), config_.duty_cycles ? comm_duty_cycle(job.spec().algorithm) : 1.0);
  }
  jobs_.push_back(std::move(job));
  job_placement_epochs_.push_back(0);
}

Task& Cluster::task(TaskId id) {
  MLFS_EXPECT(id < tasks_.size());
  return tasks_[id];
}

const Task& Cluster::task(TaskId id) const {
  MLFS_EXPECT(id < tasks_.size());
  return tasks_[id];
}

Job& Cluster::job(JobId id) {
  MLFS_EXPECT(id < jobs_.size());
  return jobs_[id];
}

const Job& Cluster::job(JobId id) const {
  MLFS_EXPECT(id < jobs_.size());
  return jobs_[id];
}

void Cluster::place_task(TaskId id, ServerId server_id, int gpu) {
  Task& t = task(id);
  MLFS_EXPECT(!t.placed());
  MLFS_EXPECT(t.state == TaskState::Queued);
  server(server_id).attach_task(t, gpu);
  t.server = server_id;
  t.gpu = gpu;
  t.state = TaskState::Running;
  touch_server(server_id);
  ++placement_epoch_;
  ++job_placement_epochs_[t.job];
  refresh_job_flows(t.job);
}

void Cluster::unplace_task(TaskId id) {
  Task& t = task(id);
  MLFS_EXPECT(t.placed());
  server(t.server).detach_task(t, t.gpu);
  if (config_.debug_slot_leak && (++debug_unplace_count_ % 7) == 0) {
    // Self-test bug (see ClusterConfig::debug_slot_leak): re-add the usage
    // the detach just removed, leaving a phantom slot on the server.
    server(t.server).adjust_usage(t, 0.0, t.usage_factor);
  }
  touch_server(t.server);
  ++placement_epoch_;
  ++job_placement_epochs_[t.job];
  t.server = kInvalidServer;
  t.gpu = kNoGpu;
  t.state = TaskState::Queued;
  t.usage_factor = 1.0;  // feasibility checks while queued use nominal demand
  refresh_job_flows(t.job);
}

void Cluster::move_task(TaskId id, ServerId to_server, int to_gpu) {
  Task& t = task(id);
  MLFS_EXPECT(t.placed());
  server(t.server).detach_task(t, t.gpu);
  server(to_server).attach_task(t, to_gpu);
  touch_server(t.server);
  touch_server(to_server);
  ++placement_epoch_;
  ++job_placement_epochs_[t.job];
  t.server = to_server;
  t.gpu = to_gpu;
  ++t.migrations;
  refresh_job_flows(t.job);
}

bool Cluster::job_fully_placed(const Job& job) const {
  for (const TaskId id : job.tasks()) {
    const Task& t = task(id);
    if (t.state == TaskState::Removed || t.state == TaskState::Finished) continue;
    if (!t.placed()) return false;
  }
  return true;
}

void Cluster::validate() const {
  for (const Server& s : servers_) {
    // A down server must be fully evacuated — any task still attached (or
    // any residual usage) means the crash path leaked placement state.
    if (!s.up()) {
      MLFS_EXPECT(s.task_count() == 0);
      const ResourceVector idle = s.utilization();
      for (std::size_t r = 0; r < kNumResources; ++r) MLFS_EXPECT(idle.at(r) < 1e-9);
    }
    ResourceVector cpu_mem_net;
    std::vector<double> gpu_sums(static_cast<std::size_t>(s.gpu_count()), 0.0);
    std::size_t counted = 0;
    for (int g = 0; g < s.gpu_count(); ++g) {
      for (const TaskId tid : s.tasks_on_gpu(g)) {
        const Task& t = task(tid);
        MLFS_EXPECT(t.server == s.id());
        MLFS_EXPECT(t.gpu == g);
        MLFS_EXPECT(t.state == TaskState::Running);
        const ResourceVector usage = t.demand * t.usage_factor;
        cpu_mem_net[Resource::Cpu] += usage[Resource::Cpu];
        cpu_mem_net[Resource::Mem] += usage[Resource::Mem];
        cpu_mem_net[Resource::Net] += usage[Resource::Net];
        gpu_sums[static_cast<std::size_t>(g)] += usage[Resource::Gpu];
        ++counted;
      }
    }
    MLFS_EXPECT(counted == s.task_count());
    const ResourceVector cached = s.utilization();
    MLFS_EXPECT(std::abs(cached[Resource::Cpu] - cpu_mem_net[Resource::Cpu]) < 1e-6);
    MLFS_EXPECT(std::abs(cached[Resource::Mem] - cpu_mem_net[Resource::Mem]) < 1e-6);
    MLFS_EXPECT(std::abs(cached[Resource::Net] - cpu_mem_net[Resource::Net]) < 1e-6);
    for (int g = 0; g < s.gpu_count(); ++g) {
      MLFS_EXPECT(std::abs(s.gpu_load(g) - gpu_sums[static_cast<std::size_t>(g)]) < 1e-6);
    }
  }
  // Every placed task appears on its server, and that server is up.
  for (const Task& t : tasks_) {
    if (!t.placed()) continue;
    MLFS_EXPECT(server(t.server).up());
    const auto& on_gpu = server(t.server).tasks_on_gpu(t.gpu);
    MLFS_EXPECT(std::find(on_gpu.begin(), on_gpu.end(), t.id) != on_gpu.end());
  }
}

void Cluster::set_usage_factor(TaskId id, double factor) {
  Task& t = task(id);
  const double old_factor = t.usage_factor;
  t.usage_factor = factor;
  if (t.placed()) {
    server(t.server).adjust_usage(t, old_factor, factor);
    touch_server(t.server);
  }
}

void Cluster::record_transfer(ServerId a, ServerId b, double mb) {
  MLFS_EXPECT(mb >= 0.0);
  if (a == b) return;
  total_bandwidth_mb_ += mb;
  if (crosses_racks(a, b)) inter_rack_bandwidth_mb_ += mb;
  ++transfer_count_;
}

int Cluster::rack_of(ServerId id) const {
  MLFS_EXPECT(id < servers_.size());
  if (config_.servers_per_rack <= 0) return 0;
  return static_cast<int>(id) / config_.servers_per_rack;
}

bool Cluster::crosses_racks(ServerId a, ServerId b) const {
  if (config_.servers_per_rack <= 0) return false;
  return rack_of(a) != rack_of(b);
}

double Cluster::flow_bandwidth_between(ServerId a, ServerId b) const {
  return crosses_racks(a, b) ? config_.inter_rack_flow_bandwidth_mbps
                             : config_.effective_flow_bandwidth_mbps;
}

// ---------------------------------------------------- link contention

std::vector<LinkModel::Flow> Cluster::compute_job_flows(JobId id) const {
  MLFS_EXPECT(id < jobs_.size());
  std::vector<LinkModel::Flow> flows;
  const Job& j = jobs_[id];
  const Dag& dag = j.dag();
  // DAG edges whose endpoints sit on different servers — the same edges
  // SimEngine::iteration_duration charges cross-server communication for.
  for (std::size_t u = 0; u < dag.node_count(); ++u) {
    const Task& t = tasks_[j.task_at(u)];
    if (t.state == TaskState::Finished || t.state == TaskState::Removed || !t.placed()) continue;
    for (const std::size_t p : dag.parents(u)) {
      const Task& pt = tasks_[j.task_at(p)];
      if (pt.placed() && pt.server != t.server) flows.push_back({pt.server, t.server});
    }
  }
  if (j.spec().comm == CommStructure::AllReduce) {
    // Cross-server hops of the worker ring (iteration-end all-reduce).
    const std::size_t n = j.task_count();
    for (std::size_t i = 0; i < n; ++i) {
      const Task& a = tasks_[j.task_at(i)];
      const Task& b = tasks_[j.task_at((i + 1) % n)];
      if (a.placed() && b.placed() && a.server != b.server) {
        flows.push_back({a.server, b.server});
      }
    }
  }
  return flows;
}

void Cluster::refresh_job_flows(JobId id) {
  if (!config_.link_contention) return;
  links_.update_job_flows(id, compute_job_flows(id));
}

bool Cluster::set_phase_offset(JobId id, double offset) {
  if (!config_.link_contention) return false;
  MLFS_EXPECT(id < jobs_.size());
  return links_.set_phase_offset(id, offset);
}

// ------------------------------------------------------- snapshot

namespace {

void write_resource_vector(io::BinWriter& w, const ResourceVector& v) {
  for (std::size_t r = 0; r < kNumResources; ++r) w.f64(v.at(r));
}

ResourceVector read_resource_vector(io::BinReader& r) {
  ResourceVector v;
  for (std::size_t i = 0; i < kNumResources; ++i) v.at(i) = r.f64();
  return v;
}

void write_id_vector(io::BinWriter& w, const std::vector<ServerId>& ids) {
  w.vec(ids, [&w](ServerId id) { w.u64(id); });
}

std::vector<ServerId> read_id_vector(io::BinReader& r) {
  return r.vec<ServerId>([&r] { return static_cast<ServerId>(r.u64()); });
}

}  // namespace

void Cluster::save_state(io::BinWriter& w) const {
  w.u64(servers_.size());
  for (const Server& s : servers_) s.save_state(w);

  w.u64(tasks_.size());
  for (const Task& t : tasks_) {
    w.u8(static_cast<std::uint8_t>(t.state));
    w.u64(t.server);
    w.i64(t.gpu);
    w.f64(t.queued_since);
    w.f64(t.total_waiting);
    w.i64(t.migrations);
    w.f64(t.usage_bias);
    w.f64(t.usage_factor);
    w.f64(t.pending_penalty_seconds);
  }

  w.u64(jobs_.size());
  for (const Job& j : jobs_) j.save_state(w);

  w.f64(total_bandwidth_mb_);
  w.f64(inter_rack_bandwidth_mb_);
  w.u64(transfer_count_);
  w.u64(placement_epoch_);
  w.vec(job_placement_epochs_, [&w](std::uint64_t e) { w.u64(e); });
  w.u64(debug_unplace_count_);

  // Lazy load index, wholesale: restoring "invalid, rebuild on first use"
  // instead would change the full_rebuilds/refreshes trajectory and break
  // bit-identical RunMetrics.
  w.boolean(index_valid_);
  w.f64(index_hr_);
  w.f64(index_demand_);
  w.vec(index_dirty_, [&w](char c) { w.u8(static_cast<std::uint8_t>(c)); });
  write_id_vector(w, index_dirty_ids_);
  w.vec(index_overloaded_, [&w](char c) { w.u8(static_cast<std::uint8_t>(c)); });
  w.vec(index_underloaded_, [&w](char c) { w.u8(static_cast<std::uint8_t>(c)); });
  w.vec(index_slots_, [&w](int v) { w.i64(v); });
  w.u64(index_util_.size());
  for (const ResourceVector& v : index_util_) write_resource_vector(w, v);
  w.vec(index_least_gpu_, [&w](int v) { w.i64(v); });
  w.vec_f64(index_least_load_);
  w.i64(index_total_slots_);
  write_id_vector(w, underloaded_ids_);
  write_id_vector(w, overloaded_ids_);
  w.u64(index_stats_.full_rebuilds);
  w.u64(index_stats_.refreshes);
  w.u64(index_stats_.servers_reindexed);
  w.u64(index_stats_.noop_reindexes);
  // The bucket index mirrors the refresh-time caches above bit for bit, so
  // only its query counters are written; restore rebuilds the structure.
  pindex_.save_state(w);
}

void Cluster::restore_state(io::BinReader& r) {
  const std::uint64_t server_count = r.u64();
  MLFS_EXPECT(server_count == servers_.size());  // fingerprint-matched config
  for (Server& s : servers_) s.restore_state(r);

  const std::uint64_t task_count = r.u64();
  MLFS_EXPECT(task_count == tasks_.size());
  for (Task& t : tasks_) {
    t.state = static_cast<TaskState>(r.u8());
    t.server = static_cast<ServerId>(r.u64());
    t.gpu = static_cast<int>(r.i64());
    t.queued_since = r.f64();
    t.total_waiting = r.f64();
    t.migrations = static_cast<int>(r.i64());
    t.usage_bias = r.f64();
    t.usage_factor = r.f64();
    t.pending_penalty_seconds = r.f64();
  }

  const std::uint64_t job_count = r.u64();
  MLFS_EXPECT(job_count == jobs_.size());
  for (Job& j : jobs_) j.restore_state(r);

  total_bandwidth_mb_ = r.f64();
  inter_rack_bandwidth_mb_ = r.f64();
  transfer_count_ = static_cast<std::size_t>(r.u64());
  placement_epoch_ = r.u64();
  job_placement_epochs_ = r.vec<std::uint64_t>([&r] { return r.u64(); });
  MLFS_EXPECT(job_placement_epochs_.size() == jobs_.size());
  debug_unplace_count_ = static_cast<std::size_t>(r.u64());

  index_valid_ = r.boolean();
  index_hr_ = r.f64();
  index_demand_ = r.f64();
  index_dirty_ = r.vec<char>([&r] { return static_cast<char>(r.u8()); });
  index_dirty_ids_ = read_id_vector(r);
  index_overloaded_ = r.vec<char>([&r] { return static_cast<char>(r.u8()); });
  index_underloaded_ = r.vec<char>([&r] { return static_cast<char>(r.u8()); });
  index_slots_ = r.vec<int>([&r] { return static_cast<int>(r.i64()); });
  const std::uint64_t util_count = r.u64();
  index_util_.clear();
  index_util_.reserve(static_cast<std::size_t>(util_count));
  for (std::uint64_t i = 0; i < util_count; ++i) index_util_.push_back(read_resource_vector(r));
  index_least_gpu_ = r.vec<int>([&r] { return static_cast<int>(r.i64()); });
  index_least_load_ = r.vec_f64();
  index_total_slots_ = static_cast<long long>(r.i64());
  underloaded_ids_ = read_id_vector(r);
  overloaded_ids_ = read_id_vector(r);
  index_stats_.full_rebuilds = static_cast<std::size_t>(r.u64());
  index_stats_.refreshes = static_cast<std::size_t>(r.u64());
  index_stats_.servers_reindexed = static_cast<std::size_t>(r.u64());
  index_stats_.noop_reindexes = static_cast<std::size_t>(r.u64());
  // Rebuild the bucket index from the restored caches it mirrors. Bucket
  // membership and values come out identical to the saving cluster's, so
  // every post-restore query examines the same servers and returns the
  // same candidates.
  if (config_.placement_bucket_index && index_valid_) {
    pindex_.reset(servers_.size(), index_hr_, config_.placement_index_buckets);
    for (ServerId id = 0; id < servers_.size(); ++id) {
      pindex_.set_server(id, index_underloaded_[id] != 0, index_least_load_[id],
                         index_util_[id][Resource::Cpu], index_util_[id][Resource::Mem],
                         index_util_[id][Resource::Net]);
    }
  }
  pindex_.restore_state(r);
}

}  // namespace mlfs
