#include "sim/snapshot.hpp"

#include <cerrno>
#include <cstring>
#include <istream>
#include <memory>
#include <ostream>

namespace mlfs {

namespace {

/// errno context for failed stream writes (disk full, short write, I/O
/// error); errno may be stale for non-file streams, so it is advisory.
std::string write_failure_detail(const std::string& what) {
  std::string detail = what;
  if (errno != 0) {
    detail += " (errno: ";
    detail += std::strerror(errno);
    detail += ")";
  }
  return detail;
}

}  // namespace

SnapshotError::SnapshotError(std::string section, std::uint64_t offset,
                             const std::string& detail)
    : ContractViolation("snapshot rejected [section=" + section +
                        " offset=" + std::to_string(offset) + "]: " + detail),
      section_(std::move(section)),
      offset_(offset) {}

std::uint64_t fnv1a(const char* data, std::size_t size, std::uint64_t h) {
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

io::BinWriter& SnapshotWriter::section(const std::string& name) {
  for (const Section& s : sections_) {
    MLFS_EXPECT(s.name != name);
  }
  sections_.emplace_back();
  sections_.back().name = name;
  current_ = std::make_unique<io::BinWriter>(sections_.back().payload);
  return *current_;
}

void SnapshotWriter::write(std::ostream& os) const {
  std::ostringstream body;
  io::BinWriter w(body);
  w.bytes(kSnapshotMagic, sizeof(kSnapshotMagic));
  w.u32(kSnapshotVersion);
  w.u64(fingerprint_);
  w.u32(static_cast<std::uint32_t>(sections_.size()));
  for (const Section& s : sections_) {
    w.u32(static_cast<std::uint32_t>(s.name.size()));
    w.bytes(s.name.data(), s.name.size());
    const std::string payload = s.payload.str();
    w.u64(payload.size());
    w.bytes(payload.data(), payload.size());
  }
  const std::string bytes = body.str();
  if (!body) {
    throw SnapshotError("io", 0, "snapshot serialization failed (out of memory?)");
  }
  const std::uint64_t checksum = fnv1a(bytes.data(), bytes.size());
  errno = 0;
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!os) {
    throw SnapshotError("io", 0, write_failure_detail("snapshot body write failed"));
  }
  io::BinWriter tail(os);
  tail.u64(checksum);
  os.flush();
  // A short write or disk-full must fail loudly here, not surface later as
  // an inexplicable truncated-file rejection during restore.
  if (!os) {
    throw SnapshotError("io", bytes.size(), write_failure_detail("snapshot checksum write failed"));
  }
}

namespace {

// Bounds-checked little-endian cursor over the slurped file, reporting the
// absolute byte offset of the first defect.
struct FileCursor {
  const std::string& bytes;
  std::uint64_t pos = 0;

  [[noreturn]] void fail(const char* section, const std::string& detail) const {
    throw SnapshotError(section, pos, detail);
  }

  void need(std::uint64_t n, const char* section, const char* what) {
    if (pos + n > bytes.size()) {
      fail(section, std::string("truncated file: need ") + std::to_string(n) + " bytes for " +
                        what + ", have " + std::to_string(bytes.size() - pos));
    }
  }

  std::uint32_t u32(const char* section, const char* what) {
    need(4, section, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[pos + i])) << (8 * i);
    }
    pos += 4;
    return v;
  }

  std::uint64_t u64(const char* section, const char* what) {
    need(8, section, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[pos + i])) << (8 * i);
    }
    pos += 8;
    return v;
  }

  std::string raw(std::uint64_t n, const char* section, const char* what) {
    need(n, section, what);
    std::string s = bytes.substr(static_cast<std::size_t>(pos), static_cast<std::size_t>(n));
    pos += n;
    return s;
  }
};

}  // namespace

SnapshotReader::SnapshotReader(std::istream& is, std::uint64_t expected_fingerprint) {
  std::string bytes((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  FileCursor c{bytes};

  const std::string magic = c.raw(sizeof(kSnapshotMagic), "header", "magic");
  if (std::memcmp(magic.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    throw SnapshotError("header", 0, "bad magic (not a MLFS snapshot file)");
  }
  version_ = c.u32("header", "version");
  if (version_ != kSnapshotVersion) {
    throw SnapshotError("header", 8,
                        "unsupported snapshot version " + std::to_string(version_) +
                            " (this build reads version " + std::to_string(kSnapshotVersion) +
                            ")");
  }
  fingerprint_ = c.u64("header", "fingerprint");

  const std::uint32_t count = c.u32("header", "section count");
  sections_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t name_at = c.pos;
    const std::uint32_t name_len = c.u32("header", "section name length");
    if (name_len > 256) {
      throw SnapshotError("header", name_at,
                          "implausible section name length " + std::to_string(name_len));
    }
    Section s;
    s.name = c.raw(name_len, "header", "section name");
    const std::uint64_t payload_len = c.u64(s.name.c_str(), "section payload length");
    s.offset = c.pos;
    s.payload = c.raw(payload_len, s.name.c_str(), "section payload");
    sections_.push_back(std::move(s));
  }

  // Trailing checksum covers everything before it; trailing garbage after
  // it is also a defect (a partially-overwritten file must not pass).
  const std::uint64_t checksum_at = c.pos;
  const std::uint64_t stored = c.u64("checksum", "checksum");
  if (c.pos != bytes.size()) {
    throw SnapshotError("checksum", c.pos,
                        std::to_string(bytes.size() - c.pos) + " trailing bytes after checksum");
  }
  const std::uint64_t computed = fnv1a(bytes.data(), static_cast<std::size_t>(checksum_at));
  if (stored != computed) {
    throw SnapshotError("checksum", checksum_at, "checksum mismatch (file corrupt)");
  }

  // Fingerprint last: only a structurally valid file earns the config
  // comparison, so the error message is trustworthy.
  if (fingerprint_ != expected_fingerprint) {
    throw SnapshotError("header", 12,
                        "config fingerprint mismatch: snapshot was written under a different "
                        "cluster/engine/workload/scheduler configuration");
  }
}

const SnapshotReader::Section* SnapshotReader::find(const std::string& name) const {
  for (const Section& s : sections_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

bool SnapshotReader::has_section(const std::string& name) const {
  return find(name) != nullptr;
}

std::istringstream SnapshotReader::section(const std::string& name) const {
  const Section* s = find(name);
  if (s == nullptr) {
    throw SnapshotError(name, 0, "required section missing from snapshot");
  }
  return std::istringstream(s->payload);
}

}  // namespace mlfs
