// Engine observability: an observer interface the engine notifies on every
// state-changing event, plus a JSONL writer implementation. Lets users
// trace a run (placements, migrations, preemptions, iteration progress)
// without touching the engine, e.g. to feed a timeline visualizer.
#pragma once

#include <iosfwd>
#include <string>

#include "common/sim_time.hpp"
#include "workload/ids.hpp"

namespace mlfs {

/// Event callbacks, all optional. Invoked synchronously by the engine at
/// the simulated time of the event; implementations must not mutate the
/// cluster.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;

  virtual void on_job_arrival(SimTime now, JobId job) { (void)now, (void)job; }
  virtual void on_task_placed(SimTime now, TaskId task, ServerId server, int gpu) {
    (void)now, (void)task, (void)server, (void)gpu;
  }
  virtual void on_task_released(SimTime now, TaskId task) { (void)now, (void)task; }
  virtual void on_task_preempted(SimTime now, TaskId task) { (void)now, (void)task; }
  virtual void on_task_migrated(SimTime now, TaskId task, ServerId from, ServerId to) {
    (void)now, (void)task, (void)from, (void)to;
  }
  virtual void on_job_started(SimTime now, JobId job) { (void)now, (void)job; }
  virtual void on_iteration_complete(SimTime now, JobId job, int iteration) {
    (void)now, (void)job, (void)iteration;
  }
  virtual void on_job_complete(SimTime now, JobId job) { (void)now, (void)job; }

  // Fault-injection events. on_task_killed fires for every fault-caused
  // eviction — a transient task kill or a task caught on a crashing
  // server (the latter arrives before that server's on_server_down).
  virtual void on_server_down(SimTime now, ServerId server) { (void)now, (void)server; }
  virtual void on_server_up(SimTime now, ServerId server) { (void)now, (void)server; }
  virtual void on_task_killed(SimTime now, TaskId task) { (void)now, (void)task; }

  /// Recovery policies: the job exhausted its fault-retry budget and was
  /// marked failed-permanent (terminal, like on_job_complete).
  virtual void on_job_failed(SimTime now, JobId job) { (void)now, (void)job; }
};

/// Writes one JSON object per event to a stream:
///   {"t":123.0,"event":"task_migrated","task":5,"from":0,"to":2}
/// Field order is fixed and values are plain numbers, so the output is
/// both jq-able and trivially diffable across deterministic replays.
class JsonlEventLog final : public EngineObserver {
 public:
  /// The stream must outlive the log. No buffering beyond the stream's own.
  explicit JsonlEventLog(std::ostream& out);

  void on_job_arrival(SimTime now, JobId job) override;
  void on_task_placed(SimTime now, TaskId task, ServerId server, int gpu) override;
  void on_task_released(SimTime now, TaskId task) override;
  void on_task_preempted(SimTime now, TaskId task) override;
  void on_task_migrated(SimTime now, TaskId task, ServerId from, ServerId to) override;
  void on_job_started(SimTime now, JobId job) override;
  void on_iteration_complete(SimTime now, JobId job, int iteration) override;
  void on_job_complete(SimTime now, JobId job) override;
  void on_server_down(SimTime now, ServerId server) override;
  void on_server_up(SimTime now, ServerId server) override;
  void on_task_killed(SimTime now, TaskId task) override;
  void on_job_failed(SimTime now, JobId job) override;

  std::size_t events_written() const { return events_; }

 private:
  void line(SimTime now, const std::string& event, const std::string& fields);

  std::ostream& out_;
  std::size_t events_ = 0;
};

}  // namespace mlfs
