#include "sim/event_log.hpp"

#include <ostream>
#include <sstream>

namespace mlfs {

JsonlEventLog::JsonlEventLog(std::ostream& out) : out_(out) {}

void JsonlEventLog::line(SimTime now, const std::string& event, const std::string& fields) {
  out_ << "{\"t\":" << now << ",\"event\":\"" << event << '"';
  if (!fields.empty()) out_ << ',' << fields;
  out_ << "}\n";
  ++events_;
}

void JsonlEventLog::on_job_arrival(SimTime now, JobId job) {
  std::ostringstream f;
  f << "\"job\":" << job;
  line(now, "job_arrival", f.str());
}

void JsonlEventLog::on_task_placed(SimTime now, TaskId task, ServerId server, int gpu) {
  std::ostringstream f;
  f << "\"task\":" << task << ",\"server\":" << server << ",\"gpu\":" << gpu;
  line(now, "task_placed", f.str());
}

void JsonlEventLog::on_task_released(SimTime now, TaskId task) {
  std::ostringstream f;
  f << "\"task\":" << task;
  line(now, "task_released", f.str());
}

void JsonlEventLog::on_task_preempted(SimTime now, TaskId task) {
  std::ostringstream f;
  f << "\"task\":" << task;
  line(now, "task_preempted", f.str());
}

void JsonlEventLog::on_task_migrated(SimTime now, TaskId task, ServerId from, ServerId to) {
  std::ostringstream f;
  f << "\"task\":" << task << ",\"from\":" << from << ",\"to\":" << to;
  line(now, "task_migrated", f.str());
}

void JsonlEventLog::on_job_started(SimTime now, JobId job) {
  std::ostringstream f;
  f << "\"job\":" << job;
  line(now, "job_started", f.str());
}

void JsonlEventLog::on_iteration_complete(SimTime now, JobId job, int iteration) {
  std::ostringstream f;
  f << "\"job\":" << job << ",\"iteration\":" << iteration;
  line(now, "iteration_complete", f.str());
}

void JsonlEventLog::on_job_complete(SimTime now, JobId job) {
  std::ostringstream f;
  f << "\"job\":" << job;
  line(now, "job_complete", f.str());
}

void JsonlEventLog::on_server_down(SimTime now, ServerId server) {
  std::ostringstream f;
  f << "\"server\":" << server;
  line(now, "server_down", f.str());
}

void JsonlEventLog::on_server_up(SimTime now, ServerId server) {
  std::ostringstream f;
  f << "\"server\":" << server;
  line(now, "server_up", f.str());
}

void JsonlEventLog::on_task_killed(SimTime now, TaskId task) {
  std::ostringstream f;
  f << "\"task\":" << task;
  line(now, "task_killed", f.str());
}

void JsonlEventLog::on_job_failed(SimTime now, JobId job) {
  std::ostringstream f;
  f << "\"job\":" << job;
  line(now, "job_failed", f.str());
}

}  // namespace mlfs
