#include "sim/server.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "sim/cluster.hpp"

namespace mlfs {

Server::Server(ServerId id, int gpu_count, double speed)
    : id_(id), gpu_count_(gpu_count), speed_(speed) {
  MLFS_EXPECT(gpu_count >= 1);
  MLFS_EXPECT(speed > 0.0);
  gpu_tasks_.resize(static_cast<std::size_t>(gpu_count));
  gpu_sums_.resize(static_cast<std::size_t>(gpu_count), 0.0);
}

const std::vector<TaskId>& Server::tasks_on_gpu(int gpu) const {
  MLFS_EXPECT(gpu >= 0 && gpu < gpu_count_);
  return gpu_tasks_[static_cast<std::size_t>(gpu)];
}

void Server::attach_task(const Task& task, int gpu) {
  MLFS_EXPECT(up_);  // placing onto a down server is a contract violation
  MLFS_EXPECT(gpu >= 0 && gpu < gpu_count_);
  tasks_.push_back(task.id);
  gpu_tasks_[static_cast<std::size_t>(gpu)].push_back(task.id);
  const ResourceVector usage = task.demand * task.usage_factor;
  cpu_sum_ += usage[Resource::Cpu];
  mem_sum_ += usage[Resource::Mem];
  net_sum_ += usage[Resource::Net];
  gpu_sums_[static_cast<std::size_t>(gpu)] += usage[Resource::Gpu];
}

void Server::detach_task(const Task& task, int gpu) {
  MLFS_EXPECT(gpu >= 0 && gpu < gpu_count_);
  auto erase_from = [&task](std::vector<TaskId>& v) {
    const auto it = std::find(v.begin(), v.end(), task.id);
    MLFS_EXPECT(it != v.end());
    v.erase(it);
  };
  erase_from(tasks_);
  erase_from(gpu_tasks_[static_cast<std::size_t>(gpu)]);
  const ResourceVector usage = task.demand * task.usage_factor;
  cpu_sum_ = std::max(0.0, cpu_sum_ - usage[Resource::Cpu]);
  mem_sum_ = std::max(0.0, mem_sum_ - usage[Resource::Mem]);
  net_sum_ = std::max(0.0, net_sum_ - usage[Resource::Net]);
  auto& g = gpu_sums_[static_cast<std::size_t>(gpu)];
  g = std::max(0.0, g - usage[Resource::Gpu]);
}

void Server::adjust_usage(const Task& task, double old_factor, double new_factor) {
  const double delta = new_factor - old_factor;
  cpu_sum_ += task.demand[Resource::Cpu] * delta;
  mem_sum_ += task.demand[Resource::Mem] * delta;
  net_sum_ += task.demand[Resource::Net] * delta;
  MLFS_EXPECT(task.gpu >= 0 && task.gpu < gpu_count_);
  gpu_sums_[static_cast<std::size_t>(task.gpu)] += task.demand[Resource::Gpu] * delta;
}

ResourceVector Server::utilization() const {
  double gpu_total = 0.0;
  for (const double g : gpu_sums_) gpu_total += g;
  return {gpu_total / static_cast<double>(gpu_count_), cpu_sum_, mem_sum_, net_sum_};
}

double Server::gpu_load(int gpu) const {
  MLFS_EXPECT(gpu >= 0 && gpu < gpu_count_);
  return gpu_sums_[static_cast<std::size_t>(gpu)];
}

int Server::least_loaded_gpu() const {
  int best = 0;
  for (int g = 1; g < gpu_count_; ++g) {
    if (gpu_sums_[static_cast<std::size_t>(g)] < gpu_sums_[static_cast<std::size_t>(best)]) {
      best = g;
    }
  }
  return best;
}

int Server::best_fitting_gpu(const Task& task, double hr) const {
  return best_fitting_gpu_for_usage(task.demand * task.usage_factor, hr);
}

int Server::best_fitting_gpu_for_usage(const ResourceVector& usage, double hr) const {
  const int least = least_loaded_gpu();
  if (fits_usage_without_overload(usage, least, hr)) return least;
  int best = kNoGpu;
  for (int g = 0; g < gpu_count_; ++g) {
    if (g == least || !fits_usage_without_overload(usage, g, hr)) continue;
    if (best == kNoGpu || gpu_sums_[static_cast<std::size_t>(g)] <
                              gpu_sums_[static_cast<std::size_t>(best)]) {
      best = g;
    }
  }
  return best;
}

bool Server::overloaded(double hr) const {
  if (cpu_sum_ > hr || mem_sum_ > hr || net_sum_ > hr) return true;
  for (const double g : gpu_sums_) {
    if (g > hr) return true;
  }
  return false;
}

bool Server::fits_without_overload(const Task& task, int gpu, double hr) const {
  return fits_usage_without_overload(task.demand * task.usage_factor, gpu, hr);
}

void Server::save_state(io::BinWriter& w) const {
  w.boolean(up_);
  w.i64(placement_cap_);
  w.vec(tasks_, [&w](TaskId t) { w.u64(t); });
  w.u64(gpu_tasks_.size());
  for (const std::vector<TaskId>& g : gpu_tasks_) {
    w.vec(g, [&w](TaskId t) { w.u64(t); });
  }
  w.f64(cpu_sum_);
  w.f64(mem_sum_);
  w.f64(net_sum_);
  w.vec_f64(gpu_sums_);
}

void Server::restore_state(io::BinReader& r) {
  up_ = r.boolean();
  placement_cap_ = static_cast<int>(r.i64());
  tasks_ = r.vec<TaskId>([&r] { return static_cast<TaskId>(r.u64()); });
  const std::uint64_t gpus = r.u64();
  MLFS_EXPECT(gpus == gpu_tasks_.size());  // static shape, set by the ctor
  for (std::vector<TaskId>& g : gpu_tasks_) {
    g = r.vec<TaskId>([&r] { return static_cast<TaskId>(r.u64()); });
  }
  cpu_sum_ = r.f64();
  mem_sum_ = r.f64();
  net_sum_ = r.f64();
  gpu_sums_ = r.vec_f64();
  MLFS_EXPECT(gpu_sums_.size() == static_cast<std::size_t>(gpu_count_));
}

bool Server::fits_usage_without_overload(const ResourceVector& usage, int gpu, double hr) const {
  MLFS_EXPECT(gpu >= 0 && gpu < gpu_count_);
  if (!accepts_placements()) return false;
  if (cpu_sum_ + usage[Resource::Cpu] > hr) return false;
  if (mem_sum_ + usage[Resource::Mem] > hr) return false;
  if (net_sum_ + usage[Resource::Net] > hr) return false;
  if (gpu_sums_[static_cast<std::size_t>(gpu)] + usage[Resource::Gpu] > hr) return false;
  return true;
}

}  // namespace mlfs
