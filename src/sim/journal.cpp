#include "sim/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <istream>
#include <sstream>

#include "sim/snapshot.hpp"

namespace mlfs {

namespace {

std::string errno_detail(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// 32-bit fold of the FNV-1a hash over the 4 little-endian length bytes.
std::uint32_t length_crc(std::uint32_t len) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>((len >> (8 * i)) & 0xff);
  const std::uint64_t h = fnv1a(bytes, sizeof(bytes));
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

}  // namespace

JournalError::JournalError(std::string section, std::uint64_t offset,
                           const std::string& detail)
    : ContractViolation("journal rejected [section=" + section +
                        " offset=" + std::to_string(offset) + "]: " + detail),
      section_(std::move(section)),
      offset_(offset) {}

void write_job_spec(io::BinWriter& w, const JobSpec& s) {
  w.u64(s.id);
  w.u8(static_cast<std::uint8_t>(s.algorithm));
  w.u8(static_cast<std::uint8_t>(s.comm));
  w.f64(s.arrival);
  w.f64(s.urgency);
  w.i64(s.max_iterations);
  w.i64(s.gpu_request);
  w.f64(s.train_data_mb);
  w.f64(s.accuracy_requirement);
  w.f64(s.deadline_slack_hours);
  w.f64(s.curve.max_accuracy);
  w.f64(s.curve.kappa);
  w.f64(s.curve.initial_loss);
  w.f64(s.curve.final_loss);
  w.f64(s.curve.noise_sigma);
  w.u64(s.curve.noise_seed);
  w.f64(s.comm_volume_ps_mb);
  w.f64(s.comm_volume_ww_mb);
  w.u8(static_cast<std::uint8_t>(s.stop_policy));
  w.u8(static_cast<std::uint8_t>(s.min_allowed_policy));
  w.u64(s.seed);
}

JobSpec read_job_spec(io::BinReader& r) {
  JobSpec s;
  s.id = static_cast<JobId>(r.u64());
  s.algorithm = static_cast<MlAlgorithm>(r.u8());
  s.comm = static_cast<CommStructure>(r.u8());
  s.arrival = r.f64();
  s.urgency = r.f64();
  s.max_iterations = static_cast<int>(r.i64());
  s.gpu_request = static_cast<int>(r.i64());
  s.train_data_mb = r.f64();
  s.accuracy_requirement = r.f64();
  s.deadline_slack_hours = r.f64();
  s.curve.max_accuracy = r.f64();
  s.curve.kappa = r.f64();
  s.curve.initial_loss = r.f64();
  s.curve.final_loss = r.f64();
  s.curve.noise_sigma = r.f64();
  s.curve.noise_seed = r.u64();
  s.comm_volume_ps_mb = r.f64();
  s.comm_volume_ww_mb = r.f64();
  s.stop_policy = static_cast<StopPolicy>(r.u8());
  s.min_allowed_policy = static_cast<StopPolicy>(r.u8());
  s.seed = r.u64();
  return s;
}

// --------------------------------------------------------------- sinks

FileJournalSink::FileJournalSink(const std::string& path, bool truncate) : path_(path) {
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    throw JournalError("io", 0, errno_detail("open " + path_ + " failed"));
  }
}

FileJournalSink::~FileJournalSink() {
  if (fd_ >= 0) ::close(fd_);
}

void FileJournalSink::append(const char* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t wrote = ::write(fd_, data + done, n - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw JournalError("io", bytes_written_ + done,
                         errno_detail("write to " + path_ + " failed"));
    }
    if (wrote == 0) {
      throw JournalError("io", bytes_written_ + done,
                         "short write to " + path_ + " (0 bytes accepted)");
    }
    done += static_cast<std::size_t>(wrote);
  }
  bytes_written_ += n;
}

void FileJournalSink::sync() {
  if (::fsync(fd_) != 0) {
    throw JournalError("io", bytes_written_, errno_detail("fsync " + path_ + " failed"));
  }
}

void MemoryJournalSink::append(const char* data, std::size_t n) {
  if (bytes_.size() + n > budget_) {
    // Simulated disk-full: accept the prefix that fits (a short write),
    // then fail the way the POSIX sink surfaces ENOSPC.
    const std::size_t fits = budget_ > bytes_.size() ? budget_ - bytes_.size() : 0;
    bytes_.append(data, fits);
    throw JournalError("io", bytes_.size(),
                       "short write (injected disk-full after " +
                           std::to_string(budget_) + " bytes): No space left on device");
  }
  bytes_.append(data, n);
}

// --------------------------------------------------------------- writer

JournalWriter::JournalWriter(std::unique_ptr<JournalSink> sink,
                             std::uint64_t config_fingerprint, std::uint64_t base_event,
                             std::uint64_t first_seq, FsyncPolicy policy, int group_records,
                             bool write_header)
    : sink_(std::move(sink)),
      base_event_(base_event),
      next_seq_(first_seq),
      policy_(policy),
      group_records_(group_records < 1 ? 1 : group_records) {
  MLFS_EXPECT(sink_ != nullptr);
  if (write_header) {
    std::ostringstream os;
    io::BinWriter w(os);
    w.bytes(kJournalMagic, sizeof(kJournalMagic));
    w.u32(kJournalVersion);
    w.u64(config_fingerprint);
    w.u64(base_event);
    w.u64(first_seq);
    const std::string bytes = os.str();
    sink_->append(bytes.data(), bytes.size());
    bytes_appended_ += bytes.size();
    // The header must hit stable storage before any record claims this
    // base; an Off policy still gets process-crash durability from the
    // unbuffered sink.
    if (policy_ != FsyncPolicy::Off) sink_->sync();
  }
}

std::uint64_t JournalWriter::append_frame(const JournalRecord& record, bool force_sync) {
  std::ostringstream os;
  io::BinWriter pw(os);
  pw.u64(record.seq);
  pw.u8(static_cast<std::uint8_t>(record.type));
  pw.u64(record.event_index);
  if (record.type == JournalRecordType::InjectArrival) {
    pw.u64(record.stream_seq);
    write_job_spec(pw, record.spec);
  }
  const std::string payload = os.str();
  MLFS_EXPECT(payload.size() <= kMaxJournalRecordBytes);

  std::ostringstream fs;
  io::BinWriter fw(fs);
  const auto len = static_cast<std::uint32_t>(payload.size());
  fw.u32(len);
  fw.u32(length_crc(len));
  fw.bytes(payload.data(), payload.size());
  fw.u64(fnv1a(payload.data(), payload.size()));
  const std::string frame = fs.str();

  // One append call per frame: a crash between frames leaves a clean
  // prefix; a crash inside the sink leaves at most one torn tail record,
  // which recovery drops.
  sink_->append(frame.data(), frame.size());
  bytes_appended_ += frame.size();
  ++next_seq_;
  ++since_sync_;
  const bool due = policy_ == FsyncPolicy::EveryRecord ||
                   (policy_ == FsyncPolicy::GroupCommit &&
                    (force_sync || since_sync_ >= group_records_));
  if (due) sync();
  return record.seq;
}

std::uint64_t JournalWriter::append_arrival(std::uint64_t event_index,
                                            std::uint64_t stream_seq, const JobSpec& spec) {
  JournalRecord rec;
  rec.seq = next_seq_;
  rec.type = JournalRecordType::InjectArrival;
  rec.event_index = event_index;
  rec.stream_seq = stream_seq;
  rec.spec = spec;
  return append_frame(rec, /*force_sync=*/false);
}

std::uint64_t JournalWriter::append_barrier(std::uint64_t snapshot_event) {
  JournalRecord rec;
  rec.seq = next_seq_;
  rec.type = JournalRecordType::SnapshotBarrier;
  rec.event_index = snapshot_event;
  return append_frame(rec, /*force_sync=*/true);
}

std::uint64_t JournalWriter::append_clean_shutdown(std::uint64_t event_index) {
  JournalRecord rec;
  rec.seq = next_seq_;
  rec.type = JournalRecordType::CleanShutdown;
  rec.event_index = event_index;
  return append_frame(rec, /*force_sync=*/true);
}

std::uint64_t JournalWriter::append_record(const JournalRecord& record) {
  MLFS_EXPECT(record.seq == next_seq_);
  return append_frame(record, /*force_sync=*/false);
}

void JournalWriter::sync() {
  sink_->sync();
  since_sync_ = 0;
}

// --------------------------------------------------------------- reader

namespace {

std::uint32_t peek_u32(const std::string& bytes, std::uint64_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[pos + i])) << (8 * i);
  }
  return v;
}

std::uint64_t peek_u64(const std::string& bytes, std::uint64_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[pos + i])) << (8 * i);
  }
  return v;
}

}  // namespace

JournalReplay read_journal(std::istream& is, std::uint64_t expected_fingerprint) {
  std::string bytes((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  JournalReplay out;

  // Header. The writer emits it in one synced append, so a short header is
  // corruption, not a torn write.
  if (bytes.size() < kJournalHeaderBytes) {
    throw JournalError("header", bytes.size(),
                       "truncated header: need " + std::to_string(kJournalHeaderBytes) +
                           " bytes, have " + std::to_string(bytes.size()));
  }
  if (std::memcmp(bytes.data(), kJournalMagic, sizeof(kJournalMagic)) != 0) {
    throw JournalError("header", 0, "bad magic (not a MLFS journal file)");
  }
  const std::uint32_t version = peek_u32(bytes, 8);
  if (version != kJournalVersion) {
    throw JournalError("header", 8,
                       "unsupported journal version " + std::to_string(version) +
                           " (this build reads version " + std::to_string(kJournalVersion) +
                           ")");
  }
  out.fingerprint = peek_u64(bytes, 12);
  out.base_event = peek_u64(bytes, 20);
  out.first_seq = peek_u64(bytes, 28);
  if (out.fingerprint != expected_fingerprint) {
    throw JournalError("header", 12,
                       "config fingerprint mismatch: journal was written under a different "
                       "cluster/engine/workload/scheduler configuration");
  }

  std::uint64_t pos = kJournalHeaderBytes;
  std::uint64_t expected_seq = out.first_seq;
  while (pos < bytes.size()) {
    const std::uint64_t record_start = pos;
    if (bytes.size() - pos < 8) {
      // Not even a full (len, hcrc) header: a torn append of the final
      // record — drop it.
      out.torn_tail = true;
      out.torn_offset = record_start;
      break;
    }
    const std::uint32_t len = peek_u32(bytes, pos);
    const std::uint32_t hcrc = peek_u32(bytes, pos + 4);
    if (length_crc(len) != hcrc) {
      // The writer emits the 8 header bytes atomically within one append,
      // so a mismatch is a flipped bit, not a torn write — and a corrupt
      // length could otherwise swallow valid later records silently.
      throw JournalError("record", record_start, "corrupt frame header (length checksum)");
    }
    if (len > kMaxJournalRecordBytes) {
      throw JournalError("record", record_start,
                         "implausible record length " + std::to_string(len));
    }
    pos += 8;
    if (bytes.size() - pos < static_cast<std::uint64_t>(len) + 8) {
      out.torn_tail = true;  // frame body/crc torn mid-append
      out.torn_offset = record_start;
      break;
    }
    const char* payload = bytes.data() + pos;
    pos += len;
    const std::uint64_t stored_crc = peek_u64(bytes, pos);
    pos += 8;
    const bool is_last = pos == bytes.size();
    if (fnv1a(payload, len) != stored_crc) {
      if (is_last) {
        // Corrupt final record: indistinguishable from a torn tail at the
        // storage layer — drop only it, keep everything before.
        out.torn_tail = true;
        out.torn_offset = record_start;
        break;
      }
      throw JournalError("record", record_start,
                         "payload checksum mismatch with valid records following "
                         "(mid-log corruption)");
    }

    JournalRecord rec;
    try {
      std::istringstream ps(std::string(payload, len));
      io::BinReader r(ps);
      rec.seq = r.u64();
      const std::uint8_t type = r.u8();
      if (type < static_cast<std::uint8_t>(JournalRecordType::InjectArrival) ||
          type > static_cast<std::uint8_t>(JournalRecordType::CleanShutdown)) {
        throw JournalError("record", record_start,
                           "unknown record type " + std::to_string(type));
      }
      rec.type = static_cast<JournalRecordType>(type);
      rec.event_index = r.u64();
      if (rec.type == JournalRecordType::InjectArrival) {
        rec.stream_seq = r.u64();
        rec.spec = read_job_spec(r);
      }
    } catch (const JournalError&) {
      throw;
    } catch (const ContractViolation& e) {
      throw JournalError("record", record_start,
                         std::string("malformed record payload: ") + e.what());
    }
    if (rec.seq != expected_seq) {
      throw JournalError("record", record_start,
                         "sequence gap: expected " + std::to_string(expected_seq) +
                             ", found " + std::to_string(rec.seq));
    }
    if (out.clean_shutdown) {
      throw JournalError("record", record_start,
                         "record after the clean-shutdown marker");
    }
    ++expected_seq;
    if (rec.type == JournalRecordType::CleanShutdown) out.clean_shutdown = true;
    out.records.push_back(std::move(rec));
  }
  out.next_seq = expected_seq;
  return out;
}

JournalReplay read_journal_file(const std::string& path, std::uint64_t expected_fingerprint) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw JournalError("io", 0, errno_detail("open " + path + " failed"));
  }
  return read_journal(is, expected_fingerprint);
}

}  // namespace mlfs
