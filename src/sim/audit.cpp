#include "sim/audit.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "sim/engine.hpp"
#include "sim/metrics.hpp"

namespace mlfs {

namespace {

/// Tolerance for incrementally-maintained usage sums vs a full recompute:
/// detach clamps at zero, so sums can carry float rounding from the
/// attach/detach history (same bound Cluster::validate uses). Real leaks —
/// a whole task's usage — are orders of magnitude larger.
constexpr double kUsageTol = 1e-6;
/// Relative tolerance for end-of-run mean reconciliation (the metrics and
/// the auditor may sum in different orders).
constexpr double kMeanTol = 1e-9;

bool close(double a, double b, double tol) { return std::abs(a - b) < tol; }

}  // namespace

std::string AuditReport::to_string() const {
  std::ostringstream out;
  out << "invariant violated: " << invariant << "\n  at sim_time=" << sim_time
      << "s event=" << event << " (event #" << event_index << ")\n  " << detail;
  return out.str();
}

AuditViolation::AuditViolation(AuditReport report)
    : ContractViolation(report.to_string()), report_(std::move(report)) {}

SimAuditor::SimAuditor(const SimEngine& engine)
    : engine_(engine), arrived_(engine.cluster_.job_count(), 0) {}

void SimAuditor::fail(const char* invariant, const std::string& detail) const {
  throw AuditViolation(AuditReport{invariant, detail, current_event_, engine_.now_,
                                   events_seen_});
}

void SimAuditor::on_sim_start() {
  current_event_ = "sim-start";
  check_dag_structure();
  check_now("sim-start");
}

void SimAuditor::after_event(const char* event, JobId subject) {
  ++events_seen_;
  // Arrival tracking must see every event (the queue-coverage invariant
  // only applies to jobs whose arrival has actually been processed; the
  // spec's arrival time alone is ambiguous at equal-time event ties).
  if (std::strcmp(event, "arrival") == 0 && subject < arrived_.size()) arrived_[subject] = 1;
  const int stride = std::max(1, engine_.config_.audit.stride);
  if (events_seen_ % static_cast<std::uint64_t>(stride) != 0) return;
  check_now(event);
}

void SimAuditor::on_job_injected() {
  // The streamed job was just registered; its Arrival event is pending,
  // so it has not arrived yet.
  arrived_.resize(engine_.cluster_.job_count(), 0);
}

void SimAuditor::resync_after_restore() {
  current_event_ = "restore";
  events_seen_ = engine_.events_processed_;
  // A job has arrived iff no Arrival event for it is still pending in the
  // restored queue — job state alone is ambiguous (pre-arrival jobs are
  // also Waiting).
  // Restore may have registered injected jobs (snapshot "injected"
  // section), so re-size to the live job count before re-deriving.
  arrived_.assign(engine_.cluster_.job_count(), 1);
  auto pending = engine_.events_;  // priority_queue: drain a copy to iterate
  while (!pending.empty()) {
    const auto& ev = pending.top();
    if (ev.type == SimEngine::EventType::Arrival && ev.job < arrived_.size()) {
      arrived_[ev.job] = 0;
    }
    pending.pop();
  }
  last_now_ = engine_.now_;
  last_iterations_run_ = engine_.iterations_run_;
  last_migrations_ = engine_.migrations_;
  last_preemptions_ = engine_.preemptions_;
  last_jobs_completed_ = engine_.jobs_completed_;
  last_jobs_failed_ = engine_.jobs_failed_;
  last_retry_backoffs_ = engine_.retry_backoffs_;
  last_server_failures_ = engine_.server_failures_;
  last_task_kills_ = engine_.task_kills_;
  last_bandwidth_mb_ = engine_.cluster_.total_bandwidth_mb();
  last_inter_rack_mb_ = engine_.cluster_.inter_rack_bandwidth_mb();
  check_now("restore");
}

void SimAuditor::check_now(const char* context) {
  current_event_ = context;
  ++audits_;
  check_servers_and_tasks();
  check_load_index();
  check_queue();
  check_link_model();
  check_jobs();
  check_prediction_service();
  check_accounting();
  engine_.scheduler_.audit_invariants(engine_.cluster_, engine_.now_);
}

// ------------------------------------------------------------ DAG

void SimAuditor::check_dag_structure() const {
  const Cluster& cluster = engine_.cluster_;
  for (const Job& job : cluster.jobs()) {
    const Dag& dag = job.dag();
    if (dag.node_count() != job.task_count()) {
      fail("dag-structure", "job " + std::to_string(job.id()) + ": dag has " +
                                std::to_string(dag.node_count()) + " nodes but " +
                                std::to_string(job.task_count()) + " tasks");
    }
    if (!dag.is_acyclic()) {
      fail("dag-structure", "job " + std::to_string(job.id()) + ": dag is cyclic");
    }
    // Topological order covers every node once, parents strictly first.
    const std::vector<std::size_t> order = dag.topological_order();
    std::vector<std::size_t> position(dag.node_count(), dag.node_count());
    if (order.size() != dag.node_count()) {
      fail("dag-structure",
           "job " + std::to_string(job.id()) + ": topological order has " +
               std::to_string(order.size()) + " of " + std::to_string(dag.node_count()) +
               " nodes");
    }
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] >= dag.node_count() || position[order[i]] != dag.node_count()) {
        fail("dag-structure", "job " + std::to_string(job.id()) +
                                  ": topological order repeats or exceeds node ids");
      }
      position[order[i]] = i;
    }
    for (std::size_t u = 0; u < dag.node_count(); ++u) {
      for (const std::size_t v : dag.children(u)) {
        if (v >= dag.node_count() || position[u] >= position[v]) {
          fail("dag-structure", "job " + std::to_string(job.id()) + ": edge " +
                                    std::to_string(u) + "->" + std::to_string(v) +
                                    " violates topological order");
        }
        // Adjacency mirrors: every child edge has the matching parent edge.
        const auto& ps = dag.parents(v);
        if (std::find(ps.begin(), ps.end(), u) == ps.end()) {
          fail("dag-structure", "job " + std::to_string(job.id()) + ": edge " +
                                    std::to_string(u) + "->" + std::to_string(v) +
                                    " missing from parents list");
        }
      }
    }
    // Static spec sanity used throughout the engine's arithmetic.
    if (job.deadline() < job.spec().arrival) {
      fail("dag-structure",
           "job " + std::to_string(job.id()) + ": deadline precedes arrival");
    }
    for (const TaskId tid : job.tasks()) {
      if (tid >= cluster.task_count() || cluster.task(tid).job != job.id()) {
        fail("dag-structure", "job " + std::to_string(job.id()) + ": task id " +
                                  std::to_string(tid) + " invalid or owned by another job");
      }
    }
  }
}

// --------------------------------------------- servers & placement

void SimAuditor::check_servers_and_tasks() const {
  const Cluster& cluster = engine_.cluster_;
  std::vector<char> placed_somewhere(cluster.task_count(), 0);
  for (const Server& s : cluster.servers()) {
    if (!s.up()) {
      if (s.task_count() != 0) {
        fail("task-on-down-server", "server " + std::to_string(s.id()) + " is down but hosts " +
                                        std::to_string(s.task_count()) + " tasks");
      }
      const ResourceVector idle = s.utilization();
      for (std::size_t r = 0; r < kNumResources; ++r) {
        if (idle.at(r) >= 1e-9) {
          fail("server-usage", "down server " + std::to_string(s.id()) +
                                   " has residual utilization " + std::to_string(idle.at(r)) +
                                   " on resource " + std::to_string(r));
        }
      }
    }
    // GPU slot conservation: the per-GPU lists partition the server's task
    // list, and the incremental usage sums match a recompute from the task
    // pool (a mismatch is exactly a leaked / double-counted slot).
    ResourceVector recomputed;
    std::vector<double> gpu_sums(static_cast<std::size_t>(s.gpu_count()), 0.0);
    std::size_t counted = 0;
    for (int g = 0; g < s.gpu_count(); ++g) {
      for (const TaskId tid : s.tasks_on_gpu(g)) {
        const Task& t = cluster.task(tid);
        if (t.server != s.id() || t.gpu != g || t.state != TaskState::Running) {
          fail("slot-conservation",
               "task " + std::to_string(tid) + " listed on server " + std::to_string(s.id()) +
                   " gpu " + std::to_string(g) + " but records server=" +
                   std::to_string(t.server) + " gpu=" + std::to_string(t.gpu));
        }
        if (placed_somewhere[tid]) {
          fail("slot-conservation",
               "task " + std::to_string(tid) + " appears on more than one GPU slot");
        }
        placed_somewhere[tid] = 1;
        const ResourceVector usage = t.demand * t.usage_factor;
        recomputed[Resource::Cpu] += usage[Resource::Cpu];
        recomputed[Resource::Mem] += usage[Resource::Mem];
        recomputed[Resource::Net] += usage[Resource::Net];
        gpu_sums[static_cast<std::size_t>(g)] += usage[Resource::Gpu];
        ++counted;
      }
    }
    if (counted != s.task_count()) {
      fail("slot-conservation", "server " + std::to_string(s.id()) + ": gpu lists hold " +
                                    std::to_string(counted) + " tasks but task list holds " +
                                    std::to_string(s.task_count()));
    }
    const ResourceVector cached = s.utilization();
    for (const Resource r : {Resource::Cpu, Resource::Mem, Resource::Net}) {
      if (!close(cached[r], recomputed[r], kUsageTol)) {
        std::ostringstream out;
        out << "server " << s.id() << " resource " << static_cast<int>(r)
            << ": cached usage sum " << cached[r] << " != recomputed " << recomputed[r]
            << " (leaked or double-counted slot)";
        fail("server-usage", out.str());
      }
    }
    for (int g = 0; g < s.gpu_count(); ++g) {
      if (!close(s.gpu_load(g), gpu_sums[static_cast<std::size_t>(g)], kUsageTol)) {
        std::ostringstream out;
        out << "server " << s.id() << " gpu " << g << ": cached load " << s.gpu_load(g)
            << " != recomputed " << gpu_sums[static_cast<std::size_t>(g)]
            << " (leaked or double-counted slot)";
        fail("server-usage", out.str());
      }
    }
  }
  for (TaskId tid = 0; tid < cluster.task_count(); ++tid) {
    const Task& t = cluster.task(tid);
    if (t.placed() != (t.state == TaskState::Running)) {
      fail("task-state", "task " + std::to_string(tid) + ": placed=" +
                             std::to_string(t.placed()) + " inconsistent with state " +
                             std::to_string(static_cast<int>(t.state)));
    }
    if (t.placed()) {
      if (t.server >= cluster.server_count()) {
        fail("task-state",
             "task " + std::to_string(tid) + " placed on invalid server " +
                 std::to_string(t.server));
      }
      if (!cluster.server(t.server).up()) {
        fail("task-on-down-server", "task " + std::to_string(tid) + " resident on down server " +
                                        std::to_string(t.server));
      }
      if (!placed_somewhere[tid]) {
        fail("slot-conservation", "task " + std::to_string(tid) + " records server " +
                                      std::to_string(t.server) +
                                      " but is missing from its GPU lists");
      }
    } else if (placed_somewhere[tid]) {
      fail("slot-conservation",
           "task " + std::to_string(tid) + " is unplaced but still on a server task list");
    }
    if (t.state == TaskState::Finished && !cluster.job(t.job).done()) {
      fail("task-state", "task " + std::to_string(tid) + " finished but job " +
                             std::to_string(t.job) + " is not done");
    }
  }
}

// ----------------------------------------------------- load index

void SimAuditor::check_load_index() const {
  const Cluster& cluster = engine_.cluster_;
  if (!cluster.config().incremental_load_index || !cluster.index_valid_) return;
  const std::size_t n = cluster.server_count();
  if (cluster.index_overloaded_.size() != n || cluster.index_underloaded_.size() != n ||
      cluster.index_slots_.size() != n || cluster.index_dirty_.size() != n) {
    fail("load-index", "index arrays not sized to the fleet");
  }
  // Partition id vectors: sorted ascending, mirror the flag arrays.
  for (const auto* ids : {&cluster.underloaded_ids_, &cluster.overloaded_ids_}) {
    for (std::size_t i = 0; i + 1 < ids->size(); ++i) {
      if ((*ids)[i] >= (*ids)[i + 1]) {
        fail("load-index", "partition id vector not strictly ascending");
      }
    }
  }
  std::vector<char> in_under(n, 0);
  std::vector<char> in_over(n, 0);
  for (const ServerId id : cluster.underloaded_ids_) {
    if (id >= n) fail("load-index", "underloaded id out of range");
    in_under[id] = 1;
  }
  for (const ServerId id : cluster.overloaded_ids_) {
    if (id >= n) fail("load-index", "overloaded id out of range");
    in_over[id] = 1;
  }
  long long total_slots = 0;
  std::vector<char> dirty_listed(n, 0);
  for (const ServerId id : cluster.index_dirty_ids_) {
    if (id >= n) fail("load-index", "dirty id out of range");
    if (dirty_listed[id] != 0) {
      fail("load-index",
           "server " + std::to_string(id) + " listed twice in the dirty set (dedupe broken)");
    }
    dirty_listed[id] = 1;
  }
  for (ServerId id = 0; id < n; ++id) {
    const bool flag_over = cluster.index_overloaded_[id] != 0;
    const bool flag_under = cluster.index_underloaded_[id] != 0;
    if (flag_over != (in_over[id] != 0) || flag_under != (in_under[id] != 0)) {
      fail("load-index", "server " + std::to_string(id) +
                             ": partition flags disagree with the sorted id vectors");
    }
    if (flag_over && flag_under) {
      fail("load-index",
           "server " + std::to_string(id) + " is both overloaded and underloaded");
    }
    if ((cluster.index_dirty_[id] != 0) != (dirty_listed[id] != 0)) {
      fail("load-index", "server " + std::to_string(id) +
                             ": dirty flag disagrees with the dirty id list");
    }
    total_slots += cluster.index_slots_[id];
    if (cluster.index_dirty_[id] != 0) continue;  // stale by design until next refresh
    // Clean server: every cached quantity must equal a live recompute.
    // This is the incremental-index == full-rescan ground-truth oracle; it
    // must NOT go through the refreshing query API (that would bump the
    // LoadIndexStats counters surfaced in RunMetrics and break
    // audited == unaudited determinism).
    const Server& s = cluster.server(id);
    const bool over = s.up() && s.overloaded(cluster.index_hr_);
    const bool under = s.accepts_placements() && !over;
    if (over != flag_over || under != flag_under) {
      std::ostringstream out;
      out << "server " << id << " is clean but cached partition (over=" << flag_over
          << ", under=" << flag_under << ") != rescan (over=" << over << ", under=" << under
          << ") at hr=" << cluster.index_hr_;
      fail("load-index", out.str());
    }
    const int slots =
        s.up() ? Cluster::server_slot_estimate(s, cluster.index_hr_, cluster.index_demand_) : 0;
    if (slots != cluster.index_slots_[id]) {
      fail("load-index", "server " + std::to_string(id) + ": cached slot estimate " +
                             std::to_string(cluster.index_slots_[id]) + " != rescan " +
                             std::to_string(slots));
    }
    const ResourceVector live = s.utilization();
    for (std::size_t r = 0; r < kNumResources; ++r) {
      if (live.at(r) != cluster.index_util_[id].at(r)) {
        fail("load-index", "server " + std::to_string(id) +
                               ": cached utilization diverged from live on clean server");
      }
    }
    const int least = s.least_loaded_gpu();
    if (least != cluster.index_least_gpu_[id] ||
        s.gpu_load(least) != cluster.index_least_load_[id]) {
      fail("load-index", "server " + std::to_string(id) +
                             ": cached least-loaded GPU diverged from live on clean server");
    }
  }
  if (total_slots != cluster.index_total_slots_) {
    fail("load-index", "free-slot aggregate " + std::to_string(cluster.index_total_slots_) +
                           " != sum of per-server estimates " + std::to_string(total_slots));
  }

  // Bucketed placement index: must mirror the underloaded partition and
  // the refresh-time load caches exactly, with every member filed in the
  // bucket its load maps to (so a reindex that changed a load actually
  // moved the server where the query will look for it).
  if (!cluster.config().placement_bucket_index) return;
  const PlacementIndex& pidx = cluster.pindex_;
  if (!pidx.initialized() || pidx.server_count() != n) {
    fail("placement-index", "bucket index not sized to the fleet");
  }
  if (pidx.hr() != cluster.index_hr_ ||
      pidx.bucket_count() != cluster.config().placement_index_buckets) {
    fail("placement-index", "bucket index key (hr / bucket count) diverged from the load index");
  }
  std::size_t members = 0;
  for (ServerId id = 0; id < n; ++id) {
    const bool under = cluster.index_underloaded_[id] != 0;
    if (pidx.is_member(id) != under) {
      fail("placement-index", "server " + std::to_string(id) +
                                  ": bucket membership disagrees with the underloaded partition");
    }
    if (!under) {
      // Non-members must carry the -1 sentinel so a stale bucket id can
      // never satisfy a query's cutoff compares.
      for (int d = 0; d < PlacementIndex::kDims; ++d) {
        if (pidx.bucket_of(d, id) != -1) {
          fail("placement-index", "server " + std::to_string(id) + " dim " + std::to_string(d) +
                                      ": non-member still carries bucket id " +
                                      std::to_string(pidx.bucket_of(d, id)));
        }
      }
      continue;
    }
    ++members;
    const double loads[PlacementIndex::kDims] = {
        cluster.index_least_load_[id], cluster.index_util_[id][Resource::Cpu],
        cluster.index_util_[id][Resource::Mem], cluster.index_util_[id][Resource::Net]};
    for (int d = 0; d < PlacementIndex::kDims; ++d) {
      if (pidx.load_of(d, id) != loads[d]) {
        fail("placement-index", "server " + std::to_string(id) + " dim " + std::to_string(d) +
                                    ": indexed load diverged from the refresh-time cache");
      }
      const int b = pidx.bucket_of(d, id);
      if (b != pidx.bucket_for_load(loads[d])) {
        fail("placement-index", "server " + std::to_string(id) + " dim " + std::to_string(d) +
                                    ": filed in bucket " + std::to_string(b) +
                                    " but its load maps to bucket " +
                                    std::to_string(pidx.bucket_for_load(loads[d])));
      }
      if (b < 0 || b >= pidx.bucket_count()) {
        fail("placement-index", "server " + std::to_string(id) + " dim " + std::to_string(d) +
                                    ": bucket id " + std::to_string(b) + " out of range");
      }
    }
  }
  if (members != pidx.member_count()) {
    fail("placement-index", "member count " + std::to_string(pidx.member_count()) +
                                " != underloaded partition size " + std::to_string(members));
  }
}

// ---------------------------------------------------------- queue

void SimAuditor::check_queue() const {
  const Cluster& cluster = engine_.cluster_;
  std::vector<char> in_queue(cluster.task_count(), 0);
  for (const TaskId tid : engine_.queue_) {
    if (tid >= cluster.task_count()) {
      fail("queue-consistency", "queue holds invalid task id " + std::to_string(tid));
    }
    const Task& t = cluster.task(tid);
    if (t.state == TaskState::Running) {
      fail("queue-consistency",
           "task " + std::to_string(tid) + " is running but still has a queue entry");
    }
    // Entries for finished tasks of completed jobs are tolerated until the
    // next compaction; anything else non-queued is a leak.
    if (t.state != TaskState::Queued && !cluster.job(t.job).done()) {
      fail("queue-consistency", "queue entry for task " + std::to_string(tid) +
                                    " in state " + std::to_string(static_cast<int>(t.state)) +
                                    " of an unfinished job");
    }
    in_queue[tid] = 1;
    if (tid < engine_.task_in_backoff_.size() && engine_.task_in_backoff_[tid]) {
      fail("queue-consistency", "task " + std::to_string(tid) +
                                    " is in retry backoff but still has a queue entry");
    }
  }
  // Coverage: every queued task of an arrived, unfinished job must be
  // reachable by the scheduler (gang placement cannot complete otherwise)
  // — unless it is parked in a retry-backoff window, in which case a
  // pending RetryRelease event owns its re-admission instead.
  for (TaskId tid = 0; tid < cluster.task_count(); ++tid) {
    const Task& t = cluster.task(tid);
    const bool in_backoff =
        tid < engine_.task_in_backoff_.size() && engine_.task_in_backoff_[tid] != 0;
    if (in_backoff && t.state != TaskState::Queued) {
      fail("queue-consistency", "task " + std::to_string(tid) + " is in retry backoff but in state " +
                                    std::to_string(static_cast<int>(t.state)));
    }
    if (t.state != TaskState::Queued || in_queue[tid] || in_backoff) continue;
    const Job& job = cluster.job(t.job);
    if (job.done() || t.job >= arrived_.size() || !arrived_[t.job]) continue;
    fail("queue-consistency", "task " + std::to_string(tid) + " of arrived job " +
                                  std::to_string(t.job) +
                                  " is queued but missing from the scheduler queue");
  }
}

// ----------------------------------------------------- link model

void SimAuditor::check_link_model() const {
  const Cluster& cluster = engine_.cluster_;
  if (!cluster.config().link_contention) return;
  const LinkModel& live = cluster.link_model();
  // Flow-set conservation: the incrementally maintained registrations must
  // equal registering every job's placement-derived flow set from scratch
  // (the ground-truth oracle — flows are a pure function of placements).
  LinkModel rebuilt;
  rebuilt.reset(cluster.server_count(), cluster.config().servers_per_rack,
                cluster.config().nic_capacity_mbps,
                cluster.config().rack_uplink_capacity_mbps);
  for (const Job& job : cluster.jobs()) {
    rebuilt.set_job_duty_cycle(job.id(), live.job_duty_cycle(job.id()));
    rebuilt.set_phase_offset(job.id(), live.phase_offset(job.id()));
    rebuilt.update_job_flows(job.id(), cluster.compute_job_flows(job.id()));
  }
  if (!live.equals(rebuilt)) {
    fail("link-model",
         "incremental link registrations diverge from a from-scratch rebuild "
         "of every job's placement-derived flow set");
  }
  // Per-job profile bounds the fair-share arithmetic relies on.
  for (const Job& job : cluster.jobs()) {
    const double d = live.job_duty_cycle(job.id());
    const double phi = live.phase_offset(job.id());
    if (!(d > 0.0) || d > 1.0 || phi < 0.0 || phi >= 1.0) {
      fail("link-model", "job " + std::to_string(job.id()) + " has duty cycle " +
                             std::to_string(d) + " / phase offset " + std::to_string(phi) +
                             " outside (0,1] x [0,1)");
    }
  }
  // Share-sum: the time-averaged capacity fraction a link hands out across
  // all registered flows never exceeds the link's own (== 1.0 exactly on a
  // saturated link with duty cycles off; see LinkModel::share_sum).
  for (std::size_t link = 0; link < live.link_count(); ++link) {
    const double s = live.share_sum(link);
    if (s > 1.0 + 1e-9) {
      fail("link-share", "link " + std::to_string(link) + " hands out share sum " +
                             std::to_string(s) + " > 1 across " +
                             std::to_string(live.link_entries(link).size()) + " jobs");
    }
  }
}

// ----------------------------------------------------------- jobs

void SimAuditor::check_jobs() const {
  const Cluster& cluster = engine_.cluster_;
  const SimTime now = engine_.now_;
  for (const Job& job : cluster.jobs()) {
    const JobId id = job.id();
    const bool arrived = id < arrived_.size() && arrived_[id] != 0;
    const bool terminal =
        job.state() == JobState::Completed || job.state() == JobState::Failed;
    if (terminal != job.done()) {
      fail("job-state", "job " + std::to_string(id) + ": state/done() disagree");
    }
    if (!arrived) {
      // Nothing may touch a job before its arrival event.
      if (job.state() != JobState::Waiting || job.completed_iterations() != 0) {
        fail("job-state",
             "job " + std::to_string(id) + " progressed before its arrival event");
      }
      for (const TaskId tid : job.tasks()) {
        if (cluster.task(tid).placed()) {
          fail("job-state", "task " + std::to_string(tid) + " of job " + std::to_string(id) +
                                " placed before arrival");
        }
      }
      continue;
    }
    switch (job.state()) {
      case JobState::Running: {
        // Gang execution: a running job has every live task resident — no
        // task iterates before its DAG parents are placed alongside it.
        if (!cluster.job_fully_placed(job)) {
          fail("gang-execution",
               "job " + std::to_string(id) + " is running but not fully placed");
        }
        if (engine_.iter_duration_[id] <= 0.0) {
          fail("job-state", "job " + std::to_string(id) +
                                " is running with no in-flight iteration");
        }
        if (engine_.iter_started_[id] > now + 1e-9) {
          fail("job-state",
               "job " + std::to_string(id) + " iteration started in the future");
        }
        break;
      }
      case JobState::Completed: {
        for (const TaskId tid : job.tasks()) {
          const Task& t = cluster.task(tid);
          if (t.state != TaskState::Finished || t.placed()) {
            fail("job-state", "completed job " + std::to_string(id) + " still owns task " +
                                  std::to_string(tid) + " in state " +
                                  std::to_string(static_cast<int>(t.state)));
          }
        }
        if (job.completion_time() < job.spec().arrival) {
          fail("job-state",
               "job " + std::to_string(id) + " completed before it arrived");
        }
        break;
      }
      case JobState::Failed: {
        // Failed-permanent: every task is terminal and off the fleet
        // (already-finished tasks stay Finished, the rest were removed),
        // and the failure instant is recorded like a completion.
        for (const TaskId tid : job.tasks()) {
          const Task& t = cluster.task(tid);
          if ((t.state != TaskState::Removed && t.state != TaskState::Finished) || t.placed()) {
            fail("job-state", "failed job " + std::to_string(id) + " still owns task " +
                                  std::to_string(tid) + " in state " +
                                  std::to_string(static_cast<int>(t.state)));
          }
          if (tid < engine_.task_in_backoff_.size() && engine_.task_in_backoff_[tid]) {
            fail("job-state", "failed job " + std::to_string(id) + " still has task " +
                                  std::to_string(tid) + " in retry backoff");
          }
        }
        if (job.completion_time() < job.spec().arrival) {
          fail("job-state", "job " + std::to_string(id) + " failed before it arrived");
        }
        break;
      }
      case JobState::Waiting: {
        if (engine_.waiting_since_[id] > now + 1e-9) {
          fail("job-state", "job " + std::to_string(id) + " waiting_since in the future");
        }
        break;
      }
    }
    if (engine_.resume_credit_[id] < 0.0 || engine_.resume_credit_[id] > 0.95 + 1e-12) {
      fail("job-state", "job " + std::to_string(id) + " resume credit " +
                            std::to_string(engine_.resume_credit_[id]) + " outside [0, 0.95]");
    }
    if (engine_.partial_since_[id] >= 0.0 && engine_.partial_since_[id] > now + 1e-9) {
      fail("job-state", "job " + std::to_string(id) + " partial_since in the future");
    }
    if (engine_.fault_stopped_since_[id] >= 0.0 &&
        engine_.fault_stopped_since_[id] > now + 1e-9) {
      fail("job-state", "job " + std::to_string(id) + " fault_stopped_since in the future");
    }
  }
}

// ----------------------------------------------- prediction service

void SimAuditor::check_prediction_service() const {
  const PredictionService& svc = engine_.prediction_;
  const Cluster& cluster = engine_.cluster_;
  if (!engine_.config_.predict.enabled) {
    if (!svc.cached_states().empty()) {
      fail("prediction-cache", "service disabled but " +
                                   std::to_string(svc.cached_states().size()) +
                                   " job states are cached");
    }
    return;
  }
  const PredictConfig& pc = svc.config();
  const std::size_t basis_count = curve_detail::bases().size();
  for (const auto& [id, st] : svc.cached_states()) {
    if (id >= cluster.job_count()) {
      fail("prediction-cache", "cached state for unknown job " + std::to_string(id));
    }
    const Job& job = cluster.job(id);
    if (job.state() == JobState::Completed || job.state() == JobState::Failed) {
      fail("prediction-cache",
           "terminal job " + std::to_string(id) + " still has cached curve-fit state");
    }
    const int n = static_cast<int>(st.observed.size());
    if (n > job.spec().max_iterations) {
      fail("prediction-cache", "job " + std::to_string(id) + " has " + std::to_string(n) +
                                   " observations but max_iterations is " +
                                   std::to_string(job.spec().max_iterations));
    }
    // Observations are pure functions of the index (rollbacks never
    // truncate them) — spot-check both ends against the ground truth.
    if (n > 0 && (st.observed.front() != job.curve().accuracy_at(1) ||
                  st.observed.back() != job.curve().accuracy_at(n))) {
      fail("prediction-cache",
           "job " + std::to_string(id) + " observation buffer diverges from its loss curve");
    }
    int prev_done = 0;
    for (const auto& rec : st.links) {
      if (rec.done <= prev_done || rec.done % svc.check_interval() != 0 ||
          rec.done < svc.first_link() || rec.done > n) {
        fail("prediction-cache", "job " + std::to_string(id) + " chain link at done=" +
                                     std::to_string(rec.done) + " is not a canonical " +
                                     "check point covered by its observations");
      }
      prev_done = rec.done;
      if (rec.basis.size() != basis_count) {
        fail("prediction-cache", "job " + std::to_string(id) + " link at done=" +
                                     std::to_string(rec.done) + " has " +
                                     std::to_string(rec.basis.size()) + " basis fits, want " +
                                     std::to_string(basis_count));
      }
      for (const auto& b : rec.basis) {
        for (const double p : b.params) {
          if (!std::isfinite(p)) {
            fail("prediction-cache", "job " + std::to_string(id) +
                                         " has a non-finite fitted parameter at done=" +
                                         std::to_string(rec.done));
          }
        }
        if (!(b.rmse >= 0.0) || b.restarts < 0 || b.restarts > pc.restart_budget ||
            b.low_streak < 0) {
          fail("prediction-cache", "job " + std::to_string(id) + " basis fit at done=" +
                                       std::to_string(rec.done) +
                                       " violates rmse/restart/streak bounds");
        }
      }
    }
    if (st.memo_valid) {
      const bool have_link =
          std::any_of(st.links.begin(), st.links.end(),
                      [&](const auto& rec) { return rec.done == st.memo_done; });
      if (!have_link) {
        fail("prediction-cache", "job " + std::to_string(id) + " memoizes done=" +
                                     std::to_string(st.memo_done) +
                                     " with no matching chain link");
      }
    }
  }
}

// ----------------------------------------------------- accounting

void SimAuditor::check_accounting() {
  const Cluster& cluster = engine_.cluster_;
  std::size_t completed = 0;
  std::size_t failed = 0;
  long long completed_iterations = 0;
  long long task_migrations = 0;
  for (const Job& job : cluster.jobs()) {
    if (job.state() == JobState::Completed) ++completed;
    if (job.state() == JobState::Failed) ++failed;
    completed_iterations += job.completed_iterations();
  }
  for (TaskId tid = 0; tid < cluster.task_count(); ++tid) {
    task_migrations += cluster.task(tid).migrations;
  }
  if (completed != engine_.jobs_completed_) {
    fail("accounting", "jobs_completed counter " + std::to_string(engine_.jobs_completed_) +
                           " != completed jobs " + std::to_string(completed));
  }
  if (failed != engine_.jobs_failed_) {
    fail("accounting", "jobs_failed counter " + std::to_string(engine_.jobs_failed_) +
                           " != failed-permanent jobs " + std::to_string(failed));
  }
  if (task_migrations != static_cast<long long>(engine_.migrations_)) {
    fail("accounting", "migration counter " + std::to_string(engine_.migrations_) +
                           " != sum of per-task migrations " + std::to_string(task_migrations));
  }
  // Iteration ledger: every completed iteration was executed, and every
  // rolled-back iteration was both executed and popped from its job.
  const long long net = static_cast<long long>(engine_.iterations_run_) -
                        static_cast<long long>(engine_.iterations_rolled_back_);
  if (completed_iterations != net) {
    fail("accounting", "sum of per-job completed iterations " +
                           std::to_string(completed_iterations) + " != iterations_run - rolled_back = " +
                           std::to_string(net));
  }
  if (engine_.inflight_work_lost_iterations_ < -1e-12 || engine_.work_lost_gpu_seconds_ < -1e-9) {
    fail("accounting", "negative lost-work accumulators");
  }
  // Monotonicity vs the previous sweep (counters and ledgers only grow).
  if (engine_.now_ + 1e-9 < last_now_ || engine_.iterations_run_ < last_iterations_run_ ||
      engine_.migrations_ < last_migrations_ || engine_.preemptions_ < last_preemptions_ ||
      engine_.jobs_completed_ < last_jobs_completed_ ||
      engine_.jobs_failed_ < last_jobs_failed_ ||
      engine_.retry_backoffs_ < last_retry_backoffs_ ||
      engine_.server_failures_ < last_server_failures_ ||
      engine_.task_kills_ < last_task_kills_ ||
      cluster.total_bandwidth_mb() + 1e-9 < last_bandwidth_mb_ ||
      cluster.inter_rack_bandwidth_mb() + 1e-9 < last_inter_rack_mb_) {
    fail("accounting", "a monotone counter decreased since the previous audit");
  }
  if (cluster.inter_rack_bandwidth_mb() > cluster.total_bandwidth_mb() + 1e-6) {
    fail("accounting", "inter-rack bandwidth exceeds the total ledger");
  }
  last_now_ = engine_.now_;
  last_iterations_run_ = engine_.iterations_run_;
  last_migrations_ = engine_.migrations_;
  last_preemptions_ = engine_.preemptions_;
  last_jobs_completed_ = engine_.jobs_completed_;
  last_jobs_failed_ = engine_.jobs_failed_;
  last_retry_backoffs_ = engine_.retry_backoffs_;
  last_server_failures_ = engine_.server_failures_;
  last_task_kills_ = engine_.task_kills_;
  last_bandwidth_mb_ = cluster.total_bandwidth_mb();
  last_inter_rack_mb_ = cluster.inter_rack_bandwidth_mb();
}

// -------------------------------------------------------- metrics

void SimAuditor::check_metrics(const RunMetrics& m) const {
  const Cluster& cluster = engine_.cluster_;
  const auto fail_m = [this](const std::string& detail) {
    throw AuditViolation(
        AuditReport{"metrics-accounting", detail, "end-of-run", engine_.now_, events_seen_});
  };
  const std::size_t n = cluster.job_count();
  if (m.job_count != n || m.jct_minutes.count() != n || m.waiting_seconds.count() != n) {
    fail_m("per-job sample counts do not cover every job");
  }
  // Streamed-ingestion ledger: every job is either part of the base
  // workload or an injection the engine recorded; zero injections for
  // pure trace-driven runs.
  if (m.jobs_injected != engine_.injected_specs_.size() ||
      engine_.base_job_count_ + engine_.injected_specs_.size() != n) {
    fail_m("jobs_injected " + std::to_string(m.jobs_injected) +
           " does not reconcile with the engine's injection ledger (" +
           std::to_string(engine_.injected_specs_.size()) + " injected over " +
           std::to_string(engine_.base_job_count_) + " base jobs)");
  }
  double jct_sum_minutes = 0.0;
  std::size_t deadline_met = 0;
  std::size_t accuracy_met = 0;
  std::size_t migrations = 0;
  std::size_t failed_permanent = 0;
  for (const Job& job : cluster.jobs()) {
    jct_sum_minutes += to_minutes(job.completion_time() - job.spec().arrival);
    // Failed-permanent jobs never meet their deadline, whatever instant
    // they were abandoned at — success is conditional on Completed.
    if (job.state() == JobState::Completed && job.completion_time() <= job.deadline()) {
      ++deadline_met;
    }
    if (job.state() == JobState::Failed) ++failed_permanent;
    if (job.accuracy_by_deadline() >= job.spec().accuracy_requirement) ++accuracy_met;
  }
  for (TaskId tid = 0; tid < cluster.task_count(); ++tid) {
    migrations += static_cast<std::size_t>(cluster.task(tid).migrations);
  }
  const double dn = static_cast<double>(n);
  const double mean_jct = n > 0 ? jct_sum_minutes / dn : 0.0;
  if (!close(m.average_jct_minutes(), mean_jct,
             kMeanTol * std::max(1.0, std::abs(mean_jct)))) {
    fail_m("average JCT " + std::to_string(m.average_jct_minutes()) +
           " does not reconcile with per-job completion times (expected " +
           std::to_string(mean_jct) + ")");
  }
  if (n > 0 && m.deadline_ratio != static_cast<double>(deadline_met) / dn) {
    fail_m("deadline ratio does not reconcile with per-job deadlines");
  }
  if (n > 0 && m.accuracy_ratio != static_cast<double>(accuracy_met) / dn) {
    fail_m("accuracy ratio does not reconcile with per-job accuracy");
  }
  if (m.bandwidth_tb != cluster.total_bandwidth_mb() / 1e6 ||
      m.inter_rack_tb != cluster.inter_rack_bandwidth_mb() / 1e6) {
    fail_m("bandwidth metrics do not reconcile with the cluster ledger");
  }
  if (m.inter_rack_tb > m.bandwidth_tb + 1e-12) {
    fail_m("inter-rack traffic exceeds total traffic");
  }
  if (m.iterations_run != engine_.iterations_run_ || m.migrations != migrations ||
      m.preemptions != engine_.preemptions_ || m.sched_rounds != engine_.sched_rounds_) {
    fail_m("engine counters do not reconcile with RunMetrics");
  }
  if (m.goodput < 0.0 || m.goodput > 1.0 + 1e-12) {
    fail_m("goodput " + std::to_string(m.goodput) + " outside [0, 1]");
  }
  // Recovery-policy ledger: the failed-permanent count must match both the
  // engine counter and the per-job terminal states, and the retry/quarantine
  // counters must match the engine's accumulators (all zero when disabled).
  if (m.jobs_failed_permanent != engine_.jobs_failed_ ||
      m.jobs_failed_permanent != failed_permanent) {
    fail_m("jobs_failed_permanent " + std::to_string(m.jobs_failed_permanent) +
           " does not reconcile with engine counter " + std::to_string(engine_.jobs_failed_) +
           " / per-job states " + std::to_string(failed_permanent));
  }
  if (m.task_retries != engine_.retry_backoffs_ ||
      m.backoff_delay_seconds != engine_.backoff_delay_seconds_total_ ||
      m.crashes_absorbed != engine_.crashes_absorbed_) {
    fail_m("retry/backoff counters do not reconcile with RunMetrics");
  }
  if (!engine_.health_ &&
      (m.quarantines != 0 || m.quarantine_valve_saves != 0 || m.task_retries != 0 ||
       m.jobs_failed_permanent != 0 || m.crashes_absorbed != 0)) {
    fail_m("recovery metrics are nonzero but recovery policies are disabled");
  }
  // Link-contention ledger: RunMetrics mirrors the engine accumulators,
  // which must stay exactly zero while the feature is off (the byte-
  // identity contract: contention-off runs never touch the link model).
  if (m.link_busy_seconds != engine_.link_busy_seconds_ ||
      m.contention_slowdown_seconds != engine_.contention_slowdown_seconds_ ||
      m.phase_offset_hits != static_cast<std::size_t>(engine_.phase_offset_hits_)) {
    fail_m("link-contention counters do not reconcile with RunMetrics");
  }
  if (!cluster.config().link_contention &&
      (m.link_busy_seconds != 0.0 || m.contention_slowdown_seconds != 0.0 ||
       m.phase_offset_hits != 0)) {
    fail_m("link-contention metrics are nonzero but link contention is disabled");
  }
  if (m.contention_slowdown_seconds < -1e-9 ||
      m.contention_slowdown_seconds > m.link_busy_seconds + 1e-9) {
    fail_m("contention slowdown " + std::to_string(m.contention_slowdown_seconds) +
           " outside [0, link_busy_seconds]");
  }
  // Prediction-service ledger: RunMetrics mirrors the service counters,
  // and the cache counter is zero on the legacy cold-fit path (which
  // recomputes every chain from scratch and caches nothing; the chain
  // itself still warm-starts links internally, so fits_warm survives).
  const PredictStats& ps = engine_.prediction_.stats();
  if (m.fits_cold != ps.fits_cold || m.fits_warm != ps.fits_warm ||
      m.prediction_cache_hits != ps.cache_hits ||
      m.nm_objective_evals != ps.nm_objective_evals) {
    fail_m("prediction counters do not reconcile with the service's stats");
  }
  if (!engine_.config_.predict.enabled && m.prediction_cache_hits != 0) {
    fail_m("prediction cache hits are nonzero but the service is disabled");
  }
}

}  // namespace mlfs
