#include "sim/placement_index.hpp"

#include <limits>

#include "common/expect.hpp"

namespace mlfs {

void PlacementIndex::reset(std::size_t server_count, double hr, int bucket_count) {
  MLFS_EXPECT(bucket_count >= 1);
  MLFS_EXPECT(hr > 0.0);
  hr_ = hr;
  bucket_count_ = bucket_count;
  member_count_ = 0;
  boundaries_.resize(static_cast<std::size_t>(bucket_count));
  // boundary(0) = -inf keeps bucket 0 unprunable: drifted (slightly
  // negative) sums land there and always reach the exact check.
  boundaries_[0] = -std::numeric_limits<double>::infinity();
  for (int b = 1; b < bucket_count; ++b) {
    boundaries_[static_cast<std::size_t>(b)] =
        hr * static_cast<double>(b) / static_cast<double>(bucket_count);
  }
  member_.assign(server_count, 0);
  for (int d = 0; d < kDims; ++d) {
    loads_[d].assign(server_count, 0.0);
    bucket_of_[d].assign(server_count, -1);
  }
}

int PlacementIndex::bucket_for_load(double load) const {
  // Arithmetic guess, then an exact adjustment against the stored
  // boundaries: the guess is within one bucket of the answer, but the
  // membership rule (boundaries_[b] <= load < boundaries_[b+1]) must be
  // decided by the same doubles the query compares against, not by the
  // (differently rounded) division here.
  int b = static_cast<int>(load / hr_ * static_cast<double>(bucket_count_));
  if (b < 0) b = 0;
  if (b >= bucket_count_) b = bucket_count_ - 1;
  while (b > 0 && boundaries_[static_cast<std::size_t>(b)] > load) --b;
  while (b + 1 < bucket_count_ && boundaries_[static_cast<std::size_t>(b + 1)] <= load) ++b;
  return b;
}

void PlacementIndex::set_server(ServerId id, bool member, double least_gpu_load, double cpu,
                                double mem, double net) {
  MLFS_EXPECT(id < member_.size());
  const double loads[kDims] = {least_gpu_load, cpu, mem, net};
  const bool was_member = member_[id] != 0;
  for (int d = 0; d < kDims; ++d) {
    loads_[d][id] = loads[d];
    bucket_of_[d][id] = member ? bucket_for_load(loads[d]) : -1;
  }
  if (member != was_member) {
    member_[id] = member ? 1 : 0;
    member_count_ += member ? 1 : std::size_t(-1);
  }
}

std::size_t PlacementIndex::collect_feasible(double hr, double u_gpu, double u_cpu, double u_mem,
                                             double u_net, ServerId skip,
                                             std::vector<ServerId>& out) const {
  ++stats_.queries;
  if (member_count_ == 0) return 0;
  const double usage[kDims] = {u_gpu, u_cpu, u_mem, u_net};

  // Per dimension: the highest bucket whose members could still pass that
  // dimension's comparison. Arithmetic guess plus an exact adjustment — the
  // prune predicate fl(boundary(b) + u_d) > hr is monotone in b (boundaries
  // ascend, IEEE addition is monotone), so nudging the guess until the
  // predicate flips lands on the same cutoff a full descent from the top
  // would. Bucket 0 (boundary -inf) always qualifies.
  int cutoffs[kDims];
  for (int d = 0; d < kDims; ++d) {
    int b = static_cast<int>((hr - usage[d]) / hr_ * static_cast<double>(bucket_count_));
    if (b < 0) b = 0;
    if (b >= bucket_count_) b = bucket_count_ - 1;
    while (b > 0 && boundaries_[static_cast<std::size_t>(b)] + usage[d] > hr) --b;
    while (b + 1 < bucket_count_ &&
           !(boundaries_[static_cast<std::size_t>(b + 1)] + usage[d] > hr)) {
      ++b;
    }
    cutoffs[d] = b;
  }
  // Instrumentation: wholesale-eliminated buckets along the GPU dimension
  // (the dimension the exact check is keyed on in the paper's funnel).
  stats_.buckets_pruned += static_cast<std::size_t>(bucket_count_ - 1 - cutoffs[0]);

  // Flat ascending walk over the membership — output lands in the linear
  // funnel's candidate order with no sort. Four integer compares resolve
  // almost every member wholesale:
  //   - above any cutoff  -> provably infeasible (pruned): bucket b of
  //     dimension d holds load_d >= boundary(b) and fl(boundary(b)+u_d) >
  //     hr, and IEEE addition is monotone, so the exact check would reject.
  //   - strictly below every cutoff -> provably feasible (bypassed):
  //     bucket b < cutoff means load_d < boundary(b+1) <= boundary(cutoff)
  //     and fl(boundary(cutoff)+u_d) <= hr, so by the same monotonicity the
  //     exact check would accept on every dimension.
  // Only members sitting exactly on a cutoff (boundary) bucket need the
  // exact four-comparison check — identical doubles, identical comparisons
  // to the linear funnel, so the emitted feasible set is byte-identical.
  std::size_t examined = 0;
  std::size_t bypassed = 0;
  const std::size_t n = member_.size();
  for (ServerId id = 0; id < n; ++id) {
    if (member_[id] == 0 || id == skip) continue;
    if (bucket_of_[0][id] > cutoffs[0] || bucket_of_[1][id] > cutoffs[1] ||
        bucket_of_[2][id] > cutoffs[2] || bucket_of_[3][id] > cutoffs[3]) {
      continue;
    }
    if (bucket_of_[0][id] < cutoffs[0] && bucket_of_[1][id] < cutoffs[1] &&
        bucket_of_[2][id] < cutoffs[2] && bucket_of_[3][id] < cutoffs[3]) {
      ++bypassed;
      out.push_back(id);
      continue;
    }
    ++examined;
    if (loads_[1][id] + u_cpu > hr || loads_[2][id] + u_mem > hr ||
        loads_[3][id] + u_net > hr || loads_[0][id] + u_gpu > hr) {
      continue;
    }
    out.push_back(id);
  }
  stats_.servers_examined += examined;
  stats_.servers_bypassed += bypassed;
  const std::size_t skip_member =
      (skip != kInvalidServer && skip < member_.size() && member_[skip] != 0) ? 1 : 0;
  stats_.servers_pruned += member_count_ - skip_member - examined - bypassed;
  return examined;
}

void PlacementIndex::save_state(io::BinWriter& w) const {
  w.u64(stats_.queries);
  w.u64(stats_.servers_examined);
  w.u64(stats_.servers_pruned);
  w.u64(stats_.buckets_pruned);
  w.u64(stats_.servers_bypassed);
}

void PlacementIndex::restore_state(io::BinReader& r) {
  stats_.queries = static_cast<std::size_t>(r.u64());
  stats_.servers_examined = static_cast<std::size_t>(r.u64());
  stats_.servers_pruned = static_cast<std::size_t>(r.u64());
  stats_.buckets_pruned = static_cast<std::size_t>(r.u64());
  stats_.servers_bypassed = static_cast<std::size_t>(r.u64());
}

}  // namespace mlfs
