#include "sim/metrics.hpp"

#include <sstream>

#include "common/table.hpp"

namespace mlfs {

std::string RunMetrics::summary() const {
  std::ostringstream os;
  os << scheduler << ": jobs=" << job_count;
  if (jobs_injected > 0) os << " (" << jobs_injected << " streamed)";
  os
     << " avgJCT=" << format_double(average_jct_minutes(), 1) << "min"
     << " makespan=" << format_double(makespan_hours, 1) << "h"
     << " deadline=" << format_double(100.0 * deadline_ratio, 1) << "%"
     << " wait=" << format_double(average_waiting_seconds(), 0) << "s"
     << " acc=" << format_double(average_accuracy, 3)
     << " accOK=" << format_double(100.0 * accuracy_ratio, 1) << "%"
     << " bw=" << format_double(bandwidth_tb, 2) << "TB"
     << " sched=" << format_double(sched_overhead_ms, 2) << "ms"
     << " rounds=" << sched_rounds;
  if (candidates_scanned > 0) {
    os << " scans=" << candidates_scanned;
    const std::size_t lookups = comm_cache_hits + comm_cache_misses;
    if (lookups > 0) {
      os << " commHit="
         << format_double(100.0 * static_cast<double>(comm_cache_hits) /
                              static_cast<double>(lookups),
                          1)
         << "%";
    }
  }
  if (server_failures > 0 || task_kills > 0) {
    os << " failures=" << server_failures << " kills=" << task_kills
       << " goodput=" << format_double(goodput, 3)
       << " lost=" << format_double(work_lost_gpu_seconds, 0) << "gpu-s"
       << " recovery=" << format_double(mean_recovery_seconds, 0) << "s";
  }
  if (fits_cold + fits_warm > 0) {
    os << " fits=" << fits_cold << "c/" << fits_warm << "w"
       << " fitHits=" << prediction_cache_hits << " nmEvals=" << nm_objective_evals
       << " fitWall=" << format_double(fit_wall_ms, 0) << "ms";
  }
  if (link_busy_seconds > 0.0 || phase_offset_hits > 0) {
    os << " linkBusy=" << format_double(link_busy_seconds, 0) << "s"
       << " contention=" << format_double(contention_slowdown_seconds, 0) << "s"
       << " rephased=" << phase_offset_hits;
  }
  if (quarantines > 0 || task_retries > 0 || jobs_failed_permanent > 0) {
    os << " quarantines=" << quarantines << " retries=" << task_retries
       << " backoff=" << format_double(backoff_delay_seconds, 0) << "s"
       << " failedPerm=" << jobs_failed_permanent
       << " absorbed=" << crashes_absorbed
       << " avoided=" << format_double(wasted_work_avoided_gpu_seconds, 0) << "gpu-s";
  }
  return os.str();
}

bool deterministic_equal(const RunMetrics& a, const RunMetrics& b) {
  return a.scheduler == b.scheduler && a.job_count == b.job_count &&
         a.jobs_injected == b.jobs_injected &&
         a.jct_minutes == b.jct_minutes && a.makespan_hours == b.makespan_hours &&
         a.deadline_ratio == b.deadline_ratio && a.waiting_seconds == b.waiting_seconds &&
         a.average_accuracy == b.average_accuracy && a.accuracy_ratio == b.accuracy_ratio &&
         a.bandwidth_tb == b.bandwidth_tb && a.inter_rack_tb == b.inter_rack_tb &&
         a.overload_occurrences == b.overload_occurrences && a.migrations == b.migrations &&
         a.preemptions == b.preemptions && a.partial_releases == b.partial_releases &&
         a.watchdog_evictions == b.watchdog_evictions && a.iterations_run == b.iterations_run &&
         a.iterations_saved == b.iterations_saved &&
         a.urgent_deadline_ratio == b.urgent_deadline_ratio &&
         a.server_failures == b.server_failures && a.rack_outages == b.rack_outages &&
         a.task_kills == b.task_kills && a.crash_evictions == b.crash_evictions &&
         a.iterations_rolled_back == b.iterations_rolled_back &&
         a.work_lost_gpu_seconds == b.work_lost_gpu_seconds &&
         a.mean_recovery_seconds == b.mean_recovery_seconds && a.goodput == b.goodput &&
         a.quarantines == b.quarantines &&
         a.quarantine_valve_saves == b.quarantine_valve_saves &&
         a.task_retries == b.task_retries &&
         a.backoff_delay_seconds == b.backoff_delay_seconds &&
         a.jobs_failed_permanent == b.jobs_failed_permanent &&
         a.crashes_absorbed == b.crashes_absorbed &&
         a.wasted_work_avoided_gpu_seconds == b.wasted_work_avoided_gpu_seconds &&
         a.events_processed == b.events_processed &&
         a.event_stream_hash == b.event_stream_hash &&
         a.sched_rounds == b.sched_rounds && a.candidates_scanned == b.candidates_scanned &&
         a.candidates_linear == b.candidates_linear &&
         a.comm_cache_hits == b.comm_cache_hits && a.comm_cache_misses == b.comm_cache_misses &&
         a.load_index_rebuilds == b.load_index_rebuilds &&
         a.load_index_refreshes == b.load_index_refreshes &&
         a.servers_reindexed == b.servers_reindexed && a.noop_reindexes == b.noop_reindexes &&
         a.pindex_queries == b.pindex_queries &&
         a.pindex_servers_pruned == b.pindex_servers_pruned &&
         a.pindex_buckets_pruned == b.pindex_buckets_pruned &&
         a.pindex_servers_bypassed == b.pindex_servers_bypassed &&
         a.link_busy_seconds == b.link_busy_seconds &&
         a.contention_slowdown_seconds == b.contention_slowdown_seconds &&
         a.phase_offset_hits == b.phase_offset_hits &&
         a.fits_cold == b.fits_cold && a.fits_warm == b.fits_warm &&
         a.prediction_cache_hits == b.prediction_cache_hits &&
         a.nm_objective_evals == b.nm_objective_evals;
}

}  // namespace mlfs
