#include "sim/metrics.hpp"

#include <sstream>

#include "common/table.hpp"

namespace mlfs {

std::string RunMetrics::summary() const {
  std::ostringstream os;
  os << scheduler << ": jobs=" << job_count
     << " avgJCT=" << format_double(average_jct_minutes(), 1) << "min"
     << " makespan=" << format_double(makespan_hours, 1) << "h"
     << " deadline=" << format_double(100.0 * deadline_ratio, 1) << "%"
     << " wait=" << format_double(average_waiting_seconds(), 0) << "s"
     << " acc=" << format_double(average_accuracy, 3)
     << " accOK=" << format_double(100.0 * accuracy_ratio, 1) << "%"
     << " bw=" << format_double(bandwidth_tb, 2) << "TB"
     << " sched=" << format_double(sched_overhead_ms, 2) << "ms"
     << " rounds=" << sched_rounds;
  if (candidates_scanned > 0) {
    os << " scans=" << candidates_scanned;
    const std::size_t lookups = comm_cache_hits + comm_cache_misses;
    if (lookups > 0) {
      os << " commHit="
         << format_double(100.0 * static_cast<double>(comm_cache_hits) /
                              static_cast<double>(lookups),
                          1)
         << "%";
    }
  }
  if (server_failures > 0 || task_kills > 0) {
    os << " failures=" << server_failures << " kills=" << task_kills
       << " goodput=" << format_double(goodput, 3)
       << " lost=" << format_double(work_lost_gpu_seconds, 0) << "gpu-s"
       << " recovery=" << format_double(mean_recovery_seconds, 0) << "s";
  }
  return os.str();
}

}  // namespace mlfs
