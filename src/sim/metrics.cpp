#include "sim/metrics.hpp"

#include <sstream>

#include "common/table.hpp"

namespace mlfs {

std::string RunMetrics::summary() const {
  std::ostringstream os;
  os << scheduler << ": jobs=" << job_count
     << " avgJCT=" << format_double(average_jct_minutes(), 1) << "min"
     << " makespan=" << format_double(makespan_hours, 1) << "h"
     << " deadline=" << format_double(100.0 * deadline_ratio, 1) << "%"
     << " wait=" << format_double(average_waiting_seconds(), 0) << "s"
     << " acc=" << format_double(average_accuracy, 3)
     << " accOK=" << format_double(100.0 * accuracy_ratio, 1) << "%"
     << " bw=" << format_double(bandwidth_tb, 2) << "TB"
     << " sched=" << format_double(sched_overhead_ms, 2) << "ms";
  return os.str();
}

}  // namespace mlfs
