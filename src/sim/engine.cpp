#include "sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <limits>
#include <cmath>

#include "common/expect.hpp"
#include "common/log.hpp"
#include "sim/snapshot.hpp"
#include "workload/model_zoo.hpp"

namespace mlfs {

double FaultConfig::rate_multiplier(ServerId id, std::size_t server_count) const {
  if (flaky_server_fraction <= 0.0) return 1.0;
  // Same assignment rule as ClusterConfig::slow_server_fraction: the last
  // lround(fraction × N) servers are the flaky ones.
  const auto flaky_from = static_cast<std::size_t>(std::lround(
      static_cast<double>(server_count) * (1.0 - flaky_server_fraction)));
  return id >= flaky_from ? flaky_rate_multiplier : 1.0;
}

void FaultConfig::validate(int servers_per_rack) const {
  if (server_mtbf_hours < 0.0) {
    throw ContractViolation("FaultConfig: server_mtbf_hours must be >= 0");
  }
  if (server_mttr_hours < 0.0) {
    throw ContractViolation(
        "FaultConfig: server_mttr_hours must be >= 0 (0 = crashes are permanent)");
  }
  if (task_kill_probability < 0.0 || task_kill_probability > 1.0) {
    throw ContractViolation("FaultConfig: task_kill_probability must be in [0, 1]");
  }
  if (rack_mtbf_hours < 0.0) {
    throw ContractViolation("FaultConfig: rack_mtbf_hours must be >= 0");
  }
  if (rack_mtbf_hours > 0.0 && servers_per_rack <= 0) {
    throw ContractViolation(
        "FaultConfig: rack_mtbf_hours > 0 requires ClusterConfig::servers_per_rack > 0 "
        "(rack outages on a flat cluster would be silently disabled)");
  }
  if (rack_mttr_hours < 0.0) {
    throw ContractViolation("FaultConfig: rack_mttr_hours must be >= 0");
  }
  if (checkpoint_interval_iterations < 1) {
    throw ContractViolation("FaultConfig: checkpoint_interval_iterations must be >= 1");
  }
  if (flaky_server_fraction < 0.0 || flaky_server_fraction > 1.0) {
    throw ContractViolation("FaultConfig: flaky_server_fraction must be in [0, 1]");
  }
  if (flaky_server_fraction > 0.0 && flaky_rate_multiplier < 1.0) {
    throw ContractViolation("FaultConfig: flaky_rate_multiplier must be >= 1");
  }
}

SimEngine::SimEngine(const ClusterConfig& cluster_config, const EngineConfig& engine_config,
                     std::vector<JobSpec> specs, Scheduler& scheduler,
                     LoadController* load_controller)
    : cluster_config_(cluster_config),
      config_(engine_config),
      cluster_(cluster_config),
      scheduler_(scheduler),
      load_controller_(load_controller),
      rng_(engine_config.seed),
      fault_rng_(engine_config.seed ^ 0xfa17f5eedULL),
      recovery_rng_(engine_config.seed ^ 0x4ec0fe41eadULL),
      prediction_(engine_config.predict, engine_config.optstop_check_interval) {
  config_.fault.validate(cluster_config_.servers_per_rack);
  config_.recovery.validate();
  if (config_.recovery.enabled) {
    health_ = std::make_unique<ServerHealthTracker>(config_.recovery,
                                                    cluster_config_.server_count);
  }
  // Instantiate the whole trace up front; arrival events release jobs into
  // the queue at their trace times.
  std::sort(specs.begin(), specs.end(),
            [](const JobSpec& a, const JobSpec& b) { return a.id < b.id; });
  TaskId next_task = 0;
  for (const JobSpec& spec : specs) {
    auto inst = ModelZoo::instantiate(spec, next_task);
    next_task += static_cast<TaskId>(inst.tasks.size());
    cluster_.register_job(std::move(inst.job), std::move(inst.tasks));
  }
  base_job_count_ = cluster_.job_count();
  job_epoch_.assign(cluster_.job_count(), 0);
  waiting_since_.assign(cluster_.job_count(), 0.0);
  partial_since_.assign(cluster_.job_count(), -1.0);
  iter_started_.assign(cluster_.job_count(), 0.0);
  iter_duration_.assign(cluster_.job_count(), 0.0);
  resume_credit_.assign(cluster_.job_count(), 0.0);
  deadline_recorded_.assign(cluster_.job_count(), 0);
  fault_stopped_since_.assign(cluster_.job_count(), -1.0);
  server_epoch_.assign(cluster_.server_count(), 0);
  task_in_backoff_.assign(cluster_.task_count(), 0);
  retries_used_.assign(cluster_.job_count(), 0);
  for (const Job& job : cluster_.jobs()) {
    push_event(job.spec().arrival, EventType::Arrival, job.id());
    push_event(job.deadline(), EventType::Deadline, job.id());
  }
  // Seed the crash processes. Draws only happen for nonzero rates, so a
  // zero-rate config consumes no fault randomness at all.
  if (config_.fault.server_mtbf_hours > 0.0) {
    for (ServerId s = 0; s < cluster_.server_count(); ++s) schedule_server_crash(s);
  }
  if (config_.fault.rack_mtbf_hours > 0.0) {
    // validate() guaranteed servers_per_rack > 0.
    const int racks = cluster_.rack_of(static_cast<ServerId>(cluster_.server_count() - 1)) + 1;
    for (int r = 0; r < racks; ++r) schedule_rack_outage(r);
  }
  if (config_.audit.enabled) {
    auditor_ = std::make_unique<SimAuditor>(*this);
    auditor_->on_sim_start();
  }
}

void SimEngine::push_event(SimTime time, EventType type, JobId job, std::uint64_t epoch) {
  events_.push(Event{time, event_seq_++, type, job, epoch});
}

// --------------------------------------------------------------- ops

bool SimEngine::place(TaskId task_id, ServerId server, int gpu) {
  if (server >= cluster_.server_count()) return false;
  if (!cluster_.server(server).accepts_placements()) return false;
  if (gpu < 0 || gpu >= cluster_.server(server).gpu_count()) return false;
  Task& t = cluster_.task(task_id);
  if (t.state != TaskState::Queued) return false;
  // A task parked in a retry-backoff window is queued but not admissible:
  // its pending RetryRelease event owns re-admission (schedulers may still
  // try via gang placement over a job's task list — refuse, don't assert).
  if (task_id < task_in_backoff_.size() && task_in_backoff_[task_id]) return false;
  const Job& job = cluster_.job(t.job);
  if (job.done()) return false;
  t.total_waiting += now_ - t.queued_since;
  cluster_.place_task(task_id, server, gpu);
  if (observer_ != nullptr) observer_->on_task_placed(now_, task_id, server, gpu);
  return true;
}

void SimEngine::preempt_to_queue(TaskId task_id) {
  Task& t = cluster_.task(task_id);
  MLFS_EXPECT(t.state == TaskState::Running);
  cluster_.unplace_task(task_id);
  t.queued_since = now_;
  queue_.push_back(task_id);
  ++preemptions_;
  if (observer_ != nullptr) observer_->on_task_preempted(now_, task_id);
  Job& job = cluster_.job(t.job);
  if (job.state() == JobState::Running) {
    abort_iteration(job);
    job.set_state(JobState::Waiting);
    waiting_since_[job.id()] = now_;
  }
}

bool SimEngine::migrate(TaskId task_id, ServerId server, int gpu) {
  if (server >= cluster_.server_count()) return false;
  if (!cluster_.server(server).accepts_placements()) return false;
  if (gpu < 0 || gpu >= cluster_.server(server).gpu_count()) return false;
  Task& t = cluster_.task(task_id);
  if (t.state != TaskState::Running) return false;
  const ServerId from = t.server;
  if (from == server && t.gpu == gpu) return false;
  cluster_.move_task(task_id, server, gpu);
  if (observer_ != nullptr) observer_->on_task_migrated(now_, task_id, from, server);
  if (from != server) {
    cluster_.record_transfer(from, server, t.state_size_mb);
    t.pending_penalty_seconds += t.state_size_mb / cluster_config_.server_bandwidth_mbps +
                                 config_.migration_fixed_penalty_seconds;
  }
  ++migrations_;
  return true;
}

void SimEngine::release(TaskId task_id) {
  Task& t = cluster_.task(task_id);
  MLFS_EXPECT(t.state == TaskState::Running);
  MLFS_EXPECT(cluster_.job(t.job).state() != JobState::Running);
  cluster_.unplace_task(task_id);
  t.queued_since = now_;
  if (observer_ != nullptr) observer_->on_task_released(now_, task_id);
  // No queue_.push_back: release() is only legal within the round that
  // placed the task, and queue compaction runs before the round — the
  // task's original queue entry is still present.
}

bool SimEngine::set_phase_offset(JobId job, double offset) {
  // Cluster makes this a no-op while link contention is off, so a
  // network-aware scheduler run with the feature disabled stays
  // bit-identical to one that never calls it.
  const bool changed = cluster_.set_phase_offset(job, offset);
  if (changed) ++phase_offset_hits_;
  return changed;
}

// --------------------------------------------------------------- events

JobId SimEngine::inject_job(JobSpec spec) {
  const auto id = static_cast<JobId>(cluster_.job_count());
  spec.id = id;
  auto inst = ModelZoo::instantiate(spec, static_cast<TaskId>(cluster_.task_count()));
  cluster_.register_job(std::move(inst.job), std::move(inst.tasks));
  job_epoch_.push_back(0);
  waiting_since_.push_back(0.0);
  partial_since_.push_back(-1.0);
  iter_started_.push_back(0.0);
  iter_duration_.push_back(0.0);
  resume_credit_.push_back(0.0);
  deadline_recorded_.push_back(0);
  fault_stopped_since_.push_back(-1.0);
  retries_used_.push_back(0);
  task_in_backoff_.resize(cluster_.task_count(), 0);
  const Job& job = cluster_.job(id);
  // The arrival flows through the normal event queue (same dispatch, hash
  // mixing, auditing as trace-driven arrivals); a spec submitted with an
  // arrival time already in the past lands at the current instant.
  push_event(std::max(now_, job.spec().arrival), EventType::Arrival, id);
  push_event(std::max(now_, job.deadline()), EventType::Deadline, id);
  injected_specs_.push_back(job.spec());
  if (auditor_) auditor_->on_job_injected();
  return id;
}

void SimEngine::drain_arrival_source() {
  if (arrival_source_ == nullptr) return;
  StreamedArrival next;
  while (arrival_source_->pop_due(now_, events_processed_, events_.empty(), next)) {
    const std::uint64_t at = events_processed_;
    const JobId id = inject_job(std::move(next.spec));
    arrival_source_->on_injected(cluster_.job(id).spec(), next.stream_seq, at);
  }
}

void SimEngine::handle_arrival(JobId id) {
  Job& job = cluster_.job(id);
  job.set_state(JobState::Waiting);
  waiting_since_[id] = now_;
  for (const TaskId tid : job.tasks()) {
    Task& t = cluster_.task(tid);
    t.queued_since = now_;
    queue_.push_back(tid);
  }
  scheduler_.on_job_arrival(job, now_);
  if (observer_ != nullptr) observer_->on_job_arrival(now_, id);
  if (!tick_armed_) {
    tick_armed_ = true;
    push_event(now_, EventType::Tick);
  }
}

void SimEngine::resample_usage() {
  for (const Server& s : cluster_.servers()) {
    for (const TaskId tid : s.tasks()) {
      const Task& t = cluster_.task(tid);
      cluster_.set_usage_factor(
          tid, std::clamp(t.usage_bias * rng_.lognormal(0.0, config_.usage_noise_sigma),
                          0.6, 1.8));
    }
  }
}

void SimEngine::compact_queue() {
  // Drop entries whose task left the queue, and any duplicates (a task
  // must appear at most once or gang placement would retry it per copy).
  std::vector<char> seen(cluster_.task_count(), 0);
  std::erase_if(queue_, [this, &seen](TaskId tid) {
    const Task& t = cluster_.task(tid);
    if (t.state != TaskState::Queued || cluster_.job(t.job).done()) return true;
    if (seen[tid]) return true;
    seen[tid] = 1;
    return false;
  });
}

void SimEngine::run_watchdog() {
  bool any_running = false;
  for (const Job& job : cluster_.jobs()) {
    if (job.state() == JobState::Running) {
      any_running = true;
      break;
    }
  }
  if (any_running || queue_.empty()) {
    stall_ticks_ = 0;
    return;
  }
  if (++stall_ticks_ < config_.stall_ticks_before_eviction) return;
  stall_ticks_ = 0;
  // Fragmentation deadlock: every waiting job is partially placed and no
  // placement can complete any of them. Evict the placed tasks of the
  // least-complete partial job so its resources unblock the others.
  const JobId protected_id = protected_job();
  JobId victim = kInvalidJob;
  double lowest_placed_fraction = 2.0;
  for (const Job& job : cluster_.jobs()) {
    if (job.state() != JobState::Waiting || job.done()) continue;
    if (job.id() == protected_id) continue;
    std::size_t placed = 0;
    std::size_t live = 0;
    for (const TaskId tid : job.tasks()) {
      const Task& t = cluster_.task(tid);
      if (t.state == TaskState::Finished || t.state == TaskState::Removed) continue;
      ++live;
      if (t.placed()) ++placed;
    }
    if (live == 0 || placed == 0) continue;
    const double fraction = static_cast<double>(placed) / static_cast<double>(live);
    if (fraction < lowest_placed_fraction) {
      lowest_placed_fraction = fraction;
      victim = job.id();
    }
  }
  if (victim == kInvalidJob) return;
  MLFS_DEBUG("watchdog evicting partial job " << victim);
  ++watchdog_evictions_;
  const Job& job = cluster_.job(victim);
  for (const TaskId tid : job.tasks()) {
    Task& t = cluster_.task(tid);
    if (t.state == TaskState::Running) {
      cluster_.unplace_task(tid);
      t.queued_since = now_;
      queue_.push_back(tid);
      ++preemptions_;
    }
  }
}

// --------------------------------------------------------------- faults

void SimEngine::inject_server_failure(ServerId server, SimTime at) {
  MLFS_EXPECT(server < cluster_.server_count());
  MLFS_EXPECT(at >= now_);
  push_event(at, EventType::ServerDown, server, server_epoch_[server]);
}

void SimEngine::schedule_server_crash(ServerId id) {
  // Flaky servers crash `rate_multiplier` times as often; the default
  // multiplier of 1 leaves every draw value unchanged.
  const double rate = config_.fault.rate_multiplier(id, cluster_.server_count()) /
                      hours(config_.fault.server_mtbf_hours);
  const double dt = fault_rng_.exponential(rate);
  push_event(now_ + dt, EventType::ServerDown, id, server_epoch_[id]);
}

void SimEngine::schedule_rack_outage(int rack) {
  const double dt = fault_rng_.exponential(1.0 / hours(config_.fault.rack_mtbf_hours));
  push_event(now_ + dt, EventType::RackOutage, static_cast<JobId>(rack));
}

void SimEngine::evict_task_for_fault(TaskId tid) {
  Task& t = cluster_.task(tid);
  MLFS_EXPECT(t.state == TaskState::Running);
  cluster_.unplace_task(tid);
  t.queued_since = now_;
  if (health_ && config_.recovery.retry_backoff_enabled) {
    // Held out of the queue for a jittered exponential backoff (retry k
    // waits base·factor^k); waiting-time priority still accrues from
    // queued_since, so backoff does not starve the job.
    task_in_backoff_[tid] = 1;
    const double delay = backoff_delay_seconds(config_.recovery, retries_used_[t.job],
                                               recovery_rng_.uniform());
    backoff_delay_seconds_total_ += delay;
    ++retry_backoffs_;
    push_event(now_ + delay, EventType::RetryRelease, static_cast<JobId>(tid));
  } else {
    queue_.push_back(tid);
  }
  if (observer_ != nullptr) observer_->on_task_killed(now_, tid);
}

void SimEngine::handle_retry_release(TaskId tid) {
  if (!task_in_backoff_[tid]) return;  // job completed/failed meanwhile
  task_in_backoff_[tid] = 0;
  Task& t = cluster_.task(tid);
  MLFS_EXPECT(t.state == TaskState::Queued);
  MLFS_EXPECT(!cluster_.job(t.job).done());
  queue_.push_back(tid);
}

void SimEngine::fault_abort(Job& job) {
  const JobId id = job.id();
  // Everything since the last checkpoint is destroyed: any preserved
  // resume credit, the in-flight fraction, and completed iterations past
  // the latest checkpoint-interval boundary.
  double lost_fraction = resume_credit_[id];
  if (job.state() == JobState::Running && iter_duration_[id] > 0.0) {
    const double elapsed =
        std::clamp((now_ - iter_started_[id]) / iter_duration_[id], 0.0, 1.0);
    lost_fraction = std::clamp(lost_fraction + (1.0 - lost_fraction) * elapsed, 0.0, 1.0);
  }
  resume_credit_[id] = 0.0;
  const int interval = checkpoint_interval_for(job);
  const int lost_iters = job.completed_iterations() % interval;
  job.rollback_iterations(lost_iters);
  iterations_rolled_back_ += static_cast<std::size_t>(lost_iters);
  inflight_work_lost_iterations_ += lost_fraction;
  work_lost_gpu_seconds_ += (static_cast<double>(lost_iters) + lost_fraction) *
                            job.ideal_iteration_seconds() *
                            static_cast<double>(job.spec().gpu_request);
  iter_duration_[id] = 0.0;
  ++job_epoch_[id];  // any in-flight IterationDone is now stale
  if (fault_stopped_since_[id] < 0.0) fault_stopped_since_[id] = now_;
  if (job.state() == JobState::Running) {
    job.set_state(JobState::Waiting);
    waiting_since_[id] = now_;
  }
  if (health_ && config_.recovery.retry_backoff_enabled) {
    ++retries_used_[id];
    const int budget = config_.recovery.retry_budget;
    if (budget > 0 && retries_used_[id] > budget) fail_job(job);
  }
}

int SimEngine::checkpoint_interval_for(const Job& job) const {
  const int fixed = config_.fault.checkpoint_interval_iterations;
  if (!health_ || !config_.recovery.adaptive_checkpoint) return std::max(1, fixed);
  const double server_mtbf =
      health_->observed_mtbf_seconds(config_.fault.server_mtbf_hours);
  if (server_mtbf <= 0.0) return std::max(1, fixed);
  // A gang fails when any of its hosts does: the job-level MTBF shrinks
  // with the task count.
  const double job_mtbf =
      server_mtbf / static_cast<double>(std::max<std::size_t>(1, job.task_count()));
  return young_daly_checkpoint_iterations(job_mtbf, config_.recovery.checkpoint_cost_seconds,
                                          job.ideal_iteration_seconds(),
                                          config_.recovery.max_checkpoint_interval);
}

void SimEngine::fail_job(Job& job) {
  MLFS_EXPECT(!job.done());
  const JobId id = job.id();
  abort_iteration(job);
  resume_credit_[id] = 0.0;
  if (job.state() == JobState::Waiting) {
    job.add_waiting_time(now_ - waiting_since_[id]);
  }
  for (const TaskId tid : job.tasks()) {
    Task& t = cluster_.task(tid);
    if (t.state == TaskState::Running) cluster_.unplace_task(tid);
    if (t.state != TaskState::Finished) t.state = TaskState::Removed;
    task_in_backoff_[tid] = 0;  // pending RetryRelease events become stale
  }
  job.set_state(JobState::Failed);
  job.set_completion_time(now_);
  ++jobs_failed_;
  prediction_.on_job_failed(job);
  fault_stopped_since_[id] = -1.0;
  partial_since_[id] = -1.0;
  // Schedulers treat this like a completion: caches are evicted, service
  // accounting closes. The runtime predictor is *not* fed — a truncated
  // run would poison its duration estimates.
  scheduler_.on_job_complete(job, now_);
  if (observer_ != nullptr) observer_->on_job_failed(now_, id);
}

bool SimEngine::crash_server(ServerId id, SimDuration repair_after) {
  Server& server = cluster_.server(id);
  if (!server.up()) return false;
  ++server_failures_;
  if (health_) {
    health_->record_crash(id, now_);
    // A capped (quarantined/probation) server crashing empty is the
    // policy working: the crash destroyed no work.
    if (server.task_count() == 0 && server.placement_cap() >= 0) ++crashes_absorbed_;
  }
  if (server.task_count() > 0) ++victimful_crashes_;
  // Evict every hosted task first (requeued with accumulated waiting-time
  // priority intact), then apply one checkpoint-loss abort per affected
  // job — a job with several tasks on the dead server rolls back once.
  const std::vector<TaskId> victims = server.tasks();
  std::vector<JobId> affected;
  for (const TaskId tid : victims) {
    const JobId jid = cluster_.task(tid).job;
    evict_task_for_fault(tid);
    ++crash_evictions_;
    if (std::find(affected.begin(), affected.end(), jid) == affected.end()) {
      affected.push_back(jid);
    }
  }
  for (const JobId jid : affected) {
    Job& job = cluster_.job(jid);
    if (!job.done()) fault_abort(job);
  }
  cluster_.set_server_up(id, false);
  ++server_epoch_[id];  // invalidates any pending ServerDown for this server
  if (observer_ != nullptr) observer_->on_server_down(now_, id);
  if (repair_after > 0.0) {
    push_event(now_ + repair_after, EventType::ServerUp, id, server_epoch_[id]);
  }
  return true;
}

void SimEngine::handle_server_down(ServerId id, std::uint64_t epoch) {
  if (epoch != server_epoch_[id]) return;  // scheduled under an older up-period
  const double mttr = config_.fault.server_mttr_hours;
  crash_server(id, mttr > 0.0 ? fault_rng_.exponential(1.0 / hours(mttr)) : -1.0);
}

void SimEngine::handle_server_up(ServerId id, std::uint64_t epoch) {
  if (epoch != server_epoch_[id]) return;
  MLFS_EXPECT(!cluster_.server(id).up());
  cluster_.set_server_up(id, true);
  ++server_epoch_[id];
  if (health_) {
    // Re-admission decision: a server with a bad recent record comes back
    // quarantined (excluded from placements) instead of healthy.
    health_->record_recovery(id, now_);
    consider_quarantine(id);
  }
  if (observer_ != nullptr) observer_->on_server_up(now_, id);
  // The repaired server re-enters the individual crash process.
  if (config_.fault.server_mtbf_hours > 0.0) schedule_server_crash(id);
}

void SimEngine::consider_quarantine(ServerId id) {
  health_->try_quarantine(id, now_);
  cluster_.set_placement_cap(id, health_->placement_cap_for(id));
}

void SimEngine::apply_health_transitions() {
  for (const ServerHealthTracker::CapChange& change : health_->advance(now_)) {
    cluster_.set_placement_cap(change.server, change.cap);
  }
}

void SimEngine::handle_rack_outage(int rack) {
  ++rack_outages_;
  // One repair draw for the whole rack: its servers fail together and
  // come back together (correlated failure domain).
  const double mttr = config_.fault.rack_mttr_hours;
  const SimDuration repair = mttr > 0.0 ? fault_rng_.exponential(1.0 / hours(mttr)) : -1.0;
  for (ServerId s = 0; s < cluster_.server_count(); ++s) {
    if (cluster_.rack_of(s) == rack) crash_server(s, repair);
  }
  schedule_rack_outage(rack);
}

void SimEngine::kill_random_tasks() {
  if (config_.fault.task_kill_probability <= 0.0) return;
  // Draw victims first: evictions mutate the server task lists. The
  // per-server rate multiplier is 1.0 unless flaky servers are configured,
  // in which case their tasks die proportionally more often.
  std::vector<TaskId> victims;
  std::vector<ServerId> victim_hosts;
  for (const Server& s : cluster_.servers()) {
    const double p = config_.fault.task_kill_probability *
                     config_.fault.rate_multiplier(s.id(), cluster_.server_count());
    for (const TaskId tid : s.tasks()) {
      if (fault_rng_.bernoulli(p)) {
        victims.push_back(tid);
        victim_hosts.push_back(s.id());
      }
    }
  }
  std::vector<JobId> affected;
  for (std::size_t i = 0; i < victims.size(); ++i) {
    const TaskId tid = victims[i];
    const JobId jid = cluster_.task(tid).job;
    if (health_) health_->record_task_kill(victim_hosts[i], now_);
    evict_task_for_fault(tid);
    ++task_kills_;
    if (std::find(affected.begin(), affected.end(), jid) == affected.end()) {
      affected.push_back(jid);
    }
  }
  for (const JobId jid : affected) {
    Job& job = cluster_.job(jid);
    if (!job.done()) fault_abort(job);
  }
  if (health_) {
    // A burst of kills can push a live server over the quarantine
    // threshold without a crash; evaluate each struck host once.
    std::vector<ServerId> hosts = victim_hosts;
    std::sort(hosts.begin(), hosts.end());
    hosts.erase(std::unique(hosts.begin(), hosts.end()), hosts.end());
    for (const ServerId host : hosts) consider_quarantine(host);
  }
}

// --------------------------------------------------------------- tick

void SimEngine::handle_tick() {
  if (health_) apply_health_transitions();
  resample_usage();
  kill_random_tasks();
  overload_occurrences_ += cluster_.overloaded_servers(config_.hr).size();
  compact_queue();

  if (load_controller_ != nullptr) {
    load_controller_->before_schedule(cluster_, queue_, now_);
    // The controller may have lowered targets below completed counts;
    // stop any job that now satisfies its (possibly downgraded) policy.
    for (Job& job : cluster_.jobs()) {
      if (job.done() || job.state() == JobState::Waiting) continue;
      if (job.completed_iterations() > 0 && should_stop(job)) complete_job(job);
    }
    compact_queue();
  }

  SchedulerContext ctx{cluster_,   queue_, *this, now_, config_.hr, &prediction_,
                       protected_job()};
  const auto wall_start = std::chrono::steady_clock::now();
  scheduler_.schedule(ctx);
  const auto wall_end = std::chrono::steady_clock::now();
  sched_wall_ms_total_ +=
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  ++sched_rounds_;

  compact_queue();
  try_start_jobs();
  release_stale_partial_placements();
  run_watchdog();

  // Keep ticking while there is anything left to drive.
  if (jobs_completed_ + jobs_failed_ < cluster_.job_count() && now_ < config_.max_sim_time) {
    push_event(now_ + config_.tick_interval, EventType::Tick);
  } else {
    tick_armed_ = false;
  }
}

void SimEngine::try_start_jobs() {
  for (Job& job : cluster_.jobs()) {
    if (job.state() != JobState::Waiting || job.done()) continue;
    if (job.spec().arrival > now_) continue;
    if (!cluster_.job_fully_placed(job)) continue;
    // All live tasks placed: accumulate waiting, start the next iteration.
    job.add_waiting_time(now_ - waiting_since_[job.id()]);
    job.set_state(JobState::Running);
    partial_since_[job.id()] = -1.0;
    if (fault_stopped_since_[job.id()] >= 0.0) {
      // The job is running again after a fault knocked it out: close the
      // recovery interval for the mean-recovery-time metric.
      recovery_seconds_sum_ += now_ - fault_stopped_since_[job.id()];
      ++recoveries_;
      fault_stopped_since_[job.id()] = -1.0;
    }
    if (observer_ != nullptr) observer_->on_job_started(now_, job.id());
    start_iteration(job);
  }
}

JobId SimEngine::protected_job() const {
  // The arrived, unfinished job that has waited longest. Its partial
  // placements are never released or evicted, so it monotonically
  // approaches a full gang — the global progress guarantee.
  JobId best = kInvalidJob;
  double best_wait = -1.0;
  for (const Job& job : cluster_.jobs()) {
    if (job.done() || job.state() != JobState::Waiting || job.spec().arrival > now_) continue;
    const double wait = job.waiting_time() + (now_ - waiting_since_[job.id()]);
    if (wait > best_wait) {
      best_wait = wait;
      best = job.id();
    }
  }
  return best;
}

void SimEngine::release_stale_partial_placements() {
  const JobId protected_id = protected_job();
  for (Job& job : cluster_.jobs()) {
    if (job.id() == protected_id) continue;
    if (job.done() || job.state() != JobState::Waiting || job.spec().arrival > now_) {
      partial_since_[job.id()] = -1.0;
      continue;
    }
    bool any_placed = false;
    for (const TaskId tid : job.tasks()) {
      if (cluster_.task(tid).state == TaskState::Running) {
        any_placed = true;
        break;
      }
    }
    if (!any_placed) {
      partial_since_[job.id()] = -1.0;
      continue;
    }
    if (partial_since_[job.id()] < 0.0) {
      partial_since_[job.id()] = now_;
      continue;
    }
    if (now_ - partial_since_[job.id()] < config_.partial_placement_timeout) continue;
    // Idle placements held too long: give the capacity back (the job is
    // not running, so nothing is aborted) and retry as one gang later.
    for (const TaskId tid : job.tasks()) {
      Task& t = cluster_.task(tid);
      if (t.state == TaskState::Running) {
        cluster_.unplace_task(tid);
        t.queued_since = now_;
        queue_.push_back(tid);
      }
    }
    partial_since_[job.id()] = -1.0;
    ++partial_releases_;
  }
}

double SimEngine::iteration_duration(const Job& job) {
  const Dag& dag = job.dag();
  const std::size_t n = dag.node_count();
  std::vector<double> finish(n, 0.0);
  double critical = 0.0;
  bool any_cross_server = false;
  // Link-level contention (opt-in): cross-server flows get the link
  // model's fair share instead of the static per-flow bandwidth. The
  // static path is untouched when the feature is off — no extra reads, no
  // arithmetic reordering — preserving byte-identical runs.
  const bool contended = cluster_config_.link_contention;
  for (const std::size_t u : dag.topological_order()) {
    Task& t = cluster_.task(job.task_at(u));
    if (t.state == TaskState::Finished || t.state == TaskState::Removed) continue;
    MLFS_EXPECT(t.placed());
    const Server& server = cluster_.server(t.server);

    double start = 0.0;
    for (const std::size_t p : dag.parents(u)) {
      const Task& pt = cluster_.task(job.task_at(p));
      double comm = 0.0;
      if (pt.placed() && pt.server != t.server) {
        const double volume =
            t.is_parameter_server ? job.spec().comm_volume_ps_mb : job.spec().comm_volume_ww_mb;
        const double base_bw = cluster_.flow_bandwidth_between(pt.server, t.server);
        comm = volume / base_bw;
        if (contended) {
          const double shared_bw =
              cluster_.link_model().flow_bandwidth(job.id(), pt.server, t.server, base_bw);
          const double shared_comm = volume / shared_bw;
          link_busy_seconds_ += shared_comm;
          contention_slowdown_seconds_ += shared_comm - comm;
          comm = shared_comm;
        }
        any_cross_server = true;
      }
      start = std::max(start, finish[p] + comm);
    }

    // Contention: sharing within capacity is free; past saturation the
    // slowdown is quadratic (thrashing, cache and PCIe/NIC congestion are
    // superlinear), which is what makes overload worth handling (§3.3.3).
    const double hr = config_.hr;
    const auto congestion = [hr](double load) {
      // Interference begins at the overload threshold and grows
      // quadratically (thrashing / congestion are superlinear).
      if (load <= hr) return 1.0;
      const double x = load / hr;
      return x * x * x;
    };
    const double gpu_slow = congestion(server.gpu_load(t.gpu));
    const ResourceVector u_s = server.utilization();
    const double res_slow = std::max(
        {congestion(u_s[Resource::Cpu]), congestion(u_s[Resource::Mem]),
         congestion(u_s[Resource::Net])});
    double compute = t.base_compute_seconds * gpu_slow * res_slow / server.speed();
    if (config_.straggler_probability > 0.0) {
      // Deterministic per (task, iteration) draws so replays agree. The
      // effective slowdown is the minimum across the primary and its
      // replicas — the paper's first-copy-wins mitigation.
      const auto draws = 1 + std::max(0, config_.straggler_replicas);
      double best = std::numeric_limits<double>::infinity();
      for (int r = 0; r < draws; ++r) {
        Rng draw(job.spec().seed ^ (0x9e3779b97f4a7c15ULL * (t.id + 1)) ^
                 (0xc2b2ae3d27d4eb4fULL * static_cast<std::uint64_t>(
                                             job.completed_iterations() * draws + r + 1)));
        const double factor = draw.bernoulli(config_.straggler_probability)
                                  ? config_.straggler_slowdown
                                  : 1.0;
        best = std::min(best, factor);
      }
      compute *= best;
    }
    compute += t.pending_penalty_seconds;
    t.pending_penalty_seconds = 0.0;

    finish[u] = start + compute;
    critical = std::max(critical, finish[u]);
  }
  if (job.spec().comm == CommStructure::AllReduce) {
    // Ring all-reduce at the iteration end; pipelined, so ~2 volumes when
    // any hop crosses servers.
    bool cross = any_cross_server;
    if (!cross) {
      for (std::size_t i = 0; i + 1 < job.task_count(); ++i) {
        if (cluster_.task(job.task_at(i)).server != cluster_.task(job.task_at(i + 1)).server) {
          cross = true;
          break;
        }
      }
    }
    if (cross) {
      // Worst hop in the ring bounds the all-reduce round.
      double ring_bw = cluster_config_.effective_flow_bandwidth_mbps;
      double shared_ring_bw = ring_bw;
      for (std::size_t i = 0; i < job.task_count(); ++i) {
        const Task& a = cluster_.task(job.task_at(i));
        const Task& b = cluster_.task(job.task_at((i + 1) % job.task_count()));
        if (a.placed() && b.placed() && a.server != b.server) {
          const double base_bw = cluster_.flow_bandwidth_between(a.server, b.server);
          ring_bw = std::min(ring_bw, base_bw);
          if (contended) {
            shared_ring_bw = std::min(
                shared_ring_bw,
                cluster_.link_model().flow_bandwidth(job.id(), a.server, b.server, base_bw));
          }
        }
      }
      const double base_round = 2.0 * job.spec().comm_volume_ww_mb / ring_bw;
      if (contended) {
        const double shared_round = 2.0 * job.spec().comm_volume_ww_mb / shared_ring_bw;
        link_busy_seconds_ += shared_round;
        contention_slowdown_seconds_ += shared_round - base_round;
        critical += shared_round;
      } else {
        critical += base_round;
      }
    }
  }
  return std::max(critical, 1e-3);
}

void SimEngine::start_iteration(Job& job) {
  MLFS_EXPECT(job.state() == JobState::Running);
  // Resume credit from a previously aborted iteration (checkpointing):
  // only the unfinished remainder must be recomputed.
  double duration = iteration_duration(job) * (1.0 - resume_credit_[job.id()]);
  resume_credit_[job.id()] = 0.0;
  duration = std::max(duration, 1e-3);
  if (health_ && config_.recovery.adaptive_checkpoint && config_.fault.any_faults()) {
    // Checkpointing is no longer free under the adaptive policy: the
    // iteration that writes a checkpoint pays its cost. This is what the
    // Young/Daly interval is trading off against the rollback loss.
    if ((job.completed_iterations() + 1) % checkpoint_interval_for(job) == 0) {
      duration += config_.recovery.checkpoint_cost_seconds;
    }
  }
  const std::uint64_t epoch = ++job_epoch_[job.id()];
  iter_started_[job.id()] = now_;
  iter_duration_[job.id()] = duration;
  push_event(now_ + duration, EventType::IterationDone, job.id(), epoch);
}

void SimEngine::abort_iteration(Job& job) {
  const JobId id = job.id();
  if (job.state() == JobState::Running && iter_duration_[id] > 0.0) {
    const double fraction = (now_ - iter_started_[id]) / iter_duration_[id];
    // Combine with any prior credit: progress accumulates across aborts.
    const double prior = resume_credit_[id];
    resume_credit_[id] =
        std::clamp(prior + (1.0 - prior) * std::clamp(fraction, 0.0, 1.0), 0.0, 0.95);
  }
  iter_duration_[id] = 0.0;
  ++job_epoch_[id];
}

void SimEngine::account_iteration_bandwidth(const Job& job) {
  const Dag& dag = job.dag();
  for (std::size_t u = 0; u < dag.node_count(); ++u) {
    const Task& t = cluster_.task(job.task_at(u));
    for (const std::size_t c : dag.children(u)) {
      const Task& ct = cluster_.task(job.task_at(c));
      if (!t.placed() || !ct.placed()) continue;
      const double volume =
          ct.is_parameter_server ? job.spec().comm_volume_ps_mb : job.spec().comm_volume_ww_mb;
      cluster_.record_transfer(t.server, ct.server, volume);
    }
  }
  if (job.spec().comm == CommStructure::AllReduce) {
    for (std::size_t i = 0; i < job.task_count(); ++i) {
      const Task& a = cluster_.task(job.task_at(i));
      const Task& b = cluster_.task(job.task_at((i + 1) % job.task_count()));
      if (a.placed() && b.placed()) {
        cluster_.record_transfer(a.server, b.server, job.spec().comm_volume_ww_mb);
      }
    }
  }
  if (config_.straggler_replicas > 0) {
    // Each replica ships its copy of the task's per-iteration output; we
    // charge it as cross-server traffic (replicas are placed elsewhere by
    // construction — co-locating them would not mitigate anything).
    const double volume = job.spec().comm == CommStructure::ParameterServer
                              ? job.spec().comm_volume_ps_mb
                              : job.spec().comm_volume_ww_mb;
    const double replica_mb =
        volume * static_cast<double>(config_.straggler_replicas) *
        static_cast<double>(job.task_count());
    // Account against an arbitrary distinct server pair (ledger is scalar).
    if (cluster_.server_count() > 1) cluster_.record_transfer(0, 1, replica_mb);
  }
}

bool SimEngine::should_stop(const Job& job) {
  const int done = job.completed_iterations();
  if (done >= job.target_iterations()) return true;
  switch (job.active_policy()) {
    case StopPolicy::FixedIterations:
      return false;
    case StopPolicy::AccuracyOnly:
      return job.current_accuracy() >= job.spec().accuracy_requirement;
    case StopPolicy::OptStop: {
      if (done < 3 || done % config_.optstop_check_interval != 0) return false;
      const CurvePrediction at_max = prediction_.predict_at_max(job);
      // §3.5: a job predicted to miss its requirement stops once the
      // prediction is confident; otherwise it stops when it is within
      // near_max_fraction of everything it could ever reach.
      if (at_max.accuracy < job.spec().accuracy_requirement &&
          at_max.confidence > config_.optstop_confidence_threshold) {
        return true;
      }
      return job.current_accuracy() >= config_.optstop_near_max_fraction * at_max.accuracy;
    }
  }
  return false;
}

void SimEngine::complete_job(Job& job) {
  MLFS_EXPECT(!job.done());
  abort_iteration(job);
  if (job.state() == JobState::Waiting) {
    job.add_waiting_time(now_ - waiting_since_[job.id()]);
  }
  for (const TaskId tid : job.tasks()) {
    Task& t = cluster_.task(tid);
    if (t.state == TaskState::Running) cluster_.unplace_task(tid);
    t.state = TaskState::Finished;
    task_in_backoff_[tid] = 0;  // pending RetryRelease events become stale
  }
  job.set_state(JobState::Completed);
  job.set_completion_time(now_);
  ++jobs_completed_;
  prediction_.on_job_complete(job);
  scheduler_.on_job_complete(job, now_);
  if (observer_ != nullptr) observer_->on_job_complete(now_, job.id());
}

void SimEngine::handle_iteration_done(JobId id, std::uint64_t epoch) {
  Job& job = cluster_.job(id);
  if (job.done() || epoch != job_epoch_[id]) return;  // aborted iteration
  MLFS_EXPECT(job.state() == JobState::Running);
  job.complete_iteration();
  ++iterations_run_;
  prediction_.on_iteration_complete(job);
  if (observer_ != nullptr) {
    observer_->on_iteration_complete(now_, id, job.completed_iterations());
  }
  account_iteration_bandwidth(job);
  if (should_stop(job)) {
    complete_job(job);
  } else {
    start_iteration(job);
  }
}

void SimEngine::handle_deadline(JobId id) {
  Job& job = cluster_.job(id);
  if (deadline_recorded_[id]) return;
  deadline_recorded_[id] = 1;
  if (!job.done()) job.record_deadline_progress();
}

// --------------------------------------------------------------- run

RunMetrics SimEngine::run() {
  const auto wall_start = std::chrono::steady_clock::now();
  while (step()) {
  }
  run_wall_ms_ += std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();
  return finalize();
}

bool SimEngine::step() {
  // Streamed arrivals are pulled before the next event pops, keyed to the
  // current (now, event-index) instant — the same instant a journal replay
  // reproduces, so injection points are deterministic across crashes.
  drain_arrival_source();
  if (events_.empty()) return false;
  const Event ev = events_.top();
  events_.pop();
  if (ev.time > config_.max_sim_time) return false;
  MLFS_EXPECT(ev.time + 1e-9 >= now_);
  now_ = std::max(now_, ev.time);
  // Event-stream hash: chained over every accepted event's identity before
  // dispatch, so two runs agree iff they processed the same events in the
  // same order — the byte-identical-resume contract.
  event_hash_ = fnv1a_mix(event_hash_, std::bit_cast<std::uint64_t>(ev.time));
  event_hash_ = fnv1a_mix(event_hash_, ev.seq);
  event_hash_ = fnv1a_mix(event_hash_, static_cast<std::uint64_t>(ev.type));
  event_hash_ = fnv1a_mix(event_hash_, static_cast<std::uint64_t>(ev.job));
  event_hash_ = fnv1a_mix(event_hash_, ev.epoch);
  ++events_processed_;
  const char* name = "";
  switch (ev.type) {
    case EventType::Arrival: name = "arrival"; handle_arrival(ev.job); break;
    case EventType::Tick: name = "tick"; handle_tick(); break;
    case EventType::IterationDone:
      name = "iteration-done";
      handle_iteration_done(ev.job, ev.epoch);
      break;
    case EventType::Deadline: name = "deadline"; handle_deadline(ev.job); break;
    case EventType::ServerDown:
      name = "server-down";
      handle_server_down(ev.job, ev.epoch);
      break;
    case EventType::ServerUp: name = "server-up"; handle_server_up(ev.job, ev.epoch); break;
    case EventType::RackOutage:
      name = "rack-outage";
      handle_rack_outage(static_cast<int>(ev.job));
      break;
    case EventType::RetryRelease:
      name = "retry-release";
      handle_retry_release(static_cast<TaskId>(ev.job));
      break;
  }
  if (auditor_) auditor_->after_event(name, ev.job);
  return jobs_completed_ + jobs_failed_ != cluster_.job_count();
}

RunMetrics SimEngine::finalize() {
  if (jobs_completed_ + jobs_failed_ < cluster_.job_count()) {
    MLFS_WARN("simulation hit max_sim_time with "
              << (cluster_.job_count() - jobs_completed_ - jobs_failed_)
              << " jobs incomplete (censored)");
  }

  RunMetrics m;
  m.scheduler = scheduler_.name();
  m.job_count = cluster_.job_count();
  m.jobs_injected = injected_specs_.size();
  m.events_processed = events_processed_;
  m.event_stream_hash = event_hash_;
  double first_arrival = std::numeric_limits<double>::infinity();
  double last_completion = 0.0;
  std::size_t deadline_met = 0;
  std::size_t accuracy_met = 0;
  std::size_t urgent_total = 0;
  std::size_t urgent_met = 0;
  double accuracy_sum = 0.0;
  std::size_t iterations_saved = 0;
  for (Job& job : cluster_.jobs()) {
    if (!job.done()) {
      // Censored job: charge it the full horizon so it cannot improve a
      // scheduler's numbers by never finishing.
      job.set_completion_time(std::max(now_, config_.max_sim_time));
      if (job.iterations_at_deadline() < 0 && now_ > job.deadline()) {
        job.record_deadline_progress();
      }
    }
    const double jct = job.completion_time() - job.spec().arrival;
    m.jct_minutes.add(to_minutes(jct));
    m.waiting_seconds.add(job.waiting_time());
    first_arrival = std::min(first_arrival, job.spec().arrival);
    last_completion = std::max(last_completion, job.completion_time());
    // A failed-permanent job is done() but never "meets" its deadline.
    const bool met_deadline =
        job.state() == JobState::Completed && job.completion_time() <= job.deadline();
    if (met_deadline) ++deadline_met;
    if (job.spec().urgency > 8.0) {
      ++urgent_total;
      if (met_deadline) ++urgent_met;
    }
    const double acc = job.accuracy_by_deadline();
    accuracy_sum += acc;
    if (acc >= job.spec().accuracy_requirement) ++accuracy_met;
    iterations_saved += static_cast<std::size_t>(
        std::max(0, job.spec().max_iterations - job.completed_iterations()));
  }
  const auto n = static_cast<double>(cluster_.job_count());
  m.makespan_hours = to_hours(last_completion - first_arrival);
  m.deadline_ratio = static_cast<double>(deadline_met) / n;
  m.accuracy_ratio = static_cast<double>(accuracy_met) / n;
  m.average_accuracy = accuracy_sum / n;
  m.bandwidth_tb = cluster_.total_bandwidth_mb() / 1e6;
  m.inter_rack_tb = cluster_.inter_rack_bandwidth_mb() / 1e6;
  m.sched_overhead_ms = sched_rounds_ > 0 ? sched_wall_ms_total_ / sched_rounds_ : 0.0;
  m.sched_rounds = sched_rounds_;
  const SchedStats sstats = scheduler_.sched_stats();
  m.candidates_scanned = sstats.candidates_scanned;
  m.candidates_linear = sstats.candidates_linear;
  m.comm_cache_hits = sstats.comm_cache_hits;
  m.comm_cache_misses = sstats.comm_cache_misses;
  const LoadIndexStats& lstats = cluster_.load_index_stats();
  m.load_index_rebuilds = lstats.full_rebuilds;
  m.load_index_refreshes = lstats.refreshes;
  m.servers_reindexed = lstats.servers_reindexed;
  m.noop_reindexes = lstats.noop_reindexes;
  const PlacementIndexStats& pstats = cluster_.placement_index_stats();
  m.pindex_queries = pstats.queries;
  m.pindex_servers_pruned = pstats.servers_pruned;
  m.pindex_buckets_pruned = pstats.buckets_pruned;
  m.pindex_servers_bypassed = pstats.servers_bypassed;
  m.link_busy_seconds = link_busy_seconds_;
  m.contention_slowdown_seconds = contention_slowdown_seconds_;
  m.phase_offset_hits = static_cast<std::size_t>(phase_offset_hits_);
  const PredictStats& predict_stats = prediction_.stats();
  m.fits_cold = predict_stats.fits_cold;
  m.fits_warm = predict_stats.fits_warm;
  m.prediction_cache_hits = predict_stats.cache_hits;
  m.nm_objective_evals = predict_stats.nm_objective_evals;
  m.fit_wall_ms = predict_stats.fit_wall_ms;
  m.run_wall_ms = run_wall_ms_;
  m.overload_occurrences = overload_occurrences_;
  m.migrations = migrations_;
  m.preemptions = preemptions_;
  m.partial_releases = partial_releases_;
  m.watchdog_evictions = watchdog_evictions_;
  m.iterations_run = iterations_run_;
  m.iterations_saved = iterations_saved;
  m.urgent_deadline_ratio =
      urgent_total > 0 ? static_cast<double>(urgent_met) / urgent_total : 0.0;
  m.server_failures = server_failures_;
  m.rack_outages = rack_outages_;
  m.task_kills = task_kills_;
  m.crash_evictions = crash_evictions_;
  m.iterations_rolled_back = iterations_rolled_back_;
  m.work_lost_gpu_seconds = work_lost_gpu_seconds_;
  m.mean_recovery_seconds =
      recoveries_ > 0 ? recovery_seconds_sum_ / static_cast<double>(recoveries_) : 0.0;
  m.quarantines = health_ ? health_->quarantines() : 0;
  m.quarantine_valve_saves = health_ ? health_->valve_saves() : 0;
  m.task_retries = retry_backoffs_;
  m.backoff_delay_seconds = backoff_delay_seconds_total_;
  m.jobs_failed_permanent = jobs_failed_;
  m.crashes_absorbed = crashes_absorbed_;
  // Estimated wasted work the quarantine avoided: each crash absorbed by
  // an empty capped server would, on average, have cost what a victimful
  // crash cost in this run.
  m.wasted_work_avoided_gpu_seconds =
      victimful_crashes_ > 0
          ? static_cast<double>(crashes_absorbed_) *
                (work_lost_gpu_seconds_ / static_cast<double>(victimful_crashes_))
          : 0.0;
  // Goodput: rolled-back iterations were executed (counted in
  // iterations_run_) but not useful; discarded in-flight fractions were
  // executed but never counted.
  const double useful = static_cast<double>(iterations_run_) -
                        static_cast<double>(iterations_rolled_back_);
  const double executed =
      static_cast<double>(iterations_run_) + inflight_work_lost_iterations_;
  m.goodput = executed > 0.0 ? useful / executed : 1.0;
  if (auditor_) {
    auditor_->check_now("end-of-run");
    auditor_->check_metrics(m);
  }
  return m;
}

}  // namespace mlfs
