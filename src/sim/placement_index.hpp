// Bucketed feasibility index over the server load vectors — the sublinear
// candidate funnel behind MlfPlacement's RIAL-style host query (see
// DESIGN.md, "Scheduler hot path").
//
// The linear funnel runs the four-comparison feasibility check
// (cpu/mem/net sums + least-loaded-GPU load against hr) on every
// underloaded server per placement call. This index makes almost every
// verdict wholesale: each member's four load dimensions are quantized
// into buckets (boundary(b) = hr·b/K), a query derives — per dimension —
// the highest bucket whose members could still pass that dimension's
// comparison (the cutoff), and then classifies each member with four
// integer compares of its bucket ids against the cutoffs:
//   above any cutoff          -> provably infeasible (pruned),
//   strictly below every one  -> provably feasible (bypassed),
//   on a cutoff bucket        -> the exact four-comparison check.
// Only the last class counts toward candidates_scanned, so the funnel's
// exact-check count shrinks to the boundary-bucket population while the
// emitted feasible set (and therefore every scheduling decision) stays
// byte-identical to the linear funnel's.
//
// FP soundness of both wholesale rules rests on IEEE addition being
// monotone in its operands:
//   prune:  bucket b holds load_r >= boundary(b); if fl(boundary(b) + u_r)
//           > hr then fl(load_r + u_r) >= fl(boundary(b) + u_r) > hr —
//           exactly the comparison the four-check performs.
//   bypass: bucket b < cutoff holds load_r < boundary(b+1) <=
//           boundary(cutoff), and fl(boundary(cutoff) + u_r) <= hr by the
//           cutoff's definition, so fl(load_r + u_r) <= hr.
// boundary(0) = -inf, so bucket 0 is never pruned and slightly-negative
// drifted sums are still indexed (and bypassed or examined like any other
// member).
//
// Deliberately NO per-bucket member lists: the underloaded membership is
// a small fraction of the fleet under the saturation this index targets,
// so a flat ascending walk over the membership flags — four integer
// compares per member, output already in the linear funnel's order —
// beats maintaining sorted per-bucket lists (whose surgery cost, not the
// query, dominated earlier designs). Maintenance is four stores and four
// quantizations per reindex.
#pragma once

#include <cstdint>
#include <vector>

#include "common/binio.hpp"
#include "workload/ids.hpp"

namespace mlfs {

/// Query-side instrumentation (surfaced through RunMetrics).
struct PlacementIndexStats {
  std::size_t queries = 0;           ///< collect_feasible calls
  std::size_t servers_examined = 0;  ///< members exact-checked across queries
  std::size_t servers_pruned = 0;    ///< members rejected by bucket bound alone
  std::size_t buckets_pruned = 0;    ///< buckets above the GPU-dimension cutoff
  std::size_t servers_bypassed = 0;  ///< members emitted feasible by bucket bound alone
};

class PlacementIndex {
 public:
  /// Indexed load dimensions, in the order the feasibility check reads
  /// them: least-loaded-GPU load, then the CPU/MEM/NET usage sums.
  static constexpr int kDims = 4;

  /// Resets the index for a fleet of `server_count` servers under overload
  /// threshold `hr` with `bucket_count` buckets per dimension; every server
  /// starts as a non-member. Call set_server for each to populate.
  void reset(std::size_t server_count, double hr, int bucket_count);

  /// Installs server `id`'s membership and load vector. `member` mirrors
  /// the cluster's underloaded partition; the four loads must be the exact
  /// doubles the cluster's refresh caches (index_least_load_ /
  /// index_util_ components) so the cutoff-bucket exact checks reproduce
  /// the linear funnel bit for bit.
  void set_server(ServerId id, bool member, double least_gpu_load, double cpu, double mem,
                  double net);

  /// Feasible candidates for a task with usage components (u_gpu..u_net)
  /// under threshold `hr`: appends to `out` — ascending, the linear
  /// funnel's candidate order — every member whose exact four-comparison
  /// check would pass, skipping `skip` (kInvalidServer = no skip). Returns
  /// the number of members exact-checked (the candidates_scanned
  /// currency); bucket-bound classifications are free.
  std::size_t collect_feasible(double hr, double u_gpu, double u_cpu, double u_mem, double u_net,
                               ServerId skip, std::vector<ServerId>& out) const;

  std::size_t member_count() const { return member_count_; }
  bool is_member(ServerId id) const { return member_[id] != 0; }
  std::size_t server_count() const { return member_.size(); }
  bool initialized() const { return !member_.empty(); }

  const PlacementIndexStats& stats() const { return stats_; }

  // --- introspection for the auditor and tests ---
  int bucket_count() const { return bucket_count_; }
  double hr() const { return hr_; }
  /// Lower boundary of bucket `b` (boundary(0) == -infinity).
  double boundary(int b) const { return boundaries_[static_cast<std::size_t>(b)]; }
  /// Bucket holding `id` along `dim` (meaningful only while a member).
  int bucket_of(int dim, ServerId id) const {
    return bucket_of_[static_cast<std::size_t>(dim)][id];
  }
  double load_of(int dim, ServerId id) const {
    return loads_[static_cast<std::size_t>(dim)][id];
  }
  /// Bucket a load value maps to (boundaries_[b] <= load < boundaries_[b+1]).
  int bucket_for_load(double load) const;

  /// Snapshot support: only the stats counters are serialized — the
  /// structure itself is rebuilt by Cluster::restore_state from the
  /// restored refresh-time caches (which this index mirrors exactly), so
  /// the round-trip is bit-identical without a second copy of the fleet.
  void save_state(io::BinWriter& w) const;
  void restore_state(io::BinReader& r);

 private:
  double hr_ = 0.0;
  int bucket_count_ = 0;
  std::size_t member_count_ = 0;
  std::vector<double> boundaries_;  ///< [bucket_count_]; [0] = -inf
  std::vector<char> member_;
  /// SoA load values per dimension ([kDims][server]); exact copies of the
  /// cluster's refresh-time caches for members (stale for non-members).
  std::vector<double> loads_[kDims];
  /// Quantized bucket id per dimension ([kDims][server]) — what the query
  /// compares against the cutoffs (-1 for non-members).
  std::vector<std::int32_t> bucket_of_[kDims];
  mutable PlacementIndexStats stats_;
};

}  // namespace mlfs
