#include "sim/health.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace mlfs {

void RecoveryConfig::validate() const {
  if (!enabled) return;
  if (kill_weight < 0.0) throw ContractViolation("RecoveryConfig: kill_weight must be >= 0");
  if (score_halflife_hours <= 0.0) {
    throw ContractViolation("RecoveryConfig: score_halflife_hours must be > 0");
  }
  if (quarantine_enabled) {
    if (quarantine_score_threshold <= 0.0) {
      throw ContractViolation("RecoveryConfig: quarantine_score_threshold must be > 0");
    }
    if (quarantine_base_minutes <= 0.0) {
      throw ContractViolation("RecoveryConfig: quarantine_base_minutes must be > 0");
    }
    if (quarantine_backoff_factor < 1.0) {
      throw ContractViolation("RecoveryConfig: quarantine_backoff_factor must be >= 1");
    }
    if (quarantine_max_minutes < quarantine_base_minutes) {
      throw ContractViolation(
          "RecoveryConfig: quarantine_max_minutes must be >= quarantine_base_minutes");
    }
    if (probation_minutes < 0.0) {
      throw ContractViolation("RecoveryConfig: probation_minutes must be >= 0");
    }
    if (probation_task_cap < 0) {
      throw ContractViolation("RecoveryConfig: probation_task_cap must be >= 0");
    }
    if (min_active_fraction < 0.0 || min_active_fraction > 1.0) {
      throw ContractViolation("RecoveryConfig: min_active_fraction must be in [0, 1]");
    }
  }
  if (retry_backoff_enabled) {
    if (retry_budget < 0) throw ContractViolation("RecoveryConfig: retry_budget must be >= 0");
    if (backoff_base_seconds <= 0.0) {
      throw ContractViolation("RecoveryConfig: backoff_base_seconds must be > 0");
    }
    if (backoff_factor < 1.0) {
      throw ContractViolation("RecoveryConfig: backoff_factor must be >= 1");
    }
    if (backoff_max_seconds < backoff_base_seconds) {
      throw ContractViolation(
          "RecoveryConfig: backoff_max_seconds must be >= backoff_base_seconds");
    }
    if (backoff_jitter < 0.0 || backoff_jitter > 1.0) {
      throw ContractViolation("RecoveryConfig: backoff_jitter must be in [0, 1]");
    }
  }
  if (adaptive_checkpoint) {
    if (checkpoint_cost_seconds <= 0.0) {
      throw ContractViolation(
          "RecoveryConfig: adaptive checkpointing needs checkpoint_cost_seconds > 0");
    }
    if (max_checkpoint_interval < 1) {
      throw ContractViolation("RecoveryConfig: max_checkpoint_interval must be >= 1");
    }
  }
}

double backoff_delay_seconds(const RecoveryConfig& config, int prior_retries, double jitter_u) {
  MLFS_EXPECT(prior_retries >= 0);
  MLFS_EXPECT(jitter_u >= 0.0 && jitter_u < 1.0);
  double delay = config.backoff_base_seconds;
  // Multiply instead of pow(): retries are small integers and this keeps
  // the schedule exact for factor tests.
  for (int i = 0; i < prior_retries && delay < config.backoff_max_seconds; ++i) {
    delay *= config.backoff_factor;
  }
  delay = std::min(delay, config.backoff_max_seconds);
  return delay * (1.0 + config.backoff_jitter * jitter_u);
}

double young_daly_interval_seconds(double mtbf_seconds, double checkpoint_cost_seconds) {
  if (mtbf_seconds <= 0.0 || checkpoint_cost_seconds <= 0.0) return 0.0;
  return std::sqrt(2.0 * mtbf_seconds * checkpoint_cost_seconds);
}

int young_daly_checkpoint_iterations(double mtbf_seconds, double checkpoint_cost_seconds,
                                     double iteration_seconds, int max_interval) {
  MLFS_EXPECT(max_interval >= 1);
  const double period = young_daly_interval_seconds(mtbf_seconds, checkpoint_cost_seconds);
  if (period <= 0.0 || iteration_seconds <= 0.0) return 1;
  const double iters = std::lround(period / iteration_seconds);
  return static_cast<int>(std::clamp(iters, 1.0, static_cast<double>(max_interval)));
}

ServerHealthTracker::ServerHealthTracker(const RecoveryConfig& config,
                                         std::size_t server_count)
    : config_(config), state_(server_count) {}

void ServerHealthTracker::decay_score(ServerState& s, SimTime now) const {
  if (now <= s.score_time) return;
  const double halflife = hours(config_.score_halflife_hours);
  s.score *= std::pow(0.5, (now - s.score_time) / halflife);
  s.score_time = now;
}

void ServerHealthTracker::record_crash(ServerId server, SimTime now) {
  ServerState& s = state_[server];
  decay_score(s, now);
  s.score += 1.0;
  if (s.up) {
    uptime_sum_ += now - s.up_since;
    s.up = false;
  }
  ++crashes_;
  // A crash during probation is the server failing its trial; the next
  // try_quarantine (at re-admission) will see the score and re-quarantine
  // with a longer window. Clear the probation window so a clean recovery
  // below the threshold does not inherit a stale timer.
  if (s.health == ServerHealth::Probation) s.health = ServerHealth::Healthy;
}

void ServerHealthTracker::record_task_kill(ServerId server, SimTime now) {
  ServerState& s = state_[server];
  decay_score(s, now);
  s.score += config_.kill_weight;
}

void ServerHealthTracker::record_recovery(ServerId server, SimTime now) {
  ServerState& s = state_[server];
  if (!s.up) {
    s.up = true;
    s.up_since = now;
  }
}

std::size_t ServerHealthTracker::active_servers() const {
  std::size_t active = 0;
  for (const ServerState& s : state_) {
    if (s.up && s.health != ServerHealth::Quarantined) ++active;
  }
  return active;
}

bool ServerHealthTracker::try_quarantine(ServerId server, SimTime now) {
  if (!config_.quarantine_enabled) return false;
  ServerState& s = state_[server];
  if (s.health == ServerHealth::Quarantined) return true;  // already held
  decay_score(s, now);
  if (s.score < config_.quarantine_score_threshold) return false;
  const auto total = static_cast<double>(state_.size());
  const auto min_active = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(config_.min_active_fraction * total)));
  // The candidate counts as active right now (it is up, or about to come
  // up); quarantining it removes one active server.
  if (active_servers() <= min_active) {
    ++valve_saves_;
    return false;
  }
  double window = minutes(config_.quarantine_base_minutes);
  for (int i = 0; i < s.quarantine_count && window < minutes(config_.quarantine_max_minutes);
       ++i) {
    window *= config_.quarantine_backoff_factor;
  }
  window = std::min(window, minutes(config_.quarantine_max_minutes));
  ++s.quarantine_count;
  s.health = ServerHealth::Quarantined;
  s.window_until = now + window;
  ++quarantines_;
  return true;
}

std::vector<ServerHealthTracker::CapChange> ServerHealthTracker::advance(SimTime now) {
  std::vector<CapChange> changes;
  for (ServerId id = 0; id < state_.size(); ++id) {
    ServerState& s = state_[id];
    if (s.health == ServerHealth::Quarantined && now >= s.window_until) {
      s.health = ServerHealth::Probation;
      s.window_until = now + minutes(config_.probation_minutes);
      changes.push_back({id, config_.probation_task_cap});
    } else if (s.health == ServerHealth::Probation && now >= s.window_until) {
      // Survived probation (a crash would have reset health to Healthy and
      // the placement funnel already excludes down servers).
      s.health = ServerHealth::Healthy;
      changes.push_back({id, -1});
    }
  }
  return changes;
}

double ServerHealthTracker::observed_mtbf_seconds(double fallback_mtbf_hours) const {
  if (crashes_ >= 3 && uptime_sum_ > 0.0) {
    return uptime_sum_ / static_cast<double>(crashes_);
  }
  return fallback_mtbf_hours > 0.0 ? hours(fallback_mtbf_hours) : 0.0;
}

int ServerHealthTracker::placement_cap_for(ServerId server) const {
  switch (state_[server].health) {
    case ServerHealth::Healthy: return -1;
    case ServerHealth::Quarantined: return 0;
    case ServerHealth::Probation: return config_.probation_task_cap;
  }
  return -1;
}

double ServerHealthTracker::score(ServerId server, SimTime now) const {
  ServerState s = state_[server];
  decay_score(s, now);
  return s.score;
}

void ServerHealthTracker::save_state(io::BinWriter& w) const {
  w.u64(state_.size());
  for (const ServerState& s : state_) {
    w.u8(static_cast<std::uint8_t>(s.health));
    w.f64(s.score);
    w.f64(s.score_time);
    w.boolean(s.up);
    w.f64(s.up_since);
    w.f64(s.window_until);
    w.i64(s.quarantine_count);
  }
  w.f64(uptime_sum_);
  w.u64(crashes_);
  w.u64(quarantines_);
  w.u64(valve_saves_);
}

void ServerHealthTracker::restore_state(io::BinReader& r) {
  const std::uint64_t count = r.u64();
  MLFS_EXPECT(count == state_.size());  // fleet size is static
  for (ServerState& s : state_) {
    s.health = static_cast<ServerHealth>(r.u8());
    s.score = r.f64();
    s.score_time = r.f64();
    s.up = r.boolean();
    s.up_since = r.f64();
    s.window_until = r.f64();
    s.quarantine_count = static_cast<int>(r.i64());
  }
  uptime_sum_ = r.f64();
  crashes_ = static_cast<std::size_t>(r.u64());
  quarantines_ = static_cast<std::size_t>(r.u64());
  valve_saves_ = static_cast<std::size_t>(r.u64());
}

}  // namespace mlfs
