// Simulation invariant auditor. Opt-in via EngineConfig::audit: after
// every event the engine processes, the auditor re-derives the cluster's
// bookkeeping from first principles — task placement vs server task lists,
// incremental usage sums and the lazy load index vs a full rescan, gang
// execution and queue membership, DAG structure, and the engine's counter
// identities — and throws a structured AuditViolation on the first
// divergence. It is a pure observer: it reads raw state (via friendship)
// and never triggers a load-index refresh or any other mutation, so an
// audited run is bit-identical (deterministic_equal) to an unaudited one.
//
// The fuzz harness (exp/fuzz.hpp, tools/mlfs_fuzz) runs every registered
// scheduler under this auditor on randomized scenarios and shrinks any
// failing case to a minimal replayable RunRequest; see DESIGN.md,
// "Invariants & property testing" for the full invariant catalog.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/expect.hpp"
#include "common/sim_time.hpp"
#include "workload/ids.hpp"

namespace mlfs {

class SimEngine;
struct RunMetrics;

/// Opt-in invariant auditing (EngineConfig::audit).
struct AuditConfig {
  bool enabled = false;
  /// Audit every Nth event (1 = every event). Larger strides trade
  /// detection latency for speed on big CI scenarios; the sweep itself is
  /// O(tasks + servers×gpus + queue) per audited event.
  int stride = 1;
};

/// Structured diagnostic attached to every violation. `invariant` is a
/// stable identifier (e.g. "server-usage", "load-index") that the fuzz
/// shrinker matches on, so a shrunk case is only accepted when it still
/// fails the *same* invariant.
struct AuditReport {
  std::string invariant;
  std::string detail;
  std::string event;            ///< event being processed when detected
  SimTime sim_time = 0.0;
  std::uint64_t event_index = 0;  ///< events processed before detection

  std::string to_string() const;
};

/// Thrown on the first invariant violation. Subclasses ContractViolation
/// so existing catch sites (CLI mains, tests) already handle it; carries
/// the machine-readable report for the fuzz harness.
class AuditViolation : public ContractViolation {
 public:
  explicit AuditViolation(AuditReport report);
  const AuditReport& report() const { return report_; }

 private:
  AuditReport report_;
};

/// The auditor. Owned by the engine when EngineConfig::audit.enabled; the
/// engine calls on_sim_start() once, after_event() after every processed
/// event, and check_metrics() on the assembled RunMetrics before run()
/// returns.
class SimAuditor {
 public:
  explicit SimAuditor(const SimEngine& engine);

  /// Pre-run structural checks: every job's DAG is acyclic, its
  /// topological order covers all nodes, and parent/child adjacency is
  /// mirrored consistently.
  void on_sim_start();

  /// Called after every event; runs the full invariant sweep every
  /// `stride` events. `subject` is the event's job id (used to track
  /// which jobs have arrived).
  void after_event(const char* event, JobId subject);

  /// Full sweep at the current instant (also used directly by tests).
  void check_now(const char* context);

  /// End-of-run accounting identities between the assembled RunMetrics
  /// and the per-job ground truth.
  void check_metrics(const RunMetrics& m) const;

  /// Called by the engine right after inject_job registered a streamed
  /// job: grows the arrival-tracking vector (the new job has not arrived
  /// yet — its Arrival event is pending).
  void on_job_injected();

  /// Re-derives the auditor's observational state from a freshly restored
  /// engine (SimEngine::restore_snapshot): arrival tracking from the
  /// pending event queue, the monotone-counter snapshots from the restored
  /// counters, and the event count (which also keeps the audit-stride
  /// phase identical to the uninterrupted run). The auditor itself is
  /// never serialized — it is a pure observer, so everything it needs is
  /// derivable.
  void resync_after_restore();

  std::uint64_t events_seen() const { return events_seen_; }
  std::uint64_t audits_performed() const { return audits_; }

 private:
  [[noreturn]] void fail(const char* invariant, const std::string& detail) const;

  void check_dag_structure() const;
  void check_servers_and_tasks() const;
  void check_load_index() const;
  void check_queue() const;
  void check_link_model() const;
  void check_jobs() const;
  void check_prediction_service() const;
  void check_accounting();

  const SimEngine& engine_;
  std::vector<char> arrived_;  ///< per job: arrival event processed
  std::string current_event_ = "sim-start";
  std::uint64_t events_seen_ = 0;
  std::uint64_t audits_ = 0;

  // Monotone-counter snapshots from the previous sweep.
  std::size_t last_iterations_run_ = 0;
  std::size_t last_migrations_ = 0;
  std::size_t last_preemptions_ = 0;
  std::size_t last_jobs_completed_ = 0;
  std::size_t last_jobs_failed_ = 0;
  std::size_t last_retry_backoffs_ = 0;
  std::size_t last_server_failures_ = 0;
  std::size_t last_task_kills_ = 0;
  double last_bandwidth_mb_ = 0.0;
  double last_inter_rack_mb_ = 0.0;
  SimTime last_now_ = 0.0;
};

}  // namespace mlfs
