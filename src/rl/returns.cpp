#include "rl/returns.hpp"

#include <cmath>
#include <utility>

#include "common/binio.hpp"
#include "common/expect.hpp"

namespace mlfs::rl {

std::vector<double> discounted_returns(std::span<const double> rewards, double eta) {
  MLFS_EXPECT(eta > 0.0 && eta <= 1.0);
  std::vector<double> returns(rewards.size());
  double acc = 0.0;
  for (std::size_t i = rewards.size(); i-- > 0;) {
    acc = rewards[i] + eta * acc;
    returns[i] = acc;
  }
  return returns;
}

void standardize(std::vector<double>& values) {
  if (values.size() < 2) return;
  double mean = 0.0;
  for (const double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (const double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size());
  const double stddev = std::sqrt(var);
  if (stddev < 1e-9) return;
  for (double& v : values) v = (v - mean) / stddev;
}

void save_episode(io::BinWriter& w, const Episode& episode) {
  w.u64(episode.size());
  for (const Transition& t : episode) {
    w.vec_f64(t.state);
    w.i64(t.action);
    w.f64(t.reward);
  }
}

Episode load_episode(io::BinReader& r) {
  const std::uint64_t count = r.u64();
  Episode episode;
  episode.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Transition t;
    t.state = r.vec_f64();
    t.action = static_cast<int>(r.i64());
    t.reward = r.f64();
    episode.push_back(std::move(t));
  }
  return episode;
}

}  // namespace mlfs::rl
