#include "rl/returns.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace mlfs::rl {

std::vector<double> discounted_returns(std::span<const double> rewards, double eta) {
  MLFS_EXPECT(eta > 0.0 && eta <= 1.0);
  std::vector<double> returns(rewards.size());
  double acc = 0.0;
  for (std::size_t i = rewards.size(); i-- > 0;) {
    acc = rewards[i] + eta * acc;
    returns[i] = acc;
  }
  return returns;
}

void standardize(std::vector<double>& values) {
  if (values.size() < 2) return;
  double mean = 0.0;
  for (const double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (const double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size());
  const double stddev = std::sqrt(var);
  if (stddev < 1e-9) return;
  for (double& v : values) v = (v - mean) / stddev;
}

}  // namespace mlfs::rl
