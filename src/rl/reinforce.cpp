#include "rl/reinforce.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "common/binio.hpp"
#include "nn/loss.hpp"

namespace mlfs::rl {

namespace {

std::vector<std::size_t> layer_sizes(std::size_t in, const std::vector<std::size_t>& hidden,
                                     std::size_t out) {
  std::vector<std::size_t> sizes;
  sizes.push_back(in);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(out);
  return sizes;
}

void apply_mask(std::vector<double>& logits, std::span<const bool> mask) {
  if (mask.empty()) return;
  MLFS_EXPECT(mask.size() == logits.size());
  bool any_valid = false;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    if (mask[i]) {
      any_valid = true;
    } else {
      logits[i] = -std::numeric_limits<double>::infinity();
    }
  }
  MLFS_EXPECT(any_valid);
}

}  // namespace

ReinforceAgent::ReinforceAgent(const ReinforceConfig& config)
    : config_(config),
      rng_(config.seed),
      policy_([&] {
        Rng init = rng_.split();
        return nn::Mlp(layer_sizes(config.state_dim, config.hidden, config.action_dim),
                       nn::Activation::Tanh, init);
      }()),
      value_([&] {
        Rng init = rng_.split();
        return nn::Mlp(layer_sizes(config.state_dim, config.hidden, 1), nn::Activation::Tanh,
                       init);
      }()),
      policy_opt_(policy_.params(), policy_.grads(), config.policy_lr),
      value_opt_(value_.params(), value_.grads(), config.value_lr) {
  MLFS_EXPECT(config.state_dim > 0);
  MLFS_EXPECT(config.action_dim > 0);
  policy_opt_.set_max_grad_norm(config.max_grad_norm);
  value_opt_.set_max_grad_norm(config.max_grad_norm);
}

int ReinforceAgent::sample_or_argmax(std::span<const double> state, std::span<const bool> mask,
                                     bool greedy) {
  MLFS_EXPECT(state.size() == config_.state_dim);
  const nn::Matrix input = nn::Matrix::row({state.begin(), state.end()});
  const nn::Matrix logits_m = policy_.forward(input);
  std::vector<double> logits = logits_m.raw();
  apply_mask(logits, mask);

  if (greedy) {
    return static_cast<int>(std::max_element(logits.begin(), logits.end()) - logits.begin());
  }
  // Softmax sample over the (masked) logits.
  const double maxv = *std::max_element(logits.begin(), logits.end());
  std::vector<double> probs(logits.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    probs[i] = std::isinf(logits[i]) ? 0.0 : std::exp(logits[i] - maxv);
    sum += probs[i];
  }
  MLFS_EXPECT(sum > 0.0);
  double r = rng_.uniform() * sum;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    r -= probs[i];
    if (r < 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(probs.size() - 1);
}

int ReinforceAgent::act(std::span<const double> state, std::span<const bool> mask) {
  return sample_or_argmax(state, mask, /*greedy=*/false);
}

int ReinforceAgent::act_greedy(std::span<const double> state, std::span<const bool> mask) {
  return sample_or_argmax(state, mask, /*greedy=*/true);
}

std::vector<double> ReinforceAgent::action_probabilities(std::span<const double> state) {
  MLFS_EXPECT(state.size() == config_.state_dim);
  const nn::Matrix input = nn::Matrix::row({state.begin(), state.end()});
  return nn::softmax(policy_.forward(input)).raw();
}

nn::Matrix ReinforceAgent::states_to_matrix(std::span<const Episode> episodes) const {
  std::size_t total = 0;
  for (const auto& ep : episodes) total += ep.size();
  nn::Matrix states(total, config_.state_dim);
  std::size_t row = 0;
  for (const auto& ep : episodes) {
    for (const auto& tr : ep) {
      MLFS_EXPECT(tr.state.size() == config_.state_dim);
      for (std::size_t j = 0; j < config_.state_dim; ++j) states.at(row, j) = tr.state[j];
      ++row;
    }
  }
  return states;
}

UpdateStats ReinforceAgent::update(std::span<const Episode> episodes) {
  UpdateStats stats;
  std::size_t total = 0;
  for (const auto& ep : episodes) total += ep.size();
  if (total == 0) return stats;

  const nn::Matrix states = states_to_matrix(episodes);
  std::vector<int> actions;
  std::vector<double> returns;
  actions.reserve(total);
  returns.reserve(total);
  for (const auto& ep : episodes) {
    std::vector<double> rewards;
    rewards.reserve(ep.size());
    for (const auto& tr : ep) {
      actions.push_back(tr.action);
      rewards.push_back(tr.reward);
    }
    const auto g = discounted_returns(rewards, config_.eta);
    returns.insert(returns.end(), g.begin(), g.end());
  }
  stats.mean_return = 0.0;
  for (const double g : returns) stats.mean_return += g;
  stats.mean_return /= static_cast<double>(returns.size());

  // Value baseline: fit V(s) to the returns, use advantages A = G - V(s).
  value_.zero_grads();
  const nn::Matrix values = value_.forward(states);
  const auto value_loss = nn::mse(values, returns);
  value_.backward(value_loss.grad_logits);
  value_opt_.step();
  stats.value_loss = value_loss.loss;

  std::vector<double> advantages(total);
  for (std::size_t i = 0; i < total; ++i) advantages[i] = returns[i] - values.at(i, 0);
  standardize(advantages);

  // Policy step: policy-gradient surrogate minus an entropy bonus.
  policy_.zero_grads();
  const nn::Matrix logits = policy_.forward(states);
  auto pg = nn::policy_gradient(logits, actions, advantages);
  stats.mean_entropy = nn::mean_entropy(logits);
  if (config_.entropy_bonus > 0.0) {
    // d(-H)/dlogits for softmax: p * (log p + H). Added scaled by bonus.
    const nn::Matrix probs = nn::softmax(logits);
    for (std::size_t i = 0; i < logits.rows(); ++i) {
      double h = 0.0;
      for (std::size_t j = 0; j < logits.cols(); ++j) {
        const double p = probs.at(i, j);
        if (p > 1e-12) h -= p * std::log(p);
      }
      for (std::size_t j = 0; j < logits.cols(); ++j) {
        const double p = probs.at(i, j);
        const double logp = p > 1e-12 ? std::log(p) : -27.6;  // log(1e-12)
        pg.grad_logits.at(i, j) +=
            config_.entropy_bonus * p * (logp + h) / static_cast<double>(logits.rows());
      }
    }
  }
  policy_.backward(pg.grad_logits);
  policy_opt_.step();
  stats.policy_loss = pg.loss;
  return stats;
}

double ReinforceAgent::imitation_step(const nn::Matrix& states, std::span<const int> actions) {
  MLFS_EXPECT(states.rows() == actions.size());
  MLFS_EXPECT(states.cols() == config_.state_dim);
  policy_.zero_grads();
  const nn::Matrix logits = policy_.forward(states);
  const auto ce = nn::cross_entropy(logits, actions);
  policy_.backward(ce.grad_logits);
  policy_opt_.step();
  return ce.loss;
}

void ReinforceAgent::save(std::ostream& os) const {
  policy_.save(os);
  value_.save(os);
}

void ReinforceAgent::load(std::istream& is) {
  policy_.load(is);
  value_.load(is);
}

void ReinforceAgent::save_state(std::ostream& os) const {
  io::BinWriter w(os);
  for (const std::uint64_t word : rng_.state()) w.u64(word);
  policy_.save_state(w);
  value_.save_state(w);
  policy_opt_.save_state(w);
  value_opt_.save_state(w);
}

void ReinforceAgent::restore_state(std::istream& is) {
  io::BinReader r(is);
  std::array<std::uint64_t, 4> state;
  for (std::uint64_t& word : state) word = r.u64();
  rng_.set_state(state);
  policy_.restore_state(r);
  value_.restore_state(r);
  policy_opt_.restore_state(r);
  value_opt_.restore_state(r);
}

}  // namespace mlfs::rl
