// REINFORCE with a learned value baseline — the policy-gradient method the
// paper cites ([51], Sutton et al.) as the training algorithm of the DNN
// agent in MLF-RL. The agent owns a softmax policy network and a value
// network over the same state features.
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <vector>

#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "rl/agent.hpp"
#include "rl/returns.hpp"

namespace mlfs::rl {

struct ReinforceConfig {
  std::size_t state_dim = 0;
  std::size_t action_dim = 0;
  std::vector<std::size_t> hidden = {64, 64};
  double policy_lr = 1e-3;
  double value_lr = 1e-3;
  double eta = 0.95;           ///< future-reward discount (paper default η=0.95)
  double entropy_bonus = 0.01; ///< exploration regularizer
  double max_grad_norm = 5.0;
  std::uint64_t seed = 1;
};

/// Softmax-policy REINFORCE agent with a value-function baseline.
class ReinforceAgent : public PolicyAgent {
 public:
  explicit ReinforceAgent(const ReinforceConfig& config);

  /// Samples an action from pi(.|state). `mask`, when given, marks valid
  /// actions: invalid logits are floored to -inf before sampling. At least
  /// one action must be valid.
  int act(std::span<const double> state, std::span<const bool> mask = {}) override;

  /// Greedy argmax action (post-training inference).
  int act_greedy(std::span<const double> state, std::span<const bool> mask = {}) override;

  /// Action probabilities for a state (diagnostics / tests).
  std::vector<double> action_probabilities(std::span<const double> state) override;

  /// One policy-gradient update from complete episodes.
  UpdateStats update(std::span<const Episode> episodes) override;

  /// Supervised pre-training on (state, expert action) pairs; returns the
  /// mean cross-entropy over the pass. Used for behaviour cloning from
  /// MLF-H decisions before the RL phase (paper §3.4: "uses the data
  /// [from MLF-H] to train MLF-RL").
  double imitation_step(const nn::Matrix& states, std::span<const int> actions) override;

  const ReinforceConfig& config() const { return config_; }

  void save(std::ostream& os) const override;
  void load(std::istream& is) override;

  void save_state(std::ostream& os) const override;
  void restore_state(std::istream& is) override;

 private:
  nn::Matrix states_to_matrix(std::span<const Episode> episodes) const;
  int sample_or_argmax(std::span<const double> state, std::span<const bool> mask, bool greedy);

  ReinforceConfig config_;
  Rng rng_;
  nn::Mlp policy_;
  nn::Mlp value_;
  nn::Adam policy_opt_;
  nn::Adam value_opt_;
};

}  // namespace mlfs::rl
