// Common interface of the trainable policy agents (REINFORCE, A2C) so the
// MLF-RL facade can swap training algorithms via configuration.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "nn/matrix.hpp"
#include "rl/returns.hpp"

namespace mlfs::rl {

/// Statistics from one update() call, for training diagnostics.
struct UpdateStats {
  double policy_loss = 0.0;
  double value_loss = 0.0;
  double mean_return = 0.0;
  double mean_entropy = 0.0;
};

class PolicyAgent {
 public:
  virtual ~PolicyAgent() = default;

  /// Samples an action from pi(.|state). `mask`, when given, marks valid
  /// actions; at least one must be valid.
  virtual int act(std::span<const double> state, std::span<const bool> mask = {}) = 0;

  /// Greedy argmax action (post-training inference).
  virtual int act_greedy(std::span<const double> state, std::span<const bool> mask = {}) = 0;

  virtual std::vector<double> action_probabilities(std::span<const double> state) = 0;

  /// One training update from trajectories.
  virtual UpdateStats update(std::span<const Episode> episodes) = 0;

  /// Supervised behaviour-cloning step; returns the batch cross-entropy.
  virtual double imitation_step(const nn::Matrix& states, std::span<const int> actions) = 0;

  virtual void save(std::ostream& os) const = 0;
  virtual void load(std::istream& is) = 0;

  /// Full dynamic state for bit-identical engine resume (snapshot support):
  /// network parameters, optimizer moments, AND the action-sampling RNG —
  /// unlike save()/load(), which checkpoint parameters only.
  virtual void save_state(std::ostream& os) const = 0;
  virtual void restore_state(std::istream& is) = 0;
};

}  // namespace mlfs::rl
