#include "rl/imitation.hpp"

#include <algorithm>
#include <numeric>

#include "common/binio.hpp"

namespace mlfs::rl {

void ImitationDataset::add(std::span<const double> state, int action) {
  MLFS_EXPECT(state.size() == state_dim_);
  states_.insert(states_.end(), state.begin(), state.end());
  actions_.push_back(action);
}

void ImitationDataset::truncate_to_recent(std::size_t max_size) {
  if (actions_.size() <= max_size) return;
  const std::size_t drop = actions_.size() - max_size;
  actions_.erase(actions_.begin(), actions_.begin() + static_cast<std::ptrdiff_t>(drop));
  states_.erase(states_.begin(), states_.begin() + static_cast<std::ptrdiff_t>(drop * state_dim_));
}

double ImitationDataset::train(PolicyAgent& agent, std::size_t epochs, std::size_t batch_size,
                               Rng& rng) const {
  MLFS_EXPECT(!empty());
  MLFS_EXPECT(batch_size > 0);
  std::vector<std::size_t> order(actions_.size());
  std::iota(order.begin(), order.end(), 0);

  double last_epoch_loss = 0.0;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size(); start += batch_size) {
      const std::size_t n = std::min(batch_size, order.size() - start);
      nn::Matrix batch_states(n, state_dim_);
      std::vector<int> batch_actions(n);
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t idx = order[start + i];
        for (std::size_t j = 0; j < state_dim_; ++j) {
          batch_states.at(i, j) = states_[idx * state_dim_ + j];
        }
        batch_actions[i] = actions_[idx];
      }
      epoch_loss += agent.imitation_step(batch_states, batch_actions);
      ++batches;
    }
    last_epoch_loss = batches > 0 ? epoch_loss / static_cast<double>(batches) : 0.0;
  }
  return last_epoch_loss;
}

double ImitationDataset::evaluate_accuracy(PolicyAgent& agent) const {
  if (empty()) return 0.0;
  std::size_t correct = 0;
  std::vector<double> state(state_dim_);
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    std::copy_n(states_.begin() + static_cast<std::ptrdiff_t>(i * state_dim_), state_dim_,
                state.begin());
    if (agent.act_greedy(state) == actions_[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(actions_.size());
}

void ImitationDataset::save_state(io::BinWriter& w) const {
  w.vec_f64(states_);
  w.vec(actions_, [&w](int a) { w.i64(a); });
}

void ImitationDataset::restore_state(io::BinReader& r) {
  states_ = r.vec_f64();
  actions_ = r.vec<int>([&r] { return static_cast<int>(r.i64()); });
  MLFS_EXPECT(states_.size() == actions_.size() * state_dim_);
}

}  // namespace mlfs::rl
