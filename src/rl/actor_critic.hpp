// Advantage actor-critic (A2C) — an alternative trainer to REINFORCE for
// the MLF-RL policy. Instead of waiting for complete episodes and using
// full discounted returns, A2C bootstraps from the value network:
//
//   advantage(s_t) = r_t + eta * V(s_{t+1}) - V(s_t)
//
// which cuts gradient variance on long scheduling horizons at the price of
// bootstrap bias. The paper trains its agent with the policy-gradient
// method of [51]; A2C is the standard low-variance refinement and is
// offered as a config switch (see core::RlParams::algorithm).
#pragma once

#include <iosfwd>
#include <span>

#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "rl/agent.hpp"
#include "rl/returns.hpp"

namespace mlfs::rl {

struct ActorCriticConfig {
  std::size_t state_dim = 0;
  std::size_t action_dim = 0;
  std::vector<std::size_t> hidden = {64, 64};
  double policy_lr = 1e-3;
  double value_lr = 1e-3;
  double eta = 0.95;            ///< bootstrap discount
  double entropy_bonus = 0.01;
  double max_grad_norm = 5.0;
  std::uint64_t seed = 1;
};

class ActorCriticAgent : public PolicyAgent {
 public:
  explicit ActorCriticAgent(const ActorCriticConfig& config);

  /// Samples an action (same masking semantics as ReinforceAgent::act).
  int act(std::span<const double> state, std::span<const bool> mask = {}) override;
  int act_greedy(std::span<const double> state, std::span<const bool> mask = {}) override;
  std::vector<double> action_probabilities(std::span<const double> state) override;

  /// One A2C update from (possibly truncated) trajectories. The last
  /// transition of each episode is treated as terminal (V(s_T+1) = 0);
  /// pass trajectories truncated at scheduling-round boundaries freely —
  /// bootstrapping makes them usable without waiting for job completion.
  UpdateStats update(std::span<const Episode> episodes) override;

  /// Supervised warm-start (shared imitation path with REINFORCE).
  double imitation_step(const nn::Matrix& states, std::span<const int> actions) override;

  /// Current value estimate V(s) (diagnostics / tests).
  double value_of(std::span<const double> state);

  const ActorCriticConfig& config() const { return config_; }

  void save(std::ostream& os) const override;
  void load(std::istream& is) override;

  void save_state(std::ostream& os) const override;
  void restore_state(std::istream& is) override;

 private:
  int sample_or_argmax(std::span<const double> state, std::span<const bool> mask, bool greedy);

  ActorCriticConfig config_;
  Rng rng_;
  nn::Mlp policy_;
  nn::Mlp value_;
  nn::Adam policy_opt_;
  nn::Adam value_opt_;
};

}  // namespace mlfs::rl
