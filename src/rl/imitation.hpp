// Behaviour-cloning dataset + trainer. MLFS runs MLF-H first and records
// (state, chosen action) pairs; this module fits the policy network on that
// log before the REINFORCE phase takes over (paper §3.4).
#pragma once

#include <span>
#include <vector>

#include "rl/agent.hpp"
#include "rl/reinforce.hpp"

namespace mlfs::rl {

/// Grows incrementally while the heuristic is driving, then trains an agent.
class ImitationDataset {
 public:
  explicit ImitationDataset(std::size_t state_dim) : state_dim_(state_dim) {}

  void add(std::span<const double> state, int action);

  std::size_t size() const { return actions_.size(); }
  bool empty() const { return actions_.empty(); }
  std::size_t state_dim() const { return state_dim_; }

  /// Keeps only the most recent `max_size` samples (bounded memory while
  /// the heuristic phase runs for a long warm-up).
  void truncate_to_recent(std::size_t max_size);

  /// Mini-batched cross-entropy training for `epochs` passes; returns the
  /// final-epoch mean loss. Shuffles with `rng`.
  double train(PolicyAgent& agent, std::size_t epochs, std::size_t batch_size, Rng& rng) const;

  /// Fraction of samples where the agent's greedy action matches the expert.
  double evaluate_accuracy(PolicyAgent& agent) const;

  /// Bit-exact dataset round-trip for engine snapshots.
  void save_state(io::BinWriter& w) const;
  void restore_state(io::BinReader& r);

 private:
  std::size_t state_dim_;
  std::vector<double> states_;  // flattened rows of state_dim_
  std::vector<int> actions_;
};

}  // namespace mlfs::rl
