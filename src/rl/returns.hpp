// Episode containers and return computation shared by REINFORCE and the
// baseline RL scheduler.
#pragma once

#include <span>
#include <vector>

namespace mlfs::io {
class BinWriter;
class BinReader;
}  // namespace mlfs::io

namespace mlfs::rl {

/// One (state, action, reward) step. States are flat feature vectors of a
/// fixed dimension decided by the featurizer.
struct Transition {
  std::vector<double> state;
  int action = 0;
  double reward = 0.0;
};

/// One rollout (an episode or a truncated segment).
using Episode = std::vector<Transition>;

/// Discounted return G_t = sum_k eta^k r_{t+k} for each step.
/// eta in (0, 1]; matches the paper's future-reward discount η.
std::vector<double> discounted_returns(std::span<const double> rewards, double eta);

/// In-place standardization to zero mean / unit variance (no-op when the
/// variance is ~0). Standard advantage normalization for policy gradients.
void standardize(std::vector<double>& values);

/// Bit-exact episode (de)serialization for engine snapshots.
void save_episode(io::BinWriter& w, const Episode& episode);
Episode load_episode(io::BinReader& r);

}  // namespace mlfs::rl
