#include "predict/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/expect.hpp"

namespace mlfs {

namespace {
double safe_eval(const std::function<double(const std::vector<double>&)>& f,
                 const std::vector<double>& x) {
  const double v = f(x);
  return std::isfinite(v) ? v : std::numeric_limits<double>::infinity();
}
}  // namespace

NelderMeadResult nelder_mead(const std::function<double(const std::vector<double>&)>& f,
                             std::vector<double> x0, const NelderMeadOptions& options) {
  const std::size_t n = x0.size();
  MLFS_EXPECT(n >= 1);

  // Build initial simplex: x0 plus one perturbed vertex per dimension.
  std::vector<std::vector<double>> simplex;
  simplex.reserve(n + 1);
  simplex.push_back(x0);
  for (std::size_t i = 0; i < n; ++i) {
    auto v = x0;
    const double step = v[i] != 0.0 ? options.initial_step * std::abs(v[i]) : options.initial_step;
    v[i] += step;
    simplex.push_back(std::move(v));
  }
  std::vector<double> values(n + 1);
  for (std::size_t i = 0; i <= n; ++i) values[i] = safe_eval(f, simplex[i]);

  constexpr double kAlpha = 1.0;  // reflection
  constexpr double kGamma = 2.0;  // expansion
  constexpr double kRho = 0.5;    // contraction
  constexpr double kSigma = 0.5;  // shrink

  std::size_t iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    // Order vertices by objective value.
    std::vector<std::size_t> order(n + 1);
    for (std::size_t i = 0; i <= n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&values](std::size_t a, std::size_t b) { return values[a] < values[b]; });
    const std::size_t best = order.front();
    const std::size_t worst = order.back();
    const std::size_t second_worst = order[n - 1];

    if (std::isfinite(values[worst]) &&
        values[worst] - values[best] < options.tolerance) {
      // f-spread alone is not enough: a simplex straddling a minimum
      // symmetrically has equal values while still being wide. Require
      // the simplex itself to have collapsed too.
      double diameter_sq = 0.0;
      for (std::size_t i = 0; i <= n; ++i) {
        for (std::size_t d = 0; d < n; ++d) {
          const double delta = simplex[i][d] - simplex[best][d];
          diameter_sq = std::max(diameter_sq, delta * delta);
        }
      }
      if (diameter_sq < std::max(options.tolerance, 1e-14)) break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t d = 0; d < n; ++d) centroid[d] += simplex[i][d];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto combine = [&centroid, &simplex, worst, n](double coeff) {
      std::vector<double> out(n);
      for (std::size_t d = 0; d < n; ++d) {
        out[d] = centroid[d] + coeff * (centroid[d] - simplex[worst][d]);
      }
      return out;
    };

    const auto reflected = combine(kAlpha);
    const double f_reflected = safe_eval(f, reflected);
    if (f_reflected < values[best]) {
      const auto expanded = combine(kAlpha * kGamma);
      const double f_expanded = safe_eval(f, expanded);
      if (f_expanded < f_reflected) {
        simplex[worst] = expanded;
        values[worst] = f_expanded;
      } else {
        simplex[worst] = reflected;
        values[worst] = f_reflected;
      }
      continue;
    }
    if (f_reflected < values[second_worst]) {
      simplex[worst] = reflected;
      values[worst] = f_reflected;
      continue;
    }
    const auto contracted = combine(-kRho);
    const double f_contracted = safe_eval(f, contracted);
    if (f_contracted < values[worst]) {
      simplex[worst] = contracted;
      values[worst] = f_contracted;
      continue;
    }
    // Shrink toward the best vertex.
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == best) continue;
      for (std::size_t d = 0; d < n; ++d) {
        simplex[i][d] = simplex[best][d] + kSigma * (simplex[i][d] - simplex[best][d]);
      }
      values[i] = safe_eval(f, simplex[i]);
    }
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    if (values[i] < values[best]) best = i;
  }
  return {simplex[best], values[best], iter};
}

}  // namespace mlfs
