// Weighted probabilistic learning-curve extrapolation in the style of
// Domhan et al. [17] — the accuracy-prediction substrate MLFS assumes
// (§3.1: "the accuracy of a job can be predicted ... around 90% accuracy";
// §3.5: OptStop uses the prediction + its confidence).
//
// Mechanism: fit several parametric basis curves to the observed
// (iteration, accuracy) points by least squares (Nelder-Mead), weight each
// basis by how well it explains the observations, and report the weighted
// prediction plus a confidence derived from inter-basis agreement and fit
// residuals.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace mlfs {

struct CurvePrediction {
  double accuracy = 0.0;    ///< predicted accuracy at the target iteration
  double confidence = 0.0;  ///< in [0, 1]; higher = tighter basis agreement
};

/// The predictor's parametric substrate, exposed so the incremental
/// PredictionService (predict/service.hpp) can fit the identical basis
/// family link-by-link instead of from scratch. predict_at below remains
/// the one-shot reference implementation over the same pieces.
namespace curve_detail {

/// Maps (params, x) -> accuracy. Params are unconstrained reals; the
/// functions clamp/transform internally so Nelder-Mead can roam.
struct Basis {
  const char* name;
  double (*eval)(const std::vector<double>&, double);
  std::vector<double> init;  ///< cold-start simplex seed
};

/// The fixed basis family (mmf / pow3 / ilog).
const std::vector<Basis>& bases();

/// Mean squared error of `params` against `observed` where observed[i] is
/// the value at x = i + 1.
double fit_residual(const Basis& basis, const std::vector<double>& params,
                    std::span<const double> observed);

/// One fitted basis, reduced to what the weighting step consumes.
struct BasisFit {
  double rmse = 0.0;        ///< sqrt(max(objective value, 0))
  double prediction = 0.0;  ///< basis value at the target, clamped to [0, 1]
};

/// The residual-weighted combination + confidence step shared by
/// LearningCurvePredictor::predict_at and the PredictionService. Bitwise
/// identical to the historical inline computation.
CurvePrediction combine_fits(const std::vector<BasisFit>& fits, double residual_scale);

}  // namespace curve_detail

struct LearningCurveConfig {
  std::size_t min_observations = 3;  ///< below this, predict_at falls back
  double residual_scale = 0.02;      ///< basis-weighting bandwidth (accuracy units)
};

class LearningCurvePredictor {
 public:
  explicit LearningCurvePredictor(const LearningCurveConfig& config = {});

  /// `observed[i]` = accuracy after iteration i+1. Predicts the accuracy
  /// at `target_iteration` (1-based, may be <= observed.size() for
  /// interpolation checks). With fewer than min_observations points, the
  /// prediction is the last observation with zero confidence.
  CurvePrediction predict_at(std::span<const double> observed, int target_iteration) const;

  /// Names of the basis curves (diagnostics/tests).
  static std::vector<std::string> basis_names();

 private:
  LearningCurveConfig config_;
};

}  // namespace mlfs
