// Weighted probabilistic learning-curve extrapolation in the style of
// Domhan et al. [17] — the accuracy-prediction substrate MLFS assumes
// (§3.1: "the accuracy of a job can be predicted ... around 90% accuracy";
// §3.5: OptStop uses the prediction + its confidence).
//
// Mechanism: fit several parametric basis curves to the observed
// (iteration, accuracy) points by least squares (Nelder-Mead), weight each
// basis by how well it explains the observations, and report the weighted
// prediction plus a confidence derived from inter-basis agreement and fit
// residuals.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace mlfs {

struct CurvePrediction {
  double accuracy = 0.0;    ///< predicted accuracy at the target iteration
  double confidence = 0.0;  ///< in [0, 1]; higher = tighter basis agreement
};

struct LearningCurveConfig {
  std::size_t min_observations = 3;  ///< below this, predict_at falls back
  double residual_scale = 0.02;      ///< basis-weighting bandwidth (accuracy units)
};

class LearningCurvePredictor {
 public:
  explicit LearningCurvePredictor(const LearningCurveConfig& config = {});

  /// `observed[i]` = accuracy after iteration i+1. Predicts the accuracy
  /// at `target_iteration` (1-based, may be <= observed.size() for
  /// interpolation checks). With fewer than min_observations points, the
  /// prediction is the last observation with zero confidence.
  CurvePrediction predict_at(std::span<const double> observed, int target_iteration) const;

  /// Names of the basis curves (diagnostics/tests).
  static std::vector<std::string> basis_names();

 private:
  LearningCurveConfig config_;
};

}  // namespace mlfs
