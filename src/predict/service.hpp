// Unified prediction subsystem: one engine-owned service fronting both the
// Optimus-style runtime predictor and the learning-curve extrapolator, with
// the curve fits made *incremental* (the substrate MLFS §3.5 OptStop
// assumes — SLAQ refits curves as new points arrive instead of from
// scratch).
//
// ## Chain-canonical fit semantics
//
// The fit for (job, done = k) is defined as a warm-started *chain* over the
// job's canonical check points L = { k : k % check_interval == 0 && k >= 3 }
// (exactly the points SimEngine::should_stop evaluates OptStop at):
//
//  * link 1: cold Nelder-Mead from each basis' init simplex;
//  * link j > 1, per basis: first a settled-fit probe — the previous
//    link's params are re-evaluated on the new prefix (one objective
//    evaluation); if the residual has not degraded past settle_factor ×
//    previous value (+ settle_epsilon) the params carry forward without
//    refitting. Otherwise a warm Nelder-Mead seeded from the previous
//    link's fitted params with initial_step derived from the previous
//    parameter drift; if the warm objective regresses past
//    regression_factor × previous value the cold fit is also computed and
//    wins if better (a "restart", bounded by restart_budget — once the
//    budget is spent the basis is refit cold directly, with no settle
//    probe);
//  * basis freezing: a non-best basis whose combination weight stays below
//    freeze_weight_threshold for freeze_streak consecutive links (after
//    freeze_min_links) stops being refit; its last (params, rmse) keep
//    participating in the weighted prediction.
//
// The chain is a pure function of the observation prefix and the config, so
// it is computed identically by two modes:
//
//  * enabled (the service): per-job incremental state — one new link per
//    check, memoized predictions for repeated (job, done, target) queries,
//    stored links reused verbatim on rollback re-entry;
//  * disabled ("legacy cold-fit path"): stateless — the observation vector
//    is rebuilt (O(done)) and every chain link recomputed from scratch at
//    every check.
//
// Both therefore produce byte-identical predictions, decisions, and event
// streams; the service differs only in cost (bench_largescale gates the
// Nelder-Mead evaluation reduction and wall-clock share). Observation
// coarsening (opt-in) is the one *approximating* mode: it subsamples the
// tail of long observation prefixes logarithmically and changes results,
// so it participates in the engine config fingerprint and is fuzzed under
// equivalence-of-invariants, not hash equality.
//
// Observation buffers never shrink: entry i is the ground-truth
// LossCurve::accuracy_at(i + 1), a pure function of the index, so a fault
// rollback simply re-reads the prefix. Per-job state is evicted when the
// job reaches a terminal state.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/binio.hpp"
#include "predict/learning_curve.hpp"
#include "predict/runtime_predictor.hpp"
#include "workload/job.hpp"

namespace mlfs {

struct PredictConfig {
  /// Incremental service on (default). Off = the legacy stateless
  /// cold-fit path: identical results, no caching, full chain recompute
  /// per check.
  bool enabled = true;

  // Warm-start policy: initial simplex step for link j seeded from the
  // previous link's params is clamp(warm_step_scale × drift_{j-1},
  // warm_step_floor, 0.25); the first warm link (no drift yet) uses the
  // cold default step 0.25.
  double warm_step_scale = 4.0;
  double warm_step_floor = 0.02;

  /// Cold-restart budget per (job, basis): a warm fit whose objective
  /// regresses past regression_factor × previous value (+ epsilon) also
  /// runs the cold fit and takes the better result, consuming one restart;
  /// with the budget spent the basis is simply refit cold each link.
  int restart_budget = 4;
  double regression_factor = 1.5;
  double regression_epsilon = 1e-10;

  /// Settled-fit carry-forward: before warm-fitting link j the previous
  /// link's params are re-evaluated on the new prefix; a residual within
  /// settle_factor × previous value (+ settle_epsilon) means the fit still
  /// explains the data and carries forward for one objective evaluation
  /// instead of a full Nelder-Mead run. The epsilon floor lets
  /// numerically-exact fits (residual ~ 0) settle despite large relative
  /// wobble.
  double settle_factor = 1.5;
  double settle_epsilon = 1e-12;

  // Basis freezing (see file comment).
  double freeze_weight_threshold = 0.005;
  int freeze_streak = 2;
  int freeze_min_links = 3;

  /// Opt-in observation coarsening for very long jobs: the first
  /// coarsen_head observations are kept exactly; the tail keeps
  /// ~coarsen_per_octave log-spaced points per octave plus always the
  /// last observation. Changes results (approximation mode).
  bool coarsen = false;
  int coarsen_head = 32;
  int coarsen_per_octave = 8;

  /// Throws ContractViolation on invalid values.
  void validate() const;
};

/// Run-long counters surfaced through RunMetrics. All except fit_wall_ms
/// are deterministic per config (and participate in deterministic_equal);
/// fit_wall_ms is a real clock.
struct PredictStats {
  std::size_t fits_cold = 0;          ///< Nelder-Mead runs from the init simplex
  std::size_t fits_warm = 0;          ///< Nelder-Mead runs seeded from a previous link
  std::size_t cache_hits = 0;         ///< memo / stored-link reuse (no fitting at all)
  std::size_t nm_objective_evals = 0; ///< objective evaluations across all fits
  double fit_wall_ms = 0.0;           ///< wall-clock spent fitting + combining
};

class PredictionService {
 public:
  PredictionService(const PredictConfig& config, int check_interval,
                    const LearningCurveConfig& curve_config = {});

  /// OptStop substrate: prediction at job.spec().max_iterations given the
  /// job's completed iterations, under the chain-canonical semantics
  /// above. Below the first canonical link this falls back to the last
  /// observation with zero confidence (mirroring predict_at).
  CurvePrediction predict_at_max(const Job& job);

  /// Appends newly available observations for an OptStop job (no-op when
  /// the service is disabled or the job's active policy is not OptStop —
  /// a later policy downgrade backfills lazily at query time).
  void on_iteration_complete(const Job& job);

  /// Terminal-state hooks: completion feeds the runtime predictor's
  /// signature history and evicts the curve-fit state; failure evicts
  /// only (a truncated run would poison the duration estimates).
  void on_job_complete(const Job& job);
  void on_job_failed(const Job& job);

  // Runtime-prediction passthroughs (Optimus' ranking quantity).
  double predict_remaining_seconds(const Job& job) const {
    return runtime_.predict_remaining_seconds(job);
  }
  double predict_execution_seconds(const Job& job) const {
    return runtime_.predict_execution_seconds(job);
  }

  // Ground-truth curve reads for quality-driven schedulers (SLAQ /
  // HyperSched) — routed through the service so every consumer shares one
  // substrate; these are exact (the simulator's curve is the oracle the
  // paper's §3.1 prediction accuracy stands in for).
  double loss_at(const Job& job, int iteration) const {
    return job.curve().loss_at(iteration);
  }
  double accuracy_at(const Job& job, int iteration) const {
    return job.curve().accuracy_at(iteration);
  }

  RuntimePredictor& runtime() { return runtime_; }
  const RuntimePredictor& runtime() const { return runtime_; }

  const PredictConfig& config() const { return config_; }
  const PredictStats& stats() const { return stats_; }
  int check_interval() const { return check_interval_; }
  /// Smallest canonical chain link (first OptStop check point).
  int first_link() const;
  /// Largest canonical link <= done, or 0 when none exists yet.
  int quantize(int done) const;

  // ---- introspection (audit / snapshot / tests) ----

  /// One basis' state at one chain link.
  struct BasisFitRec {
    std::vector<double> params;
    double rmse = 0.0;
    double value = 0.0;   ///< raw objective (MSE) — the regression baseline
    double drift = -1.0;  ///< max |param delta| vs previous link; < 0 = undefined
    bool frozen = false;
    int low_streak = 0;   ///< consecutive links below the freeze weight
    int restarts = 0;     ///< cold restarts consumed so far
  };
  struct LinkRecord {
    int done = 0;  ///< canonical check point this link was fitted at
    std::vector<BasisFitRec> basis;
  };
  struct JobState {
    /// observed[i] = ground-truth accuracy after iteration i + 1. Grows
    /// monotonically; never truncated on rollback.
    std::vector<double> observed;
    /// All computed chain links, ascending by done (rollback re-entry is
    /// a lookup, and the chain resumes from the last element).
    std::vector<LinkRecord> links;
    // Last combined prediction, keyed by (link, target).
    bool memo_valid = false;
    int memo_done = 0;
    int memo_target = 0;
    CurvePrediction memo;
  };
  /// Live per-job curve-fit state (empty while disabled — the audit's
  /// zero-when-disabled contract).
  const std::map<JobId, JobState>& cached_states() const { return states_; }

  /// Snapshot hooks: curve-fit caches + counters. The runtime predictor
  /// serializes separately (SimEngine's stable "predictor" section).
  void save_state(io::BinWriter& w) const;
  void restore_state(io::BinReader& r);

 private:
  /// Ensures `st` holds ground-truth observations through iteration
  /// `done` (incremental append; pure function of the index).
  void backfill(JobState& st, const Job& job, int done) const;
  /// Ensures the chain is computed through canonical link `link_done` and
  /// returns its record. Counts a cache hit when the link already exists.
  const LinkRecord* advance_links(JobState& st, int link_done);
  /// Computes one new chain link at `done` from the chain tail.
  void fit_link(JobState& st, int done);
  CurvePrediction prediction_from(const LinkRecord& rec, int target) const;

  PredictConfig config_;
  int check_interval_;
  LearningCurveConfig curve_config_;
  RuntimePredictor runtime_;
  std::map<JobId, JobState> states_;
  PredictStats stats_;
};

}  // namespace mlfs
