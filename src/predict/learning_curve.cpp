#include "predict/learning_curve.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/expect.hpp"
#include "predict/nelder_mead.hpp"

namespace mlfs {

namespace curve_detail {

namespace {

/// MMF/hyperbolic saturation: a * x / (x + k). Matches the simulator's
/// ground-truth family (recoverable exactly), k > 0 via exp transform.
double basis_mmf(const std::vector<double>& p, double x) {
  const double a = p[0];
  const double k = std::exp(p[1]);
  return a * x / (x + k);
}

/// pow3: c - a * x^(-alpha), alpha > 0.
double basis_pow3(const std::vector<double>& p, double x) {
  const double c = p[0];
  const double a = p[1];
  const double alpha = std::exp(p[2]);
  return c - a * std::pow(x, -alpha);
}

/// ilog: c - a / ln(x + e).
double basis_ilog(const std::vector<double>& p, double x) {
  const double c = p[0];
  const double a = p[1];
  return c - a / std::log(x + std::numbers::e);
}

}  // namespace

const std::vector<Basis>& bases() {
  static const std::vector<Basis> kBases = {
      {"mmf", basis_mmf, {0.9, std::log(8.0)}},
      {"pow3", basis_pow3, {0.9, 0.9, std::log(0.7)}},
      {"ilog", basis_ilog, {1.0, 1.0}},
  };
  return kBases;
}

double fit_residual(const Basis& basis, const std::vector<double>& params,
                    std::span<const double> observed) {
  double sq = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double x = static_cast<double>(i + 1);
    const double err = basis.eval(params, x) - observed[i];
    sq += err * err;
  }
  return sq / static_cast<double>(observed.size());
}

CurvePrediction combine_fits(const std::vector<BasisFit>& fits, double residual_scale) {
  // Weight each basis by its goodness of fit (Gaussian kernel on RMSE).
  // The bandwidth adapts to the best fit: a basis that explains the data
  // an order of magnitude worse than the best contributes ~nothing, so a
  // family member that fits exactly dominates the extrapolation.
  double best_rmse_for_scale = fits.front().rmse;
  for (const auto& f : fits) best_rmse_for_scale = std::min(best_rmse_for_scale, f.rmse);
  const double scale = std::max(2.0 * best_rmse_for_scale, 1e-3);
  double weight_sum = 0.0;
  std::vector<double> weights(fits.size());
  for (std::size_t i = 0; i < fits.size(); ++i) {
    const double z = fits[i].rmse / scale;
    weights[i] = std::exp(-0.5 * z * z) + 1e-12;
    weight_sum += weights[i];
  }
  double prediction = 0.0;
  for (std::size_t i = 0; i < fits.size(); ++i) {
    prediction += weights[i] / weight_sum * fits[i].prediction;
  }

  // Confidence: agreement between bases + best-fit quality. Weighted std
  // of per-basis predictions measures extrapolation disagreement.
  double var = 0.0;
  for (std::size_t i = 0; i < fits.size(); ++i) {
    const double d = fits[i].prediction - prediction;
    var += weights[i] / weight_sum * d * d;
  }
  const double spread = std::sqrt(var);
  double best_rmse = fits.front().rmse;
  for (const auto& f : fits) best_rmse = std::min(best_rmse, f.rmse);
  const double confidence =
      std::exp(-spread / residual_scale) * std::exp(-best_rmse / residual_scale);
  return {std::clamp(prediction, 0.0, 1.0), std::clamp(confidence, 0.0, 1.0)};
}

}  // namespace curve_detail

LearningCurvePredictor::LearningCurvePredictor(const LearningCurveConfig& config)
    : config_(config) {
  MLFS_EXPECT(config_.min_observations >= 2);
  MLFS_EXPECT(config_.residual_scale > 0.0);
}

std::vector<std::string> LearningCurvePredictor::basis_names() {
  std::vector<std::string> names;
  for (const auto& b : curve_detail::bases()) names.emplace_back(b.name);
  return names;
}

CurvePrediction LearningCurvePredictor::predict_at(std::span<const double> observed,
                                                   int target_iteration) const {
  MLFS_EXPECT(target_iteration >= 1);
  if (observed.size() < config_.min_observations) {
    return {observed.empty() ? 0.0 : observed.back(), 0.0};
  }

  std::vector<curve_detail::BasisFit> fits;
  fits.reserve(curve_detail::bases().size());
  for (const curve_detail::Basis& basis : curve_detail::bases()) {
    auto objective = [&basis, observed](const std::vector<double>& p) {
      return curve_detail::fit_residual(basis, p, observed);
    };
    const auto result = nelder_mead(objective, basis.init);
    curve_detail::BasisFit fit;
    fit.rmse = std::sqrt(std::max(result.value, 0.0));
    fit.prediction =
        std::clamp(basis.eval(result.x, static_cast<double>(target_iteration)), 0.0, 1.0);
    fits.push_back(fit);
  }
  return curve_detail::combine_fits(fits, config_.residual_scale);
}

}  // namespace mlfs
