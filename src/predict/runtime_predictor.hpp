// Optimus-style job running-time prediction (the §3.1 assumption: "89%
// prediction accuracy for the jobs that ran previously and 70% ... for the
// jobs that didn't"). Implemented as the paper uses it: the predictor
// returns the job's sample-run estimate perturbed by a relative error whose
// magnitude depends on whether a job with the same signature (algorithm ×
// GPU request) has completed before. Deterministic per job seed.
#pragma once

#include <cstdint>
#include <set>
#include <utility>

#include "workload/job.hpp"

namespace mlfs {

class RuntimePredictor {
 public:
  /// Relative-error levels: 1 - 0.89 and 1 - 0.70 from the paper.
  explicit RuntimePredictor(double seen_rel_error = 0.11, double unseen_rel_error = 0.30);

  /// Predicted total execution seconds for the job (excluding queueing).
  double predict_execution_seconds(const Job& job) const;

  /// Predicted remaining running seconds given completed iterations.
  double predict_remaining_seconds(const Job& job) const;

  /// Marks the job's (algorithm, gpu_request) signature as having history.
  void record_completion(const Job& job);

  bool has_history(const Job& job) const;

  /// Snapshot support: the set of (algorithm, gpu_request) signatures with
  /// completion history (the error levels are config, not state).
  void save_state(io::BinWriter& w) const;
  void restore_state(io::BinReader& r);

 private:
  double error_factor(const Job& job) const;

  double seen_rel_error_;
  double unseen_rel_error_;
  std::set<std::pair<int, int>> seen_;
};

}  // namespace mlfs
