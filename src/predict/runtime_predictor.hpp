// Optimus-style job running-time prediction (the §3.1 assumption: "89%
// prediction accuracy for the jobs that ran previously and 70% ... for the
// jobs that didn't"). Implemented as the paper uses it: the predictor
// returns the job's sample-run estimate perturbed by a relative error whose
// magnitude depends on whether a job with the same signature (algorithm ×
// GPU request) has completed before. Deterministic per job seed.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/job.hpp"

namespace mlfs {

/// Open-addressing flat set of (algorithm, gpu_request) signatures — the
/// predictor's hot has_history lookup without std::set's node chasing.
/// Signatures pack into one u64; snapshot serialization is emitted in
/// sorted key order so the on-disk bytes are identical to the historical
/// std::set-backed format.
class SignatureSet {
 public:
  SignatureSet();

  void insert(int algorithm, int gpus);
  bool contains(int algorithm, int gpus) const;
  std::size_t size() const { return size_; }
  void clear();

  /// Keys in ascending order (the canonical serialization order).
  std::vector<std::uint64_t> sorted_keys() const;

  static std::uint64_t pack(int algorithm, int gpus) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(algorithm)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(gpus));
  }
  static int unpack_algorithm(std::uint64_t key) {
    return static_cast<int>(static_cast<std::int32_t>(key >> 32));
  }
  static int unpack_gpus(std::uint64_t key) {
    return static_cast<int>(static_cast<std::int32_t>(key & 0xffffffffull));
  }

 private:
  static constexpr std::uint64_t kEmpty = ~0ull;

  std::size_t probe(std::uint64_t key) const;
  void grow();

  std::vector<std::uint64_t> slots_;
  std::size_t size_ = 0;
};

class RuntimePredictor {
 public:
  /// Relative-error levels: 1 - 0.89 and 1 - 0.70 from the paper.
  explicit RuntimePredictor(double seen_rel_error = 0.11, double unseen_rel_error = 0.30);

  /// Predicted total execution seconds for the job (excluding queueing).
  double predict_execution_seconds(const Job& job) const;

  /// Predicted remaining running seconds given completed iterations.
  double predict_remaining_seconds(const Job& job) const;

  /// Marks the job's (algorithm, gpu_request) signature as having history.
  void record_completion(const Job& job);

  bool has_history(const Job& job) const;

  /// Snapshot support: the set of (algorithm, gpu_request) signatures with
  /// completion history (the error levels are config, not state). Bytes
  /// are identical to the historical sorted-std::set format.
  void save_state(io::BinWriter& w) const;
  void restore_state(io::BinReader& r);

 private:
  double error_factor(const Job& job) const;

  double seen_rel_error_;
  double unseen_rel_error_;
  SignatureSet seen_;
};

}  // namespace mlfs
